//===- tools/sbd-analyze.cpp - Pre-solve static analysis front end ----------===//
///
/// \file
/// Runs the RegexAnalyzer (DESIGN.md §14) over patterns without solving
/// them: structural features, ReDoS/blow-up risk score, classification,
/// and the portfolio route the solver would take. With --solve it also
/// solves each pattern so the analyzer's overhead can be compared against
/// real solve time (the CI gate in scripts/ci/analyze_corpus.sh).
///
///   sbd-analyze '<pattern>' ...          analyze command-line patterns
///   sbd-analyze --file <path>            one pattern per line ('#' comments)
///   sbd-analyze --corpus                 the seed benchmark corpus
///   sbd-analyze --scale f --seed n       corpus generator knobs
///   sbd-analyze --classes                one "name<TAB>class" line each
///                                        (the regression baseline format)
///   sbd-analyze --json                   machine-readable report
///   sbd-analyze --solve                  also solve; report overhead
///   sbd-analyze --risk-threshold n       exit 1 when any risk >= n
///
/// Exit codes: 0 analyzed cleanly, 1 risk threshold exceeded, 2 usage or
/// input error (unreadable file, unparsable pattern).
///
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "analysis/RegexAnalyzer.h"
#include "portfolio/Portfolio.h"
#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Stopwatch.h"
#include "support/Unicode.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace sbd;

namespace {

struct Args {
  std::vector<std::string> Patterns;
  std::string File;
  bool Corpus = false;
  double Scale = 0.05;
  uint64_t Seed = 2021;
  bool Classes = false;
  bool Json = false;
  bool Solve = false;
  long RiskThreshold = -1; ///< -1 = no gate
};

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--corpus] [--scale f] [--seed n] [--file path] "
               "[--classes] [--json]\n       [--solve] [--risk-threshold n] "
               "['<pattern>' ...]\n"
               "Analyzes extended regexes without solving them: features, "
               "risk score,\nclassification, and the portfolio route "
               "(DESIGN.md \xc2\xa7" "14).\n",
               Prog);
  return 2;
}

/// One named input pattern.
struct Input {
  std::string Name;
  std::string Pattern;
};

void appendEscaped(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::vector<Input> corpusInputs(double Scale, uint64_t Seed) {
  std::vector<Input> Out;
  std::vector<BenchSuite> Suites = nonBooleanSuites(Scale, Seed);
  std::vector<BenchSuite> Boolean = booleanSuites(Scale, Seed);
  Suites.insert(Suites.end(), Boolean.begin(), Boolean.end());
  std::vector<BenchSuite> Hand = handwrittenSuites();
  Suites.insert(Suites.end(), Hand.begin(), Hand.end());
  for (const BenchSuite &Suite : Suites)
    for (const BenchInstance &Inst : Suite.Instances)
      Out.push_back({Suite.Name + "/" + Inst.Name, Inst.Pattern});
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  Args A;
  for (int I = 1; I < Argc; ++I) {
    auto needsValue = [&](const char *Flag) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (!std::strcmp(Argv[I], "--corpus"))
      A.Corpus = true;
    else if (!std::strcmp(Argv[I], "--scale"))
      A.Scale = std::atof(needsValue("--scale"));
    else if (!std::strcmp(Argv[I], "--seed"))
      A.Seed = std::strtoull(needsValue("--seed"), nullptr, 10);
    else if (!std::strcmp(Argv[I], "--file"))
      A.File = needsValue("--file");
    else if (!std::strcmp(Argv[I], "--classes"))
      A.Classes = true;
    else if (!std::strcmp(Argv[I], "--json"))
      A.Json = true;
    else if (!std::strcmp(Argv[I], "--solve"))
      A.Solve = true;
    else if (!std::strcmp(Argv[I], "--risk-threshold"))
      A.RiskThreshold = std::atol(needsValue("--risk-threshold"));
    else if (Argv[I][0] == '-')
      return usage(Argv[0]);
    else
      A.Patterns.push_back(Argv[I]);
  }

  std::vector<Input> Inputs;
  for (size_t I = 0; I != A.Patterns.size(); ++I)
    Inputs.push_back({"arg" + std::to_string(I), A.Patterns[I]});
  if (!A.File.empty()) {
    std::ifstream In(A.File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", A.File.c_str());
      return 2;
    }
    std::string Line;
    size_t LineNo = 0;
    while (std::getline(In, Line)) {
      ++LineNo;
      if (Line.empty() || Line[0] == '#')
        continue;
      Inputs.push_back({A.File + ":" + std::to_string(LineNo), Line});
    }
  }
  if (A.Corpus) {
    std::vector<Input> Corpus = corpusInputs(A.Scale, A.Seed);
    Inputs.insert(Inputs.end(), Corpus.begin(), Corpus.end());
  }
  if (Inputs.empty())
    return usage(Argv[0]);

  // One shared stack: hash-consing dedups shared structure across the
  // inputs, exactly as a long-lived solver process would see them.
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  RegexSolver S(E);
  portfolio::PortfolioSolver Port(S);

  size_t ParseErrors = 0;
  size_t OverThreshold = 0;
  int64_t AnalysisUsTotal = 0;
  int64_t SolveUsTotal = 0;
  std::string JsonResults; // accumulated array body

  for (const Input &In : Inputs) {
    RegexParseResult Parsed = parseRegex(M, In.Pattern);
    if (!Parsed.Ok) {
      ++ParseErrors;
      std::fprintf(stderr, "error: %s: parse error: %s\n", In.Name.c_str(),
                   Parsed.Error.c_str());
      continue;
    }
    Stopwatch AnalysisTimer;
    // Copy: the memo vector may reallocate on later analyze() calls.
    const analysis::RegexFeatures Feat = S.analyzer().analyze(Parsed.Value);
    AnalysisUsTotal += AnalysisTimer.elapsedUs();
    portfolio::RouteDecision Route = portfolio::planRoute(Feat, SolveOptions{});
    const bool Risky =
        A.RiskThreshold >= 0 && Feat.Risk >= static_cast<uint32_t>(A.RiskThreshold);
    if (Risky)
      ++OverThreshold;

    SolveResult Solved;
    if (A.Solve) {
      Solved = Port.checkSat(Parsed.Value, SolveOptions{});
      SolveUsTotal += Solved.Stats.TotalUs;
    }

    if (A.Classes) {
      std::printf("%s\t%s\n", In.Name.c_str(),
                  analysis::reClassName(Feat.Class));
      continue;
    }
    if (A.Json) {
      std::string R = "{\"name\": ";
      appendEscaped(R, In.Name);
      R += ", \"pattern\": ";
      appendEscaped(R, In.Pattern);
      R += ", \"route\": \"" + std::string(solveEngineName(Route.Engine)) + "\"";
      R += ", \"route_reason\": \"" + std::string(Route.Reason) + "\"";
      R += ", \"predicted_states\": " +
           std::to_string(analysis::predictedStateBound(Feat));
      R += ", \"features\": " + Feat.json();
      if (A.Solve) {
        R += ", \"solve\": {\"status\": \"" +
             std::string(statusName(Solved.Status)) + "\"";
        R += ", \"total_us\": " + std::to_string(Solved.Stats.TotalUs);
        R += ", \"engine\": \"" + std::string(solveEngineName(Solved.Stats.Engine)) +
             "\"}";
      }
      R += "}";
      if (!JsonResults.empty())
        JsonResults += ",\n  ";
      JsonResults += R;
      continue;
    }
    std::printf("%s%s\n  pattern: %s\n", In.Name.c_str(),
                Risky ? "  [RISK]" : "", In.Pattern.c_str());
    std::printf("  class=%s risk=%u route=%s (%s) predicted-states<=%llu\n",
                analysis::reClassName(Feat.Class), Feat.Risk,
                solveEngineName(Route.Engine), Route.Reason,
                static_cast<unsigned long long>(
                    analysis::predictedStateBound(Feat)));
    std::printf("  size: tree=%llu dag=%u star-height=%u bool-depth=%u "
                "compl-depth=%u\n",
                static_cast<unsigned long long>(Feat.TreeSize), Feat.DagSize,
                Feat.StarHeight, Feat.BooleanDepth, Feat.ComplDepth);
    std::printf("  counters: blowup<=%llu max-bound=%u  alphabet: preds=%u "
                "minterms<=%llu\n",
                static_cast<unsigned long long>(Feat.CounterBlowup),
                Feat.MaxLoopBound, Feat.DistinctPreds,
                static_cast<unsigned long long>(Feat.MintermBound));
    if (Feat.PrefixLen > 0 || Feat.PrefixExact) {
      std::vector<uint32_t> Pfx(Feat.Prefix, Feat.Prefix + Feat.PrefixLen);
      std::printf("  required prefix: \"%s\"%s%s\n", escapeWord(Pfx).c_str(),
                  Feat.PrefixExact ? " (exact word)" : "",
                  Feat.PrefixComplete ? "" : " (truncated)");
    }
    if (A.Solve)
      std::printf("  solved: %s in %lld us via %s\n",
                  statusName(Solved.Status),
                  static_cast<long long>(Solved.Stats.TotalUs),
                  solveEngineName(Solved.Stats.Engine));
  }

  if (A.Json) {
    std::string Out = "{\"analyzed\": " +
                      std::to_string(Inputs.size() - ParseErrors);
    Out += ", \"parse_errors\": " + std::to_string(ParseErrors);
    Out += ", \"over_threshold\": " + std::to_string(OverThreshold);
    Out += ", \"analysis_us_total\": " + std::to_string(AnalysisUsTotal);
    Out += ", \"solve_us_total\": " + std::to_string(SolveUsTotal);
    Out += ", \"results\": [\n  " + JsonResults + "\n]}";
    std::printf("%s\n", Out.c_str());
  } else if (!A.Classes && Inputs.size() > 1) {
    std::printf("analyzed %zu patterns (%zu parse errors) in %lld us",
                Inputs.size() - ParseErrors, ParseErrors,
                static_cast<long long>(AnalysisUsTotal));
    if (A.Solve)
      std::printf("; solve time %lld us",
                  static_cast<long long>(SolveUsTotal));
    std::printf("\n");
  }

  if (ParseErrors)
    return 2;
  return OverThreshold ? 1 : 0;
}
