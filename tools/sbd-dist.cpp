//===- tools/sbd-dist.cpp - Multi-process batch solving front end -----------===//
///
/// \file
/// Command-line front end for the `src/dist` coordinator/worker layer
/// (DESIGN.md §16): reads a pattern corpus, solves it across N forked
/// worker processes, and prints the canonical verdict stream — one
/// `<idx> <status> [witness]` line per query in submission order. The
/// stream is deliberately free of timings and engine tags, so two runs
/// with different worker counts must be byte-identical; the CI gate
/// (scripts/ci/dist_consistency.sh) diffs exactly this output.
///
///   sbd-dist --corpus file           one pattern per line ('#' comments)
///   sbd-dist --gen                   the seed benchmark corpus
///   sbd-dist --scale f --seed n      corpus generator knobs
///   sbd-dist --export-corpus path    write the generated corpus and exit
///   sbd-dist --workers N             worker processes (default 4)
///   sbd-dist --shards K              shard count (default: workers)
///   sbd-dist --max-inflight M        admission bound per worker
///   sbd-dist --rpc-timeout-ms T      per-query round-trip budget
///   sbd-dist --max-states N          per-query state budget
///   sbd-dist --reuse-arenas          workers keep arenas across queries
///   sbd-dist --stats                 scheduling stats as JSON on stderr
///   sbd-dist --test-crash-worker I:N worker I dies on its Nth request
///
/// Exit codes: 0 solved (verdicts may still be Unknown), 2 usage or input
/// error.
///
//===----------------------------------------------------------------------===//

#include "Workloads.h"

#include "dist/Coordinator.h"
#include "dist/Protocol.h"
#include "support/Stopwatch.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace sbd;

namespace {

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [--corpus file | --gen] [--scale f] [--seed n]\n"
      "       [--export-corpus path] [--workers N] [--shards K]\n"
      "       [--max-inflight M] [--rpc-timeout-ms T] [--max-states N]\n"
      "       [--reuse-arenas] [--stats] [--test-crash-worker I:N]\n"
      "Solves a pattern corpus across forked worker processes and prints\n"
      "the canonical verdict stream (DESIGN.md \xc2\xa7" "16).\n",
      Prog);
  return 2;
}

std::vector<std::string> corpusPatterns(double Scale, uint64_t Seed) {
  std::vector<std::string> Out;
  std::vector<BenchSuite> Suites = nonBooleanSuites(Scale, Seed);
  std::vector<BenchSuite> Boolean = booleanSuites(Scale, Seed);
  Suites.insert(Suites.end(), Boolean.begin(), Boolean.end());
  std::vector<BenchSuite> Hand = handwrittenSuites();
  Suites.insert(Suites.end(), Hand.begin(), Hand.end());
  for (const BenchSuite &Suite : Suites)
    for (const BenchInstance &Inst : Suite.Instances)
      Out.push_back(Inst.Pattern);
  return Out;
}

// One raw pattern per line. No comment syntax: '#' starts a perfectly
// legitimate regex (the workload corpus has hex-color patterns), so the
// only skipped lines are empty ones.
bool readCorpusFile(const std::string &Path, std::vector<std::string> &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    Out.push_back(Line);
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string CorpusFile, ExportPath;
  bool Gen = false, Stats = false;
  double Scale = 0.05;
  uint64_t Seed = 2021;
  dist::DistOptions Opts;
  SolveOptions QueryOpts;

  auto needValue = [&](int &I) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "sbd-dist: %s needs a value\n", Argv[I]);
      return nullptr;
    }
    return Argv[++I];
  };

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--corpus") == 0) {
      const char *V = needValue(I);
      if (!V)
        return 2;
      CorpusFile = V;
    } else if (std::strcmp(Arg, "--gen") == 0) {
      Gen = true;
    } else if (std::strcmp(Arg, "--scale") == 0) {
      const char *V = needValue(I);
      if (!V)
        return 2;
      Scale = std::atof(V);
    } else if (std::strcmp(Arg, "--seed") == 0) {
      const char *V = needValue(I);
      if (!V)
        return 2;
      Seed = static_cast<uint64_t>(std::atoll(V));
    } else if (std::strcmp(Arg, "--export-corpus") == 0) {
      const char *V = needValue(I);
      if (!V)
        return 2;
      ExportPath = V;
    } else if (std::strcmp(Arg, "--workers") == 0) {
      const char *V = needValue(I);
      if (!V)
        return 2;
      Opts.NumWorkers = static_cast<unsigned>(std::atoi(V));
    } else if (std::strcmp(Arg, "--shards") == 0) {
      const char *V = needValue(I);
      if (!V)
        return 2;
      Opts.NumShards = static_cast<unsigned>(std::atoi(V));
    } else if (std::strcmp(Arg, "--max-inflight") == 0) {
      const char *V = needValue(I);
      if (!V)
        return 2;
      Opts.MaxInFlightPerWorker = static_cast<unsigned>(std::atoi(V));
    } else if (std::strcmp(Arg, "--rpc-timeout-ms") == 0) {
      const char *V = needValue(I);
      if (!V)
        return 2;
      Opts.RpcTimeoutMs = std::atoll(V);
    } else if (std::strcmp(Arg, "--max-states") == 0) {
      const char *V = needValue(I);
      if (!V)
        return 2;
      QueryOpts.MaxStates = static_cast<size_t>(std::atoll(V));
    } else if (std::strcmp(Arg, "--reuse-arenas") == 0) {
      Opts.Worker.ReuseArenas = true;
    } else if (std::strcmp(Arg, "--stats") == 0) {
      Stats = true;
    } else if (std::strcmp(Arg, "--test-crash-worker") == 0) {
      const char *V = needValue(I);
      if (!V)
        return 2;
      unsigned W = 0;
      unsigned long long N = 0;
      if (std::sscanf(V, "%u:%llu", &W, &N) != 2 || N == 0) {
        std::fprintf(stderr, "sbd-dist: --test-crash-worker wants I:N\n");
        return 2;
      }
      Opts.CrashWorkerIndex = W;
      Opts.CrashAtRequest = static_cast<size_t>(N);
    } else {
      std::fprintf(stderr, "sbd-dist: unknown argument '%s'\n", Arg);
      return usage(Argv[0]);
    }
  }

  std::vector<std::string> Patterns;
  if (!CorpusFile.empty()) {
    if (!readCorpusFile(CorpusFile, Patterns)) {
      std::fprintf(stderr, "sbd-dist: cannot read corpus '%s'\n",
                   CorpusFile.c_str());
      return 2;
    }
  } else if (Gen || !ExportPath.empty()) {
    Patterns = corpusPatterns(Scale, Seed);
  } else {
    return usage(Argv[0]);
  }

  if (!ExportPath.empty()) {
    std::ofstream Out(ExportPath);
    if (!Out) {
      std::fprintf(stderr, "sbd-dist: cannot write '%s'\n",
                   ExportPath.c_str());
      return 2;
    }
    for (const std::string &P : Patterns)
      Out << P << '\n';
    return 0;
  }

  std::vector<BatchQuery> Queries;
  Queries.reserve(Patterns.size());
  for (const std::string &P : Patterns) {
    BatchQuery Q;
    Q.Pattern = P;
    Q.Opts = QueryOpts;
    Queries.push_back(std::move(Q));
  }

  Stopwatch Wall;
  dist::DistSolver Solver(Opts);
  std::vector<BatchResult> Results = Solver.solveAll(Queries);
  int64_t WallUs = Wall.elapsedUs();

  std::string Stream;
  for (size_t I = 0; I != Results.size(); ++I) {
    Stream += dist::renderVerdictLine(I, Results[I]);
    Stream += '\n';
  }
  std::fwrite(Stream.data(), 1, Stream.size(), stdout);

  if (Stats) {
    const dist::DistStats &S = Solver.stats();
    std::fprintf(
        stderr,
        "{\"wall_us\": %lld, \"queries\": %zu, \"workers\": %u, "
        "\"shards\": %u, \"dispatched\": %llu, \"steals\": %llu, "
        "\"requeues\": %llu, \"worker_crashes\": %llu, \"timeouts\": %llu, "
        "\"respawns\": %llu, \"lost\": %llu}\n",
        static_cast<long long>(WallUs), Results.size(), Opts.NumWorkers,
        Opts.NumShards ? Opts.NumShards : Opts.NumWorkers,
        static_cast<unsigned long long>(S.Dispatched),
        static_cast<unsigned long long>(S.Steals),
        static_cast<unsigned long long>(S.Requeues),
        static_cast<unsigned long long>(S.WorkerCrashes),
        static_cast<unsigned long long>(S.Timeouts),
        static_cast<unsigned long long>(S.Respawns),
        static_cast<unsigned long long>(S.Lost));
  }
  return 0;
}
