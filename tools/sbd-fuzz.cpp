//===- tools/sbd-fuzz.cpp - Differential fuzzing CLI ------------------------===//
///
/// \file
/// Command-line front end for the differential fuzzing subsystem
/// (src/fuzz). Runs a seeded campaign, prints a human summary plus
/// ready-to-paste regression tests for every discrepancy, and optionally
/// writes the machine-readable JSON report consumed by CI.
///
/// Exit status: 0 when the run is clean, 1 when discrepancies were found
/// (inverted under --corrupt, which *expects* the injected bug to be
/// caught), 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

using namespace sbd;
using namespace sbd::fuzz;

namespace {

void usage(std::ostream &OS) {
  OS << "usage: sbd-fuzz [options]\n"
        "\n"
        "Seeded differential fuzzing over every regex engine in the\n"
        "library. A run is a pure function of its options: rerun with the\n"
        "seed from a CI report to reproduce a failure exactly.\n"
        "\n"
        "  --seed N               master seed (default: $SBD_FUZZ_SEED or 1)\n"
        "  --iterations N         regexes to generate (default 1000)\n"
        "  --words N              sample words per regex (default 4)\n"
        "  --max-nodes N          regex syntax-node budget (default 24)\n"
        "  --max-discrepancies N  stop after N distinct failures "
        "(default 16)\n"
        "  --json PATH            write the JSON run report (\"-\" = stdout)\n"
        "  --corrupt              inject the broken inter-as-union engine;\n"
        "                         exit 0 iff the oracle catches it\n"
        "  --dist N               run the dist_consistency law every Nth\n"
        "                         arena batch (forks workers; default off)\n"
        "  --dist-workers N       worker count for the N-process side\n"
        "                         (default 3)\n"
        "  --no-shrink            report discrepancies unshrunk\n"
        "  --no-sat               membership/law checks only (no solvers)\n"
        "  --quiet                suppress the human-readable summary\n"
        "  --help                 this text\n";
}

bool parseU64(const char *S, uint64_t &Out) {
  if (!S || !*S)
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End)
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzOptions Opts;
  if (const char *EnvSeed = std::getenv("SBD_FUZZ_SEED")) {
    uint64_t S = 0;
    if (parseU64(EnvSeed, S))
      Opts.Seed = S;
  }

  std::string JsonPath;
  bool Quiet = false;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto needValue = [&](uint64_t &Out) {
      if (I + 1 >= Argc || !parseU64(Argv[I + 1], Out)) {
        std::cerr << "sbd-fuzz: " << Arg << " requires a numeric value\n";
        std::exit(2);
      }
      ++I;
    };
    uint64_t V = 0;
    if (Arg == "--seed") {
      needValue(V);
      Opts.Seed = V;
    } else if (Arg == "--iterations") {
      needValue(V);
      Opts.Iterations = V;
    } else if (Arg == "--words") {
      needValue(V);
      Opts.WordsPerRegex = static_cast<uint32_t>(V);
    } else if (Arg == "--max-nodes") {
      needValue(V);
      Opts.Gen.MaxNodes = static_cast<uint32_t>(V);
    } else if (Arg == "--max-discrepancies") {
      needValue(V);
      Opts.MaxDiscrepancies = static_cast<uint32_t>(V);
    } else if (Arg == "--json") {
      if (I + 1 >= Argc) {
        std::cerr << "sbd-fuzz: --json requires a path\n";
        return 2;
      }
      JsonPath = Argv[++I];
    } else if (Arg == "--dist") {
      needValue(V);
      Opts.DistEvery = static_cast<uint32_t>(V);
    } else if (Arg == "--dist-workers") {
      needValue(V);
      Opts.DistWorkers = static_cast<uint32_t>(V);
    } else if (Arg == "--corrupt") {
      Opts.CorruptStub = true;
    } else if (Arg == "--no-shrink") {
      Opts.Shrink = false;
    } else if (Arg == "--no-sat") {
      Opts.Oracle.CheckSat = false;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "sbd-fuzz: unknown option '" << Arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  FuzzReport Rep = runFuzz(Opts);

  if (!JsonPath.empty()) {
    if (JsonPath == "-") {
      std::cout << Rep.json() << "\n";
    } else {
      std::ofstream OS(JsonPath);
      if (!OS) {
        std::cerr << "sbd-fuzz: cannot write " << JsonPath << "\n";
        return 2;
      }
      OS << Rep.json() << "\n";
    }
  }

  if (!Quiet) {
    std::cerr << "sbd-fuzz: seed=" << Rep.Seed
              << " iterations=" << Rep.Iterations
              << " samples=" << Rep.Samples << " checks=" << Rep.Checks
              << " discrepancies=" << Rep.Discrepancies.size()
              << " elapsed_us=" << Rep.ElapsedUs << "\n";
    for (const EngineTiming &T : Rep.Timings)
      std::cerr << "  engine " << T.Name << ": calls=" << T.Calls
                << " total_us=" << T.TotalUs << "\n";
    for (const EnginePhase &P : Rep.Engines)
      std::cerr << "  phases " << P.Name << ": queries=" << P.Queries
                << " derive_us=" << P.Stats.DeriveUs
                << " dnf_us=" << P.Stats.DnfUs
                << " cache_probe_us=" << P.Stats.CacheProbeUs
                << " search_us=" << P.Stats.SearchUs
                << " total_us=" << P.Stats.TotalUs << "\n";
    for (size_t I = 0; I != Rep.Discrepancies.size(); ++I) {
      const Discrepancy &D = Rep.Discrepancies[I];
      std::cerr << "\n--- discrepancy " << (I + 1) << " ---\n"
                << "law:     " << oracleLawName(D.Law) << "\n"
                << "engine:  " << D.Engine << "\n"
                << "pattern: " << D.Pattern << " (" << D.RegexNodes
                << " nodes)\n"
                << "detail:  " << D.Detail << "\n"
                << "regression test:\n"
                << renderRegressionTest(D, Rep.Seed, I + 1);
    }
  }

  if (Opts.CorruptStub) {
    // Self-check mode: the injected bug *must* be caught.
    if (Rep.Discrepancies.empty()) {
      std::cerr << "sbd-fuzz: --corrupt run found no discrepancies; the "
                   "oracle failed its self-check\n";
      return 1;
    }
    return 0;
  }
  return Rep.ok() ? 0 : 1;
}
