//===- tools/sbd-explain.cpp - Slow-query explain artifact replay -----------===//
///
/// \file
/// Reads slow-query explain artifacts (the JSONL records RegexSolver
/// captures through obs::SlowQueryLog, schema in DESIGN.md §13), replays
/// the captured SMT-LIB script through the full front end, and prints the
/// derivative-exploration profile: the frontier growth curve, where the
/// query's wall-clock and arena nodes concentrated, and the cache-hit
/// attribution of the replay.
///
///   sbd-explain <artifact.jsonl>            explain the last record
///   sbd-explain --index N <artifact.jsonl>  explain the N-th record (0-based)
///   sbd-explain --list <artifact.jsonl>     one summary line per record
///   sbd-explain --no-replay ...             skip the replay (offline use)
///   sbd-explain --json ...                  machine-readable explain report
///
//===----------------------------------------------------------------------===//

#include "policy/Json.h"
#include "smt/SmtSolver.h"
#include "support/Metrics.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace sbd;

namespace {

struct Args {
  std::string Path;
  long Index = -1; ///< -1 = last record
  bool List = false;
  bool Replay = true;
  bool Json = false;
};

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--index n] [--list] [--no-replay] [--json] "
               "<artifact.jsonl>\n"
               "Replays a slow-query explain artifact captured via "
               "--slow-log / --slow-threshold-us\nand prints where the "
               "derivative exploration spent its time and nodes.\n",
               Prog);
  return 2;
}

/// Reads every well-formed JSONL record from the artifact file.
std::vector<JsonValue> readArtifacts(const std::string &Path,
                                     std::string &Error) {
  std::vector<JsonValue> Out;
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open " + Path;
    return Out;
  }
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    JsonParseResult R = parseJson(Line);
    if (!R.Ok || !R.Value.isObject()) {
      std::fprintf(stderr, "warning: %s:%zu: skipping malformed record (%s)\n",
                   Path.c_str(), LineNo, R.Error.c_str());
      continue;
    }
    Out.push_back(std::move(R.Value));
  }
  return Out;
}

std::string getString(const JsonValue &A, const char *Key) {
  const JsonValue *V = A.get(Key);
  return V && V->isString() ? V->asString() : std::string();
}

double getNumber(const JsonValue &A, const char *Key) {
  const JsonValue *V = A.get(Key);
  return V && V->kind() == JsonValue::Kind::Number ? V->asNumber() : 0;
}

/// ASCII curve of the frontier trace: height-8 bars scaled to the peak.
void printFrontierCurve(const std::vector<double> &Trace, uint64_t Stride) {
  if (Trace.empty()) {
    std::printf("frontier trace: (empty — log was armed without a trace?)\n");
    return;
  }
  double Peak = 0;
  size_t PeakAt = 0;
  for (size_t I = 0; I != Trace.size(); ++I)
    if (Trace[I] > Peak) {
      Peak = Trace[I];
      PeakAt = I;
    }
  std::printf("frontier growth (%zu samples, 1 sample = %llu steps, "
              "peak %.0f at step %llu):\n",
              Trace.size(), static_cast<unsigned long long>(Stride), Peak,
              static_cast<unsigned long long>(PeakAt * Stride));
  // Downsample to at most 64 columns for the terminal.
  const size_t Cols = Trace.size() < 64 ? Trace.size() : 64;
  std::vector<double> Col(Cols, 0);
  for (size_t I = 0; I != Trace.size(); ++I) {
    size_t C = I * Cols / Trace.size();
    if (Trace[I] > Col[C])
      Col[C] = Trace[I];
  }
  const int Height = 8;
  for (int Row = Height; Row >= 1; --Row) {
    std::string L = "  ";
    for (size_t C = 0; C != Cols; ++C) {
      double Norm = Peak > 0 ? Col[C] / Peak * Height : 0;
      L += Norm >= Row ? '#' : (Row == 1 && Col[C] > 0 ? '.' : ' ');
    }
    std::printf("%s\n", L.c_str());
  }
}

/// Phase table from the captured (or replayed) stats object.
void printPhaseProfile(const JsonValue &Stats, double TotalUs) {
  struct Row {
    const char *Key;
    const char *Label;
  };
  const Row Rows[] = {
      {"parse_us", "parse"},   {"derive_us", "derive"},
      {"dnf_us", "dnf"},       {"cache_probe_us", "cache probe"},
      {"scan_us", "scan"},     {"search_us", "search (residual)"},
  };
  std::printf("where the time went (total %.1f ms):\n", TotalUs / 1000.0);
  for (const Row &R : Rows) {
    double Us = getNumber(Stats, R.Key);
    double Pct = TotalUs > 0 ? Us / TotalUs * 100.0 : 0;
    std::printf("  %-18s %10.1f ms %5.1f%%\n", R.Label, Us / 1000.0, Pct);
  }
  double Minterm = getNumber(Stats, "minterm_us");
  if (Minterm > 0)
    std::printf("  %-18s %10.1f ms (inside derive/dnf)\n", "minterms",
                Minterm / 1000.0);
  double Memo = getNumber(Stats, "memo_hits");
  double MemoMiss = getNumber(Stats, "memo_misses");
  double Intern = getNumber(Stats, "intern_hits");
  double InternMiss = getNumber(Stats, "intern_misses");
  std::printf("cache attribution:\n");
  std::printf("  memo   hits=%.0f misses=%.0f hit-rate=%.1f%%\n", Memo,
              MemoMiss, Memo + MemoMiss > 0 ? Memo / (Memo + MemoMiss) * 100 : 0);
  std::printf("  intern hits=%.0f misses=%.0f hit-rate=%.1f%%\n", Intern,
              InternMiss,
              Intern + InternMiss > 0 ? Intern / (Intern + InternMiss) * 100
                                      : 0);
  std::printf("  arena nodes allocated: %.0f\n", getNumber(Stats, "arena_nodes"));
}

/// Pre-solve analyzer verdict captured in the artifact (features key,
/// embedded since the analyzer landed — older artifacts print nothing).
void printFeatures(const JsonValue &F) {
  std::printf("pre-solve analysis:\n");
  std::printf("  class=%s risk=%.0f tree=%.0f dag=%.0f star-height=%.0f "
              "bool-depth=%.0f compl-depth=%.0f\n",
              getString(F, "class").c_str(), getNumber(F, "risk"),
              getNumber(F, "tree_size"), getNumber(F, "dag_size"),
              getNumber(F, "star_height"), getNumber(F, "boolean_depth"),
              getNumber(F, "compl_depth"));
  std::printf("  counter-blowup<=%.0f distinct-preds=%.0f minterms<=%.0f "
              "nullable=%s\n",
              getNumber(F, "counter_blowup"), getNumber(F, "distinct_preds"),
              getNumber(F, "minterm_bound"),
              [&] {
                const JsonValue *V = F.get("nullable");
                return V && V->kind() == JsonValue::Kind::Bool && V->asBool();
              }()
                  ? "yes"
                  : "no");
}

} // namespace

int main(int Argc, char **Argv) {
  Args A;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--index")) {
      if (I + 1 >= Argc)
        return usage(Argv[0]);
      A.Index = std::atol(Argv[++I]);
    } else if (!std::strcmp(Argv[I], "--list"))
      A.List = true;
    else if (!std::strcmp(Argv[I], "--no-replay"))
      A.Replay = false;
    else if (!std::strcmp(Argv[I], "--json"))
      A.Json = true;
    else if (Argv[I][0] == '-')
      return usage(Argv[0]);
    else if (A.Path.empty())
      A.Path = Argv[I];
    else
      return usage(Argv[0]);
  }
  if (A.Path.empty())
    return usage(Argv[0]);

  std::string Error;
  std::vector<JsonValue> Records = readArtifacts(A.Path, Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (Records.empty()) {
    std::fprintf(stderr, "error: %s holds no artifacts\n", A.Path.c_str());
    return 1;
  }

  if (A.List) {
    for (size_t I = 0; I != Records.size(); ++I) {
      const JsonValue &R = Records[I];
      std::printf("[%zu] status=%s stop=%s total_us=%.0f states=%.0f "
                  "strategy=%s\n",
                  I, getString(R, "status").c_str(),
                  getString(R, "stop_reason").c_str(), getNumber(R, "total_us"),
                  getNumber(R, "states"), getString(R, "strategy").c_str());
    }
    return 0;
  }

  size_t Idx = A.Index < 0 ? Records.size() - 1 : static_cast<size_t>(A.Index);
  if (Idx >= Records.size()) {
    std::fprintf(stderr, "error: index %zu out of range (%zu artifacts)\n",
                 Idx, Records.size());
    return 1;
  }
  const JsonValue &R = Records[Idx];

  // Replay: run the captured script through the full SMT front end on a
  // fresh stack and diff the registry around it — the replay's own cache
  // attribution, independent of whatever state the original run had.
  std::string ReplayStatus;
  std::string ReplayStatsJson = "{}";
  int64_t ReplayUs = 0;
  if (A.Replay) {
    const std::string Script = getString(R, "script");
    if (Script.empty()) {
      std::fprintf(stderr,
                   "warning: artifact has no script; skipping replay\n");
    } else {
      RegexManager M;
      TrManager T(M);
      DerivativeEngine E(M, T);
      RegexSolver S(E);
      SmtSolver Smt(S);
      SolveOptions Opts;
      Opts.TimeoutMs = static_cast<int64_t>(getNumber(R, "timeout_ms"));
      Opts.MaxStates = static_cast<size_t>(getNumber(R, "max_states"));
      if (getString(R, "strategy") == "dfs")
        Opts.Strategy = SearchStrategy::Dfs;
      SmtResult Res = Smt.solveScript(Script, Opts);
      ReplayStatus = statusName(Res.Status);
      ReplayStatsJson = Res.Stats.json();
      ReplayUs = Res.Stats.TotalUs;
    }
  }

  if (A.Json) {
    // Machine-readable explain report: the artifact verbatim plus the
    // replay outcome (contract checked by scripts/ci/obs_overhead.sh).
    std::string Out = "{\"artifact_index\": " + std::to_string(Idx);
    Out += ", \"artifact_count\": " + std::to_string(Records.size());
    Out += ", \"status\": \"" + getString(R, "status") + "\"";
    Out += ", \"stop_reason\": \"" + getString(R, "stop_reason") + "\"";
    Out +=
        ", \"total_us\": " + std::to_string((long long)getNumber(R, "total_us"));
    Out += ", \"states\": " + std::to_string((long long)getNumber(R, "states"));
    Out += ", \"replayed\": ";
    Out += (A.Replay && !ReplayStatus.empty()) ? "true" : "false";
    Out += ", \"replay_status\": \"" + ReplayStatus + "\"";
    Out += ", \"replay_total_us\": " + std::to_string(ReplayUs);
    Out += ", \"replay_stats\": " + ReplayStatsJson;
    Out += "}";
    std::printf("%s\n", Out.c_str());
    return 0;
  }

  std::printf("== sbd-explain: artifact %zu of %zu (%s) ==\n", Idx,
              Records.size(), A.Path.c_str());
  std::printf("pattern:  %s\n", getString(R, "pattern").c_str());
  std::printf("verdict:  %s (stop=%s) in %.1f ms, %0.f states, "
              "strategy=%s timeout=%.0fms max-states=%.0f\n",
              getString(R, "status").c_str(),
              getString(R, "stop_reason").c_str(),
              getNumber(R, "total_us") / 1000.0, getNumber(R, "states"),
              getString(R, "strategy").c_str(), getNumber(R, "timeout_ms"),
              getNumber(R, "max_states"));

  std::vector<double> Trace;
  if (const JsonValue *T = R.get("frontier_trace"); T && T->isArray())
    for (const JsonValue &V : T->asArray())
      Trace.push_back(V.asNumber());
  printFrontierCurve(Trace,
                     static_cast<uint64_t>(getNumber(R, "frontier_stride")));

  if (const JsonValue *F = R.get("features"); F && F->isObject())
    printFeatures(*F);

  if (const JsonValue *Stats = R.get("stats"); Stats && Stats->isObject())
    printPhaseProfile(*Stats, getNumber(R, "total_us"));

  if (const JsonValue *Top = R.get("top_counters"); Top && Top->isObject()) {
    std::printf("top counter deltas:\n");
    for (const auto &KV : Top->asObject())
      std::printf("  %-28s %12.0f\n", KV.first.c_str(), KV.second.asNumber());
  }

  if (A.Replay) {
    if (ReplayStatus.empty()) {
      std::printf("replay: skipped\n");
    } else {
      std::printf("replay: status=%s in %.1f ms (fresh stack; captured run "
                  "took %.1f ms)\n",
                  ReplayStatus.c_str(), ReplayUs / 1000.0,
                  getNumber(R, "total_us") / 1000.0);
    }
  }
  return 0;
}
