//===- tools/sbd-server.cpp - Resident SMT-LIB solver service ---------------===//
///
/// \file
/// A resident front end speaking the SMT-LIB line protocol over
/// stdin/stdout (the ROADMAP's "service handling millions of requests"
/// shape, in-process): commands stream in, verdicts stream out, and the
/// solver state — regex arena, derivative graph, and the cross-query
/// verdict cache — stays warm between them. Every membership sub-query is
/// routed through the analyzer-driven portfolio (and, when enabled, the
/// verdict cache) via SmtSession.
///
/// Input is consumed in balanced-parenthesis chunks, so multi-line forms
/// and many-forms-per-line both work. Responses follow SMT-LIB: check-sat
/// prints sat/unsat/unknown, errors print (error "…"), successes are
/// silent unless (set-option :print-success true).
///
/// The arena grows monotonically within a session (hash-consing needs
/// stable node ids), so a long-lived server recycles the *whole* solver
/// stack at a safe point instead: on (reset), when the arena exceeds
/// --arena-budget nodes, the stack is rebuilt from scratch. The verdict
/// cache survives recycling by construction — its keys are canonical
/// prints, not arena pointers — so warmth is preserved across stacks
/// (DESIGN.md §15).
///
/// Flags:
///   --cache-capacity N   verdict-cache entries (default 65536; 0 disables)
///   --cache-load PATH    preload the cache from a JSONL snapshot
///   --cache-save PATH    write the cache as JSONL on exit
///   --arena-budget N     recycle the stack at (reset) past N nodes
///                        (default 1048576; 0 never recycles)
///   --timeout-ms N       per-sub-query wall-clock budget (default 10000)
///   --max-states N       per-sub-query state budget (default 0 = unlimited)
///   --stats-json PATH    write counters + wall time as JSON on exit
///
//===----------------------------------------------------------------------===//

#include "cache/VerdictCache.h"
#include "smt/SmtSolver.h"
#include "support/Metrics.h"
#include "support/Stopwatch.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

using namespace sbd;

namespace {

/// One rebuildable solver stack. Members are constructed in declaration
/// order, so the references wired through the constructors are valid; the
/// struct is non-movable and lives behind a unique_ptr (same shape as
/// BatchSolver's WorkerStack).
struct ServerStack {
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver S{E};
  SmtSession Session;

  explicit ServerStack(const SolveOptions &Opts) : Session(S, Opts) {}
  ServerStack(const ServerStack &) = delete;
  ServerStack &operator=(const ServerStack &) = delete;
};

struct ServerOptions {
  size_t CacheCapacity = 1 << 16;
  std::string CacheLoad;
  std::string CacheSave;
  size_t ArenaBudget = 1 << 20;
  std::string StatsJson;
  SolveOptions Solve;
};

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--cache-capacity N] [--cache-load PATH] [--cache-save "
      "PATH]\n           [--arena-budget N] [--timeout-ms N] [--max-states "
      "N] [--stats-json PATH]\n\nReads SMT-LIB commands from stdin, writes "
      "responses to stdout.\n",
      Argv0);
}

bool parseArgs(int Argc, char **Argv, ServerOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (!std::strcmp(Argv[I], "--cache-capacity")) {
      const char *V = needValue("--cache-capacity");
      if (!V)
        return false;
      Opts.CacheCapacity = static_cast<size_t>(std::strtoull(V, nullptr, 10));
    } else if (!std::strcmp(Argv[I], "--cache-load")) {
      const char *V = needValue("--cache-load");
      if (!V)
        return false;
      Opts.CacheLoad = V;
    } else if (!std::strcmp(Argv[I], "--cache-save")) {
      const char *V = needValue("--cache-save");
      if (!V)
        return false;
      Opts.CacheSave = V;
    } else if (!std::strcmp(Argv[I], "--arena-budget")) {
      const char *V = needValue("--arena-budget");
      if (!V)
        return false;
      Opts.ArenaBudget = static_cast<size_t>(std::strtoull(V, nullptr, 10));
    } else if (!std::strcmp(Argv[I], "--timeout-ms")) {
      const char *V = needValue("--timeout-ms");
      if (!V)
        return false;
      Opts.Solve.TimeoutMs = std::strtoll(V, nullptr, 10);
    } else if (!std::strcmp(Argv[I], "--max-states")) {
      const char *V = needValue("--max-states");
      if (!V)
        return false;
      Opts.Solve.MaxStates = static_cast<size_t>(std::strtoull(V, nullptr, 10));
    } else if (!std::strcmp(Argv[I], "--stats-json")) {
      const char *V = needValue("--stats-json");
      if (!V)
        return false;
      Opts.StatsJson = V;
    } else if (!std::strcmp(Argv[I], "-h") || !std::strcmp(Argv[I], "--help")) {
      usage(Argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", Argv[I]);
      usage(Argv[0]);
      return false;
    }
  }
  return true;
}

/// Tracks paren balance across lines so forms can span lines. SMT-LIB
/// string literals (with `""` escaping — each `"` just toggles the state)
/// and `;` comments (which never span lines) are respected.
class ChunkReader {
public:
  /// Adds one input line; returns true when the buffered text is balanced
  /// and non-empty (ready to parse).
  bool feed(const std::string &Line) {
    bool InComment = false;
    for (char C : Line) {
      if (InComment)
        continue;
      if (InString) {
        if (C == '"')
          InString = false;
        continue;
      }
      if (C == '"')
        InString = true;
      else if (C == ';')
        InComment = true;
      else if (C == '(')
        ++Depth;
      else if (C == ')' && Depth > 0)
        --Depth;
      HasText = HasText || !std::isspace(static_cast<unsigned char>(C));
    }
    Buf += Line;
    Buf += '\n';
    return Depth == 0 && !InString && HasText;
  }

  std::string take() {
    std::string Out = std::move(Buf);
    Buf.clear();
    Depth = 0;
    InString = false;
    HasText = false;
    return Out;
  }

  bool pending() const { return HasText; }

private:
  std::string Buf;
  int Depth = 0;
  bool InString = false;
  bool HasText = false;
};

void writeStats(const ServerOptions &Opts, const cache::VerdictCache *Cache,
                uint64_t Checks, int64_t WallUs) {
  if (Opts.StatsJson.empty())
    return;
  std::ofstream Out(Opts.StatsJson, std::ios::trunc);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Opts.StatsJson.c_str());
    return;
  }
  Out << "{\"wall_us\": " << WallUs << ", \"checks\": " << Checks;
  if (Cache) {
    cache::VerdictCacheCounters C = Cache->counters();
    Out << ", \"cache\": {\"hits\": " << C.Hits << ", \"misses\": " << C.Misses
        << ", \"inserts\": " << C.Inserts
        << ", \"evictions\": " << C.Evictions
        << ", \"revalidation_failures\": " << C.RevalidationFailures
        << ", \"size\": " << C.Size << "}";
  }
  Out << ", \"counters\": " << obs::MetricsRegistry::global().snapshot().json()
      << "}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions Opts;
  Opts.Solve.TimeoutMs = 10000;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;

  std::unique_ptr<cache::VerdictCache> Cache;
  if (Opts.CacheCapacity) {
    cache::VerdictCache::Config C;
    C.Capacity = Opts.CacheCapacity;
    Cache = std::make_unique<cache::VerdictCache>(C);
    if (!Opts.CacheLoad.empty()) {
      long Loaded = Cache->load(Opts.CacheLoad);
      if (Loaded < 0)
        std::fprintf(stderr, "; warning: cannot read cache %s\n",
                     Opts.CacheLoad.c_str());
      else
        std::fprintf(stderr, "; loaded %ld cached verdicts\n", Loaded);
    }
  }

  auto Stack = std::make_unique<ServerStack>(Opts.Solve);
  if (Cache)
    Stack->Session.setVerdictCache(Cache.get());
  uint64_t RetiredChecks = 0; // checks served by recycled stacks

  Stopwatch Wall;
  ChunkReader Reader;
  std::string Line;
  bool Done = false;
  while (!Done && std::getline(std::cin, Line)) {
    if (!Reader.feed(Line))
      continue;
    std::string Chunk = Reader.take();
    SExprParseResult Parsed = parseSExprs(Chunk);
    if (!Parsed.Ok) {
      std::cout << "(error \"parse error: " << Parsed.Error << "\")\n"
                << std::flush;
      continue;
    }
    for (const SExpr &Form : Parsed.Forms) {
      // Stack recycling safe point: at (reset) nothing outlives the
      // command, so when the arena has outgrown its budget the whole
      // stack is rebuilt instead of reset. The verdict cache carries the
      // accumulated warmth across the swap.
      if (Form.isList() && !Form.Kids.empty() &&
          Form.Kids[0].isSymbol("reset") && Opts.ArenaBudget &&
          Stack->M.numNodes() > Opts.ArenaBudget) {
        RetiredChecks += Stack->Session.checksRun();
        Stack = std::make_unique<ServerStack>(Opts.Solve);
        if (Cache)
          Stack->Session.setVerdictCache(Cache.get());
        continue;
      }
      SmtSession::Reply R = Stack->Session.execute(Form);
      if (!R.Text.empty())
        std::cout << R.Text << "\n" << std::flush;
      if (R.ExitRequested) {
        Done = true;
        break;
      }
    }
  }

  if (Cache && !Opts.CacheSave.empty() && !Cache->save(Opts.CacheSave))
    std::fprintf(stderr, "error: cannot write cache %s\n",
                 Opts.CacheSave.c_str());
  writeStats(Opts, Cache.get(), RetiredChecks + Stack->Session.checksRun(),
             Wall.elapsedUs());
  return 0;
}
