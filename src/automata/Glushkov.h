//===- automata/Glushkov.h - Plain RE → symbolic NFA -----------------------===//
///
/// \file
/// Epsilon-free (Glushkov-style) compilation of the *plain* RE fragment
/// (no complement, no intersection) into a symbolic NFA. Bounded loops are
/// unrolled — r{m,n} becomes m copies plus n−m optional copies — which is
/// exactly the eager cost the paper's benchmarks exercise: `.{k}` towers
/// multiply automaton size where a derivative just counts down a loop bound.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_AUTOMATA_GLUSHKOV_H
#define SBD_AUTOMATA_GLUSHKOV_H

#include "automata/Sfa.h"
#include "re/Regex.h"

#include <optional>

namespace sbd {

/// Compiles R ∈ RE into an NFA; fails (nullopt) when R uses `~`/`&` or when
/// loop unrolling exceeds \p MaxStates states (0 = unlimited).
std::optional<Snfa> compileReToNfa(const RegexManager &M, Re R,
                                   size_t MaxStates = 0);

} // namespace sbd

#endif // SBD_AUTOMATA_GLUSHKOV_H
