//===- automata/Sfa.h - Classical symbolic NFA / DFA ------------------------===//
///
/// \file
/// Classical symbolic finite automata (transitions carry CharSet guards)
/// and the eager constructions on them: determinization by subset
/// construction over local minterms, product, and complement. These are the
/// substrate for the "existing solution #1" baseline the paper contrasts
/// with (convert the regex to an automaton eagerly, then apply Boolean
/// operations on automata) — the approach whose state-space blowup symbolic
/// Boolean derivatives avoid.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_AUTOMATA_SFA_H
#define SBD_AUTOMATA_SFA_H

#include "charset/CharSet.h"

#include <optional>
#include <vector>

namespace sbd {

/// A (nondeterministic) symbolic finite automaton without epsilon moves.
struct Snfa {
  /// Per-state outgoing transitions (guard, target).
  std::vector<std::vector<std::pair<CharSet, uint32_t>>> Trans;
  std::vector<uint32_t> Initial;
  std::vector<bool> Final;

  size_t numStates() const { return Trans.size(); }
  size_t numTransitions() const;
  bool accepts(const std::vector<uint32_t> &Word) const;
  bool acceptsEmptyWord() const;
  /// Shortest accepted word via BFS reachability; nullopt when empty.
  std::optional<std::vector<uint32_t>> findWitness() const;

  /// --- Constructions (all epsilon-free) ------------------------------------
  static Snfa empty();
  static Snfa epsilon();
  static Snfa pred(const CharSet &Set);
  static Snfa concat(const Snfa &A, const Snfa &B);
  static Snfa star(const Snfa &A);
  static Snfa alternate(const Snfa &A, const Snfa &B);
  /// NFA product (intersection without determinization) — used by the
  /// NFA-product ablation of the eager baseline.
  static std::optional<Snfa> product(const Snfa &A, const Snfa &B,
                                     size_t MaxStates);
};

/// A complete deterministic symbolic finite automaton: each state's guards
/// partition the alphabet.
struct Sdfa {
  std::vector<std::vector<std::pair<CharSet, uint32_t>>> Trans;
  uint32_t Initial = 0;
  std::vector<bool> Final;

  size_t numStates() const { return Trans.size(); }
  bool accepts(const std::vector<uint32_t> &Word) const;

  /// Subset construction over local minterms. Returns nullopt past
  /// \p MaxStates (0 = unlimited).
  static std::optional<Sdfa> determinize(const Snfa &A, size_t MaxStates);

  /// Product construction restricted to reachable pairs; \p IsUnion picks
  /// final-state disjunction vs conjunction.
  static std::optional<Sdfa> product(const Sdfa &A, const Sdfa &B,
                                     bool IsUnion, size_t MaxStates);

  /// Complement = flip finals (automaton is complete by construction).
  Sdfa complement() const;

  /// Reachability-based emptiness; returns a witness when nonempty.
  std::optional<std::vector<uint32_t>> findWitness() const;

  /// View as an NFA (for further concat/star once Boolean ops introduced
  /// determinism).
  Snfa toNfa() const;

  /// Moore-style minimization over symbolic guards: repeatedly refines the
  /// final/non-final partition by per-block transition signatures until a
  /// fixpoint; the result is the unique minimal complete DFA for the same
  /// language. (The paper's intro notes eager pipelines can shrink their
  /// blowup through minimization "but only after the fact" — this is that
  /// operation, used by the EagerSolver's DeterminizeMinimize ablation.)
  Sdfa minimize() const;
};

} // namespace sbd

#endif // SBD_AUTOMATA_SFA_H
