//===- automata/Safa.h - Symbolic Alternating Finite Automata (§8.3) -------===//
///
/// \file
/// SAFAs in the sense of D'Antoni–Kincaid–Wang: transitions are triples
/// (q, ψ, p) with p ∈ B+(Q) — *positive* Boolean combinations only, which is
/// why SAFA does not support complement directly. Section 8.3 relates them
/// to SBFAs:
///
///  - Proposition 8.2: every SAFA embeds into an SBFA with transition
///    function q ↦ OR{ if(ψ, p, ⊥) : (q,ψ,p) ∈ ∆ }. Our `accepts` evaluates
///    exactly that form, so the embedding is definitional here.
///  - Proposition 8.3: every SBFA converts to a SAFA via *local
///    mintermization* of each state's guards — worst-case exponential in the
///    number of distinct guards per state, which is the measured cost the
///    paper's transition regexes avoid. `fromSbfa` implements this
///    construction and `numTransitions` exposes the blowup.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_AUTOMATA_SAFA_H
#define SBD_AUTOMATA_SAFA_H

#include "automata/BoolExpr.h"
#include "automata/Sbfa.h"
#include "charset/CharSet.h"

#include <memory>

namespace sbd {

/// A symbolic alternating finite automaton over the CharSet algebra.
class Safa {
public:
  /// One alternating transition (From, Guard, Target ∈ B+(Q)).
  struct Transition {
    uint32_t From;
    CharSet Guard;
    BE Target;
  };

  /// Converts an SBFA by local mintermization (Proposition 8.3). Because
  /// SBFA transitions may negate states (through `~` in ERE leaves), the
  /// construction first removes complement by doubling the state space
  /// with negated shadow states q̄ = q+N where ∆(q̄) = NNF(~∆(q)), exactly
  /// as described in Section 8.3.
  static Safa fromSbfa(const Sbfa &A);

  size_t numStates() const { return NumStates; }
  size_t numTransitions() const { return Transitions.size(); }
  const std::vector<Transition> &transitions() const { return Transitions; }
  BoolExprManager &exprManager() { return *Exprs; }
  BE initial() const { return Initial; }
  bool isFinal(uint32_t State) const { return Final[State]; }

  /// Alternating-run acceptance: one step replaces atom q by the OR of the
  /// targets of all transitions from q whose guard contains the character —
  /// precisely the SBFA form of Proposition 8.2.
  bool accepts(const std::vector<uint32_t> &Word);

private:
  Safa() : Exprs(std::make_unique<BoolExprManager>()) {}

  std::unique_ptr<BoolExprManager> Exprs;
  std::vector<Transition> Transitions;
  std::vector<std::vector<uint32_t>> ByState; // state -> transition indices
  std::vector<bool> Final;
  BE Initial{};
  size_t NumStates = 0;
};

} // namespace sbd

#endif // SBD_AUTOMATA_SAFA_H
