//===- automata/Dot.cpp - GraphViz rendering of automata -----------------------===//

#include "automata/Dot.h"

#include "charset/AlphabetCompressor.h"

using namespace sbd;

namespace {

/// Escapes a label for a DOT quoted string.
std::string dotEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

} // namespace

std::string sbd::sbfaToDot(const Sbfa &A) {
  RegexManager &M = A.engine().regexManager();
  TrManager &T = A.engine().trManager();
  std::string Out = "digraph sbfa {\n  rankdir=LR;\n"
                    "  node [fontname=\"monospace\"];\n";
  for (uint32_t Q = 0; Q != A.numStates(); ++Q) {
    Out += "  q" + std::to_string(Q) + " [label=\"" +
           dotEscape(M.toString(A.states()[Q])) + "\", shape=" +
           (A.isFinal(Q) ? "doublecircle" : "circle") + "];\n";
  }
  // Edges: per state, per minterm block of its guards, the Boolean target
  // combination printed on one edge to a synthetic node when it is not a
  // single state.
  BoolExprManager B;
  size_t Synth = 0;
  for (uint32_t Q = 0; Q != A.numStates(); ++Q) {
    if (Q == A.bottomState())
      continue;
    std::vector<CharSet> Guards;
    T.collectGuards(A.transition(Q), Guards);
    AlphabetCompressor Compressor(Guards);
    for (uint32_t Cls = 0; Cls != Compressor.numClasses(); ++Cls) {
      CharSet Block = Compressor.classSet(static_cast<uint16_t>(Cls));
      uint32_t Rep = Compressor.representative(static_cast<uint16_t>(Cls));
      BE Target = A.configAfter(B, Q, Rep);
      if (Target == B.falseExpr())
        continue;
      std::string Label = dotEscape(Block.str());
      const BoolExprNode &N = B.node(Target);
      if (N.Kind == BoolExprKind::Atom) {
        Out += "  q" + std::to_string(Q) + " -> q" +
               std::to_string(N.Atom) + " [label=\"" + Label + "\"];\n";
        continue;
      }
      if (Target == B.trueExpr()) {
        Out += "  q" + std::to_string(Q) + " -> q" +
               std::to_string(A.topState()) + " [label=\"" + Label +
               "\"];\n";
        continue;
      }
      // Boolean combination: a small synthetic junction node.
      std::string Junction = "b" + std::to_string(Synth++);
      std::string Expr = B.toString(
          Target, [&](uint32_t S) { return "q" + std::to_string(S); });
      Out += "  " + Junction + " [label=\"" + dotEscape(Expr) +
             "\", shape=box, style=dashed];\n";
      Out += "  q" + std::to_string(Q) + " -> " + Junction + " [label=\"" +
             Label + "\"];\n";
      for (uint32_t S : B.atoms(Target))
        Out += "  " + Junction + " -> q" + std::to_string(S) +
               " [style=dashed];\n";
    }
  }
  Out += "}\n";
  return Out;
}

std::string sbd::nfaToDot(const Snfa &A) {
  std::string Out = "digraph nfa {\n  rankdir=LR;\n";
  for (uint32_t S = 0; S != A.numStates(); ++S)
    Out += "  s" + std::to_string(S) + " [shape=" +
           (A.Final[S] ? "doublecircle" : "circle") + "];\n";
  for (uint32_t I : A.Initial)
    Out += "  start" + std::to_string(I) + " [shape=point]; start" +
           std::to_string(I) + " -> s" + std::to_string(I) + ";\n";
  for (uint32_t S = 0; S != A.numStates(); ++S)
    for (const auto &[Guard, To] : A.Trans[S])
      Out += "  s" + std::to_string(S) + " -> s" + std::to_string(To) +
             " [label=\"" + dotEscape(Guard.str()) + "\"];\n";
  Out += "}\n";
  return Out;
}

std::string sbd::dfaToDot(const Sdfa &A) {
  std::string Out = "digraph dfa {\n  rankdir=LR;\n";
  for (uint32_t S = 0; S != A.numStates(); ++S)
    Out += "  s" + std::to_string(S) + " [shape=" +
           (A.Final[S] ? "doublecircle" : "circle") + "];\n";
  Out += "  start [shape=point]; start -> s" + std::to_string(A.Initial) +
         ";\n";
  for (uint32_t S = 0; S != A.numStates(); ++S)
    for (const auto &[Guard, To] : A.Trans[S])
      Out += "  s" + std::to_string(S) + " -> s" + std::to_string(To) +
             " [label=\"" + dotEscape(Guard.str()) + "\"];\n";
  Out += "}\n";
  return Out;
}
