//===- automata/Sbfa.h - Symbolic Boolean Finite Automata (Section 7) ------===//
///
/// \file
/// Symbolic Boolean Finite Automata: M = (A, Q, ι, F, q⊥, ∆) with
/// ∆ : Q → TR_Q. This is the paper's unifying automaton model; the
/// derivatives of an extended regex correspond to the states of SBFA(R):
///
///   Q = δ⁺(R) ∪ {R, ⊥, .*},  ι = R,  F = {q ∈ Q : ν(q)},  ∆ = δ↾Q.
///
/// *State granularity.* Following the construction under Theorem 7.1, a
/// terminal of a transition regex is found by descending through `if`,
/// `|`, `&` and `~` — including the Boolean structure at the top of ERE
/// leaves — so states (other than possibly ι) are never conjunctions,
/// disjunctions or complements; Boolean structure lives in the transitions
/// as B(Q) combinations. This is precisely what makes Theorem 7.3 work:
/// for clean, normalized, loop-free R ∈ B(RE), |Q| ≤ ♯(R) + 3. (The
/// solver of Section 5 deliberately uses the coarser conjunction-of-states
/// granularity — leaves of δdnf — which is exponential in the worst case;
/// see the Complexity discussion in the paper.)
///
/// Runs are Boolean combinations over Q evolved by simultaneous
/// substitution of each state atom with ∆(q)(a); acceptance evaluates the
/// final combination under ν_F. `accepts` implements this alternating
/// semantics literally — it is deliberately *not* routed through the
/// derivative matcher, so Theorem 7.2 (L(M) = L(R)) is checkable by
/// comparing the two.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_AUTOMATA_SBFA_H
#define SBD_AUTOMATA_SBFA_H

#include "automata/BoolExpr.h"
#include "core/Derivatives.h"

#include <memory>
#include <optional>
#include <unordered_map>

namespace sbd {

/// An SBFA constructed from a regex; states are interned regexes.
class Sbfa {
public:
  /// Builds SBFA(R) by computing the δ⁺ fixpoint over atomic terminals.
  /// Returns nullopt if more than \p MaxStates states are produced
  /// (0 = unlimited).
  static std::optional<Sbfa> build(DerivativeEngine &Engine, Re R,
                                   size_t MaxStates = 0);

  /// Total number of states |Q| (includes ⊥, .*, and ι).
  size_t numStates() const { return States.size(); }

  /// The regex each state stands for.
  const std::vector<Re> &states() const { return States; }

  /// Index of the initial state ι (the regex R itself; the only state that
  /// may be a Boolean combination).
  uint32_t initialState() const { return Initial; }
  /// Index of the bottom state q⊥.
  uint32_t bottomState() const { return Bottom; }
  /// Index of the top state .* (= ~q⊥).
  uint32_t topState() const { return Top; }

  /// ∆(q): the transition regex of a state (terminals are states of Q).
  Tr transition(uint32_t State) const { return Delta[State]; }

  /// ν_F on plain states.
  bool isFinal(uint32_t State) const { return Final[State]; }

  /// Alternating-run acceptance: evolves ι through ∆ by substitution and
  /// evaluates under ν_F (the Section 7 semantics).
  bool accepts(const std::vector<uint32_t> &Word);

  /// State index of a regex, if it is a state.
  std::optional<uint32_t> stateOf(Re R) const;

  /// ∆(State)(Ch) as a Boolean combination over state atoms (q⊥ ↦ false,
  /// .* ↦ true; leaf regexes decompose through their own |, &, ~). Shared
  /// by the alternating run and by the SAFA conversion.
  BE configAfter(BoolExprManager &B, uint32_t State, uint32_t Ch) const;

  /// ι as a run configuration: the atom of the initial state (false/true
  /// when R is ⊥/.*).
  BE configInitial(BoolExprManager &B) const {
    if (Initial == Bottom)
      return B.falseExpr();
    if (Initial == Top)
      return B.trueExpr();
    return B.atom(Initial);
  }

  /// The engine (and thereby the arenas) this automaton lives in.
  DerivativeEngine &engine() const { return *Engine; }

private:
  explicit Sbfa(DerivativeEngine &Eng)
      : Engine(&Eng), Exprs(std::make_unique<BoolExprManager>()) {}

  /// Decomposes the Boolean structure of an ERE into atomic terminals.
  void collectAtomics(Re R, std::vector<Re> &Out) const;
  /// Interns an *atomic* regex as a state.
  uint32_t internState(Re R);
  /// Translates a leaf regex into B(Q) over atomic states.
  BE leafToExpr(BoolExprManager &B, Re R) const;
  BE trToExpr(BoolExprManager &B, Tr Node, uint32_t Ch) const;

  DerivativeEngine *Engine;
  std::unique_ptr<BoolExprManager> Exprs; // owns the run configurations
  std::vector<Re> States;
  std::vector<Tr> Delta;
  std::vector<bool> Final;
  std::unordered_map<uint32_t, uint32_t> StateIndex; // Re.Id -> state
  uint32_t Initial = 0;
  uint32_t Bottom = 0;
  uint32_t Top = 0;
  BE InitialExpr{};
};

} // namespace sbd

#endif // SBD_AUTOMATA_SBFA_H
