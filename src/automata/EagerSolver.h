//===- automata/EagerSolver.h - Eager automata baseline ---------------------===//
///
/// \file
/// The "existing solution #1" baseline of the paper's introduction: convert
/// each regex into an automaton eagerly and propagate Boolean connectives
/// into automata operations — products for `&`/`|` and
/// determinize-then-flip for `~`. The entire state space is materialized up
/// front, so constraints like `~(.*a.{100})` or `(.*a.{k})&(.*b.{k})`
/// exhibit the exponential blowup that motivates symbolic Boolean
/// derivatives.
///
/// Two policies are provided:
///  - `Determinize` (default): Boolean nodes operate on DFAs (classic
///    eager product-automaton pipeline; complement is free, `&`/`|` are
///    DFA products, but determinization pays the exponential).
///  - `NfaProduct`: keeps `&`/`|` on NFAs and determinizes only for `~`
///    (an ablation showing where exactly the blowup comes from).
///
//===----------------------------------------------------------------------===//

#ifndef SBD_AUTOMATA_EAGERSOLVER_H
#define SBD_AUTOMATA_EAGERSOLVER_H

#include "analysis/RegexAnalyzer.h"
#include "automata/Glushkov.h"
#include "automata/Sfa.h"
#include "solver/SolverResult.h"

namespace sbd {

/// Eager automata-based satisfiability solver for ERE.
class EagerSolver {
public:
  enum class Policy : uint8_t {
    Determinize,         ///< DFA at every Boolean node (classic pipeline)
    DeterminizeMinimize, ///< as Determinize, plus minimization after every
                         ///< determinization/product ("after the fact")
    NfaProduct,          ///< NFA products for & and |; determinize for ~
  };

  explicit EagerSolver(RegexManager &Mgr, Policy P = Policy::Determinize)
      : M(Mgr), Pol(P) {}

  /// Decides nonemptiness of L(R) by building the automaton eagerly.
  SolveResult solve(Re R, const SolveOptions &Opts = {});

  /// Result-extraction hook for the differential oracle (fuzz/Oracle.h):
  /// compiles R all the way to a complete DFA through the same eager
  /// product pipeline solve() uses, so membership can be cross-checked
  /// against the derivative engines on concrete words. Returns nullopt when
  /// the construction exceeds \p MaxStates (0 = unlimited).
  std::optional<Sdfa> compileDfa(Re R, size_t MaxStates = 0);

  /// States constructed by the most recent solve() (blowup metric).
  size_t lastStatesBuilt() const { return StatesBuilt; }

private:
  std::optional<Snfa> compileNfa(Re R, size_t MaxStates, bool &TimedOut);

  RegexManager &M;
  analysis::RegexAnalyzer Analyzer{M};
  Policy Pol;
  size_t StatesBuilt = 0;
  int64_t DeadlineMs = 0;
  const class Stopwatch *Timer = nullptr;
};

} // namespace sbd

#endif // SBD_AUTOMATA_EAGERSOLVER_H
