//===- automata/Sbfa.cpp - Symbolic Boolean Finite Automata -----------------===//

#include "automata/Sbfa.h"

#include "support/Debug.h"

#include <deque>

using namespace sbd;

void Sbfa::collectAtomics(Re R, std::vector<Re> &Out) const {
  const RegexManager &M = Engine->regexManager();
  switch (M.kind(R)) {
  case RegexKind::Union:
  case RegexKind::Inter:
  case RegexKind::Compl:
    for (Re Kid : M.node(R).Kids)
      collectAtomics(Kid, Out);
    return;
  default:
    Out.push_back(R);
    return;
  }
}

uint32_t Sbfa::internState(Re R) {
  auto It = StateIndex.find(R.Id);
  if (It != StateIndex.end())
    return It->second;
  uint32_t Idx = static_cast<uint32_t>(States.size());
  States.push_back(R);
  Delta.push_back(Tr{}); // filled when the state is expanded
  Final.push_back(Engine->regexManager().nullable(R));
  StateIndex.emplace(R.Id, Idx);
  return Idx;
}

std::optional<Sbfa> Sbfa::build(DerivativeEngine &Engine, Re R,
                                size_t MaxStates) {
  RegexManager &M = Engine.regexManager();
  TrManager &T = Engine.trManager();

  Sbfa A(Engine);
  // Q always contains the trivial states; ι = R is a state too (the only
  // one that may carry Boolean structure).
  A.Bottom = A.internState(M.empty());
  A.Top = A.internState(M.top());
  A.Initial = A.internState(R);
  // ∆(q⊥) = q⊥ and ∆(.*) = .* — both are fixed points of δ.
  A.Delta[A.Bottom] = T.bot();
  A.Delta[A.Top] = T.topLeaf();

  std::deque<uint32_t> Work;
  if (A.Initial != A.Bottom && A.Initial != A.Top)
    Work.push_back(A.Initial);
  while (!Work.empty()) {
    uint32_t Q = Work.front();
    Work.pop_front();
    Tr D = Engine.derivative(A.States[Q]);
    A.Delta[Q] = D;
    // Terminals: descend through the TR structure *and* through the
    // Boolean structure of its ERE leaves.
    std::vector<Re> Leaves;
    T.collectLeaves(D, Leaves, /*IncludeTrivial=*/false);
    std::vector<Re> Atomics;
    for (Re Leaf : Leaves)
      A.collectAtomics(Leaf, Atomics);
    for (Re Atomic : Atomics) {
      if (Atomic == M.empty() || Atomic == M.top() ||
          A.StateIndex.count(Atomic.Id))
        continue;
      if (MaxStates && A.States.size() >= MaxStates)
        return std::nullopt;
      Work.push_back(A.internState(Atomic));
    }
  }
  // ι is the state of R itself (the one state allowed to carry Boolean
  // structure); the first step through ∆(ι) = δ(R) moves to atomic states.
  A.InitialExpr = A.configInitial(*A.Exprs);
  return A;
}

std::optional<uint32_t> Sbfa::stateOf(Re R) const {
  auto It = StateIndex.find(R.Id);
  if (It == StateIndex.end())
    return std::nullopt;
  return It->second;
}

BE Sbfa::leafToExpr(BoolExprManager &B, Re R) const {
  const RegexManager &M = Engine->regexManager();
  if (R == M.empty())
    return B.falseExpr();
  if (R == M.top())
    return B.trueExpr();
  switch (M.kind(R)) {
  case RegexKind::Union:
  case RegexKind::Inter: {
    std::vector<BE> Kids;
    for (Re Kid : M.node(R).Kids)
      Kids.push_back(leafToExpr(B, Kid));
    return M.kind(R) == RegexKind::Union ? B.or_(std::move(Kids))
                                         : B.and_(std::move(Kids));
  }
  case RegexKind::Compl:
    return B.not_(leafToExpr(B, M.node(R).Kids[0]));
  default: {
    auto It = StateIndex.find(R.Id);
    assert(It != StateIndex.end() && "atomic leaf is not a state");
    return B.atom(It->second);
  }
  }
}

BE Sbfa::trToExpr(BoolExprManager &B, Tr Node, uint32_t Ch) const {
  const TrManager &T = Engine->trManager();
  const TrNode &N = T.node(Node);
  switch (N.Kind) {
  case TrKind::Leaf:
    return leafToExpr(B, N.LeafRe);
  case TrKind::Ite:
    return trToExpr(B, N.Cond.contains(Ch) ? N.Kids[0] : N.Kids[1], Ch);
  case TrKind::Union:
  case TrKind::Inter: {
    std::vector<BE> Kids;
    Kids.reserve(N.Kids.size());
    for (Tr Kid : N.Kids)
      Kids.push_back(trToExpr(B, Kid, Ch));
    return N.Kind == TrKind::Union ? B.or_(std::move(Kids))
                                   : B.and_(std::move(Kids));
  }
  }
  sbd_unreachable("covered switch");
}

BE Sbfa::configAfter(BoolExprManager &B, uint32_t State, uint32_t Ch) const {
  return trToExpr(B, Delta[State], Ch);
}

bool Sbfa::accepts(const std::vector<uint32_t> &Word) {
  BoolExprManager &B = *Exprs;
  BE Config = InitialExpr;
  for (uint32_t Ch : Word) {
    // The run configuration is an element of B(Q); one step substitutes
    // every state atom q by the Boolean combination ∆(q)(Ch).
    Config = B.substitute(
        Config, [&](uint32_t State) { return configAfter(B, State, Ch); });
    // False (q⊥) and True (.*) are fixed points of substitution: the rest
    // of the word cannot change the outcome.
    if (Config == B.falseExpr())
      return false;
    if (Config == B.trueExpr())
      return true;
  }
  return B.eval(Config, [&](uint32_t State) { return Final[State]; });
}
