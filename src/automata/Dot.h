//===- automata/Dot.h - GraphViz rendering of automata ------------------------===//
///
/// \file
/// DOT (GraphViz) renderers for the automata and graphs in this library —
/// used by examples and handy when debugging solver behaviour. Each
/// function returns a complete `digraph { … }` document; render with
/// `dot -Tsvg`.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_AUTOMATA_DOT_H
#define SBD_AUTOMATA_DOT_H

#include "automata/Sbfa.h"
#include "automata/Sfa.h"

#include <string>

namespace sbd {

/// Renders an SBFA: states labelled by their regexes (double circles for
/// final states), edges labelled by guard blocks with Boolean-combination
/// targets expanded per arc.
std::string sbfaToDot(const Sbfa &A);

/// Renders a symbolic NFA.
std::string nfaToDot(const Snfa &A);

/// Renders a complete symbolic DFA.
std::string dfaToDot(const Sdfa &A);

} // namespace sbd

#endif // SBD_AUTOMATA_DOT_H
