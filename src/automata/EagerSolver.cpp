//===- automata/EagerSolver.cpp - Eager automata baseline -------------------===//

#include "automata/EagerSolver.h"

#include "support/Debug.h"
#include "support/Stopwatch.h"

using namespace sbd;

std::optional<Snfa> EagerSolver::compileNfa(Re R, size_t MaxStates,
                                            bool &TimedOut) {
  if (DeadlineMs > 0 && Timer->elapsedMs() > DeadlineMs) {
    TimedOut = true;
    return std::nullopt;
  }

  // Plain RE subtrees compile directly (the cheap path a classic solver
  // also has). The fragment test is an O(1) analyzer feature lookup after
  // the first fold — the old per-recursion-level isPlainRe tree walk made
  // this quadratic on deep terms.
  const analysis::RegexFeatures &F = Analyzer.analyze(R);
  if (F.NumCompl == 0 && F.NumInter == 0) {
    auto A = compileReToNfa(M, R, MaxStates);
    if (A)
      StatesBuilt += A->numStates();
    return A;
  }

  const RegexNode &N = M.node(R);
  switch (N.Kind) {
  case RegexKind::Union:
  case RegexKind::Inter: {
    bool IsUnion = N.Kind == RegexKind::Union;
    if (Pol == Policy::NfaProduct && !IsUnion) {
      // Ablation policy: intersection as an NFA product.
      std::optional<Snfa> Acc;
      for (Re Kid : N.Kids) {
        auto A = compileNfa(Kid, MaxStates, TimedOut);
        if (!A)
          return std::nullopt;
        if (!Acc) {
          Acc = std::move(A);
          continue;
        }
        Acc = Snfa::product(*Acc, *A, MaxStates);
        if (!Acc)
          return std::nullopt;
        StatesBuilt += Acc->numStates();
      }
      return Acc;
    }
    // Classic policy: DFA product at every Boolean node.
    bool Minimize = Pol == Policy::DeterminizeMinimize;
    std::optional<Sdfa> Acc;
    for (Re Kid : N.Kids) {
      auto A = compileNfa(Kid, MaxStates, TimedOut);
      if (!A)
        return std::nullopt;
      auto D = Sdfa::determinize(*A, MaxStates);
      if (!D)
        return std::nullopt;
      StatesBuilt += D->numStates();
      if (Minimize)
        D = D->minimize();
      if (!Acc) {
        Acc = std::move(D);
        continue;
      }
      Acc = Sdfa::product(*Acc, *D, IsUnion, MaxStates);
      if (!Acc)
        return std::nullopt;
      StatesBuilt += Acc->numStates();
      if (Minimize)
        Acc = Acc->minimize();
    }
    return Acc->toNfa();
  }
  case RegexKind::Compl: {
    auto A = compileNfa(N.Kids[0], MaxStates, TimedOut);
    if (!A)
      return std::nullopt;
    auto D = Sdfa::determinize(*A, MaxStates);
    if (!D)
      return std::nullopt;
    StatesBuilt += D->numStates();
    if (Pol == Policy::DeterminizeMinimize)
      D = D->minimize();
    return D->complement().toNfa();
  }
  case RegexKind::Concat: {
    auto A = compileNfa(N.Kids[0], MaxStates, TimedOut);
    auto B = compileNfa(N.Kids[1], MaxStates, TimedOut);
    if (!A || !B)
      return std::nullopt;
    Snfa C = Snfa::concat(*A, *B);
    if (MaxStates && C.numStates() > MaxStates)
      return std::nullopt;
    StatesBuilt += C.numStates();
    return C;
  }
  case RegexKind::Star: {
    auto A = compileNfa(N.Kids[0], MaxStates, TimedOut);
    if (!A)
      return std::nullopt;
    Snfa S = Snfa::star(*A);
    if (MaxStates && S.numStates() > MaxStates)
      return std::nullopt;
    StatesBuilt += S.numStates();
    return S;
  }
  case RegexKind::Loop: {
    // Unroll the loop over the compiled body.
    auto Body = compileNfa(N.Kids[0], MaxStates, TimedOut);
    if (!Body)
      return std::nullopt;
    Snfa Acc = Snfa::epsilon();
    for (uint32_t I = 0; I != N.LoopMin; ++I) {
      Acc = Snfa::concat(Acc, *Body);
      if (MaxStates && Acc.numStates() > MaxStates)
        return std::nullopt;
    }
    if (N.LoopMax == LoopInf) {
      Acc = Snfa::concat(Acc, Snfa::star(*Body));
    } else {
      Snfa OptBody = Snfa::alternate(*Body, Snfa::epsilon());
      for (uint32_t I = N.LoopMin; I != N.LoopMax; ++I) {
        Acc = Snfa::concat(Acc, OptBody);
        if (MaxStates && Acc.numStates() > MaxStates)
          return std::nullopt;
      }
    }
    StatesBuilt += Acc.numStates();
    return Acc;
  }
  case RegexKind::Empty:
  case RegexKind::Epsilon:
  case RegexKind::Pred:
    sbd_unreachable("leaf kinds are plain RE and handled above");
  }
  sbd_unreachable("covered switch");
}

std::optional<Sdfa> EagerSolver::compileDfa(Re R, size_t MaxStates) {
  Stopwatch Watch;
  Timer = &Watch;
  DeadlineMs = 0; // deterministic: bounded by states, never wall clock
  StatesBuilt = 0;
  bool TimedOut = false;
  auto A = compileNfa(R, MaxStates, TimedOut);
  Timer = nullptr;
  if (!A)
    return std::nullopt;
  auto D = Sdfa::determinize(*A, MaxStates);
  if (D)
    StatesBuilt += D->numStates();
  return D;
}

SolveResult EagerSolver::solve(Re R, const SolveOptions &Opts) {
  Stopwatch Watch;
  Timer = &Watch;
  DeadlineMs = Opts.TimeoutMs;
  StatesBuilt = 0;

  SolveResult Result;
  Result.Stats.Engine = SolveEngine::Eager;
  bool TimedOut = false;
  auto A = compileNfa(R, Opts.MaxStates, TimedOut);
  if (!A) {
    Result.Status = SolveStatus::Unknown;
    Result.Stop = TimedOut ? StopReason::Timeout : StopReason::StateBudget;
    Result.Note = TimedOut ? "timeout" : "state budget exhausted";
    Result.StatesExplored = StatesBuilt;
    Result.TimeUs = Watch.elapsedUs();
    Result.Stats.TotalUs = Result.TimeUs;
    Result.Stats.SearchUs = Result.TimeUs;
    Timer = nullptr;
    return Result;
  }
  // Emptiness of the final automaton is plain reachability — no
  // determinization needed at this point.
  auto Witness = A->findWitness();
  if (Witness) {
    Result.Status = SolveStatus::Sat;
    Result.Witness = std::move(*Witness);
  } else {
    Result.Status = SolveStatus::Unsat;
  }
  Result.StatesExplored = StatesBuilt;
  Result.TimeUs = Watch.elapsedUs();
  Result.Stats.TotalUs = Result.TimeUs;
  Result.Stats.SearchUs = Result.TimeUs;
  Timer = nullptr;
  return Result;
}
