//===- automata/Sfa.cpp - Classical symbolic NFA / DFA ----------------------===//

#include "automata/Sfa.h"

#include "charset/AlphabetCompressor.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <set>

using namespace sbd;

size_t Snfa::numTransitions() const {
  size_t N = 0;
  for (const auto &Out : Trans)
    N += Out.size();
  return N;
}

bool Snfa::acceptsEmptyWord() const {
  for (uint32_t S : Initial)
    if (Final[S])
      return true;
  return false;
}

bool Snfa::accepts(const std::vector<uint32_t> &Word) const {
  std::set<uint32_t> Cur(Initial.begin(), Initial.end());
  for (uint32_t Ch : Word) {
    std::set<uint32_t> Next;
    for (uint32_t S : Cur)
      for (const auto &[Guard, To] : Trans[S])
        if (Guard.contains(Ch))
          Next.insert(To);
    Cur = std::move(Next);
    if (Cur.empty())
      return false;
  }
  for (uint32_t S : Cur)
    if (Final[S])
      return true;
  return false;
}

std::optional<std::vector<uint32_t>> Snfa::findWitness() const {
  struct Parent {
    uint32_t State;
    uint32_t Ch;
    bool HasParent;
  };
  std::vector<Parent> Parents(numStates(), {0, 0, false});
  std::vector<bool> Seen(numStates(), false);
  std::deque<uint32_t> Work;
  for (uint32_t S : Initial) {
    if (Seen[S])
      continue;
    Seen[S] = true;
    Work.push_back(S);
  }
  while (!Work.empty()) {
    uint32_t Cur = Work.front();
    Work.pop_front();
    if (Final[Cur]) {
      std::vector<uint32_t> Word;
      uint32_t S = Cur;
      while (Parents[S].HasParent) {
        Word.push_back(Parents[S].Ch);
        S = Parents[S].State;
      }
      std::reverse(Word.begin(), Word.end());
      return Word;
    }
    for (const auto &[Guard, To] : Trans[Cur]) {
      if (Seen[To] || Guard.isEmpty())
        continue;
      Seen[To] = true;
      Parents[To] = {Cur, *Guard.sample(), true};
      Work.push_back(To);
    }
  }
  return std::nullopt;
}

Snfa Snfa::empty() {
  Snfa A;
  A.Trans.resize(1);
  A.Initial = {0};
  A.Final = {false};
  return A;
}

Snfa Snfa::epsilon() {
  Snfa A;
  A.Trans.resize(1);
  A.Initial = {0};
  A.Final = {true};
  return A;
}

Snfa Snfa::pred(const CharSet &Set) {
  Snfa A;
  A.Trans.resize(2);
  if (!Set.isEmpty())
    A.Trans[0].push_back({Set, 1});
  A.Initial = {0};
  A.Final = {false, true};
  return A;
}

/// Appends B's states after A's, returning the index offset of B.
static uint32_t appendStates(Snfa &A, const Snfa &B) {
  uint32_t Offset = static_cast<uint32_t>(A.Trans.size());
  for (const auto &Out : B.Trans) {
    A.Trans.emplace_back();
    for (const auto &[Guard, To] : Out)
      A.Trans.back().push_back({Guard, To + Offset});
    A.Final.push_back(false);
  }
  return Offset;
}

Snfa Snfa::concat(const Snfa &A, const Snfa &B) {
  // Epsilon-free concatenation: every final state of A additionally gets
  // the outgoing transitions of B's initial states; finality comes from B
  // (plus A's finals when B accepts ε).
  Snfa R = A;
  std::fill(R.Final.begin(), R.Final.end(), false);
  uint32_t Offset = appendStates(R, B);
  for (uint32_t S = 0; S != A.numStates(); ++S) {
    if (!A.Final[S])
      continue;
    for (uint32_t BI : B.Initial)
      for (const auto &[Guard, To] : B.Trans[BI])
        R.Trans[S].push_back({Guard, To + Offset});
    if (B.acceptsEmptyWord())
      R.Final[S] = true;
  }
  for (uint32_t S = 0; S != B.numStates(); ++S)
    if (B.Final[S])
      R.Final[S + Offset] = true;
  R.Initial = A.Initial;
  return R;
}

Snfa Snfa::star(const Snfa &A) {
  // Fresh accepting initial state; loops from finals back to the initial
  // transitions.
  Snfa R;
  R.Trans.resize(1);
  R.Final = {true};
  uint32_t Offset = appendStates(R, A);
  for (uint32_t AI : A.Initial)
    for (const auto &[Guard, To] : A.Trans[AI])
      R.Trans[0].push_back({Guard, To + Offset});
  for (uint32_t S = 0; S != A.numStates(); ++S) {
    if (!A.Final[S])
      continue;
    R.Final[S + Offset] = true;
    for (uint32_t AI : A.Initial)
      for (const auto &[Guard, To] : A.Trans[AI])
        R.Trans[S + Offset].push_back({Guard, To + Offset});
  }
  R.Initial = {0};
  return R;
}

Snfa Snfa::alternate(const Snfa &A, const Snfa &B) {
  Snfa R = A;
  uint32_t Offset = appendStates(R, B);
  for (uint32_t S = 0; S != B.numStates(); ++S)
    if (B.Final[S])
      R.Final[S + Offset] = true;
  R.Initial = A.Initial;
  for (uint32_t BI : B.Initial)
    R.Initial.push_back(BI + Offset);
  return R;
}

std::optional<Snfa> Snfa::product(const Snfa &A, const Snfa &B,
                                  size_t MaxStates) {
  Snfa R;
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> Index;
  std::deque<std::pair<uint32_t, uint32_t>> Work;
  auto internPair = [&](uint32_t X, uint32_t Y) -> std::optional<uint32_t> {
    auto [It, Inserted] = Index.emplace(std::make_pair(X, Y),
                                        static_cast<uint32_t>(R.Trans.size()));
    if (Inserted) {
      if (MaxStates && R.Trans.size() >= MaxStates)
        return std::nullopt;
      R.Trans.emplace_back();
      R.Final.push_back(A.Final[X] && B.Final[Y]);
      Work.push_back({X, Y});
    }
    return It->second;
  };
  for (uint32_t AI : A.Initial)
    for (uint32_t BI : B.Initial) {
      auto S = internPair(AI, BI);
      if (!S)
        return std::nullopt;
      R.Initial.push_back(*S);
    }
  while (!Work.empty()) {
    auto [X, Y] = Work.front();
    Work.pop_front();
    uint32_t From = Index.at({X, Y});
    for (const auto &[GA, TA] : A.Trans[X])
      for (const auto &[GB, TB] : B.Trans[Y]) {
        CharSet G = GA.intersectWith(GB);
        if (G.isEmpty())
          continue;
        auto To = internPair(TA, TB);
        if (!To)
          return std::nullopt;
        R.Trans[From].push_back({G, *To});
      }
  }
  return R;
}

bool Sdfa::accepts(const std::vector<uint32_t> &Word) const {
  uint32_t Cur = Initial;
  for (uint32_t Ch : Word) {
    bool Moved = false;
    for (const auto &[Guard, To] : Trans[Cur]) {
      if (Guard.contains(Ch)) {
        Cur = To;
        Moved = true;
        break;
      }
    }
    assert(Moved && "complete DFA must always move");
    if (!Moved)
      return false;
  }
  return Final[Cur];
}

std::optional<Sdfa> Sdfa::determinize(const Snfa &A, size_t MaxStates) {
  Sdfa D;
  std::map<std::vector<uint32_t>, uint32_t> Index;
  std::deque<std::vector<uint32_t>> Work;

  auto internSet =
      [&](std::vector<uint32_t> Set) -> std::optional<uint32_t> {
    std::sort(Set.begin(), Set.end());
    Set.erase(std::unique(Set.begin(), Set.end()), Set.end());
    auto [It, Inserted] =
        Index.emplace(Set, static_cast<uint32_t>(D.Trans.size()));
    if (Inserted) {
      if (MaxStates && D.Trans.size() >= MaxStates)
        return std::nullopt;
      D.Trans.emplace_back();
      bool IsFinal = false;
      for (uint32_t S : Set)
        IsFinal = IsFinal || A.Final[S];
      D.Final.push_back(IsFinal);
      Work.push_back(Set);
    }
    return It->second;
  };

  auto Init = internSet(A.Initial);
  if (!Init)
    return std::nullopt;
  D.Initial = *Init;

  while (!Work.empty()) {
    std::vector<uint32_t> Set = Work.front();
    Work.pop_front();
    uint32_t From = Index.at(Set);
    // Local mintermization of the outgoing guards of this subset: one probe
    // of the class representative decides the whole minterm block.
    std::vector<CharSet> Guards;
    for (uint32_t S : Set)
      for (const auto &[Guard, To] : A.Trans[S])
        Guards.push_back(Guard);
    AlphabetCompressor Compressor(Guards);
    for (uint32_t Cls = 0; Cls != Compressor.numClasses(); ++Cls) {
      uint32_t Rep = Compressor.representative(static_cast<uint16_t>(Cls));
      std::vector<uint32_t> Targets;
      for (uint32_t S : Set)
        for (const auto &[Guard, To] : A.Trans[S])
          if (Guard.contains(Rep))
            Targets.push_back(To);
      auto To = internSet(std::move(Targets)); // ∅ = the sink state
      if (!To)
        return std::nullopt;
      D.Trans[From].push_back(
          {Compressor.classSet(static_cast<uint16_t>(Cls)), *To});
    }
  }
  return D;
}

std::optional<Sdfa> Sdfa::product(const Sdfa &A, const Sdfa &B, bool IsUnion,
                                  size_t MaxStates) {
  Sdfa D;
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> Index;
  std::deque<std::pair<uint32_t, uint32_t>> Work;
  auto internPair = [&](uint32_t X, uint32_t Y) -> std::optional<uint32_t> {
    auto [It, Inserted] = Index.emplace(std::make_pair(X, Y),
                                        static_cast<uint32_t>(D.Trans.size()));
    if (Inserted) {
      if (MaxStates && D.Trans.size() >= MaxStates)
        return std::nullopt;
      D.Trans.emplace_back();
      D.Final.push_back(IsUnion ? (A.Final[X] || B.Final[Y])
                                : (A.Final[X] && B.Final[Y]));
      Work.push_back({X, Y});
    }
    return It->second;
  };
  auto Init = internPair(A.Initial, B.Initial);
  if (!Init)
    return std::nullopt;
  D.Initial = *Init;
  while (!Work.empty()) {
    auto [X, Y] = Work.front();
    Work.pop_front();
    uint32_t From = Index.at({X, Y});
    for (const auto &[GA, TA] : A.Trans[X])
      for (const auto &[GB, TB] : B.Trans[Y]) {
        CharSet G = GA.intersectWith(GB);
        if (G.isEmpty())
          continue;
        auto To = internPair(TA, TB);
        if (!To)
          return std::nullopt;
        D.Trans[From].push_back({G, *To});
      }
  }
  return D;
}

Sdfa Sdfa::complement() const {
  Sdfa D = *this;
  for (size_t I = 0; I != D.Final.size(); ++I)
    D.Final[I] = !D.Final[I];
  return D;
}

std::optional<std::vector<uint32_t>> Sdfa::findWitness() const {
  // BFS for a shortest accepted word.
  struct Parent {
    uint32_t State;
    uint32_t Ch;
    bool HasParent;
  };
  std::vector<Parent> Parents(numStates(), {0, 0, false});
  std::vector<bool> Seen(numStates(), false);
  std::deque<uint32_t> Work = {Initial};
  Seen[Initial] = true;
  while (!Work.empty()) {
    uint32_t Cur = Work.front();
    Work.pop_front();
    if (Final[Cur]) {
      std::vector<uint32_t> Word;
      uint32_t S = Cur;
      while (Parents[S].HasParent) {
        Word.push_back(Parents[S].Ch);
        S = Parents[S].State;
      }
      std::reverse(Word.begin(), Word.end());
      return Word;
    }
    for (const auto &[Guard, To] : Trans[Cur]) {
      if (Seen[To] || Guard.isEmpty())
        continue;
      Seen[To] = true;
      Parents[To] = {Cur, *Guard.sample(), true};
      Work.push_back(To);
    }
  }
  return std::nullopt;
}

Sdfa Sdfa::minimize() const {
  // Block id per state; initial partition: final vs non-final.
  std::vector<uint32_t> Block(numStates());
  for (size_t S = 0; S != numStates(); ++S)
    Block[S] = Final[S] ? 1 : 0;

  // Refine until stable: the signature of a state is, per successor block,
  // the union of guards leading into it (canonical CharSets, sorted by
  // block id). Two states stay together iff their signatures match.
  while (true) {
    std::map<std::pair<uint32_t, std::vector<std::pair<uint32_t, CharSet>>>,
             uint32_t>
        SigIndex;
    std::vector<uint32_t> NewBlock(numStates());
    for (size_t S = 0; S != numStates(); ++S) {
      std::map<uint32_t, CharSet> PerBlock;
      for (const auto &[Guard, To] : Trans[S]) {
        auto [It, Inserted] = PerBlock.emplace(Block[To], Guard);
        if (!Inserted)
          It->second = It->second.unionWith(Guard);
      }
      std::vector<std::pair<uint32_t, CharSet>> Sig(PerBlock.begin(),
                                                    PerBlock.end());
      auto Key = std::make_pair(Block[S], std::move(Sig));
      auto [It, Inserted] = SigIndex.emplace(
          std::move(Key), static_cast<uint32_t>(SigIndex.size()));
      NewBlock[S] = It->second;
    }
    if (NewBlock == Block)
      break;
    Block = std::move(NewBlock);
  }

  // Rebuild the quotient automaton over reachable blocks only.
  uint32_t NumBlocks = 0;
  for (uint32_t B : Block)
    NumBlocks = std::max(NumBlocks, B + 1);
  std::vector<uint32_t> Repr(NumBlocks, UINT32_MAX);
  for (size_t S = 0; S != numStates(); ++S)
    if (Repr[Block[S]] == UINT32_MAX)
      Repr[Block[S]] = static_cast<uint32_t>(S);

  Sdfa Min;
  std::vector<uint32_t> Renumber(NumBlocks, UINT32_MAX);
  std::deque<uint32_t> Work;
  auto internBlock = [&](uint32_t B) {
    if (Renumber[B] == UINT32_MAX) {
      Renumber[B] = static_cast<uint32_t>(Min.Trans.size());
      Min.Trans.emplace_back();
      Min.Final.push_back(Final[Repr[B]]);
      Work.push_back(B);
    }
    return Renumber[B];
  };
  Min.Initial = internBlock(Block[Initial]);
  while (!Work.empty()) {
    uint32_t B = Work.front();
    Work.pop_front();
    uint32_t From = Renumber[B];
    // Merge guards per successor block from the representative.
    std::map<uint32_t, CharSet> PerBlock;
    for (const auto &[Guard, To] : Trans[Repr[B]]) {
      auto [It, Inserted] = PerBlock.emplace(Block[To], Guard);
      if (!Inserted)
        It->second = It->second.unionWith(Guard);
    }
    for (auto &[SuccBlock, Guard] : PerBlock) {
      // internBlock may grow Min.Trans; take the target first.
      uint32_t To = internBlock(SuccBlock);
      Min.Trans[From].push_back({Guard, To});
    }
  }
  return Min;
}

Snfa Sdfa::toNfa() const {
  Snfa A;
  A.Trans = Trans;
  A.Initial = {Initial};
  A.Final = Final;
  return A;
}
