//===- automata/BoolExpr.cpp - Boolean state combinations -------------------===//

#include "automata/BoolExpr.h"

#include "support/Debug.h"
#include "support/Hashing.h"

#include <algorithm>
#include <set>

using namespace sbd;

BoolExprManager::BoolExprManager() {
  BoolExprNode F;
  F.Kind = BoolExprKind::False;
  FalseBe = intern(std::move(F));
  BoolExprNode T;
  T.Kind = BoolExprKind::True;
  TrueBe = intern(std::move(T));
}

BE BoolExprManager::intern(BoolExprNode Node) {
  uint64_t H = hashMix(static_cast<uint64_t>(Node.Kind));
  H = hashCombine(H, Node.Atom);
  for (BE Kid : Node.Kids)
    H = hashCombine(H, Kid.Id);
  auto &Bucket = ConsTable[H];
  for (uint32_t Id : Bucket) {
    const BoolExprNode &Other = Nodes[Id];
    if (Other.Kind == Node.Kind && Other.Atom == Node.Atom &&
        Other.Kids == Node.Kids)
      return BE{Id};
  }
  uint32_t Id = static_cast<uint32_t>(Nodes.size());
  Nodes.push_back(std::move(Node));
  Bucket.push_back(Id);
  return BE{Id};
}

BE BoolExprManager::atom(uint32_t A) {
  BoolExprNode N;
  N.Kind = BoolExprKind::Atom;
  N.Atom = A;
  return intern(std::move(N));
}

BE BoolExprManager::makeBool(BoolExprKind K, std::vector<BE> Kids) {
  bool IsAnd = K == BoolExprKind::And;
  BE Unit = IsAnd ? TrueBe : FalseBe;
  BE Absorber = IsAnd ? FalseBe : TrueBe;
  std::vector<BE> Flat;
  for (BE E : Kids) {
    if (node(E).Kind == K)
      Flat.insert(Flat.end(), node(E).Kids.begin(), node(E).Kids.end());
    else
      Flat.push_back(E);
  }
  std::vector<BE> Out;
  for (BE E : Flat) {
    if (E == Absorber)
      return Absorber;
    if (E != Unit)
      Out.push_back(E);
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  // x ∧ ¬x = false, x ∨ ¬x = true.
  for (BE E : Out)
    if (node(E).Kind == BoolExprKind::Not &&
        std::binary_search(Out.begin(), Out.end(), node(E).Kids[0]))
      return Absorber;
  if (Out.empty())
    return Unit;
  if (Out.size() == 1)
    return Out[0];
  BoolExprNode N;
  N.Kind = K;
  N.Kids = std::move(Out);
  return intern(std::move(N));
}

BE BoolExprManager::and_(std::vector<BE> Kids) {
  return makeBool(BoolExprKind::And, std::move(Kids));
}

BE BoolExprManager::or_(std::vector<BE> Kids) {
  return makeBool(BoolExprKind::Or, std::move(Kids));
}

BE BoolExprManager::not_(BE A) {
  if (A == FalseBe)
    return TrueBe;
  if (A == TrueBe)
    return FalseBe;
  if (node(A).Kind == BoolExprKind::Not)
    return node(A).Kids[0];
  BoolExprNode N;
  N.Kind = BoolExprKind::Not;
  N.Kids = {A};
  return intern(std::move(N));
}

bool BoolExprManager::eval(BE E,
                           const std::function<bool(uint32_t)> &Assign) const {
  const BoolExprNode &N = node(E);
  switch (N.Kind) {
  case BoolExprKind::False:
    return false;
  case BoolExprKind::True:
    return true;
  case BoolExprKind::Atom:
    return Assign(N.Atom);
  case BoolExprKind::And:
    for (BE Kid : N.Kids)
      if (!eval(Kid, Assign))
        return false;
    return true;
  case BoolExprKind::Or:
    for (BE Kid : N.Kids)
      if (eval(Kid, Assign))
        return true;
    return false;
  case BoolExprKind::Not:
    return !eval(N.Kids[0], Assign);
  }
  sbd_unreachable("covered switch");
}

BE BoolExprManager::substitute(BE E,
                               const std::function<BE(uint32_t)> &Map) {
  // Copy: recursion can grow the arena.
  BoolExprNode N = node(E);
  switch (N.Kind) {
  case BoolExprKind::False:
  case BoolExprKind::True:
    return E;
  case BoolExprKind::Atom:
    return Map(N.Atom);
  case BoolExprKind::And:
  case BoolExprKind::Or: {
    std::vector<BE> Kids = N.Kids;
    for (BE &Kid : Kids)
      Kid = substitute(Kid, Map);
    return N.Kind == BoolExprKind::And ? and_(std::move(Kids))
                                       : or_(std::move(Kids));
  }
  case BoolExprKind::Not:
    return not_(substitute(N.Kids[0], Map));
  }
  sbd_unreachable("covered switch");
}

bool BoolExprManager::isPositive(BE E) const {
  const BoolExprNode &N = node(E);
  if (N.Kind == BoolExprKind::Not)
    return false;
  for (BE Kid : N.Kids)
    if (!isPositive(Kid))
      return false;
  return true;
}

std::vector<uint32_t> BoolExprManager::atoms(BE E) const {
  std::set<uint32_t> Found;
  std::vector<BE> Stack = {E};
  std::set<uint32_t> Visited;
  while (!Stack.empty()) {
    BE Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur.Id).second)
      continue;
    const BoolExprNode &N = node(Cur);
    if (N.Kind == BoolExprKind::Atom)
      Found.insert(N.Atom);
    for (BE Kid : N.Kids)
      Stack.push_back(Kid);
  }
  return std::vector<uint32_t>(Found.begin(), Found.end());
}

std::string BoolExprManager::toString(
    BE E, const std::function<std::string(uint32_t)> &Name) const {
  const BoolExprNode &N = node(E);
  switch (N.Kind) {
  case BoolExprKind::False:
    return "false";
  case BoolExprKind::True:
    return "true";
  case BoolExprKind::Atom:
    return Name(N.Atom);
  case BoolExprKind::And:
  case BoolExprKind::Or: {
    std::string Sep = N.Kind == BoolExprKind::And ? " & " : " | ";
    std::string Out = "(";
    for (size_t I = 0; I != N.Kids.size(); ++I) {
      if (I)
        Out += Sep;
      Out += toString(N.Kids[I], Name);
    }
    return Out + ")";
  }
  case BoolExprKind::Not:
    return "~" + toString(N.Kids[0], Name);
  }
  sbd_unreachable("covered switch");
}
