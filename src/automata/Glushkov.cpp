//===- automata/Glushkov.cpp - Plain RE → symbolic NFA ----------------------===//

#include "automata/Glushkov.h"

#include "support/Debug.h"

using namespace sbd;

namespace {

class Compiler {
public:
  Compiler(const RegexManager &Mgr, size_t StateLimit)
      : M(Mgr), MaxStates(StateLimit) {}

  std::optional<Snfa> compile(Re R) {
    const RegexNode &N = M.node(R);
    switch (N.Kind) {
    case RegexKind::Empty:
      return checked(Snfa::empty());
    case RegexKind::Epsilon:
      return checked(Snfa::epsilon());
    case RegexKind::Pred:
      return checked(Snfa::pred(M.predSet(R)));
    case RegexKind::Concat: {
      auto A = compile(N.Kids[0]);
      auto B = compile(N.Kids[1]);
      if (!A || !B)
        return std::nullopt;
      return checked(Snfa::concat(*A, *B));
    }
    case RegexKind::Star: {
      auto A = compile(N.Kids[0]);
      if (!A)
        return std::nullopt;
      return checked(Snfa::star(*A));
    }
    case RegexKind::Loop: {
      auto Body = compile(N.Kids[0]);
      if (!Body)
        return std::nullopt;
      // r{m,n} = r^m · (ε|r)^(n-m); r{m,∞} = r^m · r*.
      Snfa Acc = Snfa::epsilon();
      for (uint32_t I = 0; I != N.LoopMin; ++I) {
        Acc = Snfa::concat(Acc, *Body);
        if (!within(Acc))
          return std::nullopt;
      }
      if (N.LoopMax == LoopInf) {
        Acc = Snfa::concat(Acc, Snfa::star(*Body));
      } else {
        Snfa OptBody = Snfa::alternate(*Body, Snfa::epsilon());
        for (uint32_t I = N.LoopMin; I != N.LoopMax; ++I) {
          Acc = Snfa::concat(Acc, OptBody);
          if (!within(Acc))
            return std::nullopt;
        }
      }
      return checked(std::move(Acc));
    }
    case RegexKind::Union: {
      Snfa Acc = Snfa::empty();
      for (Re Kid : N.Kids) {
        auto A = compile(Kid);
        if (!A)
          return std::nullopt;
        Acc = Snfa::alternate(Acc, *A);
        if (!within(Acc))
          return std::nullopt;
      }
      return checked(std::move(Acc));
    }
    case RegexKind::Inter:
    case RegexKind::Compl:
      return std::nullopt; // not in the plain RE fragment
    }
    sbd_unreachable("covered switch");
  }

private:
  bool within(const Snfa &A) const {
    return MaxStates == 0 || A.numStates() <= MaxStates;
  }

  std::optional<Snfa> checked(Snfa A) const {
    if (!within(A))
      return std::nullopt;
    return A;
  }

  const RegexManager &M;
  size_t MaxStates;
};

} // namespace

std::optional<Snfa> sbd::compileReToNfa(const RegexManager &M, Re R,
                                        size_t MaxStates) {
  Compiler C(M, MaxStates);
  return C.compile(R);
}
