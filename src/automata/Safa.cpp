//===- automata/Safa.cpp - Symbolic Alternating Finite Automata -------------===//

#include "automata/Safa.h"

#include "charset/AlphabetCompressor.h"
#include "support/Debug.h"

#include <cassert>

using namespace sbd;

namespace {

/// Pushes negation down to atoms, mapping a negated atom q to its shadow
/// state q + N (Section 8.3: "adding negated states q̄ to Q and letting
/// ∆(q̄) = NNF(~∆(q))"). \p Positive tracks the current polarity.
BE nnfWithShadows(BoolExprManager &B, BE E, bool Positive, size_t N) {
  // Copy: recursion below may grow the arena.
  BoolExprNode Node = B.node(E);
  switch (Node.Kind) {
  case BoolExprKind::False:
    return Positive ? B.falseExpr() : B.trueExpr();
  case BoolExprKind::True:
    return Positive ? B.trueExpr() : B.falseExpr();
  case BoolExprKind::Atom: {
    uint32_t Atom = Node.Atom;
    assert(Atom < N && "expressions from an SBFA use original states only");
    return B.atom(Positive ? Atom : Atom + static_cast<uint32_t>(N));
  }
  case BoolExprKind::Not:
    return nnfWithShadows(B, Node.Kids[0], !Positive, N);
  case BoolExprKind::And:
  case BoolExprKind::Or: {
    std::vector<BE> Kids = Node.Kids;
    for (BE &Kid : Kids)
      Kid = nnfWithShadows(B, Kid, Positive, N);
    bool MakeAnd = (Node.Kind == BoolExprKind::And) == Positive;
    return MakeAnd ? B.and_(std::move(Kids)) : B.or_(std::move(Kids));
  }
  }
  sbd_unreachable("covered switch");
}

} // namespace

Safa Safa::fromSbfa(const Sbfa &A) {
  Safa S;
  size_t N = A.numStates();
  // States double: q + N is the negated shadow of q, accepting iff q does
  // not. Shadows that are never referenced simply have no incoming atoms.
  S.NumStates = 2 * N;
  S.Final.resize(S.NumStates);
  S.ByState.resize(S.NumStates);
  for (uint32_t Q = 0; Q != N; ++Q) {
    S.Final[Q] = A.isFinal(Q);
    S.Final[Q + N] = !A.isFinal(Q);
  }

  TrManager &T = A.engine().trManager();
  S.Initial = nnfWithShadows(*S.Exprs, A.configInitial(*S.Exprs), true, N);

  // Local mintermization: the guards of ∆(q) induce a finite partition of
  // the alphabet; ∆(q)(a) is constant on each partition block (Section
  // 8.3), so one representative per block determines the transition target.
  for (uint32_t Q = 0; Q != N; ++Q) {
    std::vector<CharSet> Guards;
    T.collectGuards(A.transition(Q), Guards);
    AlphabetCompressor Compressor(Guards);
    for (uint32_t Cls = 0; Cls != Compressor.numClasses(); ++Cls) {
      CharSet Block = Compressor.classSet(static_cast<uint16_t>(Cls));
      uint32_t Rep = Compressor.representative(static_cast<uint16_t>(Cls));
      BE Raw = A.configAfter(*S.Exprs, Q, Rep);
      BE Target = nnfWithShadows(*S.Exprs, Raw, true, N);
      if (Target != S.Exprs->falseExpr()) {
        S.ByState[Q].push_back(static_cast<uint32_t>(S.Transitions.size()));
        S.Transitions.push_back({Q, Block, Target});
      }
      // The shadow state's transition on the same block is the negation.
      BE ShadowTarget = nnfWithShadows(*S.Exprs, Raw, false, N);
      if (ShadowTarget != S.Exprs->falseExpr()) {
        uint32_t From = Q + static_cast<uint32_t>(N);
        S.ByState[From].push_back(
            static_cast<uint32_t>(S.Transitions.size()));
        S.Transitions.push_back({From, Block, ShadowTarget});
      }
    }
  }
  return S;
}

bool Safa::accepts(const std::vector<uint32_t> &Word) {
  BoolExprManager &B = *Exprs;
  BE Config = Initial;
  for (uint32_t Ch : Word) {
    Config = B.substitute(Config, [&](uint32_t State) {
      std::vector<BE> Matching;
      for (uint32_t TIdx : ByState[State]) {
        const Transition &Tr = Transitions[TIdx];
        if (Tr.Guard.contains(Ch))
          Matching.push_back(Tr.Target);
      }
      // OR over the nondeterministic transition choices; none ⇒ q⊥.
      return B.or_(std::move(Matching));
    });
    if (Config == B.falseExpr())
      return false;
    if (Config == B.trueExpr())
      return true;
  }
  return B.eval(Config, [&](uint32_t State) { return Final[State]; });
}
