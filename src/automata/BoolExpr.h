//===- automata/BoolExpr.h - Boolean state combinations B(Q) ----------------===//
///
/// \file
/// Hash-consed Boolean expressions over abstract atoms (automaton states).
/// These represent the B(Q) / B+(Q) state combinations of Section 7: the
/// run of an SBFA or SAFA is a Boolean expression over states that evolves
/// by simultaneous substitution, and acceptance is evaluation under the
/// final-state assignment ν_F.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_AUTOMATA_BOOLEXPR_H
#define SBD_AUTOMATA_BOOLEXPR_H

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace sbd {

/// Node kinds of a Boolean expression.
enum class BoolExprKind : uint8_t { False, True, Atom, And, Or, Not };

/// Handle to an interned Boolean expression.
struct BE {
  uint32_t Id = 0;

  friend bool operator==(BE A, BE B) { return A.Id == B.Id; }
  friend bool operator!=(BE A, BE B) { return A.Id != B.Id; }
  friend bool operator<(BE A, BE B) { return A.Id < B.Id; }
};

/// Interned node storage.
struct BoolExprNode {
  BoolExprKind Kind;
  uint32_t Atom = 0;    ///< Atom only
  std::vector<BE> Kids; ///< And/Or: n-ary sorted; Not: 1
};

/// Arena + ACI-normalizing constructors for Boolean expressions.
class BoolExprManager {
public:
  BoolExprManager();

  BE falseExpr() const { return FalseBe; }
  BE trueExpr() const { return TrueBe; }
  BE atom(uint32_t A);
  BE and_(std::vector<BE> Kids);
  BE or_(std::vector<BE> Kids);
  BE and2(BE A, BE B) { return and_({A, B}); }
  BE or2(BE A, BE B) { return or_({A, B}); }
  BE not_(BE A);

  const BoolExprNode &node(BE E) const { return Nodes[E.Id]; }

  /// Evaluates under a truth assignment for atoms.
  bool eval(BE E, const std::function<bool(uint32_t)> &Assign) const;

  /// Simultaneous substitution of atoms by expressions (the alternating
  /// automaton step).
  BE substitute(BE E, const std::function<BE(uint32_t)> &Map);

  /// True when E contains no negation (B+(Q)).
  bool isPositive(BE E) const;

  /// Atoms occurring in E (sorted, distinct).
  std::vector<uint32_t> atoms(BE E) const;

  /// Rendering with a custom atom printer.
  std::string toString(BE E,
                       const std::function<std::string(uint32_t)> &Name) const;

private:
  BE intern(BoolExprNode Node);
  BE makeBool(BoolExprKind K, std::vector<BE> Kids);

  std::vector<BoolExprNode> Nodes;
  std::unordered_map<uint64_t, std::vector<uint32_t>> ConsTable;
  BE FalseBe, TrueBe;
};

} // namespace sbd

#endif // SBD_AUTOMATA_BOOLEXPR_H
