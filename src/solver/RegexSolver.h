//===- solver/RegexSolver.h - Decision procedure (Section 5) ----------------===//
///
/// \file
/// The symbolic-Boolean-derivative decision procedure. This is the
/// standalone counterpart of dZ3's membership propagation rules (Fig. 3):
/// a membership goal in(s, r) is unfolded lazily through δdnf, each
/// conditional branch becoming a character case split, while the persistent
/// graph G records which regexes are proven dead ends (the bot rule) and
/// which are alive.
///
/// Exploration over the derivative graph plays the role of the SMT core's
/// case splitting. Breadth-first order (the default) returns a *shortest*
/// witness; depth-first order (SolveOptions::Strategy) mimics the
/// backtracking search of a real SMT core and reaches deep witnesses
/// without materializing the whole frontier. Boolean combinations of membership constraints
/// on one string compile into a single ERE (Section 2), and side constraints
/// on individual positions (the `s0 > 0` splits of the running example) are
/// expressible as an intersection with `φ0·φ1·…·.*`.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SOLVER_REGEXSOLVER_H
#define SBD_SOLVER_REGEXSOLVER_H

#include "analysis/RegexAnalyzer.h"
#include "core/CachedMatcher.h"
#include "core/Derivatives.h"
#include "solver/DerivativeGraph.h"
#include "solver/SolverResult.h"

#include <memory>

namespace sbd {

/// One membership literal: s ∈ R (positive) or s ∉ R (negative).
struct MembershipLiteral {
  Re Regex;
  bool Positive = true;
};

/// The derivative-based regex satisfiability solver.
class RegexSolver {
public:
  explicit RegexSolver(DerivativeEngine &Eng,
                       DeadDetection Mode = DeadDetection::IncrementalScc)
      : Engine(Eng), M(Eng.regexManager()), T(Eng.trManager()),
        Graph(Eng.regexManager(), Mode) {}

  /// Decides satisfiability of in(s, R) for an uninterpreted s: is L(R)
  /// nonempty? Returns a shortest witness on Sat.
  SolveResult checkSat(Re R, const SolveOptions &Opts = {});

  /// Decides a conjunction of membership literals on the same string by
  /// compiling it to a single ERE (conjunction → &, negation → ~).
  SolveResult checkMembership(const std::vector<MembershipLiteral> &Literals,
                              const SolveOptions &Opts = {});

  /// L(R) = ∅?  (Unsat ⇔ empty.)
  SolveResult checkEmpty(Re R, const SolveOptions &Opts = {}) {
    return checkSat(R, Opts);
  }

  /// L(A) ⊆ L(B)? Reduces to emptiness of A & ~B; on failure the result's
  /// witness is a word in A \ B.
  SolveResult checkContains(Re A, Re B, const SolveOptions &Opts = {});

  /// L(A) = L(B)? Reduces to emptiness of the symmetric difference; on
  /// failure the witness distinguishes the two languages.
  SolveResult checkEquivalent(Re A, Re B, const SolveOptions &Opts = {});

  /// One application of the der/ite/or rules of Fig. 3a, for embedding the
  /// procedure into an external DPLL(T)-style loop: in(s, R) is equivalent
  /// to (|s| = 0 ∧ EmptyCase) ∨ ⋁_arcs (Arc.Guard(s₀) ∧ in(s₁.., Arc.Target)).
  /// The persistent graph is updated (upd rule) as a side effect, so a
  /// caller can consult graph().isDead(...) to apply the bot rule.
  struct CaseSplit {
    bool EmptyCase;          ///< ν(R): the |s| = 0 disjunct is viable
    std::vector<TrArc> Arcs; ///< the |s| > 0 disjuncts (satisfiable guards)
  };
  CaseSplit caseSplit(Re R);

  /// Compiles per-position character constraints into a regex: the word
  /// must start with characters drawn from Positions[0], Positions[1], …
  /// followed by anything. Intersect with the goal regex to express the
  /// paper's side-constraint case splits.
  Re positionConstraint(const std::vector<CharSet> &Positions);

  /// Concrete membership of \p Word in L(R), served from a per-regex
  /// matcher pool. Each distinct regex gets one promotion-enabled
  /// CachedMatcher, so regexes validated repeatedly (witness checks from
  /// the SMT front end and the batch workers) are promoted onto the
  /// compiled state-major table and later checks run the SIMD scan loop
  /// instead of re-deriving. The pool is bounded; overflow flushes it
  /// wholesale (matchers rebuild lazily, results never change).
  bool matchesWord(Re R, const std::vector<uint32_t> &Word);

  /// The persistent graph (shared across queries; exposes Dead/Alive).
  DerivativeGraph &graph() { return Graph; }

  /// Clears the persistent graph, making the next query behave exactly as
  /// if it ran on a freshly constructed solver. The differential oracle
  /// calls this between samples so per-query exploration (and the counters
  /// derived from it) is deterministic regardless of sample order; verdicts
  /// never depend on it.
  void resetGraph() { Graph.clear(); }

  /// The derivative engine this solver runs on.
  DerivativeEngine &engine() { return Engine; }

  /// The regex arena all inputs must come from.
  RegexManager &regexManager() { return M; }

  /// The pre-solve static analyzer (shared with the portfolio router so a
  /// query's features are folded exactly once per arena).
  analysis::RegexAnalyzer &analyzer() { return Analyzer; }

  /// Admission-control state cap applied to Adversarial-classified queries
  /// that arrive without their own MaxStates budget (DESIGN.md §14).
  static constexpr size_t AdmissionMaxStates = 1 << 16;

private:
  DerivativeEngine &Engine;
  RegexManager &M;
  TrManager &T;
  DerivativeGraph Graph;
  analysis::RegexAnalyzer Analyzer{M};

  /// matchesWord()'s per-regex matcher pool. Linear scan: the pool is tiny
  /// and the hit path is one id compare per entry.
  struct PooledMatcher {
    uint32_t ReId;
    std::unique_ptr<CachedMatcher> Matcher;
  };
  static constexpr size_t MaxPooledMatchers = 32;
  std::vector<PooledMatcher> MatcherPool;
};

} // namespace sbd

#endif // SBD_SOLVER_REGEXSOLVER_H
