//===- solver/SccIndex.cpp - Incremental SCC condensation --------------------===//

#include "solver/SccIndex.h"

#include <cassert>

using namespace sbd;

void SccIndex::addVertex(uint32_t V) {
  assert(V == Parent.size() && "vertices must be added densely in order");
  Parent.push_back(V);
  Rank.push_back(0);
  CompData D;
  D.OpenVertices = 1;
  Comp.push_back(std::move(D));
}

uint32_t SccIndex::find(uint32_t V) {
  while (Parent[V] != V) {
    Parent[V] = Parent[Parent[V]]; // path halving
    V = Parent[V];
  }
  return V;
}

std::vector<uint32_t> SccIndex::normalizedSuccs(uint32_t Rep) {
  std::set<uint32_t> Fresh;
  for (uint32_t S : Comp[Rep].Succs) {
    uint32_t R = find(S);
    if (R != Rep)
      Fresh.insert(R);
  }
  Comp[Rep].Succs.clear();
  Comp[Rep].Succs.insert(Fresh.begin(), Fresh.end());
  return std::vector<uint32_t>(Fresh.begin(), Fresh.end());
}

std::vector<uint32_t> SccIndex::normalizedPreds(uint32_t Rep) {
  std::set<uint32_t> Fresh;
  for (uint32_t P : Comp[Rep].Preds) {
    uint32_t R = find(P);
    if (R != Rep)
      Fresh.insert(R);
  }
  Comp[Rep].Preds.clear();
  Comp[Rep].Preds.insert(Fresh.begin(), Fresh.end());
  return std::vector<uint32_t>(Fresh.begin(), Fresh.end());
}

void SccIndex::closeVertex(uint32_t V) {
  uint32_t Rep = find(V);
  assert(Comp[Rep].OpenVertices > 0 && "closing an already closed vertex");
  --Comp[Rep].OpenVertices;
  maybeMarkDead(Rep);
}

void SccIndex::markAlive(uint32_t V) {
  uint32_t Rep = find(V);
  assert(!Comp[Rep].Dead && "a dead component cannot become alive");
  Comp[Rep].Alive = true;
}

bool SccIndex::reaches(uint32_t FromRep, uint32_t ToRep) {
  if (FromRep == ToRep)
    return true;
  std::set<uint32_t> Seen = {FromRep};
  std::vector<uint32_t> Stack = {FromRep};
  while (!Stack.empty()) {
    uint32_t Cur = Stack.back();
    Stack.pop_back();
    for (uint32_t S : normalizedSuccs(Cur)) {
      if (S == ToRep)
        return true;
      if (Seen.insert(S).second)
        Stack.push_back(S);
    }
  }
  return false;
}

void SccIndex::mergeCycle(uint32_t SourceRep, uint32_t NewSuccRep) {
  // The edge Source → NewSucc closes a cycle: every component lying on a
  // path NewSucc ⇒* Source collapses into one. Compute Fwd = reachable
  // from NewSucc and Bwd = co-reachable from Source; the merge set is
  // their intersection (which contains both endpoints).
  std::set<uint32_t> Fwd = {NewSuccRep};
  {
    std::vector<uint32_t> Stack = {NewSuccRep};
    while (!Stack.empty()) {
      uint32_t Cur = Stack.back();
      Stack.pop_back();
      for (uint32_t S : normalizedSuccs(Cur))
        if (Fwd.insert(S).second)
          Stack.push_back(S);
    }
  }
  std::set<uint32_t> Bwd = {SourceRep};
  {
    std::vector<uint32_t> Stack = {SourceRep};
    while (!Stack.empty()) {
      uint32_t Cur = Stack.back();
      Stack.pop_back();
      for (uint32_t P : normalizedPreds(Cur))
        if (Fwd.count(P) && Bwd.insert(P).second) // prune to Fwd
          Stack.push_back(P);
    }
  }

  std::vector<uint32_t> Members;
  for (uint32_t R : Bwd)
    if (Fwd.count(R))
      Members.push_back(R);
  assert(Members.size() >= 2 && "a cycle merge involves both endpoints");

  // Union-find merge; collect the union of the members' data.
  uint32_t Root = Members[0];
  for (uint32_t R : Members)
    if (Rank[R] > Rank[Root])
      Root = R;
  CompData Merged;
  for (uint32_t R : Members) {
    assert(!Comp[R].Dead && "dead components cannot be on new cycles");
    Merged.OpenVertices += Comp[R].OpenVertices;
    Merged.Alive = Merged.Alive || Comp[R].Alive;
    Merged.Succs.insert(Comp[R].Succs.begin(), Comp[R].Succs.end());
    Merged.Preds.insert(Comp[R].Preds.begin(), Comp[R].Preds.end());
    if (R != Root) {
      Parent[R] = Root;
      if (Rank[R] == Rank[Root])
        ++Rank[Root];
      Comp[R] = CompData(); // release member data
    }
  }
  Comp[Root] = std::move(Merged);
  // Normalize away self references created by the merge.
  normalizedSuccs(Root);
  normalizedPreds(Root);
  maybeMarkDead(Root);
}

void SccIndex::addEdge(uint32_t From, uint32_t To) {
  uint32_t FromRep = find(From), ToRep = find(To);
  if (FromRep == ToRep)
    return; // internal edge
  assert(!Comp[FromRep].Dead && "dead components never gain edges");
  if (reaches(ToRep, FromRep)) {
    mergeCycle(FromRep, ToRep);
    return;
  }
  Comp[FromRep].Succs.insert(ToRep);
  Comp[ToRep].Preds.insert(FromRep);
  // No dead check here: From is still open during its upd batch; the
  // subsequent closeVertex triggers the check.
}

void SccIndex::maybeMarkDead(uint32_t Rep) {
  Rep = find(Rep);
  if (Comp[Rep].Dead || Comp[Rep].Alive || Comp[Rep].OpenVertices != 0)
    return;
  for (uint32_t S : normalizedSuccs(Rep))
    if (!Comp[S].Dead)
      return;
  Comp[Rep].Dead = true;
  // A newly dead component may complete the conditions of predecessors.
  for (uint32_t P : normalizedPreds(Rep))
    maybeMarkDead(P);
}

size_t SccIndex::numComponents() {
  std::set<uint32_t> Reps;
  for (uint32_t V = 0; V != Parent.size(); ++V)
    Reps.insert(find(V));
  return Reps.size();
}
