//===- solver/DerivativeGraph.cpp - The solver's regex graph G --------------===//

#include "solver/DerivativeGraph.h"

#include <algorithm>
#include <cassert>

using namespace sbd;

void DerivativeGraph::clear() {
  Verts.clear();
  Index.clear();
  Scc = SccIndex();
  NumEdges = 0;
  DeadDirty = false;
}

uint32_t DerivativeGraph::addVertex(Re R) {
  if (const uint32_t *Hit = Index.find(R.Id))
    return *Hit;
  uint32_t V = static_cast<uint32_t>(Verts.size());
  Vertex Vx;
  Vx.R = R;
  Vx.Final = M.nullable(R);
  Verts.push_back(std::move(Vx));
  Index.insert(R.Id, V);
  Scc.addVertex(V);
  if (Verts[V].Final)
    markAlive(V);
  // A new open vertex can resurrect paths that looked dead (lazy mode).
  DeadDirty = true;
  return V;
}

void DerivativeGraph::close(Re R, const std::vector<Re> &Targets) {
  uint32_t V = addVertex(R);
  if (Verts[V].Closed)
    return; // upd has no effect on closed vertices
  for (Re Target : Targets) {
    uint32_t W = addVertex(Target);
    // Dedup parallel edges.
    if (std::find(Verts[V].Succ.begin(), Verts[V].Succ.end(), W) !=
        Verts[V].Succ.end())
      continue;
    Verts[V].Succ.push_back(W);
    Verts[W].Pred.push_back(V);
    ++NumEdges;
    Scc.addEdge(V, W);
    if (Verts[W].Alive)
      markAlive(V);
  }
  Verts[V].Closed = true;
  Scc.closeVertex(V);
  DeadDirty = true;
}

void DerivativeGraph::closeWithRow(Re R, const std::vector<Re> &Targets,
                                   const std::vector<uint32_t> &Chars) {
  assert(Targets.size() == Chars.size() && "one witness char per arc");
  close(R, Targets);
  uint32_t V = *Index.find(R.Id); // close() interned the vertex
  if (Verts[V].HasRow)
    return;
  Verts[V].ArcRow.reserve(Targets.size() * 2);
  for (size_t I = 0; I != Targets.size(); ++I) {
    Verts[V].ArcRow.push_back(Chars[I]);
    Verts[V].ArcRow.push_back(Targets[I].Id);
  }
  Verts[V].HasRow = true;
}

const std::vector<uint32_t> *DerivativeGraph::arcRow(Re R) const {
  const uint32_t *Hit = Index.find(R.Id);
  if (!Hit || !Verts[*Hit].HasRow)
    return nullptr;
  return &Verts[*Hit].ArcRow;
}

void DerivativeGraph::corruptArcRowForTest(Re R, size_t Idx, uint32_t Value) {
  const uint32_t *Hit = Index.find(R.Id);
  if (Hit && Verts[*Hit].HasRow && Idx < Verts[*Hit].ArcRow.size())
    Verts[*Hit].ArcRow[Idx] = Value;
}

bool DerivativeGraph::isClosed(Re R) const {
  const uint32_t *Hit = Index.find(R.Id);
  return Hit && Verts[*Hit].Closed;
}

bool DerivativeGraph::isFinal(Re R) const {
  const uint32_t *Hit = Index.find(R.Id);
  return Hit && Verts[*Hit].Final;
}

bool DerivativeGraph::isAlive(Re R) {
  const uint32_t *Hit = Index.find(R.Id);
  return Hit && Verts[*Hit].Alive;
}

bool DerivativeGraph::isDead(Re R) {
  const uint32_t *Hit = Index.find(R.Id);
  if (!Hit)
    return false;
  if (Mode == DeadDetection::IncrementalScc)
    return Scc.isDead(*Hit);
  if (DeadDirty)
    recomputeDeadLazy();
  return Verts[*Hit].DeadLazy;
}

std::vector<Re> DerivativeGraph::successors(Re R) const {
  std::vector<Re> Out;
  const uint32_t *Hit = Index.find(R.Id);
  if (!Hit)
    return Out;
  for (uint32_t W : Verts[*Hit].Succ)
    Out.push_back(Verts[W].R);
  return Out;
}

void DerivativeGraph::markAlive(uint32_t V) {
  if (Verts[V].Alive)
    return;
  // Alive propagates backwards: every predecessor of an alive vertex can
  // reach F through it.
  std::vector<uint32_t> Stack = {V};
  Verts[V].Alive = true;
  Scc.markAlive(V);
  while (!Stack.empty()) {
    uint32_t Cur = Stack.back();
    Stack.pop_back();
    for (uint32_t P : Verts[Cur].Pred) {
      if (Verts[P].Alive)
        continue;
      Verts[P].Alive = true;
      Scc.markAlive(P);
      Stack.push_back(P);
    }
  }
}

void DerivativeGraph::recomputeDeadLazy() {
  DeadDirty = false;
  // v is not dead iff it can reach an open or alive vertex; compute the
  // not-dead set by reverse reachability from { open ∨ alive }.
  std::vector<uint32_t> Stack;
  std::vector<bool> NotDead(Verts.size(), false);
  for (uint32_t V = 0; V != Verts.size(); ++V) {
    if (!Verts[V].Closed || Verts[V].Alive) {
      NotDead[V] = true;
      Stack.push_back(V);
    }
  }
  while (!Stack.empty()) {
    uint32_t Cur = Stack.back();
    Stack.pop_back();
    for (uint32_t P : Verts[Cur].Pred) {
      if (NotDead[P])
        continue;
      NotDead[P] = true;
      Stack.push_back(P);
    }
  }
  for (uint32_t V = 0; V != Verts.size(); ++V) {
    assert((!Verts[V].DeadLazy || !NotDead[V]) && "dead vertices stay dead");
    Verts[V].DeadLazy = !NotDead[V];
  }
}
