//===- solver/DerivativeGraph.h - The solver's regex graph G ----------------===//
///
/// \file
/// The graph G = (V, E, F, C) of Section 5. Vertices are regexes seen so
/// far; edges (v, w) record that w ∈ Q(δdnf(v)); F marks nullable (final)
/// vertices; C marks closed vertices (all outgoing edges added). From these
/// the derived sets are maintained:
///
///   Alive = { v : E*(v) ∩ F ≠ ∅ }          (can reach a final vertex)
///   Dead  = { v : E*(v) ⊆ C \ Alive }      (fully explored, never final)
///
/// Alive is propagated eagerly backwards over reverse edges whenever a final
/// vertex or an edge into an alive vertex appears. For Dead two detection
/// modes are provided:
///
///  - `IncrementalScc` (default, the paper's implementation strategy): a
///    Union-Find SCC condensation with incremental cycle detection; adding
///    a batch of edges merges the components it cyclizes, and deadness is
///    propagated recursively over the condensation (see SccIndex).
///  - `LazyReverse` (reference implementation): v is *not* dead iff some
///    vertex in E*(v) is open or alive, so Dead is the complement of
///    reverse reachability from the open-or-alive set, recomputed lazily
///    when the graph changed. Tests cross-check the two modes.
///
/// G is deliberately independent of any logical scope: deadness of a regex
/// does not depend on side constraints, so one graph can serve every query
/// of a session (and does, in RegexSolver).
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SOLVER_DERIVATIVEGRAPH_H
#define SBD_SOLVER_DERIVATIVEGRAPH_H

#include "re/Regex.h"
#include "solver/SccIndex.h"
#include "support/InternTable.h"

#include <cstdint>
#include <vector>

namespace sbd {

/// Strategy for maintaining the Dead set.
enum class DeadDetection : uint8_t {
  IncrementalScc, ///< union-find SCCs + incremental propagation (paper)
  LazyReverse,    ///< lazy reverse-reachability recomputation (reference)
};

/// The persistent reachability graph over derivative regexes.
class DerivativeGraph {
public:
  explicit DerivativeGraph(RegexManager &Mgr,
                           DeadDetection Detect = DeadDetection::IncrementalScc)
      : M(Mgr), Mode(Detect) {}

  /// Interns \p R as a vertex (no-op if present); returns its index.
  uint32_t addVertex(Re R);

  /// True if R is already a vertex.
  bool hasVertex(Re R) const { return Index.find(R.Id) != nullptr; }

  /// The Upd rule (Fig. 3b): records all derivative targets of \p R and
  /// marks it closed. No effect if R is already closed.
  void close(Re R, const std::vector<Re> &Targets);

  /// close() plus the dense successor row: records, alongside the edges,
  /// the flattened (witness char, target Re.Id) arc pairs of the vertex's
  /// δdnf expansion. A later query that dequeues the same vertex replays
  /// the row (see arcRow) instead of recomputing δdnf/arcs/witnesses —
  /// the minterm-compressed fast path of the exploration loop. The row is
  /// recorded even when the vertex was already closed edge-wise (e.g. via
  /// caseSplit, which does not produce witnesses); it is never overwritten.
  /// \p Chars must parallel \p Targets (one satisfying character per arc).
  void closeWithRow(Re R, const std::vector<Re> &Targets,
                    const std::vector<uint32_t> &Chars);

  /// The recorded dense successor row of \p R as flattened (char, Re.Id)
  /// pairs, or nullptr when the vertex is absent or was closed without a
  /// row. Arc order is the order of the recording expansion.
  const std::vector<uint32_t> *arcRow(Re R) const;

  /// Test backdoor: overwrite one element of a recorded row, to prove the
  /// SBD_AUDIT row checker detects corruption. No-op when out of range.
  void corruptArcRowForTest(Re R, size_t Idx, uint32_t Value);

  /// Is the vertex closed (fully expanded)?
  bool isClosed(Re R) const;
  /// ν(R) — final vertex?
  bool isFinal(Re R) const;
  /// Can R reach a final vertex through recorded edges?
  bool isAlive(Re R);
  /// Is R a proven dead end (bot rule precondition)?
  bool isDead(Re R);

  /// Successor regexes of a closed/partially closed vertex.
  std::vector<Re> successors(Re R) const;

  size_t numVertices() const { return Verts.size(); }
  size_t numEdges() const { return NumEdges; }
  DeadDetection mode() const { return Mode; }

  /// Drops every vertex, edge, row, and SCC record, returning the graph to
  /// its freshly constructed state (same manager, same mode). Deterministic
  /// re-entry point for the differential oracle: solving the same regex
  /// after clear() explores exactly the states a fresh solver would.
  void clear();

private:
  struct Vertex {
    Re R;
    bool Final = false;
    bool Closed = false;
    bool Alive = false;
    bool DeadLazy = false;
    bool HasRow = false;
    std::vector<uint32_t> Succ;
    std::vector<uint32_t> Pred;
    /// Flattened (witness char, target Re.Id) pairs (see closeWithRow).
    std::vector<uint32_t> ArcRow;
  };

  void markAlive(uint32_t V);
  void recomputeDeadLazy();

  RegexManager &M;
  DeadDetection Mode;
  std::vector<Vertex> Verts;
  FlatMap64 Index; // Re.Id -> vertex index
  SccIndex Scc;
  size_t NumEdges = 0;
  bool DeadDirty = false;
};

} // namespace sbd

#endif // SBD_SOLVER_DERIVATIVEGRAPH_H
