//===- solver/SolverResult.h - Shared solver result types -------------------===//
///
/// \file
/// Result/option types shared by the symbolic-derivative solver and the
/// baseline solvers used in the evaluation harness.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SOLVER_SOLVERRESULT_H
#define SBD_SOLVER_SOLVERRESULT_H

#include <cstdint>
#include <string>
#include <vector>

namespace sbd {

/// Outcome of a satisfiability query.
enum class SolveStatus : uint8_t {
  Sat,         ///< a witness word was found
  Unsat,       ///< the language is provably empty
  Unknown,     ///< budget (time or state) exhausted
  Unsupported, ///< the solver cannot handle the input fragment
};

/// Exploration order for the derivative solver.
enum class SearchStrategy : uint8_t {
  Bfs, ///< breadth-first: shortest witness, larger frontier
  Dfs, ///< depth-first: mimics SMT backtracking search; finds *a* witness
       ///< fast on satisfiable instances with deep models
};

/// Resource budget for one query.
struct SolveOptions {
  /// Wall-clock budget in milliseconds; <= 0 means unlimited.
  int64_t TimeoutMs = 0;
  /// Maximum number of distinct states/regexes to explore; 0 = unlimited.
  size_t MaxStates = 0;
  /// Exploration order (derivative solver only).
  SearchStrategy Strategy = SearchStrategy::Bfs;
  /// Heuristic (the paper's future-work direction): visit arcs whose
  /// target regex is syntactically smaller first — small residues tend to
  /// be closer to ε, steering DFS toward witnesses. Never affects the
  /// verdict, only exploration order.
  bool PreferSimplerArcs = false;
};

/// Result of one query, including the statistics the benchmark harness
/// reports.
struct SolveResult {
  SolveStatus Status = SolveStatus::Unknown;
  /// A word in the language (Sat only).
  std::vector<uint32_t> Witness;
  /// States/regexes materialized while solving.
  size_t StatesExplored = 0;
  /// Wall-clock time spent, microseconds.
  int64_t TimeUs = 0;
  /// Diagnostic for Unknown/Unsupported.
  std::string Note;

  bool isSat() const { return Status == SolveStatus::Sat; }
  bool isUnsat() const { return Status == SolveStatus::Unsat; }
};

/// Human-readable status name.
inline const char *statusName(SolveStatus S) {
  switch (S) {
  case SolveStatus::Sat:
    return "sat";
  case SolveStatus::Unsat:
    return "unsat";
  case SolveStatus::Unknown:
    return "unknown";
  case SolveStatus::Unsupported:
    return "unsupported";
  }
  return "?";
}

} // namespace sbd

#endif // SBD_SOLVER_SOLVERRESULT_H
