//===- solver/SolverResult.h - Shared solver result types -------------------===//
///
/// \file
/// Result/option types shared by the symbolic-derivative solver and the
/// baseline solvers used in the evaluation harness, including the
/// per-query `SolveStats` block the observability layer populates
/// (see support/Metrics.h and DESIGN.md §8).
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SOLVER_SOLVERRESULT_H
#define SBD_SOLVER_SOLVERRESULT_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace sbd {

/// Outcome of a satisfiability query.
enum class SolveStatus : uint8_t {
  Sat,         ///< a witness word was found
  Unsat,       ///< the language is provably empty
  Unknown,     ///< budget (time or state) exhausted
  Unsupported, ///< the solver cannot handle the input fragment
};

/// Machine-readable cause of an Unknown/Unsupported verdict. `Note` stays
/// the human-readable companion string.
enum class StopReason : uint8_t {
  None,                ///< ran to completion (Sat/Unsat)
  Timeout,             ///< wall-clock budget exhausted
  StateBudget,         ///< MaxStates distinct regexes explored
  ArenaBudget,         ///< arena/memory budget exhausted
  ParseError,          ///< the input pattern/script failed to parse
  UnsupportedFragment, ///< input outside the supported fragment
  CubeBudget,          ///< implicant enumeration budget exhausted (SMT)
  SubqueryUnknown,     ///< a sub-query gave up, poisoning the verdict (SMT)
  CacheRevalidationFailed, ///< a cached witness failed replay through the
                           ///< reference matcher (hard error, never silent)
};

/// Human-readable stop-reason name (stable, snake_case).
inline const char *stopReasonName(StopReason R) {
  switch (R) {
  case StopReason::None:
    return "none";
  case StopReason::Timeout:
    return "timeout";
  case StopReason::StateBudget:
    return "state_budget";
  case StopReason::ArenaBudget:
    return "arena_budget";
  case StopReason::ParseError:
    return "parse_error";
  case StopReason::UnsupportedFragment:
    return "unsupported_fragment";
  case StopReason::CubeBudget:
    return "cube_budget";
  case StopReason::SubqueryUnknown:
    return "subquery_unknown";
  case StopReason::CacheRevalidationFailed:
    return "cache_revalidation_failed";
  }
  return "?";
}

/// Exploration order for the derivative solver.
enum class SearchStrategy : uint8_t {
  Bfs, ///< breadth-first: shortest witness, larger frontier
  Dfs, ///< depth-first: mimics SMT backtracking search; finds *a* witness
       ///< fast on satisfiable instances with deep models
};

/// Which engine produced a result. Mostly interesting to the differential
/// harnesses (BatchSolver, the fuzz oracle), which aggregate per-engine
/// phase tables from it.
enum class SolveEngine : uint8_t {
  DerivBfs,   ///< symbolic-derivative solver, breadth-first
  DerivDfs,   ///< symbolic-derivative solver, depth-first
  Antimirov,  ///< Antimirov partial-derivative NFA baseline
  BrzMinterm, ///< Brzozowski + explicit minterm baseline
  Eager,      ///< eager product-automaton solver
  VerdictCache, ///< answered from the cross-query verdict cache (no solve)
};

/// Human-readable engine name (stable, snake_case).
inline const char *solveEngineName(SolveEngine E) {
  switch (E) {
  case SolveEngine::DerivBfs:
    return "deriv_bfs";
  case SolveEngine::DerivDfs:
    return "deriv_dfs";
  case SolveEngine::Antimirov:
    return "antimirov";
  case SolveEngine::BrzMinterm:
    return "brz_minterm";
  case SolveEngine::Eager:
    return "eager";
  case SolveEngine::VerdictCache:
    return "verdict_cache";
  }
  return "?";
}

/// Resource budget for one query.
struct SolveOptions {
  /// Wall-clock budget in milliseconds; <= 0 means unlimited.
  int64_t TimeoutMs = 0;
  /// Maximum number of distinct states/regexes to explore; 0 = unlimited.
  size_t MaxStates = 0;
  /// Exploration order (derivative solver only).
  SearchStrategy Strategy = SearchStrategy::Bfs;
  /// Heuristic (the paper's future-work direction): visit arcs whose
  /// target regex is syntactically smaller first — small residues tend to
  /// be closer to ε, steering DFS toward witnesses. Never affects the
  /// verdict, only exploration order.
  bool PreferSimplerArcs = false;
  /// Record a vertex's dense successor row on its *first* expansion rather
  /// than on re-expansion. Pays one row allocation per vertex up front, so
  /// it only makes sense when the solver stack is long-lived and queries
  /// share vertices (BatchSolver turns it on under ReuseArenas). Never
  /// affects the verdict.
  bool EagerRowRecording = false;
};

/// Per-query attribution of work done while solving: how many derivative
/// expansions, DNF branches, minterm computations, and cache hits the query
/// incurred, and where its wall-clock went. Populated by RegexSolver from
/// the thread-local metric shard (queries never migrate threads); all
/// counters are zero when the library is built with -DSBD_OBS=0.
struct SolveStats {
  uint64_t DerivativeCalls = 0;     ///< δ(R) invocations (incl. recursion)
  uint64_t DnfCalls = 0;            ///< δdnf(R) requests
  uint64_t BrzozowskiCalls = 0;     ///< classical D_a(R) invocations
  uint64_t DnfBranchesExplored = 0; ///< DNF conditional branches recursed
  uint64_t DnfBranchesPruned = 0;   ///< DNF branches with dead path conds
  uint64_t ArcsEnumerated = 0;      ///< (guard, target) arcs produced
  uint64_t MintermComputations = 0; ///< computeMinterms() calls
  uint64_t MintermsProduced = 0;    ///< minterms those calls returned
  uint64_t InternHits = 0;          ///< hash-consing hits (regex + TR)
  uint64_t InternMisses = 0;        ///< fresh nodes interned
  uint64_t MemoHits = 0;            ///< δ/δdnf/negate/Brz memo hits
  uint64_t MemoMisses = 0;          ///< memo misses (result computed)
  uint64_t ArenaNodes = 0;          ///< regex + TR nodes allocated
  uint64_t PeakFrontier = 0;        ///< max BFS/DFS queue length
  uint64_t SolverSteps = 0;         ///< states dequeued by the search loop
  uint64_t TimeoutChecks = 0;       ///< deadline clock reads
  int64_t ParseUs = 0;              ///< pattern/script parse time
  int64_t MintermUs = 0;            ///< time inside computeMinterms(); may
                                    ///< overlap DeriveUs/DnfUs regions
  int64_t DeriveUs = 0;             ///< time inside δ computation
  int64_t DnfUs = 0;                ///< time inside the DNF transformation
  int64_t CacheProbeUs = 0;         ///< dense-row replay (cache probe) time
  int64_t ScanUs = 0;               ///< lazy/compiled DFA scan time
  int64_t SearchUs = 0;             ///< search-loop time minus the above
  int64_t TotalUs = 0;              ///< wall-clock for the whole query
  /// Engine attribution for per-engine phase tables.
  SolveEngine Engine = SolveEngine::DerivBfs;

  // Pre-solve analyzer predictions (analysis/RegexAnalyzer.h), recorded so
  // every solve audits the analyzer: predicted class/cost vs. the actual
  // states/time above. Empty/zero when the query skipped analysis.
  const char *PredictedClass = ""; ///< reClassName() static string
  uint32_t RiskScore = 0;          ///< analyzer risk score [0,100]
  uint64_t PredictedStates = 0;    ///< coarse upper bound used for routing
  int64_t AnalysisUs = 0;          ///< time inside RegexAnalyzer::analyze
  uint64_t AnalysisNodesVisited = 0; ///< DAG nodes folded for this query
  uint64_t AnalysisCacheHits = 0;    ///< analyze() memo hits for this query

  SolveStats &operator+=(const SolveStats &O) {
    DerivativeCalls += O.DerivativeCalls;
    DnfCalls += O.DnfCalls;
    BrzozowskiCalls += O.BrzozowskiCalls;
    DnfBranchesExplored += O.DnfBranchesExplored;
    DnfBranchesPruned += O.DnfBranchesPruned;
    ArcsEnumerated += O.ArcsEnumerated;
    MintermComputations += O.MintermComputations;
    MintermsProduced += O.MintermsProduced;
    InternHits += O.InternHits;
    InternMisses += O.InternMisses;
    MemoHits += O.MemoHits;
    MemoMisses += O.MemoMisses;
    ArenaNodes += O.ArenaNodes;
    PeakFrontier = PeakFrontier > O.PeakFrontier ? PeakFrontier : O.PeakFrontier;
    SolverSteps += O.SolverSteps;
    TimeoutChecks += O.TimeoutChecks;
    ParseUs += O.ParseUs;
    MintermUs += O.MintermUs;
    DeriveUs += O.DeriveUs;
    DnfUs += O.DnfUs;
    CacheProbeUs += O.CacheProbeUs;
    ScanUs += O.ScanUs;
    SearchUs += O.SearchUs;
    TotalUs += O.TotalUs;
    AnalysisUs += O.AnalysisUs;
    AnalysisNodesVisited += O.AnalysisNodesVisited;
    AnalysisCacheHits += O.AnalysisCacheHits;
    if (PredictedClass[0] == '\0') {
      PredictedClass = O.PredictedClass;
      RiskScore = O.RiskScore;
      PredictedStates = O.PredictedStates;
    }
    // Aggregates keep the first-seen engine; callers that mix engines
    // should bucket by Engine before summing (BatchSolver does).
    return *this;
  }

  /// Flat JSON object with stable snake_case keys (used by --stats-json
  /// and `(get-info :statistics)`).
  std::string json() const {
    char Buf[2048];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"engine\": \"%s\", "
        "\"derivative_calls\": %llu, \"dnf_calls\": %llu, "
        "\"brzozowski_calls\": %llu, \"dnf_branches_explored\": %llu, "
        "\"dnf_branches_pruned\": %llu, \"arcs_enumerated\": %llu, "
        "\"minterm_computations\": %llu, \"minterms_produced\": %llu, "
        "\"intern_hits\": %llu, \"intern_misses\": %llu, "
        "\"memo_hits\": %llu, \"memo_misses\": %llu, "
        "\"arena_nodes\": %llu, \"peak_frontier\": %llu, "
        "\"solver_steps\": %llu, \"timeout_checks\": %llu, "
        "\"parse_us\": %lld, \"minterm_us\": %lld, "
        "\"derive_us\": %lld, \"dnf_us\": %lld, "
        "\"cache_probe_us\": %lld, \"scan_us\": %lld, "
        "\"search_us\": %lld, \"total_us\": %lld, "
        "\"predicted_class\": \"%s\", \"risk_score\": %u, "
        "\"predicted_states\": %llu, \"analysis_us\": %lld, "
        "\"analysis_nodes_visited\": %llu, \"analysis_cache_hits\": %llu}",
        solveEngineName(Engine),
        static_cast<unsigned long long>(DerivativeCalls),
        static_cast<unsigned long long>(DnfCalls),
        static_cast<unsigned long long>(BrzozowskiCalls),
        static_cast<unsigned long long>(DnfBranchesExplored),
        static_cast<unsigned long long>(DnfBranchesPruned),
        static_cast<unsigned long long>(ArcsEnumerated),
        static_cast<unsigned long long>(MintermComputations),
        static_cast<unsigned long long>(MintermsProduced),
        static_cast<unsigned long long>(InternHits),
        static_cast<unsigned long long>(InternMisses),
        static_cast<unsigned long long>(MemoHits),
        static_cast<unsigned long long>(MemoMisses),
        static_cast<unsigned long long>(ArenaNodes),
        static_cast<unsigned long long>(PeakFrontier),
        static_cast<unsigned long long>(SolverSteps),
        static_cast<unsigned long long>(TimeoutChecks),
        static_cast<long long>(ParseUs), static_cast<long long>(MintermUs),
        static_cast<long long>(DeriveUs), static_cast<long long>(DnfUs),
        static_cast<long long>(CacheProbeUs), static_cast<long long>(ScanUs),
        static_cast<long long>(SearchUs), static_cast<long long>(TotalUs),
        PredictedClass, RiskScore,
        static_cast<unsigned long long>(PredictedStates),
        static_cast<long long>(AnalysisUs),
        static_cast<unsigned long long>(AnalysisNodesVisited),
        static_cast<unsigned long long>(AnalysisCacheHits));
    return Buf;
  }
};

/// Result of one query, including the statistics the benchmark harness
/// reports.
struct SolveResult {
  SolveStatus Status = SolveStatus::Unknown;
  /// A word in the language (Sat only).
  std::vector<uint32_t> Witness;
  /// States/regexes materialized while solving.
  size_t StatesExplored = 0;
  /// Wall-clock time spent, microseconds.
  int64_t TimeUs = 0;
  /// Machine-readable cause of an Unknown/Unsupported verdict.
  StopReason Stop = StopReason::None;
  /// Diagnostic for Unknown/Unsupported (human-readable companion of Stop).
  std::string Note;
  /// Per-query work attribution (see SolveStats).
  SolveStats Stats;

  bool isSat() const { return Status == SolveStatus::Sat; }
  bool isUnsat() const { return Status == SolveStatus::Unsat; }
};

/// Human-readable status name.
inline const char *statusName(SolveStatus S) {
  switch (S) {
  case SolveStatus::Sat:
    return "sat";
  case SolveStatus::Unsat:
    return "unsat";
  case SolveStatus::Unknown:
    return "unknown";
  case SolveStatus::Unsupported:
    return "unsupported";
  }
  return "?";
}

} // namespace sbd

#endif // SBD_SOLVER_SOLVERRESULT_H
