//===- solver/RegexSolver.cpp - Decision procedure (Section 5) --------------===//

#include "solver/RegexSolver.h"

#include "analysis/AuditHooks.h"
#include "re/SmtPrinter.h"
#include "solver/SlowQueryLog.h"
#include "support/Histogram.h"
#include "support/Stopwatch.h"
#include "support/Trace.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

using namespace sbd;

namespace {

/// Per-query BFS bookkeeping: how a regex vertex was first reached.
struct Reached {
  Re Parent;
  uint32_t Ch;
  uint32_t Depth;
};

} // namespace

SolveResult RegexSolver::checkSat(Re R, const SolveOptions &OptsIn) {
  Stopwatch Timer;
  SolveResult Result;
  Result.Stats.Engine = OptsIn.Strategy == SearchStrategy::Dfs
                            ? SolveEngine::DerivDfs
                            : SolveEngine::DerivBfs;
  obs::ScopedSpan Span("checkSat", "solver");

  // Per-query attribution: queries never migrate threads, so the diff of
  // this thread's metric shard (and of the owning arenas' cache counters)
  // over the query is exactly this query's work.
#if SBD_OBS
  const obs::MetricShard ShardBefore = obs::tlsShard();
#endif
  CacheStats CacheBefore = M.stats();
  CacheBefore += T.stats();
  CacheBefore += Engine.stats();
  const size_t NodesBefore = M.numNodes() + T.numNodes();

  // Pre-solve static analysis (DESIGN.md §14): features feed the recorded
  // prediction below and the admission-control cap. Memoized per node, so
  // repeat queries cost one dense-vector lookup.
  Stopwatch AnalysisTimer;
  const analysis::RegexFeatures Feat = Analyzer.analyze(R);
  const int64_t AnalysisUs = AnalysisTimer.elapsedUs();

  // Admission control: a query the analyzer classifies as Adversarial and
  // that arrives without its own state budget gets a hard cap before it can
  // burn arena memory; everything else keeps the caller's budget.
  SolveOptions Opts = OptsIn;
  if (Feat.Class == analysis::ReClass::Adversarial && Opts.MaxStates == 0) {
    Opts.MaxStates = AdmissionMaxStates;
    SBD_OBS_INC(AdmissionFlagged);
  }

  size_t Steps = 0;
  uint64_t TimeoutChecks = 0;
  size_t PeakFrontier = 0;
#if SBD_OBS
  // Frontier tracing feeds the slow-query explain artifact; it only runs
  // when a capture trigger is armed (one relaxed load per query).
  const bool SlowArmed = obs::SlowQueryLog::global().armed();
  obs::FrontierTrace Frontier;
#endif

  /// Fills Result.Stats/TimeUs; every return path goes through here.
  auto finalize = [&] {
    Result.TimeUs = Timer.elapsedUs();
    SolveStats &St = Result.Stats;
    St.TotalUs = Result.TimeUs;
    St.SolverSteps = Steps;
    St.TimeoutChecks = TimeoutChecks;
    St.PeakFrontier = PeakFrontier;
    CacheStats CacheDiff = M.stats();
    CacheDiff += T.stats();
    CacheDiff += Engine.stats();
    CacheDiff.InternHits -= CacheBefore.InternHits;
    CacheDiff.InternMisses -= CacheBefore.InternMisses;
    CacheDiff.MemoHits -= CacheBefore.MemoHits;
    CacheDiff.MemoMisses -= CacheBefore.MemoMisses;
    CacheDiff.ProbeSteps -= CacheBefore.ProbeSteps;
    CacheDiff.Lookups -= CacheBefore.Lookups;
    St.InternHits = CacheDiff.InternHits;
    St.InternMisses = CacheDiff.InternMisses;
    St.MemoHits = CacheDiff.MemoHits;
    St.MemoMisses = CacheDiff.MemoMisses;
    St.ArenaNodes = M.numNodes() + T.numNodes() - NodesBefore;
    St.PredictedClass = analysis::reClassName(Feat.Class);
    St.RiskScore = Feat.Risk;
    St.PredictedStates = analysis::predictedStateBound(Feat);
    St.AnalysisUs = AnalysisUs;
#if SBD_OBS
    obs::MetricShard Diff = obs::tlsShard().since(ShardBefore);
    St.DerivativeCalls = Diff.get(obs::Counter::DerivativeCalls);
    St.DnfCalls = Diff.get(obs::Counter::DnfCalls);
    St.BrzozowskiCalls = Diff.get(obs::Counter::BrzozowskiCalls);
    St.DnfBranchesExplored = Diff.get(obs::Counter::DnfBranchesExplored);
    St.DnfBranchesPruned = Diff.get(obs::Counter::DnfBranchesPruned);
    St.ArcsEnumerated = Diff.get(obs::Counter::ArcsEnumerated);
    St.MintermComputations = Diff.get(obs::Counter::MintermComputations);
    St.MintermsProduced = Diff.get(obs::Counter::MintermsProduced);
    St.MintermUs = static_cast<int64_t>(Diff.get(obs::Counter::MintermTimeUs));
    St.DeriveUs = static_cast<int64_t>(Diff.get(obs::Counter::DeriveTimeUs));
    St.DnfUs = static_cast<int64_t>(Diff.get(obs::Counter::DnfTimeUs));
    St.CacheProbeUs =
        static_cast<int64_t>(Diff.get(obs::Counter::CacheProbeTimeUs));
    St.ScanUs = static_cast<int64_t>(Diff.get(obs::Counter::ScanTimeUs));
    St.AnalysisNodesVisited = Diff.get(obs::Counter::AnalysisNodesVisited);
    St.AnalysisCacheHits = Diff.get(obs::Counter::AnalysisCacheHits);
    // MintermUs is informational only: computeMinterms runs *inside* the
    // derive/DNF regions, so it is excluded from the residual.
    int64_t Attributed = St.DeriveUs + St.DnfUs + St.CacheProbeUs;
    St.SearchUs = St.TotalUs > Attributed ? St.TotalUs - Attributed : 0;
    // Fold this query's contribution into the process-wide registry under
    // the unified counter names.
    obs::MetricShard &Shard = obs::tlsShard();
    CacheDiff.foldInto(Shard);
    Shard.add(obs::Counter::SolverSteps, Steps);
    Shard.add(obs::Counter::TimeoutChecks, TimeoutChecks);
    Shard.add(obs::Counter::QueriesSolved, 1);
    Shard.add(obs::Counter::SolveTimeUs, static_cast<uint64_t>(St.TotalUs));
    Shard.add(obs::Counter::SearchTimeUs, static_cast<uint64_t>(St.SearchUs));
    SBD_OBS_HIST(SolveLatencyUs, St.TotalUs);
    SBD_OBS_HIST(SolveArenaNodes, St.ArenaNodes);
    if (obs::SlowQueryLog::global().shouldCapture(St.TotalUs, St.ArenaNodes)) {
      obs::SlowQueryArtifact A;
      A.Pattern = regexToSmtTerm(M, R);
      std::optional<bool> Expected;
      if (Result.Status == SolveStatus::Sat)
        Expected = true;
      else if (Result.Status == SolveStatus::Unsat)
        Expected = false;
      A.Script = regexToSmtScript(M, R, Expected);
      A.Strategy = Opts.Strategy == SearchStrategy::Dfs ? "dfs" : "bfs";
      A.TimeoutMs = Opts.TimeoutMs;
      A.MaxStates = Opts.MaxStates;
      A.Status = statusName(Result.Status);
      A.StopReason = stopReasonName(Result.Stop);
      A.TotalUs = St.TotalUs;
      A.States = Result.StatesExplored;
      A.FrontierStride = Frontier.Stride;
      A.Frontier = Frontier.Samples;
      A.TopCounters = obs::topCounterDeltas(Diff);
      A.StatsJson = St.json();
      A.FeaturesJson = Feat.json();
      obs::SlowQueryLog::global().capture(std::move(A));
    }
#endif
    Span.arg("status", std::string(statusName(Result.Status)));
    Span.arg("states", static_cast<uint64_t>(Result.StatesExplored));
    // SBD_AUDIT builds: re-verify the similarity/NNF invariants over both
    // live arenas before handing the result back (compiles out by default).
    SBD_AUDIT_CHECKSAT_EXIT(M, T);
  };

  // Breadth-first unfolding of the der/ite/or/ere rules. Each queue entry is
  // a regex goal for some suffix s_k.. of the string; depth = k.
  std::deque<Re> Queue;
  std::unordered_map<uint32_t, Reached> Visited; // Re.Id -> how reached

  auto finishSat = [&](Re Final) {
    // Reconstruct the witness by walking parents back to R.
    std::vector<uint32_t> Word;
    Re Cur = Final;
    while (true) {
      const Reached &Info = Visited.at(Cur.Id);
      if (Info.Depth == 0)
        break; // reached the root goal
      Word.push_back(Info.Ch);
      Cur = Info.Parent;
    }
    std::reverse(Word.begin(), Word.end());
    Result.Status = SolveStatus::Sat;
    Result.Witness = std::move(Word);
    Result.StatesExplored = Visited.size();
    finalize();
    return Result;
  };

  Graph.addVertex(R);
  Visited.emplace(R.Id, Reached{R, 0, 0});

  // der rule, ε case: |s| = 0 ∧ ν(r).
  if (M.nullable(R))
    return finishSat(R);
  if (Graph.isDead(R)) {
    // bot rule: r was already proven a dead end by an earlier query.
    Result.Status = SolveStatus::Unsat;
    Result.StatesExplored = Visited.size();
    finalize();
    return Result;
  }
  Queue.push_back(R);

  // Deadline discipline: the clock is read every (CheckMask+1) steps, and
  // the mask adapts — when the gap between two reads exceeds the target
  // slice (an eighth of the budget, capped at 10ms) the mask halves, so
  // slow derivative steps tighten the checking cadence instead of letting
  // the query overshoot its budget; fast steps relax it back toward 1/64.
  // Large DNF expansions additionally force an immediate check.
  const int64_t BudgetUs = Opts.TimeoutMs > 0 ? Opts.TimeoutMs * 1000 : 0;
  const int64_t SliceUs =
      BudgetUs > 0 ? std::max<int64_t>(
                         100, std::min<int64_t>(BudgetUs / 8, 10000))
                   : 0;
  uint64_t CheckMask = 0x3F;
  int64_t LastCheckUs = 0;
  auto timeExpired = [&]() -> bool {
    if (BudgetUs <= 0)
      return false;
    ++TimeoutChecks;
    int64_t Now = Timer.elapsedUs();
    int64_t SinceLast = Now - LastCheckUs;
    LastCheckUs = Now;
    if (SinceLast > SliceUs)
      CheckMask >>= 1;
    else if (SinceLast * 4 < SliceUs && CheckMask < 0x3F)
      CheckMask = CheckMask * 2 + 1;
    return Now >= BudgetUs;
  };
  /// Arc-count threshold above which an expansion forces a clock check.
  constexpr size_t BigExpansion = 16;

  while (!Queue.empty()) {
    if (Queue.size() > PeakFrontier)
      PeakFrontier = Queue.size();
#if SBD_OBS
    if (SlowArmed)
      Frontier.push(Queue.size());
#endif
    // Budget checks (time checked adaptively to keep it off the hot path).
    if (Opts.MaxStates && Visited.size() > Opts.MaxStates) {
      Result.Status = SolveStatus::Unknown;
      Result.Stop = StopReason::StateBudget;
      Result.Note = "state budget exhausted";
      break;
    }
    if ((++Steps & CheckMask) == 0 && timeExpired()) {
      Result.Status = SolveStatus::Unknown;
      Result.Stop = StopReason::Timeout;
      Result.Note = "timeout";
      break;
    }

    bool Dfs = Opts.Strategy == SearchStrategy::Dfs;
    Re Cur = Dfs ? Queue.back() : Queue.front();
    if (Dfs)
      Queue.pop_back();
    else
      Queue.pop_front();
    uint32_t Depth = Visited.at(Cur.Id).Depth;

    // Replay fast path: an earlier query already expanded Cur and recorded
    // its dense successor row (witness char, target Re.Id pairs). Replaying
    // the row skips δdnf construction, arc extraction, sorting, and guard
    // sampling entirely. Soundness: Q(δdnf) is deterministic per regex, the
    // row stores every arc (no determinization — lazy alternation is
    // preserved), and witnesses stay valid because guards are interned.
    if (const std::vector<uint32_t> *Row = Graph.arcRow(Cur)) {
      SBD_OBS_INC(DenseRowHits);
#if SBD_OBS
      Stopwatch ProbeTimer;
#endif
      SBD_AUDIT_DENSE_ROW(T, Engine.derivativeDnf(Cur), *Row, Cur.Id);
      for (size_t I = 0; I < Row->size(); I += 2) {
        uint32_t Ch = (*Row)[I];
        Re Next{(*Row)[I + 1]};
        if (Visited.count(Next.Id))
          continue;
        Visited.emplace(Next.Id, Reached{Cur, Ch, Depth + 1});
        if (M.nullable(Next)) {
          SBD_OBS_ADD(CacheProbeTimeUs, ProbeTimer.elapsedUs());
          return finishSat(Next);
        }
        if (Graph.isDead(Next))
          continue; // bot rule
        Queue.push_back(Next);
      }
      SBD_OBS_ADD(CacheProbeTimeUs, ProbeTimer.elapsedUs());
      continue;
    }

    // der rule, |s| > 0 case: unfold δdnf(Cur) and upd the graph.
    Tr Dnf = Engine.derivativeDnf(Cur);
    std::vector<TrArc> Arcs = T.arcs(Dnf);
    SBD_OBS_HIST(DnfExpansionArcs, Arcs.size());
    if (Arcs.size() >= BigExpansion && timeExpired()) {
      Result.Status = SolveStatus::Unknown;
      Result.Stop = StopReason::Timeout;
      Result.Note = "timeout";
      break;
    }
    if (Opts.PreferSimplerArcs) {
      // DFS pops from the back, so order large-to-small to explore the
      // syntactically smallest residue first; BFS gains the same bias in
      // dequeue order by sorting small-to-large.
      std::stable_sort(Arcs.begin(), Arcs.end(),
                       [&](const TrArc &A, const TrArc &B) {
                         uint32_t SA = M.node(A.Target).Size;
                         uint32_t SB = M.node(B.Target).Size;
                         return Dfs ? SA > SB : SA < SB;
                       });
    }
    // Record the dense row when this is a *re*-expansion (the vertex was
    // already closed by an earlier query or caseSplit): a vertex seen twice
    // is likely to be seen again, and recording on the second pass keeps
    // one-shot queries free of per-vertex row allocations. Long-lived
    // stacks opt into first-expansion recording instead.
    bool RecordRow = Opts.EagerRowRecording || Graph.isClosed(Cur);
    std::vector<Re> Targets;
    std::vector<uint32_t> Chars;
    Targets.reserve(Arcs.size());
    if (RecordRow)
      Chars.reserve(Arcs.size());
    for (const TrArc &A : Arcs) {
      Targets.push_back(A.Target);
      if (RecordRow) {
        // Witnesses for the whole row (not just unvisited arcs) so later
        // queries can replay it verbatim.
        auto Ch = A.Guard.sample();
        assert(Ch && "arcs must carry satisfiable guards");
        Chars.push_back(*Ch);
      }
    }
    if (RecordRow)
      Graph.closeWithRow(Cur, Targets, Chars);
    else
      Graph.close(Cur, Targets);

    for (size_t I = 0; I != Targets.size(); ++I) {
      Re Next = Targets[I];
      if (Visited.count(Next.Id))
        continue;
      // ite rule: the branch guard must be satisfiable — arcs() guarantees
      // it; pick a concrete representative for the witness.
      uint32_t Ch;
      if (RecordRow) {
        Ch = Chars[I];
      } else {
        auto Sampled = Arcs[I].Guard.sample();
        assert(Sampled && "arcs must carry satisfiable guards");
        Ch = *Sampled;
      }
      Visited.emplace(Next.Id, Reached{Cur, Ch, Depth + 1});
      // ere rule: in(s_{k+1}.., Next); ε sub-case checked on dequeue.
      if (M.nullable(Next))
        return finishSat(Next);
      if (Graph.isDead(Next))
        continue; // bot rule
      Queue.push_back(Next);
    }
  }

  if (Result.Status == SolveStatus::Unknown && !Result.Note.empty()) {
    Result.StatesExplored = Visited.size();
    finalize();
    return Result;
  }

  // The whole reachable component is closed and contains no final vertex:
  // R is a dead end, hence unsatisfiable (Theorem 5.2).
  Result.Status = SolveStatus::Unsat;
  Result.StatesExplored = Visited.size();
  finalize();
  assert(Graph.isDead(R) && "exhausted exploration must prove deadness");
  return Result;
}

SolveResult
RegexSolver::checkMembership(const std::vector<MembershipLiteral> &Literals,
                             const SolveOptions &Opts) {
  // in(s,r1) ∧ ¬in(s,r2) ∧ …  ⇒  in(s, r1 & ~r2 & …)   (Section 2)
  std::vector<Re> Parts;
  Parts.reserve(Literals.size());
  for (const MembershipLiteral &L : Literals)
    Parts.push_back(L.Positive ? L.Regex : M.complement(L.Regex));
  return checkSat(M.interList(std::move(Parts)), Opts);
}

SolveResult RegexSolver::checkContains(Re A, Re B, const SolveOptions &Opts) {
  return checkSat(M.diff(A, B), Opts);
}

SolveResult RegexSolver::checkEquivalent(Re A, Re B,
                                         const SolveOptions &Opts) {
  // r1 ≡ r2 iff (r1 & ~r2) | (r2 & ~r1) ≡ ⊥.
  return checkSat(M.union_(M.diff(A, B), M.diff(B, A)), Opts);
}

RegexSolver::CaseSplit RegexSolver::caseSplit(Re R) {
  CaseSplit Out;
  Out.EmptyCase = M.nullable(R);
  Out.Arcs = T.arcs(Engine.derivativeDnf(R));
  // upd rule: record the derivative targets and close the vertex.
  std::vector<Re> Targets;
  Targets.reserve(Out.Arcs.size());
  for (const TrArc &A : Out.Arcs)
    Targets.push_back(A.Target);
  Graph.addVertex(R);
  Graph.close(R, Targets);
  return Out;
}

Re RegexSolver::positionConstraint(const std::vector<CharSet> &Positions) {
  std::vector<Re> Parts;
  Parts.reserve(Positions.size() + 1);
  for (const CharSet &S : Positions)
    Parts.push_back(M.pred(S));
  Parts.push_back(M.top());
  return M.concatList(Parts);
}

bool RegexSolver::matchesWord(Re R, const std::vector<uint32_t> &Word) {
  for (PooledMatcher &P : MatcherPool)
    if (P.ReId == R.Id)
      return P.Matcher->matches(Word);
  if (MatcherPool.size() == MaxPooledMatchers)
    MatcherPool.clear(); // wholesale flush: matchers rebuild lazily
  CachedMatcher::Options MO;
  // Validation words are short, so the promotion clock is set low — a
  // regex validated a handful of times earns the compiled table — and the
  // closure cap tight, so pathological patterns stay on the lazy path.
  MO.PromoteAfterChars = 512;
  MO.CompileMaxStates = 512;
  MatcherPool.push_back(
      {R.Id, std::make_unique<CachedMatcher>(Engine, R, MO)});
  return MatcherPool.back().Matcher->matches(Word);
}
