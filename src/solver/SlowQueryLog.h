//===- solver/SlowQueryLog.h - Slow-query explain capture (sbd::obs) --------===//
///
/// \file
/// The diagnostics half of the profiling layer: when a query exceeds a
/// latency or arena-node threshold, RegexSolver captures a *replayable
/// explain artifact* — the pattern in canonical SMT-LIB form, a full
/// `.smt2` replay script, the solve options, a frontier-size-per-step
/// trace, the top-k counter deltas of the query, and the verdict — into a
/// bounded in-memory ring (drop-oldest) and, when configured with a path,
/// an append-only JSONL file. `tools/sbd-explain` replays an artifact and
/// prints where the exploration's time and nodes concentrated.
///
/// The armed() check is one relaxed atomic load, and capture sites in the
/// solver compile out entirely at `-DSBD_OBS=0`; the log object itself
/// stays available (always empty) so front ends need no guards.
/// See DESIGN.md §13 for the artifact schema.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SOLVER_SLOWQUERYLOG_H
#define SBD_SOLVER_SLOWQUERYLOG_H

#include "support/Metrics.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sbd {
namespace obs {

/// Capture policy. A query is captured when it trips *either* enabled
/// threshold; with both disabled the log is disarmed and the solver's
/// per-step frontier tracing is skipped entirely.
struct SlowQueryOptions {
  /// Capture queries slower than this; < 0 disables the latency trigger.
  int64_t LatencyThresholdUs = -1;
  /// Capture queries allocating more arena nodes than this; 0 disables.
  uint64_t NodeThreshold = 0;
  /// In-memory ring capacity (drop-oldest past this).
  size_t Capacity = 64;
  /// When nonempty, every capture is also appended to this JSONL file.
  std::string Path;
};

/// Frontier-size-per-step trace with a bounded sample count: records every
/// Stride-th step and, at the cap, decimates (keeps every other sample,
/// doubles the stride) so arbitrarily long searches produce a fixed-size
/// curve whose x-axis is `sample_index * Stride` steps.
struct FrontierTrace {
  static constexpr size_t MaxSamples = 1024;

  std::vector<uint64_t> Samples;
  uint64_t Stride = 1;
  uint64_t Tick = 0;

  void push(uint64_t FrontierSize) {
    if (Tick++ % Stride)
      return;
    Samples.push_back(FrontierSize);
    if (Samples.size() >= MaxSamples) {
      size_t J = 0;
      for (size_t I = 0; I < Samples.size(); I += 2)
        Samples[J++] = Samples[I];
      Samples.resize(J);
      Stride *= 2;
    }
  }
};

/// One captured slow query. json() renders the stable schema sbd-explain
/// consumes (all keys always present).
struct SlowQueryArtifact {
  std::string Pattern;  ///< regex as a canonical SMT-LIB `re.*` term
  std::string Script;   ///< full replayable `.smt2` script
  std::string Strategy; ///< "bfs" or "dfs"
  int64_t TimeoutMs = 0;
  uint64_t MaxStates = 0;
  std::string Status;     ///< statusName() of the verdict
  std::string StopReason; ///< stopReasonName() of the verdict
  int64_t TotalUs = 0;
  uint64_t States = 0; ///< distinct regex states visited
  uint64_t FrontierStride = 1;
  std::vector<uint64_t> Frontier; ///< frontier size every FrontierStride steps
  /// Largest per-query counter deltas, name → value, descending.
  std::vector<std::pair<std::string, uint64_t>> TopCounters;
  std::string StatsJson; ///< SolveStats::json() of the query
  /// RegexFeatures::json() of the analyzed pattern — the structural shape
  /// that makes triage possible without re-parsing the pattern.
  std::string FeaturesJson;

  /// One-line JSON object (the JSONL record format).
  std::string json() const;
};

/// Process-wide bounded ring of slow-query artifacts. Singleton,
/// intentionally leaked like the metric registries.
class SlowQueryLog {
public:
  static SlowQueryLog &global();

  /// Install a capture policy (also clears nothing — captured artifacts
  /// stay until drain()).
  void configure(const SlowQueryOptions &O);
  SlowQueryOptions options() const;

  /// Hot-path check: is any capture trigger enabled?
  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  /// Does a finished query with this latency/allocation trip a trigger?
  bool shouldCapture(int64_t TotalUs, uint64_t ArenaNodes) const;

  /// Pushes an artifact into the ring (dropping the oldest past capacity,
  /// counted as `slow_queries_dropped`) and appends it to the configured
  /// JSONL path. Bumps `slow_queries_captured`.
  void capture(SlowQueryArtifact A);

  /// Returns and clears the ring's contents, oldest first.
  std::vector<SlowQueryArtifact> drain();

  /// Number of artifacts currently in the ring.
  size_t size() const;

private:
  SlowQueryLog() = default;
  SlowQueryLog(const SlowQueryLog &) = delete;

  std::atomic<bool> Armed{false};

  struct Impl;
  static Impl &impl();
};

/// The \p K largest nonzero counter deltas in \p Diff, descending — the
/// "where did the work go" summary attached to each artifact. Time-class
/// counters (`*_time_us`) are excluded: the phase breakdown already covers
/// them and they would otherwise dominate every list.
std::vector<std::pair<std::string, uint64_t>>
topCounterDeltas(const MetricShard &Diff, size_t K = 8);

} // namespace obs
} // namespace sbd

#endif // SBD_SOLVER_SLOWQUERYLOG_H
