//===- solver/SlowQueryLog.cpp - Slow-query explain capture (sbd::obs) ------===//

#include "solver/SlowQueryLog.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>

using namespace sbd;
using namespace sbd::obs;

namespace {

/// Escapes a string for embedding in a JSON string literal.
void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    unsigned char Ch = static_cast<unsigned char>(C);
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (Ch < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        Out += Buf;
      } else {
        Out += static_cast<char>(Ch);
      }
    }
  }
}

void appendJsonString(std::string &Out, const char *Key,
                      const std::string &Value) {
  Out += '"';
  Out += Key;
  Out += "\": \"";
  appendJsonEscaped(Out, Value);
  Out += '"';
}

} // namespace

std::string SlowQueryArtifact::json() const {
  std::string Out = "{";
  appendJsonString(Out, "pattern", Pattern);
  Out += ", ";
  appendJsonString(Out, "script", Script);
  Out += ", ";
  appendJsonString(Out, "strategy", Strategy);
  Out += ", \"timeout_ms\": " + std::to_string(TimeoutMs);
  Out += ", \"max_states\": " + std::to_string(MaxStates);
  Out += ", ";
  appendJsonString(Out, "status", Status);
  Out += ", ";
  appendJsonString(Out, "stop_reason", StopReason);
  Out += ", \"total_us\": " + std::to_string(TotalUs);
  Out += ", \"states\": " + std::to_string(States);
  Out += ", \"frontier_stride\": " + std::to_string(FrontierStride);
  Out += ", \"frontier_trace\": [";
  for (size_t I = 0; I != Frontier.size(); ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(Frontier[I]);
  }
  Out += "], \"top_counters\": {";
  for (size_t I = 0; I != TopCounters.size(); ++I) {
    if (I)
      Out += ", ";
    Out += '"';
    Out += TopCounters[I].first;
    Out += "\": ";
    Out += std::to_string(TopCounters[I].second);
  }
  Out += "}, \"stats\": ";
  Out += StatsJson.empty() ? "{}" : StatsJson;
  Out += ", \"features\": ";
  Out += FeaturesJson.empty() ? "{}" : FeaturesJson;
  Out += '}';
  return Out;
}

/// Log internals: the policy and the ring, all under one mutex — capture
/// only happens for queries already past a slowness threshold, so the lock
/// is nowhere near a hot path.
struct SlowQueryLog::Impl {
  std::mutex Mu;
  SlowQueryOptions Opts;
  std::deque<SlowQueryArtifact> Ring;
};

SlowQueryLog::Impl &SlowQueryLog::impl() {
  // Leaked like the metric registries: solver threads may outlive main().
  static Impl *I = new Impl();
  return *I;
}

SlowQueryLog &SlowQueryLog::global() {
  static SlowQueryLog *L = new SlowQueryLog();
  return *L;
}

void SlowQueryLog::configure(const SlowQueryOptions &O) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  I.Opts = O;
  Armed.store(O.LatencyThresholdUs >= 0 || O.NodeThreshold > 0,
              std::memory_order_relaxed);
}

SlowQueryOptions SlowQueryLog::options() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  return I.Opts;
}

bool SlowQueryLog::shouldCapture(int64_t TotalUs, uint64_t ArenaNodes) const {
  if (!armed())
    return false;
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  if (I.Opts.LatencyThresholdUs >= 0 && TotalUs >= I.Opts.LatencyThresholdUs)
    return true;
  return I.Opts.NodeThreshold > 0 && ArenaNodes > I.Opts.NodeThreshold;
}

void SlowQueryLog::capture(SlowQueryArtifact A) {
  Impl &I = impl();
  std::string Path;
  std::string Line;
  {
    std::lock_guard<std::mutex> Lock(I.Mu);
    while (I.Opts.Capacity && I.Ring.size() >= I.Opts.Capacity) {
      I.Ring.pop_front();
      SBD_OBS_INC(SlowQueriesDropped);
    }
    Path = I.Opts.Path;
    if (!Path.empty())
      Line = A.json();
    I.Ring.push_back(std::move(A));
  }
  SBD_OBS_INC(SlowQueriesCaptured);
  if (Path.empty())
    return;
  // File I/O outside the lock: concurrent captures may interleave *lines*,
  // never bytes (single fwrite of a complete line).
  Line += '\n';
  if (std::FILE *F = std::fopen(Path.c_str(), "a")) {
    std::fwrite(Line.data(), 1, Line.size(), F);
    std::fclose(F);
  }
}

std::vector<SlowQueryArtifact> SlowQueryLog::drain() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  std::vector<SlowQueryArtifact> Out(I.Ring.begin(), I.Ring.end());
  I.Ring.clear();
  return Out;
}

size_t SlowQueryLog::size() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  return I.Ring.size();
}

std::vector<std::pair<std::string, uint64_t>>
sbd::obs::topCounterDeltas(const MetricShard &Diff, size_t K) {
  std::vector<std::pair<std::string, uint64_t>> All;
  for (size_t I = 0; I != NumCounters; ++I) {
    if (!Diff.C[I])
      continue;
    const char *Name = counterName(static_cast<Counter>(I));
    size_t Len = std::strlen(Name);
    if (Len >= 8 && std::strcmp(Name + Len - 8, "_time_us") == 0)
      continue;
    All.emplace_back(Name, Diff.C[I]);
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const auto &A, const auto &B) {
                     return A.second > B.second;
                   });
  if (All.size() > K)
    All.resize(K);
  return All;
}
