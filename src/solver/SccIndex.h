//===- solver/SccIndex.h - Incremental SCC condensation ---------------------===//
///
/// \file
/// Incremental maintenance of the strongly-connected-component condensation
/// of the derivative graph, in the style the paper describes for dZ3
/// (Section 5, "Alive and Dead State Detection"): a Union-Find structure
/// implements SCCs, adding a batch of edges triggers incremental cycle
/// detection (a simplified variant of Bender et al.), and Dead vertices are
/// marked by recursive propagation over the condensation.
///
/// A component is **dead** when (a) every member vertex is closed (fully
/// expanded), (b) no member is alive (can reach a final vertex), and
/// (c) every successor component is dead. Death is permanent: a dead
/// component never gains edges (its members are closed) and can never
/// become alive (aliveness is reachability to F, which deadness excludes).
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SOLVER_SCCINDEX_H
#define SBD_SOLVER_SCCINDEX_H

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

namespace sbd {

/// Union-find based SCC condensation with incremental dead propagation.
class SccIndex {
public:
  /// Registers a new vertex as a fresh open singleton component.
  void addVertex(uint32_t V);

  /// Marks a vertex as closed (all outgoing edges recorded); may trigger
  /// dead propagation.
  void closeVertex(uint32_t V);

  /// Marks a vertex's component alive (it can reach a final vertex).
  void markAlive(uint32_t V);

  /// Adds an edge; merges components when it closes a cycle. Call *before*
  /// closeVertex for the batch's source (the solver's upd rule adds all
  /// edges, then closes).
  void addEdge(uint32_t From, uint32_t To);

  /// Is the vertex's component proven dead?
  bool isDead(uint32_t V) { return Comp[find(V)].Dead; }

  /// Is the vertex's component marked alive?
  bool isAlive(uint32_t V) { return Comp[find(V)].Alive; }

  /// Representative of V's component (for diagnostics/tests).
  uint32_t component(uint32_t V) { return find(V); }

  /// Number of distinct components among registered vertices.
  size_t numComponents();

private:
  struct CompData {
    std::set<uint32_t> Succs; ///< successor reps (possibly stale; re-find)
    std::set<uint32_t> Preds; ///< predecessor reps (possibly stale)
    uint32_t OpenVertices = 0;
    bool Alive = false;
    bool Dead = false;
  };

  uint32_t find(uint32_t V);
  /// Is there a condensation path From ⇒* To?
  bool reaches(uint32_t FromRep, uint32_t ToRep);
  /// Merges every component on a path NewSuccRep ⇒* SourceRep with the two
  /// endpoints (the cycle closed by the edge Source → NewSucc).
  void mergeCycle(uint32_t SourceRep, uint32_t NewSuccRep);
  /// Marks Rep dead if its conditions hold; recurses into predecessors.
  void maybeMarkDead(uint32_t Rep);
  /// Collects the current (find-normalized, self-free) successor reps.
  std::vector<uint32_t> normalizedSuccs(uint32_t Rep);
  std::vector<uint32_t> normalizedPreds(uint32_t Rep);

  std::vector<uint32_t> Parent;
  std::vector<uint32_t> Rank;
  std::vector<CompData> Comp; // valid at representatives
};

} // namespace sbd

#endif // SBD_SOLVER_SCCINDEX_H
