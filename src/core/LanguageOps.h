//===- core/LanguageOps.h - Language-level operations ------------------------===//
///
/// \file
/// Derived language operations on extended regexes:
///
///  - `reverseRegex`: the structural reversal, L(rev(R)) = { reverse(w) :
///    w ∈ L(R) }. Reversal commutes with all Boolean operations (it is a
///    bijection on Σ*), flips concatenations, and fixes predicates —
///    useful for turning suffix constraints into prefix constraints.
///  - `enumerateLanguage`: the first N words of L(R) in shortlex-ish order
///    (by length, then by discovery order of the derivative arcs), computed
///    by lazy breadth-first unfolding of δdnf. Handy for debugging,
///    examples, and as a test oracle for finite languages.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_CORE_LANGUAGEOPS_H
#define SBD_CORE_LANGUAGEOPS_H

#include "core/Derivatives.h"

#include <optional>
#include <vector>

namespace sbd {

/// Structural reversal of R; linear in the size of R.
Re reverseRegex(RegexManager &M, Re R);

/// Enumerates up to \p MaxWords distinct words of L(R), ordered by length.
/// Guards of at most 4 code points are enumerated exhaustively; larger
/// classes contribute one readable representative. The enumeration explores
/// at most \p MaxStates derivative configurations (0 = 10 * MaxWords + 100).
std::vector<std::vector<uint32_t>> enumerateLanguage(DerivativeEngine &Engine,
                                                     Re R, size_t MaxWords,
                                                     size_t MaxStates = 0);

/// Finds the first match of R *inside* \p Word (substring semantics, like
/// the Symbolic Regex Matcher of Section 8.5): among all spans
/// [Start, End) with Word[Start..End) ∈ L(R), returns the one with the
/// smallest End, and among those the smallest Start. Implemented with two
/// derivative scans: a forward run of `.*R` locates the earliest match end,
/// a backward run of reverse(R) locates the leftmost start. Empty-word
/// matches (nullable R) yield the span [0, 0).
std::optional<std::pair<size_t, size_t>>
findFirstMatch(DerivativeEngine &Engine, Re R,
               const std::vector<uint32_t> &Word);

/// Counts |L(R) ∩ Σ^Len| exactly, by dynamic programming over the
/// derivative state space: count(q, n) = Σ_arcs |guard| · count(target,
/// n−1). Saturates at UINT64_MAX on overflow (easy over Unicode: |Σ| is
/// already 2^20.08). Returns nullopt when more than \p MaxStates derivative
/// states would be materialized (0 = unlimited).
std::optional<uint64_t> countWordsOfLength(DerivativeEngine &Engine, Re R,
                                           size_t Len, size_t MaxStates = 0);

} // namespace sbd

#endif // SBD_CORE_LANGUAGEOPS_H
