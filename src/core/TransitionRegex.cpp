//===- core/TransitionRegex.cpp - Transition regexes ------------------------===//
// sbd-lint: hot-path

#include "core/TransitionRegex.h"

#include "analysis/AuditHooks.h"
#include "support/Debug.h"
#include "support/Hashing.h"

#include <algorithm>
#include <set>

using namespace sbd;

TrManager::TrManager(RegexManager &Mgr) : M(Mgr) {
  BotTr = leaf(M.empty());
  TopTr = leaf(M.top());
}

Tr TrManager::intern(TrNode Node) {
  uint64_t H = hashMix(static_cast<uint64_t>(Node.Kind));
  H = hashCombine(H, Node.LeafRe.Id);
  H = hashCombine(H, Node.Cond.hash());
  for (Tr Kid : Node.Kids)
    H = hashCombine(H, Kid.Id);
  Node.Hash = H;
#if SBD_AUDIT
  const size_t SizeBefore = Nodes.size();
#endif
  uint32_t Id = ConsTable.findOrInsert(
      H,
      [&](uint32_t Cand) {
        const TrNode &Other = Nodes[Cand];
        return Other.Kind == Node.Kind && Other.LeafRe == Node.LeafRe &&
               Other.Cond == Node.Cond && Other.Kids == Node.Kids;
      },
      [&] {
        uint32_t NewId = static_cast<uint32_t>(Nodes.size());
        Nodes.push_back(std::move(Node));
        return NewId;
      },
      Stats);
#if SBD_AUDIT
  if (Nodes.size() != SizeBefore)
    SBD_AUDIT_TR_NODE(*this, Tr{Id});
#endif
  return Tr{Id};
}

void TrManager::reserve(size_t NumNodes) {
  Nodes.reserve(NumNodes);
  ConsTable.reserve(NumNodes);
}

void TrManager::clearCaches() {
  NegateMemo.clear();
  DnfMemo.clear();
}

Tr TrManager::leaf(Re R) {
  TrNode N;
  N.Kind = TrKind::Leaf;
  N.LeafRe = R;
  return intern(std::move(N));
}

Tr TrManager::ite(const CharSet &Cond, Tr T, Tr F) {
  if (Cond.isFull())
    return T;
  if (Cond.isEmpty())
    return F;
  // Collapse directly nested conditionals on the same predicate:
  // if(φ, if(φ,a,b), f) = if(φ, a, f) and dually for the false branch.
  if (kind(T) == TrKind::Ite && node(T).Cond == Cond)
    T = node(T).Kids[0];
  if (kind(F) == TrKind::Ite && node(F).Cond == Cond)
    F = node(F).Kids[1];
  if (T == F)
    return T;
  TrNode N;
  N.Kind = TrKind::Ite;
  N.Cond = Cond;
  N.Kids = {T, F};
  return intern(std::move(N));
}

Tr TrManager::union_(std::vector<Tr> Ts) {
  std::vector<Tr> Flat;
  for (Tr T : Ts) {
    if (kind(T) == TrKind::Union)
      Flat.insert(Flat.end(), node(T).Kids.begin(), node(T).Kids.end());
    else
      Flat.push_back(T);
  }
  // Merge all ERE leaves through the regex algebra; this also handles the
  // unit (⊥) and absorbing (.*) elements.
  std::vector<Re> LeafRes;
  std::vector<Tr> Kids;
  for (Tr T : Flat) {
    if (kind(T) == TrKind::Leaf)
      LeafRes.push_back(node(T).LeafRe);
    else
      Kids.push_back(T);
  }
  if (!LeafRes.empty()) {
    Re Merged = M.unionList(std::move(LeafRes));
    if (Merged == M.top())
      return TopTr;
    if (Merged != M.empty())
      Kids.push_back(leaf(Merged));
  }
  std::sort(Kids.begin(), Kids.end());
  Kids.erase(std::unique(Kids.begin(), Kids.end()), Kids.end());
  if (Kids.empty())
    return BotTr;
  if (Kids.size() == 1)
    return Kids[0];
  TrNode N;
  N.Kind = TrKind::Union;
  N.Kids = std::move(Kids);
  return intern(std::move(N));
}

Tr TrManager::inter(std::vector<Tr> Ts) {
  std::vector<Tr> Flat;
  for (Tr T : Ts) {
    if (kind(T) == TrKind::Inter)
      Flat.insert(Flat.end(), node(T).Kids.begin(), node(T).Kids.end());
    else
      Flat.push_back(T);
  }
  std::vector<Re> LeafRes;
  std::vector<Tr> Kids;
  for (Tr T : Flat) {
    if (kind(T) == TrKind::Leaf)
      LeafRes.push_back(node(T).LeafRe);
    else
      Kids.push_back(T);
  }
  if (!LeafRes.empty()) {
    Re Merged = M.interList(std::move(LeafRes));
    if (Merged == M.empty())
      return BotTr;
    if (Merged != M.top())
      Kids.push_back(leaf(Merged));
  }
  std::sort(Kids.begin(), Kids.end());
  Kids.erase(std::unique(Kids.begin(), Kids.end()), Kids.end());
  if (Kids.empty())
    return TopTr;
  if (Kids.size() == 1)
    return Kids[0];
  TrNode N;
  N.Kind = TrKind::Inter;
  N.Kids = std::move(Kids);
  return intern(std::move(N));
}

Tr TrManager::negate(Tr T) {
  if (T.Id < NegateMemo.size() && NegateMemo[T.Id] != MissingId) {
    SBD_STATS_INC(Stats, MemoHits);
    return Tr{NegateMemo[T.Id]};
  }
  SBD_STATS_INC(Stats, MemoMisses);
  // Copy the node: recursive calls below may grow the arena and invalidate
  // references into it.
  TrNode N = node(T);
  Tr Result;
  switch (N.Kind) {
  case TrKind::Leaf:
    Result = leaf(M.complement(N.LeafRe));
    break;
  case TrKind::Ite: {
    Tr Then = negate(N.Kids[0]);
    Tr Else = negate(N.Kids[1]);
    Result = ite(N.Cond, Then, Else);
    break;
  }
  case TrKind::Union: {
    std::vector<Tr> Kids = N.Kids;
    for (Tr &Kid : Kids)
      Kid = negate(Kid);
    Result = inter(std::move(Kids));
    break;
  }
  case TrKind::Inter: {
    std::vector<Tr> Kids = N.Kids;
    for (Tr &Kid : Kids)
      Kid = negate(Kid);
    Result = union_(std::move(Kids));
    break;
  }
  }
  if (NegateMemo.size() <= T.Id)
    NegateMemo.resize(Nodes.size(), MissingId);
  NegateMemo[T.Id] = Result.Id;
  return Result;
}

Tr TrManager::concatRe(Tr T, Re R) {
  if (R == M.empty())
    return BotTr; // every leaf becomes L·∅ = ∅
  if (R == M.epsilon())
    return T;
  const TrNode &N = node(T);
  switch (N.Kind) {
  case TrKind::Leaf:
    return leaf(M.concat(N.LeafRe, R));
  case TrKind::Ite: {
    Tr Then = node(T).Kids[0], Else = node(T).Kids[1];
    CharSet Cond = node(T).Cond;
    return ite(Cond, concatRe(Then, R), concatRe(Else, R));
  }
  case TrKind::Union: {
    std::vector<Tr> Kids = N.Kids;
    for (Tr &Kid : Kids)
      Kid = concatRe(Kid, R);
    return union_(std::move(Kids));
  }
  case TrKind::Inter:
    // (τ & ρ) · R = lift(τ & ρ) · R — the one place lifting is required.
    return concatRe(dnf(T), R);
  }
  sbd_unreachable("covered switch");
}

Re TrManager::apply(Tr T, uint32_t Ch) const {
  const TrNode &N = node(T);
  switch (N.Kind) {
  case TrKind::Leaf:
    return N.LeafRe;
  case TrKind::Ite:
    return N.Cond.contains(Ch) ? apply(N.Kids[0], Ch) : apply(N.Kids[1], Ch);
  case TrKind::Union: {
    std::vector<Re> Rs;
    Rs.reserve(N.Kids.size());
    for (Tr Kid : N.Kids)
      Rs.push_back(apply(Kid, Ch));
    return M.unionList(std::move(Rs));
  }
  case TrKind::Inter: {
    std::vector<Re> Rs;
    Rs.reserve(N.Kids.size());
    for (Tr Kid : N.Kids)
      Rs.push_back(apply(Kid, Ch));
    return M.interList(std::move(Rs));
  }
  }
  sbd_unreachable("covered switch");
}

Tr TrManager::dnf(Tr T) {
  if (T.Id < DnfMemo.size() && DnfMemo[T.Id] != MissingId) {
    SBD_STATS_INC(Stats, MemoHits);
    return Tr{DnfMemo[T.Id]};
  }
  SBD_STATS_INC(Stats, MemoMisses);
  Tr Result = dnfUnder(T, CharSet::full());
  if (DnfMemo.size() <= T.Id)
    DnfMemo.resize(Nodes.size(), MissingId);
  DnfMemo[T.Id] = Result.Id;
  SBD_AUDIT_DNF(*this, Result);
  return Result;
}

Tr TrManager::dnfUnder(Tr T, const CharSet &Path) {
  assert(!Path.isEmpty() && "dnfUnder requires a satisfiable path");
  const TrNode &N = node(T);
  switch (N.Kind) {
  case TrKind::Leaf:
    return T;
  case TrKind::Ite: {
    CharSet Cond = N.Cond;
    Tr Then = N.Kids[0], Else = N.Kids[1];
    CharSet PathT = Path.intersectWith(Cond);
    CharSet PathF = Path.minus(Cond);
    if (PathT.isEmpty()) {
      SBD_OBS_INC(DnfBranchesPruned);
      SBD_OBS_INC(DnfBranchesExplored);
      return dnfUnder(Else, Path); // the then-branch is dead here
    }
    if (PathF.isEmpty()) {
      SBD_OBS_INC(DnfBranchesPruned);
      SBD_OBS_INC(DnfBranchesExplored);
      return dnfUnder(Then, Path); // the else-branch is dead here
    }
    SBD_OBS_ADD(DnfBranchesExplored, 2);
    return ite(Cond, dnfUnder(Then, PathT), dnfUnder(Else, PathF));
  }
  case TrKind::Union: {
    std::vector<Tr> Kids = N.Kids;
    for (Tr &Kid : Kids)
      Kid = dnfUnder(Kid, Path);
    return union_(std::move(Kids));
  }
  case TrKind::Inter: {
    std::vector<Tr> Kids = N.Kids;
    Tr Acc = dnfUnder(Kids[0], Path);
    for (size_t I = 1; I != Kids.size(); ++I)
      Acc = interDnf(Acc, Kids[I], Path);
    return Acc;
  }
  }
  sbd_unreachable("covered switch");
}

Tr TrManager::leafInterDnf(Re A, Tr B) {
  const TrNode &N = node(B);
  switch (N.Kind) {
  case TrKind::Leaf:
    return leaf(M.inter(A, N.LeafRe));
  case TrKind::Ite: {
    CharSet Cond = N.Cond;
    Tr Then = N.Kids[0], Else = N.Kids[1];
    return ite(Cond, leafInterDnf(A, Then), leafInterDnf(A, Else));
  }
  case TrKind::Union: {
    std::vector<Tr> Kids = N.Kids;
    for (Tr &Kid : Kids)
      Kid = leafInterDnf(A, Kid);
    return union_(std::move(Kids));
  }
  case TrKind::Inter:
    sbd_unreachable("leafInterDnf requires a DNF operand");
  }
  sbd_unreachable("covered switch");
}

Tr TrManager::interDnf(Tr A, Tr B, const CharSet &Path) {
  if (A == BotTr)
    return BotTr;
  if (A == TopTr)
    return dnfUnder(B, Path);
  const TrNode &N = node(A);
  switch (N.Kind) {
  case TrKind::Leaf: {
    Re LeafRe = N.LeafRe; // copy before dnfUnder can grow the arena
    Tr Bd = dnfUnder(B, Path);
    return leafInterDnf(LeafRe, Bd);
  }
  case TrKind::Ite: {
    CharSet Cond = N.Cond;
    Tr Then = N.Kids[0], Else = N.Kids[1];
    CharSet PathT = Path.intersectWith(Cond);
    CharSet PathF = Path.minus(Cond);
    if (PathT.isEmpty()) {
      SBD_OBS_INC(DnfBranchesPruned);
      SBD_OBS_INC(DnfBranchesExplored);
      return interDnf(Else, B, Path);
    }
    if (PathF.isEmpty()) {
      SBD_OBS_INC(DnfBranchesPruned);
      SBD_OBS_INC(DnfBranchesExplored);
      return interDnf(Then, B, Path);
    }
    SBD_OBS_ADD(DnfBranchesExplored, 2);
    return ite(Cond, interDnf(Then, B, PathT), interDnf(Else, B, PathF));
  }
  case TrKind::Union: {
    std::vector<Tr> Kids = N.Kids;
    for (Tr &Kid : Kids)
      Kid = interDnf(Kid, B, Path);
    return union_(std::move(Kids));
  }
  case TrKind::Inter:
    sbd_unreachable("interDnf's first operand must be in DNF");
  }
  sbd_unreachable("covered switch");
}

bool TrManager::isDnf(Tr T) const {
  const TrNode &N = node(T);
  if (N.Kind == TrKind::Inter)
    return false;
  for (Tr Kid : N.Kids)
    if (!isDnf(Kid))
      return false;
  return true;
}

void TrManager::collectLeaves(Tr T, std::vector<Re> &Out,
                              bool IncludeTrivial) const {
  std::set<uint32_t> Seen;
  std::vector<Tr> Stack = {T};
  std::set<uint32_t> Visited;
  for (Re R : Out)
    Seen.insert(R.Id);
  while (!Stack.empty()) {
    Tr Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur.Id).second)
      continue;
    const TrNode &N = node(Cur);
    if (N.Kind == TrKind::Leaf) {
      Re R = N.LeafRe;
      if (!IncludeTrivial && (R == M.empty() || R == M.top()))
        continue;
      if (Seen.insert(R.Id).second)
        Out.push_back(R);
      continue;
    }
    for (Tr Kid : N.Kids)
      Stack.push_back(Kid);
  }
}

void TrManager::collectArcs(Tr T, const CharSet &Guard,
                            std::vector<TrArc> &Out) const {
  const TrNode &N = node(T);
  switch (N.Kind) {
  case TrKind::Leaf:
    if (N.LeafRe != M.empty())
      Out.push_back({Guard, N.LeafRe});
    return;
  case TrKind::Ite: {
    CharSet GuardT = Guard.intersectWith(N.Cond);
    CharSet GuardF = Guard.minus(N.Cond);
    if (!GuardT.isEmpty())
      collectArcs(N.Kids[0], GuardT, Out);
    if (!GuardF.isEmpty())
      collectArcs(N.Kids[1], GuardF, Out);
    return;
  }
  case TrKind::Union:
    for (Tr Kid : N.Kids)
      collectArcs(Kid, Guard, Out);
    return;
  case TrKind::Inter:
    sbd_unreachable("arcs() requires a DNF transition regex");
  }
  sbd_unreachable("covered switch");
}

std::vector<TrArc> TrManager::arcs(Tr T) const {
  std::vector<TrArc> Raw;
  collectArcs(T, CharSet::full(), Raw);
  // Merge arcs by target, preserving first-appearance order.
  std::vector<TrArc> Out;
  FlatMap64 Index; // Target.Id -> index in Out
  for (TrArc &A : Raw) {
    if (const uint32_t *At = Index.find(A.Target.Id)) {
      Out[*At].Guard = Out[*At].Guard.unionWith(A.Guard);
    } else {
      Index.insert(A.Target.Id, static_cast<uint32_t>(Out.size()));
      Out.push_back(std::move(A));
    }
  }
  SBD_OBS_ADD(ArcsEnumerated, Out.size());
  return Out;
}

void TrManager::collectGuards(Tr T, std::vector<CharSet> &Out) const {
  std::set<CharSet> Seen(Out.begin(), Out.end());
  std::vector<Tr> Stack = {T};
  std::set<uint32_t> Visited;
  while (!Stack.empty()) {
    Tr Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur.Id).second)
      continue;
    const TrNode &N = node(Cur);
    if (N.Kind == TrKind::Ite && Seen.insert(N.Cond).second)
      Out.push_back(N.Cond);
    for (Tr Kid : N.Kids)
      Stack.push_back(Kid);
  }
}

std::string TrManager::toString(Tr T) const {
  const TrNode &N = node(T);
  switch (N.Kind) {
  case TrKind::Leaf:
    return M.toString(N.LeafRe);
  case TrKind::Ite:
    return "if(" + N.Cond.str() + ", " + toString(N.Kids[0]) + ", " +
           toString(N.Kids[1]) + ")";
  case TrKind::Union:
  case TrKind::Inter: {
    std::string Sep = N.Kind == TrKind::Union ? " | " : " & ";
    std::string Out = "(";
    for (size_t I = 0; I != N.Kids.size(); ++I) {
      if (I)
        Out += Sep;
      Out += toString(N.Kids[I]);
    }
    Out += ')';
    return Out;
  }
  }
  sbd_unreachable("covered switch");
}
