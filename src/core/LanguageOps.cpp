//===- core/LanguageOps.cpp - Language-level operations ----------------------===//

#include "core/LanguageOps.h"

#include "support/Debug.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <unordered_map>

using namespace sbd;

Re sbd::reverseRegex(RegexManager &M, Re R) {
  // Copy: recursive calls may grow the arena.
  RegexNode N = M.node(R);
  switch (N.Kind) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
  case RegexKind::Pred:
    return R;
  case RegexKind::Concat: {
    Re A = reverseRegex(M, N.Kids[0]);
    Re B = reverseRegex(M, N.Kids[1]);
    return M.concat(B, A);
  }
  case RegexKind::Star:
    return M.star(reverseRegex(M, N.Kids[0]));
  case RegexKind::Loop:
    return M.loop(reverseRegex(M, N.Kids[0]), N.LoopMin, N.LoopMax);
  case RegexKind::Union:
  case RegexKind::Inter: {
    std::vector<Re> Kids = N.Kids;
    for (Re &Kid : Kids)
      Kid = reverseRegex(M, Kid);
    return N.Kind == RegexKind::Union ? M.unionList(std::move(Kids))
                                      : M.interList(std::move(Kids));
  }
  case RegexKind::Compl:
    // Reversal is a bijection on Σ*, so it commutes with complement.
    return M.complement(reverseRegex(M, N.Kids[0]));
  }
  sbd_unreachable("covered switch");
}

std::optional<std::pair<size_t, size_t>>
sbd::findFirstMatch(DerivativeEngine &Engine, Re R,
                    const std::vector<uint32_t> &Word) {
  RegexManager &M = Engine.regexManager();

  // Pass 1 (forward): run `.*R`; the first position where the running
  // derivative is nullable is the earliest end of any match.
  Re Seek = M.concat(M.top(), R);
  std::optional<size_t> End;
  if (M.nullable(Seek)) {
    End = 0;
  } else {
    Re Cur = Seek;
    for (size_t I = 0; I != Word.size(); ++I) {
      Cur = Engine.brzozowski(Cur, Word[I]);
      if (M.nullable(Cur)) {
        End = I + 1;
        break;
      }
      if (Cur == M.empty())
        return std::nullopt; // (possible only if L(R) = ∅)
    }
  }
  if (!End)
    return std::nullopt;

  // Pass 2 (backward): scan reverse(R) over Word[End-1], Word[End-2], …;
  // every nullable point marks a valid start; keep the smallest.
  Re Rev = reverseRegex(M, R);
  size_t Start = *End; // matches ending at End with empty span
  if (!M.nullable(Rev) && *End == 0)
    return std::nullopt; // defensive; nullable(R) == nullable(Rev)
  Re Cur = Rev;
  for (size_t I = *End; I-- > 0;) {
    Cur = Engine.brzozowski(Cur, Word[I]);
    if (Cur == M.empty())
      break;
    if (M.nullable(Cur))
      Start = I;
  }
  if (Start == *End && !M.nullable(R))
    return std::nullopt; // defensive; pass 1 guarantees a start exists
  return std::make_pair(Start, *End);
}

namespace {

uint64_t addSat(uint64_t A, uint64_t B) {
  uint64_t S = A + B;
  return S < A ? UINT64_MAX : S;
}

uint64_t mulSat(uint64_t A, uint64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > UINT64_MAX / B)
    return UINT64_MAX;
  return A * B;
}

} // namespace

std::optional<uint64_t> sbd::countWordsOfLength(DerivativeEngine &Engine,
                                                Re R, size_t Len,
                                                size_t MaxStates) {
  RegexManager &M = Engine.regexManager();
  TrManager &T = Engine.trManager();

  // Deterministic per-state transition summary: elementary guard blocks
  // (arcs from union branches may overlap, so per-block targets are merged
  // through the regex union — otherwise words would be double counted).
  struct DState {
    bool Accepting;
    bool Expanded = false;
    std::vector<std::pair<uint64_t, uint32_t>> Out; // (block size, target)
  };
  std::vector<DState> States;
  std::vector<Re> StateRe;
  std::unordered_map<uint32_t, uint32_t> Index;

  auto intern = [&](Re State) -> std::optional<uint32_t> {
    auto It = Index.find(State.Id);
    if (It != Index.end())
      return It->second;
    if (MaxStates && States.size() >= MaxStates)
      return std::nullopt;
    uint32_t Idx = static_cast<uint32_t>(States.size());
    States.push_back({M.nullable(State), false, {}});
    StateRe.push_back(State);
    Index.emplace(State.Id, Idx);
    return Idx;
  };

  std::function<std::optional<bool>(uint32_t)> Expand =
      [&](uint32_t Idx) -> std::optional<bool> {
    if (States[Idx].Expanded)
      return true;
    std::vector<TrArc> Arcs = T.arcs(Engine.derivativeDnf(StateRe[Idx]));
    std::vector<uint32_t> Bounds;
    for (const TrArc &A : Arcs)
      for (const CharRange &Rg : A.Guard.ranges()) {
        Bounds.push_back(Rg.Lo);
        if (Rg.Hi < MaxCodePoint)
          Bounds.push_back(Rg.Hi + 1);
      }
    std::sort(Bounds.begin(), Bounds.end());
    Bounds.erase(std::unique(Bounds.begin(), Bounds.end()), Bounds.end());
    std::vector<std::pair<uint64_t, uint32_t>> Out;
    for (size_t I = 0; I != Bounds.size(); ++I) {
      uint32_t Lo = Bounds[I];
      uint32_t Hi =
          (I + 1 < Bounds.size()) ? Bounds[I + 1] - 1 : MaxCodePoint;
      std::vector<Re> Targets;
      for (const TrArc &A : Arcs)
        if (A.Guard.contains(Lo))
          Targets.push_back(A.Target);
      if (Targets.empty())
        continue;
      Re Next = M.unionList(std::move(Targets));
      if (Next == M.empty())
        continue;
      auto To = intern(Next);
      if (!To)
        return std::nullopt;
      Out.push_back({static_cast<uint64_t>(Hi) - Lo + 1, *To});
    }
    States[Idx].Out = std::move(Out);
    States[Idx].Expanded = true;
    return true;
  };

  auto Init = intern(R);
  if (!Init)
    return std::nullopt;

  // Close the deterministic state space first (expansion appends states;
  // the loop naturally covers them), then run the DP over the fixed set.
  for (uint32_t Q = 0; Q != States.size(); ++Q)
    if (!Expand(Q).has_value())
      return std::nullopt;

  std::vector<uint64_t> Prev(States.size()), Cur(States.size());
  for (uint32_t Q = 0; Q != States.size(); ++Q)
    Prev[Q] = States[Q].Accepting ? 1 : 0; // count(q, 0)
  for (size_t N = 1; N <= Len; ++N) {
    for (uint32_t Q = 0; Q != States.size(); ++Q) {
      uint64_t Total = 0;
      for (const auto &[BlockSize, To] : States[Q].Out)
        Total = addSat(Total, mulSat(BlockSize, Prev[To]));
      Cur[Q] = Total;
    }
    std::swap(Prev, Cur);
  }
  return Prev[*Init];
}

std::vector<std::vector<uint32_t>>
sbd::enumerateLanguage(DerivativeEngine &Engine, Re R, size_t MaxWords,
                       size_t MaxStates) {
  RegexManager &M = Engine.regexManager();
  TrManager &T = Engine.trManager();
  if (MaxStates == 0)
    MaxStates = 10 * MaxWords + 100;

  std::vector<std::vector<uint32_t>> Out;
  if (MaxWords == 0)
    return Out;

  // Breadth-first over (regex, word-so-far) configurations. Words are
  // built from sampled guard representatives; distinct configurations can
  // share a regex (different spellings), so the key is the pair.
  struct Config {
    Re State;
    std::vector<uint32_t> Word;
  };
  std::deque<Config> Queue;
  Queue.push_back({R, {}});
  size_t Explored = 0;

  while (!Queue.empty() && Out.size() < MaxWords && Explored < MaxStates) {
    Config Cur = std::move(Queue.front());
    Queue.pop_front();
    ++Explored;
    if (M.nullable(Cur.State)) {
      bool Fresh = true;
      for (const auto &W : Out)
        if (W == Cur.Word) {
          Fresh = false;
          break;
        }
      if (Fresh)
        Out.push_back(Cur.Word);
      if (Out.size() >= MaxWords)
        break;
    }
    for (const TrArc &Arc : T.arcs(Engine.derivativeDnf(Cur.State))) {
      // Small guards are enumerated exhaustively so finite languages come
      // out complete; large classes contribute one readable representative.
      std::vector<uint32_t> Chars;
      if (Arc.Guard.count() <= 4) {
        for (const CharRange &Rg : Arc.Guard.ranges())
          for (uint32_t C = Rg.Lo; C <= Rg.Hi; ++C)
            Chars.push_back(C);
      } else {
        auto Ch = Arc.Guard.sample();
        assert(Ch && "arc guards are satisfiable");
        Chars.push_back(*Ch);
      }
      for (uint32_t Ch : Chars) {
        Config Next;
        Next.State = Arc.Target;
        Next.Word = Cur.Word;
        Next.Word.push_back(Ch);
        Queue.push_back(std::move(Next));
      }
    }
  }
  return Out;
}
