//===- core/CachedMatcher.h - SRM-style derivative matcher (§8.5) -----------===//
///
/// \file
/// A compiled matcher in the spirit of the Symbolic Regex Matcher (SRM,
/// Veanes et al., TACAS'19) the paper discusses in Section 8.5: matching
/// repeatedly against one regex by walking derivative states with cached
/// transitions. Where SRM mintermizes the regex's predicates up front, this
/// matcher reuses the *lazy* transition regexes: each state materializes its
/// δdnf arcs once, on first visit, and per-character lookups binary-search
/// the state's guard partition — no global minterm computation ever happens,
/// matching the paper's argument for conditionals.
///
/// States are discovered on demand, so matching short inputs against a huge
/// regex never builds the full state space (the same laziness the solver
/// relies on).
///
//===----------------------------------------------------------------------===//

#ifndef SBD_CORE_CACHEDMATCHER_H
#define SBD_CORE_CACHEDMATCHER_H

#include "core/Derivatives.h"

#include <string>
#include <vector>

namespace sbd {

/// Repeated-use matcher for one extended regex.
class CachedMatcher {
public:
  CachedMatcher(DerivativeEngine &Engine, Re Pattern);

  /// Does the pattern accept the code-point word?
  bool matches(const std::vector<uint32_t> &Word);
  /// Does the pattern accept the UTF-8 string?
  bool matches(const std::string &Utf8);

  /// Number of derivative states materialized so far.
  size_t statesMaterialized() const { return States.size(); }
  /// Total cached transition-table entries.
  size_t cachedArcs() const { return CachedArcCount; }

private:
  /// A materialized state: the regex, whether it accepts ε, and its
  /// outgoing partition as parallel arrays sorted by guard for lookup.
  struct State {
    Re Regex;
    bool Accepting;
    bool Expanded = false;
    /// Sorted flattened guard ranges: (Lo, Hi, TargetState). Characters
    /// not covered by any range go to the dead sink.
    struct Range {
      uint32_t Lo;
      uint32_t Hi;
      uint32_t Target;
    };
    std::vector<Range> Ranges;
  };

  uint32_t internState(Re R);
  void expand(uint32_t State);
  /// Next state on Ch; UINT32_MAX encodes the dead sink.
  uint32_t step(uint32_t State, uint32_t Ch);

  /// Width of the dense per-state transition block (the ASCII sub-alphabet,
  /// by far the hottest minterm region in practice).
  static constexpr uint32_t DenseBlock = 128;

  DerivativeEngine &Engine;
  RegexManager &M;
  TrManager &T;
  std::vector<State> States;
  FlatMap64 StateIndex; // Re.Id -> state
  /// Flat transition table keyed by (state, character-block): row
  /// `State * DenseBlock` holds the successor for each ASCII character,
  /// filled when the state is expanded. Non-ASCII characters fall back to
  /// binary search over the state's guard partition.
  std::vector<uint32_t> DenseTable;
  uint32_t InitialState;
  size_t CachedArcCount = 0;
};

} // namespace sbd

#endif // SBD_CORE_CACHEDMATCHER_H
