//===- core/CachedMatcher.h - Lazy bounded DFA over minterm ids (§8.5) ------===//
///
/// \file
/// A compiled matcher in the spirit of the Symbolic Regex Matcher (SRM,
/// Veanes et al., TACAS'19) the paper discusses in Section 8.5, upgraded to
/// the RE# recipe: the pattern's predicates are mintermized *once* into an
/// `AlphabetCompressor`, and each derivative state lazily materializes a
/// dense successor row indexed by minterm id. Stepping is then
///
///   next = Rows[state * numClasses + classOf(cp)]
///
/// — one bytemap lookup and one row load per character, no CharSet walk.
/// Soundness rests on the derivative-closure property (Theorem 7.1 flavor):
/// every guard reachable by repeated δ from the pattern is a Boolean
/// combination of the pattern's own predicates ΨR, so minterms of ΨR are
/// uniform for *all* guards the matcher will ever see and one probe of a
/// class representative decides the whole class.
///
/// The state cache is **bounded** (RE2-style): at most `Options.MaxStates`
/// derivative states are live at once. When the cap is hit, the
/// least-recently-touched half of the unpinned states is evicted, survivors
/// whose rows reference a victim are lazily re-expanded, and — if even
/// eviction cannot make room (cap smaller than one row's fan-out) — the
/// matcher falls back to direct derivative stepping for the rest of the
/// input, so memory stays within the cap on adversarial inputs while
/// results never change. Evictions and expansions are counted in the
/// `sbd::obs` registry (`dfa_states_built`, `dfa_evictions`).
///
/// States are still discovered on demand, so matching short inputs against a
/// huge regex never builds the full state space (the same laziness the
/// solver relies on).
///
//===----------------------------------------------------------------------===//

#ifndef SBD_CORE_CACHEDMATCHER_H
#define SBD_CORE_CACHEDMATCHER_H

#include "charset/AlphabetCompressor.h"
#include "core/Derivatives.h"

#include <memory>
#include <string>
#include <vector>

namespace sbd {

class CompiledDfa;

/// Repeated-use matcher for one extended regex.
class CachedMatcher {
public:
  struct Options {
    /// Cap on simultaneously live derivative states. Memory for the
    /// transition structure is bounded by MaxStates * numClasses * 4 bytes
    /// plus one State record per slot.
    size_t MaxStates = 1024;
    /// Automatic hot-pattern promotion: once this many characters have
    /// been fed through the matcher (cumulative across matches() calls),
    /// the next call attempts to freeze the full derivative closure into a
    /// CompiledDfa (compile/CompiledDfa.h) and transparently serves from
    /// the packed table — no eviction, no per-row epoch checks. 0 disables
    /// promotion. A failed attempt (closure or table over budget) is
    /// counted in `compiled_fallbacks`, never retried, and the matcher
    /// stays on the lazy bounded path, so results are identical either
    /// way.
    size_t PromoteAfterChars = 1 << 12;
    /// Closure cap for the promotion compile (independent of MaxStates:
    /// the frozen table is immutable, so it is not bounded by the lazy
    /// cache's live-state cap).
    size_t CompileMaxStates = 4096;
    /// Byte budget for the packed transition table.
    size_t CompileMaxTableBytes = 1 << 20;
  };

  CachedMatcher(DerivativeEngine &Eng, Re Pattern)
      : CachedMatcher(Eng, Pattern, Options()) {}
  CachedMatcher(DerivativeEngine &Eng, Re Pattern, Options Opts);
  ~CachedMatcher(); // out-of-line: CompiledDfa is incomplete here

  /// Does the pattern accept the code-point word?
  bool matches(const std::vector<uint32_t> &Word);
  /// Does the pattern accept the UTF-8 string? Decodes incrementally (no
  /// intermediate code-point buffer); ASCII bytes take a one-load fast path.
  bool matches(const std::string &Utf8);

  /// Number of derivative states live in the cache.
  size_t statesMaterialized() const { return States.size() - FreeSlots.size(); }
  /// Total cached transition-row entries (non-dead, over expanded states).
  size_t cachedArcs() const;
  /// States evicted by the bounded cache so far.
  size_t evictions() const { return Evicted; }
  /// Characters matched via the uncached derivative fallback (cap pressure).
  size_t fallbackSteps() const { return FallbackSteps; }

  /// The query-scoped minterm partition driving the dense rows.
  const AlphabetCompressor &compressor() const { return Compressor; }

  /// True once the matcher serves from a compiled table.
  bool promoted() const { return Compiled != nullptr; }
  /// The promoted table, or nullptr while (still) on the lazy path.
  const CompiledDfa *compiled() const { return Compiled.get(); }
  /// Cumulative characters fed through matches() (the promotion clock).
  size_t charsFed() const { return CharsFed; }

  /// Re-derives every expanded row through the uncompressed δdnf path
  /// (`TrManager::apply` on each class representative — a different
  /// evaluation route than the arc enumeration that built the row) and
  /// returns the number of mismatching entries. Zero on a healthy cache.
  /// Always compiled (the negative tests need it in every build); the
  /// per-expansion hook that calls it is gated behind SBD_AUDIT.
  size_t auditRows();

  /// Test backdoor: overwrite one row entry of an expanded state, to prove
  /// auditRows() detects corruption. No-op if the slot is not expanded.
  void corruptRowForTest(size_t Slot, uint16_t Cls, uint32_t Value);

private:
  /// Successor sentinel: no transition (the dead sink).
  static constexpr uint32_t DeadState = 0xFFFFFFFFu;
  /// internState() result when the cache cannot make room (cap exhausted by
  /// pinned states): the caller must fall back to uncached stepping.
  static constexpr uint32_t NoSlot = 0xFFFFFFFEu;

  /// A cached derivative state. Slot-addressed; dead slots are recycled
  /// through FreeSlots.
  struct State {
    Re Regex{0};
    bool Accepting = false;
    bool Expanded = false;
    bool Live = false;
    uint64_t LastTouch = 0; ///< LRU clock stamp
  };

  void touch(uint32_t Slot) { States[Slot].LastTouch = ++Clock; }
  /// Finds or allocates the slot for \p R, evicting if needed. \p Pin0/Pin1
  /// are slots that must survive any eviction (the expanding state and the
  /// initial state); pass DeadState for unused pins.
  uint32_t internState(Re R, uint32_t Pin0, uint32_t Pin1);
  /// Evicts the least-recently-touched half of the unpinned live states.
  /// Returns false when nothing could be evicted (everything pinned).
  bool evict(uint32_t Pin0, uint32_t Pin1);
  /// Fills the slot's dense row. Returns false when the cache is too small
  /// to hold the row's targets (caller falls back; slot stays unexpanded).
  bool expand(uint32_t Slot);
  /// Next slot on minterm class \p Cls: DeadState for the sink, NoSlot when
  /// the row cannot be materialized under the cap.
  uint32_t step(uint32_t Slot, uint16_t Cls);
  /// Mismatch count for one slot's row (see auditRows).
  size_t auditRow(uint32_t Slot);
  /// SBD_AUDIT expansion hook: audits the fresh row, publishes violations.
  void auditRowHook(uint32_t Slot);

  /// One step of the shared match loop. Updates slot-or-regex mode state;
  /// returns false when the match is dead.
  bool feed(uint32_t &Slot, Re &Cur, uint32_t Cp);
  bool accepted(uint32_t Slot, Re Cur);

  /// Advances the promotion clock by \p Chars and, when the threshold is
  /// crossed, attempts the compile. Returns true when the compiled table is
  /// available (the caller serves from it).
  bool maybePromote(size_t Chars);

  DerivativeEngine &Engine;
  RegexManager &M;
  TrManager &T;
  AlphabetCompressor Compressor;
  size_t NumClasses;
  size_t MaxStates;

  std::vector<State> States;
  std::vector<uint32_t> FreeSlots;
  /// Flat row storage: Rows[Slot * NumClasses + Cls]. Rows of unexpanded
  /// slots hold stale data and must not be read.
  std::vector<uint32_t> Rows;
  FlatMap64 StateIndex; ///< Re.Id -> live slot
  uint32_t InitialState;
  uint64_t Clock = 0;
  /// Bumped on every eviction batch; expand() uses it to detect that a
  /// target it already interned was evicted mid-row and retries.
  uint64_t EvictEpoch = 0;
  size_t Evicted = 0;
  size_t FallbackSteps = 0;

  // Hot-pattern promotion (Options::PromoteAfterChars).
  size_t PromoteAfterChars;
  size_t CompileMaxStates;
  size_t CompileMaxTableBytes;
  size_t CharsFed = 0;
  bool PromotionFailed = false;
  std::unique_ptr<CompiledDfa> Compiled;
};

} // namespace sbd

#endif // SBD_CORE_CACHEDMATCHER_H
