//===- core/TransitionRegex.h - Transition regexes (Section 4) -------------===//
///
/// \file
/// Transition regexes TR — the paper's key device for making derivatives of
/// *symbolic* extended regexes well defined. A transition regex denotes a
/// function Σ → ERE; the grammar is
///
///   TR ::= ERE | if(φ, TR, TR) | TR "|" TR | TR "&" TR | ~TR
///
/// We represent TR in negation normal form by construction: the negation
/// constructor immediately applies the dual (Lemma 4.2: ~τ ≡ τ̄), pushing
/// complement into the ERE leaves. Consequently interned nodes have only
/// four kinds (Leaf, Ite, Union, Inter) and the DNF transformation only has
/// to eliminate Inter.
///
/// The *disjunctive normal form* used by the solver (δdnf in Section 5) is
/// the shape with conditionals and unions outermost and all `&`/`~` pushed
/// into ERE leaves; `TrManager::dnf` computes it with the lift rules of
/// Section 4.1, pruning branches whose accumulated path condition is
/// unsatisfiable ("clean" transition regexes).
///
//===----------------------------------------------------------------------===//

#ifndef SBD_CORE_TRANSITIONREGEX_H
#define SBD_CORE_TRANSITIONREGEX_H

#include "re/Regex.h"

#include <string>
#include <vector>

namespace sbd {

/// Node kinds of (NNF) transition regexes.
enum class TrKind : uint8_t {
  Leaf,  ///< an ERE (constant function)
  Ite,   ///< if(φ, then, else)
  Union, ///< t1 | ... | tk, k >= 2
  Inter, ///< t1 & ... & tk, k >= 2
};

/// An interned transition-regex handle (valid with its TrManager).
struct Tr {
  uint32_t Id = 0;

  friend bool operator==(Tr A, Tr B) { return A.Id == B.Id; }
  friend bool operator!=(Tr A, Tr B) { return A.Id != B.Id; }
  friend bool operator<(Tr A, Tr B) { return A.Id < B.Id; }
};

/// Interned storage for one transition-regex node.
struct TrNode {
  TrKind Kind;
  Re LeafRe{};          ///< Leaf only
  CharSet Cond;         ///< Ite only
  std::vector<Tr> Kids; ///< Ite: {then, else}; Union/Inter: n-ary
  uint64_t Hash = 0;    ///< precomputed structural hash (interning key)
};

/// One edge of a DNF transition regex: reading a character in [[Guard]] can
/// move to Target. Guards of arcs from different union branches may overlap
/// (the structure is alternating/nondeterministic); guards along one
/// conditional path are disjoint by construction.
struct TrArc {
  CharSet Guard;
  Re Target;
};

/// Arena + algebra for transition regexes.
class TrManager {
public:
  explicit TrManager(RegexManager &M);

  RegexManager &regexManager() { return M; }
  const RegexManager &regexManager() const { return M; }
  const TrNode &node(Tr T) const { return Nodes[T.Id]; }
  TrKind kind(Tr T) const { return Nodes[T.Id].Kind; }
  size_t numNodes() const { return Nodes.size(); }

  /// Pre-sizes the node arena and interning table.
  void reserve(size_t NumNodes);
  /// Drops the negate/DNF memo slots (the interned nodes stay — handles
  /// remain valid). Lets long-running processes bound memo growth.
  void clearCaches();
  /// Interning/memo counters.
  const CacheStats &stats() const { return Stats; }
  void resetStats() { Stats.reset(); }

  /// Test-only backdoor for the audit negative tests (tests/AuditTest.cpp):
  /// mutable access to interned storage so a test can corrupt an invariant
  /// and prove sbd::audit detects it. Never call outside audit tests.
  TrNode &mutableNodeForAudit(Tr T) { return Nodes[T.Id]; }

  /// --- Constructors (normalizing) ------------------------------------------

  /// Embeds an ERE as a constant transition regex.
  Tr leaf(Re R);
  /// The constant ⊥ function (unit of |, absorbing for &).
  Tr bot() const { return BotTr; }
  /// The constant .* function (absorbing for |, unit of &).
  Tr topLeaf() const { return TopTr; }

  /// if(Cond, T, F); simplifies trivial/equal branches and collapses
  /// directly nested conditionals on the same predicate.
  Tr ite(const CharSet &Cond, Tr T, Tr F);

  /// τ1 | ... | τk. Flattens, drops ⊥, absorbs .*, merges all ERE leaves
  /// into a single leaf through the regex algebra.
  Tr union_(std::vector<Tr> Ts);
  Tr union2(Tr A, Tr B) { return union_({A, B}); }

  /// τ1 & ... & τk (dual of union_).
  Tr inter(std::vector<Tr> Ts);
  Tr inter2(Tr A, Tr B) { return inter({A, B}); }

  /// ~τ via the negation dual τ̄ (Lemma 4.2); the result is again in NNF.
  Tr negate(Tr T);

  /// τ · R — concatenation of a regex on the right (Section 4). Invokes the
  /// lift rules when τ contains `&` above a conditional.
  Tr concatRe(Tr T, Re R);

  /// --- Semantics ------------------------------------------------------------

  /// τ(a): instantiates the function at a concrete character.
  Re apply(Tr T, uint32_t Ch) const;

  /// --- Normal form ----------------------------------------------------------

  /// Computes the solver's normal form: conditionals/unions outermost, no
  /// Inter nodes, unsatisfiable branches pruned (lift rules, Section 4.1).
  Tr dnf(Tr T);

  /// True when T contains no Inter node (i.e. the ite/or/ere propagation
  /// rules of Fig. 3a can consume it directly).
  bool isDnf(Tr T) const;

  /// --- Structure queries ------------------------------------------------------

  /// Appends the distinct ERE leaves of T to \p Out. When \p IncludeTrivial
  /// is false, skips the trivial states ⊥ and .* (this is Q(τ) of Section 7).
  void collectLeaves(Tr T, std::vector<Re> &Out,
                     bool IncludeTrivial = false) const;

  /// Enumerates the arcs of a DNF transition regex: all (guard, target)
  /// pairs with satisfiable guards and non-⊥ targets. Arcs with the same
  /// target are merged by guard union.
  std::vector<TrArc> arcs(Tr T) const;

  /// Appends the distinct conditional guards occurring in T (the set
  /// Guards(∆(q)) used for local mintermization in Section 8.3).
  void collectGuards(Tr T, std::vector<CharSet> &Out) const;

  /// Renders T in the paper's notation, e.g. `if(φ, R2&~(1.*), R2)`.
  std::string toString(Tr T) const;

private:
  Tr intern(TrNode Node);

  /// DNF worker: rewrites T under the (satisfiable) path condition \p Path.
  Tr dnfUnder(Tr T, const CharSet &Path);
  /// Distributes an ERE leaf conjunct over a DNF transition regex.
  Tr leafInterDnf(Re A, Tr B);
  /// Computes DNF(A & B) where A is already DNF, under \p Path.
  Tr interDnf(Tr A, Tr B, const CharSet &Path);

  void collectArcs(Tr T, const CharSet &Guard,
                   std::vector<TrArc> &Out) const;

  /// Tombstone for the dense id-indexed memo slots.
  static constexpr uint32_t MissingId = 0xFFFFFFFFu;

  RegexManager &M;
  std::vector<TrNode> Nodes;
  InternTable ConsTable;
  /// Inline memo slots indexed by Tr id; ids are dense, so a flat vector
  /// with a tombstone beats a hash map on every lookup.
  std::vector<uint32_t> NegateMemo;
  std::vector<uint32_t> DnfMemo;
  CacheStats Stats;
  Tr BotTr, TopTr;
};

} // namespace sbd

#endif // SBD_CORE_TRANSITIONREGEX_H
