//===- core/CachedMatcher.cpp - SRM-style derivative matcher -----------------===//
// sbd-lint: hot-path

#include "core/CachedMatcher.h"

#include "support/Unicode.h"

#include <algorithm>

using namespace sbd;

CachedMatcher::CachedMatcher(DerivativeEngine &Eng, Re Pattern)
    : Engine(Eng), M(Eng.regexManager()), T(Eng.trManager()) {
  InitialState = internState(Pattern);
}

uint32_t CachedMatcher::internState(Re R) {
  if (const uint32_t *Hit = StateIndex.find(R.Id))
    return *Hit;
  uint32_t Idx = static_cast<uint32_t>(States.size());
  State S;
  S.Regex = R;
  S.Accepting = M.nullable(R);
  States.push_back(std::move(S));
  StateIndex.insert(R.Id, Idx);
  return Idx;
}

void CachedMatcher::expand(uint32_t StateIdx) {
  // The transition structure of a state is the arc partition of its
  // δdnf — computed once; overlapping union-branch guards are resolved by
  // taking the regex union of all matching targets per elementary range.
  Re R = States[StateIdx].Regex;
  std::vector<TrArc> Arcs = T.arcs(Engine.derivativeDnf(R));

  // Build elementary boundaries over all guards, then one target per
  // block (arcs can overlap across union branches).
  std::vector<uint32_t> Bounds;
  for (const TrArc &A : Arcs)
    for (const CharRange &Rg : A.Guard.ranges()) {
      Bounds.push_back(Rg.Lo);
      if (Rg.Hi < MaxCodePoint)
        Bounds.push_back(Rg.Hi + 1);
    }
  std::sort(Bounds.begin(), Bounds.end());
  Bounds.erase(std::unique(Bounds.begin(), Bounds.end()), Bounds.end());

  std::vector<State::Range> Ranges;
  for (size_t I = 0; I != Bounds.size(); ++I) {
    uint32_t Lo = Bounds[I];
    uint32_t Hi = (I + 1 < Bounds.size()) ? Bounds[I + 1] - 1 : MaxCodePoint;
    std::vector<Re> Targets;
    for (const TrArc &A : Arcs)
      if (A.Guard.contains(Lo))
        Targets.push_back(A.Target);
    if (Targets.empty())
      continue; // dead sink, left implicit
    Re Next = M.unionList(std::move(Targets));
    if (Next == M.empty())
      continue;
    uint32_t Target = internState(Next);
    // Coalesce with the previous range when adjacent and same target.
    if (!Ranges.empty() && Ranges.back().Target == Target &&
        Ranges.back().Hi + 1 == Lo)
      Ranges.back().Hi = Hi;
    else
      Ranges.push_back({Lo, Hi, Target});
  }
  CachedArcCount += Ranges.size();
  States[StateIdx].Ranges = std::move(Ranges);
  States[StateIdx].Expanded = true;

  // Fill the state's dense block: one direct-indexed successor per ASCII
  // character. States expand in visit order, so grow the flat table to
  // cover this row (rows of never-expanded states stay all-dead).
  size_t RowBase = static_cast<size_t>(StateIdx) * DenseBlock;
  if (DenseTable.size() < RowBase + DenseBlock)
    DenseTable.resize(RowBase + DenseBlock, UINT32_MAX);
  for (const State::Range &Rg : States[StateIdx].Ranges) {
    if (Rg.Lo >= DenseBlock)
      break; // ranges are sorted; nothing below the block boundary follows
    uint32_t Hi = std::min(Rg.Hi, DenseBlock - 1);
    for (uint32_t Ch = Rg.Lo; Ch <= Hi; ++Ch)
      DenseTable[RowBase + Ch] = Rg.Target;
  }
}

uint32_t CachedMatcher::step(uint32_t StateIdx, uint32_t Ch) {
  if (!States[StateIdx].Expanded)
    expand(StateIdx);
  if (Ch < DenseBlock)
    return DenseTable[static_cast<size_t>(StateIdx) * DenseBlock + Ch];
  const auto &Ranges = States[StateIdx].Ranges;
  // Binary search the sorted disjoint ranges.
  size_t Lo = 0, Hi = Ranges.size();
  while (Lo < Hi) {
    size_t Mid = (Lo + Hi) / 2;
    if (Ch < Ranges[Mid].Lo)
      Hi = Mid;
    else if (Ch > Ranges[Mid].Hi)
      Lo = Mid + 1;
    else
      return Ranges[Mid].Target;
  }
  return UINT32_MAX; // dead sink
}

bool CachedMatcher::matches(const std::vector<uint32_t> &Word) {
  uint32_t Cur = InitialState;
  for (uint32_t Ch : Word) {
    Cur = step(Cur, Ch);
    if (Cur == UINT32_MAX)
      return false;
  }
  return States[Cur].Accepting;
}

bool CachedMatcher::matches(const std::string &Utf8) {
  return matches(fromUtf8(Utf8));
}
