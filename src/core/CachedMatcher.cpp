//===- core/CachedMatcher.cpp - Lazy bounded DFA over minterm ids -----------===//
// sbd-lint: hot-path

#include "core/CachedMatcher.h"

#include "analysis/AuditHooks.h"
#include "compile/CompiledDfa.h"
#include "support/Histogram.h"
#include "support/Stopwatch.h"
#include "support/Unicode.h"

#include <algorithm>

using namespace sbd;

CachedMatcher::CachedMatcher(DerivativeEngine &Eng, Re Pattern, Options Opts)
    : Engine(Eng), M(Eng.regexManager()), T(Eng.trManager()),
      Compressor(Eng.regexManager().collectPredicates(Pattern)),
      NumClasses(Compressor.numClasses()),
      MaxStates(Opts.MaxStates ? Opts.MaxStates : 1),
      PromoteAfterChars(Opts.PromoteAfterChars),
      CompileMaxStates(Opts.CompileMaxStates),
      CompileMaxTableBytes(Opts.CompileMaxTableBytes) {
  // The cache starts empty, so the initial state always gets a slot.
  InitialState = internState(Pattern, DeadState, DeadState);
}

CachedMatcher::~CachedMatcher() = default;

bool CachedMatcher::maybePromote(size_t Chars) {
  if (Compiled)
    return true;
  CharsFed += Chars;
  if (!PromoteAfterChars || PromotionFailed || CharsFed < PromoteAfterChars)
    return false;
  CompiledDfaOptions CO;
  CO.MaxStates = CompileMaxStates;
  CO.MaxTableBytes = CompileMaxTableBytes;
  std::optional<CompiledDfa> C =
      CompiledDfa::compile(Engine, States[InitialState].Regex, CO);
  if (!C) {
    // Over budget: never retry (the closure will not shrink), keep serving
    // from the bounded lazy cache. Results are unchanged either way.
    PromotionFailed = true;
    SBD_OBS_INC(CompiledFallbacks);
    return false;
  }
  Compiled = std::make_unique<CompiledDfa>(std::move(*C));
  SBD_OBS_INC(CompiledPromotions);
  return true;
}

uint32_t CachedMatcher::internState(Re R, uint32_t Pin0, uint32_t Pin1) {
  if (const uint32_t *Hit = StateIndex.find(R.Id)) {
    touch(*Hit);
    return *Hit;
  }
  if (FreeSlots.empty() && States.size() >= MaxStates)
    if (!evict(Pin0, Pin1))
      return NoSlot;
  uint32_t Slot;
  if (!FreeSlots.empty()) {
    Slot = FreeSlots.back();
    FreeSlots.pop_back();
    std::fill_n(Rows.begin() +
                    static_cast<ptrdiff_t>(Slot * NumClasses),
                static_cast<ptrdiff_t>(NumClasses), DeadState);
  } else {
    Slot = static_cast<uint32_t>(States.size());
    States.push_back(State{});
    Rows.resize(States.size() * NumClasses, DeadState);
  }
  State &S = States[Slot];
  S.Regex = R;
  S.Accepting = M.nullable(R);
  S.Expanded = false;
  S.Live = true;
  StateIndex.insert(R.Id, Slot);
  touch(Slot);
  return Slot;
}

bool CachedMatcher::evict(uint32_t Pin0, uint32_t Pin1) {
  // Batch LRU-ish eviction: drop the least-recently-touched half of the
  // unpinned live states (amortizes the index rebuild over many frees, the
  // RE2 cache-flush argument). Pinned slots — the state being expanded, the
  // match loop's current state, and the initial state — always survive.
  std::vector<uint32_t> Cands;
  Cands.reserve(States.size());
  for (uint32_t I = 0; I != States.size(); ++I)
    if (States[I].Live && I != Pin0 && I != Pin1 && I != InitialState)
      Cands.push_back(I);
  if (Cands.empty())
    return false;
  size_t NumVictims = (Cands.size() + 1) / 2;
  std::nth_element(Cands.begin(),
                   Cands.begin() + static_cast<ptrdiff_t>(NumVictims - 1),
                   Cands.end(), [&](uint32_t A, uint32_t B) {
                     return States[A].LastTouch < States[B].LastTouch;
                   });
  Cands.resize(NumVictims);

  std::vector<char> IsVictim(States.size(), 0);
  for (uint32_t V : Cands) {
    States[V].Live = false;
    States[V].Expanded = false;
    IsVictim[V] = 1;
    FreeSlots.push_back(V);
  }
  Evicted += NumVictims;
  SBD_OBS_ADD(DfaEvictions, NumVictims);
  ++EvictEpoch;

  // FlatMap64 has no erase; rebuild the Re.Id -> slot index from survivors.
  StateIndex.clear();
  for (uint32_t I = 0; I != States.size(); ++I)
    if (States[I].Live)
      StateIndex.insert(States[I].Regex.Id, I);

  // A survivor row that references a victim would silently point at the
  // slot's future occupant; un-expand those rows so they refill on demand.
  for (uint32_t I = 0; I != States.size(); ++I) {
    if (!States[I].Live || !States[I].Expanded)
      continue;
    const uint32_t *Row = &Rows[I * NumClasses];
    for (size_t C = 0; C != NumClasses; ++C)
      if (Row[C] != DeadState && IsVictim[Row[C]]) {
        States[I].Expanded = false;
        break;
      }
  }
  return true;
}

bool CachedMatcher::expand(uint32_t Slot) {
  // One probe of the class representative decides the whole class: guards
  // in δdnf(R) are Boolean combinations of the pattern's predicates, for
  // which the compressor's minterms are uniform by construction.
  Re R = States[Slot].Regex;
  std::vector<TrArc> Arcs = T.arcs(Engine.derivativeDnf(R));
  std::vector<Re> Targets(NumClasses, M.empty());
  for (size_t C = 0; C != NumClasses; ++C) {
    uint32_t Rep = Compressor.representative(static_cast<uint16_t>(C));
    std::vector<Re> Parts;
    for (const TrArc &A : Arcs)
      if (A.Guard.contains(Rep))
        Parts.push_back(A.Target);
    if (!Parts.empty())
      Targets[C] = M.unionList(std::move(Parts));
  }

  // Interning a target can trigger an eviction that reclaims a target
  // interned earlier in this same row; the epoch check detects that and
  // retries (every target was just touched, so the second pass almost
  // always sticks). If the cap cannot hold the row at all, give up and let
  // the caller fall back to uncached stepping.
  uint32_t *Row = &Rows[Slot * NumClasses];
  for (int Attempt = 0; Attempt != 3; ++Attempt) {
    uint64_t Epoch = EvictEpoch;
    bool Stable = true;
    for (size_t C = 0; C != NumClasses; ++C) {
      uint32_t Tgt = DeadState;
      if (!(Targets[C] == M.empty())) {
        Tgt = internState(Targets[C], Slot, InitialState);
        if (Tgt == NoSlot)
          return false;
        // Eviction may have moved Rows' storage? No — Rows never grows
        // during eviction, only in internState's fresh-slot path.
        Row = &Rows[Slot * NumClasses];
      }
      Row[C] = Tgt;
      if (EvictEpoch != Epoch) {
        Stable = false;
        break;
      }
    }
    if (Stable) {
      States[Slot].Expanded = true;
      SBD_OBS_INC(DfaStatesBuilt);
#if SBD_AUDIT
      auditRowHook(Slot);
#endif
      return true;
    }
  }
  return false;
}

uint32_t CachedMatcher::step(uint32_t Slot, uint16_t Cls) {
  if (!States[Slot].Expanded && !expand(Slot))
    return NoSlot;
  return Rows[Slot * NumClasses + Cls];
}

bool CachedMatcher::feed(uint32_t &Slot, Re &Cur, uint32_t Cp) {
  if (Slot != NoSlot) {
    uint32_t Next = step(Slot, Compressor.classOf(Cp));
    if (Next == DeadState)
      return false;
    if (Next != NoSlot) {
      Slot = Next;
      return true;
    }
    // Cap pressure: continue from this state's regex on the uncached path.
    Cur = States[Slot].Regex;
    Slot = NoSlot;
  }
  ++FallbackSteps;
  Cur = T.apply(Engine.derivativeDnf(Cur), Cp);
  if (Cur == M.empty())
    return false;
  // Re-enter the cache when the derivative lands on a state that is still
  // resident (lookup only — interning here would just churn the cap).
  if (const uint32_t *Hit = StateIndex.find(Cur.Id)) {
    Slot = *Hit;
    touch(Slot);
  }
  return true;
}

bool CachedMatcher::accepted(uint32_t Slot, Re Cur) {
  if (Slot != NoSlot) {
    touch(Slot);
    return States[Slot].Accepting;
  }
  return M.nullable(Cur);
}

bool CachedMatcher::matches(const std::vector<uint32_t> &Word) {
  // Scan timing lives here (not in CompiledDfa::matches) so the compiled
  // engine's throughput benchmarks stay clock-free.
  if (maybePromote(Word.size())) {
#if SBD_OBS
    Stopwatch ScanTimer;
#endif
    bool Ok = Compiled->matches(Word);
    SBD_OBS_HIST(CompiledScanUs, ScanTimer.elapsedUs());
    SBD_OBS_ADD(ScanTimeUs, ScanTimer.elapsedUs());
    return Ok;
  }
#if SBD_OBS
  Stopwatch ScanTimer;
#endif
  uint32_t Slot = InitialState;
  Re Cur = States[InitialState].Regex;
  touch(Slot);
  bool Ok = true;
  for (uint32_t Cp : Word)
    if (!feed(Slot, Cur, Cp)) {
      Ok = false;
      break;
    }
  if (Ok)
    Ok = accepted(Slot, Cur);
  SBD_OBS_HIST(LazyScanUs, ScanTimer.elapsedUs());
  SBD_OBS_ADD(ScanTimeUs, ScanTimer.elapsedUs());
  return Ok;
}

bool CachedMatcher::matches(const std::string &Utf8) {
  if (maybePromote(Utf8.size())) {
#if SBD_OBS
    Stopwatch ScanTimer;
#endif
    bool Ok = Compiled->matches(Utf8);
    SBD_OBS_HIST(CompiledScanUs, ScanTimer.elapsedUs());
    SBD_OBS_ADD(ScanTimeUs, ScanTimer.elapsedUs());
    return Ok;
  }
#if SBD_OBS
  Stopwatch ScanTimer;
#endif
  // Streaming decode: no intermediate code-point buffer.
  uint32_t Slot = InitialState;
  Re Cur = States[InitialState].Regex;
  touch(Slot);
  bool Ok = true;
  for (size_t I = 0; I < Utf8.size();) {
    uint32_t Cp = static_cast<uint8_t>(Utf8[I]);
    if (Cp < 0x80)
      ++I; // ASCII fast path: byte == code point
    else
      Cp = decodeUtf8At(Utf8, I);
    if (!feed(Slot, Cur, Cp)) {
      Ok = false;
      break;
    }
  }
  if (Ok)
    Ok = accepted(Slot, Cur);
  SBD_OBS_HIST(LazyScanUs, ScanTimer.elapsedUs());
  SBD_OBS_ADD(ScanTimeUs, ScanTimer.elapsedUs());
  return Ok;
}

size_t CachedMatcher::cachedArcs() const {
  size_t N = 0;
  for (uint32_t I = 0; I != States.size(); ++I) {
    if (!States[I].Live || !States[I].Expanded)
      continue;
    const uint32_t *Row = &Rows[I * NumClasses];
    for (size_t C = 0; C != NumClasses; ++C)
      N += Row[C] != DeadState;
  }
  return N;
}

size_t CachedMatcher::auditRow(uint32_t Slot) {
  if (!States[Slot].Live || !States[Slot].Expanded)
    return 0;
  // Independent route: evaluate the conditional transition regex directly
  // on each class representative (TrManager::apply), bypassing the arc
  // enumeration + per-class union that built the row. Both routes intern
  // through the same smart constructors, so a healthy row matches node-for-
  // node; any divergence (stale row after eviction, compressor/partition
  // bug, corrupted entry) shows up as a mismatch.
  Tr Dnf = Engine.derivativeDnf(States[Slot].Regex);
  size_t Bad = 0;
  const uint32_t *Row = &Rows[Slot * NumClasses];
  for (size_t C = 0; C != NumClasses; ++C) {
    Re Expect = T.apply(Dnf, Compressor.representative(static_cast<uint16_t>(C)));
    uint32_t Got = Row[C];
    if (Expect == M.empty()) {
      Bad += Got != DeadState;
      continue;
    }
    Bad += Got == DeadState || Got >= States.size() || !States[Got].Live ||
           States[Got].Regex != Expect;
  }
  return Bad;
}

size_t CachedMatcher::auditRows() {
  size_t Bad = 0;
  for (uint32_t I = 0; I != States.size(); ++I)
    Bad += auditRow(I);
  return Bad;
}

void CachedMatcher::corruptRowForTest(size_t Slot, uint16_t Cls,
                                      uint32_t Value) {
  if (Slot < States.size() && States[Slot].Expanded && Cls < NumClasses)
    Rows[Slot * NumClasses + Cls] = Value;
}

#if SBD_AUDIT
void CachedMatcher::auditRowHook(uint32_t Slot) {
  size_t Bad = auditRow(Slot);
  audit::Report Out;
  Out.noteChecked(NumClasses);
  for (size_t I = 0; I != Bad; ++I)
    Out.add(audit::ViolationKind::DfaRowMismatch, States[Slot].Regex.Id,
            "dense row entry disagrees with uncompressed δdnf");
  audit::publish(Out, "dense row");
}
#endif
