//===- core/Derivatives.cpp - Symbolic and classical derivatives ------------===//
// sbd-lint: hot-path

#include "core/Derivatives.h"

#include "support/Debug.h"
#include "support/Stopwatch.h"
#include "support/Unicode.h"

using namespace sbd;

Tr DerivativeEngine::derivative(Re R) {
  SBD_OBS_INC(DerivativeCalls);
  if (R.Id < DerivMemo.size() && DerivMemo[R.Id] != MissingId) {
    SBD_STATS_INC(Stats, MemoHits);
    return Tr{DerivMemo[R.Id]};
  }
  SBD_STATS_INC(Stats, MemoMisses);

  // Copy the node: recursive calls may grow the regex arena.
  RegexNode N = M.node(R);
  Tr Result;
  switch (N.Kind) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
    Result = T.bot();
    break;
  case RegexKind::Pred:
    // δ(φ) = if(φ, ε, ⊥)
    Result = T.ite(M.predSet(R), T.leaf(M.epsilon()), T.bot());
    break;
  case RegexKind::Concat: {
    Re A = N.Kids[0], B = N.Kids[1];
    Tr DA = T.concatRe(derivative(A), B);
    if (M.nullable(A))
      Result = T.union2(DA, derivative(B));
    else
      Result = DA;
    break;
  }
  case RegexKind::Star:
    // δ(R*) = δ(R) · R*
    Result = T.concatRe(derivative(N.Kids[0]), R);
    break;
  case RegexKind::Loop: {
    // δ(R{m,n}) = δ(R) · R{max(m,1)-1, n-1}; the loop constructor has
    // normalized m to 0 when R is nullable, making this rule exact.
    Re Body = N.Kids[0];
    uint32_t Min = N.LoopMin == 0 ? 0 : N.LoopMin - 1;
    uint32_t Max = N.LoopMax == LoopInf ? LoopInf : N.LoopMax - 1;
    Result = T.concatRe(derivative(Body), M.loop(Body, Min, Max));
    break;
  }
  case RegexKind::Union: {
    std::vector<Tr> Kids;
    Kids.reserve(N.Kids.size());
    for (Re Kid : N.Kids)
      Kids.push_back(derivative(Kid));
    Result = T.union_(std::move(Kids));
    break;
  }
  case RegexKind::Inter: {
    std::vector<Tr> Kids;
    Kids.reserve(N.Kids.size());
    for (Re Kid : N.Kids)
      Kids.push_back(derivative(Kid));
    Result = T.inter(std::move(Kids));
    break;
  }
  case RegexKind::Compl:
    // δ(~R) = ~δ(R), realized through the negation dual (Lemma 4.2).
    Result = T.negate(derivative(N.Kids[0]));
    break;
  }
  if (DerivMemo.size() <= R.Id)
    DerivMemo.resize(M.numNodes(), MissingId);
  DerivMemo[R.Id] = Result.Id;
  return Result;
}

Tr DerivativeEngine::derivativeDnf(Re R) {
  SBD_OBS_INC(DnfCalls);
  if (R.Id < DnfMemo.size() && DnfMemo[R.Id] != MissingId) {
    SBD_STATS_INC(Stats, MemoHits);
    return Tr{DnfMemo[R.Id]};
  }
  SBD_STATS_INC(Stats, MemoMisses);
  // Phase attribution on the miss path only: memo hits stay a bare table
  // lookup, while misses do real work that dwarfs the two clock reads.
  // DNF work triggered *inside* δ (the lift rule of concatRe) lands in the
  // derive bucket — documented in DESIGN.md §8.
#if SBD_OBS
  Stopwatch PhaseTimer;
  Tr D = derivative(R);
  SBD_OBS_ADD(DeriveTimeUs, PhaseTimer.elapsedUs());
  PhaseTimer.reset();
  Tr Result = T.dnf(D);
  SBD_OBS_ADD(DnfTimeUs, PhaseTimer.elapsedUs());
#else
  Tr Result = T.dnf(derivative(R));
#endif
  if (DnfMemo.size() <= R.Id)
    DnfMemo.resize(M.numNodes(), MissingId);
  DnfMemo[R.Id] = Result.Id;
  return Result;
}

void DerivativeEngine::clearCaches() {
  DerivMemo.clear();
  DnfMemo.clear();
  BrzMemo.clear();
  T.clearCaches();
}

Re DerivativeEngine::brzozowski(Re R, uint32_t Ch) {
  // (id, char) memo: repeated matching walks the same derivative chains.
  SBD_OBS_INC(BrzozowskiCalls);
  assert(Ch <= MaxCodePoint && "character outside the code-point domain");
  uint64_t Key = (static_cast<uint64_t>(R.Id) << 21) | Ch;
  if (const uint32_t *Hit = BrzMemo.find(Key)) {
    SBD_STATS_INC(Stats, MemoHits);
    return Re{*Hit};
  }
  SBD_STATS_INC(Stats, MemoMisses);
  Re Out = brzozowskiUncached(R, Ch);
  BrzMemo.insert(Key, Out.Id);
  return Out;
}

Re DerivativeEngine::brzozowskiUncached(Re R, uint32_t Ch) {
  RegexNode N = M.node(R);
  switch (N.Kind) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
    return M.empty();
  case RegexKind::Pred:
    return M.predSet(R).contains(Ch) ? M.epsilon() : M.empty();
  case RegexKind::Concat: {
    Re A = N.Kids[0], B = N.Kids[1];
    Re DA = M.concat(brzozowski(A, Ch), B);
    if (M.nullable(A))
      return M.union_(DA, brzozowski(B, Ch));
    return DA;
  }
  case RegexKind::Star:
    return M.concat(brzozowski(N.Kids[0], Ch), R);
  case RegexKind::Loop: {
    Re Body = N.Kids[0];
    uint32_t Min = N.LoopMin == 0 ? 0 : N.LoopMin - 1;
    uint32_t Max = N.LoopMax == LoopInf ? LoopInf : N.LoopMax - 1;
    return M.concat(brzozowski(Body, Ch), M.loop(Body, Min, Max));
  }
  case RegexKind::Union: {
    std::vector<Re> Kids = N.Kids;
    for (Re &Kid : Kids)
      Kid = brzozowski(Kid, Ch);
    return M.unionList(std::move(Kids));
  }
  case RegexKind::Inter: {
    std::vector<Re> Kids = N.Kids;
    for (Re &Kid : Kids)
      Kid = brzozowski(Kid, Ch);
    return M.interList(std::move(Kids));
  }
  case RegexKind::Compl:
    return M.complement(brzozowski(N.Kids[0], Ch));
  }
  sbd_unreachable("covered switch");
}

Re DerivativeEngine::derivativeOfWord(Re R, const std::vector<uint32_t> &Word) {
  Re Cur = R;
  for (uint32_t Ch : Word) {
    if (Cur == M.empty())
      return Cur; // D_w(⊥) = ⊥ for any suffix
    Cur = brzozowski(Cur, Ch);
  }
  return Cur;
}

bool DerivativeEngine::matches(Re R, const std::vector<uint32_t> &Word) {
  Re Cur = R;
  for (uint32_t Ch : Word) {
    if (Cur == M.empty())
      return false; // short-circuit a dead end
    Cur = brzozowski(Cur, Ch);
  }
  return M.nullable(Cur);
}

bool DerivativeEngine::matches(Re R, const std::string &Utf8) {
  return matches(R, fromUtf8(Utf8));
}
