//===- core/Derivatives.h - Symbolic and classical derivatives -------------===//
///
/// \file
/// The symbolic derivative δ : ERE → TR of Section 4, its solver normal form
/// δdnf (Section 5), and — independently implemented for cross-validation —
/// the classical Brzozowski derivative D_a : ERE → ERE for a concrete
/// character (Section 8.1), plus the derivative-based matcher used as ground
/// truth throughout the test suite.
///
/// Theorem 4.3 (correctness) states L(δ(R)(a)) = L(D_a(R)). Note this is
/// *language* equality: `apply(δ(R), a)` and `brzozowski(R, a)` need not be
/// the same interned node, because distributivity of `·`/`&` over `|` is not
/// one of the similarity laws the arena normalizes by. The property tests
/// check the equality by membership sampling and by solver-based language
/// equivalence.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_CORE_DERIVATIVES_H
#define SBD_CORE_DERIVATIVES_H

#include "core/TransitionRegex.h"

#include <unordered_map>
#include <vector>

namespace sbd {

/// Computes and memoizes derivatives over one regex/transition-regex arena
/// pair.
class DerivativeEngine {
public:
  DerivativeEngine(RegexManager &M, TrManager &T) : M(M), T(T) {}

  RegexManager &regexManager() { return M; }
  TrManager &trManager() { return T; }

  /// δ(R): the symbolic derivative as a transition regex (Section 4).
  Tr derivative(Re R);

  /// δdnf(R): the derivative in the solver's normal form — conditionals and
  /// unions outermost, `&`/`~` pushed into ERE leaves, dead branches pruned.
  Tr derivativeDnf(Re R);

  /// D_Ch(R): classical Brzozowski derivative with respect to a concrete
  /// character. Implemented directly from the classical rules (not via δ)
  /// so that the two agree only if both are correct.
  Re brzozowski(Re R, uint32_t Ch);

  /// ϵ-membership after consuming \p Word: the classical derivative matcher.
  bool matches(Re R, const std::vector<uint32_t> &Word);

  /// Convenience: match an ASCII/UTF-8 string.
  bool matches(Re R, const std::string &Utf8);

private:
  RegexManager &M;
  TrManager &T;
  std::unordered_map<uint32_t, Tr> DerivCache;
  std::unordered_map<uint32_t, Tr> DnfCache;
};

} // namespace sbd

#endif // SBD_CORE_DERIVATIVES_H
