//===- core/Derivatives.h - Symbolic and classical derivatives -------------===//
///
/// \file
/// The symbolic derivative δ : ERE → TR of Section 4, its solver normal form
/// δdnf (Section 5), and — independently implemented for cross-validation —
/// the classical Brzozowski derivative D_a : ERE → ERE for a concrete
/// character (Section 8.1), plus the derivative-based matcher used as ground
/// truth throughout the test suite.
///
/// Theorem 4.3 (correctness) states L(δ(R)(a)) = L(D_a(R)). Note this is
/// *language* equality: `apply(δ(R), a)` and `brzozowski(R, a)` need not be
/// the same interned node, because distributivity of `·`/`&` over `|` is not
/// one of the similarity laws the arena normalizes by. The property tests
/// check the equality by membership sampling and by solver-based language
/// equivalence.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_CORE_DERIVATIVES_H
#define SBD_CORE_DERIVATIVES_H

#include "core/TransitionRegex.h"

#include <vector>

namespace sbd {

/// Computes and memoizes derivatives over one regex/transition-regex arena
/// pair.
class DerivativeEngine {
public:
  DerivativeEngine(RegexManager &Mgr, TrManager &TrMgr) : M(Mgr), T(TrMgr) {}

  RegexManager &regexManager() { return M; }
  TrManager &trManager() { return T; }

  /// δ(R): the symbolic derivative as a transition regex (Section 4).
  Tr derivative(Re R);

  /// δdnf(R): the derivative in the solver's normal form — conditionals and
  /// unions outermost, `&`/`~` pushed into ERE leaves, dead branches pruned.
  Tr derivativeDnf(Re R);

  /// D_Ch(R): classical Brzozowski derivative with respect to a concrete
  /// character. Implemented directly from the classical rules (not via δ)
  /// so that the two agree only if both are correct.
  Re brzozowski(Re R, uint32_t Ch);

  /// D_w(R): the classical derivative with respect to a whole word, folding
  /// D_Ch left to right. Deterministic re-entry point for the differential
  /// oracle's `w ∈ der_a(R) ⇔ aw ∈ R` law (fuzz/Oracle.h): the returned
  /// regex is an interned term that can be fed back into any engine.
  Re derivativeOfWord(Re R, const std::vector<uint32_t> &Word);

  /// ϵ-membership after consuming \p Word: the classical derivative matcher.
  bool matches(Re R, const std::vector<uint32_t> &Word);

  /// Convenience: match an ASCII/UTF-8 string.
  bool matches(Re R, const std::string &Utf8);

  /// Drops all memo slots (δ, δdnf, Brzozowski) here and in the TrManager,
  /// so a long-running process can bound memory between queries. Interned
  /// arena nodes are untouched — handles stay valid, results stay identical.
  void clearCaches();

  /// Memo hit/miss counters for δ/δdnf/Brzozowski.
  const CacheStats &stats() const { return Stats; }
  void resetStats() { Stats.reset(); }

private:
  /// Tombstone for the dense id-indexed memo slots.
  static constexpr uint32_t MissingId = 0xFFFFFFFFu;

  Re brzozowskiUncached(Re R, uint32_t Ch);

  RegexManager &M;
  TrManager &T;
  /// δ / δdnf memo: inline slots indexed by Re id (ids are dense), value is
  /// the memoized Tr id or MissingId.
  std::vector<uint32_t> DerivMemo;
  std::vector<uint32_t> DnfMemo;
  /// Classical-derivative memo keyed by (regex id, character): the matcher
  /// walks D_a chains over the same states repeatedly, so this turns
  /// repeated matching into table lookups (the SRM argument of §8.5).
  FlatMap64 BrzMemo;
  CacheStats Stats;
};

} // namespace sbd

#endif // SBD_CORE_DERIVATIVES_H
