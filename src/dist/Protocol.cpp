//===- dist/Protocol.cpp - Framed coordinator/worker wire protocol ----------===//

#include "dist/Protocol.h"

#include <cstring>

using namespace sbd;
using namespace sbd::dist;

//===----------------------------------------------------------------------===//
// Primitive put/get helpers
//===----------------------------------------------------------------------===//

namespace {

void putU8(std::vector<uint8_t> &Out, uint8_t V) { Out.push_back(V); }

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  putU32(Out, static_cast<uint32_t>(V));
  putU32(Out, static_cast<uint32_t>(V >> 32));
}

void putI64(std::vector<uint8_t> &Out, int64_t V) {
  putU64(Out, static_cast<uint64_t>(V));
}

void putStr(std::vector<uint8_t> &Out, const std::string &S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.insert(Out.end(), S.begin(), S.end());
}

/// Bounds-checked cursor over a payload; any read past the end trips Ok.
struct Cursor {
  const std::vector<uint8_t> &Buf;
  size_t Pos = 0;
  bool Ok = true;

  explicit Cursor(const std::vector<uint8_t> &B) : Buf(B) {}

  bool need(size_t N) {
    if (!Ok || Buf.size() - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return Buf[Pos++];
  }

  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = static_cast<uint32_t>(Buf[Pos]) |
                 static_cast<uint32_t>(Buf[Pos + 1]) << 8 |
                 static_cast<uint32_t>(Buf[Pos + 2]) << 16 |
                 static_cast<uint32_t>(Buf[Pos + 3]) << 24;
    Pos += 4;
    return V;
  }

  uint64_t u64() {
    uint64_t Lo = u32();
    uint64_t Hi = u32();
    return Lo | (Hi << 32);
  }

  int64_t i64() { return static_cast<int64_t>(u64()); }

  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return {};
    std::string S(reinterpret_cast<const char *>(Buf.data() + Pos), N);
    Pos += N;
    return S;
  }

  /// Fully consumed with no trailing garbage?
  bool done() const { return Ok && Pos == Buf.size(); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

void dist::appendFrame(std::vector<uint8_t> &Out, FrameType Type,
                       const uint8_t *Payload, size_t Len) {
  putU32(Out, static_cast<uint32_t>(Len));
  putU8(Out, static_cast<uint8_t>(Type));
  if (Len)
    Out.insert(Out.end(), Payload, Payload + Len);
}

void dist::encodeReady(std::vector<uint8_t> &Out) {
  appendFrame(Out, FrameType::Ready, nullptr, 0);
}

void dist::encodeShutdown(std::vector<uint8_t> &Out) {
  appendFrame(Out, FrameType::Shutdown, nullptr, 0);
}

void dist::encodeRequest(std::vector<uint8_t> &Out, const WireRequest &Req) {
  std::vector<uint8_t> P;
  putU64(P, Req.Id);
  putStr(P, Req.Pattern);
  putI64(P, Req.Opts.TimeoutMs);
  putU64(P, Req.Opts.MaxStates);
  putU8(P, static_cast<uint8_t>(Req.Opts.Strategy));
  putU8(P, static_cast<uint8_t>((Req.Opts.PreferSimplerArcs ? 1 : 0) |
                                (Req.Opts.EagerRowRecording ? 2 : 0)));
  appendFrame(Out, FrameType::Request, P.data(), P.size());
}

std::optional<WireRequest>
dist::decodeRequest(const std::vector<uint8_t> &Payload) {
  Cursor C(Payload);
  WireRequest Req;
  Req.Id = C.u64();
  Req.Pattern = C.str();
  Req.Opts.TimeoutMs = C.i64();
  Req.Opts.MaxStates = static_cast<size_t>(C.u64());
  uint8_t Strat = C.u8();
  uint8_t Flags = C.u8();
  if (!C.done() || Strat > static_cast<uint8_t>(SearchStrategy::Dfs))
    return std::nullopt;
  Req.Opts.Strategy = static_cast<SearchStrategy>(Strat);
  Req.Opts.PreferSimplerArcs = (Flags & 1) != 0;
  Req.Opts.EagerRowRecording = (Flags & 2) != 0;
  return Req;
}

void dist::encodeResponse(std::vector<uint8_t> &Out, const WireResponse &Resp) {
  std::vector<uint8_t> P;
  const BatchResult &R = Resp.Result;
  putU64(P, Resp.Id);
  putU8(P, R.ParseOk ? 1 : 0);
  putStr(P, R.ParseError);
  putU8(P, static_cast<uint8_t>(R.Result.Status));
  putU8(P, static_cast<uint8_t>(R.Result.Stop));
  putU8(P, static_cast<uint8_t>(R.Result.Stats.Engine));
  putStr(P, R.Result.Note);
  putU64(P, R.Result.StatesExplored);
  putI64(P, R.Result.TimeUs);
  putI64(P, R.Result.Stats.TotalUs);
  putU32(P, static_cast<uint32_t>(R.Result.Witness.size()));
  for (uint32_t Cp : R.Result.Witness)
    putU32(P, Cp);
  appendFrame(Out, FrameType::Response, P.data(), P.size());
}

std::optional<WireResponse>
dist::decodeResponse(const std::vector<uint8_t> &Payload) {
  Cursor C(Payload);
  WireResponse Resp;
  BatchResult &R = Resp.Result;
  Resp.Id = C.u64();
  R.ParseOk = C.u8() != 0;
  R.ParseError = C.str();
  uint8_t Status = C.u8();
  uint8_t Stop = C.u8();
  uint8_t Engine = C.u8();
  R.Result.Note = C.str();
  R.Result.StatesExplored = static_cast<size_t>(C.u64());
  R.Result.TimeUs = C.i64();
  R.Result.Stats.TotalUs = C.i64();
  uint32_t N = C.u32();
  // A witness longer than the remaining payload is a corrupted count.
  if (!C.Ok || Payload.size() - C.Pos < size_t{N} * 4)
    return std::nullopt;
  R.Result.Witness.reserve(N);
  for (uint32_t I = 0; I != N; ++I)
    R.Result.Witness.push_back(C.u32());
  if (!C.done() || Status > static_cast<uint8_t>(SolveStatus::Unsupported) ||
      Stop > static_cast<uint8_t>(StopReason::CacheRevalidationFailed) ||
      Engine > static_cast<uint8_t>(SolveEngine::VerdictCache))
    return std::nullopt;
  R.Result.Status = static_cast<SolveStatus>(Status);
  R.Result.Stop = static_cast<StopReason>(Stop);
  R.Result.Stats.Engine = static_cast<SolveEngine>(Engine);
  return Resp;
}

//===----------------------------------------------------------------------===//
// FrameReader
//===----------------------------------------------------------------------===//

void FrameReader::feed(const uint8_t *Data, size_t Len) {
  if (error())
    return;
  // Reclaim the consumed prefix before growing (bounded memory on
  // long-lived streams).
  if (Pos > 0 && (Pos == Buf.size() || Pos >= 4096)) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Pos));
    Pos = 0;
  }
  Buf.insert(Buf.end(), Data, Data + Len);
}

bool FrameReader::next(Frame &Out) {
  if (error() || Buf.size() - Pos < FrameHeaderBytes)
    return false;
  uint32_t Len = static_cast<uint32_t>(Buf[Pos]) |
                 static_cast<uint32_t>(Buf[Pos + 1]) << 8 |
                 static_cast<uint32_t>(Buf[Pos + 2]) << 16 |
                 static_cast<uint32_t>(Buf[Pos + 3]) << 24;
  uint8_t Type = Buf[Pos + 4];
  if (Len > MaxFramePayload) {
    Error = "oversized frame: " + std::to_string(Len) + " bytes";
    return false;
  }
  if (Type < static_cast<uint8_t>(FrameType::Ready) ||
      Type > static_cast<uint8_t>(FrameType::Shutdown)) {
    Error = "unknown frame type " + std::to_string(Type);
    return false;
  }
  if (Buf.size() - Pos - FrameHeaderBytes < Len)
    return false; // header seen, payload still in flight
  Out.Type = static_cast<FrameType>(Type);
  Out.Payload.assign(Buf.begin() + static_cast<ptrdiff_t>(Pos + FrameHeaderBytes),
                     Buf.begin() +
                         static_cast<ptrdiff_t>(Pos + FrameHeaderBytes + Len));
  Pos += FrameHeaderBytes + Len;
  return true;
}

//===----------------------------------------------------------------------===//
// Verdict stream rendering
//===----------------------------------------------------------------------===//

std::string dist::renderVerdictLine(size_t Index, const BatchResult &R) {
  std::string Out = std::to_string(Index);
  Out += ' ';
  if (!R.ParseOk) {
    Out += "parse_error";
    return Out;
  }
  Out += statusName(R.Result.Status);
  if (R.Result.isSat()) {
    Out += ' ';
    if (R.Result.Witness.empty()) {
      Out += '.';
    } else {
      for (size_t I = 0; I != R.Result.Witness.size(); ++I) {
        if (I)
          Out += ',';
        Out += std::to_string(R.Result.Witness[I]);
      }
    }
  }
  return Out;
}
