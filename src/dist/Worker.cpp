//===- dist/Worker.cpp - Worker-process request loop ------------------------===//

#include "dist/Worker.h"

#include "cache/VerdictCache.h"
#include "dist/Protocol.h"
#include "portfolio/SolverStack.h"

#include <cerrno>
#include <memory>
#include <unistd.h>

using namespace sbd;
using namespace sbd::dist;

namespace {

/// Writes all of \p Buf to \p Fd, retrying on short writes and EINTR.
/// Returns false when the peer is gone (EPIPE etc.).
bool writeAll(int Fd, const std::vector<uint8_t> &Buf) {
  size_t Off = 0;
  while (Off < Buf.size()) {
    ssize_t N = ::write(Fd, Buf.data() + Off, Buf.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

int dist::runWorker(int InFd, int OutFd, const WorkerConfig &Config) {
  // The worker's solver stack plus its shard of the verdict cache. The
  // cache outlives every recycled stack: canonical-print keys are
  // arena-portable, so warmth survives the fresh-arena-per-query rule.
  std::unique_ptr<cache::VerdictCache> Cache;
  if (Config.VerdictCacheCapacity)
    Cache = std::make_unique<cache::VerdictCache>(
        cache::VerdictCache::Config{Config.VerdictCacheCapacity});
  auto freshStack = [&] {
    auto W = std::make_unique<portfolio::SolverStack>();
    W->P.setVerdictCache(Cache.get());
    return W;
  };
  std::unique_ptr<portfolio::SolverStack> W = freshStack();
  bool Dirty = false;
  size_t Handled = 0;

  std::vector<uint8_t> Out;
  encodeReady(Out);
  if (!writeAll(OutFd, Out))
    return 1;

  FrameReader Reader;
  Frame F;
  uint8_t Chunk[1 << 16];
  for (;;) {
    while (Reader.next(F)) {
      switch (F.Type) {
      case FrameType::Shutdown:
        // Graceful drain: the coordinator only sends this once every
        // dispatched request has been answered.
        return 0;
      case FrameType::Request: {
        std::optional<WireRequest> Req = decodeRequest(F.Payload);
        if (!Req)
          return 2; // malformed request: the stream is unusable
        ++Handled;
        if (Config.CrashAtRequest && Handled == Config.CrashAtRequest)
          _exit(137); // test hook: die as if SIGKILLed, mid-request
        bool Recycle = Dirty && (!Config.ReuseArenas ||
                                 (Config.ArenaNodeBudget &&
                                  W->M.numNodes() > Config.ArenaNodeBudget));
        if (Recycle)
          W = freshStack();
        BatchQuery Q;
        Q.Pattern = Req->Pattern;
        Q.Opts = Req->Opts;
        WireResponse Resp;
        Resp.Id = Req->Id;
        Resp.Result = portfolio::solveOnStack(*W, Q, Config.ReuseArenas);
        Dirty = true;
        Out.clear();
        encodeResponse(Out, Resp);
        if (!writeAll(OutFd, Out))
          return 1;
        break;
      }
      case FrameType::Ready:
      case FrameType::Response:
        return 2; // coordinator never sends these
      }
    }
    if (Reader.error())
      return 2;
    ssize_t N = ::read(InFd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return 1;
    }
    if (N == 0)
      return Reader.idle() ? 0 : 2; // EOF mid-frame is a protocol error
    Reader.feed(Chunk, static_cast<size_t>(N));
  }
}
