//===- dist/Worker.h - Worker-process request loop --------------------------===//
///
/// \file
/// The body of one `src/dist` worker process. A worker is a blocking
/// read-decode-solve-respond loop over two file descriptors (in practice
/// the two ends of a Unix socketpair inherited across fork): it sends one
/// Ready frame, then answers Request frames with Response frames until a
/// Shutdown frame or EOF arrives.
///
/// Each worker owns a full `portfolio::SolverStack` plus its own
/// `cache::VerdictCache`. The stack is recycled (rebuilt fresh) after every
/// query by default, mirroring BatchSolver's fresh-arena-per-query rule —
/// warm arenas change interning order and with it witness bytes, which
/// would break the byte-identical verdict-stream guarantee. Warmth across
/// queries is instead carried by the verdict cache, whose canonical-print
/// keys are arena- and process-portable and whose hits replay cold
/// verdicts bit-identically (the `cache_consistency` law).
///
//===----------------------------------------------------------------------===//

#ifndef SBD_DIST_WORKER_H
#define SBD_DIST_WORKER_H

#include <cstddef>

namespace sbd {
namespace dist {

/// Worker-process knobs. Plumbed by the coordinator before fork.
struct WorkerConfig {
  /// Keep arenas across queries until they exceed ArenaNodeBudget nodes
  /// (BatchOptions::ReuseArenas semantics). Off by default: determinism
  /// over warmth.
  bool ReuseArenas = false;
  size_t ArenaNodeBudget = size_t{1} << 20;

  /// Per-worker verdict-cache capacity (entries). 0 disables the cache.
  size_t VerdictCacheCapacity = 4096;

  /// Test hook: crash hard (exit 137, as if SIGKILLed) when handling the
  /// Nth request (1-based). 0 disables. Exercises the coordinator's
  /// crash-detection + requeue path deterministically.
  size_t CrashAtRequest = 0;
};

/// Runs the worker loop: reads frames from \p InFd, writes frames to
/// \p OutFd (the two may be the same fd for a socketpair). Returns the
/// process exit code: 0 on clean Shutdown or EOF, nonzero on protocol
/// error. Never throws.
int runWorker(int InFd, int OutFd, const WorkerConfig &Config);

} // namespace dist
} // namespace sbd

#endif // SBD_DIST_WORKER_H
