//===- dist/Coordinator.h - Multi-process sharded batch coordinator ---------===//
///
/// \file
/// The coordinator side of the `src/dist` layer (DESIGN.md §16): forks N
/// worker processes (each a `runWorker` loop over a Unix socketpair) and
/// drives the query stream through them.
///
/// Scheduling model:
///
///  - *Sharding.* Every query is parsed on a coordinator-local arena and
///    hashed by its canonical verdict key (`cache::canonicalVerdictKey` —
///    the same string the per-worker verdict caches key on), so
///    similarity-equal queries land on the same shard and each worker's
///    cache warms exactly for its shard: `shard = H(key) % K`,
///    `worker = shard % N`.
///  - *Admission control.* At most `MaxInFlightPerWorker` requests are on
///    any worker's socket; the rest wait in per-worker queues. A streaming
///    submitter is backpressured: `submit()` pumps the event loop until the
///    total backlog drops below the admission bound.
///  - *Work stealing.* A worker whose queue runs dry steals the
///    longest queue's tail, so a skewed shard hash cannot idle workers.
///  - *Robustness.* Per-query RPC timeout (the stuck worker is killed),
///    worker-crash detection via socket EOF, and requeue-once semantics:
///    an in-flight query lost to a crash is replayed on a surviving
///    worker; lost a second time it is finalized as Unknown rather than
///    requeued forever. Unsent queued work is redistributed without
///    counting as a requeue. If every worker dies, one is respawned.
///
/// Results are returned in submission order and are byte-identical to a
/// 1-process run: workers recycle their arena per query (see Worker.h), so
/// verdicts and witnesses cannot depend on worker count, scheduling, or
/// steals — the `dist_consistency` law and CI gate pin this.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_DIST_COORDINATOR_H
#define SBD_DIST_COORDINATOR_H

#include "dist/Worker.h"
#include "portfolio/BatchSolver.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace sbd {
namespace dist {

/// Coordinator configuration.
struct DistOptions {
  /// Worker processes to fork.
  unsigned NumWorkers = 4;
  /// Shard count for the canonical-hash → worker mapping. 0 means
  /// NumWorkers. More shards than workers smooths a skewed hash.
  unsigned NumShards = 0;
  /// Admission bound: requests on one worker's socket at once.
  unsigned MaxInFlightPerWorker = 4;
  /// Per-request round-trip budget. A worker that holds a request longer
  /// is presumed wedged and killed (its work is requeued once). 0 disables.
  int64_t RpcTimeoutMs = 0;
  /// Forwarded to every worker process (arena reuse, cache capacity).
  WorkerConfig Worker;

  /// Test hook: give worker \p CrashWorkerIndex a `CrashAtRequest` of
  /// \p CrashAtRequest (see WorkerConfig) to exercise the crash/requeue
  /// path deterministically. ~0u disables.
  unsigned CrashWorkerIndex = ~0u;
  size_t CrashAtRequest = 0;
};

/// Scheduling/robustness counters for one DistSolver run (the same events
/// also feed the process-wide `sbd::obs` registry under dist_*).
struct DistStats {
  uint64_t Dispatched = 0;    ///< requests sent over a socket
  uint64_t Steals = 0;        ///< requests dispatched off their home queue
  uint64_t Requeues = 0;      ///< in-flight requests replayed after a crash
  uint64_t WorkerCrashes = 0; ///< workers lost (crash or timeout kill)
  uint64_t Timeouts = 0;      ///< requests that exceeded RpcTimeoutMs
  uint64_t Respawns = 0;      ///< workers forked after total loss
  uint64_t Lost = 0;          ///< requests finalized Unknown after 2 losses
};

/// Multi-process batch solver: BatchSolver's contract (queries in,
/// submission-ordered BatchResults out) across forked worker processes.
class DistSolver {
public:
  explicit DistSolver(const DistOptions &Options = {});
  ~DistSolver(); ///< kills any still-running workers (use drain() for grace)
  DistSolver(const DistSolver &) = delete;
  DistSolver &operator=(const DistSolver &) = delete;

  /// Enqueues one query; returns its submission index. Blocks pumping the
  /// event loop while the backlog exceeds the admission bound.
  uint64_t submit(const BatchQuery &Q);

  /// Runs the loop until every submitted query has a result, then drains
  /// the workers (Shutdown frames, EOF, waitpid). Returns results in
  /// submission order. The solver is finished afterwards: submit() may not
  /// be called again.
  std::vector<BatchResult> drain();

  /// submit() everything, then drain().
  std::vector<BatchResult> solveAll(const std::vector<BatchQuery> &Queries);

  /// Scheduling counters accumulated so far.
  const DistStats &stats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace dist
} // namespace sbd

#endif // SBD_DIST_COORDINATOR_H
