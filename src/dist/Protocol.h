//===- dist/Protocol.h - Framed coordinator/worker wire protocol ------------===//
///
/// \file
/// The wire protocol of the multi-process batch-solving layer (DESIGN.md
/// §16): length-prefixed frames over a byte stream (Unix socketpairs in
/// practice, but the codec is transport-agnostic and the unit tests drive
/// it from plain buffers).
///
/// Frame layout (all integers little-endian):
///
///   +---------+--------+----------------------+
///   | u32 len | u8 type| payload (len bytes)  |
///   +---------+--------+----------------------+
///
/// `len` counts only the payload. Frames larger than `MaxFramePayload` are
/// a protocol error — a reader must refuse them rather than attempt the
/// allocation (a corrupted length prefix would otherwise turn into an OOM).
/// `FrameReader` accumulates arbitrarily fragmented input (interleaved
/// partial reads are the normal case on a socket) and yields complete
/// frames in order; a stream that ends mid-frame is detectable through
/// `idle()`.
///
/// Messages:
///   Ready     worker → coordinator, once after startup (handshake).
///   Request   coordinator → worker: one satisfiability query
///             (id, surface-syntax pattern, verdict-relevant SolveOptions).
///   Response  worker → coordinator: the full BatchResult for an id.
///   Shutdown  coordinator → worker: graceful drain (no payload; the
///             worker finishes nothing — every in-flight request has been
///             answered by construction when this is sent — and exits).
///
/// Strings and witnesses are carried verbatim (u32 count + raw bytes /
/// code points), so a response round-trips a `BatchResult` bit-identically
/// — the property the `dist_consistency` harness and the byte-equal
/// verdict-stream gates build on.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_DIST_PROTOCOL_H
#define SBD_DIST_PROTOCOL_H

#include "portfolio/BatchSolver.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sbd {
namespace dist {

/// Wire frame kinds. Values are part of the protocol; never renumber.
enum class FrameType : uint8_t {
  Ready = 1,
  Request = 2,
  Response = 3,
  Shutdown = 4,
};

/// Hard cap on one frame's payload. Patterns and witnesses are tiny; a
/// length prefix beyond this is treated as stream corruption.
constexpr uint32_t MaxFramePayload = 16u << 20; // 16 MiB

/// Frame header size on the wire (u32 length + u8 type).
constexpr size_t FrameHeaderBytes = 5;

/// One decoded frame.
struct Frame {
  FrameType Type = FrameType::Ready;
  std::vector<uint8_t> Payload;
};

/// One query on the wire. `Id` is the submission index — the coordinator
/// uses it to write the response into the right output slot regardless of
/// scheduling, stealing, or requeues.
struct WireRequest {
  uint64_t Id = 0;
  std::string Pattern;
  SolveOptions Opts;
};

/// One verdict on the wire: everything needed to rebuild the BatchResult
/// the in-process BatchSolver would have produced for the same query.
struct WireResponse {
  uint64_t Id = 0;
  BatchResult Result;
};

/// Appends a complete frame (header + payload) to \p Out.
void appendFrame(std::vector<uint8_t> &Out, FrameType Type,
                 const uint8_t *Payload, size_t Len);

/// Encodes a message as a complete frame appended to \p Out.
void encodeReady(std::vector<uint8_t> &Out);
void encodeShutdown(std::vector<uint8_t> &Out);
void encodeRequest(std::vector<uint8_t> &Out, const WireRequest &Req);
void encodeResponse(std::vector<uint8_t> &Out, const WireResponse &Resp);

/// Decodes a frame payload. nullopt on malformed payload (wrong length,
/// truncated field) — a protocol error, never a crash.
std::optional<WireRequest> decodeRequest(const std::vector<uint8_t> &Payload);
std::optional<WireResponse> decodeResponse(const std::vector<uint8_t> &Payload);

/// Incremental frame scanner over an arbitrarily fragmented byte stream.
class FrameReader {
public:
  /// Appends \p Len raw bytes from the transport.
  void feed(const uint8_t *Data, size_t Len);

  /// Pops the next complete frame into \p Out. Returns false when no
  /// complete frame is buffered (or the stream is poisoned — check
  /// error()).
  bool next(Frame &Out);

  /// True once the stream violated the protocol (oversized frame, unknown
  /// frame type). A poisoned reader never yields another frame.
  bool error() const { return !Error.empty(); }
  const std::string &errorMessage() const { return Error; }

  /// True when the buffer holds no partial frame — the stream is at a
  /// clean frame boundary (how EOF-mid-frame, i.e. a truncated stream, is
  /// detected).
  bool idle() const { return Pos == Buf.size(); }

  /// Bytes buffered but not yet consumed.
  size_t buffered() const { return Buf.size() - Pos; }

private:
  std::vector<uint8_t> Buf;
  size_t Pos = 0; ///< consumed prefix of Buf
  std::string Error;
};

/// Renders one line of the canonical verdict stream: `<idx> <status>` plus
/// the witness code points for sat verdicts (`.` for the empty-string
/// witness) and `parse_error` detail for rejected patterns. This is the
/// byte stream the `dist_consistency` law and CI gate compare across
/// worker counts — deliberately free of timings, engine tags, and any
/// other run-dependent detail.
std::string renderVerdictLine(size_t Index, const BatchResult &R);

} // namespace dist
} // namespace sbd

#endif // SBD_DIST_PROTOCOL_H
