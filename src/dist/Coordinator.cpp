//===- dist/Coordinator.cpp - Multi-process sharded batch coordinator -------===//

#include "dist/Coordinator.h"

#include "cache/VerdictCache.h"
#include "dist/Protocol.h"
#include "re/RegexParser.h"
#include "support/Hashing.h"
#include "support/Histogram.h"
#include "support/Stopwatch.h"

#include <cerrno>
#include <csignal>
#include <deque>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fcntl.h>

using namespace sbd;
using namespace sbd::dist;

namespace {

uint64_t hashBytes(const std::string &S) {
  uint64_t H = 0x5bd1e995u;
  for (char Ch : S)
    H = hashCombine(H, static_cast<uint8_t>(Ch));
  return hashMix(H);
}

} // namespace

//===----------------------------------------------------------------------===//
// DistSolver::Impl
//===----------------------------------------------------------------------===//

struct DistSolver::Impl {
  /// One submitted query's lifecycle. Queued → Sent → Done; a crash can
  /// bounce Sent back to Queued exactly once (Requeued).
  struct Pending {
    BatchQuery Q;
    unsigned Shard = 0;
    enum { Queued, Sent, Done } State = Queued;
    bool Requeued = false;
    int64_t SentAtUs = 0;
    BatchResult Result;
  };

  /// One forked worker process as the coordinator sees it.
  struct WorkerProc {
    pid_t Pid = -1;
    int Fd = -1;
    bool Alive = false;
    bool Ready = false; ///< Ready frame received; requests may be sent
    FrameReader Reader;
    std::vector<uint8_t> OutBuf; ///< bytes not yet accepted by the socket
    size_t OutPos = 0;
    std::deque<uint64_t> Queue;    ///< homed, not yet dispatched
    std::vector<uint64_t> InFlight; ///< dispatched, awaiting response
  };

  DistOptions Opts;
  DistStats Stats;
  std::vector<WorkerProc> Workers;
  std::vector<Pending> Queries;
  size_t DoneCount = 0;
  bool Drained = false;
  Stopwatch Clock;

  /// Coordinator-local arena for shard hashing only (recycled periodically;
  /// no handle outlives one submit call).
  std::unique_ptr<RegexManager> ShardM = std::make_unique<RegexManager>();
  size_t ShardParses = 0;

  explicit Impl(const DistOptions &O) : Opts(O) {
    if (Opts.NumWorkers == 0)
      Opts.NumWorkers = 1;
    if (Opts.NumShards == 0)
      Opts.NumShards = Opts.NumWorkers;
    if (Opts.MaxInFlightPerWorker == 0)
      Opts.MaxInFlightPerWorker = 1;
    Workers.resize(Opts.NumWorkers);
    for (unsigned I = 0; I != Opts.NumWorkers; ++I)
      spawnWorker(I, /*Respawn=*/false);
  }

  ~Impl() {
    for (WorkerProc &W : Workers) {
      if (!W.Alive)
        continue;
      ::kill(W.Pid, SIGKILL);
      ::close(W.Fd);
      int Status = 0;
      ::waitpid(W.Pid, &Status, 0);
      W.Alive = false;
    }
  }

  size_t outstanding() const { return Queries.size() - DoneCount; }

  //===--------------------------------------------------------------------===//
  // Process management
  //===--------------------------------------------------------------------===//

  void spawnWorker(unsigned Index, bool Respawn) {
    int Fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0)
      return; // worker stays dead; scheduling routes around it
    pid_t Pid = ::fork();
    if (Pid < 0) {
      ::close(Fds[0]);
      ::close(Fds[1]);
      return;
    }
    if (Pid == 0) {
      // Child: drop every coordinator-side fd inherited from the parent —
      // a sibling holding another worker's socket end would mask that
      // worker's EOF — then run the loop and exit without atexit handlers.
      ::close(Fds[0]);
      for (const WorkerProc &W : Workers)
        if (W.Fd >= 0)
          ::close(W.Fd);
      WorkerConfig Config = Opts.Worker;
      if (!Respawn && Index == Opts.CrashWorkerIndex)
        Config.CrashAtRequest = Opts.CrashAtRequest;
      ::_exit(runWorker(Fds[1], Fds[1], Config));
    }
    ::close(Fds[1]);
    ::fcntl(Fds[0], F_SETFL,
            ::fcntl(Fds[0], F_GETFL, 0) | O_NONBLOCK);
    WorkerProc &W = Workers[Index];
    W.Pid = Pid;
    W.Fd = Fds[0];
    W.Alive = true;
    W.Ready = false;
    W.Reader = FrameReader();
    W.OutBuf.clear();
    W.OutPos = 0;
    if (Respawn)
      ++Stats.Respawns;
  }

  unsigned aliveCount() const {
    unsigned N = 0;
    for (const WorkerProc &W : Workers)
      N += W.Alive ? 1 : 0;
    return N;
  }

  /// First alive worker at or after \p From (mod N); -1 when all are dead.
  int firstAlive(unsigned From) const {
    unsigned N = static_cast<unsigned>(Workers.size());
    for (unsigned K = 0; K != N; ++K) {
      unsigned I = (From + K) % N;
      if (Workers[I].Alive)
        return static_cast<int>(I);
    }
    return -1;
  }

  //===--------------------------------------------------------------------===//
  // Crash handling: requeue-once, redistribute, respawn on total loss
  //===--------------------------------------------------------------------===//

  void finalizeLost(uint64_t Id) {
    Pending &P = Queries[Id];
    P.Result = BatchResult();
    P.Result.ParseOk = true;
    P.Result.Result.Status = SolveStatus::Unknown;
    P.Result.Result.Note =
        "query lost to repeated worker crashes (requeue-once exhausted)";
    P.State = Pending::Done;
    ++DoneCount;
    ++Stats.Lost;
  }

  void crashWorker(unsigned Index) {
    WorkerProc &W = Workers[Index];
    if (!W.Alive)
      return;
    W.Alive = false;
    W.Ready = false;
    ::close(W.Fd);
    W.Fd = -1;
    int Status = 0;
    ::waitpid(W.Pid, &Status, 0);
    ++Stats.WorkerCrashes;
    SBD_OBS_INC(DistWorkerCrashes);

    std::vector<uint64_t> ToRequeue;
    for (uint64_t Id : W.InFlight) {
      Pending &P = Queries[Id];
      if (P.State != Pending::Sent)
        continue;
      if (P.Requeued) {
        finalizeLost(Id);
      } else {
        P.Requeued = true;
        P.State = Pending::Queued;
        ++Stats.Requeues;
        SBD_OBS_INC(DistRequeues);
        ToRequeue.push_back(Id);
      }
    }
    W.InFlight.clear();
    std::deque<uint64_t> Unsent;
    Unsent.swap(W.Queue);

    if ((!ToRequeue.empty() || !Unsent.empty() || outstanding()) &&
        aliveCount() == 0)
      spawnWorker(Index, /*Respawn=*/true);

    // Requeued work goes to the front (it has already waited one full
    // round trip); unsent work keeps its order at the back.
    for (uint64_t Id : ToRequeue) {
      int T = firstAlive(Index + 1);
      if (T < 0)
        finalizeLost(Id); // respawn failed too: give the query up
      else
        Workers[T].Queue.push_front(Id);
    }
    for (uint64_t Id : Unsent) {
      int T = firstAlive(Index + 1);
      if (T < 0) {
        finalizeLost(Id);
      } else {
        Workers[T].Queue.push_back(Id);
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Socket I/O
  //===--------------------------------------------------------------------===//

  /// Pushes buffered bytes into the socket until it would block. Returns
  /// false when the peer is gone (caller crashes the worker).
  bool flushOut(WorkerProc &W) {
    while (W.OutPos < W.OutBuf.size()) {
      ssize_t N = ::send(W.Fd, W.OutBuf.data() + W.OutPos,
                         W.OutBuf.size() - W.OutPos, MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          return true;
        return false;
      }
      W.OutPos += static_cast<size_t>(N);
    }
    W.OutBuf.clear();
    W.OutPos = 0;
    return true;
  }

  /// Drains readable bytes and processes every complete frame. Returns
  /// false on EOF/protocol error (caller crashes the worker).
  bool readWorker(unsigned Index) {
    WorkerProc &W = Workers[Index];
    uint8_t Chunk[1 << 16];
    for (;;) {
      ssize_t N = ::recv(W.Fd, Chunk, sizeof(Chunk), 0);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          break;
        return false;
      }
      if (N == 0)
        return false; // EOF: the worker is gone
      W.Reader.feed(Chunk, static_cast<size_t>(N));
      if (N < static_cast<ssize_t>(sizeof(Chunk)))
        break;
    }
    Frame F;
    while (W.Reader.next(F)) {
      switch (F.Type) {
      case FrameType::Ready:
        W.Ready = true;
        break;
      case FrameType::Response: {
        std::optional<WireResponse> Resp = decodeResponse(F.Payload);
        if (!Resp)
          return false;
        handleResponse(W, *Resp);
        break;
      }
      case FrameType::Request:
      case FrameType::Shutdown:
        return false; // workers never send these
      }
    }
    return !W.Reader.error();
  }

  void handleResponse(WorkerProc &W, const WireResponse &Resp) {
    if (Resp.Id >= Queries.size())
      return;
    for (size_t I = 0; I != W.InFlight.size(); ++I) {
      if (W.InFlight[I] == Resp.Id) {
        W.InFlight.erase(W.InFlight.begin() + static_cast<ptrdiff_t>(I));
        break;
      }
    }
    Pending &P = Queries[Resp.Id];
    if (P.State == Pending::Done)
      return; // stale duplicate; first verdict wins
    P.Result = Resp.Result;
    P.State = Pending::Done;
    ++DoneCount;
    SBD_OBS_HIST(DistRpcUs, Clock.elapsedUs() - P.SentAtUs);
  }

  //===--------------------------------------------------------------------===//
  // Dispatch + stealing
  //===--------------------------------------------------------------------===//

  /// Pops the next request id for worker \p Index: its own queue first,
  /// then the tail of the longest queue anywhere (a steal).
  bool popWork(unsigned Index, uint64_t &Id) {
    WorkerProc &W = Workers[Index];
    if (!W.Queue.empty()) {
      Id = W.Queue.front();
      W.Queue.pop_front();
      return true;
    }
    size_t Victim = Workers.size(), Longest = 0;
    for (size_t I = 0; I != Workers.size(); ++I) {
      if (I == Index)
        continue;
      if (Workers[I].Queue.size() > Longest) {
        Longest = Workers[I].Queue.size();
        Victim = I;
      }
    }
    if (Victim == Workers.size())
      return false;
    Id = Workers[Victim].Queue.back();
    Workers[Victim].Queue.pop_back();
    ++Stats.Steals;
    SBD_OBS_INC(DistSteals);
    return true;
  }

  void dispatch() {
    for (unsigned I = 0; I != Workers.size(); ++I) {
      WorkerProc &W = Workers[I];
      if (!W.Alive || !W.Ready)
        continue;
      while (W.InFlight.size() < Opts.MaxInFlightPerWorker) {
        uint64_t Id;
        if (!popWork(I, Id))
          break;
        Pending &P = Queries[Id];
        WireRequest Req;
        Req.Id = Id;
        Req.Pattern = P.Q.Pattern;
        Req.Opts = P.Q.Opts;
        encodeRequest(W.OutBuf, Req);
        P.State = Pending::Sent;
        P.SentAtUs = Clock.elapsedUs();
        W.InFlight.push_back(Id);
        ++Stats.Dispatched;
        SBD_OBS_INC(DistDispatched);
        SBD_OBS_HIST(DistQueueDepth, W.Queue.size());
        if (!flushOut(W)) {
          crashWorker(I);
          break;
        }
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Event loop
  //===--------------------------------------------------------------------===//

  /// One poll round: dispatch what fits, wait for socket events (bounded
  /// by \p TimeoutMs and the earliest RPC deadline), handle them.
  void pump(int TimeoutMs) {
    dispatch();
    if (DoneCount == Queries.size())
      return;

    std::vector<pollfd> Pfds;
    std::vector<unsigned> PfdWorker;
    for (unsigned I = 0; I != Workers.size(); ++I) {
      WorkerProc &W = Workers[I];
      if (!W.Alive)
        continue;
      pollfd P{};
      P.fd = W.Fd;
      P.events = POLLIN;
      if (W.OutPos < W.OutBuf.size())
        P.events |= POLLOUT;
      Pfds.push_back(P);
      PfdWorker.push_back(I);
    }
    if (Pfds.empty()) {
      // Everyone died at once with the loop idle; crashWorker() respawns
      // on the next crash path, but reach here only if spawn failed.
      int T = firstAlive(0);
      if (T < 0 && outstanding())
        spawnWorker(0, /*Respawn=*/true);
      return;
    }

    int Timeout = TimeoutMs;
    if (Opts.RpcTimeoutMs > 0) {
      int64_t Earliest = -1;
      for (const WorkerProc &W : Workers)
        for (uint64_t Id : W.InFlight)
          if (Earliest < 0 || Queries[Id].SentAtUs < Earliest)
            Earliest = Queries[Id].SentAtUs;
      if (Earliest >= 0) {
        int64_t DeadlineMs =
            (Earliest + Opts.RpcTimeoutMs * 1000 - Clock.elapsedUs()) / 1000 +
            1;
        if (DeadlineMs < 0)
          DeadlineMs = 0;
        if (Timeout < 0 || DeadlineMs < Timeout)
          Timeout = static_cast<int>(DeadlineMs);
      }
    }

    int N = ::poll(Pfds.data(), Pfds.size(), Timeout);
    if (N < 0 && errno != EINTR)
      return;

    for (size_t K = 0; K != Pfds.size(); ++K) {
      unsigned I = PfdWorker[K];
      WorkerProc &W = Workers[I];
      if (!W.Alive)
        continue; // crashed while handling an earlier fd this round
      if (Pfds[K].revents & POLLOUT) {
        if (!flushOut(W)) {
          crashWorker(I);
          continue;
        }
      }
      if (Pfds[K].revents & (POLLIN | POLLHUP | POLLERR)) {
        if (!readWorker(I))
          crashWorker(I);
      }
    }

    // RPC deadline sweep: a worker sitting on an expired request is
    // presumed wedged — kill it so the crash path requeues its work.
    if (Opts.RpcTimeoutMs > 0) {
      int64_t Now = Clock.elapsedUs();
      for (unsigned I = 0; I != Workers.size(); ++I) {
        WorkerProc &W = Workers[I];
        if (!W.Alive)
          continue;
        bool Expired = false;
        for (uint64_t Id : W.InFlight) {
          if (Queries[Id].State == Pending::Sent &&
              Now - Queries[Id].SentAtUs > Opts.RpcTimeoutMs * 1000) {
            Expired = true;
            break;
          }
        }
        if (Expired) {
          ++Stats.Timeouts;
          SBD_OBS_INC(DistTimeouts);
          ::kill(W.Pid, SIGKILL);
          crashWorker(I);
        }
      }
    }

    dispatch();
  }

  //===--------------------------------------------------------------------===//
  // Submission + drain
  //===--------------------------------------------------------------------===//

  unsigned shardOf(const BatchQuery &Q) {
    // Recycle the hashing arena periodically — handles never escape this
    // function, so a reset only costs re-interning.
    if (++ShardParses % 512 == 0)
      ShardM = std::make_unique<RegexManager>();
    RegexParseResult Parsed = parseRegex(*ShardM, Q.Pattern);
    std::string Key;
    if (Parsed.Ok)
      Key = cache::canonicalVerdictKey(*ShardM, Parsed.Value, Q.Opts);
    if (Key.empty())
      Key = Q.Pattern; // unparseable or oversized: shard by surface syntax
    return static_cast<unsigned>(hashBytes(Key) % Opts.NumShards);
  }

  uint64_t submit(const BatchQuery &Q) {
    uint64_t Id = Queries.size();
    unsigned Shard = shardOf(Q);
    Pending P;
    P.Q = Q;
    P.Shard = Shard;
    Queries.push_back(std::move(P));
    unsigned HomeSlot = Shard % Opts.NumWorkers;
    int Home = firstAlive(HomeSlot);
    if (Home < 0) {
      spawnWorker(HomeSlot, /*Respawn=*/true);
      Home = firstAlive(HomeSlot);
    }
    if (Home < 0) {
      finalizeLost(Id);
      return Id;
    }
    Workers[Home].Queue.push_back(Id);

    // Backpressure: hold the submitter inside the event loop until the
    // backlog fits the admission bound again.
    size_t Bound =
        size_t{Opts.MaxInFlightPerWorker} * Workers.size() * 4 + 16;
    pump(0);
    while (outstanding() > Bound)
      pump(100);
    return Id;
  }

  std::vector<BatchResult> drain() {
    while (DoneCount < Queries.size())
      pump(200);
    // Graceful shutdown: one Shutdown frame each, flushed, then EOF.
    for (unsigned I = 0; I != Workers.size(); ++I) {
      WorkerProc &W = Workers[I];
      if (!W.Alive)
        continue;
      encodeShutdown(W.OutBuf);
      // The socket buffer trivially fits one 5-byte frame; poll out the
      // backlog if an earlier write was short.
      while (W.OutPos < W.OutBuf.size()) {
        pollfd P{};
        P.fd = W.Fd;
        P.events = POLLOUT;
        if (::poll(&P, 1, 1000) <= 0)
          break;
        if (!flushOut(W))
          break;
      }
      if (W.OutPos >= W.OutBuf.size())
        flushOut(W);
      ::close(W.Fd);
      W.Fd = -1;
      int Status = 0;
      ::waitpid(W.Pid, &Status, 0);
      W.Alive = false;
    }
    Drained = true;
    std::vector<BatchResult> Out;
    Out.reserve(Queries.size());
    for (Pending &P : Queries)
      Out.push_back(std::move(P.Result));
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// DistSolver facade
//===----------------------------------------------------------------------===//

DistSolver::DistSolver(const DistOptions &Options)
    : I(std::make_unique<Impl>(Options)) {}

DistSolver::~DistSolver() = default;

uint64_t DistSolver::submit(const BatchQuery &Q) { return I->submit(Q); }

std::vector<BatchResult> DistSolver::drain() { return I->drain(); }

std::vector<BatchResult>
DistSolver::solveAll(const std::vector<BatchQuery> &Queries) {
  for (const BatchQuery &Q : Queries)
    submit(Q);
  return drain();
}

const DistStats &DistSolver::stats() const { return I->Stats; }
