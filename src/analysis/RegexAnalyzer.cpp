//===- analysis/RegexAnalyzer.cpp - Pre-solve structural analysis -----------===//

#include "analysis/RegexAnalyzer.h"

#include "support/Debug.h"
#include "support/Metrics.h"

#include <algorithm>
#include <set>

using namespace sbd;
using namespace sbd::analysis;

const char *sbd::analysis::reClassName(ReClass C) {
  switch (C) {
  case ReClass::Literal:
    return "literal";
  case ReClass::Sparse:
    return "sparse";
  case ReClass::KleeneOnly:
    return "kleene_only";
  case ReClass::BooleanHeavy:
    return "boolean_heavy";
  case ReClass::CounterHeavy:
    return "counter_heavy";
  case ReClass::Adversarial:
    return "adversarial";
  }
  return "?";
}

namespace {

uint32_t satAdd32(uint32_t A, uint32_t B) {
  return A > UINT32_MAX - B ? UINT32_MAX : A + B;
}

uint64_t satMul64(uint64_t A, uint64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > BlowupSat / B)
    return BlowupSat;
  uint64_t P = A * B;
  return P > BlowupSat ? BlowupSat : P;
}

uint32_t floorLog2(uint64_t V) {
  uint32_t L = 0;
  while (V >>= 1)
    ++L;
  return L;
}

/// The risk formula of DESIGN.md §14. Integer-only so the score is
/// bit-identical across platforms and manager rebuilds.
uint32_t riskScore(const RegexFeatures &F) {
  uint64_t R = 0;
  // Nested unbounded iteration: the classic ReDoS shape.
  if (F.StarHeight >= 2)
    R += std::min<uint64_t>(50, 25 * (uint64_t(F.StarHeight) - 1));
  // Bounded-counter unrolling pressure, log-scaled.
  R += std::min<uint64_t>(40, 10 * floorLog2(F.CounterBlowup));
  // Complement under iteration forces determinization of the loop body.
  if (F.StarHeight > 0)
    R += 15 * std::min<uint32_t>(4, F.ComplDepth);
  // Raw pattern bulk: large trees cost states even without blow-up.
  R += std::min<uint64_t>(10, F.TreeSize / 64);
  // Wide predicate alphabets multiply the minterm partition.
  if (F.NumPred > 8)
    R += std::min<uint64_t>(10, (uint64_t(F.NumPred) - 8) * 2);
  return static_cast<uint32_t>(std::min<uint64_t>(100, R));
}

/// First-match classification over the feature record (DESIGN.md §14).
ReClass classify(const RegexFeatures &F) {
  if (F.Risk >= RiskAdversarial)
    return ReClass::Adversarial;
  if (F.CounterBlowup > CounterHeavyBlowup)
    return ReClass::CounterHeavy;
  if (F.NumCompl > 0 || F.NumInter > 0)
    return ReClass::BooleanHeavy;
  if (F.PrefixExact && F.PrefixComplete && !F.EmptyLang)
    return ReClass::Literal;
  if (F.NumStar > 0 || F.NumLoop > 0)
    return ReClass::KleeneOnly;
  return ReClass::Sparse;
}

/// Copies Src's prefix word into F starting at F.PrefixLen, clamping at the
/// cap. Returns false when truncation happened.
bool appendPrefix(RegexFeatures &F, const uint32_t *Word, uint32_t Len) {
  uint32_t I = 0;
  for (; I != Len && F.PrefixLen < RegexFeatures::PrefixCap; ++I)
    F.Prefix[F.PrefixLen++] = Word[I];
  return I == Len;
}

} // namespace

const RegexFeatures &RegexAnalyzer::analyze(Re R) {
  if (R.Id < Done.size() && Done[R.Id] && Memo[R.Id].DagSize != 0) {
    SBD_OBS_INC(AnalysisCacheHits);
    return Memo[R.Id];
  }
  fold(R);
  return Memo[R.Id];
}

void RegexAnalyzer::fold(Re Root) {
  size_t N = M.numNodes();
  if (Memo.size() < N) {
    Memo.resize(N);
    Done.resize(N, 0);
    Mark.resize(N, 0);
  }

  // Iterative post-order over the not-yet-folded sub-DAG. Explicit stack:
  // literal patterns intern as right-nested concat chains as deep as the
  // word is long, which would overflow the call stack.
  struct Frame {
    Re Node;
    uint32_t NextKid;
  };
  std::vector<Frame> Stack;
  Stack.push_back({Root, 0});
  while (!Stack.empty()) {
    Frame &F = Stack.back();
    if (Done[F.Node.Id]) {
      Stack.pop_back();
      continue;
    }
    const RegexNode &Node = M.node(F.Node);
    if (F.NextKid < Node.Kids.size()) {
      Re Kid = Node.Kids[F.NextKid++];
      if (!Done[Kid.Id])
        Stack.push_back({Kid, 0});
      continue;
    }
    // All kids folded: synthesize this node's record.
    RegexFeatures R;
    R.TreeSize = Node.Size;
    R.StarHeight = Node.StarHeight;
    R.Nullable = Node.Nullable;
    for (Re Kid : Node.Kids) {
      const RegexFeatures &K = Memo[Kid.Id];
      R.NumPred = satAdd32(R.NumPred, K.NumPred);
      R.NumConcat = satAdd32(R.NumConcat, K.NumConcat);
      R.NumStar = satAdd32(R.NumStar, K.NumStar);
      R.NumLoop = satAdd32(R.NumLoop, K.NumLoop);
      R.NumUnion = satAdd32(R.NumUnion, K.NumUnion);
      R.NumInter = satAdd32(R.NumInter, K.NumInter);
      R.NumCompl = satAdd32(R.NumCompl, K.NumCompl);
      R.BooleanDepth = std::max(R.BooleanDepth, K.BooleanDepth);
      R.ComplDepth = std::max(R.ComplDepth, K.ComplDepth);
      R.MaxLoopBound = std::max(R.MaxLoopBound, K.MaxLoopBound);
      R.CounterBlowup = std::max(R.CounterBlowup, K.CounterBlowup);
    }

    switch (Node.Kind) {
    case RegexKind::Empty:
      R.EmptyLang = true;
      break;
    case RegexKind::Epsilon:
      R.PrefixExact = true;
      break;
    case RegexKind::Pred: {
      R.NumPred = satAdd32(R.NumPred, 1);
      const CharSet &P = M.predSet(F.Node);
      if (P.count() == 1) {
        auto C = P.sample();
        if (!C)
          sbd_unreachable("singleton CharSet must sample");
        R.Prefix[0] = *C;
        R.PrefixLen = 1;
        R.PrefixExact = true;
      }
      break;
    }
    case RegexKind::Concat: {
      R.NumConcat = satAdd32(R.NumConcat, 1);
      const RegexFeatures &A = Memo[Node.Kids[0].Id];
      const RegexFeatures &B = Memo[Node.Kids[1].Id];
      if (A.EmptyLang || B.EmptyLang) {
        R.EmptyLang = true;
        break;
      }
      if (A.PrefixExact && A.PrefixComplete) {
        // L(A) = {w}: every word of A·B starts with w ++ prefix(B).
        bool Fit = appendPrefix(R, A.Prefix, A.PrefixLen);
        Fit = Fit && appendPrefix(R, B.Prefix, B.PrefixLen);
        R.PrefixComplete = Fit && B.PrefixComplete;
        R.PrefixExact = Fit && B.PrefixExact && B.PrefixComplete;
      } else {
        // prefix(A) prefixes every a ∈ A, hence every a·b. (A nullable
        // forces prefix(A) = ε, so this stays sound for short words.)
        appendPrefix(R, A.Prefix, A.PrefixLen);
        R.PrefixComplete = A.PrefixComplete;
      }
      break;
    }
    case RegexKind::Star:
      R.NumStar = satAdd32(R.NumStar, 1);
      break;
    case RegexKind::Loop: {
      R.NumLoop = satAdd32(R.NumLoop, 1);
      const RegexFeatures &K = Memo[Node.Kids[0].Id];
      uint32_t Hi = Node.LoopMax == LoopInf ? Node.LoopMin : Node.LoopMax;
      R.MaxLoopBound = std::max(R.MaxLoopBound, std::max(Node.LoopMin, Hi));
      // Blow-up multiplier: the loop's upper repetition count (its min for
      // {m,}, whose tail behaves like a star).
      R.CounterBlowup =
          satMul64(K.CounterBlowup, std::max<uint64_t>(1, Hi));
      if (K.EmptyLang && Node.LoopMin > 0) {
        R.EmptyLang = true;
      } else if (Node.LoopMin > 0 && K.PrefixExact && K.PrefixComplete) {
        // Body is the single word w: the loop must start with w^min.
        bool Fit = true;
        for (uint32_t I = 0; Fit && I != Node.LoopMin; ++I)
          Fit = appendPrefix(R, K.Prefix, K.PrefixLen);
        R.PrefixComplete = Fit;
        R.PrefixExact = Fit && Node.LoopMin == Node.LoopMax;
      } else if (Node.LoopMin > 0) {
        appendPrefix(R, K.Prefix, K.PrefixLen);
        R.PrefixComplete = K.PrefixComplete;
      }
      break;
    }
    case RegexKind::Union: {
      R.NumUnion = satAdd32(R.NumUnion, 1);
      // Longest common prefix over the kids that can contribute words.
      bool First = true;
      bool AllComplete = true;
      for (Re Kid : Node.Kids) {
        const RegexFeatures &K = Memo[Kid.Id];
        if (K.EmptyLang)
          continue;
        AllComplete = AllComplete && K.PrefixComplete;
        if (First) {
          appendPrefix(R, K.Prefix, K.PrefixLen);
          First = false;
          continue;
        }
        uint32_t L = 0;
        while (L < R.PrefixLen && L < K.PrefixLen &&
               R.Prefix[L] == K.Prefix[L])
          ++L;
        R.PrefixLen = L;
      }
      if (First) // every kid was provably empty (smart ctors collapse this)
        R.EmptyLang = true;
      R.PrefixComplete = AllComplete;
      break;
    }
    case RegexKind::Inter: {
      R.NumInter = satAdd32(R.NumInter, 1);
      R.BooleanDepth = satAdd32(R.BooleanDepth, 1);
      // L ⊆ L(kid) for every kid: any kid's prefix is sound; keep the
      // longest. (If the kids conflict the language is empty and every
      // prefix claim holds vacuously.)
      const RegexFeatures *Best = nullptr;
      for (Re Kid : Node.Kids) {
        const RegexFeatures &K = Memo[Kid.Id];
        if (K.EmptyLang)
          R.EmptyLang = true;
        if (!Best || K.PrefixLen > Best->PrefixLen)
          Best = &K;
      }
      if (Best && !R.EmptyLang) {
        appendPrefix(R, Best->Prefix, Best->PrefixLen);
        R.PrefixComplete = Best->PrefixComplete;
      }
      break;
    }
    case RegexKind::Compl:
      R.NumCompl = satAdd32(R.NumCompl, 1);
      R.BooleanDepth = satAdd32(R.BooleanDepth, 1);
      R.ComplDepth = satAdd32(R.ComplDepth, 1);
      break;
    }

    // ν(R) ⇒ ε ∈ L(R) ⇒ the only sound required prefix is ε.
    if (Node.Nullable && R.PrefixLen > 0) {
      R.PrefixLen = 0;
      R.PrefixExact = false;
      R.PrefixComplete = true;
      std::fill(std::begin(R.Prefix), std::end(R.Prefix), 0u);
    }
    if (R.EmptyLang) {
      R.PrefixLen = 0;
      R.PrefixExact = false;
      R.PrefixComplete = true;
      std::fill(std::begin(R.Prefix), std::end(R.Prefix), 0u);
    }

    R.Risk = riskScore(R);
    R.Class = classify(R);
    Memo[F.Node.Id] = R;
    Done[F.Node.Id] = 1;
    ++NodesAnalyzed;
    SBD_OBS_INC(AnalysisNodesVisited);
    Stack.pop_back();
  }

  // Root-level DAG statistics for the requested node: distinct reachable
  // ids and distinct predicate CharSets, via one epoch-stamped walk. These
  // are only exact for `Root` itself (sub-records keep the values from
  // when they were a fold root, or zero); the router and the CLI only read
  // them at the root.
  RegexFeatures &RootF = Memo[Root.Id];
  if (RootF.DagSize == 0) {
    ++Epoch;
    std::set<uint32_t> PredIdxs;
    uint32_t Count = 0;
    std::vector<Re> Walk = {Root};
    Mark[Root.Id] = Epoch;
    while (!Walk.empty()) {
      Re Cur = Walk.back();
      Walk.pop_back();
      ++Count;
      const RegexNode &Node = M.node(Cur);
      if (Node.Kind == RegexKind::Pred)
        PredIdxs.insert(Node.PredIdx);
      for (Re Kid : Node.Kids)
        if (Mark[Kid.Id] != Epoch) {
          Mark[Kid.Id] = Epoch;
          Walk.push_back(Kid);
        }
    }
    RootF.DagSize = Count;
    RootF.DistinctPreds = static_cast<uint32_t>(PredIdxs.size());
    RootF.MintermBound = uint64_t(1)
                         << std::min<uint32_t>(30, RootF.DistinctPreds);
  }
}

uint64_t sbd::analysis::predictedStateBound(const RegexFeatures &F) {
  constexpr uint64_t Cap = uint64_t(1) << 30;
  uint64_t Dag = std::max<uint64_t>(1, F.DagSize);
  if (F.CounterBlowup > Cap / Dag)
    return Cap;
  return std::min(Cap, Dag * F.CounterBlowup);
}

std::string RegexFeatures::json() const {
  char Buf[640];
  int N = std::snprintf(
      Buf, sizeof(Buf),
      "{\"class\": \"%s\", \"risk\": %u, \"tree_size\": %u, "
      "\"dag_size\": %u, \"star_height\": %u, \"boolean_depth\": %u, "
      "\"compl_depth\": %u, \"counter_blowup\": %llu, "
      "\"max_loop_bound\": %u, \"distinct_preds\": %u, "
      "\"minterm_bound\": %llu, \"nullable\": %s, \"empty_lang\": %s, "
      "\"counts\": {\"pred\": %u, \"concat\": %u, \"star\": %u, "
      "\"loop\": %u, \"union\": %u, \"inter\": %u, \"compl\": %u}, "
      "\"prefix_len\": %u, \"prefix_exact\": %s, \"prefix_complete\": %s, "
      "\"prefix\": [",
      reClassName(Class), Risk, TreeSize, DagSize, StarHeight, BooleanDepth,
      ComplDepth, static_cast<unsigned long long>(CounterBlowup),
      MaxLoopBound, DistinctPreds,
      static_cast<unsigned long long>(MintermBound),
      Nullable ? "true" : "false", EmptyLang ? "true" : "false", NumPred,
      NumConcat, NumStar, NumLoop, NumUnion, NumInter, NumCompl, PrefixLen,
      PrefixExact ? "true" : "false", PrefixComplete ? "true" : "false");
  if (N <= 0 || static_cast<size_t>(N) >= sizeof(Buf))
    sbd_unreachable("features JSON truncated");
  std::string Out(Buf, static_cast<size_t>(N));
  for (uint32_t I = 0; I != PrefixLen; ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(Prefix[I]);
  }
  Out += "]}";
  return Out;
}
