//===- analysis/Audit.h - Term-DAG invariant auditor (sbd::audit) -----------===//
///
/// \file
/// Deep structural validators for the hash-consed term DAGs. The smart
/// constructors establish the paper's similarity laws (Regex.h header
/// comment, Section 3) and the NNF/clean-branch discipline of transition
/// regexes (Section 4.1) *at construction time*; this subsystem re-verifies
/// them on the live arenas so that refactors of the interning/memoization
/// hot paths cannot silently corrupt the algebra the solver's soundness
/// rests on.
///
/// Three layers:
///
///  - Per-node checkers (`checkReNode`, `checkTrNode`, `checkIntervals`,
///    `checkDnf`): O(fan-out) validation of one interned node against the
///    similarity laws, the stored-hash/derived-attribute caches, and the
///    canonical interval form of the character algebra. Header-inline so the
///    arena code can run them at intern time without a link dependency on
///    the analysis library.
///
///  - Arena walkers (`checkRegexArena`, `checkTrArena`, `checkAll`,
///    Audit.cpp): full passes that additionally verify hash-cons
///    canonicality — no two structurally equal nodes with distinct ids —
///    and DAG topology (children precede parents).
///
///  - Build hooks (`SBD_AUDIT_*` in AuditHooks.h): under `-DSBD_AUDIT=ON`
///    every fresh intern is checked immediately, every memoized DNF result
///    is validated for clean-branch form, and every `checkSat` exit runs the
///    full arena audit. Violation counts feed the `sbd::obs` registry
///    (`audit_nodes_checked` / `audit_violations`). The default build
///    compiles all hooks out.
///
/// Violations are diagnostics, not exceptions: auditors never mutate or
/// abort, they return a `Report` so tests can assert on specific kinds and
/// production embeddings can export the counts.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_ANALYSIS_AUDIT_H
#define SBD_ANALYSIS_AUDIT_H

#include "core/TransitionRegex.h"
#include "re/Regex.h"
#include "support/Hashing.h"
#include "support/Metrics.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace sbd {
namespace audit {

/// Every invariant class the auditor can report. Negative tests corrupt
/// nodes to prove each kind is actually detectable.
enum class ViolationKind : uint8_t {
  // --- Regex arena (similarity laws of Section 3 / Regex.h) ---------------
  ReDuplicateNode,   ///< two structurally equal nodes with distinct ids
  ReStaleHash,       ///< stored structural hash != recomputed hash
  ReBadTopology,     ///< child id >= node id (children must precede parents)
  ReBadArity,        ///< kid-count impossible for the node kind
  ReNestedBoolean,   ///< AND inside AND / OR inside OR (must be flattened)
  ReUnsortedOperands,///< |/& operand list not strictly sorted (or duplicated)
  ReUnmergedPreds,   ///< more than one predicate leaf under one |/& node
  ReAbsorbableChild, ///< ⊥/.*/ε child a smart constructor must have removed
  ReLeftNestedConcat,///< concat not right-associated (Theorem 7.3 form)
  ReDoubleNegation,  ///< ~~R survived (must collapse to R)
  ReBadLoopBounds,   ///< loop bounds a smart constructor must have rewritten
  ReBadNullable,     ///< cached ν(R) != recomputed from children
  ReBadMetrics,      ///< cached Size/NumPreds/StarHeight != recomputed
  ReEmptyPred,       ///< predicate leaf with ⊥ charset (must collapse to ⊥)
  // --- Character algebra (canonical interval form) -------------------------
  CsInvertedInterval,///< interval with Lo > Hi
  CsUnsortedIntervals,///< intervals not sorted by Lo
  CsOverlappingIntervals, ///< intervals intersect
  CsAdjacentIntervals,    ///< touching intervals not coalesced
  CsOutOfDomain,     ///< code point above 0x10FFFF
  // --- Transition-regex arena (NNF + clean DNF, Section 4.1) ---------------
  TrDuplicateNode,   ///< two structurally equal Tr nodes with distinct ids
  TrStaleHash,       ///< stored hash != recomputed hash
  TrBadTopology,     ///< child id >= node id
  TrBadArity,        ///< kid-count impossible for the Tr kind
  TrNestedBoolean,   ///< Union inside Union / Inter inside Inter
  TrUnsortedOperands,///< Union/Inter operands not strictly sorted
  TrUnmergedLeaves,  ///< more than one ERE leaf under one Union/Inter
  TrAbsorbableChild, ///< ⊥/.* leaf child a constructor must have removed
  TrTrivialIte,      ///< ite guard ⊥/⊤, equal branches, or collapsible nest
  TrUnsatIteGuard,   ///< ite guard unsatisfiable (⊥) — breaks the ite rule
  TrNotDnf,          ///< Inter node inside a claimed-DNF transition regex
  TrUnsatBranch,     ///< DNF path condition unsatisfiable (branch not clean)
  // --- Compressed exploration (PR 4: dense rows over minterm ids) ----------
  DfaRowMismatch,    ///< dense successor row disagrees with uncompressed δdnf
  // --- Compiled serving path (PR 6: frozen state-major tables) --------------
  CompiledTableMismatch, ///< packed table entry disagrees with a fresh δdnf row

  NumKinds ///< sentinel — keep last
};

constexpr size_t NumViolationKinds =
    static_cast<size_t>(ViolationKind::NumKinds);

/// Stable snake_case name for diagnostics and JSON output.
inline const char *kindName(ViolationKind K) {
  switch (K) {
  case ViolationKind::ReDuplicateNode: return "re_duplicate_node";
  case ViolationKind::ReStaleHash: return "re_stale_hash";
  case ViolationKind::ReBadTopology: return "re_bad_topology";
  case ViolationKind::ReBadArity: return "re_bad_arity";
  case ViolationKind::ReNestedBoolean: return "re_nested_boolean";
  case ViolationKind::ReUnsortedOperands: return "re_unsorted_operands";
  case ViolationKind::ReUnmergedPreds: return "re_unmerged_preds";
  case ViolationKind::ReAbsorbableChild: return "re_absorbable_child";
  case ViolationKind::ReLeftNestedConcat: return "re_left_nested_concat";
  case ViolationKind::ReDoubleNegation: return "re_double_negation";
  case ViolationKind::ReBadLoopBounds: return "re_bad_loop_bounds";
  case ViolationKind::ReBadNullable: return "re_bad_nullable";
  case ViolationKind::ReBadMetrics: return "re_bad_metrics";
  case ViolationKind::ReEmptyPred: return "re_empty_pred";
  case ViolationKind::CsInvertedInterval: return "cs_inverted_interval";
  case ViolationKind::CsUnsortedIntervals: return "cs_unsorted_intervals";
  case ViolationKind::CsOverlappingIntervals:
    return "cs_overlapping_intervals";
  case ViolationKind::CsAdjacentIntervals: return "cs_adjacent_intervals";
  case ViolationKind::CsOutOfDomain: return "cs_out_of_domain";
  case ViolationKind::TrDuplicateNode: return "tr_duplicate_node";
  case ViolationKind::TrStaleHash: return "tr_stale_hash";
  case ViolationKind::TrBadTopology: return "tr_bad_topology";
  case ViolationKind::TrBadArity: return "tr_bad_arity";
  case ViolationKind::TrNestedBoolean: return "tr_nested_boolean";
  case ViolationKind::TrUnsortedOperands: return "tr_unsorted_operands";
  case ViolationKind::TrUnmergedLeaves: return "tr_unmerged_leaves";
  case ViolationKind::TrAbsorbableChild: return "tr_absorbable_child";
  case ViolationKind::TrTrivialIte: return "tr_trivial_ite";
  case ViolationKind::TrUnsatIteGuard: return "tr_unsat_ite_guard";
  case ViolationKind::TrNotDnf: return "tr_not_dnf";
  case ViolationKind::TrUnsatBranch: return "tr_unsat_branch";
  case ViolationKind::DfaRowMismatch: return "dfa_row_mismatch";
  case ViolationKind::CompiledTableMismatch: return "compiled_table_mismatch";
  case ViolationKind::NumKinds: break;
  }
  return "?";
}

/// One detected invariant break, anchored at an arena node (or interval-list
/// index for raw charset checks).
struct Violation {
  ViolationKind Kind;
  uint32_t NodeId;
  std::string Detail;
};

/// Audit outcome: per-kind counts (always exact) plus the first
/// `MaxDetailed` violations with per-node diagnostics.
class Report {
public:
  /// Detail capture is capped so a systematically corrupted arena cannot
  /// balloon the report; the counts keep the true totals.
  static constexpr size_t MaxDetailed = 256;

  void add(ViolationKind K, uint32_t NodeId, std::string Detail) {
    ++Counts[static_cast<size_t>(K)];
    ++Total;
    if (Violations.size() < MaxDetailed)
      Violations.push_back({K, NodeId, std::move(Detail)});
  }

  /// True when no violation was recorded.
  bool ok() const { return Total == 0; }
  /// Total violations (all kinds).
  uint64_t total() const { return Total; }
  /// Violations of one kind.
  uint64_t count(ViolationKind K) const {
    return Counts[static_cast<size_t>(K)];
  }
  /// Nodes/interval-lists the audit visited (coverage diagnostic).
  uint64_t nodesChecked() const { return NodesChecked; }
  void noteChecked(uint64_t N = 1) { NodesChecked += N; }

  const std::vector<Violation> &violations() const { return Violations; }

  /// Folds another report into this one (counts, coverage, capped details).
  Report &operator+=(const Report &O) {
    for (size_t I = 0; I != NumViolationKinds; ++I)
      Counts[I] += O.Counts[I];
    Total += O.Total;
    NodesChecked += O.NodesChecked;
    for (const Violation &V : O.Violations) {
      if (Violations.size() >= MaxDetailed)
        break;
      Violations.push_back(V);
    }
    return *this;
  }

  /// Human-readable multi-line rendering ("audit: ok, N nodes" or one line
  /// per detailed violation plus per-kind totals).
  std::string str() const {
    std::string Out = "audit: ";
    if (ok()) {
      Out += "ok, " + std::to_string(NodesChecked) + " nodes checked\n";
      return Out;
    }
    Out += std::to_string(Total) + " violation(s) in " +
           std::to_string(NodesChecked) + " nodes\n";
    for (size_t I = 0; I != NumViolationKinds; ++I)
      if (Counts[I])
        Out += "  " +
               std::string(kindName(static_cast<ViolationKind>(I))) + ": " +
               std::to_string(Counts[I]) + "\n";
    for (const Violation &V : Violations)
      Out += "  node " + std::to_string(V.NodeId) + " [" +
             kindName(V.Kind) + "] " + V.Detail + "\n";
    return Out;
  }

private:
  std::vector<Violation> Violations;
  uint64_t Counts[NumViolationKinds] = {};
  uint64_t Total = 0;
  uint64_t NodesChecked = 0;
};

/// --- Character algebra: canonical interval form ---------------------------

/// Validates a raw interval list against the CharSet canonical form: sorted
/// by Lo, pairwise disjoint, non-adjacent (Hi + 1 < next Lo), every bound
/// within [0, MaxCodePoint]. Takes the raw vector (not a CharSet) so
/// negative tests can feed hand-built non-canonical lists.
inline void checkIntervals(const std::vector<CharRange> &Rs, uint32_t NodeId,
                           Report &Out) {
  Out.noteChecked();
  for (size_t I = 0; I != Rs.size(); ++I) {
    if (Rs[I].Lo > Rs[I].Hi)
      Out.add(ViolationKind::CsInvertedInterval, NodeId,
              "interval " + std::to_string(I) + " has Lo > Hi");
    if (Rs[I].Hi > MaxCodePoint)
      Out.add(ViolationKind::CsOutOfDomain, NodeId,
              "interval " + std::to_string(I) + " exceeds U+10FFFF");
    if (I == 0)
      continue;
    if (Rs[I].Lo < Rs[I - 1].Lo)
      Out.add(ViolationKind::CsUnsortedIntervals, NodeId,
              "interval " + std::to_string(I) + " sorts before predecessor");
    else if (Rs[I].Lo <= Rs[I - 1].Hi)
      Out.add(ViolationKind::CsOverlappingIntervals, NodeId,
              "interval " + std::to_string(I) + " overlaps predecessor");
    else if (Rs[I].Lo == Rs[I - 1].Hi + 1)
      Out.add(ViolationKind::CsAdjacentIntervals, NodeId,
              "interval " + std::to_string(I) +
                  " touches predecessor (not coalesced)");
  }
}

/// --- Regex arena: per-node similarity-law checks --------------------------

namespace detail {

/// Independent recomputation of RegexManager's structural node hash; must
/// stay field-for-field in sync with RegexManager::hashNode.
inline uint64_t recomputeReHash(const RegexNode &N) {
  uint64_t H = hashMix(static_cast<uint64_t>(N.Kind));
  H = hashCombine(H, N.PredIdx);
  H = hashCombine(H, N.LoopMin);
  H = hashCombine(H, N.LoopMax);
  for (Re Kid : N.Kids)
    H = hashCombine(H, Kid.Id);
  return H;
}

/// Structural ⊥ test (the arena interns exactly one Empty node, but the
/// audit never trusts distinguished handles it did not recompute).
inline bool isEmptyNode(const RegexManager &M, Re R) {
  return M.kind(R) == RegexKind::Empty;
}

/// Structural .* test: Star over the full predicate.
inline bool isTopNode(const RegexManager &M, Re R) {
  if (M.kind(R) != RegexKind::Star)
    return false;
  Re Kid = M.node(R).Kids[0];
  return M.kind(Kid) == RegexKind::Pred && M.predSet(Kid).isFull();
}

} // namespace detail

/// Validates one interned regex node against the similarity normal form:
/// flattened/sorted/deduped Boolean operands with no absorbable members,
/// right-associated concat, no double negation, canonical loop bounds, plus
/// the cached hash/ν/size attributes. O(fan-out); uses only the children's
/// stored attributes, so it is safe to call from inside the interning path
/// (children are always interned before their parent).
inline void checkReNode(const RegexManager &M, Re R, Report &Out) {
  Out.noteChecked();
  const RegexNode &N = M.node(R);
  auto bad = [&](ViolationKind K, std::string Detail) {
    Out.add(K, R.Id, std::move(Detail));
  };

  bool TopologyOk = true;
  for (Re Kid : N.Kids)
    if (Kid.Id >= R.Id) {
      bad(ViolationKind::ReBadTopology,
          "child " + std::to_string(Kid.Id) + " does not precede node");
      TopologyOk = false;
    }

  if (N.Hash != detail::recomputeReHash(N))
    bad(ViolationKind::ReStaleHash, "stored hash != recomputed hash");

  // Every check below reads the children's stored attributes; with a
  // forward (or out-of-range) child reference those reads are undefined.
  if (!TopologyOk)
    return;

  // Arity by kind.
  size_t Arity = N.Kids.size();
  bool ArityOk = true;
  switch (N.Kind) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
  case RegexKind::Pred:
    ArityOk = Arity == 0;
    break;
  case RegexKind::Concat:
    ArityOk = Arity == 2;
    break;
  case RegexKind::Star:
  case RegexKind::Loop:
  case RegexKind::Compl:
    ArityOk = Arity == 1;
    break;
  case RegexKind::Union:
  case RegexKind::Inter:
    ArityOk = Arity >= 2;
    break;
  }
  if (!ArityOk) {
    bad(ViolationKind::ReBadArity,
        std::to_string(Arity) + " children is invalid for this kind");
    return; // the shape checks below assume a sane arity
  }

  // Cached-attribute recomputation (ν, Size, ♯, star height).
  bool Nullable = false;
  uint32_t Size = 1, NumPreds = 0, StarHeight = 0;
  for (Re Kid : N.Kids) {
    const RegexNode &K = M.node(Kid);
    Size += K.Size;
    NumPreds += K.NumPreds;
    StarHeight = StarHeight < K.StarHeight ? K.StarHeight : StarHeight;
  }
  switch (N.Kind) {
  case RegexKind::Empty:
  case RegexKind::Pred:
    Nullable = false;
    break;
  case RegexKind::Epsilon:
  case RegexKind::Star:
    Nullable = true;
    break;
  case RegexKind::Concat:
    Nullable = M.nullable(N.Kids[0]) && M.nullable(N.Kids[1]);
    break;
  case RegexKind::Loop:
    Nullable = N.LoopMin == 0;
    break;
  case RegexKind::Union:
    Nullable = false;
    for (Re Kid : N.Kids)
      Nullable = Nullable || M.nullable(Kid);
    break;
  case RegexKind::Inter:
    Nullable = true;
    for (Re Kid : N.Kids)
      Nullable = Nullable && M.nullable(Kid);
    break;
  case RegexKind::Compl:
    Nullable = !M.nullable(N.Kids[0]);
    break;
  }
  if (N.Kind == RegexKind::Pred)
    NumPreds = 1;
  if (N.Kind == RegexKind::Star)
    StarHeight += 1;
  if (N.Kind == RegexKind::Loop && N.LoopMax == LoopInf)
    StarHeight += 1;
  if (N.Nullable != Nullable)
    bad(ViolationKind::ReBadNullable, "cached ν(R) disagrees with children");
  if (N.Size != Size || N.NumPreds != NumPreds || N.StarHeight != StarHeight)
    bad(ViolationKind::ReBadMetrics,
        "cached size/preds/star-height disagree with children");

  // Kind-specific normal forms.
  switch (N.Kind) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
    break;
  case RegexKind::Pred: {
    const CharSet &S = M.predSet(R);
    if (S.isEmpty())
      bad(ViolationKind::ReEmptyPred, "⊥ predicate must intern as Empty");
    checkIntervals(S.ranges(), R.Id, Out);
    break;
  }
  case RegexKind::Concat: {
    if (M.kind(N.Kids[0]) == RegexKind::Concat)
      bad(ViolationKind::ReLeftNestedConcat,
          "left child is a concat (not right-associated)");
    for (Re Kid : N.Kids) {
      if (detail::isEmptyNode(M, Kid))
        bad(ViolationKind::ReAbsorbableChild, "⊥ absorbs a concatenation");
      else if (M.kind(Kid) == RegexKind::Epsilon)
        bad(ViolationKind::ReAbsorbableChild, "ε is the unit of ·");
    }
    break;
  }
  case RegexKind::Star: {
    RegexKind KK = M.kind(N.Kids[0]);
    if (KK == RegexKind::Star)
      bad(ViolationKind::ReAbsorbableChild, "(R*)* must collapse to R*");
    if (KK == RegexKind::Epsilon || KK == RegexKind::Empty)
      bad(ViolationKind::ReAbsorbableChild, "ε*/⊥* must collapse to ε");
    if (KK == RegexKind::Loop && M.node(N.Kids[0]).LoopMin <= 1)
      bad(ViolationKind::ReAbsorbableChild,
          "(R{m,n})* with m <= 1 must collapse to R*");
    break;
  }
  case RegexKind::Loop: {
    Re Kid = N.Kids[0];
    if (N.LoopMin > N.LoopMax)
      bad(ViolationKind::ReBadLoopBounds, "LoopMin > LoopMax");
    if (N.LoopMax == 0)
      bad(ViolationKind::ReBadLoopBounds, "R{0,0} must collapse to ε");
    if (N.LoopMin == 1 && N.LoopMax == 1)
      bad(ViolationKind::ReBadLoopBounds, "R{1,1} must collapse to R");
    if (N.LoopMin == 0 && N.LoopMax == LoopInf)
      bad(ViolationKind::ReBadLoopBounds, "R{0,∞} must intern as R*");
    if (M.nullable(Kid) && N.LoopMin != 0)
      bad(ViolationKind::ReBadLoopBounds,
          "nullable body requires LoopMin == 0 (Section 3 semantics)");
    RegexKind KK = M.kind(Kid);
    if (KK == RegexKind::Epsilon || KK == RegexKind::Empty ||
        KK == RegexKind::Star)
      bad(ViolationKind::ReAbsorbableChild,
          "ε/⊥/R* loop bodies must collapse");
    break;
  }
  case RegexKind::Union:
  case RegexKind::Inter: {
    size_t Preds = 0;
    bool HasEps = false, HasOtherNullable = false;
    for (size_t I = 0; I != N.Kids.size(); ++I) {
      Re Kid = N.Kids[I];
      if (I && !(N.Kids[I - 1] < Kid))
        bad(ViolationKind::ReUnsortedOperands,
            "operand " + std::to_string(I) +
                " not strictly greater than predecessor");
      if (M.kind(Kid) == N.Kind)
        bad(ViolationKind::ReNestedBoolean,
            "operand of the same associative kind must be flattened");
      if (M.kind(Kid) == RegexKind::Pred)
        ++Preds;
      if (detail::isEmptyNode(M, Kid))
        bad(ViolationKind::ReAbsorbableChild,
            N.Kind == RegexKind::Union ? "⊥ is the unit of |"
                                       : "⊥ absorbs &");
      if (detail::isTopNode(M, Kid))
        bad(ViolationKind::ReAbsorbableChild,
            N.Kind == RegexKind::Union ? ".* absorbs |"
                                       : ".* is the unit of &");
      if (M.kind(Kid) == RegexKind::Epsilon)
        HasEps = true;
      else if (M.nullable(Kid))
        HasOtherNullable = true;
    }
    if (Preds > 1)
      bad(ViolationKind::ReUnmergedPreds,
          "predicate leaves must merge through the character algebra");
    if (HasEps && N.Kind == RegexKind::Inter)
      bad(ViolationKind::ReAbsorbableChild,
          "ε under & must collapse the whole node to ε or ⊥");
    if (HasEps && N.Kind == RegexKind::Union && HasOtherNullable)
      bad(ViolationKind::ReAbsorbableChild,
          "ε under | is subsumed by another nullable operand");
    break;
  }
  case RegexKind::Compl: {
    Re Kid = N.Kids[0];
    if (M.kind(Kid) == RegexKind::Compl)
      bad(ViolationKind::ReDoubleNegation, "~~R must collapse to R");
    if (detail::isEmptyNode(M, Kid))
      bad(ViolationKind::ReAbsorbableChild, "~⊥ must intern as .*");
    if (detail::isTopNode(M, Kid))
      bad(ViolationKind::ReAbsorbableChild, "~.* must intern as ⊥");
    break;
  }
  }
}

/// --- Transition-regex arena: per-node NNF checks --------------------------

namespace detail {

/// Independent recomputation of TrManager's structural node hash; must stay
/// field-for-field in sync with TrManager::intern.
inline uint64_t recomputeTrHash(const TrNode &N) {
  uint64_t H = hashMix(static_cast<uint64_t>(N.Kind));
  H = hashCombine(H, N.LeafRe.Id);
  H = hashCombine(H, N.Cond.hash());
  for (Tr Kid : N.Kids)
    H = hashCombine(H, Kid.Id);
  return H;
}

inline bool isBotLeaf(const TrManager &T, Tr X) {
  return T.kind(X) == TrKind::Leaf &&
         isEmptyNode(T.regexManager(), T.node(X).LeafRe);
}

inline bool isTopLeaf(const TrManager &T, Tr X) {
  return T.kind(X) == TrKind::Leaf &&
         isTopNode(T.regexManager(), T.node(X).LeafRe);
}

} // namespace detail

/// Validates one interned transition-regex node: NNF shape (only the four
/// kinds exist; negation was pushed to the ERE leaves by construction),
/// flattened/sorted Boolean operands with merged leaves, satisfiable
/// non-trivial ite guards, and the stored structural hash.
inline void checkTrNode(const TrManager &T, Tr X, Report &Out) {
  Out.noteChecked();
  const TrNode &N = T.node(X);
  auto bad = [&](ViolationKind K, std::string Detail) {
    Out.add(K, X.Id, std::move(Detail));
  };

  bool TopologyOk = true;
  for (Tr Kid : N.Kids)
    if (Kid.Id >= X.Id) {
      bad(ViolationKind::TrBadTopology,
          "child " + std::to_string(Kid.Id) + " does not precede node");
      TopologyOk = false;
    }

  if (N.Hash != detail::recomputeTrHash(N))
    bad(ViolationKind::TrStaleHash, "stored hash != recomputed hash");

  // The kind-specific checks below read the children's stored state; with
  // a forward (or out-of-range) child reference those reads are undefined.
  if (!TopologyOk)
    return;

  switch (N.Kind) {
  case TrKind::Leaf:
    if (!N.Kids.empty())
      bad(ViolationKind::TrBadArity, "leaf must have no children");
    break;
  case TrKind::Ite: {
    if (N.Kids.size() != 2) {
      bad(ViolationKind::TrBadArity, "ite must have exactly two children");
      break;
    }
    checkIntervals(N.Cond.ranges(), X.Id, Out);
    if (N.Cond.isEmpty())
      bad(ViolationKind::TrUnsatIteGuard, "ite guard is ⊥ (dead branch)");
    else if (N.Cond.isFull())
      bad(ViolationKind::TrTrivialIte,
          "ite guard is ⊤ (must collapse to the then-branch)");
    if (N.Kids[0] == N.Kids[1])
      bad(ViolationKind::TrTrivialIte, "equal branches must collapse");
    if (T.kind(N.Kids[0]) == TrKind::Ite &&
        T.node(N.Kids[0]).Cond == N.Cond)
      bad(ViolationKind::TrTrivialIte,
          "then-branch repeats the guard (must collapse)");
    if (T.kind(N.Kids[1]) == TrKind::Ite &&
        T.node(N.Kids[1]).Cond == N.Cond)
      bad(ViolationKind::TrTrivialIte,
          "else-branch repeats the guard (must collapse)");
    break;
  }
  case TrKind::Union:
  case TrKind::Inter: {
    if (N.Kids.size() < 2) {
      bad(ViolationKind::TrBadArity,
          "associative node needs at least two children");
      break;
    }
    size_t Leaves = 0;
    for (size_t I = 0; I != N.Kids.size(); ++I) {
      Tr Kid = N.Kids[I];
      if (I && !(N.Kids[I - 1] < Kid))
        bad(ViolationKind::TrUnsortedOperands,
            "operand " + std::to_string(I) +
                " not strictly greater than predecessor");
      if (T.kind(Kid) == N.Kind)
        bad(ViolationKind::TrNestedBoolean,
            "operand of the same associative kind must be flattened");
      if (T.kind(Kid) == TrKind::Leaf)
        ++Leaves;
      bool Bot = detail::isBotLeaf(T, Kid), Top = detail::isTopLeaf(T, Kid);
      if (Bot || Top)
        bad(ViolationKind::TrAbsorbableChild,
            Bot ? "⊥ leaf must be dropped (|) or absorb (&)"
                : ".* leaf must absorb (|) or be dropped (&)");
    }
    if (Leaves > 1)
      bad(ViolationKind::TrUnmergedLeaves,
          "ERE leaves must merge through the regex algebra");
    break;
  }
  }
}

/// Validates the solver normal form of \p X (Section 4.1): no Inter node
/// anywhere, and every root-to-leaf conditional path has a satisfiable
/// accumulated path condition ("clean" transition regex). Recursive over the
/// conditional tree; call on δdnf results, not on arbitrary nodes.
inline void checkDnf(const TrManager &T, Tr X, Report &Out) {
  struct Walker {
    const TrManager &T;
    Report &Out;
    void walk(Tr Cur, const CharSet &Path) {
      Out.noteChecked();
      const TrNode &N = T.node(Cur);
      switch (N.Kind) {
      case TrKind::Leaf:
        return;
      case TrKind::Ite: {
        if (N.Kids.size() != 2)
          return; // arity damage is checkTrNode's finding
        CharSet PathT = Path.intersectWith(N.Cond);
        CharSet PathF = Path.minus(N.Cond);
        if (PathT.isEmpty())
          Out.add(ViolationKind::TrUnsatBranch, Cur.Id,
                  "then-branch path condition is ⊥ (not pruned)");
        else
          walk(N.Kids[0], PathT);
        if (PathF.isEmpty())
          Out.add(ViolationKind::TrUnsatBranch, Cur.Id,
                  "else-branch path condition is ⊥ (not pruned)");
        else
          walk(N.Kids[1], PathF);
        return;
      }
      case TrKind::Union:
        for (Tr Kid : N.Kids)
          walk(Kid, Path);
        return;
      case TrKind::Inter:
        Out.add(ViolationKind::TrNotDnf, Cur.Id,
                "Inter node inside a DNF transition regex");
        return;
      }
    }
  };
  Walker{T, Out}.walk(X, CharSet::full());
}

/// --- Compressed exploration: dense successor rows (PR 4) ------------------

/// Validates a recorded dense successor row (flattened (witness char,
/// target Re.Id) pairs — see DerivativeGraph::closeWithRow) against a fresh
/// uncompressed arc extraction of \p Dnf. Order-insensitive: the recording
/// expansion may have sorted its arcs (PreferSimplerArcs). A row is
/// consistent iff it has exactly one pair per arc, every pair is justified
/// by an arc whose guard contains the witness and whose target matches, and
/// every arc target occurs in the row.
inline void checkDenseRow(const TrManager &T, Tr Dnf,
                          const std::vector<uint32_t> &Row, uint32_t NodeId,
                          Report &Out) {
  std::vector<TrArc> Arcs = T.arcs(Dnf);
  Out.noteChecked(Arcs.size() ? Arcs.size() : 1);
  if (Row.size() != Arcs.size() * 2) {
    Out.add(ViolationKind::DfaRowMismatch, NodeId,
            "row has " + std::to_string(Row.size() / 2) + " pairs, δdnf has " +
                std::to_string(Arcs.size()) + " arcs");
    return;
  }
  for (size_t I = 0; I < Row.size(); I += 2) {
    uint32_t Ch = Row[I], Tgt = Row[I + 1];
    bool Justified = false;
    for (const TrArc &A : Arcs)
      if (A.Target.Id == Tgt && A.Guard.contains(Ch)) {
        Justified = true;
        break;
      }
    if (!Justified)
      Out.add(ViolationKind::DfaRowMismatch, NodeId,
              "row pair (" + std::to_string(Ch) + ", " +
                  std::to_string(Tgt) + ") matches no δdnf arc");
  }
  for (const TrArc &A : Arcs) {
    bool Present = false;
    for (size_t I = 1; I < Row.size(); I += 2)
      if (Row[I] == A.Target.Id) {
        Present = true;
        break;
      }
    if (!Present)
      Out.add(ViolationKind::DfaRowMismatch, NodeId,
              "δdnf arc target " + std::to_string(A.Target.Id) +
                  " missing from row");
  }
}

/// --- Arena walkers (Audit.cpp, libsbd_analysis) ---------------------------

/// Full audit of a regex arena: every node through checkReNode plus the
/// hash-cons canonicality scan (no two structurally equal nodes with
/// distinct ids).
Report checkRegexArena(const RegexManager &M);

/// Full audit of a transition-regex arena (Tr nodes only; the underlying
/// regex arena is audited separately or via checkAll).
Report checkTrArena(const TrManager &T);

/// Audits everything reachable from a regex manager (nodes + pooled
/// predicate sets).
Report checkAll(const RegexManager &M);

/// Audits a transition-regex arena together with its regex arena — the
/// solver-facing entry point.
Report checkAll(const TrManager &T);

/// --- SBD_AUDIT build hooks ------------------------------------------------

/// Streams a non-ok report to stderr and feeds the violation counts into
/// the sbd::obs registry. Used by the intern-time and checkSat-exit hooks;
/// also callable from embedders that run audits manually.
inline void publish(const Report &R, const char *Where) {
  SBD_OBS_ADD(AuditNodesChecked, R.nodesChecked());
  if (R.ok())
    return;
  SBD_OBS_ADD(AuditViolations, R.total());
  std::fprintf(stderr, "sbd audit [%s]: %s", Where, R.str().c_str());
}

/// Intern-time hook: validates one freshly interned regex node.
inline void hookNewReNode(const RegexManager &M, Re R) {
  Report Out;
  checkReNode(M, R, Out);
  publish(Out, "intern re");
}

/// Intern-time hook: validates one freshly interned transition-regex node.
inline void hookNewTrNode(const TrManager &T, Tr X) {
  Report Out;
  checkTrNode(T, X, Out);
  publish(Out, "intern tr");
}

/// DNF-memoization hook: validates clean-branch form of a fresh δdnf result.
inline void hookDnfResult(const TrManager &T, Tr X) {
  Report Out;
  checkDnf(T, X, Out);
  publish(Out, "dnf");
}

/// Replay-time hook: validates a dense row against re-deriving through the
/// uncompressed δdnf before the solver replays it.
inline void hookDenseRow(const TrManager &T, Tr Dnf,
                         const std::vector<uint32_t> &Row, uint32_t NodeId) {
  Report Out;
  checkDenseRow(T, Dnf, Row, NodeId, Out);
  publish(Out, "dense row");
}

/// checkSat-exit hook: full audit of both arenas (defined in Audit.cpp).
void hookCheckSatExit(const RegexManager &M, const TrManager &T);

} // namespace audit
} // namespace sbd

#endif // SBD_ANALYSIS_AUDIT_H
