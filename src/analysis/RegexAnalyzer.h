//===- analysis/RegexAnalyzer.h - Pre-solve structural analysis -------------===//
///
/// \file
/// A single-pass, memoized bottom-up static analysis over the hash-consed
/// term DAG (DESIGN.md §14). For every node it computes a `RegexFeatures`
/// record — constructor counts, tree vs. DAG size, star height, Boolean
/// nesting depth, a counter blow-up bound (product of loop spans), a
/// minterm-count estimate, a required literal prefix, the nullability
/// skeleton, and an integer ReDoS/state-blow-up risk score — plus a
/// fragment classification used by the portfolio router
/// (portfolio/Portfolio.h), the admission-control cap in
/// RegexSolver::checkSat, the `sbd-analyze` CLI, and the fuzz oracle's
/// analyzer-soundness laws.
///
/// The analysis is O(|DAG|): results are memoized per interned node id in a
/// dense vector, so shared subterms are folded exactly once per manager
/// lifetime and repeated `analyze()` calls are O(1) lookups. Because the
/// arena is append-only, memoized entries never go stale.
///
/// Everything in the record is integral and deterministic: two structurally
/// equal regexes (same toString, any manager) produce identical features.
/// The fuzz oracle enforces this (OracleLaw::AnalyzerStability).
///
//===----------------------------------------------------------------------===//

#ifndef SBD_ANALYSIS_REGEXANALYZER_H
#define SBD_ANALYSIS_REGEXANALYZER_H

#include "re/Regex.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sbd {
namespace analysis {

/// Fragment classification, ordered from tamest to most dangerous. The
/// first matching rule wins (see RegexAnalyzer::classify and DESIGN.md §14
/// for the exact decision table).
enum class ReClass : uint8_t {
  Literal,      ///< exactly one word (possibly empty): concat of singletons
  Sparse,       ///< loop-free and star-free positive fragment
  KleeneOnly,   ///< positive fragment (no ~/&) with iteration
  BooleanHeavy, ///< mentions & or ~ anywhere
  CounterHeavy, ///< bounded-loop blow-up bound above the unroll threshold
  Adversarial,  ///< risk score above threshold: cap before it burns memory
};

/// Stable snake_case name for JSON output and baselines.
const char *reClassName(ReClass C);

/// Saturation ceiling for the counter blow-up bound. Products are clamped
/// here instead of wrapping so comparisons stay monotone.
constexpr uint64_t BlowupSat = UINT64_MAX / 2;

/// Per-node feature record. Plain data, fixed size — a 1M-node arena costs
/// ~100MB of memo at most, and typical arenas are thousands of nodes.
struct RegexFeatures {
  /// Longest literal prefix tracked inline (code points). Longer prefixes
  /// are truncated and marked incomplete.
  static constexpr uint32_t PrefixCap = 8;

  // --- Constructor counts over the syntax *tree* (shared nodes recounted,
  // saturating at UINT32_MAX so the counts compose like RegexNode::Size).
  uint32_t NumPred = 0;
  uint32_t NumConcat = 0;
  uint32_t NumStar = 0;
  uint32_t NumLoop = 0;
  uint32_t NumUnion = 0;
  uint32_t NumInter = 0;
  uint32_t NumCompl = 0;

  // --- Shape.
  uint32_t TreeSize = 0;   ///< syntax-tree node count (RegexNode::Size)
  uint32_t DagSize = 0;    ///< distinct interned nodes reachable
  uint32_t StarHeight = 0; ///< nesting depth of * / unbounded loops
  uint32_t BooleanDepth = 0; ///< max nesting of &/~ on any root path
  uint32_t ComplDepth = 0;   ///< max nesting of ~ alone on any root path
  uint32_t MaxLoopBound = 0; ///< largest finite loop min/max mentioned

  /// Upper bound on the multiplicative state blow-up from bounded loops:
  /// along any root-to-leaf path, the product of (span+1) of the loops
  /// crossed, where span = max-min (LoopInf counts its min). Saturates at
  /// BlowupSat. 1 for loop-free terms.
  uint64_t CounterBlowup = 1;

  /// Number of distinct predicate CharSets reachable (≤ means the minterm
  /// partition has at most 2^DistinctPreds classes).
  uint32_t DistinctPreds = 0;
  /// Minterm-count estimate: min(2^DistinctPreds, 2^30). The derivative
  /// engines' alphabet compressor can never produce more classes.
  uint64_t MintermBound = 1;

  // --- Nullability skeleton.
  bool Nullable = false; ///< ν(R) — mirrored from the node for convenience
  /// Under-approximation: true only when the analysis *proved* L(R) = ∅
  /// without derivatives (Empty leaves propagated through concat/inter).
  bool EmptyLang = false;

  // --- Required literal prefix. Every w ∈ L(R) starts with
  // Prefix[0..PrefixLen). Sound by construction; the fuzz oracle checks it
  // against every accepted word (OracleLaw::AnalyzerPrefix).
  uint32_t Prefix[PrefixCap] = {};
  uint32_t PrefixLen = 0;
  /// L(R) is exactly the single word Prefix[0..PrefixLen).
  bool PrefixExact = false;
  /// PrefixLen was not truncated at PrefixCap.
  bool PrefixComplete = true;

  /// Integer ReDoS/state-blow-up risk score in [0, 100]; see DESIGN.md §14
  /// for the formula. ≥ RiskAdversarial classifies as Adversarial.
  uint32_t Risk = 0;
  /// Fragment classification (first-match over the rules in classify()).
  ReClass Class = ReClass::Sparse;

  /// Serializes the record as a stable JSON object (the `sbd-analyze
  /// --json` / slow-query artifact contract).
  std::string json() const;
};

/// The analyzer. Owns a dense Re.Id-indexed memo; one instance per
/// RegexManager (same lifetime rules as the solver's derivative memos).
class RegexAnalyzer {
public:
  explicit RegexAnalyzer(const RegexManager &Mgr) : M(Mgr) {}

  /// Analyzes R (folding any not-yet-seen reachable nodes) and returns its
  /// feature record. O(new nodes) then O(1); iterative, so deep
  /// right-nested concat chains cannot overflow the stack.
  const RegexFeatures &analyze(Re R);

  /// Memo lookup without analysis; valid only after analyze() covered R.
  const RegexFeatures &cached(Re R) const { return Memo[R.Id]; }

  /// Nodes folded so far (== memo entries filled). Diagnostics.
  size_t nodesAnalyzed() const { return NodesAnalyzed; }

private:
  void fold(Re R);

  const RegexManager &M;
  std::vector<RegexFeatures> Memo;
  std::vector<uint8_t> Done; ///< Memo[i] valid (dense, parallel to arena)
  size_t NodesAnalyzed = 0;

  // Scratch for the root-level DAG walk in fold() (reused across calls).
  std::vector<uint32_t> Mark;
  uint32_t Epoch = 0;
};

/// Classification thresholds (shared with DESIGN.md §14 and the tests).
constexpr uint32_t RiskAdversarial = 60; ///< Risk ≥ this ⇒ Adversarial
constexpr uint64_t CounterHeavyBlowup = 64; ///< CounterBlowup > this ⇒ heavy

/// Coarse upper bound on derivative-graph states a solve may materialize:
/// DagSize · CounterBlowup, clamped at 2^30. Recorded as
/// SolveStats::PredictedStates so every solve audits the prediction.
uint64_t predictedStateBound(const RegexFeatures &F);

} // namespace analysis
} // namespace sbd

#endif // SBD_ANALYSIS_REGEXANALYZER_H
