//===- analysis/Audit.cpp - Term-DAG invariant auditor ----------------------===//

#include "analysis/Audit.h"

#include <unordered_map>
#include <vector>

using namespace sbd;
using namespace sbd::audit;

namespace {

/// Groups node ids by recomputed structural hash and reports structurally
/// equal pairs. \p Eq decides structural equality of two ids; collisions on
/// the 64-bit hash are resolved by the callback, so the scan is exact.
template <typename HashFn, typename EqFn>
void scanDuplicates(size_t NumNodes, ViolationKind Kind, HashFn &&Hash,
                    EqFn &&Eq, Report &Out) {
  std::unordered_map<uint64_t, std::vector<uint32_t>> Buckets;
  Buckets.reserve(NumNodes);
  for (uint32_t Id = 0; Id != NumNodes; ++Id) {
    std::vector<uint32_t> &B = Buckets[Hash(Id)];
    for (uint32_t Prev : B)
      if (Eq(Prev, Id))
        Out.add(Kind, Id,
                "structurally equal to node " + std::to_string(Prev) +
                    " (hash-consing must merge them)");
    B.push_back(Id);
  }
}

} // namespace

Report audit::checkRegexArena(const RegexManager &M) {
  Report Out;
  const uint32_t NumNodes = static_cast<uint32_t>(M.numNodes());
  for (uint32_t Id = 0; Id != NumNodes; ++Id)
    checkReNode(M, Re{Id}, Out);
  scanDuplicates(
      NumNodes, ViolationKind::ReDuplicateNode,
      [&](uint32_t Id) { return detail::recomputeReHash(M.node(Re{Id})); },
      [&](uint32_t A, uint32_t B) {
        const RegexNode &NA = M.node(Re{A}), &NB = M.node(Re{B});
        return NA.Kind == NB.Kind && NA.PredIdx == NB.PredIdx &&
               NA.LoopMin == NB.LoopMin && NA.LoopMax == NB.LoopMax &&
               NA.Kids == NB.Kids;
      },
      Out);
  return Out;
}

Report audit::checkTrArena(const TrManager &T) {
  Report Out;
  const uint32_t NumNodes = static_cast<uint32_t>(T.numNodes());
  for (uint32_t Id = 0; Id != NumNodes; ++Id)
    checkTrNode(T, Tr{Id}, Out);
  scanDuplicates(
      NumNodes, ViolationKind::TrDuplicateNode,
      [&](uint32_t Id) { return detail::recomputeTrHash(T.node(Tr{Id})); },
      [&](uint32_t A, uint32_t B) {
        const TrNode &NA = T.node(Tr{A}), &NB = T.node(Tr{B});
        return NA.Kind == NB.Kind && NA.LeafRe == NB.LeafRe &&
               NA.Cond == NB.Cond && NA.Kids == NB.Kids;
      },
      Out);
  return Out;
}

Report audit::checkAll(const RegexManager &M) { return checkRegexArena(M); }

Report audit::checkAll(const TrManager &T) {
  Report Out = checkRegexArena(T.regexManager());
  Out += checkTrArena(T);
  return Out;
}

void audit::hookCheckSatExit(const RegexManager &M, const TrManager &T) {
  Report Out = checkRegexArena(M);
  Out += checkTrArena(T);
  publish(Out, "checkSat exit");
}
