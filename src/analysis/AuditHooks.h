//===- analysis/AuditHooks.h - Compile-time audit hook macros ---------------===//
///
/// \file
/// The `SBD_AUDIT_*` call-site macros for the invariant auditor. The arena
/// and solver hot paths invoke these unconditionally; in the default build
/// (`SBD_AUDIT=0`) every macro expands to `((void)0)` so the auditor
/// contributes zero code and zero data to the hot path. Configure with
/// `-DSBD_AUDIT=ON` to enable incremental audits at intern time, DNF
/// clean-branch checks at memoization time, and a full arena audit on every
/// `checkSat` exit (see analysis/Audit.h).
///
/// This header is deliberately tiny and self-contained so the re/core
/// libraries can include it without growing a link dependency on
/// libsbd_analysis: all hooks reached from those libraries are
/// header-inline. Only `SBD_AUDIT_CHECKSAT_EXIT` calls into the library,
/// and only the solver (which links it) uses that macro.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_ANALYSIS_AUDITHOOKS_H
#define SBD_ANALYSIS_AUDITHOOKS_H

#ifndef SBD_AUDIT
#define SBD_AUDIT 0
#endif

#if SBD_AUDIT

#include "analysis/Audit.h"

/// Validates a freshly interned regex node (call only on the miss path).
#define SBD_AUDIT_RE_NODE(M, R) (::sbd::audit::hookNewReNode((M), (R)))
/// Validates a freshly interned transition-regex node.
#define SBD_AUDIT_TR_NODE(T, X) (::sbd::audit::hookNewTrNode((T), (X)))
/// Validates clean-branch DNF form of a fresh δdnf result.
#define SBD_AUDIT_DNF(T, X) (::sbd::audit::hookDnfResult((T), (X)))
/// Full arena audit on a checkSat exit path.
#define SBD_AUDIT_CHECKSAT_EXIT(M, T)                                          \
  (::sbd::audit::hookCheckSatExit((M), (T)))
/// Validates a dense successor row against the uncompressed δdnf before the
/// solver replays it (arguments unevaluated in the default build).
#define SBD_AUDIT_DENSE_ROW(T, Dnf, Row, NodeId)                               \
  (::sbd::audit::hookDenseRow((T), (Dnf), (Row), (NodeId)))

#else

#define SBD_AUDIT_RE_NODE(M, R) ((void)0)
#define SBD_AUDIT_TR_NODE(T, X) ((void)0)
#define SBD_AUDIT_DNF(T, X) ((void)0)
#define SBD_AUDIT_CHECKSAT_EXIT(M, T) ((void)0)
#define SBD_AUDIT_DENSE_ROW(T, Dnf, Row, NodeId) ((void)0)

#endif // SBD_AUDIT

#endif // SBD_ANALYSIS_AUDITHOOKS_H
