//===- cache/VerdictCache.cpp - Cross-query canonical verdict cache ---------===//

#include "cache/VerdictCache.h"

#include "support/Metrics.h"

#include <cstdio>
#include <fstream>

using namespace sbd;
using namespace sbd::cache;

namespace {

/// FNV-1a over the key bytes followed by a strong finalizer, so the high
/// bits used for shard selection are as well mixed as the low bits used
/// for slot probing.
uint64_t hashKey(const std::string &Key) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : Key) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  H += 0x9e3779b97f4a7c15ULL;
  H = (H ^ (H >> 30)) * 0xbf58476d1ce4e5b9ULL;
  H = (H ^ (H >> 27)) * 0x94d049bb133111ebULL;
  return H ^ (H >> 31);
}

size_t nextPow2(size_t N) {
  size_t P = 8;
  while (P < N)
    P <<= 1;
  return P;
}

/// JSON string escape for the canonical key (the print may contain quotes
/// and backslashes from charset literals).
void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
}

/// Decodes the escapes appendJsonString produces. Returns false on a
/// malformed literal.
bool parseJsonString(const std::string &Line, size_t &Pos, std::string &Out) {
  if (Pos >= Line.size() || Line[Pos] != '"')
    return false;
  ++Pos;
  Out.clear();
  while (Pos < Line.size()) {
    char C = Line[Pos++];
    if (C == '"')
      return true;
    if (C != '\\') {
      Out += C;
      continue;
    }
    if (Pos >= Line.size())
      return false;
    char E = Line[Pos++];
    switch (E) {
    case '"':
    case '\\':
    case '/':
      Out += E;
      break;
    case 'n':
      Out += '\n';
      break;
    case 't':
      Out += '\t';
      break;
    case 'r':
      Out += '\r';
      break;
    case 'u': {
      if (Pos + 4 > Line.size())
        return false;
      unsigned V = 0;
      for (int I = 0; I != 4; ++I) {
        char H = Line[Pos++];
        V <<= 4;
        if (H >= '0' && H <= '9')
          V |= static_cast<unsigned>(H - '0');
        else if (H >= 'a' && H <= 'f')
          V |= static_cast<unsigned>(H - 'a' + 10);
        else if (H >= 'A' && H <= 'F')
          V |= static_cast<unsigned>(H - 'A' + 10);
        else
          return false;
      }
      // Keys only escape control bytes, so V < 0x80 always; emit as-is.
      Out += static_cast<char>(V);
      break;
    }
    default:
      return false;
    }
  }
  return false;
}

/// Skips spaces, then requires and consumes \p Lit.
bool expect(const std::string &Line, size_t &Pos, const char *Lit) {
  while (Pos < Line.size() && Line[Pos] == ' ')
    ++Pos;
  for (const char *P = Lit; *P; ++P, ++Pos)
    if (Pos >= Line.size() || Line[Pos] != *P)
      return false;
  return true;
}

bool parseNumber(const std::string &Line, size_t &Pos, uint64_t &Out) {
  while (Pos < Line.size() && Line[Pos] == ' ')
    ++Pos;
  if (Pos >= Line.size() || Line[Pos] < '0' || Line[Pos] > '9')
    return false;
  Out = 0;
  while (Pos < Line.size() && Line[Pos] >= '0' && Line[Pos] <= '9')
    Out = Out * 10 + static_cast<uint64_t>(Line[Pos++] - '0');
  return true;
}

} // namespace

std::string cache::canonicalVerdictKey(const RegexManager &M, Re R,
                                       const SolveOptions &Opts,
                                       size_t MaxKeyBytes) {
  std::string Key = M.toString(R);
  if (Key.size() > MaxKeyBytes)
    return std::string();
  Key += "\n|max_states=";
  Key += std::to_string(Opts.MaxStates);
  Key += "|strategy=";
  Key += Opts.Strategy == SearchStrategy::Dfs ? "dfs" : "bfs";
  return Key;
}

VerdictCache::VerdictCache(Config C) {
  size_t Cap = C.Capacity ? C.Capacity : 1;
  ShardCapacity = (Cap + NumShards - 1) / NumShards;
  if (ShardCapacity == 0)
    ShardCapacity = 1;
  // Fixed-size probe tables at <= 0.5 load when full: no rehash ever.
  SlotCount = nextPow2(ShardCapacity * 2);
  for (Shard &S : Shards) {
    S.Slots.assign(SlotCount, EmptyIdx);
    S.Entries.reserve(ShardCapacity);
  }
}

uint32_t VerdictCache::findLocked(const Shard &S, uint64_t Hash,
                                  const std::string &Key) const {
  size_t Mask = SlotCount - 1;
  size_t Idx = static_cast<size_t>(Hash) & Mask;
  while (S.Slots[Idx] != EmptyIdx) {
    const Entry &E = S.Entries[S.Slots[Idx]];
    if (E.Hash == Hash && E.Key == Key)
      return S.Slots[Idx];
    Idx = (Idx + 1) & Mask;
  }
  return EmptyIdx;
}

void VerdictCache::reindexLocked(Shard &S) {
  std::fill(S.Slots.begin(), S.Slots.end(), EmptyIdx);
  size_t Mask = SlotCount - 1;
  for (uint32_t I = 0; I != S.Entries.size(); ++I) {
    size_t Idx = static_cast<size_t>(S.Entries[I].Hash) & Mask;
    while (S.Slots[Idx] != EmptyIdx)
      Idx = (Idx + 1) & Mask;
    S.Slots[Idx] = I;
  }
}

void VerdictCache::removeLocked(Shard &S, uint32_t Idx) {
  // Swap-and-pop the dense vector, then rebuild the probe table: removal
  // only happens on the eviction/poison paths, which already pay a solve
  // or a hard error, so the O(shard) reindex is noise.
  S.Entries[Idx] = std::move(S.Entries.back());
  S.Entries.pop_back();
  reindexLocked(S);
}

std::optional<CachedVerdict> VerdictCache::lookup(const std::string &Key) {
  if (Key.empty())
    return std::nullopt;
  uint64_t Hash = hashKey(Key);
  Shard &S = shardFor(Hash);
  std::lock_guard<std::mutex> Lock(S.Mu);
  uint32_t Idx = findLocked(S, Hash, Key);
  if (Idx == EmptyIdx) {
    ++S.Misses;
    SBD_OBS_INC(VerdictCacheMisses);
    return std::nullopt;
  }
  ++S.Hits;
  SBD_OBS_INC(VerdictCacheHits);
  S.Entries[Idx].LastHit = ++S.Tick;
  return S.Entries[Idx].Verdict;
}

void VerdictCache::insert(const std::string &Key, CachedVerdict V) {
  if (Key.empty())
    return;
  uint64_t Hash = hashKey(Key);
  Shard &S = shardFor(Hash);
  std::lock_guard<std::mutex> Lock(S.Mu);
  uint32_t Idx = findLocked(S, Hash, Key);
  if (Idx != EmptyIdx) {
    S.Entries[Idx].Verdict = std::move(V);
    S.Entries[Idx].LastHit = ++S.Tick;
    return;
  }
  if (S.Entries.size() >= ShardCapacity) {
    // Least-recently-hit eviction: linear scan of the dense vector. The
    // shard is bounded and this is the miss path (the caller just paid a
    // full solve), so the scan is immaterial.
    uint32_t Victim = 0;
    for (uint32_t I = 1; I != S.Entries.size(); ++I)
      if (S.Entries[I].LastHit < S.Entries[Victim].LastHit)
        Victim = I;
    removeLocked(S, Victim);
    ++S.Evictions;
    SBD_OBS_INC(VerdictCacheEvictions);
  }
  Entry E;
  E.Hash = Hash;
  E.Key = Key;
  E.Verdict = std::move(V);
  E.LastHit = ++S.Tick;
  S.Entries.push_back(std::move(E));
  size_t Mask = SlotCount - 1;
  size_t Slot = static_cast<size_t>(Hash) & Mask;
  while (S.Slots[Slot] != EmptyIdx)
    Slot = (Slot + 1) & Mask;
  S.Slots[Slot] = static_cast<uint32_t>(S.Entries.size() - 1);
  ++S.Inserts;
  SBD_OBS_INC(VerdictCacheInserts);
}

void VerdictCache::noteRevalidationFailure(const std::string &Key) {
  uint64_t Hash = hashKey(Key);
  Shard &S = shardFor(Hash);
  std::lock_guard<std::mutex> Lock(S.Mu);
  ++S.RevalFailures;
  SBD_OBS_INC(VerdictCacheRevalidationFailures);
  // Surfaced through the audit layer's violation counter as well: a stale
  // witness means some invariant the cache rests on broke upstream.
  SBD_OBS_INC(AuditViolations);
  uint32_t Idx = findLocked(S, Hash, Key);
  if (Idx != EmptyIdx)
    removeLocked(S, Idx);
}

void VerdictCache::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Entries.clear();
    std::fill(S.Slots.begin(), S.Slots.end(), EmptyIdx);
  }
}

size_t VerdictCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.Entries.size();
  }
  return N;
}

VerdictCacheCounters VerdictCache::counters() const {
  VerdictCacheCounters C;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    C.Hits += S.Hits;
    C.Misses += S.Misses;
    C.Inserts += S.Inserts;
    C.Evictions += S.Evictions;
    C.RevalidationFailures += S.RevalFailures;
    C.Size += S.Entries.size();
  }
  return C;
}

bool VerdictCache::save(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  std::string Line;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const Entry &E : S.Entries) {
      Line.clear();
      Line += "{\"key\": ";
      appendJsonString(Line, E.Key);
      Line += ", \"status\": \"";
      Line += E.Verdict.Sat ? "sat" : "unsat";
      Line += '"';
      if (E.Verdict.Sat) {
        Line += ", \"witness\": [";
        for (size_t I = 0; I != E.Verdict.Witness.size(); ++I) {
          if (I)
            Line += ", ";
          Line += std::to_string(E.Verdict.Witness[I]);
        }
        Line += ']';
      }
      Line += "}\n";
      Out << Line;
    }
  }
  return static_cast<bool>(Out);
}

long VerdictCache::load(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return -1;
  long Loaded = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    size_t Pos = 0;
    std::string Key, Status;
    if (!expect(Line, Pos, "{") || !expect(Line, Pos, "\"key\":"))
      continue;
    while (Pos < Line.size() && Line[Pos] == ' ')
      ++Pos;
    if (!parseJsonString(Line, Pos, Key))
      continue;
    if (!expect(Line, Pos, ",") || !expect(Line, Pos, "\"status\":"))
      continue;
    while (Pos < Line.size() && Line[Pos] == ' ')
      ++Pos;
    if (!parseJsonString(Line, Pos, Status))
      continue;
    CachedVerdict V;
    if (Status == "sat")
      V.Sat = true;
    else if (Status != "unsat")
      continue;
    if (V.Sat) {
      if (!expect(Line, Pos, ",") || !expect(Line, Pos, "\"witness\":") ||
          !expect(Line, Pos, "["))
        continue;
      bool Ok = true;
      while (true) {
        while (Pos < Line.size() && Line[Pos] == ' ')
          ++Pos;
        if (Pos < Line.size() && Line[Pos] == ']') {
          ++Pos;
          break;
        }
        uint64_t N = 0;
        if (!parseNumber(Line, Pos, N)) {
          Ok = false;
          break;
        }
        V.Witness.push_back(static_cast<uint32_t>(N));
        while (Pos < Line.size() && Line[Pos] == ' ')
          ++Pos;
        if (Pos < Line.size() && Line[Pos] == ',')
          ++Pos;
      }
      if (!Ok)
        continue;
    }
    insert(Key, std::move(V));
    ++Loaded;
  }
  return Loaded;
}

bool VerdictCache::corruptWitnessForTest(const std::string &Key) {
  uint64_t Hash = hashKey(Key);
  Shard &S = shardFor(Hash);
  std::lock_guard<std::mutex> Lock(S.Mu);
  uint32_t Idx = findLocked(S, Hash, Key);
  if (Idx == EmptyIdx || !S.Entries[Idx].Verdict.Sat)
    return false;
  // A code point no regex over the supported alphabet can require.
  S.Entries[Idx].Verdict.Witness.push_back(0x10FFFF + 7);
  return true;
}
