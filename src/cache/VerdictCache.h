//===- cache/VerdictCache.h - Cross-query canonical verdict cache -----------===//
///
/// \file
/// A Green-style canonicalizing result cache for regex satisfiability
/// queries (DESIGN.md §15). The hash-consed similarity forms of paper
/// Section 3 already canonicalize every query term, so the canonical
/// *print* of the folded query ERE — plus the solve-relevant `SolveOptions`
/// fields — is a collision-free cross-arena key: two queries share an entry
/// iff they intern to the same term under the similarity laws and run under
/// the same budget/strategy. Values are definite verdicts (sat + witness,
/// or unsat); Unknown/Unsupported outcomes are never cached.
///
/// Storage is sharded open addressing in the style of
/// `InternTable`/`FlatMap64`: each shard owns one dense entry vector plus a
/// fixed linear-probe slot table, guarded by its own mutex so a resident
/// server and batch workers can share one cache. Capacity is bounded;
/// overflow evicts the least-recently-hit entry of the full shard.
///
/// Trust model: the cache is *not* trusted. Every Sat hit must be
/// revalidated by the caller — replay the cached witness through the
/// reference matcher — before the verdict is served; a failed revalidation
/// is a hard error surfaced through the audit counters
/// (`verdict_cache_revalidation_failures`, `audit_violations`), never a
/// silent fallback to re-solving. `noteRevalidationFailure()` implements
/// that policy and drops the poisoned entry.
///
/// An optional JSONL persistent store (`save()`/`load()`) lets a warmed
/// cache survive process restarts (`sbd-server --cache-load/--cache-save`).
///
//===----------------------------------------------------------------------===//

#ifndef SBD_CACHE_VERDICTCACHE_H
#define SBD_CACHE_VERDICTCACHE_H

#include "re/Regex.h"
#include "solver/SolverResult.h"

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace sbd {
namespace cache {

/// One memoized definite verdict.
struct CachedVerdict {
  bool Sat = false;
  /// Witness word (Sat entries only; empty means the empty-string witness).
  std::vector<uint32_t> Witness;
};

/// Aggregated per-cache counters (the same values also feed the process
///-wide `sbd::obs` registry under the verdict_cache_* names).
struct VerdictCacheCounters {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Inserts = 0;
  uint64_t Evictions = 0;
  uint64_t RevalidationFailures = 0;
  size_t Size = 0;

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }
};

/// Derives the canonical cache key for deciding satisfiability of \p R
/// under \p Opts: the canonical print of the hash-consed term (which
/// round-trips through RegexParser — see VerdictCacheTest's reparse law)
/// plus the verdict-relevant option fields (state budget and search
/// strategy; the wall-clock budget is deliberately excluded — a definite
/// verdict is valid under any deadline). Returns an empty string when the
/// print exceeds \p MaxKeyBytes (pathologically shared DAGs can print
/// large); callers must skip the cache for such queries.
std::string canonicalVerdictKey(const RegexManager &M, Re R,
                                const SolveOptions &Opts,
                                size_t MaxKeyBytes = 1 << 16);

/// Bounded, sharded canonical-key → verdict store.
class VerdictCache {
public:
  struct Config {
    /// Total entry capacity across all shards (rounded up per shard).
    size_t Capacity = 1 << 16;
  };

  VerdictCache() : VerdictCache(Config{1 << 16}) {}
  explicit VerdictCache(Config C);

  /// Probes \p Key. Bumps hit/miss counters and the entry's recency on
  /// hit. Callers MUST revalidate Sat results before serving them.
  std::optional<CachedVerdict> lookup(const std::string &Key);

  /// Memoizes a definite verdict (inserts or overwrites). Keys larger than
  /// the canonical-key cap and empty keys are rejected.
  void insert(const std::string &Key, CachedVerdict V);

  /// Hard-error bookkeeping for a Sat hit whose witness failed replay
  /// through the reference matcher: bumps the revalidation-failure and
  /// audit counters and drops the poisoned entry.
  void noteRevalidationFailure(const std::string &Key);

  /// Drops every entry (counters keep accumulating).
  void clear();

  /// Live entries across all shards.
  size_t size() const;

  /// Counter snapshot (exact when no concurrent writer).
  VerdictCacheCounters counters() const;

  /// --- JSONL persistence ---------------------------------------------------

  /// Appends every entry as one JSON object per line. Returns false on I/O
  /// error.
  bool save(const std::string &Path) const;

  /// Inserts every entry of a previously saved file (malformed lines are
  /// skipped). Returns the number of entries loaded, or -1 when the file
  /// cannot be opened.
  long load(const std::string &Path);

  /// --- Test hooks ----------------------------------------------------------

  /// Corrupts the stored witness of \p Key (appends a bogus code point) so
  /// the revalidation negative test can prove a poisoned entry is caught.
  /// Returns false when the key is absent. Never call outside tests.
  bool corruptWitnessForTest(const std::string &Key);

private:
  static constexpr size_t NumShards = 16; // power of two
  static constexpr uint32_t EmptyIdx = 0xFFFFFFFFu;

  struct Entry {
    uint64_t Hash = 0;
    std::string Key;
    CachedVerdict Verdict;
    uint64_t LastHit = 0; ///< recency tick for least-recently-hit eviction
  };

  struct Shard {
    mutable std::mutex Mu;
    std::vector<Entry> Entries;       ///< dense payload storage
    std::vector<uint32_t> Slots;      ///< linear-probe index into Entries
    uint64_t Tick = 0;                ///< per-shard recency clock
    uint64_t Hits = 0, Misses = 0, Inserts = 0, Evictions = 0,
             RevalFailures = 0;
  };

  Shard &shardFor(uint64_t Hash) {
    return Shards[(Hash >> 48) & (NumShards - 1)];
  }
  const Shard &shardFor(uint64_t Hash) const {
    return Shards[(Hash >> 48) & (NumShards - 1)];
  }

  /// Probe for Key in S; returns the entry index or EmptyIdx. Requires
  /// S.Mu held.
  uint32_t findLocked(const Shard &S, uint64_t Hash,
                      const std::string &Key) const;
  /// Removes entry \p Idx and rebuilds the shard's slot table. Requires
  /// S.Mu held.
  void removeLocked(Shard &S, uint32_t Idx);
  /// Re-indexes every entry of \p S into its slot table. Requires S.Mu
  /// held.
  void reindexLocked(Shard &S);

  size_t ShardCapacity;
  size_t SlotCount; ///< per-shard slot-table size (power of two)
  Shard Shards[NumShards];
};

} // namespace cache
} // namespace sbd

#endif // SBD_CACHE_VERDICTCACHE_H
