//===- smt/SmtSolver.cpp - SMT-LIB string/regex front end --------------------===//

#include "smt/SmtSolver.h"

#include "cache/VerdictCache.h"
#include "portfolio/Portfolio.h"
#include "re/SmtPrinter.h"
#include "support/Exposition.h"
#include "support/Histogram.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "support/Unicode.h"

#include <algorithm>
#include <set>

using namespace sbd;

namespace {

/// One membership atom: Var ∈ L(Regex). Length bounds and string literals
/// are compiled into this same shape.
struct Atom {
  std::string Var;
  Re Regex;
};

/// SMT-LIB string literal with `"` doubled.
std::string smtQuote(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    Out += C;
    if (C == '"')
      Out += C;
  }
  Out += '"';
  return Out;
}

/// The compilation and solving context shared by script mode
/// (SmtSolver::solveScript) and session mode (SmtSession). Declarations,
/// the atom table, and the scoped assertion frames live here; errors are
/// per-command (hasError()/takeError()) so a session survives them.
class ScriptContext {
public:
  ScriptContext(RegexSolver &S, portfolio::PortfolioSolver &P,
                const SolveOptions &Options)
      : Solver(S), Port(P), M(S.regexManager()), Opts(Options) {
    FrameAsserts.emplace_back();
  }

  /// --- Command API ---------------------------------------------------------

  bool hasError() const { return HasErr; }
  std::string takeError() {
    HasErr = false;
    return std::move(Err);
  }

  void setInfo(const SExpr &Form) {
    // (set-info :status sat|unsat|unknown)
    if (Form.Kids.size() == 3 && Form.Kids[1].isSymbol(":status")) {
      if (Form.Kids[2].isSymbol("sat"))
        ExpectedSat_ = true;
      else if (Form.Kids[2].isSymbol("unsat"))
        ExpectedSat_ = false;
    }
  }

  void declare(const SExpr &Form) {
    // (declare-const x String) | (declare-fun x () String)
    bool IsFun = Form.Kids[0].isSymbol("declare-fun");
    size_t SortIdx = IsFun ? 3 : 2;
    if (Form.Kids.size() != SortIdx + 1 ||
        Form.Kids[1].K != SExpr::Kind::Symbol) {
      unsupported("malformed declaration");
      return;
    }
    if (IsFun && !(Form.Kids[2].isList() && Form.Kids[2].Kids.empty())) {
      unsupported("only nullary functions are supported");
      return;
    }
    const SExpr &Sort = Form.Kids[SortIdx];
    if (Sort.isSymbol("String")) {
      StringVars.insert(Form.Kids[1].Text);
      return;
    }
    if (Sort.isSymbol("Bool") || Sort.isSymbol("Int")) {
      // Declared but must not be used by any assertion we compile.
      return;
    }
    unsupported("unsupported sort: " + Sort.Text);
  }

  /// (assert t): compiles t and records it in the current frame. On error
  /// the assertion is discarded and the frames are unchanged.
  void assertForm(const SExpr &Form) {
    if (Form.Kids.size() != 2) {
      unsupported("malformed assert");
      return;
    }
    BE E = compileBool(Form.Kids[1], /*Positive=*/true);
    if (!HasErr)
      FrameAsserts.back().push_back(E);
  }

  /// Compiles one check-sat-assuming term. Returns false on error.
  bool compileAssumption(const SExpr &Term, std::vector<BE> &Out) {
    BE E = compileBool(Term, /*Positive=*/true);
    if (HasErr)
      return false;
    Out.push_back(E);
    return true;
  }

  void push(uint64_t N) {
    for (uint64_t I = 0; I != N; ++I)
      FrameAsserts.emplace_back();
  }

  void pop(uint64_t N) {
    if (N >= FrameAsserts.size()) {
      unsupported("pop without matching push");
      return;
    }
    for (uint64_t I = 0; I != N; ++I)
      FrameAsserts.pop_back();
  }

  void resetAssertions() {
    // Declarations are kept (the :global-declarations view): the resident
    // use case re-asserts over the same variables.
    FrameAsserts.clear();
    FrameAsserts.emplace_back();
  }

  size_t numAssertions() const {
    size_t N = 0;
    for (const std::vector<BE> &F : FrameAsserts)
      N += F.size();
    return N;
  }

  size_t pushDepth() const { return FrameAsserts.size() - 1; }

  /// Solves the conjunction of every live assertion plus \p Assumptions.
  /// The compiled state (atoms, arena, graph facts) persists; only the
  /// per-check verdict is fresh.
  SmtCheck checkSat(const std::vector<BE> &Assumptions = {}) {
    Cur = SmtCheck();
    std::vector<BE> Agenda;
    for (const std::vector<BE> &F : FrameAsserts)
      Agenda.insert(Agenda.end(), F.begin(), F.end());
    Agenda.insert(Agenda.end(), Assumptions.begin(), Assumptions.end());
    solve(Agenda);
    CubesTriedTotal += Cur.CubesTried;
    Last = Cur;
    HaveChecked = true;
    return Cur;
  }

  bool haveChecked() const { return HaveChecked; }
  const SmtCheck &last() const { return Last; }
  std::optional<bool> expectedSat() const { return ExpectedSat_; }
  const SolveStats &cumulativeStats() const { return CumStats; }
  size_t cubesTriedTotal() const { return CubesTriedTotal; }
  uint64_t regexQueries() const { return RegexQueries; }

  /// (get-model) answer for the last Sat check.
  std::string renderModel() const {
    std::string Out = "(";
    for (size_t I = 0; I != Last.Model.size(); ++I) {
      if (I)
        Out += "\n ";
      Out += "(define-fun " + Last.Model[I].first + " () String " +
             smtQuote(Last.Model[I].second) + ")";
    }
    Out += ")";
    return Out;
  }

  /// Z3-style keyword list answering (get-info :statistics), built from
  /// the accumulated per-sub-query SolveStats (cumulative over the
  /// script/session lifetime).
  std::string renderStatistics() const {
    const SolveStats &St = CumStats;
    auto Ull = [](uint64_t V) { return std::to_string(V); };
    std::string Out = "(";
    Out += ":cubes-tried " + Ull(CubesTriedTotal);
    Out += "\n :checks-run " + Ull(ChecksRun);
    Out += "\n :regex-queries " + Ull(RegexQueries);
    Out += "\n :derivative-calls " + Ull(St.DerivativeCalls);
    Out += "\n :dnf-calls " + Ull(St.DnfCalls);
    Out += "\n :dnf-branches-explored " + Ull(St.DnfBranchesExplored);
    Out += "\n :dnf-branches-pruned " + Ull(St.DnfBranchesPruned);
    Out += "\n :arcs-enumerated " + Ull(St.ArcsEnumerated);
    Out += "\n :minterm-computations " + Ull(St.MintermComputations);
    Out += "\n :minterms-produced " + Ull(St.MintermsProduced);
    Out += "\n :intern-hits " + Ull(St.InternHits);
    Out += "\n :intern-misses " + Ull(St.InternMisses);
    Out += "\n :memo-hits " + Ull(St.MemoHits);
    Out += "\n :memo-misses " + Ull(St.MemoMisses);
    Out += "\n :arena-nodes " + Ull(St.ArenaNodes);
    Out += "\n :peak-frontier " + Ull(St.PeakFrontier);
    Out += "\n :solver-steps " + Ull(St.SolverSteps);
    // Compiled serving path and the cross-query verdict cache. These live
    // in the process-wide registry (the compiled kernel and the shared
    // cache never touch per-query stats), so they are cumulative across
    // the solver's lifetime like the rest of this list.
    obs::MetricShard Reg = obs::MetricsRegistry::global().snapshot();
    Out += "\n :compiled-promotions " +
           Ull(Reg.get(obs::Counter::CompiledPromotions));
    Out += "\n :compiled-chars-scanned " +
           Ull(Reg.get(obs::Counter::CompiledCharsScanned));
    Out += "\n :compiled-prefilter-skips " +
           Ull(Reg.get(obs::Counter::CompiledPrefilterSkips));
    Out += "\n :compiled-fallbacks " +
           Ull(Reg.get(obs::Counter::CompiledFallbacks));
    Out += "\n :verdict-cache-hits " +
           Ull(Reg.get(obs::Counter::VerdictCacheHits));
    Out += "\n :verdict-cache-misses " +
           Ull(Reg.get(obs::Counter::VerdictCacheMisses));
    Out += "\n :verdict-cache-inserts " +
           Ull(Reg.get(obs::Counter::VerdictCacheInserts));
    Out += "\n :verdict-cache-evictions " +
           Ull(Reg.get(obs::Counter::VerdictCacheEvictions));
    Out += "\n :minterm-time-us " + std::to_string(St.MintermUs);
    Out += "\n :derive-time-us " + std::to_string(St.DeriveUs);
    Out += "\n :dnf-time-us " + std::to_string(St.DnfUs);
    Out += "\n :cache-probe-time-us " + std::to_string(St.CacheProbeUs);
    Out += "\n :scan-time-us " + std::to_string(St.ScanUs);
    Out += "\n :search-time-us " + std::to_string(St.SearchUs);
    Out += "\n :solve-time-us " + std::to_string(St.TotalUs);
    // Latency distribution over every regex sub-query solved so far, from
    // the process-wide histogram registry (cumulative, like the compiled
    // counters above; all-zero at -DSBD_OBS=0).
    obs::HistShard Hists = obs::HistogramRegistry::global().snapshot();
    const obs::HistShard::Data &Lat =
        Hists.H[static_cast<size_t>(obs::Hist::SolveLatencyUs)];
    Out += "\n :solve-latency-count " + Ull(Lat.Count);
    Out += "\n :solve-latency-p50-us " + Ull(obs::histPercentile(Lat, 50));
    Out += "\n :solve-latency-p90-us " + Ull(obs::histPercentile(Lat, 90));
    Out += "\n :solve-latency-p99-us " + Ull(obs::histPercentile(Lat, 99));
    Out += ")";
    return Out;
  }

private:
  RegexSolver &Solver;
  /// Analyzer-driven engine selection for every membership sub-query
  /// (portfolio/Portfolio.h); the verdict cache, when attached, hangs off
  /// this router too.
  portfolio::PortfolioSolver &Port;
  RegexManager &M;
  SolveOptions Opts;
  BoolExprManager B;
  bool HasErr = false;
  std::string Err;
  uint64_t RegexQueries = 0;
  uint64_t ChecksRun = 0;
  SolveStats CumStats;
  size_t CubesTriedTotal = 0;
  SmtCheck Cur;  ///< the check being solved (written by solve/tryCube)
  SmtCheck Last; ///< the most recent finished check
  bool HaveChecked = false;
  std::optional<bool> ExpectedSat_;

  std::set<std::string> StringVars;
  std::vector<Atom> Atoms;
  std::map<std::pair<std::string, uint32_t>, uint32_t> AtomIndex;
  /// Scoped assertions: FrameAsserts[0] is the base level, each (push)
  /// opens a new frame, (pop) drops the newest.
  std::vector<std::vector<BE>> FrameAsserts;

  BE unsupportedExpr(const std::string &Why) {
    unsupported(Why);
    return B.falseExpr();
  }

  void unsupported(const std::string &Why) {
    if (!HasErr) {
      HasErr = true;
      Err = Why;
    }
  }

  BE atomExpr(const std::string &Var, Re Regex) {
    auto Key = std::make_pair(Var, Regex.Id);
    auto It = AtomIndex.find(Key);
    uint32_t Idx;
    if (It != AtomIndex.end()) {
      Idx = It->second;
    } else {
      Idx = static_cast<uint32_t>(Atoms.size());
      Atoms.push_back({Var, Regex});
      AtomIndex.emplace(Key, Idx);
    }
    return B.atom(Idx);
  }

  /// Requires E to name a declared string variable.
  std::optional<std::string> asStringVar(const SExpr &E) {
    if (E.K == SExpr::Kind::Symbol && StringVars.count(E.Text))
      return E.Text;
    return std::nullopt;
  }

  /// --- Boolean layer -------------------------------------------------------

  BE compileBool(const SExpr &E, bool) {
    if (HasErr)
      return B.falseExpr();
    if (E.isSymbol("true"))
      return B.trueExpr();
    if (E.isSymbol("false"))
      return B.falseExpr();
    if (!E.isList() || E.Kids.empty())
      return unsupportedExpr("unsupported Boolean term");
    const SExpr &Head = E.Kids[0];

    if (Head.isSymbol("and") || Head.isSymbol("or")) {
      std::vector<BE> Kids;
      for (size_t I = 1; I != E.Kids.size(); ++I)
        Kids.push_back(compileBool(E.Kids[I], true));
      return Head.isSymbol("and") ? B.and_(std::move(Kids))
                                  : B.or_(std::move(Kids));
    }
    if (Head.isSymbol("not")) {
      if (E.Kids.size() != 2)
        return unsupportedExpr("malformed not");
      return B.not_(compileBool(E.Kids[1], true));
    }
    if (Head.isSymbol("=>")) {
      if (E.Kids.size() != 3)
        return unsupportedExpr("malformed =>");
      return B.or2(B.not_(compileBool(E.Kids[1], true)),
                   compileBool(E.Kids[2], true));
    }
    if (Head.isSymbol("str.in_re") || Head.isSymbol("str.in.re")) {
      if (E.Kids.size() != 3)
        return unsupportedExpr("malformed str.in_re");
      auto Var = asStringVar(E.Kids[1]);
      if (!Var)
        return unsupportedExpr("str.in_re on a non-variable");
      return atomExpr(*Var, compileRe(E.Kids[2]));
    }
    if (Head.isSymbol("=")) {
      if (E.Kids.size() != 3)
        return unsupportedExpr("only binary = is supported");
      return compileEquality(E.Kids[1], E.Kids[2]);
    }
    if (Head.isSymbol("distinct")) {
      if (E.Kids.size() != 3)
        return unsupportedExpr("only binary distinct is supported");
      return B.not_(compileEquality(E.Kids[1], E.Kids[2]));
    }
    if (Head.isSymbol("xor")) {
      if (E.Kids.size() != 3)
        return unsupportedExpr("malformed xor");
      BE L = compileBool(E.Kids[1], true);
      BE Rb = compileBool(E.Kids[2], true);
      return B.or2(B.and2(L, B.not_(Rb)), B.and2(B.not_(L), Rb));
    }
    if (Head.isSymbol("ite")) {
      if (E.Kids.size() != 4)
        return unsupportedExpr("malformed ite");
      BE C = compileBool(E.Kids[1], true);
      BE Tb = compileBool(E.Kids[2], true);
      BE Eb = compileBool(E.Kids[3], true);
      return B.or2(B.and2(C, Tb), B.and2(B.not_(C), Eb));
    }
    if (Head.isSymbol("<=") || Head.isSymbol(">=") || Head.isSymbol("<") ||
        Head.isSymbol(">"))
      return compileLengthCompare(Head.Text, E);
    if (Head.isSymbol("str.prefixof") || Head.isSymbol("str.suffixof") ||
        Head.isSymbol("str.contains"))
      return compileStringPredicate(Head.Text, E);
    return unsupportedExpr("unsupported predicate: " + Head.Text);
  }

  BE compileEquality(const SExpr &L, const SExpr &Rhs) {
    // (= s "lit") → membership in the literal word.
    if (auto Var = asStringVar(L); Var && Rhs.K == SExpr::Kind::String)
      return atomExpr(*Var, M.word(decodeSmtString(Rhs.Text)));
    if (auto Var = asStringVar(Rhs); Var && L.K == SExpr::Kind::String)
      return atomExpr(*Var, M.word(decodeSmtString(L.Text)));
    // (= (str.len s) k).
    if (auto Len = asLenOf(L); Len && Rhs.K == SExpr::Kind::Number)
      return lengthAtom(*Len, "=", Rhs.Number);
    if (auto Len = asLenOf(Rhs); Len && L.K == SExpr::Kind::Number)
      return lengthAtom(*Len, "=", L.Number);
    // (= (str.at s k) "c"): character k exists and equals c; the empty
    // string means |s| <= k (SMT-LIB's out-of-range semantics).
    if (auto At = asAtOf(L); At && Rhs.K == SExpr::Kind::String)
      return atAtom(At->first, At->second, Rhs.Text);
    if (auto At = asAtOf(Rhs); At && L.K == SExpr::Kind::String)
      return atAtom(At->first, At->second, L.Text);
    // (= (str.to_code (str.at s k)) n).
    if (auto Code = asCodeOf(L); Code && Rhs.K == SExpr::Kind::Number)
      return codeAtom(Code->first, Code->second, "=", Rhs.Number);
    if (auto Code = asCodeOf(Rhs); Code && L.K == SExpr::Kind::Number)
      return codeAtom(Code->first, Code->second, "=", L.Number);
    if (L.K == SExpr::Kind::String && Rhs.K == SExpr::Kind::String)
      return L.Text == Rhs.Text ? B.trueExpr() : B.falseExpr();
    return unsupportedExpr("unsupported equality");
  }

  /// Matches (str.at s k) with a declared variable and constant index.
  std::optional<std::pair<std::string, int64_t>> asAtOf(const SExpr &E) {
    if (E.isList() && E.Kids.size() == 3 && E.Kids[0].isSymbol("str.at") &&
        E.Kids[2].K == SExpr::Kind::Number)
      if (auto Var = asStringVar(E.Kids[1]))
        return std::make_pair(*Var, E.Kids[2].Number);
    return std::nullopt;
  }

  /// Matches (str.to_code (str.at s k)) — the character-code view used by
  /// the paper's side-constraint example (footnote: "the underlying
  /// character theory is equipped with a total order", e.g. s0 > 0).
  std::optional<std::pair<std::string, int64_t>> asCodeOf(const SExpr &E) {
    if (E.isList() && E.Kids.size() == 2 &&
        (E.Kids[0].isSymbol("str.to_code") ||
         E.Kids[0].isSymbol("str.to.code")))
      return asAtOf(E.Kids[1]);
    return std::nullopt;
  }

  /// (str.to_code (str.at Var K)) Op N as a membership atom. Per SMT-LIB,
  /// str.to_code yields -1 when its argument is not a single character —
  /// here, when |Var| <= K.
  BE codeAtom(const std::string &Var, int64_t K, const std::string &Op,
              int64_t N) {
    if (K < 0)
      return unsupportedExpr("negative str.at index");
    uint32_t Ku = static_cast<uint32_t>(K);
    // The set of character codes satisfying "code Op N".
    CharSet Chars;
    bool MinusOneSatisfies = false; // does the out-of-range value -1 satisfy?
    auto Clamp = [](int64_t V) {
      if (V < 0)
        return int64_t(0);
      if (V > int64_t(MaxCodePoint))
        return int64_t(MaxCodePoint);
      return V;
    };
    if (Op == "=") {
      if (N == -1)
        MinusOneSatisfies = true;
      else if (N >= 0 && N <= int64_t(MaxCodePoint))
        Chars = CharSet::singleton(static_cast<uint32_t>(N));
    } else if (Op == "<=") {
      MinusOneSatisfies = true; // -1 <= N for every N >= -1 of interest
      if (N >= 0)
        Chars = CharSet::range(0, static_cast<uint32_t>(Clamp(N)));
      else
        MinusOneSatisfies = N >= -1;
    } else if (Op == "<") {
      MinusOneSatisfies = N > -1;
      if (N > 0)
        Chars = CharSet::range(0, static_cast<uint32_t>(Clamp(N - 1)));
    } else if (Op == ">=") {
      MinusOneSatisfies = N <= -1;
      if (N <= int64_t(MaxCodePoint))
        Chars = CharSet::range(static_cast<uint32_t>(Clamp(N)), MaxCodePoint);
    } else if (Op == ">") {
      MinusOneSatisfies = N < -1;
      if (N < int64_t(MaxCodePoint))
        Chars =
            CharSet::range(static_cast<uint32_t>(Clamp(N + 1)), MaxCodePoint);
    } else {
      return unsupportedExpr("unknown comparison " + Op);
    }
    // Position-k character in Chars: .{K} [Chars] .*; the -1 case adds the
    // |s| <= K disjunct.
    std::vector<BE> Cases;
    if (!Chars.isEmpty()) {
      Re Prefix = M.loop(M.anyChar(), Ku, Ku);
      Cases.push_back(atomExpr(
          Var, M.concat(Prefix, M.concat(M.pred(Chars), M.top()))));
    }
    if (MinusOneSatisfies)
      Cases.push_back(atomExpr(Var, M.loop(M.anyChar(), 0, Ku)));
    return B.or_(std::move(Cases));
  }

  /// (str.at Var K) = Value as a membership atom.
  BE atAtom(const std::string &Var, int64_t K, const std::string &Value) {
    std::vector<uint32_t> Cps = decodeSmtString(Value);
    if (K < 0)
      return Cps.empty() ? B.trueExpr() : B.falseExpr();
    if (Cps.empty()) // |s| <= K
      return atomExpr(Var, M.loop(M.anyChar(), 0, static_cast<uint32_t>(K)));
    if (Cps.size() != 1)
      return B.falseExpr(); // str.at never yields multi-character strings
    // s ∈ .{K} c .*
    Re Prefix = M.loop(M.anyChar(), static_cast<uint32_t>(K),
                       static_cast<uint32_t>(K));
    return atomExpr(Var, M.concat(Prefix, M.concat(M.chr(Cps[0]), M.top())));
  }

  std::optional<std::string> asLenOf(const SExpr &E) {
    if (E.isList() && E.Kids.size() == 2 &&
        (E.Kids[0].isSymbol("str.len") || E.Kids[0].isSymbol("str.length")))
      return asStringVar(E.Kids[1]);
    return std::nullopt;
  }

  BE compileLengthCompare(const std::string &Op, const SExpr &E) {
    if (E.Kids.size() != 3)
      return unsupportedExpr("malformed comparison");
    const SExpr &L = E.Kids[1], &Rhs = E.Kids[2];
    if (auto Code = asCodeOf(L); Code && Rhs.K == SExpr::Kind::Number)
      return codeAtom(Code->first, Code->second, Op, Rhs.Number);
    if (auto Code = asCodeOf(Rhs); Code && L.K == SExpr::Kind::Number) {
      std::string Flipped = Op == "<=" ? ">=" : Op == ">=" ? "<="
                            : Op == "<" ? ">"
                                        : "<";
      return codeAtom(Code->first, Code->second, Flipped, L.Number);
    }
    if (auto Len = asLenOf(L); Len && Rhs.K == SExpr::Kind::Number)
      return lengthAtom(*Len, Op, Rhs.Number);
    if (auto Len = asLenOf(Rhs); Len && L.K == SExpr::Kind::Number) {
      // k op len(s) flips the comparison.
      std::string Flipped = Op == "<=" ? ">=" : Op == ">=" ? "<="
                            : Op == "<" ? ">"
                                        : "<";
      return lengthAtom(*Len, Flipped, L.Number);
    }
    return unsupportedExpr("only str.len-vs-constant comparisons supported");
  }

  /// len(Var) Op K as a membership in `.{m,n}`.
  BE lengthAtom(const std::string &Var, const std::string &Op, int64_t K) {
    Re Any = M.anyChar();
    auto Window = [&](uint32_t Lo, uint32_t Hi) {
      return atomExpr(Var, M.loop(Any, Lo, Hi));
    };
    if (Op == "=") {
      if (K < 0)
        return B.falseExpr();
      return Window(static_cast<uint32_t>(K), static_cast<uint32_t>(K));
    }
    if (Op == "<=") {
      if (K < 0)
        return B.falseExpr();
      return Window(0, static_cast<uint32_t>(K));
    }
    if (Op == "<")
      return K <= 0 ? B.falseExpr() : Window(0, static_cast<uint32_t>(K - 1));
    if (Op == ">=") {
      if (K <= 0)
        return B.trueExpr();
      return Window(static_cast<uint32_t>(K), LoopInf);
    }
    if (Op == ">") {
      if (K < 0)
        return B.trueExpr();
      return Window(static_cast<uint32_t>(K + 1), LoopInf);
    }
    return unsupportedExpr("unknown comparison " + Op);
  }

  BE compileStringPredicate(const std::string &Op, const SExpr &E) {
    if (E.Kids.size() != 3)
      return unsupportedExpr("malformed " + Op);
    // Only constant-vs-variable forms reduce to memberships.
    const SExpr &L = E.Kids[1], &Rhs = E.Kids[2];
    if (Op == "str.contains") {
      auto Var = asStringVar(L);
      if (!Var || Rhs.K != SExpr::Kind::String)
        return unsupportedExpr("str.contains needs (var, literal)");
      Re Lit = M.word(decodeSmtString(Rhs.Text));
      return atomExpr(*Var, M.concat(M.top(), M.concat(Lit, M.top())));
    }
    // prefixof/suffixof take the literal first.
    auto Var = asStringVar(Rhs);
    if (!Var || L.K != SExpr::Kind::String)
      return unsupportedExpr(Op + " needs (literal, var)");
    Re Lit = M.word(decodeSmtString(L.Text));
    Re Pattern = Op == "str.prefixof" ? M.concat(Lit, M.top())
                                      : M.concat(M.top(), Lit);
    return atomExpr(*Var, Pattern);
  }

  /// --- Regex layer ----------------------------------------------------------

  Re compileRe(const SExpr &E) {
    if (HasErr)
      return M.empty();
    if (E.isSymbol("re.none"))
      return M.empty();
    if (E.isSymbol("re.all"))
      return M.top();
    if (E.isSymbol("re.allchar"))
      return M.anyChar();
    if (!E.isList() || E.Kids.empty()) {
      unsupported("unsupported regex term");
      return M.empty();
    }
    const SExpr &Head = E.Kids[0];
    if (Head.isSymbol("str.to_re") || Head.isSymbol("str.to.re")) {
      if (E.Kids.size() != 2 || E.Kids[1].K != SExpr::Kind::String) {
        unsupported("str.to_re needs a string literal");
        return M.empty();
      }
      return M.word(decodeSmtString(E.Kids[1].Text));
    }
    if (Head.isSymbol("re.union") || Head.isSymbol("re.inter") ||
        Head.isSymbol("re.++")) {
      std::vector<Re> Kids;
      for (size_t I = 1; I != E.Kids.size(); ++I)
        Kids.push_back(compileRe(E.Kids[I]));
      if (Head.isSymbol("re.union"))
        return M.unionList(std::move(Kids));
      if (Head.isSymbol("re.inter"))
        return M.interList(std::move(Kids));
      return M.concatList(Kids);
    }
    if (Head.isSymbol("re.comp") && E.Kids.size() == 2)
      return M.complement(compileRe(E.Kids[1]));
    if (Head.isSymbol("re.diff") && E.Kids.size() == 3)
      return M.diff(compileRe(E.Kids[1]), compileRe(E.Kids[2]));
    if (Head.isSymbol("re.*") && E.Kids.size() == 2)
      return M.star(compileRe(E.Kids[1]));
    if (Head.isSymbol("re.+") && E.Kids.size() == 2)
      return M.plus(compileRe(E.Kids[1]));
    if (Head.isSymbol("re.opt") && E.Kids.size() == 2)
      return M.opt(compileRe(E.Kids[1]));
    if (Head.isSymbol("re.range") && E.Kids.size() == 3 &&
        E.Kids[1].K == SExpr::Kind::String &&
        E.Kids[2].K == SExpr::Kind::String) {
      std::vector<uint32_t> Lo = decodeSmtString(E.Kids[1].Text);
      std::vector<uint32_t> Hi = decodeSmtString(E.Kids[2].Text);
      // Per SMT-LIB, a non-single-character bound denotes re.none.
      if (Lo.size() != 1 || Hi.size() != 1 || Lo[0] > Hi[0])
        return M.empty();
      return M.pred(CharSet::range(Lo[0], Hi[0]));
    }
    // Indexed loop: ((_ re.loop m n) r); legacy: (re.loop r m n).
    if (Head.isList() && Head.Kids.size() == 4 &&
        Head.Kids[0].isSymbol("_") && Head.Kids[1].isSymbol("re.loop") &&
        Head.Kids[2].K == SExpr::Kind::Number &&
        Head.Kids[3].K == SExpr::Kind::Number && E.Kids.size() == 2) {
      int64_t Lo = Head.Kids[2].Number, Hi = Head.Kids[3].Number;
      if (Lo < 0 || Hi < Lo)
        return M.empty();
      return M.loop(compileRe(E.Kids[1]), static_cast<uint32_t>(Lo),
                    static_cast<uint32_t>(Hi));
    }
    if (Head.isSymbol("re.loop") && E.Kids.size() == 4 &&
        E.Kids[2].K == SExpr::Kind::Number &&
        E.Kids[3].K == SExpr::Kind::Number) {
      int64_t Lo = E.Kids[2].Number, Hi = E.Kids[3].Number;
      if (Lo < 0 || Hi < Lo)
        return M.empty();
      return M.loop(compileRe(E.Kids[1]), static_cast<uint32_t>(Lo),
                    static_cast<uint32_t>(Hi));
    }
    unsupported("unsupported regex constructor: " + Head.Text);
    return M.empty();
  }

  /// --- Solving --------------------------------------------------------------

  /// NNF with negations pushed onto atoms.
  BE nnf(BE E, bool Positive) {
    // Copy: recursive calls may grow the expression arena.
    BoolExprNode N = B.node(E);
    switch (N.Kind) {
    case BoolExprKind::False:
      return Positive ? B.falseExpr() : B.trueExpr();
    case BoolExprKind::True:
      return Positive ? B.trueExpr() : B.falseExpr();
    case BoolExprKind::Atom:
      return Positive ? E : B.not_(E);
    case BoolExprKind::Not: {
      BE Kid = N.Kids[0];
      return nnf(Kid, !Positive);
    }
    case BoolExprKind::And:
    case BoolExprKind::Or: {
      std::vector<BE> Kids = N.Kids;
      for (BE &Kid : Kids)
        Kid = nnf(Kid, Positive);
      bool MakeAnd = (N.Kind == BoolExprKind::And) == Positive;
      return MakeAnd ? B.and_(std::move(Kids)) : B.or_(std::move(Kids));
    }
    }
    return E;
  }

  /// Tries one implicant: per-variable intersection queries.
  bool tryCube(const std::map<uint32_t, bool> &Assign, bool &SawUnknown) {
    std::map<std::string, std::vector<MembershipLiteral>> PerVar;
    for (const auto &[AtomIdx, Value] : Assign)
      PerVar[Atoms[AtomIdx].Var].push_back({Atoms[AtomIdx].Regex, Value});
    std::vector<std::pair<std::string, std::string>> Model;
    for (const auto &[Var, Literals] : PerVar) {
      SolveResult R = Port.checkMembership(Literals, Opts);
      CumStats += R.Stats;
      ++RegexQueries;
      if (R.Status == SolveStatus::Unknown) {
        SawUnknown = true;
        return false;
      }
      if (!R.isSat())
        return false;
      // Route the witness back through the solver's promoted matcher pool
      // (compiled table once the regex is hot): an independent end-to-end
      // membership check of every literal before the model is emitted.
      for (const MembershipLiteral &L : Literals)
        if (Solver.matchesWord(L.Regex, R.Witness) != L.Positive) {
          SawUnknown = true; // soundness guard: never emit a bad model
          return false;
        }
      Model.emplace_back(Var, toUtf8(R.Witness));
    }
    // Unconstrained variables default to the empty string.
    for (const std::string &Var : StringVars)
      if (!PerVar.count(Var))
        Model.emplace_back(Var, "");
    std::sort(Model.begin(), Model.end());
    Cur.Model = std::move(Model);
    return true;
  }

  /// DFS over implicants of the NNF formula list (conjunctive agenda).
  bool enumerate(std::vector<BE> Agenda, size_t Next,
                 std::map<uint32_t, bool> &Assign, bool &SawUnknown,
                 size_t &CubesTried, size_t MaxCubes) {
    if (CubesTried >= MaxCubes)
      return false;
    if (Next == Agenda.size()) {
      ++CubesTried;
      return tryCube(Assign, SawUnknown);
    }
    BE Cur_ = Agenda[Next];
    const BoolExprNode &N = B.node(Cur_);
    switch (N.Kind) {
    case BoolExprKind::False:
      return false;
    case BoolExprKind::True:
      return enumerate(Agenda, Next + 1, Assign, SawUnknown, CubesTried,
                       MaxCubes);
    case BoolExprKind::Atom:
    case BoolExprKind::Not: {
      bool Value = N.Kind == BoolExprKind::Atom;
      uint32_t AtomIdx =
          Value ? N.Atom : B.node(N.Kids[0]).Atom;
      auto It = Assign.find(AtomIdx);
      if (It != Assign.end()) {
        if (It->second != Value)
          return false; // conflicting literal: dead branch
        return enumerate(Agenda, Next + 1, Assign, SawUnknown, CubesTried,
                         MaxCubes);
      }
      Assign.emplace(AtomIdx, Value);
      bool Found = enumerate(Agenda, Next + 1, Assign, SawUnknown,
                             CubesTried, MaxCubes);
      if (!Found)
        Assign.erase(AtomIdx);
      return Found;
    }
    case BoolExprKind::And: {
      std::vector<BE> NewAgenda = Agenda;
      NewAgenda.insert(NewAgenda.begin() + static_cast<ptrdiff_t>(Next) + 1,
                       N.Kids.begin(), N.Kids.end());
      NewAgenda[Next] = B.trueExpr();
      return enumerate(std::move(NewAgenda), Next, Assign, SawUnknown,
                       CubesTried, MaxCubes);
    }
    case BoolExprKind::Or: {
      for (BE Kid : N.Kids) {
        std::vector<BE> NewAgenda = Agenda;
        NewAgenda[Next] = Kid;
        if (enumerate(std::move(NewAgenda), Next, Assign, SawUnknown,
                      CubesTried, MaxCubes))
          return true;
        if (CubesTried >= MaxCubes)
          return false;
      }
      return false;
    }
    }
    return false;
  }

  void solve(const std::vector<BE> &Assertions) {
    ++ChecksRun;
    BE Formula = nnf(B.and_(Assertions), /*Positive=*/true);
    bool SawUnknown = false;
    size_t CubesTried = 0;
    const size_t MaxCubes = 4096;
    std::map<uint32_t, bool> Assign;
    bool Found = enumerate({Formula}, 0, Assign, SawUnknown, CubesTried,
                           MaxCubes);
    Cur.CubesTried = CubesTried;
    if (Found) {
      Cur.Status = SolveStatus::Sat;
      return;
    }
    if (SawUnknown || CubesTried >= MaxCubes) {
      Cur.Status = SolveStatus::Unknown;
      Cur.Stop = SawUnknown ? StopReason::SubqueryUnknown
                            : StopReason::CubeBudget;
      Cur.Note = SawUnknown ? "regex query budget exhausted"
                            : "implicant budget exhausted";
      return;
    }
    Cur.Status = SolveStatus::Unsat;
  }
};

} // namespace

/// --- Script mode -----------------------------------------------------------

SmtResult SmtSolver::solveScript(const std::string &Script,
                                 const SolveOptions &Opts) {
  obs::ScopedSpan Span("solveScript", "smt");
  SmtResult Result;
  SExprParseResult Parsed = parseSExprs(Script);
  if (!Parsed.Ok) {
    Result.Status = SolveStatus::Unsupported;
    Result.Stop = StopReason::ParseError;
    Result.Note = "parse error: " + Parsed.Error;
    Span.arg("status", std::string(statusName(Result.Status)));
    return Result;
  }

  portfolio::PortfolioSolver Port(Solver);
  ScriptContext Ctx(Solver, Port, Opts);

  auto runCheck = [&](const std::vector<BE> &Assumptions) {
    SmtCheck C = Ctx.checkSat(Assumptions);
    Result.Checks.push_back(C);
    Result.Status = C.Status;
    Result.Stop = C.Stop;
    Result.Note = C.Note;
    Result.Model = C.Model;
  };

  bool Failed = false;
  auto fail = [&](const std::string &Why) {
    Result.Status = SolveStatus::Unsupported;
    Result.Stop = StopReason::UnsupportedFragment;
    Result.Note = Why;
    Failed = true;
  };

  for (const SExpr &Form : Parsed.Forms) {
    if (!Form.isList() || Form.Kids.empty())
      continue;
    const SExpr &Head = Form.Kids[0];
    if (Head.isSymbol("set-info")) {
      Ctx.setInfo(Form);
    } else if (Head.isSymbol("get-info")) {
      // (get-info :statistics) — rendered from the work done so far, so
      // it must follow the check-sat it reports on.
      if (Form.Kids.size() == 2 && Form.Kids[1].isSymbol(":statistics"))
        Result.Statistics = Ctx.renderStatistics();
    } else if (Head.isSymbol("declare-fun") ||
               Head.isSymbol("declare-const")) {
      Ctx.declare(Form);
    } else if (Head.isSymbol("assert")) {
      Ctx.assertForm(Form);
    } else if (Head.isSymbol("push") || Head.isSymbol("pop")) {
      uint64_t N = 1;
      if (Form.Kids.size() == 2 && Form.Kids[1].K == SExpr::Kind::Number &&
          Form.Kids[1].Number >= 0)
        N = static_cast<uint64_t>(Form.Kids[1].Number);
      if (Head.isSymbol("push"))
        Ctx.push(N);
      else
        Ctx.pop(N);
    } else if (Head.isSymbol("check-sat")) {
      runCheck({});
    } else if (Head.isSymbol("check-sat-assuming")) {
      std::vector<BE> Assumptions;
      bool Ok = Form.Kids.size() == 2 && Form.Kids[1].isList();
      if (Ok)
        for (const SExpr &Lit : Form.Kids[1].Kids)
          if (!Ctx.compileAssumption(Lit, Assumptions))
            break;
      if (!Ok)
        fail("malformed check-sat-assuming");
      else if (!Ctx.hasError())
        runCheck(Assumptions);
    } else if (Head.isSymbol("reset-assertions")) {
      Ctx.resetAssertions();
    }
    // set-logic, set-option, get-model, get-value, echo, exit, and unknown
    // commands: no-ops in script mode (the session front end answers them).
    if (Ctx.hasError()) {
      fail(Ctx.takeError());
      break;
    }
    if (Failed)
      break;
  }
  // Script without check-sat: solve what we have (legacy behavior).
  if (!Failed && Result.Checks.empty())
    runCheck({});

  Result.ExpectedSat = Ctx.expectedSat();
  Result.Stats = Ctx.cumulativeStats();
  Result.CubesTried = Ctx.cubesTriedTotal();
  Span.arg("status", std::string(statusName(Result.Status)));
  // Safe point for SIGUSR1-driven exposition dumps between scripts.
  obs::pollExposition();
  return Result;
}

/// --- Session mode ----------------------------------------------------------

struct SmtSession::Impl {
  RegexSolver &Solver;
  SolveOptions Opts;
  portfolio::PortfolioSolver Port;
  /// Reconstructed on (reset); the arena behind Solver persists.
  std::optional<ScriptContext> Ctx;
  bool PrintSuccess = false;

  Impl(RegexSolver &S, const SolveOptions &O) : Solver(S), Opts(O), Port(S) {
    Ctx.emplace(Solver, Port, Opts);
  }
};

SmtSession::SmtSession(RegexSolver &S, const SolveOptions &Opts)
    : I(std::make_unique<Impl>(S, Opts)) {}

SmtSession::~SmtSession() = default;

void SmtSession::setVerdictCache(cache::VerdictCache *C) {
  I->Port.setVerdictCache(C);
}

size_t SmtSession::numAssertions() const { return I->Ctx->numAssertions(); }

size_t SmtSession::pushDepth() const { return I->Ctx->pushDepth(); }

void SmtSession::reset() {
  I->Ctx.emplace(I->Solver, I->Port, I->Opts);
  I->PrintSuccess = false;
}

SmtResult SmtSession::lastResult() const {
  SmtResult R;
  if (I->Ctx->haveChecked()) {
    const SmtCheck &C = I->Ctx->last();
    R.Status = C.Status;
    R.Stop = C.Stop;
    R.Note = C.Note;
    R.Model = C.Model;
    R.Checks.push_back(C);
  }
  R.ExpectedSat = I->Ctx->expectedSat();
  R.Stats = I->Ctx->cumulativeStats();
  R.CubesTried = I->Ctx->cubesTriedTotal();
  return R;
}

SmtSession::Reply SmtSession::execute(const SExpr &Form) {
  Reply R;
  auto success = [&] {
    if (I->PrintSuccess)
      R.Text = "success";
  };
  auto error = [&](const std::string &Why) {
    R.Text = "(error " + smtQuote(Why) + ")";
    R.IsError = true;
  };
  if (!Form.isList() || Form.Kids.empty() ||
      Form.Kids[0].K != SExpr::Kind::Symbol) {
    error("invalid command");
    return R;
  }
  ScriptContext &Ctx = *I->Ctx;
  const SExpr &Head = Form.Kids[0];

  if (Head.isSymbol("set-logic")) {
    success();
  } else if (Head.isSymbol("set-option")) {
    // Only :print-success is interpreted; other options are accepted and
    // ignored (solver budgets come from the session's SolveOptions).
    if (Form.Kids.size() == 3 && Form.Kids[1].isSymbol(":print-success"))
      I->PrintSuccess = Form.Kids[2].isSymbol("true");
    success();
  } else if (Head.isSymbol("set-info")) {
    Ctx.setInfo(Form);
    success();
  } else if (Head.isSymbol("declare-fun") || Head.isSymbol("declare-const")) {
    Ctx.declare(Form);
    if (Ctx.hasError())
      error(Ctx.takeError());
    else
      success();
  } else if (Head.isSymbol("assert")) {
    Ctx.assertForm(Form);
    if (Ctx.hasError())
      error(Ctx.takeError());
    else
      success();
  } else if (Head.isSymbol("push") || Head.isSymbol("pop")) {
    uint64_t N = 1;
    if (Form.Kids.size() == 2 && Form.Kids[1].K == SExpr::Kind::Number &&
        Form.Kids[1].Number >= 0)
      N = static_cast<uint64_t>(Form.Kids[1].Number);
    if (Head.isSymbol("push"))
      Ctx.push(N);
    else
      Ctx.pop(N);
    if (Ctx.hasError())
      error(Ctx.takeError());
    else
      success();
  } else if (Head.isSymbol("check-sat")) {
    SmtCheck C = Ctx.checkSat();
    ++Checks;
    SBD_OBS_INC(SessionChecks);
    R.Text = statusName(C.Status);
  } else if (Head.isSymbol("check-sat-assuming")) {
    std::vector<BE> Assumptions;
    if (Form.Kids.size() != 2 || !Form.Kids[1].isList()) {
      error("malformed check-sat-assuming");
      return R;
    }
    for (const SExpr &Lit : Form.Kids[1].Kids)
      if (!Ctx.compileAssumption(Lit, Assumptions))
        break;
    if (Ctx.hasError()) {
      error(Ctx.takeError());
      return R;
    }
    SmtCheck C = Ctx.checkSat(Assumptions);
    ++Checks;
    SBD_OBS_INC(SessionChecks);
    R.Text = statusName(C.Status);
  } else if (Head.isSymbol("get-model")) {
    if (Ctx.haveChecked() && Ctx.last().Status == SolveStatus::Sat)
      R.Text = Ctx.renderModel();
    else
      error("model is not available");
  } else if (Head.isSymbol("get-value")) {
    error("get-value is not supported; use get-model");
  } else if (Head.isSymbol("get-info")) {
    if (Form.Kids.size() != 2 || Form.Kids[1].K != SExpr::Kind::Symbol) {
      error("malformed get-info");
    } else if (Form.Kids[1].isSymbol(":statistics") ||
               Form.Kids[1].isSymbol(":all-statistics")) {
      R.Text = Ctx.renderStatistics();
    } else if (Form.Kids[1].isSymbol(":name")) {
      R.Text = "(:name \"sbd\")";
    } else if (Form.Kids[1].isSymbol(":error-behavior")) {
      R.Text = "(:error-behavior continued-execution)";
    } else {
      error("unsupported get-info flag: " + Form.Kids[1].Text);
    }
  } else if (Head.isSymbol("echo")) {
    if (Form.Kids.size() == 2 && Form.Kids[1].K == SExpr::Kind::String)
      R.Text = smtQuote(Form.Kids[1].Text);
    else
      error("malformed echo");
  } else if (Head.isSymbol("reset-assertions")) {
    Ctx.resetAssertions();
    success();
  } else if (Head.isSymbol("reset")) {
    reset();
    success();
  } else if (Head.isSymbol("exit")) {
    R.ExitRequested = true;
    success();
  } else {
    error("unsupported command: " + Head.Text);
  }
  return R;
}

std::vector<SmtSession::Reply> SmtSession::executeAll(const std::string &Text) {
  std::vector<Reply> Out;
  SExprParseResult Parsed = parseSExprs(Text);
  if (!Parsed.Ok) {
    Reply R;
    R.Text = "(error " + smtQuote("parse error: " + Parsed.Error) + ")";
    R.IsError = true;
    Out.push_back(std::move(R));
    return Out;
  }
  for (const SExpr &Form : Parsed.Forms) {
    Out.push_back(execute(Form));
    if (Out.back().ExitRequested)
      break;
  }
  // Safe point for SIGUSR1-driven exposition dumps between batches.
  obs::pollExposition();
  return Out;
}
