//===- smt/SmtSolver.cpp - SMT-LIB string/regex front end --------------------===//

#include "smt/SmtSolver.h"

#include "portfolio/Portfolio.h"
#include "re/SmtPrinter.h"
#include "support/Exposition.h"
#include "support/Histogram.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "support/Unicode.h"

#include <algorithm>
#include <set>

using namespace sbd;

namespace {

/// One membership atom: Var ∈ L(Regex). Length bounds and string literals
/// are compiled into this same shape.
struct Atom {
  std::string Var;
  Re Regex;
};

/// The per-script compilation and solving context.
class Script {
public:
  Script(RegexSolver &S, const SolveOptions &Options)
      : Solver(S), Port(S), M(S.regexManager()), Opts(Options) {}

  SmtResult run(const std::string &Text) {
    SExprParseResult Parsed = parseSExprs(Text);
    if (!Parsed.Ok) {
      Result.Status = SolveStatus::Unsupported;
      Result.Stop = StopReason::ParseError;
      Result.Note = "parse error: " + Parsed.Error;
      return Result;
    }
    std::vector<BE> Assertions;
    bool Solved = false;
    for (const SExpr &Form : Parsed.Forms) {
      if (Aborted)
        return Result;
      if (!Form.isList() || Form.Kids.empty())
        continue;
      const SExpr &Head = Form.Kids[0];
      if (Head.isSymbol("set-info")) {
        handleSetInfo(Form);
        continue;
      }
      if (Head.isSymbol("get-info")) {
        // (get-info :statistics) — rendered from the work done so far, so
        // it must follow the check-sat it reports on.
        if (Form.Kids.size() == 2 && Form.Kids[1].isSymbol(":statistics"))
          Result.Statistics = renderStatistics();
        continue;
      }
      // After the solve, remaining forms are only scanned for get-info
      // (handled above) — they must not disturb the verdict.
      if (Solved)
        continue;
      if (Head.isSymbol("declare-fun") || Head.isSymbol("declare-const")) {
        handleDeclare(Form);
        continue;
      }
      if (Head.isSymbol("assert")) {
        if (Form.Kids.size() != 2)
          return unsupported("malformed assert");
        Assertions.push_back(compileBool(Form.Kids[1], /*Positive=*/true));
        continue;
      }
      if (Head.isSymbol("check-sat")) {
        // Solve once; keep scanning so a trailing (get-info :statistics)
        // can report on this solve.
        if (!Aborted && !Solved) {
          solve(Assertions);
          Solved = true;
        }
        continue;
      }
      // set-logic, set-option, get-model, get-value, echo, exit: no-ops.
      if (Head.isSymbol("set-logic") || Head.isSymbol("set-option") ||
          Head.isSymbol("get-model") || Head.isSymbol("get-value") ||
          Head.isSymbol("echo") || Head.isSymbol("exit"))
        continue;
      if (Head.isSymbol("push") || Head.isSymbol("pop"))
        return unsupported("incremental scripts are not supported");
    }
    // Script without check-sat: solve what we have.
    if (!Aborted && !Solved)
      solve(Assertions);
    return Result;
  }

private:
  RegexSolver &Solver;
  /// Analyzer-driven engine selection for every membership sub-query
  /// (portfolio/Portfolio.h); Policy checks inherit the routing through
  /// here as well.
  portfolio::PortfolioSolver Port;
  RegexManager &M;
  SolveOptions Opts;
  BoolExprManager B;
  SmtResult Result;
  bool Aborted = false;
  uint64_t RegexQueries = 0;

  std::set<std::string> StringVars;
  std::vector<Atom> Atoms;
  std::map<std::pair<std::string, uint32_t>, uint32_t> AtomIndex;

  BE unsupportedExpr(const std::string &Why) {
    unsupported(Why);
    return B.falseExpr();
  }

  SmtResult unsupported(const std::string &Why) {
    if (!Aborted) {
      Aborted = true;
      Result.Status = SolveStatus::Unsupported;
      Result.Stop = StopReason::UnsupportedFragment;
      Result.Note = Why;
    }
    return Result;
  }

  /// Z3-style keyword list answering (get-info :statistics), built from
  /// the accumulated per-sub-query SolveStats.
  std::string renderStatistics() const {
    const SolveStats &St = Result.Stats;
    auto Ull = [](uint64_t V) { return std::to_string(V); };
    std::string Out = "(";
    Out += ":cubes-tried " + Ull(Result.CubesTried);
    Out += "\n :regex-queries " + Ull(RegexQueries);
    Out += "\n :derivative-calls " + Ull(St.DerivativeCalls);
    Out += "\n :dnf-calls " + Ull(St.DnfCalls);
    Out += "\n :dnf-branches-explored " + Ull(St.DnfBranchesExplored);
    Out += "\n :dnf-branches-pruned " + Ull(St.DnfBranchesPruned);
    Out += "\n :arcs-enumerated " + Ull(St.ArcsEnumerated);
    Out += "\n :minterm-computations " + Ull(St.MintermComputations);
    Out += "\n :minterms-produced " + Ull(St.MintermsProduced);
    Out += "\n :intern-hits " + Ull(St.InternHits);
    Out += "\n :intern-misses " + Ull(St.InternMisses);
    Out += "\n :memo-hits " + Ull(St.MemoHits);
    Out += "\n :memo-misses " + Ull(St.MemoMisses);
    Out += "\n :arena-nodes " + Ull(St.ArenaNodes);
    Out += "\n :peak-frontier " + Ull(St.PeakFrontier);
    Out += "\n :solver-steps " + Ull(St.SolverSteps);
    // Compiled serving path. These live in the process-wide registry (the
    // compiled kernel never touches per-query stats), so they are
    // cumulative across the solver's lifetime like the rest of this list.
    obs::MetricShard Reg = obs::MetricsRegistry::global().snapshot();
    Out += "\n :compiled-promotions " +
           Ull(Reg.get(obs::Counter::CompiledPromotions));
    Out += "\n :compiled-chars-scanned " +
           Ull(Reg.get(obs::Counter::CompiledCharsScanned));
    Out += "\n :compiled-prefilter-skips " +
           Ull(Reg.get(obs::Counter::CompiledPrefilterSkips));
    Out += "\n :compiled-fallbacks " +
           Ull(Reg.get(obs::Counter::CompiledFallbacks));
    Out += "\n :minterm-time-us " + std::to_string(St.MintermUs);
    Out += "\n :derive-time-us " + std::to_string(St.DeriveUs);
    Out += "\n :dnf-time-us " + std::to_string(St.DnfUs);
    Out += "\n :cache-probe-time-us " + std::to_string(St.CacheProbeUs);
    Out += "\n :scan-time-us " + std::to_string(St.ScanUs);
    Out += "\n :search-time-us " + std::to_string(St.SearchUs);
    Out += "\n :solve-time-us " + std::to_string(St.TotalUs);
    // Latency distribution over every regex sub-query solved so far, from
    // the process-wide histogram registry (cumulative, like the compiled
    // counters above; all-zero at -DSBD_OBS=0).
    obs::HistShard Hists = obs::HistogramRegistry::global().snapshot();
    const obs::HistShard::Data &Lat =
        Hists.H[static_cast<size_t>(obs::Hist::SolveLatencyUs)];
    Out += "\n :solve-latency-count " + Ull(Lat.Count);
    Out += "\n :solve-latency-p50-us " + Ull(obs::histPercentile(Lat, 50));
    Out += "\n :solve-latency-p90-us " + Ull(obs::histPercentile(Lat, 90));
    Out += "\n :solve-latency-p99-us " + Ull(obs::histPercentile(Lat, 99));
    Out += ")";
    return Out;
  }

  void handleSetInfo(const SExpr &Form) {
    // (set-info :status sat|unsat|unknown)
    if (Form.Kids.size() == 3 && Form.Kids[1].isSymbol(":status")) {
      if (Form.Kids[2].isSymbol("sat"))
        Result.ExpectedSat = true;
      else if (Form.Kids[2].isSymbol("unsat"))
        Result.ExpectedSat = false;
    }
  }

  void handleDeclare(const SExpr &Form) {
    // (declare-const x String) | (declare-fun x () String)
    bool IsFun = Form.Kids[0].isSymbol("declare-fun");
    size_t SortIdx = IsFun ? 3 : 2;
    if (Form.Kids.size() != SortIdx + 1 ||
        Form.Kids[1].K != SExpr::Kind::Symbol) {
      unsupported("malformed declaration");
      return;
    }
    if (IsFun && !(Form.Kids[2].isList() && Form.Kids[2].Kids.empty())) {
      unsupported("only nullary functions are supported");
      return;
    }
    const SExpr &Sort = Form.Kids[SortIdx];
    if (Sort.isSymbol("String")) {
      StringVars.insert(Form.Kids[1].Text);
      return;
    }
    if (Sort.isSymbol("Bool") || Sort.isSymbol("Int")) {
      // Declared but must not be used by any assertion we compile.
      return;
    }
    unsupported("unsupported sort: " + Sort.Text);
  }

  BE atomExpr(const std::string &Var, Re Regex) {
    auto Key = std::make_pair(Var, Regex.Id);
    auto It = AtomIndex.find(Key);
    uint32_t Idx;
    if (It != AtomIndex.end()) {
      Idx = It->second;
    } else {
      Idx = static_cast<uint32_t>(Atoms.size());
      Atoms.push_back({Var, Regex});
      AtomIndex.emplace(Key, Idx);
    }
    return B.atom(Idx);
  }

  /// Requires E to name a declared string variable.
  std::optional<std::string> asStringVar(const SExpr &E) {
    if (E.K == SExpr::Kind::Symbol && StringVars.count(E.Text))
      return E.Text;
    return std::nullopt;
  }

  /// --- Boolean layer -------------------------------------------------------

  BE compileBool(const SExpr &E, bool) {
    if (Aborted)
      return B.falseExpr();
    if (E.isSymbol("true"))
      return B.trueExpr();
    if (E.isSymbol("false"))
      return B.falseExpr();
    if (!E.isList() || E.Kids.empty())
      return unsupportedExpr("unsupported Boolean term");
    const SExpr &Head = E.Kids[0];

    if (Head.isSymbol("and") || Head.isSymbol("or")) {
      std::vector<BE> Kids;
      for (size_t I = 1; I != E.Kids.size(); ++I)
        Kids.push_back(compileBool(E.Kids[I], true));
      return Head.isSymbol("and") ? B.and_(std::move(Kids))
                                  : B.or_(std::move(Kids));
    }
    if (Head.isSymbol("not")) {
      if (E.Kids.size() != 2)
        return unsupportedExpr("malformed not");
      return B.not_(compileBool(E.Kids[1], true));
    }
    if (Head.isSymbol("=>")) {
      if (E.Kids.size() != 3)
        return unsupportedExpr("malformed =>");
      return B.or2(B.not_(compileBool(E.Kids[1], true)),
                   compileBool(E.Kids[2], true));
    }
    if (Head.isSymbol("str.in_re") || Head.isSymbol("str.in.re")) {
      if (E.Kids.size() != 3)
        return unsupportedExpr("malformed str.in_re");
      auto Var = asStringVar(E.Kids[1]);
      if (!Var)
        return unsupportedExpr("str.in_re on a non-variable");
      return atomExpr(*Var, compileRe(E.Kids[2]));
    }
    if (Head.isSymbol("=")) {
      if (E.Kids.size() != 3)
        return unsupportedExpr("only binary = is supported");
      return compileEquality(E.Kids[1], E.Kids[2]);
    }
    if (Head.isSymbol("distinct")) {
      if (E.Kids.size() != 3)
        return unsupportedExpr("only binary distinct is supported");
      return B.not_(compileEquality(E.Kids[1], E.Kids[2]));
    }
    if (Head.isSymbol("xor")) {
      if (E.Kids.size() != 3)
        return unsupportedExpr("malformed xor");
      BE L = compileBool(E.Kids[1], true);
      BE Rb = compileBool(E.Kids[2], true);
      return B.or2(B.and2(L, B.not_(Rb)), B.and2(B.not_(L), Rb));
    }
    if (Head.isSymbol("ite")) {
      if (E.Kids.size() != 4)
        return unsupportedExpr("malformed ite");
      BE C = compileBool(E.Kids[1], true);
      BE Tb = compileBool(E.Kids[2], true);
      BE Eb = compileBool(E.Kids[3], true);
      return B.or2(B.and2(C, Tb), B.and2(B.not_(C), Eb));
    }
    if (Head.isSymbol("<=") || Head.isSymbol(">=") || Head.isSymbol("<") ||
        Head.isSymbol(">"))
      return compileLengthCompare(Head.Text, E);
    if (Head.isSymbol("str.prefixof") || Head.isSymbol("str.suffixof") ||
        Head.isSymbol("str.contains"))
      return compileStringPredicate(Head.Text, E);
    return unsupportedExpr("unsupported predicate: " + Head.Text);
  }

  BE compileEquality(const SExpr &L, const SExpr &Rhs) {
    // (= s "lit") → membership in the literal word.
    if (auto Var = asStringVar(L); Var && Rhs.K == SExpr::Kind::String)
      return atomExpr(*Var, M.word(decodeSmtString(Rhs.Text)));
    if (auto Var = asStringVar(Rhs); Var && L.K == SExpr::Kind::String)
      return atomExpr(*Var, M.word(decodeSmtString(L.Text)));
    // (= (str.len s) k).
    if (auto Len = asLenOf(L); Len && Rhs.K == SExpr::Kind::Number)
      return lengthAtom(*Len, "=", Rhs.Number);
    if (auto Len = asLenOf(Rhs); Len && L.K == SExpr::Kind::Number)
      return lengthAtom(*Len, "=", L.Number);
    // (= (str.at s k) "c"): character k exists and equals c; the empty
    // string means |s| <= k (SMT-LIB's out-of-range semantics).
    if (auto At = asAtOf(L); At && Rhs.K == SExpr::Kind::String)
      return atAtom(At->first, At->second, Rhs.Text);
    if (auto At = asAtOf(Rhs); At && L.K == SExpr::Kind::String)
      return atAtom(At->first, At->second, L.Text);
    // (= (str.to_code (str.at s k)) n).
    if (auto Code = asCodeOf(L); Code && Rhs.K == SExpr::Kind::Number)
      return codeAtom(Code->first, Code->second, "=", Rhs.Number);
    if (auto Code = asCodeOf(Rhs); Code && L.K == SExpr::Kind::Number)
      return codeAtom(Code->first, Code->second, "=", L.Number);
    if (L.K == SExpr::Kind::String && Rhs.K == SExpr::Kind::String)
      return L.Text == Rhs.Text ? B.trueExpr() : B.falseExpr();
    return unsupportedExpr("unsupported equality");
  }

  /// Matches (str.at s k) with a declared variable and constant index.
  std::optional<std::pair<std::string, int64_t>> asAtOf(const SExpr &E) {
    if (E.isList() && E.Kids.size() == 3 && E.Kids[0].isSymbol("str.at") &&
        E.Kids[2].K == SExpr::Kind::Number)
      if (auto Var = asStringVar(E.Kids[1]))
        return std::make_pair(*Var, E.Kids[2].Number);
    return std::nullopt;
  }

  /// Matches (str.to_code (str.at s k)) — the character-code view used by
  /// the paper's side-constraint example (footnote: "the underlying
  /// character theory is equipped with a total order", e.g. s0 > 0).
  std::optional<std::pair<std::string, int64_t>> asCodeOf(const SExpr &E) {
    if (E.isList() && E.Kids.size() == 2 &&
        (E.Kids[0].isSymbol("str.to_code") ||
         E.Kids[0].isSymbol("str.to.code")))
      return asAtOf(E.Kids[1]);
    return std::nullopt;
  }

  /// (str.to_code (str.at Var K)) Op N as a membership atom. Per SMT-LIB,
  /// str.to_code yields -1 when its argument is not a single character —
  /// here, when |Var| <= K.
  BE codeAtom(const std::string &Var, int64_t K, const std::string &Op,
              int64_t N) {
    if (K < 0)
      return unsupportedExpr("negative str.at index");
    uint32_t Ku = static_cast<uint32_t>(K);
    // The set of character codes satisfying "code Op N".
    CharSet Chars;
    bool MinusOneSatisfies = false; // does the out-of-range value -1 satisfy?
    auto Clamp = [](int64_t V) {
      if (V < 0)
        return int64_t(0);
      if (V > int64_t(MaxCodePoint))
        return int64_t(MaxCodePoint);
      return V;
    };
    if (Op == "=") {
      if (N == -1)
        MinusOneSatisfies = true;
      else if (N >= 0 && N <= int64_t(MaxCodePoint))
        Chars = CharSet::singleton(static_cast<uint32_t>(N));
    } else if (Op == "<=") {
      MinusOneSatisfies = true; // -1 <= N for every N >= -1 of interest
      if (N >= 0)
        Chars = CharSet::range(0, static_cast<uint32_t>(Clamp(N)));
      else
        MinusOneSatisfies = N >= -1;
    } else if (Op == "<") {
      MinusOneSatisfies = N > -1;
      if (N > 0)
        Chars = CharSet::range(0, static_cast<uint32_t>(Clamp(N - 1)));
    } else if (Op == ">=") {
      MinusOneSatisfies = N <= -1;
      if (N <= int64_t(MaxCodePoint))
        Chars = CharSet::range(static_cast<uint32_t>(Clamp(N)), MaxCodePoint);
    } else if (Op == ">") {
      MinusOneSatisfies = N < -1;
      if (N < int64_t(MaxCodePoint))
        Chars =
            CharSet::range(static_cast<uint32_t>(Clamp(N + 1)), MaxCodePoint);
    } else {
      return unsupportedExpr("unknown comparison " + Op);
    }
    // Position-k character in Chars: .{K} [Chars] .*; the -1 case adds the
    // |s| <= K disjunct.
    std::vector<BE> Cases;
    if (!Chars.isEmpty()) {
      Re Prefix = M.loop(M.anyChar(), Ku, Ku);
      Cases.push_back(atomExpr(
          Var, M.concat(Prefix, M.concat(M.pred(Chars), M.top()))));
    }
    if (MinusOneSatisfies)
      Cases.push_back(atomExpr(Var, M.loop(M.anyChar(), 0, Ku)));
    return B.or_(std::move(Cases));
  }

  /// (str.at Var K) = Value as a membership atom.
  BE atAtom(const std::string &Var, int64_t K, const std::string &Value) {
    std::vector<uint32_t> Cps = decodeSmtString(Value);
    if (K < 0)
      return Cps.empty() ? B.trueExpr() : B.falseExpr();
    if (Cps.empty()) // |s| <= K
      return atomExpr(Var, M.loop(M.anyChar(), 0, static_cast<uint32_t>(K)));
    if (Cps.size() != 1)
      return B.falseExpr(); // str.at never yields multi-character strings
    // s ∈ .{K} c .*
    Re Prefix = M.loop(M.anyChar(), static_cast<uint32_t>(K),
                       static_cast<uint32_t>(K));
    return atomExpr(Var, M.concat(Prefix, M.concat(M.chr(Cps[0]), M.top())));
  }

  std::optional<std::string> asLenOf(const SExpr &E) {
    if (E.isList() && E.Kids.size() == 2 &&
        (E.Kids[0].isSymbol("str.len") || E.Kids[0].isSymbol("str.length")))
      return asStringVar(E.Kids[1]);
    return std::nullopt;
  }

  BE compileLengthCompare(const std::string &Op, const SExpr &E) {
    if (E.Kids.size() != 3)
      return unsupportedExpr("malformed comparison");
    const SExpr &L = E.Kids[1], &Rhs = E.Kids[2];
    if (auto Code = asCodeOf(L); Code && Rhs.K == SExpr::Kind::Number)
      return codeAtom(Code->first, Code->second, Op, Rhs.Number);
    if (auto Code = asCodeOf(Rhs); Code && L.K == SExpr::Kind::Number) {
      std::string Flipped = Op == "<=" ? ">=" : Op == ">=" ? "<="
                            : Op == "<" ? ">"
                                        : "<";
      return codeAtom(Code->first, Code->second, Flipped, L.Number);
    }
    if (auto Len = asLenOf(L); Len && Rhs.K == SExpr::Kind::Number)
      return lengthAtom(*Len, Op, Rhs.Number);
    if (auto Len = asLenOf(Rhs); Len && L.K == SExpr::Kind::Number) {
      // k op len(s) flips the comparison.
      std::string Flipped = Op == "<=" ? ">=" : Op == ">=" ? "<="
                            : Op == "<" ? ">"
                                        : "<";
      return lengthAtom(*Len, Flipped, L.Number);
    }
    return unsupportedExpr("only str.len-vs-constant comparisons supported");
  }

  /// len(Var) Op K as a membership in `.{m,n}`.
  BE lengthAtom(const std::string &Var, const std::string &Op, int64_t K) {
    Re Any = M.anyChar();
    auto Window = [&](uint32_t Lo, uint32_t Hi) {
      return atomExpr(Var, M.loop(Any, Lo, Hi));
    };
    if (Op == "=") {
      if (K < 0)
        return B.falseExpr();
      return Window(static_cast<uint32_t>(K), static_cast<uint32_t>(K));
    }
    if (Op == "<=") {
      if (K < 0)
        return B.falseExpr();
      return Window(0, static_cast<uint32_t>(K));
    }
    if (Op == "<")
      return K <= 0 ? B.falseExpr() : Window(0, static_cast<uint32_t>(K - 1));
    if (Op == ">=") {
      if (K <= 0)
        return B.trueExpr();
      return Window(static_cast<uint32_t>(K), LoopInf);
    }
    if (Op == ">") {
      if (K < 0)
        return B.trueExpr();
      return Window(static_cast<uint32_t>(K + 1), LoopInf);
    }
    return unsupportedExpr("unknown comparison " + Op);
  }

  BE compileStringPredicate(const std::string &Op, const SExpr &E) {
    if (E.Kids.size() != 3)
      return unsupportedExpr("malformed " + Op);
    // Only constant-vs-variable forms reduce to memberships.
    const SExpr &L = E.Kids[1], &Rhs = E.Kids[2];
    if (Op == "str.contains") {
      auto Var = asStringVar(L);
      if (!Var || Rhs.K != SExpr::Kind::String)
        return unsupportedExpr("str.contains needs (var, literal)");
      Re Lit = M.word(decodeSmtString(Rhs.Text));
      return atomExpr(*Var, M.concat(M.top(), M.concat(Lit, M.top())));
    }
    // prefixof/suffixof take the literal first.
    auto Var = asStringVar(Rhs);
    if (!Var || L.K != SExpr::Kind::String)
      return unsupportedExpr(Op + " needs (literal, var)");
    Re Lit = M.word(decodeSmtString(L.Text));
    Re Pattern = Op == "str.prefixof" ? M.concat(Lit, M.top())
                                      : M.concat(M.top(), Lit);
    return atomExpr(*Var, Pattern);
  }

  /// --- Regex layer ----------------------------------------------------------

  Re compileRe(const SExpr &E) {
    if (Aborted)
      return M.empty();
    if (E.isSymbol("re.none"))
      return M.empty();
    if (E.isSymbol("re.all"))
      return M.top();
    if (E.isSymbol("re.allchar"))
      return M.anyChar();
    if (!E.isList() || E.Kids.empty()) {
      unsupported("unsupported regex term");
      return M.empty();
    }
    const SExpr &Head = E.Kids[0];
    if (Head.isSymbol("str.to_re") || Head.isSymbol("str.to.re")) {
      if (E.Kids.size() != 2 || E.Kids[1].K != SExpr::Kind::String) {
        unsupported("str.to_re needs a string literal");
        return M.empty();
      }
      return M.word(decodeSmtString(E.Kids[1].Text));
    }
    if (Head.isSymbol("re.union") || Head.isSymbol("re.inter") ||
        Head.isSymbol("re.++")) {
      std::vector<Re> Kids;
      for (size_t I = 1; I != E.Kids.size(); ++I)
        Kids.push_back(compileRe(E.Kids[I]));
      if (Head.isSymbol("re.union"))
        return M.unionList(std::move(Kids));
      if (Head.isSymbol("re.inter"))
        return M.interList(std::move(Kids));
      return M.concatList(Kids);
    }
    if (Head.isSymbol("re.comp") && E.Kids.size() == 2)
      return M.complement(compileRe(E.Kids[1]));
    if (Head.isSymbol("re.diff") && E.Kids.size() == 3)
      return M.diff(compileRe(E.Kids[1]), compileRe(E.Kids[2]));
    if (Head.isSymbol("re.*") && E.Kids.size() == 2)
      return M.star(compileRe(E.Kids[1]));
    if (Head.isSymbol("re.+") && E.Kids.size() == 2)
      return M.plus(compileRe(E.Kids[1]));
    if (Head.isSymbol("re.opt") && E.Kids.size() == 2)
      return M.opt(compileRe(E.Kids[1]));
    if (Head.isSymbol("re.range") && E.Kids.size() == 3 &&
        E.Kids[1].K == SExpr::Kind::String &&
        E.Kids[2].K == SExpr::Kind::String) {
      std::vector<uint32_t> Lo = decodeSmtString(E.Kids[1].Text);
      std::vector<uint32_t> Hi = decodeSmtString(E.Kids[2].Text);
      // Per SMT-LIB, a non-single-character bound denotes re.none.
      if (Lo.size() != 1 || Hi.size() != 1 || Lo[0] > Hi[0])
        return M.empty();
      return M.pred(CharSet::range(Lo[0], Hi[0]));
    }
    // Indexed loop: ((_ re.loop m n) r); legacy: (re.loop r m n).
    if (Head.isList() && Head.Kids.size() == 4 &&
        Head.Kids[0].isSymbol("_") && Head.Kids[1].isSymbol("re.loop") &&
        Head.Kids[2].K == SExpr::Kind::Number &&
        Head.Kids[3].K == SExpr::Kind::Number && E.Kids.size() == 2) {
      int64_t Lo = Head.Kids[2].Number, Hi = Head.Kids[3].Number;
      if (Lo < 0 || Hi < Lo)
        return M.empty();
      return M.loop(compileRe(E.Kids[1]), static_cast<uint32_t>(Lo),
                    static_cast<uint32_t>(Hi));
    }
    if (Head.isSymbol("re.loop") && E.Kids.size() == 4 &&
        E.Kids[2].K == SExpr::Kind::Number &&
        E.Kids[3].K == SExpr::Kind::Number) {
      int64_t Lo = E.Kids[2].Number, Hi = E.Kids[3].Number;
      if (Lo < 0 || Hi < Lo)
        return M.empty();
      return M.loop(compileRe(E.Kids[1]), static_cast<uint32_t>(Lo),
                    static_cast<uint32_t>(Hi));
    }
    unsupported("unsupported regex constructor: " + Head.Text);
    return M.empty();
  }

  /// --- Solving --------------------------------------------------------------

  /// NNF with negations pushed onto atoms.
  BE nnf(BE E, bool Positive) {
    // Copy: recursive calls may grow the expression arena.
    BoolExprNode N = B.node(E);
    switch (N.Kind) {
    case BoolExprKind::False:
      return Positive ? B.falseExpr() : B.trueExpr();
    case BoolExprKind::True:
      return Positive ? B.trueExpr() : B.falseExpr();
    case BoolExprKind::Atom:
      return Positive ? E : B.not_(E);
    case BoolExprKind::Not: {
      BE Kid = N.Kids[0];
      return nnf(Kid, !Positive);
    }
    case BoolExprKind::And:
    case BoolExprKind::Or: {
      std::vector<BE> Kids = N.Kids;
      for (BE &Kid : Kids)
        Kid = nnf(Kid, Positive);
      bool MakeAnd = (N.Kind == BoolExprKind::And) == Positive;
      return MakeAnd ? B.and_(std::move(Kids)) : B.or_(std::move(Kids));
    }
    }
    return E;
  }

  /// Tries one implicant: per-variable intersection queries.
  bool tryCube(const std::map<uint32_t, bool> &Assign, bool &SawUnknown) {
    std::map<std::string, std::vector<MembershipLiteral>> PerVar;
    for (const auto &[AtomIdx, Value] : Assign)
      PerVar[Atoms[AtomIdx].Var].push_back({Atoms[AtomIdx].Regex, Value});
    std::vector<std::pair<std::string, std::string>> Model;
    for (const auto &[Var, Literals] : PerVar) {
      SolveResult R = Port.checkMembership(Literals, Opts);
      Result.Stats += R.Stats;
      ++RegexQueries;
      if (R.Status == SolveStatus::Unknown) {
        SawUnknown = true;
        return false;
      }
      if (!R.isSat())
        return false;
      // Route the witness back through the solver's promoted matcher pool
      // (compiled table once the regex is hot): an independent end-to-end
      // membership check of every literal before the model is emitted.
      for (const MembershipLiteral &L : Literals)
        if (Solver.matchesWord(L.Regex, R.Witness) != L.Positive) {
          SawUnknown = true; // soundness guard: never emit a bad model
          return false;
        }
      Model.emplace_back(Var, toUtf8(R.Witness));
    }
    // Unconstrained variables default to the empty string.
    for (const std::string &Var : StringVars)
      if (!PerVar.count(Var))
        Model.emplace_back(Var, "");
    std::sort(Model.begin(), Model.end());
    Result.Model = std::move(Model);
    return true;
  }

  /// DFS over implicants of the NNF formula list (conjunctive agenda).
  bool enumerate(std::vector<BE> Agenda, size_t Next,
                 std::map<uint32_t, bool> &Assign, bool &SawUnknown,
                 size_t &CubesTried, size_t MaxCubes) {
    if (CubesTried >= MaxCubes)
      return false;
    if (Next == Agenda.size()) {
      ++CubesTried;
      return tryCube(Assign, SawUnknown);
    }
    BE Cur = Agenda[Next];
    const BoolExprNode &N = B.node(Cur);
    switch (N.Kind) {
    case BoolExprKind::False:
      return false;
    case BoolExprKind::True:
      return enumerate(Agenda, Next + 1, Assign, SawUnknown, CubesTried,
                       MaxCubes);
    case BoolExprKind::Atom:
    case BoolExprKind::Not: {
      bool Value = N.Kind == BoolExprKind::Atom;
      uint32_t AtomIdx =
          Value ? N.Atom : B.node(N.Kids[0]).Atom;
      auto It = Assign.find(AtomIdx);
      if (It != Assign.end()) {
        if (It->second != Value)
          return false; // conflicting literal: dead branch
        return enumerate(Agenda, Next + 1, Assign, SawUnknown, CubesTried,
                         MaxCubes);
      }
      Assign.emplace(AtomIdx, Value);
      bool Found = enumerate(Agenda, Next + 1, Assign, SawUnknown,
                             CubesTried, MaxCubes);
      if (!Found)
        Assign.erase(AtomIdx);
      return Found;
    }
    case BoolExprKind::And: {
      std::vector<BE> NewAgenda = Agenda;
      NewAgenda.insert(NewAgenda.begin() + Next + 1, N.Kids.begin(),
                       N.Kids.end());
      NewAgenda[Next] = B.trueExpr();
      return enumerate(std::move(NewAgenda), Next, Assign, SawUnknown,
                       CubesTried, MaxCubes);
    }
    case BoolExprKind::Or: {
      for (BE Kid : N.Kids) {
        std::vector<BE> NewAgenda = Agenda;
        NewAgenda[Next] = Kid;
        if (enumerate(std::move(NewAgenda), Next, Assign, SawUnknown,
                      CubesTried, MaxCubes))
          return true;
        if (CubesTried >= MaxCubes)
          return false;
      }
      return false;
    }
    }
    return false;
  }

  void solve(const std::vector<BE> &Assertions) {
    BE Formula = nnf(B.and_(Assertions), /*Positive=*/true);
    bool SawUnknown = false;
    size_t CubesTried = 0;
    const size_t MaxCubes = 4096;
    std::map<uint32_t, bool> Assign;
    bool Found = enumerate({Formula}, 0, Assign, SawUnknown, CubesTried,
                           MaxCubes);
    Result.CubesTried = CubesTried;
    if (Found) {
      Result.Status = SolveStatus::Sat;
      return;
    }
    if (SawUnknown || CubesTried >= MaxCubes) {
      Result.Status = SolveStatus::Unknown;
      Result.Stop = SawUnknown ? StopReason::SubqueryUnknown
                               : StopReason::CubeBudget;
      Result.Note = SawUnknown ? "regex query budget exhausted"
                               : "implicant budget exhausted";
      return;
    }
    Result.Status = SolveStatus::Unsat;
  }
};

} // namespace

SmtResult SmtSolver::solveScript(const std::string &Script,
                                 const SolveOptions &Opts) {
  obs::ScopedSpan Span("solveScript", "smt");
  class Script Ctx(Solver, Opts);
  SmtResult R = Ctx.run(Script);
  Span.arg("status", std::string(statusName(R.Status)));
  // Safe point for SIGUSR1-driven exposition dumps between scripts.
  obs::pollExposition();
  return R;
}
