//===- smt/SExpr.cpp - S-expression reader -----------------------------------===//

#include "smt/SExpr.h"

#include <cctype>

using namespace sbd;

namespace {

class Reader {
public:
  explicit Reader(const std::string &Text) : In(Text) {}

  SExprParseResult run() {
    SExprParseResult R;
    skipTrivia();
    while (!atEnd() && !Failed) {
      R.Forms.push_back(parseOne());
      skipTrivia();
    }
    R.Ok = !Failed;
    R.Error = Err;
    R.ErrorPos = ErrPos;
    return R;
  }

private:
  const std::string &In;
  size_t Pos = 0;
  bool Failed = false;
  std::string Err;
  size_t ErrPos = 0;

  bool atEnd() const { return Pos >= In.size(); }
  char peek() const { return In[Pos]; }

  void fail(const std::string &Msg) {
    if (!Failed) {
      Failed = true;
      Err = Msg;
      ErrPos = Pos;
    }
  }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      if (C == ';') {
        while (!atEnd() && peek() != '\n')
          ++Pos;
        continue;
      }
      break;
    }
  }

  static bool isSymbolChar(char C) {
    if (std::isalnum(static_cast<unsigned char>(C)))
      return true;
    // SMT-LIB simple-symbol characters (':' admits keywords like :status).
    return std::string("~!@$%^&*_-+=<>.?/:").find(C) != std::string::npos;
  }

  SExpr parseOne() {
    skipTrivia();
    if (atEnd()) {
      fail("unexpected end of input");
      return SExpr{};
    }
    char C = peek();
    if (C == '(') {
      ++Pos;
      SExpr L;
      L.K = SExpr::Kind::List;
      skipTrivia();
      while (!atEnd() && peek() != ')') {
        L.Kids.push_back(parseOne());
        if (Failed)
          return L;
        skipTrivia();
      }
      if (atEnd()) {
        fail("expected ')'");
        return L;
      }
      ++Pos; // ')'
      return L;
    }
    if (C == ')') {
      fail("unexpected ')'");
      return SExpr{};
    }
    if (C == '"')
      return parseString();
    if (C == '|')
      return parseQuotedSymbol();
    return parseAtom();
  }

  SExpr parseString() {
    ++Pos; // opening quote
    SExpr S;
    S.K = SExpr::Kind::String;
    while (!atEnd()) {
      char C = In[Pos++];
      if (C == '"') {
        // SMT-LIB escapes a quote by doubling it.
        if (!atEnd() && peek() == '"') {
          S.Text.push_back('"');
          ++Pos;
          continue;
        }
        return S;
      }
      S.Text.push_back(C);
    }
    fail("unterminated string literal");
    return S;
  }

  SExpr parseQuotedSymbol() {
    ++Pos; // opening '|'
    SExpr S;
    S.K = SExpr::Kind::Symbol;
    while (!atEnd()) {
      char C = In[Pos++];
      if (C == '|')
        return S;
      S.Text.push_back(C);
    }
    fail("unterminated quoted symbol");
    return S;
  }

  SExpr parseAtom() {
    size_t Start = Pos;
    while (!atEnd() && isSymbolChar(peek()))
      ++Pos;
    if (Pos == Start) {
      fail("unexpected character");
      ++Pos;
      return SExpr{};
    }
    std::string Text = In.substr(Start, Pos - Start);
    // Numerals (with optional leading '-').
    bool Numeric = !Text.empty();
    size_t DigitsFrom = Text[0] == '-' && Text.size() > 1 ? 1 : 0;
    for (size_t I = DigitsFrom; I != Text.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(Text[I]))) {
        Numeric = false;
        break;
      }
    if (Text == "-")
      Numeric = false;
    SExpr A;
    if (Numeric) {
      A.K = SExpr::Kind::Number;
      A.Number = std::stoll(Text);
      A.Text = std::move(Text);
    } else {
      A.K = SExpr::Kind::Symbol;
      A.Text = std::move(Text);
    }
    return A;
  }
};

} // namespace

SExprParseResult sbd::parseSExprs(const std::string &Input) {
  Reader R(Input);
  return R.run();
}
