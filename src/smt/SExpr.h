//===- smt/SExpr.h - S-expression reader for the SMT-LIB fragment ----------===//
///
/// \file
/// A small reader for the SMT-LIB2 surface syntax used by the string/regex
/// benchmarks: symbols, numerals, string literals with `""` escaping, and
/// parenthesized lists. Comments (`;` to end of line) are skipped.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SMT_SEXPR_H
#define SBD_SMT_SEXPR_H

#include <cstdint>
#include <string>
#include <vector>

namespace sbd {

/// One parsed s-expression node.
struct SExpr {
  enum class Kind : uint8_t { Symbol, String, Number, List };

  Kind K = Kind::List;
  std::string Text;         ///< Symbol name or decoded string literal
  int64_t Number = 0;       ///< Numeral value
  std::vector<SExpr> Kids;  ///< List elements

  bool isSymbol(const char *S) const {
    return K == Kind::Symbol && Text == S;
  }
  bool isList() const { return K == Kind::List; }
};

/// Result of reading a whole script (sequence of top-level forms).
struct SExprParseResult {
  bool Ok = false;
  std::vector<SExpr> Forms;
  std::string Error;
  size_t ErrorPos = 0;
};

/// Parses an SMT-LIB script into top-level forms.
SExprParseResult parseSExprs(const std::string &Input);

} // namespace sbd

#endif // SBD_SMT_SEXPR_H
