//===- smt/SmtSolver.h - SMT-LIB string/regex front end ---------------------===//
///
/// \file
/// A standalone front end for the SMT-LIB fragment the paper's benchmarks
/// live in: string constants constrained by Boolean combinations of regex
/// memberships, plus `str.len` bounds and a few string predicates that
/// reduce to memberships. This reproduces the dZ3 slice of Z3's sequence
/// theory in isolation:
///
///  - every regex term compiles to a symbolic ERE;
///  - `str.len` comparisons compile to `.{m,n}` regexes;
///  - Boolean structure over memberships of one string compiles to a single
///    extended regex (conjunction → `&`, negation → `~`, disjunction → `|`),
///    the reduction of Section 2;
///  - multiple string variables are handled by implicant enumeration over
///    the Boolean skeleton — atoms of distinct variables are independent, so
///    a consistent implicant splits into one ERE-satisfiability query per
///    variable.
///
/// Two driving modes share the compiler:
///
///  - `SmtSolver::solveScript` runs a whole script in one call, now
///    including incremental scripts — `(push)`/`(pop)` scope assertions and
///    every `(check-sat)` produces one entry in `SmtResult::Checks`;
///  - `SmtSession` (DESIGN.md §15) keeps the compiled state alive *between*
///    commands: one persistent arena and derivative graph serve repeated
///    check-sats, so later checks reuse every interned term, memoized
///    derivative, and dead/alive fact earlier checks established. This is
///    the engine behind the resident `sbd-server` front end.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SMT_SMTSOLVER_H
#define SBD_SMT_SMTSOLVER_H

#include "automata/BoolExpr.h"
#include "smt/SExpr.h"
#include "solver/RegexSolver.h"

#include <map>
#include <memory>
#include <optional>
#include <string>

namespace sbd {

namespace cache {
class VerdictCache;
} // namespace cache

/// Outcome of one `(check-sat)` command.
struct SmtCheck {
  SolveStatus Status = SolveStatus::Unknown;
  /// Machine-readable cause of an Unknown/Unsupported verdict.
  StopReason Stop = StopReason::None;
  /// Diagnostics for Unknown/Unsupported.
  std::string Note;
  /// Variable assignment (UTF-8 values) when Sat.
  std::vector<std::pair<std::string, std::string>> Model;
  /// Implicants (cubes) the Boolean skeleton enumeration tried.
  size_t CubesTried = 0;
};

/// Outcome of solving one SMT script.
struct SmtResult {
  /// Verdict of the *last* check-sat (or of the implicit final check when
  /// the script has none).
  SolveStatus Status = SolveStatus::Unknown;
  /// Variable assignment (UTF-8 values) when Sat.
  std::vector<std::pair<std::string, std::string>> Model;
  /// Machine-readable cause of an Unknown/Unsupported verdict.
  StopReason Stop = StopReason::None;
  /// Diagnostics for Unknown/Unsupported.
  std::string Note;
  /// The `(set-info :status …)` label, when present.
  std::optional<bool> ExpectedSat;
  /// Work attribution summed over every regex sub-query the script ran.
  SolveStats Stats;
  /// Implicants tried, summed over every check-sat in the script.
  size_t CubesTried = 0;
  /// Rendered answer to `(get-info :statistics)`, when the script asked
  /// for it (Z3-style keyword list).
  std::string Statistics;
  /// One entry per check-sat command, in script order.
  std::vector<SmtCheck> Checks;
};

/// SMT-LIB driver on top of the symbolic-Boolean-derivative regex solver.
class SmtSolver {
public:
  explicit SmtSolver(RegexSolver &S) : Solver(S) {}

  /// Parses and solves a whole script, including incremental ones: every
  /// check-sat appends to `SmtResult::Checks`, and the top-level verdict is
  /// the last check's.
  SmtResult solveScript(const std::string &Script,
                        const SolveOptions &Opts = {});

private:
  RegexSolver &Solver;
};

/// Incremental SMT-LIB session: the compiled state — declarations, scoped
/// assertion frames, the Boolean-skeleton atom table, and (through the
/// wrapped solver) the regex arena plus derivative graph — persists across
/// commands, so repeated check-sats pay only for what changed. Dead/alive
/// facts in the derivative graph are monotone language truths, so they
/// survive push/pop unconditionally.
///
/// The session is single-threaded (like the solver stack it wraps); the
/// attached VerdictCache, if any, may be shared across sessions.
class SmtSession {
public:
  /// \p Opts applies to every regex sub-query of every check.
  explicit SmtSession(RegexSolver &S, const SolveOptions &Opts = {});
  ~SmtSession();
  SmtSession(const SmtSession &) = delete;
  SmtSession &operator=(const SmtSession &) = delete;

  /// Attaches (or detaches) a cross-query verdict cache on the session's
  /// portfolio router. Not owned.
  void setVerdictCache(cache::VerdictCache *C);

  /// Response to one command.
  struct Reply {
    /// Protocol text ("sat", "success", "(error …)", …); empty when the
    /// command produces no output (e.g. successes with :print-success off).
    std::string Text;
    bool IsError = false;       ///< Text is an (error "…") response
    bool ExitRequested = false; ///< the command was (exit)
  };

  /// Executes one top-level command. Errors are per-command: the session
  /// stays usable afterwards (SMT-LIB "continued-execution" behavior).
  Reply execute(const SExpr &Form);

  /// Parses \p Text and executes every form. A parse error yields a single
  /// error reply. Execution stops after an (exit).
  std::vector<Reply> executeAll(const std::string &Text);

  /// Result of the most recent check-sat, as a script-level SmtResult
  /// (cumulative Stats/CubesTried over the session's lifetime).
  SmtResult lastResult() const;

  /// check-sat commands served so far (also counted in obs SessionChecks).
  uint64_t checksRun() const { return Checks; }

  /// Live assertions across all frames.
  size_t numAssertions() const;

  /// Current push depth (0 = only the base frame).
  size_t pushDepth() const;

  /// (reset): drops declarations, assertions, and option state. The regex
  /// arena is deliberately kept — interned terms stay valid and warm.
  void reset();

private:
  struct Impl;
  std::unique_ptr<Impl> I;
  uint64_t Checks = 0;
};

} // namespace sbd

#endif // SBD_SMT_SMTSOLVER_H
