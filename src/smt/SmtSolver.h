//===- smt/SmtSolver.h - SMT-LIB string/regex front end ---------------------===//
///
/// \file
/// A standalone front end for the SMT-LIB fragment the paper's benchmarks
/// live in: string constants constrained by Boolean combinations of regex
/// memberships, plus `str.len` bounds and a few string predicates that
/// reduce to memberships. This reproduces the dZ3 slice of Z3's sequence
/// theory in isolation:
///
///  - every regex term compiles to a symbolic ERE;
///  - `str.len` comparisons compile to `.{m,n}` regexes;
///  - Boolean structure over memberships of one string compiles to a single
///    extended regex (conjunction → `&`, negation → `~`, disjunction → `|`),
///    the reduction of Section 2;
///  - multiple string variables are handled by implicant enumeration over
///    the Boolean skeleton — atoms of distinct variables are independent, so
///    a consistent implicant splits into one ERE-satisfiability query per
///    variable.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SMT_SMTSOLVER_H
#define SBD_SMT_SMTSOLVER_H

#include "automata/BoolExpr.h"
#include "smt/SExpr.h"
#include "solver/RegexSolver.h"

#include <map>
#include <optional>
#include <string>

namespace sbd {

/// Outcome of solving one SMT script.
struct SmtResult {
  SolveStatus Status = SolveStatus::Unknown;
  /// Variable assignment (UTF-8 values) when Sat.
  std::vector<std::pair<std::string, std::string>> Model;
  /// Machine-readable cause of an Unknown/Unsupported verdict.
  StopReason Stop = StopReason::None;
  /// Diagnostics for Unknown/Unsupported.
  std::string Note;
  /// The `(set-info :status …)` label, when present.
  std::optional<bool> ExpectedSat;
  /// Work attribution summed over every regex sub-query the script ran,
  /// plus the implicant count in CubesTried.
  SolveStats Stats;
  /// Number of implicants (cubes) the Boolean skeleton enumeration tried.
  size_t CubesTried = 0;
  /// Rendered answer to `(get-info :statistics)`, when the script asked
  /// for it (Z3-style keyword list).
  std::string Statistics;
};

/// SMT-LIB driver on top of the symbolic-Boolean-derivative regex solver.
class SmtSolver {
public:
  explicit SmtSolver(RegexSolver &S) : Solver(S) {}

  /// Parses and solves a whole script (up to its first check-sat).
  SmtResult solveScript(const std::string &Script,
                        const SolveOptions &Opts = {});

private:
  RegexSolver &Solver;
};

} // namespace sbd

#endif // SBD_SMT_SMTSOLVER_H
