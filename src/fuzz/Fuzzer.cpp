//===- fuzz/Fuzzer.cpp - Differential fuzzing driver -------------------------===//

#include "fuzz/Fuzzer.h"

#include "dist/Coordinator.h"
#include "dist/Protocol.h"
#include "re/RegexParser.h"
#include "support/Metrics.h"
#include "support/Stopwatch.h"
#include "support/Unicode.h"

#include <map>
#include <utility>

using namespace sbd;
using namespace sbd::fuzz;

//===----------------------------------------------------------------------===//
// The corrupted engine
//===----------------------------------------------------------------------===//

/// Structure-preserving rewrite of every `&` node into `|` — the injected
/// semantic bug. Generated terms are small (MaxNodes-bounded), so plain
/// recursion without memoization is fine.
static Re rewriteInterAsUnion(RegexManager &M, Re R) {
  // Copy: interning rewritten children grows the arena, so a reference
  // into it would dangle.
  const RegexNode N = M.node(R);
  switch (N.Kind) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
  case RegexKind::Pred:
    return R;
  case RegexKind::Concat:
    return M.concat(rewriteInterAsUnion(M, N.Kids[0]),
                    rewriteInterAsUnion(M, N.Kids[1]));
  case RegexKind::Star:
    return M.star(rewriteInterAsUnion(M, N.Kids[0]));
  case RegexKind::Loop:
    return M.loop(rewriteInterAsUnion(M, N.Kids[0]), N.LoopMin, N.LoopMax);
  case RegexKind::Compl:
    return M.complement(rewriteInterAsUnion(M, N.Kids[0]));
  case RegexKind::Union:
  case RegexKind::Inter: {
    std::vector<Re> Kids;
    Kids.reserve(N.Kids.size());
    for (Re K : N.Kids)
      Kids.push_back(rewriteInterAsUnion(M, K));
    // Both cases rebuild as a union: for Inter that is the bug.
    return M.unionList(std::move(Kids));
  }
  }
  return R;
}

DifferentialOracle::MembershipStub sbd::fuzz::interAsUnionStub() {
  DifferentialOracle::MembershipStub S;
  S.Name = "inter_as_union_stub";
  S.Matches = [](RegexManager &M, DerivativeEngine &E, Re R,
                 const std::vector<uint32_t> &W) {
    return E.matches(rewriteInterAsUnion(M, R), W);
  };
  return S;
}

//===----------------------------------------------------------------------===//
// Report rendering
//===----------------------------------------------------------------------===//

/// JSON string escaping (the payload may contain quotes, backslashes and
/// control characters; non-ASCII UTF-8 passes through verbatim).
static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char Raw : S) {
    auto U = static_cast<unsigned char>(Raw);
    if (Raw == '"' || Raw == '\\') {
      Out += '\\';
      Out += Raw;
    } else if (U < 0x20) {
      static const char *Hex = "0123456789abcdef";
      Out += "\\u00";
      Out += Hex[U >> 4];
      Out += Hex[U & 0xF];
    } else {
      Out += Raw;
    }
  }
  return Out;
}

/// C++ string-literal escaping using octal escapes (unambiguous regardless
/// of the following character, unlike \xNN).
static std::string cxxEscape(const std::string &S) {
  std::string Out;
  for (char Raw : S) {
    auto U = static_cast<unsigned char>(Raw);
    if (Raw == '"' || Raw == '\\') {
      Out += '\\';
      Out += Raw;
    } else if (U < 0x20 || U > 0x7E) {
      char Buf[8];
      Buf[0] = '\\';
      Buf[1] = static_cast<char>('0' + ((U >> 6) & 7));
      Buf[2] = static_cast<char>('0' + ((U >> 3) & 7));
      Buf[3] = static_cast<char>('0' + (U & 7));
      Buf[4] = '\0';
      Out += Buf;
    } else {
      Out += Raw;
    }
  }
  return Out;
}

std::string sbd::fuzz::renderRegressionTest(const Discrepancy &D,
                                            uint64_t Seed, size_t CaseIndex) {
  std::string Word;
  for (uint32_t Cp : D.Word) {
    if (!Word.empty())
      Word += ", ";
    Word += std::to_string(Cp);
  }
  std::string Out;
  Out += "// sbd-fuzz regression: seed=" + std::to_string(Seed) +
         " law=" + oracleLawName(D.Law) + " engine=" + D.Engine + "\n";
  Out += "// detail: " + D.Detail + "\n";
  Out += "TEST(SbdFuzzRegression, Seed" + std::to_string(Seed) + "Case" +
         std::to_string(CaseIndex) + ") {\n";
  Out += "  sbd::RegexManager M;\n";
  Out += "  sbd::TrManager T(M);\n";
  Out += "  sbd::DerivativeEngine E(M, T);\n";
  Out += "  sbd::RegexSolver S(E);\n";
  Out += "  sbd::fuzz::DifferentialOracle O(E, S);\n";
  Out += "  sbd::Re R = sbd::parseRegexOrDie(M, \"" + cxxEscape(D.Pattern) +
         "\");\n";
  Out += "  std::vector<sbd::fuzz::Discrepancy> Ds;\n";
  Out += "  O.checkSample(R, {{" + Word + "}}, Ds);\n";
  Out += "  EXPECT_TRUE(Ds.empty());\n";
  Out += "}\n";
  return Out;
}

std::string FuzzReport::json() const {
  std::string Out = "{";
  Out += "\"seed\": " + std::to_string(Seed);
  Out += ", \"iterations\": " + std::to_string(Iterations);
  Out += ", \"samples\": " + std::to_string(Samples);
  Out += ", \"checks\": " + std::to_string(Checks);
  Out += ", \"elapsed_us\": " + std::to_string(ElapsedUs);
  Out += std::string(", \"ok\": ") + (ok() ? "true" : "false");
  Out += ", \"discrepancies\": [";
  for (size_t I = 0; I != Discrepancies.size(); ++I) {
    const Discrepancy &D = Discrepancies[I];
    if (I)
      Out += ", ";
    Out += "{\"law\": \"" + std::string(oracleLawName(D.Law)) + "\"";
    Out += ", \"engine\": \"" + jsonEscape(D.Engine) + "\"";
    Out += ", \"pattern\": \"" + jsonEscape(D.Pattern) + "\"";
    Out += ", \"regex_nodes\": " + std::to_string(D.RegexNodes);
    Out += ", \"word\": [";
    for (size_t J = 0; J != D.Word.size(); ++J) {
      if (J)
        Out += ", ";
      Out += std::to_string(D.Word[J]);
    }
    Out += "]";
    Out += ", \"word_utf8\": \"" + jsonEscape(toUtf8(D.Word)) + "\"";
    Out += ", \"detail\": \"" + jsonEscape(D.Detail) + "\"}";
  }
  Out += "]";
  Out += ", \"engine_timings\": [";
  for (size_t I = 0; I != Timings.size(); ++I) {
    if (I)
      Out += ", ";
    Out += "{\"name\": \"" + jsonEscape(Timings[I].Name) + "\"";
    Out += ", \"total_us\": " + std::to_string(Timings[I].TotalUs);
    Out += ", \"calls\": " + std::to_string(Timings[I].Calls) + "}";
  }
  Out += "]";
  Out += ", \"engine_phases\": [";
  for (size_t I = 0; I != Engines.size(); ++I) {
    if (I)
      Out += ", ";
    Out += "{\"name\": \"" + jsonEscape(Engines[I].Name) + "\"";
    Out += ", \"queries\": " + std::to_string(Engines[I].Queries);
    Out += ", \"stats\": " + Engines[I].Stats.json() + "}";
  }
  Out += "]";
  Out += ", \"obs\": " + (ObsJson.empty() ? std::string("{}") : ObsJson);
  Out += "}";
  return Out;
}

//===----------------------------------------------------------------------===//
// The campaign driver
//===----------------------------------------------------------------------===//

namespace {

/// Can this law be re-checked on a candidate (regex, word) pair by
/// re-running the per-regex oracle? De Morgan involves a *pair* of source
/// terms, so its discrepancies are reported unshrunk; dist consistency is
/// a whole-batch stream property with no single (regex, word) witness.
bool shrinkable(OracleLaw L) {
  return L != OracleLaw::DeMorgan && L != OracleLaw::DistConsistency;
}

/// The dist_consistency law: the batch's patterns through the
/// coordinator/worker layer with 1 worker and with \p Workers workers
/// must yield byte-identical canonical verdict streams. Any divergence is
/// one discrepancy pinpointing the first differing line.
void checkDistConsistency(const std::vector<std::string> &Patterns,
                          uint32_t Workers, const FuzzOptions &Opts,
                          std::vector<Discrepancy> &Out) {
  std::vector<BatchQuery> Queries;
  Queries.reserve(Patterns.size());
  for (const std::string &P : Patterns) {
    BatchQuery Q;
    Q.Pattern = P;
    Q.Opts.MaxStates = Opts.Oracle.SolverMaxStates;
    Queries.push_back(std::move(Q));
  }
  auto streamWith = [&](unsigned N) {
    dist::DistOptions DOpts;
    DOpts.NumWorkers = N;
    dist::DistSolver Solver(DOpts);
    std::vector<BatchResult> Results = Solver.solveAll(Queries);
    std::vector<std::string> Lines;
    Lines.reserve(Results.size());
    for (size_t I = 0; I != Results.size(); ++I)
      Lines.push_back(dist::renderVerdictLine(I, Results[I]));
    return Lines;
  };
  std::vector<std::string> One = streamWith(1);
  std::vector<std::string> Many = streamWith(Workers ? Workers : 2);
  for (size_t I = 0; I != One.size() && I != Many.size(); ++I) {
    if (One[I] == Many[I])
      continue;
    Discrepancy D;
    D.Law = OracleLaw::DistConsistency;
    D.Engine = "dist";
    D.Pattern = I < Patterns.size() ? Patterns[I] : "";
    D.Detail = "verdict streams diverged at line " + std::to_string(I) +
               ": 1-worker '" + One[I] + "' vs " +
               std::to_string(Workers) + "-worker '" + Many[I] + "'";
    Out.push_back(std::move(D));
    return;
  }
  if (One.size() != Many.size()) {
    Discrepancy D;
    D.Law = OracleLaw::DistConsistency;
    D.Engine = "dist";
    D.Detail = "verdict stream lengths diverged: 1-worker " +
               std::to_string(One.size()) + " vs " +
               std::to_string(Workers) + "-worker " +
               std::to_string(Many.size());
    Out.push_back(std::move(D));
  }
}

} // namespace

FuzzReport sbd::fuzz::runFuzz(const FuzzOptions &Opts) {
  Stopwatch Total;
  obs::MetricShard ObsBefore = obs::MetricsRegistry::global().snapshot();

  FuzzReport Rep;
  Rep.Seed = Opts.Seed;

  // Master stream: one derived seed pair per batch, so batch K is
  // reproducible without replaying batches 0..K-1's arena contents.
  Rng SeedStream(Opts.Seed);
  std::map<std::string, EngineTiming> Merged;
  std::map<std::string, EnginePhase> MergedPhases;

  uint64_t Iter = 0;
  uint64_t BatchIndex = 0;
  bool Stop = false;
  while (Iter < Opts.Iterations && !Stop) {
    uint64_t RegexSeed = SeedStream.next();
    uint64_t WordSeed = SeedStream.next();

    // Fresh arenas per batch: bounded memory, and no cross-batch interning
    // state that sample ordering could leak through.
    RegexManager M;
    TrManager T(M);
    DerivativeEngine Eng(M, T);
    RegexSolver Solver(Eng);
    DifferentialOracle Oracle(Eng, Solver, Opts.Oracle);
    if (Opts.CorruptStub)
      Oracle.setStub(interAsUnionStub());
    RegexGenerator RG(M, RegexSeed, Opts.Gen);
    WordGenerator WG(M, WordSeed, Opts.Gen);

    std::vector<std::string> BatchPatterns;
    for (uint32_t B = 0;
         B != (Opts.ArenaBatch ? Opts.ArenaBatch : 1) &&
         Iter < Opts.Iterations && !Stop;
         ++B, ++Iter) {
      Re Rx = RG.generate();
      if (Opts.DistEvery && BatchIndex % Opts.DistEvery == 0)
        BatchPatterns.push_back(M.toString(Rx));
      std::vector<Discrepancy> Local;
      Oracle.beginRegex(Rx, Local);
      WG.prime(Rx);
      std::vector<std::vector<uint32_t>> Words;
      for (uint32_t WI = 0; WI != Opts.WordsPerRegex; ++WI) {
        Words.push_back(WG.generate());
        Oracle.checkWord(Words.back(), Local);
      }
      Rep.Samples += Words.size();

      if (Opts.DeMorganEvery && Iter % Opts.DeMorganEvery == 0) {
        Re A = RG.generateWithBudget(Opts.Gen.MaxNodes / 2);
        Re B2 = RG.generateWithBudget(Opts.Gen.MaxNodes / 2);
        Oracle.checkDeMorgan(A, B2, Words, Local);
      }

      for (Discrepancy &D : Local) {
        if (Opts.Shrink && shrinkable(D.Law)) {
          // Re-check candidates with a dedicated oracle: CheckSat only
          // when the violated law needs the solvers, so membership-law
          // shrinks stay cheap.
          OracleOptions SOpts = Opts.Oracle;
          SOpts.CheckSat = D.Law == OracleLaw::SatVerdict ||
                           D.Law == OracleLaw::WitnessValid;
          DifferentialOracle Check(Eng, Solver, SOpts);
          if (Opts.CorruptStub)
            Check.setStub(interAsUnionStub());
          OracleLaw Law = D.Law;
          std::string Engine = D.Engine;
          FailurePredicate Fails = [&](Re C,
                                       const std::vector<uint32_t> &W) {
            std::vector<Discrepancy> Ds;
            Check.beginRegex(C, Ds);
            Check.checkWord(W, Ds);
            for (const Discrepancy &D2 : Ds)
              if (D2.Law == Law && (Engine.empty() || D2.Engine == Engine))
                return true;
            return false;
          };
          // The recorded word may be a witness for a per-regex law (empty
          // for pure verdict conflicts); shrink from the sample as stored.
          if (Fails(Rx, D.Word)) {
            Shrinker Sh(M);
            ShrinkResult SR = Sh.shrink(Rx, D.Word, Fails);
            D.Pattern = M.toString(SR.Pattern);
            D.Word = SR.Word;
            D.RegexNodes = M.node(SR.Pattern).Size;
          }
        }
        bool Dup = false;
        for (const Discrepancy &Seen : Rep.Discrepancies)
          if (Seen.Law == D.Law && Seen.Engine == D.Engine &&
              Seen.Pattern == D.Pattern && Seen.Word == D.Word) {
            Dup = true;
            break;
          }
        if (!Dup)
          Rep.Discrepancies.push_back(std::move(D));
        if (Rep.Discrepancies.size() >= Opts.MaxDiscrepancies) {
          Stop = true;
          break;
        }
      }
    }

    if (!BatchPatterns.empty() && !Stop) {
      std::vector<Discrepancy> DistDs;
      checkDistConsistency(BatchPatterns, Opts.DistWorkers, Opts, DistDs);
      ++Rep.Checks;
      SBD_OBS_INC(FuzzChecks);
      for (Discrepancy &D : DistDs) {
        SBD_OBS_INC(FuzzDiscrepancies);
        Rep.Discrepancies.push_back(std::move(D));
        if (Rep.Discrepancies.size() >= Opts.MaxDiscrepancies)
          Stop = true;
      }
    }
    ++BatchIndex;

    for (const EngineTiming &ET : Oracle.timings()) {
      EngineTiming &Slot = Merged[ET.Name];
      Slot.Name = ET.Name;
      Slot.TotalUs += ET.TotalUs;
      Slot.Calls += ET.Calls;
    }
    for (const EnginePhase &EP : Oracle.phaseStats()) {
      EnginePhase &Slot = MergedPhases[EP.Name];
      Slot.Name = EP.Name;
      Slot.Queries += EP.Queries;
      Slot.Stats += EP.Stats;
    }
    Rep.Checks += Oracle.checksRun();
  }

  Rep.Iterations = Iter;
  for (auto &KV : Merged)
    Rep.Timings.push_back(KV.second);
  for (auto &KV : MergedPhases)
    Rep.Engines.push_back(KV.second);
  Rep.ElapsedUs = Total.elapsedUs();
  Rep.ObsJson =
      obs::MetricsRegistry::global().snapshot().since(ObsBefore).json();
  return Rep;
}
