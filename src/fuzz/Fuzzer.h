//===- fuzz/Fuzzer.h - Differential fuzzing driver --------------------------===//
///
/// \file
/// The driver tying the fuzzing subsystem together (DESIGN.md §11):
/// generate a random ERE (Generator.h), sample words biased toward its
/// minterm witnesses, cross-check everything through the differential
/// oracle (Oracle.h), shrink any disagreement to a local minimum
/// (Shrinker.h), and emit a machine-readable JSON run report plus
/// ready-to-paste GoogleTest regression snippets.
///
/// Determinism contract: a run is a pure function of FuzzOptions. Arenas
/// are rebuilt every ArenaBatch regexes (bounding memory without a global
/// cap that would make sample N depend on samples 0..N-1 of *other*
/// batches), per-batch RNG streams are derived from the master seed, and
/// every oracle budget is a state count. A CI failure therefore reproduces
/// locally from the seed printed in its report.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_FUZZ_FUZZER_H
#define SBD_FUZZ_FUZZER_H

#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "fuzz/Shrinker.h"

#include <string>
#include <vector>

namespace sbd {
namespace fuzz {

/// One fuzz campaign's configuration. The defaults match the CI smoke job.
struct FuzzOptions {
  uint64_t Seed = 1;
  uint64_t Iterations = 1000; ///< regexes generated
  uint32_t WordsPerRegex = 4;
  /// Fresh arenas every N regexes (memory bound + cross-sample isolation).
  uint32_t ArenaBatch = 64;
  /// Run the De Morgan pair laws every Nth iteration (0 disables).
  uint32_t DeMorganEvery = 8;
  /// Greedily shrink each discrepancy before reporting it.
  bool Shrink = true;
  /// Stop the campaign after this many (post-dedup) discrepancies.
  uint32_t MaxDiscrepancies = 16;
  /// Inject the deliberately broken stub engine (self-check that the
  /// oracle catches and shrinks a real semantic bug).
  bool CorruptStub = false;
  /// Run the dist_consistency law every Nth arena batch (0 disables): the
  /// batch's printed patterns are solved through the `src/dist`
  /// coordinator with 1 worker and with DistWorkers workers, and the two
  /// canonical verdict streams must be byte-identical (DESIGN.md §16).
  /// Off by default — it forks processes, so the PR smoke keeps it for
  /// the dedicated CI jobs (nightly campaign, dist_consistency.sh).
  uint32_t DistEvery = 0;
  uint32_t DistWorkers = 3;
  GeneratorOptions Gen;
  OracleOptions Oracle;
};

/// Aggregated outcome of one campaign.
struct FuzzReport {
  uint64_t Seed = 0;
  uint64_t Iterations = 0; ///< regexes actually processed
  uint64_t Samples = 0;    ///< words pushed through the oracle
  uint64_t Checks = 0;     ///< individual cross-checks run
  int64_t ElapsedUs = 0;
  std::vector<Discrepancy> Discrepancies; ///< post-shrink
  std::vector<EngineTiming> Timings;      ///< merged across batches
  /// Per-solver-engine phase breakdowns, merged across batches.
  std::vector<EnginePhase> Engines;
  /// sbd::obs counter deltas for the run (JSON object; "{}" when the
  /// observability layer is compiled out or nothing was counted).
  std::string ObsJson = "{}";

  bool ok() const { return Discrepancies.empty(); }

  /// The machine-readable run report (seed, iterations, per-engine timing,
  /// discrepancy list).
  std::string json() const;
};

/// The deliberately broken engine behind `sbd-fuzz --corrupt` and the
/// negative tests: it rewrites every intersection into a union before
/// matching, a principled semantic bug whose minimal counterexample is the
/// two-predicate term `a&b` (∅, but the stub accepts "a").
DifferentialOracle::MembershipStub interAsUnionStub();

/// A ready-to-paste GoogleTest regression snippet reproducing \p D.
std::string renderRegressionTest(const Discrepancy &D, uint64_t Seed,
                                 size_t CaseIndex);

/// Runs one campaign.
FuzzReport runFuzz(const FuzzOptions &Opts);

} // namespace fuzz
} // namespace sbd

#endif // SBD_FUZZ_FUZZER_H
