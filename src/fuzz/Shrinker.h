//===- fuzz/Shrinker.h - Greedy structural counterexample shrinking --------===//
///
/// \file
/// Greedy structural shrinker for oracle discrepancies (DESIGN.md §11). A
/// failing (regex, word) sample from the fuzzer is usually dozens of nodes
/// of noise around a two- or three-node core; the shrinker reduces it to a
/// local minimum under one-step reductions while a caller-supplied
/// predicate keeps reporting "still failing".
///
/// Termination is by construction: every accepted regex reduction strictly
/// decreases the syntax-node count, and every accepted word reduction
/// strictly decreases (length, pointwise code points) lexicographically.
/// Neither order has infinite descending chains, so the greedy loop always
/// reaches a fixpoint; MaxSteps is only a belt-and-braces cap.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_FUZZ_SHRINKER_H
#define SBD_FUZZ_SHRINKER_H

#include "re/Regex.h"

#include <functional>
#include <vector>

namespace sbd {
namespace fuzz {

/// Returns true iff the (regex, word) pair still exhibits the failure being
/// minimized. Must be deterministic.
using FailurePredicate =
    std::function<bool(Re, const std::vector<uint32_t> &)>;

/// Outcome of a shrink run.
struct ShrinkResult {
  Re Pattern{0};
  std::vector<uint32_t> Word;
  uint32_t Steps = 0;     ///< accepted reductions
  uint32_t Attempts = 0;  ///< predicate evaluations
};

/// Greedy one-step-reduction shrinker over the interned regex arena.
class Shrinker {
public:
  explicit Shrinker(RegexManager &Mgr) : M(Mgr) {}

  /// Minimizes (R, Word) under \p StillFails, which must hold for the
  /// input pair. Alternates regex and word passes until neither finds an
  /// accepted reduction.
  ShrinkResult shrink(Re R, const std::vector<uint32_t> &Word,
                      const FailurePredicate &StillFails,
                      uint32_t MaxSteps = 10000);

  /// All one-step regex reductions of \p R, each strictly smaller in
  /// syntax-node count (exposed for the determinism tests).
  std::vector<Re> reductions(Re R);

private:
  void reduceInto(Re R, std::vector<Re> &Out);

  RegexManager &M;
};

} // namespace fuzz
} // namespace sbd

#endif // SBD_FUZZ_SHRINKER_H
