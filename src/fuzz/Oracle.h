//===- fuzz/Oracle.h - Cross-engine differential oracle ---------------------===//
///
/// \file
/// The judgment half of the differential fuzzing subsystem (DESIGN.md §11).
/// For each (regex, word) sample the oracle cross-checks:
///
///  **Membership**, against every engine that can decide it independently:
///   - the classical Brzozowski derivative matcher (the reference — it is
///     implemented directly from the textbook rules, not via δ);
///   - the bounded lazy DFA `CachedMatcher`, once at a roomy cap and once
///     at a tiny cap that forces eviction and the uncached fallback;
///   - the SBFA alternating run (`Sbfa::accepts`, Section 7 semantics);
///   - the SAFA obtained by local mintermization (`Safa::fromSbfa`);
///   - the eager SFA product pipeline compiled to a complete DFA
///     (`EagerSolver::compileDfa`);
///   - the Antimirov partial-derivative NFA (positive fragment only);
///   - an optional injected stub engine (the negative tests and the
///     `sbd-fuzz --corrupt` self-check).
///
///  **Sat/unsat verdicts**, across the solvers: RegexSolver (BFS *and* DFS
///  order), AntimirovSolver, BrzozowskiMintermSolver, EagerSolver. Definite
///  verdicts must agree; every Sat witness must be accepted by the
///  reference matcher; a sampled member of a provably-Unsat language is a
///  discrepancy. All budgets are state counts, never wall-clock, so
///  verdicts are deterministic across machines.
///
///  **Metamorphic laws** (true by theorem, so any violation is a bug):
///   - ν-consistency: ν(R) ⇔ ϵ ∈ L(R);
///   - the derivative law: w ∈ L(D_v(R)) ⇔ v·w ∈ L(R) at a sample split;
///   - the complement law: w ∈ L(~R) ⇔ w ∉ L(R);
///   - De Morgan duals: ~(A&B) ≡ ~A|~B and ~(A|B) ≡ ~A&~B, checked by
///     membership sampling *and* by solver-based equivalence.
///
///  **Analyzer soundness** (DESIGN.md §14): every word any engine accepts
///  must start with the pre-solve analysis' required literal prefix (and
///  equal it exactly when the analysis claims the language is a single
///  word), and the whole feature record must be invariant under printing
///  the regex and reparsing it into a fresh arena — classification
///  determinism across arena rebuilds.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_FUZZ_ORACLE_H
#define SBD_FUZZ_ORACLE_H

#include "analysis/RegexAnalyzer.h"
#include "automata/EagerSolver.h"
#include "cache/VerdictCache.h"
#include "automata/Safa.h"
#include "automata/Sbfa.h"
#include "baselines/AntimirovSolver.h"
#include "baselines/BrzozowskiMintermSolver.h"
#include "compile/CompiledDfa.h"
#include "core/CachedMatcher.h"
#include "solver/RegexSolver.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace sbd {
namespace fuzz {

/// Which oracle law a discrepancy violated.
enum class OracleLaw : uint8_t {
  Membership,    ///< an engine disagreed with the reference matcher
  Nullability,   ///< ν(R) inconsistent with ϵ-membership
  DerivativeLaw, ///< w ∈ D_v(R) ⇎ vw ∈ R
  ComplementLaw, ///< w ∈ ~R ⇎ w ∉ R
  DeMorgan,      ///< ~(A&B) ≢ ~A|~B (or the | dual)
  SatVerdict,    ///< two solvers returned conflicting definite verdicts
  WitnessValid,  ///< a Sat witness was rejected by the reference matcher
  AnalyzerPrefix,    ///< an accepted word violated the analyzed literal prefix
  AnalyzerStability, ///< features changed across a print/reparse rebuild
  CacheConsistency,  ///< verdict-cache hit or post-clear re-solve diverged
                     ///< from the cold verdict (DESIGN.md §15)
  DistConsistency,   ///< 1-process and N-process verdict streams diverged
                     ///< for the same batch (DESIGN.md §16)
};

/// Stable snake_case name for report output.
const char *oracleLawName(OracleLaw L);

/// One cross-engine disagreement.
struct Discrepancy {
  OracleLaw Law = OracleLaw::Membership;
  /// Printed form of the regex (round-trips through RegexParser).
  std::string Pattern;
  /// The sample word as code points (empty for per-regex laws).
  std::vector<uint32_t> Word;
  /// Name of the disagreeing engine ("" for law violations with no single
  /// culprit, e.g. conflicting solver verdicts list both in Detail).
  std::string Engine;
  /// Human-readable verdict table.
  std::string Detail;
  /// Syntax-node count of Pattern's term (shrink-quality metric).
  uint32_t RegexNodes = 0;
};

/// Per-engine accumulated wall-clock attribution for the JSON report.
struct EngineTiming {
  std::string Name;
  int64_t TotalUs = 0;
  uint64_t Calls = 0;
};

/// Per-solver-engine phase attribution: the SolveStats of every verdict an
/// engine produced, summed, for the fuzz report's per-engine phase table.
struct EnginePhase {
  std::string Name;
  uint64_t Queries = 0;
  SolveStats Stats;
};

/// Engine caps and toggles. Every budget is a state/size count so oracle
/// verdicts are reproducible bit-for-bit from a seed.
struct OracleOptions {
  size_t MatcherMaxStates = 512;
  size_t TinyMatcherMaxStates = 4; ///< forces eviction + fallback paths
  size_t CompiledMaxStates = 256; ///< closure cap for the compiled table
  /// Compile budget of the forced-fallback configuration: a promotion
  /// clock of one character combined with this (deliberately hopeless)
  /// closure cap makes every nontrivial pattern overflow the compile and
  /// exercise the lazy fallback on each word.
  size_t TinyCompiledMaxStates = 2;
  size_t SbfaMaxStates = 96;
  size_t SafaMaxTransitions = 160; ///< gate on the SBFA before conversion
  size_t EagerMaxStates = 384;
  size_t SolverMaxStates = 4096;
  size_t BaselineMaxStates = 1024;
  uint32_t BrzMaxPreds = 8; ///< skip global mintermization beyond this ♯(R)
  bool CheckSat = true;
  bool CheckDfsAgreement = true;
  bool UseSafa = true;
  bool UseEagerDfa = true;
  bool UseAntimirovNfa = true;
  bool UseCompiledDfa = true;
};

/// The per-sample differential oracle. Create one per arena batch; call
/// beginRegex() for each regex, then checkWord() per sample word.
class DifferentialOracle {
public:
  /// An injected membership engine (fault injection for the negative
  /// tests and `sbd-fuzz --corrupt`).
  struct MembershipStub {
    std::string Name;
    std::function<bool(RegexManager &, DerivativeEngine &, Re,
                       const std::vector<uint32_t> &)>
        Matches;
    explicit operator bool() const { return static_cast<bool>(Matches); }
  };

  DifferentialOracle(DerivativeEngine &Eng, RegexSolver &Slv,
                     OracleOptions O = {});
  ~DifferentialOracle();

  void setStub(MembershipStub S) { Stub = std::move(S); }

  /// Prepares the per-regex engines and runs the per-regex checks
  /// (nullability, sat-verdict agreement, witness validity). Appends any
  /// discrepancies to \p Out.
  void beginRegex(Re Rx, std::vector<Discrepancy> &Out);

  /// Cross-checks one word against every membership engine and the
  /// per-word metamorphic laws. Requires a prior beginRegex for the same
  /// regex.
  void checkWord(const std::vector<uint32_t> &W, std::vector<Discrepancy> &Out);

  /// De Morgan dual laws over a pair of regexes, checked by membership on
  /// \p Words and by solver-based equivalence.
  void checkDeMorgan(Re A, Re B,
                     const std::vector<std::vector<uint32_t>> &Words,
                     std::vector<Discrepancy> &Out);

  /// Convenience: beginRegex + checkWord over each sample.
  void checkSample(Re Rx, const std::vector<std::vector<uint32_t>> &Words,
                   std::vector<Discrepancy> &Out);

  /// Accumulated per-engine timing since construction.
  std::vector<EngineTiming> timings() const;

  /// Accumulated per-solver-engine phase breakdowns since construction
  /// (solver engines only; engines that answered no query are omitted).
  std::vector<EnginePhase> phaseStats() const;

  /// Total individual checks performed since construction.
  uint64_t checksRun() const { return Checks; }

  const OracleOptions &options() const { return Opts; }

private:
  enum EngineId : size_t {
    EngRefMatcher,
    EngDfaMatcher,
    EngTinyDfaMatcher,
    EngCompiledDfa,
    EngCompiledTiny,
    EngSbfa,
    EngSafa,
    EngEagerDfa,
    EngAntimirovNfa,
    EngSolverBfs,
    EngSolverDfs,
    EngAntimirov,
    EngBrzMinterm,
    EngEager,
    EngStub,
    EngCount
  };
  static const char *engineName(size_t Id);

  /// Runs \p Fn under the timing slot \p Id and returns its result.
  template <typename Fn> auto timed(size_t Id, Fn &&F);

  void noteMembership(const std::vector<uint32_t> &W, const char *Engine,
                      bool Got, bool Want, std::vector<Discrepancy> &Out);
  /// Analyzer literal-prefix soundness for one accepted word.
  void checkAnalyzerPrefix(const std::vector<uint32_t> &W,
                           const char *Engine, std::vector<Discrepancy> &Out);
  /// Feature invariance under print → reparse into a fresh arena.
  void checkAnalyzerStability(std::vector<Discrepancy> &Out);
  Discrepancy makeDiscrepancy(OracleLaw Law, const std::vector<uint32_t> &W,
                              const std::string &Engine,
                              std::string Detail) const;
  void checkSatVerdicts(std::vector<Discrepancy> &Out);
  /// Verdict-cache consistency law (DESIGN.md §15): solving Cur twice
  /// through a cache-attached portfolio must hit the cache the second time
  /// with an identical verdict+witness, and clearing the cache must
  /// reproduce the cold verdict bit-identically.
  void checkVerdictCache(std::vector<Discrepancy> &Out);

  DerivativeEngine &Eng;
  RegexManager &M;
  RegexSolver &Solver;
  OracleOptions Opts;
  MembershipStub Stub;

  // Per-regex state (rebuilt by beginRegex).
  Re Cur{0};
  Re CurCompl{0};
  std::unique_ptr<CachedMatcher> DfaMatcher;
  std::unique_ptr<CachedMatcher> TinyMatcher;
  /// Direct compile of the pattern (skipped when over CompiledMaxStates).
  std::optional<CompiledDfa> CompiledD;
  /// Promotion-enabled matcher whose compile budget is hopeless — the
  /// forced-fallback configuration (TinyCompiledMaxStates).
  std::unique_ptr<CachedMatcher> TinyPromoted;
  std::optional<Sbfa> SbfaA;
  std::optional<Safa> SafaA;
  std::optional<Sdfa> EagerD;
  std::optional<Snfa> AntiNfa;
  /// Features of Cur (from the solver's shared analyzer), driving the
  /// baseline capability gates and the analyzer-soundness laws.
  analysis::RegexFeatures CurFeat;
  bool ConsensusUnsat = false;
  /// Private cache for the cache-consistency law; cleared and refilled per
  /// regex so counter deltas are exact.
  cache::VerdictCache VCache;

  // Accumulators.
  int64_t EngineUs[EngCount] = {};
  uint64_t EngineCalls[EngCount] = {};
  SolveStats EngineStats[EngCount];
  uint64_t EngineQueries[EngCount] = {};
  uint64_t Checks = 0;
};

} // namespace fuzz
} // namespace sbd

#endif // SBD_FUZZ_ORACLE_H
