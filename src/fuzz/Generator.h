//===- fuzz/Generator.h - Seeded random ERE + word generation --------------===//
///
/// \file
/// The generation half of the differential fuzzing subsystem (DESIGN.md
/// §11): a seeded, size-bounded random ERE generator weighted over *every*
/// constructor of the language — including the extended operators `&`, `~`,
/// bounded loops, and structured character classes — plus a paired word
/// generator biased toward *minterm witnesses* of the regex's own
/// predicates. The bias matters: a uniformly random character almost never
/// lands on the boundary between two overlapping predicates, which is
/// exactly where the derivative engines' case splits (and therefore their
/// bugs) live. Sampling one representative per minterm of ΨR guarantees
/// every Boolean combination of the regex's predicates is exercised.
///
/// Both generators are deterministic functions of their seed (splitmix64,
/// support/Rng.h): a CI fuzz failure reproduces locally from the seed in
/// its JSON report.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_FUZZ_GENERATOR_H
#define SBD_FUZZ_GENERATOR_H

#include "re/Regex.h"
#include "support/Rng.h"

#include <vector>

namespace sbd {
namespace fuzz {

/// Tunables for regex/word generation. The weights are relative ticket
/// counts in a weighted draw; a zero weight disables the constructor.
struct GeneratorOptions {
  /// Syntax-node budget for one generated regex (smart constructors may
  /// collapse the term further, so this is an upper bound).
  uint32_t MaxNodes = 24;
  /// Largest finite loop bound generated (keeps eager unrolling sane).
  uint32_t MaxLoopBound = 5;
  /// Longest generated input word.
  uint32_t MaxWordLen = 12;
  /// Cap on the minterm-witness pool primed per regex.
  uint32_t MaxPoolChars = 48;
  /// Cap on the predicate count fed into minterm computation.
  uint32_t MaxPredsForMinterms = 12;

  // Constructor weights.
  uint32_t WeightPred = 10;
  uint32_t WeightEpsilon = 1;
  uint32_t WeightEmpty = 1;
  uint32_t WeightConcat = 10;
  uint32_t WeightUnion = 6;
  uint32_t WeightInter = 4;
  uint32_t WeightStar = 4;
  uint32_t WeightLoop = 3;
  uint32_t WeightCompl = 3;
};

/// Seeded, size-bounded random ERE generator.
class RegexGenerator {
public:
  RegexGenerator(RegexManager &Mgr, uint64_t Seed, GeneratorOptions O = {})
      : M(Mgr), R(Seed), Opts(O) {}

  /// One random regex with at most Opts.MaxNodes syntax nodes.
  Re generate() { return gen(Opts.MaxNodes); }

  /// One random regex with an explicit node budget.
  Re generateWithBudget(uint32_t Budget) { return gen(Budget ? Budget : 1); }

  /// One random character-class predicate from the structured pool
  /// (singletons, ranges, named classes, complements, unions, full).
  CharSet generateCharSet();

  /// The underlying PRNG (shared with callers that need aligned draws).
  Rng &rng() { return R; }

private:
  Re gen(uint32_t Budget);
  Re genLeaf();

  RegexManager &M;
  Rng R;
  GeneratorOptions Opts;
};

/// Paired input-word generator, biased toward minterm witnesses of the
/// primed regex's predicates.
class WordGenerator {
public:
  WordGenerator(const RegexManager &Mgr, uint64_t Seed,
                GeneratorOptions O = {})
      : M(Mgr), R(Seed), Opts(O) {}

  /// Rebuilds the witness pool for \p Rx: one representative character per
  /// minterm of ΨRx (capped), plus a few fixed anchors.
  void prime(Re Rx);

  /// One random word. Roughly 80% of characters come from the minterm
  /// pool, the rest are random printable ASCII with an occasional
  /// arbitrary code point.
  std::vector<uint32_t> generate();

  /// The current minterm-witness pool (diagnostics/tests).
  const std::vector<uint32_t> &pool() const { return Pool; }

private:
  const RegexManager &M;
  Rng R;
  GeneratorOptions Opts;
  std::vector<uint32_t> Pool;
};

} // namespace fuzz
} // namespace sbd

#endif // SBD_FUZZ_GENERATOR_H
