//===- fuzz/Shrinker.cpp - Greedy structural counterexample shrinking ------===//

#include "fuzz/Shrinker.h"

#include "support/Metrics.h"

using namespace sbd;
using namespace sbd::fuzz;

/// One-step reductions of R: replace R by a child, drop one operand of an
/// n-ary node, collapse to ε/⊥, or recursively reduce one subterm in place.
/// Smart constructors may collapse a rebuilt candidate below the one-step
/// estimate — that is fine, the caller filters on strict size decrease.
void Shrinker::reduceInto(Re R, std::vector<Re> &Out) {
  // Copy: interning candidates below may grow the node arena and would
  // invalidate a reference into it.
  const RegexNode N = M.node(R);
  switch (N.Kind) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
  case RegexKind::Pred:
    return; // leaves are already minimal
  case RegexKind::Concat: {
    Re A = N.Kids[0], B = N.Kids[1];
    Out.push_back(A);
    Out.push_back(B);
    for (Re Av : reductions(A))
      Out.push_back(M.concat(Av, B));
    for (Re Bv : reductions(B))
      Out.push_back(M.concat(A, Bv));
    break;
  }
  case RegexKind::Star:
    Out.push_back(N.Kids[0]);
    for (Re Kv : reductions(N.Kids[0]))
      Out.push_back(M.star(Kv));
    break;
  case RegexKind::Loop:
    Out.push_back(N.Kids[0]);
    for (Re Kv : reductions(N.Kids[0]))
      Out.push_back(M.loop(Kv, N.LoopMin, N.LoopMax));
    break;
  case RegexKind::Compl:
    Out.push_back(N.Kids[0]);
    for (Re Kv : reductions(N.Kids[0]))
      Out.push_back(M.complement(Kv));
    break;
  case RegexKind::Union:
  case RegexKind::Inter: {
    bool IsUnion = N.Kind == RegexKind::Union;
    for (Re K : N.Kids)
      Out.push_back(K);
    // Drop one operand.
    for (size_t I = 0; I != N.Kids.size(); ++I) {
      std::vector<Re> Rest;
      for (size_t J = 0; J != N.Kids.size(); ++J)
        if (J != I)
          Rest.push_back(N.Kids[J]);
      Out.push_back(IsUnion ? M.unionList(std::move(Rest))
                            : M.interList(std::move(Rest)));
    }
    // Reduce one operand in place.
    for (size_t I = 0; I != N.Kids.size(); ++I) {
      for (Re Kv : reductions(N.Kids[I])) {
        std::vector<Re> Kids(N.Kids.begin(), N.Kids.end());
        Kids[I] = Kv;
        Out.push_back(IsUnion ? M.unionList(std::move(Kids))
                              : M.interList(std::move(Kids)));
      }
    }
    break;
  }
  }
  // Collapse the whole subterm.
  Out.push_back(M.epsilon());
  Out.push_back(M.empty());
}

std::vector<Re> Shrinker::reductions(Re R) {
  std::vector<Re> Raw;
  reduceInto(R, Raw);
  uint32_t Bound = M.node(R).Size;
  std::vector<Re> Out;
  for (Re C : Raw) {
    if (M.node(C).Size >= Bound)
      continue;
    bool Seen = false;
    for (Re P : Out)
      if (P == C) {
        Seen = true;
        break;
      }
    if (!Seen)
      Out.push_back(C);
  }
  return Out;
}

ShrinkResult Shrinker::shrink(Re R, const std::vector<uint32_t> &Word,
                              const FailurePredicate &StillFails,
                              uint32_t MaxSteps) {
  ShrinkResult Res;
  Res.Pattern = R;
  Res.Word = Word;

  bool Progress = true;
  while (Progress && Res.Steps < MaxSteps) {
    Progress = false;

    // Regex pass: take the first strictly smaller reduction that still
    // fails, then restart from the new (smaller) term.
    for (Re C : reductions(Res.Pattern)) {
      ++Res.Attempts;
      if (StillFails(C, Res.Word)) {
        Res.Pattern = C;
        ++Res.Steps;
        SBD_OBS_INC(FuzzShrinkSteps);
        Progress = true;
        break;
      }
    }
    if (Progress)
      continue;

    // Word pass: drop one character (strictly shorter) ...
    for (size_t I = 0; I != Res.Word.size() && !Progress; ++I) {
      std::vector<uint32_t> C = Res.Word;
      C.erase(C.begin() + static_cast<ptrdiff_t>(I));
      ++Res.Attempts;
      if (StillFails(Res.Pattern, C)) {
        Res.Word = std::move(C);
        ++Res.Steps;
        SBD_OBS_INC(FuzzShrinkSteps);
        Progress = true;
      }
    }
    // ... or canonicalize one character downward ('a', then '0'), which
    // strictly decreases the pointwise order, so this too terminates.
    static const uint32_t Canon[] = {'a', '0'};
    for (size_t I = 0; I != Res.Word.size() && !Progress; ++I) {
      for (uint32_t Target : Canon) {
        if (Res.Word[I] <= Target)
          continue;
        std::vector<uint32_t> C = Res.Word;
        C[I] = Target;
        ++Res.Attempts;
        if (StillFails(Res.Pattern, C)) {
          Res.Word = std::move(C);
          ++Res.Steps;
          SBD_OBS_INC(FuzzShrinkSteps);
          Progress = true;
          break;
        }
      }
    }
  }
  return Res;
}
