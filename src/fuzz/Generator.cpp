//===- fuzz/Generator.cpp - Seeded random ERE + word generation ------------===//

#include "fuzz/Generator.h"

#include <algorithm>

using namespace sbd;
using namespace sbd::fuzz;

CharSet RegexGenerator::generateCharSet() {
  // A small overlapping alphabet: most predicates draw from 'a'..'h' and
  // '0'..'9' so that distinct predicates frequently intersect, which is
  // what produces interesting minterm structure.
  switch (R.below(16)) {
  case 0:
  case 1:
  case 2:
  case 3:
  case 4:
  case 5: // singleton in the core alphabet
    return CharSet::singleton('a' + static_cast<uint32_t>(R.below(6)));
  case 6:
  case 7: { // short range of lowercase letters
    uint32_t Lo = 'a' + static_cast<uint32_t>(R.below(6));
    uint32_t Hi = Lo + static_cast<uint32_t>(R.below(4));
    return CharSet::range(Lo, std::min<uint32_t>(Hi, 'z'));
  }
  case 8: { // digit range
    uint32_t Lo = '0' + static_cast<uint32_t>(R.below(5));
    uint32_t Hi = Lo + static_cast<uint32_t>(R.below(5));
    return CharSet::range(Lo, std::min<uint32_t>(Hi, '9'));
  }
  case 9: // named classes
    switch (R.below(4)) {
    case 0:
      return CharSet::digit();
    case 1:
      return CharSet::word();
    case 2:
      return CharSet::space();
    default:
      return CharSet::asciiLetter();
    }
  case 10: // complement of a singleton/range (exercises huge interval sets)
    return generateCharSet().complement();
  case 11: { // union of two draws
    CharSet A = CharSet::singleton('a' + static_cast<uint32_t>(R.below(6)));
    CharSet B = CharSet::singleton('0' + static_cast<uint32_t>(R.below(6)));
    return A.unionWith(B);
  }
  case 12: // non-ASCII range (exercises the full Unicode domain)
    return CharSet::range(0x4E00, 0x4E00 + static_cast<uint32_t>(R.below(16)));
  case 13: // the '.' predicate
    return CharSet::full();
  default: // fallthrough: another core singleton
    return CharSet::singleton('a' + static_cast<uint32_t>(R.below(8)));
  }
}

Re RegexGenerator::genLeaf() {
  uint64_t Total = Opts.WeightPred + Opts.WeightEpsilon + Opts.WeightEmpty;
  uint64_t Pick = Total ? R.below(Total) : 0;
  if (Pick < Opts.WeightPred)
    return M.pred(generateCharSet());
  Pick -= Opts.WeightPred;
  if (Pick < Opts.WeightEpsilon)
    return M.epsilon();
  return M.empty();
}

Re RegexGenerator::gen(uint32_t Budget) {
  if (Budget <= 1)
    return genLeaf();

  // Weighted draw over the composite constructors plus the leaves.
  struct Ticket {
    RegexKind Kind;
    uint32_t Weight;
  };
  const Ticket Tickets[] = {
      {RegexKind::Pred, Opts.WeightPred},
      {RegexKind::Concat, Opts.WeightConcat},
      {RegexKind::Union, Opts.WeightUnion},
      {RegexKind::Inter, Opts.WeightInter},
      {RegexKind::Star, Opts.WeightStar},
      {RegexKind::Loop, Opts.WeightLoop},
      {RegexKind::Compl, Opts.WeightCompl},
      {RegexKind::Epsilon, Opts.WeightEpsilon},
      {RegexKind::Empty, Opts.WeightEmpty},
  };
  uint64_t Total = 0;
  for (const Ticket &T : Tickets)
    Total += T.Weight;
  uint64_t Pick = R.below(Total ? Total : 1);
  RegexKind Kind = RegexKind::Pred;
  for (const Ticket &T : Tickets) {
    if (Pick < T.Weight) {
      Kind = T.Kind;
      break;
    }
    Pick -= T.Weight;
  }

  switch (Kind) {
  case RegexKind::Concat: {
    uint32_t Left = 1 + static_cast<uint32_t>(R.below(Budget - 1));
    return M.concat(gen(Left), gen(Budget - Left));
  }
  case RegexKind::Union:
  case RegexKind::Inter: {
    uint32_t Arity = Budget >= 6 && R.chance(1, 4) ? 3 : 2;
    uint32_t Share = (Budget - 1) / Arity;
    std::vector<Re> Kids;
    for (uint32_t I = 0; I != Arity; ++I)
      Kids.push_back(gen(Share ? Share : 1));
    return Kind == RegexKind::Union ? M.unionList(std::move(Kids))
                                    : M.interList(std::move(Kids));
  }
  case RegexKind::Star:
    return M.star(gen(Budget - 1));
  case RegexKind::Loop: {
    uint32_t Min = static_cast<uint32_t>(R.below(Opts.MaxLoopBound + 1));
    uint32_t Max;
    if (R.chance(1, 5)) {
      Max = LoopInf;
    } else {
      Max = Min + static_cast<uint32_t>(R.below(Opts.MaxLoopBound + 1));
      if (Max == 0)
        Max = 1; // loop() requires Max >= 1 unless Min == Max == 0
    }
    return M.loop(gen(Budget - 1), Min, Max);
  }
  case RegexKind::Compl:
    return M.complement(gen(Budget - 1));
  case RegexKind::Pred:
  case RegexKind::Epsilon:
  case RegexKind::Empty:
  default:
    return genLeaf();
  }
}

void WordGenerator::prime(Re Rx) {
  Pool.clear();
  std::vector<CharSet> Preds = M.collectPredicates(Rx);
  if (Preds.size() > Opts.MaxPredsForMinterms)
    Preds.resize(Opts.MaxPredsForMinterms);
  // One representative per minterm block: every Boolean combination of the
  // regex's predicates gets at least one witness character in the pool.
  for (const CharSet &Block : computeMinterms(Preds)) {
    if (Pool.size() >= Opts.MaxPoolChars)
      break;
    if (auto Cp = Block.sample())
      Pool.push_back(*Cp);
  }
  // Fixed anchors so the pool is never empty and plain literals still get
  // their own characters even when the regex has no predicates.
  Pool.push_back('a');
  Pool.push_back('b');
  Pool.push_back('0');
}

std::vector<uint32_t> WordGenerator::generate() {
  // Bias toward short words (take the min of two draws): most engine
  // disagreements reproduce within a handful of characters, and short
  // samples keep the per-sample engine cost flat.
  uint64_t A = R.below(Opts.MaxWordLen + 1);
  uint64_t B = R.below(Opts.MaxWordLen + 1);
  size_t Len = static_cast<size_t>(std::min(A, B));
  std::vector<uint32_t> Word;
  Word.reserve(Len);
  for (size_t I = 0; I != Len; ++I) {
    uint64_t Roll = R.below(10);
    if (Roll < 8 && !Pool.empty())
      Word.push_back(Pool[R.below(Pool.size())]);
    else if (Roll == 8)
      Word.push_back('a' + static_cast<uint32_t>(R.below(26)));
    else
      Word.push_back(static_cast<uint32_t>(R.below(MaxCodePoint + 1)));
  }
  return Word;
}
