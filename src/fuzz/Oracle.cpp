//===- fuzz/Oracle.cpp - Cross-engine differential oracle -------------------===//

#include "fuzz/Oracle.h"

#include "portfolio/Portfolio.h"
#include "re/RegexParser.h"
#include "support/Metrics.h"
#include "support/Stopwatch.h"

#include <utility>

using namespace sbd;
using namespace sbd::fuzz;

const char *sbd::fuzz::oracleLawName(OracleLaw L) {
  switch (L) {
  case OracleLaw::Membership:
    return "membership";
  case OracleLaw::Nullability:
    return "nullability";
  case OracleLaw::DerivativeLaw:
    return "derivative_law";
  case OracleLaw::ComplementLaw:
    return "complement_law";
  case OracleLaw::DeMorgan:
    return "de_morgan";
  case OracleLaw::SatVerdict:
    return "sat_verdict";
  case OracleLaw::WitnessValid:
    return "witness_valid";
  case OracleLaw::AnalyzerPrefix:
    return "analyzer_prefix";
  case OracleLaw::AnalyzerStability:
    return "analyzer_stability";
  case OracleLaw::CacheConsistency:
    return "cache_consistency";
  case OracleLaw::DistConsistency:
    return "dist_consistency";
  }
  return "?";
}

const char *DifferentialOracle::engineName(size_t Id) {
  switch (Id) {
  case EngRefMatcher:
    return "ref_matcher";
  case EngDfaMatcher:
    return "dfa_matcher";
  case EngTinyDfaMatcher:
    return "tiny_dfa_matcher";
  case EngCompiledDfa:
    return "compiled_dfa";
  case EngCompiledTiny:
    return "compiled_tiny_fallback";
  case EngSbfa:
    return "sbfa";
  case EngSafa:
    return "safa";
  case EngEagerDfa:
    return "eager_dfa";
  case EngAntimirovNfa:
    return "antimirov_nfa";
  case EngSolverBfs:
    return "solver_bfs";
  case EngSolverDfs:
    return "solver_dfs";
  case EngAntimirov:
    return "antimirov";
  case EngBrzMinterm:
    return "brzozowski_minterm";
  case EngEager:
    return "eager";
  case EngStub:
    return "stub";
  }
  return "?";
}

DifferentialOracle::DifferentialOracle(DerivativeEngine &Engine,
                                       RegexSolver &Slv, OracleOptions O)
    : Eng(Engine), M(Engine.regexManager()), Solver(Slv), Opts(O) {}

DifferentialOracle::~DifferentialOracle() = default;

template <typename Fn> auto DifferentialOracle::timed(size_t Id, Fn &&F) {
  Stopwatch W;
  auto Result = F();
  EngineUs[Id] += W.elapsedUs();
  EngineCalls[Id] += 1;
  return Result;
}

std::vector<EngineTiming> DifferentialOracle::timings() const {
  std::vector<EngineTiming> Out;
  for (size_t I = 0; I != EngCount; ++I) {
    if (!EngineCalls[I])
      continue;
    EngineTiming T;
    T.Name = I == EngStub && !Stub.Name.empty() ? Stub.Name : engineName(I);
    T.TotalUs = EngineUs[I];
    T.Calls = EngineCalls[I];
    Out.push_back(std::move(T));
  }
  return Out;
}

std::vector<EnginePhase> DifferentialOracle::phaseStats() const {
  std::vector<EnginePhase> Out;
  for (size_t I = 0; I != EngCount; ++I) {
    if (!EngineQueries[I])
      continue;
    EnginePhase P;
    P.Name = engineName(I);
    P.Queries = EngineQueries[I];
    P.Stats = EngineStats[I];
    Out.push_back(std::move(P));
  }
  return Out;
}

Discrepancy DifferentialOracle::makeDiscrepancy(OracleLaw Law,
                                                const std::vector<uint32_t> &W,
                                                const std::string &Engine,
                                                std::string Detail) const {
  Discrepancy D;
  D.Law = Law;
  D.Pattern = M.toString(Cur);
  D.Word = W;
  D.Engine = Engine;
  D.Detail = std::move(Detail);
  D.RegexNodes = M.node(Cur).Size;
  return D;
}

void DifferentialOracle::noteMembership(const std::vector<uint32_t> &W,
                                        const char *Engine, bool Got,
                                        bool Want,
                                        std::vector<Discrepancy> &Out) {
  ++Checks;
  SBD_OBS_INC(FuzzChecks);
  if (Got == Want)
    return;
  SBD_OBS_INC(FuzzDiscrepancies);
  std::string Detail = std::string(Engine) + "=" + (Got ? "1" : "0") +
                       " ref_matcher=" + (Want ? "1" : "0");
  Out.push_back(makeDiscrepancy(OracleLaw::Membership, W, Engine,
                                std::move(Detail)));
}

void DifferentialOracle::checkSatVerdicts(std::vector<Discrepancy> &Out) {
  struct Verdict {
    const char *Name;
    SolveResult Res;
  };
  std::vector<Verdict> All;

  // Records the verdict and folds its SolveStats into the per-engine phase
  // accumulator feeding phaseStats().
  auto addVerdict = [&](size_t Id, SolveResult Res) {
    EngineStats[Id] += Res.Stats;
    ++EngineQueries[Id];
    All.push_back({engineName(Id), std::move(Res)});
  };

  SolveOptions Bfs;
  Bfs.MaxStates = Opts.SolverMaxStates;
  addVerdict(EngSolverBfs, timed(EngSolverBfs, [&] {
               Solver.resetGraph();
               return Solver.checkSat(Cur, Bfs);
             }));

  if (Opts.CheckDfsAgreement) {
    SolveOptions Dfs = Bfs;
    Dfs.Strategy = SearchStrategy::Dfs;
    addVerdict(EngSolverDfs, timed(EngSolverDfs, [&] {
                 Solver.resetGraph();
                 return Solver.checkSat(Cur, Dfs);
               }));
  }

  if (CurFeat.NumCompl == 0) {
    SolveOptions BOpts;
    BOpts.MaxStates = Opts.BaselineMaxStates;
    AntimirovSolver AS(M);
    addVerdict(EngAntimirov,
               timed(EngAntimirov, [&] { return AS.solve(Cur, BOpts); }));
  }

  if (M.node(Cur).NumPreds <= Opts.BrzMaxPreds) {
    SolveOptions BOpts;
    BOpts.MaxStates = Opts.BaselineMaxStates;
    BrzozowskiMintermSolver BS(Eng);
    addVerdict(EngBrzMinterm,
               timed(EngBrzMinterm, [&] { return BS.solve(Cur, BOpts); }));
  }

  {
    SolveOptions EOpts;
    EOpts.MaxStates = Opts.EagerMaxStates;
    EagerSolver ES(M);
    addVerdict(EngEager,
               timed(EngEager, [&] { return ES.solve(Cur, EOpts); }));
  }

  // Every Sat witness must be accepted by the reference matcher, and all
  // definite verdicts must agree.
  const Verdict *FirstDefinite = nullptr;
  size_t DefiniteCount = 0;
  bool AllUnsat = true;
  std::string Table;
  for (const Verdict &V : All) {
    if (!Table.empty())
      Table += ' ';
    Table += V.Name;
    Table += '=';
    Table += statusName(V.Res.Status);
    ++Checks;
    SBD_OBS_INC(FuzzChecks);
    if (V.Res.isSat()) {
      AllUnsat = false;
      if (!Eng.matches(Cur, V.Res.Witness)) {
        SBD_OBS_INC(FuzzDiscrepancies);
        Out.push_back(makeDiscrepancy(
            OracleLaw::WitnessValid, V.Res.Witness, V.Name,
            std::string(V.Name) + " produced a witness the reference "
                                  "matcher rejects"));
      } else {
        // A valid witness is an accepted word, so the analyzer's required
        // literal prefix must be a prefix of it.
        checkAnalyzerPrefix(V.Res.Witness, V.Name, Out);
      }
    }
    if (V.Res.isSat() || V.Res.isUnsat()) {
      ++DefiniteCount;
      if (!FirstDefinite)
        FirstDefinite = &V;
    }
  }
  if (FirstDefinite) {
    for (const Verdict &V : All) {
      if (!(V.Res.isSat() || V.Res.isUnsat()))
        continue;
      if (V.Res.Status != FirstDefinite->Res.Status) {
        SBD_OBS_INC(FuzzDiscrepancies);
        Out.push_back(makeDiscrepancy(OracleLaw::SatVerdict, {}, V.Name,
                                      "conflicting verdicts: " + Table));
        break;
      }
    }
  }
  ConsensusUnsat = DefiniteCount != 0 && AllUnsat &&
                   FirstDefinite->Res.isUnsat();

  checkVerdictCache(Out);
}

void DifferentialOracle::checkVerdictCache(std::vector<Discrepancy> &Out) {
  // The law runs the production path: a portfolio router with the cache
  // attached, exactly as SmtSession/sbd-server wire it.
  SolveOptions Bfs;
  Bfs.MaxStates = Opts.SolverMaxStates;
  if (cache::canonicalVerdictKey(M, Cur, Bfs).empty())
    return; // print over the key cap: the cache is (correctly) skipped
  VCache.clear();
  portfolio::PortfolioSolver P(Solver);
  P.setVerdictCache(&VCache);

  Solver.resetGraph();
  SolveResult Cold = P.checkSat(Cur, Bfs);
  if (!Cold.isSat() && !Cold.isUnsat())
    return; // indefinite verdicts are never cached

  auto disagree = [&](const char *Phase, const SolveResult &Got) {
    SBD_OBS_INC(FuzzDiscrepancies);
    Out.push_back(makeDiscrepancy(
        OracleLaw::CacheConsistency, Got.Witness, "verdict_cache",
        std::string(Phase) + ": got " + statusName(Got.Status) +
            ", cold was " + statusName(Cold.Status)));
  };

  // Same query again: must be served from the cache (hit counter +1) with
  // the identical verdict and witness.
  uint64_t HitsBefore = VCache.counters().Hits;
  SolveResult Warm = P.checkSat(Cur, Bfs);
  ++Checks;
  SBD_OBS_INC(FuzzChecks);
  if (Warm.Status != Cold.Status || Warm.Witness != Cold.Witness) {
    disagree("warm hit", Warm);
    return;
  }
  if (VCache.counters().Hits != HitsBefore + 1 ||
      Warm.Stats.Engine != SolveEngine::VerdictCache) {
    SBD_OBS_INC(FuzzDiscrepancies);
    Out.push_back(makeDiscrepancy(OracleLaw::CacheConsistency, {},
                                  "verdict_cache",
                                  "second identical query in a session was "
                                  "not served from the cache"));
    return;
  }

  // Clearing the cache mid-session must reproduce the cold verdict
  // bit-identically (solver determinism is what makes caching sound).
  VCache.clear();
  Solver.resetGraph();
  SolveResult Cold2 = P.checkSat(Cur, Bfs);
  ++Checks;
  SBD_OBS_INC(FuzzChecks);
  if (Cold2.Status != Cold.Status || Cold2.Witness != Cold.Witness)
    disagree("post-clear re-solve", Cold2);
}


void DifferentialOracle::checkAnalyzerPrefix(const std::vector<uint32_t> &W,
                                             const char *Engine,
                                             std::vector<Discrepancy> &Out) {
  ++Checks;
  SBD_OBS_INC(FuzzChecks);
  bool Bad = W.size() < CurFeat.PrefixLen;
  for (uint32_t I = 0; !Bad && I != CurFeat.PrefixLen; ++I)
    Bad = W[I] != CurFeat.Prefix[I];
  // An exact+complete prefix claims L(R) is that single word.
  if (!Bad && CurFeat.PrefixExact && CurFeat.PrefixComplete)
    Bad = W.size() != CurFeat.PrefixLen;
  if (!Bad)
    return;
  SBD_OBS_INC(FuzzDiscrepancies);
  std::string Detail = "accepted word violates analyzed prefix (len=" +
                       std::to_string(CurFeat.PrefixLen) +
                       (CurFeat.PrefixExact ? ", exact" : "") + ")";
  Out.push_back(
      makeDiscrepancy(OracleLaw::AnalyzerPrefix, W, Engine, std::move(Detail)));
}

void DifferentialOracle::checkAnalyzerStability(std::vector<Discrepancy> &Out) {
  ++Checks;
  SBD_OBS_INC(FuzzChecks);
  // Print, reparse into a fresh arena, re-analyze with a fresh analyzer:
  // every feature must be identical (classification determinism across
  // arena rebuilds). In-arena rewrites are vacuous under hash-consing, so
  // the rebuild is the strongest similarity-preserving transform we have.
  std::string Printed = M.toString(Cur);
  RegexManager FreshM;
  RegexParseResult P = parseRegex(FreshM, Printed);
  if (!P.Ok) {
    SBD_OBS_INC(FuzzDiscrepancies);
    Out.push_back(makeDiscrepancy(OracleLaw::AnalyzerStability, {}, "",
                                  "printed pattern failed to reparse: " +
                                      P.Error));
    return;
  }
  analysis::RegexAnalyzer FreshA(FreshM);
  const analysis::RegexFeatures &G = FreshA.analyze(P.Value);
  const analysis::RegexFeatures &F = CurFeat;
  std::string Diff;
  auto cmp = [&Diff](const char *Name, uint64_t A, uint64_t B) {
    if (A == B)
      return;
    if (!Diff.empty())
      Diff += ' ';
    Diff += Name;
    Diff += '=';
    Diff += std::to_string(A);
    Diff += "->";
    Diff += std::to_string(B);
  };
  cmp("class", static_cast<uint64_t>(F.Class), static_cast<uint64_t>(G.Class));
  cmp("risk", F.Risk, G.Risk);
  cmp("tree_size", F.TreeSize, G.TreeSize);
  cmp("dag_size", F.DagSize, G.DagSize);
  cmp("star_height", F.StarHeight, G.StarHeight);
  cmp("boolean_depth", F.BooleanDepth, G.BooleanDepth);
  cmp("compl_depth", F.ComplDepth, G.ComplDepth);
  cmp("counter_blowup", F.CounterBlowup, G.CounterBlowup);
  cmp("max_loop_bound", F.MaxLoopBound, G.MaxLoopBound);
  cmp("distinct_preds", F.DistinctPreds, G.DistinctPreds);
  cmp("minterm_bound", F.MintermBound, G.MintermBound);
  cmp("nullable", F.Nullable, G.Nullable);
  cmp("empty_lang", F.EmptyLang, G.EmptyLang);
  cmp("num_pred", F.NumPred, G.NumPred);
  cmp("num_concat", F.NumConcat, G.NumConcat);
  cmp("num_star", F.NumStar, G.NumStar);
  cmp("num_loop", F.NumLoop, G.NumLoop);
  cmp("num_union", F.NumUnion, G.NumUnion);
  cmp("num_inter", F.NumInter, G.NumInter);
  cmp("num_compl", F.NumCompl, G.NumCompl);
  cmp("prefix_len", F.PrefixLen, G.PrefixLen);
  cmp("prefix_exact", F.PrefixExact, G.PrefixExact);
  cmp("prefix_complete", F.PrefixComplete, G.PrefixComplete);
  for (uint32_t I = 0; I != analysis::RegexFeatures::PrefixCap; ++I)
    cmp("prefix_char", F.Prefix[I], G.Prefix[I]);
  if (Diff.empty())
    return;
  SBD_OBS_INC(FuzzDiscrepancies);
  Out.push_back(makeDiscrepancy(OracleLaw::AnalyzerStability, {}, "",
                                "features drifted across rebuild: " + Diff));
}

void DifferentialOracle::beginRegex(Re Rx, std::vector<Discrepancy> &Out) {
  Cur = Rx;
  CurCompl = M.complement(Rx);
  ConsensusUnsat = false;
  CurFeat = Solver.analyzer().analyze(Rx);
  checkAnalyzerStability(Out);

  // Promotion is pinned off for the two lazy engines: the compiled path is
  // cross-checked through its own engines below, and these two must keep
  // exercising the lazy step loop (and the tiny cap's eviction/fallback).
  CachedMatcher::Options Full;
  Full.MaxStates = Opts.MatcherMaxStates;
  Full.PromoteAfterChars = 0;
  DfaMatcher = std::make_unique<CachedMatcher>(Eng, Cur, Full);
  CachedMatcher::Options Tiny;
  Tiny.MaxStates = Opts.TinyMatcherMaxStates;
  Tiny.PromoteAfterChars = 0;
  TinyMatcher = std::make_unique<CachedMatcher>(Eng, Cur, Tiny);

  CompiledD.reset();
  TinyPromoted.reset();
  if (Opts.UseCompiledDfa) {
    CompiledDfaOptions CD;
    CD.MaxStates = Opts.CompiledMaxStates;
    CompiledD = timed(EngCompiledDfa,
                      [&] { return CompiledDfa::compile(Eng, Cur, CD); });
    // Forced-fallback configuration: promotion fires on the first word but
    // the compile budget is hopeless, so the matcher must take the
    // compiled_fallbacks path and keep serving lazily — cross-checked on
    // every word like any other engine.
    CachedMatcher::Options TP;
    TP.MaxStates = Opts.MatcherMaxStates;
    TP.PromoteAfterChars = 1;
    TP.CompileMaxStates = Opts.TinyCompiledMaxStates;
    TinyPromoted = std::make_unique<CachedMatcher>(Eng, Cur, TP);
  }

  SbfaA = timed(EngSbfa, [&] {
    return Sbfa::build(Eng, Cur, Opts.SbfaMaxStates);
  });

  SafaA.reset();
  if (Opts.UseSafa && SbfaA && SbfaA->numStates() <= 48) {
    SafaA = timed(EngSafa, [&] {
      return std::optional<Safa>(Safa::fromSbfa(*SbfaA));
    });
    if (SafaA && SafaA->numTransitions() > Opts.SafaMaxTransitions)
      SafaA.reset();
  }

  EagerD.reset();
  if (Opts.UseEagerDfa) {
    EagerSolver ES(M);
    EagerD = timed(EngEagerDfa,
                   [&] { return ES.compileDfa(Cur, Opts.EagerMaxStates); });
  }

  AntiNfa.reset();
  if (Opts.UseAntimirovNfa && CurFeat.NumCompl == 0)
    AntiNfa = timed(EngAntimirovNfa, [&] {
      return buildPartialDerivativeNfa(M, Cur, Opts.BaselineMaxStates);
    });

  // ν-consistency: the stored nullability bit must agree with actual
  // ϵ-membership through the classical matcher.
  bool NuBit = M.nullable(Cur);
  bool NuMatch = timed(EngRefMatcher, [&] {
    return Eng.matches(Cur, std::vector<uint32_t>{});
  });
  ++Checks;
  SBD_OBS_INC(FuzzChecks);
  if (NuBit != NuMatch) {
    SBD_OBS_INC(FuzzDiscrepancies);
    Out.push_back(makeDiscrepancy(
        OracleLaw::Nullability, {}, engineName(EngRefMatcher),
        std::string("nullable_bit=") + (NuBit ? "1" : "0") +
            " epsilon_membership=" + (NuMatch ? "1" : "0")));
  }

  if (Opts.CheckSat)
    checkSatVerdicts(Out);
}

void DifferentialOracle::checkWord(const std::vector<uint32_t> &W,
                                   std::vector<Discrepancy> &Out) {
  SBD_OBS_INC(FuzzSamples);
  bool Ref = timed(EngRefMatcher, [&] { return Eng.matches(Cur, W); });
  if (Ref)
    checkAnalyzerPrefix(W, engineName(EngRefMatcher), Out);

  noteMembership(W, engineName(EngDfaMatcher),
                 timed(EngDfaMatcher, [&] { return DfaMatcher->matches(W); }),
                 Ref, Out);
  noteMembership(W, engineName(EngTinyDfaMatcher),
                 timed(EngTinyDfaMatcher,
                       [&] { return TinyMatcher->matches(W); }),
                 Ref, Out);
  if (CompiledD)
    noteMembership(W, engineName(EngCompiledDfa),
                   timed(EngCompiledDfa,
                         [&] { return CompiledD->matches(W); }),
                   Ref, Out);
  if (TinyPromoted)
    noteMembership(W, engineName(EngCompiledTiny),
                   timed(EngCompiledTiny,
                         [&] { return TinyPromoted->matches(W); }),
                   Ref, Out);
  if (SbfaA)
    noteMembership(W, engineName(EngSbfa),
                   timed(EngSbfa, [&] { return SbfaA->accepts(W); }), Ref,
                   Out);
  if (SafaA)
    noteMembership(W, engineName(EngSafa),
                   timed(EngSafa, [&] { return SafaA->accepts(W); }), Ref,
                   Out);
  if (EagerD)
    noteMembership(W, engineName(EngEagerDfa),
                   timed(EngEagerDfa, [&] { return EagerD->accepts(W); }),
                   Ref, Out);
  if (AntiNfa)
    noteMembership(W, engineName(EngAntimirovNfa),
                   timed(EngAntimirovNfa, [&] { return AntiNfa->accepts(W); }),
                   Ref, Out);
  if (Stub) {
    bool Got =
        timed(EngStub, [&] { return Stub.Matches(M, Eng, Cur, W); });
    ++Checks;
    SBD_OBS_INC(FuzzChecks);
    if (Got != Ref) {
      SBD_OBS_INC(FuzzDiscrepancies);
      Out.push_back(makeDiscrepancy(
          OracleLaw::Membership, W, Stub.Name,
          Stub.Name + "=" + (Got ? "1" : "0") +
              " ref_matcher=" + (Ref ? "1" : "0")));
    }
  }

  // Derivative law: w ∈ L(R) ⇔ w[1..] ∈ L(D_{w[0]}(R)).
  if (!W.empty()) {
    std::vector<uint32_t> Prefix(W.begin(), W.begin() + 1);
    std::vector<uint32_t> Suffix(W.begin() + 1, W.end());
    Re Der = Eng.derivativeOfWord(Cur, Prefix);
    bool Law = Eng.matches(Der, Suffix);
    ++Checks;
    SBD_OBS_INC(FuzzChecks);
    if (Law != Ref) {
      SBD_OBS_INC(FuzzDiscrepancies);
      Out.push_back(makeDiscrepancy(
          OracleLaw::DerivativeLaw, W, engineName(EngRefMatcher),
          "w in der(R) = " + std::string(Law ? "1" : "0") +
              " but aw in R = " + (Ref ? "1" : "0")));
    }
  }

  // Complement law: membership in ~R must be the exact negation.
  {
    bool Compl = timed(EngRefMatcher, [&] { return Eng.matches(CurCompl, W); });
    ++Checks;
    SBD_OBS_INC(FuzzChecks);
    if (Compl == Ref) {
      SBD_OBS_INC(FuzzDiscrepancies);
      Out.push_back(makeDiscrepancy(
          OracleLaw::ComplementLaw, W, engineName(EngRefMatcher),
          std::string("w in R = w in ~R = ") + (Ref ? "1" : "0")));
    }
  }

  // A sampled member of a language every solver proved empty is a verdict
  // bug in *all* of them (or a matcher bug — either way, a discrepancy).
  if (ConsensusUnsat && Ref) {
    SBD_OBS_INC(FuzzDiscrepancies);
    Out.push_back(makeDiscrepancy(
        OracleLaw::SatVerdict, W, engineName(EngRefMatcher),
        "reference matcher accepts a word of a provably-unsat language"));
  }
}

void DifferentialOracle::checkDeMorgan(
    Re A, Re B, const std::vector<std::vector<uint32_t>> &Words,
    std::vector<Discrepancy> &Out) {
  struct Dual {
    Re Lhs, Rhs;
    const char *Name;
  };
  const Dual Duals[] = {
      {M.complement(M.inter(A, B)),
       M.union_(M.complement(A), M.complement(B)), "~(A&B) vs ~A|~B"},
      {M.complement(M.union_(A, B)),
       M.inter(M.complement(A), M.complement(B)), "~(A|B) vs ~A&~B"},
  };
  for (const Dual &D : Duals) {
    // Interning may already have identified the two sides (e.g. when A and
    // B are predicate leaves whose Boolean structure folds into the
    // character algebra); that is the law holding definitionally.
    if (D.Lhs == D.Rhs)
      continue;
    for (const std::vector<uint32_t> &W : Words) {
      bool L = timed(EngRefMatcher, [&] { return Eng.matches(D.Lhs, W); });
      bool R = timed(EngRefMatcher, [&] { return Eng.matches(D.Rhs, W); });
      ++Checks;
      SBD_OBS_INC(FuzzChecks);
      if (L != R) {
        SBD_OBS_INC(FuzzDiscrepancies);
        Discrepancy Disc;
        Disc.Law = OracleLaw::DeMorgan;
        Disc.Pattern = M.toString(D.Lhs);
        Disc.Word = W;
        Disc.Engine = engineName(EngRefMatcher);
        Disc.Detail = std::string(D.Name) + ": lhs=" + (L ? "1" : "0") +
                      " rhs=" + (R ? "1" : "0") +
                      " rhs_pattern=" + M.toString(D.Rhs);
        Disc.RegexNodes = M.node(D.Lhs).Size;
        Out.push_back(std::move(Disc));
      }
    }
    // Solver-based equivalence: the symmetric difference must be empty.
    SolveOptions EqOpts;
    EqOpts.MaxStates = Opts.SolverMaxStates;
    SolveResult Eq = timed(EngSolverBfs, [&] {
      Solver.resetGraph();
      return Solver.checkEquivalent(D.Lhs, D.Rhs, EqOpts);
    });
    ++Checks;
    SBD_OBS_INC(FuzzChecks);
    if (Eq.isSat()) {
      SBD_OBS_INC(FuzzDiscrepancies);
      Discrepancy Disc;
      Disc.Law = OracleLaw::DeMorgan;
      Disc.Pattern = M.toString(D.Lhs);
      Disc.Word = Eq.Witness;
      Disc.Engine = engineName(EngSolverBfs);
      Disc.Detail = std::string(D.Name) +
                    ": solver found a distinguishing word; rhs_pattern=" +
                    M.toString(D.Rhs);
      Disc.RegexNodes = M.node(D.Lhs).Size;
      Out.push_back(std::move(Disc));
    }
  }
}

void DifferentialOracle::checkSample(
    Re Rx, const std::vector<std::vector<uint32_t>> &Words,
    std::vector<Discrepancy> &Out) {
  beginRegex(Rx, Out);
  for (const std::vector<uint32_t> &W : Words)
    checkWord(W, Out);
}
