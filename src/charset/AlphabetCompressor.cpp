//===- charset/AlphabetCompressor.cpp - Mintermized alphabet compression ----===//
// sbd-lint: hot-path

#include "charset/AlphabetCompressor.h"

#include "support/Metrics.h"

#include <algorithm>
#include <map>

using namespace sbd;

AlphabetCompressor::AlphabetCompressor(const std::vector<CharSet> &Preds) {
  // Event sweep over interval boundaries. Every range contributes a
  // "predicate turns on" event at Lo and a "turns off" event at Hi+1; the
  // membership signature is maintained incrementally, so the sweep is
  // O(B log B + B * words) in the number of boundaries B rather than the
  // O(B * |Preds| * log ranges) of a per-segment containment probe.
  struct Event {
    uint32_t Pos;
    uint32_t Pred;
    bool Start;
  };
  std::vector<Event> Events;
  std::vector<uint32_t> Bounds;
  Events.reserve(Preds.size() * 2);
  Bounds.reserve(Preds.size() * 2 + 2);
  Bounds.push_back(0);
  // Force a boundary at the table edge so no elementary segment straddles
  // it: segments at index >= AsciiSegments then start at or above 256, which
  // keeps the binary search's loop invariant trivially true.
  Bounds.push_back(AsciiTableSize);
  for (size_t P = 0; P != Preds.size(); ++P) {
    for (const CharRange &R : Preds[P].ranges()) {
      Bounds.push_back(R.Lo);
      Events.push_back({R.Lo, static_cast<uint32_t>(P), true});
      if (R.Hi < MaxCodePoint) {
        Bounds.push_back(R.Hi + 1);
        Events.push_back({R.Hi + 1, static_cast<uint32_t>(P), false});
      }
    }
  }
  std::sort(Bounds.begin(), Bounds.end());
  Bounds.erase(std::unique(Bounds.begin(), Bounds.end()), Bounds.end());
  std::sort(Events.begin(), Events.end(),
            [](const Event &A, const Event &B) { return A.Pos < B.Pos; });

  // Group segments by signature; class ids are assigned in order of first
  // appearance, i.e. ascending by the class's minimum element (class 0
  // always contains code point 0). std::map keeps construction out of the
  // banned node-hash-table territory and is only touched once per segment.
  size_t NumWords = (Preds.size() + 63) / 64;
  std::vector<uint64_t> Sig(NumWords, 0);
  std::map<std::vector<uint64_t>, uint16_t> ClassOfSig;
  SegmentStarts.reserve(Bounds.size());
  SegmentClasses.reserve(Bounds.size());

  size_t NextEvent = 0;
  for (uint32_t Start : Bounds) {
    for (; NextEvent != Events.size() && Events[NextEvent].Pos == Start;
         ++NextEvent) {
      const Event &E = Events[NextEvent];
      Sig[E.Pred / 64] ^= (1ULL << (E.Pred % 64));
    }
    auto [It, Fresh] = ClassOfSig.try_emplace(
        Sig, static_cast<uint16_t>(ClassOfSig.size()));
    if (Fresh)
      Reps.push_back(Start);
    SegmentStarts.push_back(Start);
    SegmentClasses.push_back(It->second);
  }

  // Upgrade representatives to printable ASCII where the class allows it
  // (witness strings read better). One extra pass over the segments.
  for (size_t I = 0; I != SegmentStarts.size(); ++I) {
    uint32_t Lo = SegmentStarts[I];
    uint32_t Hi =
        (I + 1 != SegmentStarts.size()) ? SegmentStarts[I + 1] - 1
                                        : MaxCodePoint;
    uint16_t Cls = SegmentClasses[I];
    uint32_t &Rep = Reps[Cls];
    bool RepPrintable = Rep >= 0x21 && Rep <= 0x7E;
    if (!RepPrintable && Lo <= 0x7E && Hi >= 0x21)
      Rep = std::max<uint32_t>(Lo, 0x21);
  }

  // Fill the dense table; the forced boundary at AsciiTableSize guarantees
  // the count below is exact (no segment is split by the table edge).
  for (size_t I = 0; I != SegmentStarts.size() &&
                     SegmentStarts[I] < AsciiTableSize;
       ++I) {
    uint32_t End = (I + 1 != SegmentStarts.size())
                       ? std::min(SegmentStarts[I + 1], AsciiTableSize)
                       : AsciiTableSize;
    for (uint32_t Cp = SegmentStarts[I]; Cp != End; ++Cp)
      AsciiTable[Cp] = SegmentClasses[I];
    AsciiSegments = I + 1;
  }
  // Make the binary search's initial Lo point at the first segment covering
  // code points >= AsciiTableSize. Because of the forced boundary, that is
  // exactly the segment starting at AsciiTableSize (it always exists:
  // AsciiTableSize - 1 < MaxCodePoint).
  // AsciiSegments now counts segments strictly below the edge, which is the
  // index of the segment starting at the edge.

  SBD_OBS_ADD(AlphabetMinterms, numClasses());
}

CharSet AlphabetCompressor::classSet(uint16_t Cls) const {
  std::vector<CharRange> Rs;
  for (size_t I = 0; I != SegmentStarts.size(); ++I) {
    if (SegmentClasses[I] != Cls)
      continue;
    uint32_t Hi = (I + 1 != SegmentStarts.size()) ? SegmentStarts[I + 1] - 1
                                                  : MaxCodePoint;
    Rs.push_back({SegmentStarts[I], Hi});
  }
  // fromRanges re-coalesces segments split only by the forced table-edge
  // boundary.
  return CharSet::fromRanges(std::move(Rs));
}

std::vector<CharSet> AlphabetCompressor::classSets() const {
  // One pass: bucket segment ranges by class, then canonicalize each.
  std::vector<std::vector<CharRange>> Buckets(numClasses());
  for (size_t I = 0; I != SegmentStarts.size(); ++I) {
    uint32_t Hi = (I + 1 != SegmentStarts.size()) ? SegmentStarts[I + 1] - 1
                                                  : MaxCodePoint;
    Buckets[SegmentClasses[I]].push_back({SegmentStarts[I], Hi});
  }
  std::vector<CharSet> Out;
  Out.reserve(Buckets.size());
  for (std::vector<CharRange> &Rs : Buckets)
    Out.push_back(CharSet::fromRanges(std::move(Rs)));
  return Out;
}
