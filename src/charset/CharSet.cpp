//===- charset/CharSet.cpp - Canonical interval sets ------------------------===//

#include "charset/CharSet.h"

#include "charset/AlphabetCompressor.h"
#include "support/Hashing.h"
#include "support/Metrics.h"
#include "support/Stopwatch.h"

#include <algorithm>

using namespace sbd;

CharSet CharSet::full() { return range(0, MaxCodePoint); }

CharSet CharSet::singleton(uint32_t Cp) { return range(Cp, Cp); }

CharSet CharSet::range(uint32_t Lo, uint32_t Hi) {
  assert(Lo <= Hi && Hi <= MaxCodePoint && "malformed range");
  return CharSet(std::vector<CharRange>{{Lo, Hi}});
}

CharSet CharSet::fromRanges(std::vector<CharRange> Rs) {
  if (Rs.empty())
    return CharSet();
  std::sort(Rs.begin(), Rs.end(), [](const CharRange &A, const CharRange &B) {
    return A.Lo < B.Lo || (A.Lo == B.Lo && A.Hi < B.Hi);
  });
  std::vector<CharRange> Out;
  for (const CharRange &R : Rs) {
    assert(R.Lo <= R.Hi && R.Hi <= MaxCodePoint && "malformed range");
    // Coalesce with the previous interval when overlapping or adjacent.
    if (!Out.empty() && R.Lo <= Out.back().Hi + 1 && Out.back().Hi + 1 != 0) {
      Out.back().Hi = std::max(Out.back().Hi, R.Hi);
      continue;
    }
    Out.push_back(R);
  }
  return CharSet(std::move(Out));
}

CharSet CharSet::digit() { return range('0', '9'); }

CharSet CharSet::word() {
  return fromRanges({{'0', '9'}, {'A', 'Z'}, {'_', '_'}, {'a', 'z'}});
}

CharSet CharSet::space() {
  return fromRanges({{'\t', '\r'}, {' ', ' '}});
}

CharSet CharSet::asciiLetter() {
  return fromRanges({{'A', 'Z'}, {'a', 'z'}});
}

CharSet CharSet::unionWith(const CharSet &Other) const {
  std::vector<CharRange> All = Ranges;
  All.insert(All.end(), Other.Ranges.begin(), Other.Ranges.end());
  return fromRanges(std::move(All));
}

CharSet CharSet::intersectWith(const CharSet &Other) const {
  std::vector<CharRange> Out;
  size_t I = 0, J = 0;
  while (I < Ranges.size() && J < Other.Ranges.size()) {
    const CharRange &A = Ranges[I];
    const CharRange &B = Other.Ranges[J];
    uint32_t Lo = std::max(A.Lo, B.Lo);
    uint32_t Hi = std::min(A.Hi, B.Hi);
    if (Lo <= Hi)
      Out.push_back({Lo, Hi});
    // Advance whichever interval ends first.
    if (A.Hi < B.Hi)
      ++I;
    else
      ++J;
  }
  // The sweep already yields canonical output (sorted, disjoint,
  // non-adjacent since the inputs were non-adjacent).
  return CharSet(std::move(Out));
}

CharSet CharSet::complement() const {
  // Gaps between consecutive intervals become the complement's intervals.
  std::vector<CharRange> Out;
  uint32_t Next = 0; // first code point not yet covered by the complement
  for (const CharRange &R : Ranges) {
    if (R.Lo > Next)
      Out.push_back({Next, R.Lo - 1});
    Next = R.Hi + 1; // never wraps: Hi <= MaxCodePoint < UINT32_MAX
  }
  if (Next <= MaxCodePoint)
    Out.push_back({Next, MaxCodePoint});
  return CharSet(std::move(Out));
}

CharSet CharSet::minus(const CharSet &Other) const {
  return intersectWith(Other.complement());
}

bool CharSet::contains(uint32_t Cp) const {
  // Binary search on interval starts.
  auto It = std::upper_bound(
      Ranges.begin(), Ranges.end(), Cp,
      [](uint32_t V, const CharRange &R) { return V < R.Lo; });
  if (It == Ranges.begin())
    return false;
  --It;
  return Cp <= It->Hi;
}

bool CharSet::isSubsetOf(const CharSet &Other) const {
  return intersectWith(Other) == *this;
}

bool CharSet::isDisjointFrom(const CharSet &Other) const {
  size_t I = 0, J = 0;
  while (I < Ranges.size() && J < Other.Ranges.size()) {
    const CharRange &A = Ranges[I];
    const CharRange &B = Other.Ranges[J];
    if (std::max(A.Lo, B.Lo) <= std::min(A.Hi, B.Hi))
      return false;
    if (A.Hi < B.Hi)
      ++I;
    else
      ++J;
  }
  return true;
}

uint64_t CharSet::count() const {
  uint64_t N = 0;
  for (const CharRange &R : Ranges)
    N += static_cast<uint64_t>(R.Hi) - R.Lo + 1;
  return N;
}

std::optional<uint32_t> CharSet::minElement() const {
  if (Ranges.empty())
    return std::nullopt;
  return Ranges.front().Lo;
}

std::optional<uint32_t> CharSet::sample() const {
  if (Ranges.empty())
    return std::nullopt;
  // Prefer a printable ASCII representative so witness strings read well.
  // In-place scan (no temporary set): ranges are sorted, so the first range
  // reaching [0x21, 0x7E] holds the smallest printable member.
  for (const CharRange &R : Ranges) {
    if (R.Lo > 0x7E)
      break;
    if (R.Hi >= 0x21)
      return std::max<uint32_t>(R.Lo, 0x21);
  }
  return minElement();
}

bool sbd::operator<(const CharSet &A, const CharSet &B) {
  return std::lexicographical_compare(
      A.Ranges.begin(), A.Ranges.end(), B.Ranges.begin(), B.Ranges.end(),
      [](const CharRange &X, const CharRange &Y) {
        return X.Lo < Y.Lo || (X.Lo == Y.Lo && X.Hi < Y.Hi);
      });
}

uint64_t CharSet::hash() const {
  uint64_t H = 0x5eed5eed5eed5eedULL;
  for (const CharRange &R : Ranges) {
    H = hashCombine(H, R.Lo);
    H = hashCombine(H, R.Hi);
  }
  return H;
}

/// Renders one code point inside a character class.
static std::string classChar(uint32_t Cp) {
  switch (Cp) {
  case '-':
    return "\\-";
  case ']':
    return "\\]";
  case '[':
    return "\\[";
  case '\\':
    return "\\\\";
  case '^':
    return "\\^";
  default:
    return escapeCodePoint(Cp);
  }
}

std::string CharSet::str() const {
  if (isEmpty())
    return "[]";
  if (isFull())
    return ".";
  if (*this == digit())
    return "\\d";
  if (*this == word())
    return "\\w";
  if (*this == space())
    return "\\s";
  if (Ranges.size() == 1 && Ranges[0].Lo == Ranges[0].Hi) {
    // A singleton prints as the bare (escaped) character.
    uint32_t Cp = Ranges[0].Lo;
    // Characters that are regex metacharacters need escaping at top level.
    static const std::string Meta = "()[]{}|&~*+?.\\-^$";
    if (Cp < 0x80 && Meta.find(static_cast<char>(Cp)) != std::string::npos)
      return std::string("\\") + static_cast<char>(Cp);
    return escapeCodePoint(Cp);
  }
  // If the complement is smaller, print a negated class.
  CharSet Comp = complement();
  bool Negate = Comp.Ranges.size() < Ranges.size();
  const std::vector<CharRange> &Rs = Negate ? Comp.Ranges : Ranges;
  std::string Out = Negate ? "[^" : "[";
  for (const CharRange &R : Rs) {
    if (R.Lo == R.Hi) {
      Out += classChar(R.Lo);
    } else {
      Out += classChar(R.Lo);
      Out += '-';
      Out += classChar(R.Hi);
    }
  }
  Out += ']';
  return Out;
}

std::vector<CharSet> sbd::computeMinterms(const std::vector<CharSet> &Sets) {
  SBD_OBS_INC(MintermComputations);
#if SBD_OBS
  Stopwatch MintermTimer;
#endif
  // One partition sweep implementation for the whole library: build the
  // compressor and read the blocks back out. Classes are ordered by minimum
  // element, so the result is deterministic.
  std::vector<CharSet> Out = AlphabetCompressor(Sets).classSets();
  SBD_OBS_ADD(MintermsProduced, Out.size());
  SBD_OBS_ADD(MintermTimeUs, MintermTimer.elapsedUs());
  return Out;
}
