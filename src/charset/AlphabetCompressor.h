//===- charset/AlphabetCompressor.h - Mintermized alphabet compression ------===//
// sbd-lint: hot-path
///
/// \file
/// Query-scoped alphabet compression (the "mintermization" of Section 3 and
/// of RE#): given the predicate set Ψ of a query's regexes, computes the
/// coarsest partition of the code-point domain such that every ψ ∈ Ψ — and
/// therefore every Boolean combination of members of Ψ, which is exactly the
/// set of guards the derivative closure can ever produce — is a union of
/// partition blocks. Each block (minterm) gets a dense id, so the exploration
/// hot paths can run over small integer alphabets instead of `CharSet`
/// objects:
///
///   - `classOf(cp)` maps a code point to its minterm id through an RE2-style
///     bytemap: a flat 256-entry table answers ASCII (and Latin-1) in one
///     load, everything above falls back to binary search over the sorted
///     segment starts.
///   - `representative(id)` is a fixed witness character per block
///     (printable ASCII preferred, so witness strings stay readable).
///   - `classSet(id)` recovers the block as a CharSet for callers that still
///     need predicate objects (automata construction, DOT rendering).
///
/// One instance is built per query (or per matcher/automaton) and shared by
/// every state expansion of that query; this is the single place the
/// partition sweep is implemented — `computeMinterms` and the former ad-hoc
/// copies in the baselines/automata all route through it.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_CHARSET_ALPHABETCOMPRESSOR_H
#define SBD_CHARSET_ALPHABETCOMPRESSOR_H

#include "charset/CharSet.h"

#include <cstdint>
#include <vector>

namespace sbd {

/// The minterm partition of a predicate set, with dense class ids.
class AlphabetCompressor {
public:
  /// Trivial compressor: no predicates, one class covering the whole domain.
  AlphabetCompressor() : AlphabetCompressor(std::vector<CharSet>{}) {}

  /// Builds the partition induced by \p Preds. Duplicate and empty
  /// predicates are harmless (they do not refine the partition). The number
  /// of classes is at most 2^|Preds| but in practice linear in the number of
  /// distinct interval boundaries; it always fits in uint16_t because a
  /// boundary sweep over interval predicates yields at most one class per
  /// elementary segment and segments are merged by signature.
  explicit AlphabetCompressor(const std::vector<CharSet> &Preds);

  /// Number of classes (>= 1; the partition covers the whole domain).
  uint32_t numClasses() const { return static_cast<uint32_t>(Reps.size()); }

  /// The minterm id of \p Cp. O(1) for code points < 256, O(log segments)
  /// above.
  uint16_t classOf(uint32_t Cp) const {
    if (Cp < AsciiTableSize)
      return AsciiTable[Cp];
    // Binary search the sorted segment starts: the class of Cp is the class
    // of the last segment starting at or below it.
    size_t Lo = AsciiSegments, Hi = SegmentStarts.size();
    while (Lo + 1 < Hi) {
      size_t Mid = (Lo + Hi) / 2;
      if (SegmentStarts[Mid] <= Cp)
        Lo = Mid;
      else
        Hi = Mid;
    }
    return SegmentClasses[Lo];
  }

  /// A fixed representative code point of class \p Cls (printable ASCII
  /// preferred).
  uint32_t representative(uint16_t Cls) const { return Reps[Cls]; }

  /// The full block of class \p Cls as a canonical CharSet. Materialized on
  /// demand from the segment table (the hot paths never need it).
  CharSet classSet(uint16_t Cls) const;

  /// All blocks, in class-id order. Pairwise disjoint, nonempty, union =
  /// full domain — the Minterms(S) of Section 3.
  std::vector<CharSet> classSets() const;

private:
  /// Dense lookup for the hottest sub-alphabet. 256 covers ASCII and
  /// Latin-1; the table is shared by all states of a query, so it stays
  /// resident in L1 regardless of how many states the exploration touches.
  static constexpr uint32_t AsciiTableSize = 256;

  uint16_t AsciiTable[AsciiTableSize];
  /// Elementary segments [SegmentStarts[i], SegmentStarts[i+1]) in ascending
  /// order; the last segment ends at MaxCodePoint. SegmentClasses[i] is the
  /// class of segment i.
  std::vector<uint32_t> SegmentStarts;
  std::vector<uint16_t> SegmentClasses;
  /// Number of leading segments fully below AsciiTableSize (skipped by the
  /// binary search, which only ever sees Cp >= AsciiTableSize).
  size_t AsciiSegments = 0;
  /// Per-class representative code point.
  std::vector<uint32_t> Reps;
};

} // namespace sbd

#endif // SBD_CHARSET_ALPHABETCOMPRESSOR_H
