//===- charset/Bdd.h - BDD character predicates -------------------------------===//
///
/// \file
/// A second realization of the effective Boolean algebra of character
/// predicates: reduced ordered binary decision diagrams over the 21 bits of
/// a Unicode code point (most-significant bit first). The paper's related
/// work discusses predicates "represented succinctly by tests, e.g., by
/// encoding predicates as BDDs" (the KAT line of work) and Z3's own
/// character theory is BDD-based; this module shows the library's algebra
/// interface is genuinely theory-agnostic by providing lossless conversions
/// CharSet ⇄ BDD and the same Boolean operations with the same
/// extensionality property (ROBDD canonicity: equivalent predicates are
/// pointer-equal).
///
/// All operations are relative to the valid-code-point domain
/// [0, 0x10FFFF]; complement never produces assignments above the domain.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_CHARSET_BDD_H
#define SBD_CHARSET_BDD_H

#include "charset/CharSet.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sbd {

/// Handle to an interned BDD node (0 = false terminal, 1 = true terminal).
struct BddRef {
  uint32_t Id = 0;

  friend bool operator==(BddRef A, BddRef B) { return A.Id == B.Id; }
  friend bool operator!=(BddRef A, BddRef B) { return A.Id != B.Id; }
};

/// Arena + operations for character-predicate BDDs.
class BddManager {
public:
  /// Number of decision variables (bits of a code point, MSB first).
  static constexpr uint32_t NumBits = 21;

  BddManager();

  BddRef falseBdd() const { return BddRef{0}; }
  BddRef trueBdd() const { return BddRef{1}; } // true over all 2^21 vectors
  /// The predicate denoting exactly the valid code points [0, MaxCodePoint].
  BddRef domain() const { return Domain; }

  /// --- Boolean algebra (relative to the code-point domain) ----------------

  BddRef bddAnd(BddRef A, BddRef B);
  BddRef bddOr(BddRef A, BddRef B);
  /// Domain-relative complement: domain ∧ ¬A.
  BddRef bddNot(BddRef A);

  bool isEmpty(BddRef A) const { return A == falseBdd(); }
  /// Extensional equality: canonical ROBDDs make this pointer equality.
  bool equal(BddRef A, BddRef B) const { return A == B; }

  /// --- Conversions and queries ---------------------------------------------

  /// Encodes an interval set as a BDD (exact).
  BddRef fromCharSet(const CharSet &Set);
  /// Decodes a BDD back into a canonical interval set (exact inverse).
  CharSet toCharSet(BddRef A) const;
  /// a ∈ [[A]]?
  bool contains(BddRef A, uint32_t Cp) const;
  /// Number of code points denoted (within the domain).
  uint64_t satCount(BddRef A);

  /// Interned node count (diagnostics; measures sharing).
  size_t numNodes() const { return Nodes.size(); }

private:
  struct Node {
    uint32_t Var; ///< decision bit, 0 = MSB; terminals use NumBits
    BddRef Lo;    ///< branch for bit = 0
    BddRef Hi;    ///< branch for bit = 1
  };

  BddRef mk(uint32_t Var, BddRef Lo, BddRef Hi);
  BddRef applyOp(bool IsAnd, BddRef A, BddRef B);
  /// BDD for { x : Lo <= x <= Hi } (bit-comparator construction).
  BddRef rangeBdd(uint32_t Lo, uint32_t Hi, uint32_t Bit);
  void collectIntervals(BddRef A, uint32_t Bit, uint32_t Prefix,
                        std::vector<CharRange> &Out) const;

  const Node &node(BddRef R) const { return Nodes[R.Id]; }

  std::vector<Node> Nodes;
  std::unordered_map<uint64_t, std::vector<uint32_t>> ConsTable;
  std::unordered_map<uint64_t, BddRef> OpCache; // (op,a,b) -> result
  std::unordered_map<uint64_t, uint64_t> CountCache;
  BddRef Domain;
};

} // namespace sbd

#endif // SBD_CHARSET_BDD_H
