//===- charset/Bdd.cpp - BDD character predicates ------------------------------===//

#include "charset/Bdd.h"

#include "support/Hashing.h"

#include <cassert>

using namespace sbd;

BddManager::BddManager() {
  // Terminal nodes: false (id 0) and true (id 1); Var = NumBits marks a
  // terminal and keeps variable comparisons simple.
  Nodes.push_back({NumBits, BddRef{0}, BddRef{0}});
  Nodes.push_back({NumBits, BddRef{1}, BddRef{1}});
  Domain = rangeBdd(0, MaxCodePoint, 0);
}

BddRef BddManager::mk(uint32_t Var, BddRef Lo, BddRef Hi) {
  if (Lo == Hi)
    return Lo; // reduction
  uint64_t H = hashMix(Var);
  H = hashCombine(H, Lo.Id);
  H = hashCombine(H, Hi.Id);
  auto &Bucket = ConsTable[H];
  for (uint32_t Id : Bucket) {
    const Node &N = Nodes[Id];
    if (N.Var == Var && N.Lo == Lo && N.Hi == Hi)
      return BddRef{Id};
  }
  uint32_t Id = static_cast<uint32_t>(Nodes.size());
  Nodes.push_back({Var, Lo, Hi});
  Bucket.push_back(Id);
  return BddRef{Id};
}

BddRef BddManager::applyOp(bool IsAnd, BddRef A, BddRef B) {
  // Terminal cases.
  if (A == B)
    return A;
  if (IsAnd) {
    if (A == falseBdd() || B == falseBdd())
      return falseBdd();
    if (A == trueBdd())
      return B;
    if (B == trueBdd())
      return A;
  } else {
    if (A == trueBdd() || B == trueBdd())
      return trueBdd();
    if (A == falseBdd())
      return B;
    if (B == falseBdd())
      return A;
  }
  // Normalize operand order (both ops are commutative) for the cache.
  if (B.Id < A.Id)
    std::swap(A, B);
  uint64_t Key = (static_cast<uint64_t>(A.Id) << 33) |
                 (static_cast<uint64_t>(B.Id) << 1) | (IsAnd ? 1 : 0);
  auto It = OpCache.find(Key);
  if (It != OpCache.end())
    return It->second;

  const Node &NA = node(A);
  const Node &NB = node(B);
  uint32_t Var = std::min(NA.Var, NB.Var);
  BddRef ALo = NA.Var == Var ? NA.Lo : A;
  BddRef AHi = NA.Var == Var ? NA.Hi : A;
  BddRef BLo = NB.Var == Var ? NB.Lo : B;
  BddRef BHi = NB.Var == Var ? NB.Hi : B;
  BddRef Lo = applyOp(IsAnd, ALo, BLo);
  BddRef Hi = applyOp(IsAnd, AHi, BHi);
  BddRef R = mk(Var, Lo, Hi);
  OpCache.emplace(Key, R);
  return R;
}

BddRef BddManager::bddAnd(BddRef A, BddRef B) { return applyOp(true, A, B); }

BddRef BddManager::bddOr(BddRef A, BddRef B) { return applyOp(false, A, B); }

BddRef BddManager::bddNot(BddRef A) {
  // ¬A within 2^21 vectors, then clamp to the domain. Negation is computed
  // structurally (swap reachability to terminals) via De Morgan through the
  // apply cache: ¬A = (true ⊕ A) — implemented as a dedicated recursion.
  struct Negate {
    BddManager &Mgr;
    std::unordered_map<uint32_t, BddRef> Memo;
    BddRef run(BddRef X) {
      if (X == Mgr.falseBdd())
        return Mgr.trueBdd();
      if (X == Mgr.trueBdd())
        return Mgr.falseBdd();
      auto It = Memo.find(X.Id);
      if (It != Memo.end())
        return It->second;
      // Copy: mk() may grow the arena.
      Node N = Mgr.node(X);
      BddRef Lo = run(N.Lo);
      BddRef Hi = run(N.Hi);
      BddRef R = Mgr.mk(N.Var, Lo, Hi);
      Memo.emplace(X.Id, R);
      return R;
    }
  };
  Negate Neg{*this, {}};
  return bddAnd(Domain, Neg.run(A));
}

BddRef BddManager::rangeBdd(uint32_t Lo, uint32_t Hi, uint32_t Bit) {
  assert(Lo <= Hi && "inverted range");
  if (Bit == NumBits)
    return trueBdd();
  uint32_t Width = NumBits - Bit;           // bits remaining
  uint32_t Mask = (1u << (Width - 1));      // current bit within the suffix
  uint32_t Rest = Mask - 1;                 // suffix below the current bit
  bool LoBit = (Lo & Mask) != 0;
  bool HiBit = (Hi & Mask) != 0;
  uint32_t LoTail = Lo & Rest, HiTail = Hi & Rest;
  if (!LoBit && !HiBit)
    return mk(Bit, rangeBdd(LoTail, HiTail, Bit + 1), falseBdd());
  if (LoBit && HiBit)
    return mk(Bit, falseBdd(), rangeBdd(LoTail, HiTail, Bit + 1));
  // Lo has bit 0, Hi has bit 1: the range spans the split point.
  BddRef LoBranch = rangeBdd(LoTail, Rest, Bit + 1);   // [LoTail, 111…1]
  BddRef HiBranch = rangeBdd(0, HiTail, Bit + 1);      // [000…0, HiTail]
  return mk(Bit, LoBranch, HiBranch);
}

BddRef BddManager::fromCharSet(const CharSet &Set) {
  BddRef Acc = falseBdd();
  for (const CharRange &R : Set.ranges())
    Acc = bddOr(Acc, rangeBdd(R.Lo, R.Hi, 0));
  return Acc;
}

void BddManager::collectIntervals(BddRef A, uint32_t Bit, uint32_t Prefix,
                                  std::vector<CharRange> &Out) const {
  if (A == falseBdd())
    return;
  uint32_t Width = NumBits - Bit;
  if (A == trueBdd()) {
    // All remaining bits free: one contiguous interval.
    uint32_t Lo = Prefix << Width;
    uint32_t Hi = Lo | ((Width == 0 ? 0 : ((1u << Width) - 1)));
    if (Lo > MaxCodePoint)
      return;
    Out.push_back({Lo, std::min(Hi, MaxCodePoint)});
    return;
  }
  const Node &N = node(A);
  if (N.Var == Bit) {
    collectIntervals(N.Lo, Bit + 1, Prefix << 1, Out);
    collectIntervals(N.Hi, Bit + 1, (Prefix << 1) | 1, Out);
  } else {
    // Skipped variable: both values possible.
    collectIntervals(A, Bit + 1, Prefix << 1, Out);
    collectIntervals(A, Bit + 1, (Prefix << 1) | 1, Out);
  }
}

CharSet BddManager::toCharSet(BddRef A) const {
  std::vector<CharRange> Ranges;
  collectIntervals(A, 0, 0, Ranges);
  return CharSet::fromRanges(std::move(Ranges));
}

bool BddManager::contains(BddRef A, uint32_t Cp) const {
  BddRef Cur = A;
  while (Cur != falseBdd() && Cur != trueBdd()) {
    const Node &N = node(Cur);
    bool BitSet = (Cp >> (NumBits - 1 - N.Var)) & 1;
    Cur = BitSet ? N.Hi : N.Lo;
  }
  return Cur == trueBdd();
}

uint64_t BddManager::satCount(BddRef A) {
  // Count assignments over all NumBits variables, scaled per level skip;
  // clamp to the domain by intersecting first.
  struct Counter {
    BddManager &Mgr;
    uint64_t run(BddRef X, uint32_t FromVar) {
      if (X == Mgr.falseBdd())
        return 0;
      uint32_t Var = X == Mgr.trueBdd() ? NumBits : Mgr.node(X).Var;
      uint64_t Skipped = 1ULL << (Var - FromVar);
      if (X == Mgr.trueBdd())
        return Skipped;
      uint64_t Key = (static_cast<uint64_t>(X.Id) << 8) | FromVar;
      auto It = Mgr.CountCache.find(Key);
      if (It != Mgr.CountCache.end())
        return It->second;
      const Node &N = Mgr.node(X);
      uint64_t Below = run(N.Lo, Var + 1) + run(N.Hi, Var + 1);
      uint64_t Result = Skipped * Below;
      Mgr.CountCache.emplace(Key, Result);
      return Result;
    }
  };
  Counter C{*this};
  return C.run(bddAnd(A, Domain), 0);
}
