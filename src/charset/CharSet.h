//===- charset/CharSet.h - Canonical interval sets over code points --------===//
///
/// \file
/// The concrete character predicate type of the alphabet theory (Section 3 of
/// the paper). A `CharSet` denotes a subset of the Unicode code-point domain
/// [0, 0x10FFFF] and is stored as a canonical, sorted, coalesced list of
/// closed intervals. Canonicity makes the algebra *extensional*: two
/// predicates are equivalent iff they are equal, so the satisfiability checks
/// the derivative engine performs (e.g. "is φ ∧ ψ ≡ ⊥?") are cheap structural
/// set operations rather than solver calls.
///
/// The tuple (domain, CharSet, denotation, empty(), full(), unionWith,
/// intersectWith, complement) forms the effective Boolean algebra A that the
/// whole library is parameterized by.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_CHARSET_CHARSET_H
#define SBD_CHARSET_CHARSET_H

#include "support/Unicode.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sbd {

/// A closed interval [Lo, Hi] of code points.
struct CharRange {
  uint32_t Lo;
  uint32_t Hi;

  friend bool operator==(const CharRange &A, const CharRange &B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
};

/// A set of Unicode code points in canonical interval form.
///
/// Invariants: intervals are sorted by Lo, pairwise disjoint, and
/// non-adjacent (Ranges[I].Hi + 1 < Ranges[I+1].Lo), and every Hi <=
/// MaxCodePoint. The empty set is the empty vector. Because of canonicity,
/// operator== decides semantic equivalence.
class CharSet {
public:
  /// The empty predicate ⊥ (denotes ∅).
  CharSet() = default;

  /// The full predicate ⊤ (denotes the whole domain).
  static CharSet full();

  /// The singleton {Cp}.
  static CharSet singleton(uint32_t Cp);

  /// The closed range [Lo, Hi]. \p Lo must be <= \p Hi.
  static CharSet range(uint32_t Lo, uint32_t Hi);

  /// Builds a set from arbitrary (possibly overlapping, unsorted) ranges.
  static CharSet fromRanges(std::vector<CharRange> Rs);

  /// --- Named classes used by the regex surface syntax -------------------

  /// ASCII digits 0-9 (the paper's \\d / φd).
  static CharSet digit();
  /// Word characters [0-9A-Za-z_] (the paper's \\w).
  static CharSet word();
  /// Whitespace [\\t\\n\\v\\f\\r ] (\\s).
  static CharSet space();
  /// ASCII letters [A-Za-z] (the "?" of Fig 1).
  static CharSet asciiLetter();

  /// --- Boolean algebra operations ----------------------------------------

  /// φ ∨ ψ.
  CharSet unionWith(const CharSet &Other) const;
  /// φ ∧ ψ.
  CharSet intersectWith(const CharSet &Other) const;
  /// ¬φ (relative to the full code-point domain).
  CharSet complement() const;
  /// φ ∧ ¬ψ.
  CharSet minus(const CharSet &Other) const;

  /// --- Queries -----------------------------------------------------------

  /// φ ≡ ⊥?
  bool isEmpty() const { return Ranges.empty(); }
  /// φ ≡ ⊤?
  bool isFull() const {
    return Ranges.size() == 1 && Ranges[0].Lo == 0 &&
           Ranges[0].Hi == MaxCodePoint;
  }
  /// a ∈ [[φ]]?
  bool contains(uint32_t Cp) const;
  /// [[φ]] ⊆ [[ψ]]?
  bool isSubsetOf(const CharSet &Other) const;
  /// [[φ]] ∩ [[ψ]] = ∅? (Faster than building the intersection.)
  bool isDisjointFrom(const CharSet &Other) const;
  /// Number of code points denoted (fits in uint64).
  uint64_t count() const;
  /// Smallest element; nullopt when empty.
  std::optional<uint32_t> minElement() const;
  /// A representative element, preferring printable ASCII for readable
  /// witness strings; nullopt when empty.
  std::optional<uint32_t> sample() const;

  /// Underlying canonical intervals (read-only).
  const std::vector<CharRange> &ranges() const { return Ranges; }

  /// Structural (= semantic) equality.
  friend bool operator==(const CharSet &A, const CharSet &B) {
    return A.Ranges == B.Ranges;
  }

  /// Total order for use in sorted containers (lexicographic on intervals).
  friend bool operator<(const CharSet &A, const CharSet &B);

  /// Stable structural hash.
  uint64_t hash() const;

  /// Renders the set using regex character-class syntax, e.g. `[0-9a-f]`,
  /// `.` for the full set, `[]` for the empty set.
  std::string str() const;

private:
  explicit CharSet(std::vector<CharRange> Canonical)
      : Ranges(std::move(Canonical)) {}

  std::vector<CharRange> Ranges;
};

/// Total order on sets (lexicographic on canonical intervals); declared at
/// namespace scope so out-of-class definitions match a prior declaration.
bool operator<(const CharSet &A, const CharSet &B);

/// Computes Minterms(S) (Section 3): the coarsest partition of the domain
/// induced by the predicate set \p Sets. Each returned CharSet is nonempty,
/// they are pairwise disjoint, and their union is the full domain. For each
/// input predicate φ and each minterm α, either [[α]] ⊆ [[φ]] or
/// [[α]] ∩ [[φ]] = ∅. The result size is at most 2^|Sets| but typically
/// linear in the number of interval boundaries.
std::vector<CharSet> computeMinterms(const std::vector<CharSet> &Sets);

} // namespace sbd

#endif // SBD_CHARSET_CHARSET_H
