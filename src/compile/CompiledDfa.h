//===- compile/CompiledDfa.h - Frozen state-major DFA tables ----------------===//
// sbd-lint: hot-path
///
/// \file
/// The compiled serving path: freezes the *complete* derivative state space
/// of one pattern into a contiguous state-major transition table over
/// `AlphabetCompressor` class ids, then scans input with a block-based
/// kernel instead of the lazy `CachedMatcher` step loop.
///
/// Soundness is the same derivative-closure argument the lazy matcher
/// rests on (DESIGN.md §12): every guard reachable by repeated δ from the
/// pattern is a Boolean combination of the pattern's own predicates ΨR, so
/// the minterms of ΨR are uniform for every guard the closure can produce
/// and one probe of a class representative decides the whole class. The
/// compile step simply runs that probe loop to a fixpoint (or gives up at
/// the cap — compilation is best-effort, callers fall back to the lazy
/// path), then minimizes the closure by Moore partition refinement —
/// derivative interning is syntactic, so the closure routinely carries
/// several states per residual language — and packs the minimal DFA. The
/// resulting table is immutable: no eviction, no epoch checks, no
/// re-expansion.
///
/// Table encoding (the RE2/SRM "premultiplied" trick): one row of
/// `1 << StrideLog2` entries per state, entry =
///
///   (targetStateId << StrideLog2) | acceptBit(target)
///
/// so the inner loop is `S = Table[(S & ~1) + classOf(cp)]` — the entry
/// *is* the next row's base offset, no multiply, and ν(state) rides along
/// in bit 0 (stride is always >= 2, so the bit is free). State 0 is the
/// dead sink (row of zeroes, offset 0), which makes `S < stride` the dead
/// test. Entries are uint16_t when the offsets fit and uint32_t otherwise.
///
/// The scanning kernel processes UTF-8 in blocks: at each block boundary
/// it short-circuits on the dead sink and engages a memchr-style prefilter
/// when the current state self-loops on all but at most two ASCII bytes
/// (the "required bytes" induced by the pattern's minterms — e.g. every
/// `.*lit…` state skims for `l`). The inner loops: a portable scalar
/// table walk, an SSE2/NEON skimmer for the prefilter, and — for tables
/// with at most 16 states — a Sheng-style SIMD kernel that keeps the
/// state in a vector lane and steps it with one PSHUFB/TBL per byte.
/// Tables with 17–32 states use the wide variant: two PSHUFBs over the
/// split transition vector, fused by bias-and-OR (one TBL2 on NEON),
/// which beats the scalar walk because the serial dependency per byte is
/// a few 1-cycle vector ops instead of an L1 load. Kernel choice is
/// made per-process (`__builtin_cpu_supports`) and can be pinned to
/// scalar with `-DSBD_COMPILE_SIMD=OFF` (the CI matrix builds both).
///
//===----------------------------------------------------------------------===//

#ifndef SBD_COMPILE_COMPILEDDFA_H
#define SBD_COMPILE_COMPILEDDFA_H

#include "charset/AlphabetCompressor.h"
#include "core/Derivatives.h"

#include <optional>
#include <string>
#include <vector>

namespace sbd {

/// Budgets for one compile attempt. Compilation is all-or-nothing: if the
/// closure or the table would exceed a budget, compile() declines and the
/// caller stays on the lazy path.
struct CompiledDfaOptions {
  /// Cap on derivative states in the frozen closure (incl. the dead sink).
  size_t MaxStates = 4096;
  /// Cap on the packed transition table, in bytes.
  size_t MaxTableBytes = 1 << 20;
  /// Allow the Sheng-style SIMD kernels when the table is eligible
  /// (<= 16 states single-shuffle, <= 32 states split-shuffle; 16-bit
  /// entries). Scalar table walk otherwise.
  bool EnableSimd = true;
  /// Engage the self-loop skimmer at block boundaries.
  bool EnablePrefilter = true;
};

/// An immutable, fully-explored DFA for one pattern. Construction is
/// `compile()`; a returned instance answers `matches` without ever touching
/// the derivative engine again (the engine reference is not retained).
class CompiledDfa {
public:
  /// Runs the derivative closure of \p Pattern over its minterm classes to
  /// a fixpoint and packs it. Returns nullopt when a budget is exceeded —
  /// never a partial table.
  static std::optional<CompiledDfa>
  compile(DerivativeEngine &Eng, Re Pattern, CompiledDfaOptions Opts = {});

  /// Does the pattern accept the UTF-8 string? ASCII bytes feed the packed
  /// table directly; other bytes decode first (same semantics as
  /// CachedMatcher::matches).
  bool matches(const std::string &Utf8) const;
  /// Does the pattern accept the code-point word?
  bool matches(const std::vector<uint32_t> &Word) const;

  /// States in the frozen closure, incl. the dead sink at id 0.
  uint32_t numStates() const { return static_cast<uint32_t>(StateRe.size()); }
  /// Minterm classes of the pattern's predicate set.
  uint32_t numClasses() const { return NumClasses; }
  /// Packed table footprint in bytes.
  size_t tableBytes() const {
    return Use16 ? Tab16.size() * sizeof(uint16_t)
                 : Tab32.size() * sizeof(uint32_t);
  }
  /// True when entries are uint32_t (offsets overflowed 16 bits).
  bool wideEntries() const { return !Use16; }
  /// True when the single-shuffle Sheng kernel is armed for this table
  /// (<= 16 states; the scalar walk still serves hosts without SSSE3).
  bool shengEligible() const { return Sheng; }
  /// True when the split-shuffle wide Sheng kernel is armed (17–32
  /// states; needs SSSE3 / NEON TBL2 at run time).
  bool shengWideEligible() const { return ShengWide; }
  /// The representative derivative of the (minimized) state \p Id — the
  /// first-discovered member of its Nerode class (id 0 is ⊥).
  Re stateRegex(uint32_t Id) const { return StateRe[Id]; }
  /// The minterm partition the table is indexed by.
  const AlphabetCompressor &compressor() const { return Compressor; }

  /// Cross-checks the packed table against a fresh δdnf closure. Because
  /// the table is minimized, entries are checked at the language level: a
  /// pair traversal walks the independent derivative closure and the table
  /// in lockstep and counts every reachable pair whose accept bits
  /// disagree, plus packed/side-table self-consistency violations (accept
  /// bit vs target, Sheng vectors, prefilter escapes). Returns the number
  /// of mismatches; zero on a healthy table. Mirrors
  /// CachedMatcher::auditRows; the compile-time hook that publishes
  /// violations is gated behind SBD_AUDIT.
  size_t auditTable(DerivativeEngine &Eng) const;

  /// Test backdoor: repoint one packed entry at \p RawTarget (a state id;
  /// the accept bit is re-derived from it), to prove auditTable() detects
  /// corruption.
  void corruptEntryForTest(uint32_t State, uint16_t Cls, uint32_t RawTarget);

private:
  CompiledDfa(const AlphabetCompressor &C) : Compressor(C) {}

  /// Per-state prefilter: when a state self-loops on all but at most two
  /// ASCII bytes, those escape bytes are the only ASCII way forward and the
  /// skimmer can race to the first occurrence. NumEscapes == Disabled means
  /// the state is not skimmable; 0x80 is an out-of-range sentinel byte (the
  /// skimmer stops at any non-ASCII byte regardless).
  struct SkipInfo {
    static constexpr uint8_t Disabled = 0xFF;
    uint8_t NumEscapes = Disabled;
    uint8_t Escape[2] = {0x80, 0x80};
    bool enabled() const { return NumEscapes != Disabled; }
  };

  template <typename EntryT> bool scanUtf8(const std::string &In) const;
  template <typename EntryT>
  bool scanWord(const std::vector<uint32_t> &Word) const;
  /// Skims self-loop bytes from In[I..): returns the index of the first
  /// escape byte / non-ASCII byte / end.
  size_t skim(const std::string &In, size_t I, const SkipInfo &K) const;
#if defined(__x86_64__)
  bool scanSheng(const std::string &In) const;
  /// Shared wide-kernel body, always-inlined into the two ISA-specific
  /// entry points below (the AVX one exists purely for the VEX encoding:
  /// three-operand forms drop the per-byte register copies SSE needs).
  bool sheng32Body(const std::string &In) const;
  bool scanSheng32(const std::string &In) const;
  bool scanSheng32Avx(const std::string &In) const;
#endif
#if defined(__aarch64__)
  bool scanShengNeon(const std::string &In) const;
  bool scanSheng32Neon(const std::string &In) const;
#endif
  void buildSideTables(const std::vector<uint32_t> &Targets);
  uint32_t targetOf(uint32_t State, uint16_t Cls) const {
    size_t Idx = (static_cast<size_t>(State) << StrideLog2) + Cls;
    return Use16 ? static_cast<uint32_t>(Tab16[Idx]) >> StrideLog2
                 : Tab32[Idx] >> StrideLog2;
  }

  AlphabetCompressor Compressor;
  uint32_t NumClasses = 1;
  uint32_t StrideLog2 = 1;
  /// Packed entry of the initial state ((id << StrideLog2) | accept).
  uint32_t Start = 0;
  bool Use16 = true;
  bool Sheng = false;
  bool ShengWide = false;
  bool Prefilter = true;
  std::vector<uint16_t> Tab16;
  std::vector<uint32_t> Tab32;
  /// id -> derivative regex (audit + introspection; not read while scanning).
  std::vector<Re> StateRe;
  std::vector<uint8_t> AcceptById;
  std::vector<SkipInfo> Skips;
  /// Sheng transition vectors: ShengTbl[b * R + s] = target id of state s
  /// on ASCII byte b, where the row width R is 16 (single-shuffle, 2 KiB)
  /// or 32 (wide split-shuffle, 4 KiB) — either way resident in L1.
  std::vector<uint8_t> ShengTbl;
};

} // namespace sbd

#endif // SBD_COMPILE_COMPILEDDFA_H
