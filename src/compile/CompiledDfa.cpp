//===- compile/CompiledDfa.cpp - Frozen state-major DFA tables --------------===//
// sbd-lint: hot-path

#include "compile/CompiledDfa.h"

#include "analysis/AuditHooks.h"
#include "support/InternTable.h"
#include "support/Metrics.h"
#include "support/Unicode.h"

#include <algorithm>
#include <map>

#ifndef SBD_COMPILE_SIMD
#define SBD_COMPILE_SIMD 1
#endif

#if SBD_COMPILE_SIMD && defined(__x86_64__)
#include <immintrin.h>
#endif
#if SBD_COMPILE_SIMD && defined(__aarch64__)
#include <arm_neon.h>
#endif

using namespace sbd;

namespace {

/// Block granularity of the scanning kernels: dead short-circuit and
/// prefilter re-engagement happen once per block, not per character.
constexpr size_t BlockChars = 64;

#if SBD_COMPILE_SIMD && defined(__x86_64__)
bool haveSsse3() {
  static const bool H = (__builtin_cpu_init(), __builtin_cpu_supports("ssse3"));
  return H;
}
bool haveAvx2() {
  static const bool H = (__builtin_cpu_init(), __builtin_cpu_supports("avx2"));
  return H;
}
#endif

} // namespace

//===----------------------------------------------------------------------===//
// Compilation: derivative closure over minterm classes, then packing
//===----------------------------------------------------------------------===//

std::optional<CompiledDfa> CompiledDfa::compile(DerivativeEngine &Eng,
                                                Re Pattern,
                                                CompiledDfaOptions Opts) {
  RegexManager &M = Eng.regexManager();
  TrManager &T = Eng.trManager();
  CompiledDfa D(AlphabetCompressor(M.collectPredicates(Pattern)));
  const uint32_t NC = D.Compressor.numClasses();
  D.NumClasses = NC;
  uint32_t L = 1; // stride >= max(NC, 2): bit 0 of every row offset is free
  while ((1u << L) < NC)
    ++L;
  D.StrideLog2 = L;
  D.Prefilter = Opts.EnablePrefilter;
  const size_t MaxStates = std::max<size_t>(Opts.MaxStates, 2);

  // Worklist closure in discovery order. Unlike the lazy cache this runs to
  // a fixpoint: every reachable derivative gets an id and a full row, so
  // the frozen table never needs the engine again. One probe of the class
  // representative decides the whole class (derivative-closure property:
  // reachable guards are Boolean combinations of ΨR, for which the
  // compressor's minterms are uniform by construction).
  FlatMap64 Index;
  D.StateRe.push_back(M.empty()); // id 0: the dead sink
  Index.insert(M.empty().Id, 0);
  auto Intern = [&](Re R) {
    if (const uint32_t *Hit = Index.find(R.Id))
      return *Hit;
    uint32_t Id = static_cast<uint32_t>(D.StateRe.size());
    D.StateRe.push_back(R);
    Index.insert(R.Id, Id);
    return Id;
  };
  uint32_t StartId = Intern(Pattern);
  std::vector<uint32_t> Targets(NC, 0); // raw ids: Targets[S * NC + Cls]
  for (uint32_t S = 1; S < D.StateRe.size(); ++S) {
    Re R = D.StateRe[S];
    std::vector<TrArc> Arcs = T.arcs(Eng.derivativeDnf(R));
    Targets.resize(static_cast<size_t>(S + 1) * NC, 0);
    for (uint32_t Cls = 0; Cls != NC; ++Cls) {
      uint32_t Rep = D.Compressor.representative(static_cast<uint16_t>(Cls));
      std::vector<Re> Parts;
      for (const TrArc &A : Arcs)
        if (A.Guard.contains(Rep))
          Parts.push_back(A.Target);
      Re Tgt = Parts.empty() ? M.empty() : M.unionList(std::move(Parts));
      Targets[static_cast<size_t>(S) * NC + Cls] =
          Tgt == M.empty() ? 0 : Intern(Tgt);
      if (D.StateRe.size() > MaxStates)
        return std::nullopt; // closure overflow: stay on the lazy path
    }
  }

  uint32_t NS = static_cast<uint32_t>(D.StateRe.size());
  D.AcceptById.resize(NS);
  for (uint32_t S = 0; S != NS; ++S)
    D.AcceptById[S] = M.nullable(D.StateRe[S]);

  // Moore partition refinement: merge Nerode-equivalent states before
  // packing. Derivative interning is syntactic (weak normal form), so the
  // closure routinely carries several states per residual language; the
  // minimal table is smaller, hotter in cache, and far more often inside
  // the Sheng kernels' 16/32-state budgets. Refinement starts from the
  // accept split and re-signs every state by (own class, target classes)
  // until stable. State 0 keeps id 0: it is signed first each round, and
  // any language-empty state folds into its class.
  if (NS > 2) {
    std::vector<uint32_t> Part(NS);
    for (uint32_t S = 0; S != NS; ++S)
      Part[S] = D.AcceptById[S];
    uint32_t NumParts = 0;
    for (;;) {
      std::map<std::vector<uint32_t>, uint32_t> Sig;
      std::vector<uint32_t> Next(NS);
      for (uint32_t S = 0; S != NS; ++S) {
        std::vector<uint32_t> Key;
        Key.reserve(NC + 1);
        Key.push_back(Part[S]);
        for (uint32_t Cls = 0; Cls != NC; ++Cls)
          Key.push_back(Part[Targets[static_cast<size_t>(S) * NC + Cls]]);
        Next[S] =
            Sig.emplace(std::move(Key), static_cast<uint32_t>(Sig.size()))
                .first->second;
      }
      uint32_t NewCount = static_cast<uint32_t>(Sig.size());
      Part = std::move(Next);
      if (NewCount == NumParts)
        break; // no class split this round: the partition is the fixpoint
      NumParts = NewCount;
    }
    if (NumParts < NS) {
      std::vector<Re> NewRe(NumParts, M.empty());
      std::vector<uint8_t> NewAcc(NumParts, 0);
      std::vector<uint32_t> NewTargets(static_cast<size_t>(NumParts) * NC, 0);
      std::vector<uint8_t> Seen(NumParts, 0);
      for (uint32_t S = 0; S != NS; ++S) {
        uint32_t P = Part[S];
        if (Seen[P])
          continue; // representative: lowest original id in the class
        Seen[P] = 1;
        NewRe[P] = D.StateRe[S];
        NewAcc[P] = D.AcceptById[S];
        for (uint32_t Cls = 0; Cls != NC; ++Cls)
          NewTargets[static_cast<size_t>(P) * NC + Cls] =
              Part[Targets[static_cast<size_t>(S) * NC + Cls]];
      }
      StartId = Part[StartId];
      D.StateRe = std::move(NewRe);
      D.AcceptById = std::move(NewAcc);
      Targets = std::move(NewTargets);
      NS = NumParts;
    }
  }

  // Pack: entry = (target << StrideLog2) | accept(target). 16-bit entries
  // unless the largest offset overflows them.
  const uint64_t MaxEntry = (static_cast<uint64_t>(NS - 1) << L) | 1u;
  D.Use16 = MaxEntry <= 0xFFFFu;
  const size_t Stride = static_cast<size_t>(1) << L;
  const size_t Len = static_cast<size_t>(NS) * Stride;
  if (Len * (D.Use16 ? sizeof(uint16_t) : sizeof(uint32_t)) >
      Opts.MaxTableBytes)
    return std::nullopt; // table overflow: stay on the lazy path
  if (D.Use16)
    D.Tab16.assign(Len, 0);
  else
    D.Tab32.assign(Len, 0);
  for (uint32_t S = 0; S != NS; ++S)
    for (uint32_t Cls = 0; Cls != NC; ++Cls) {
      uint32_t Tgt = Targets[static_cast<size_t>(S) * NC + Cls];
      uint32_t Entry = (Tgt << L) | D.AcceptById[Tgt];
      size_t Idx = (static_cast<size_t>(S) << L) + Cls;
      if (D.Use16)
        D.Tab16[Idx] = static_cast<uint16_t>(Entry);
      else
        D.Tab32[Idx] = Entry;
    }
  D.Start = (StartId << L) | D.AcceptById[StartId];
  D.Sheng = D.Use16 && NS <= 16 && Opts.EnableSimd;
  D.ShengWide = D.Use16 && NS > 16 && NS <= 32 && Opts.EnableSimd;
  D.buildSideTables(Targets);

#if SBD_AUDIT
  // Compile-time hook (mirrors the lazy cache's per-expansion row audit):
  // cross-check every packed entry against a fresh δdnf row before the
  // table is allowed to serve.
  {
    size_t Bad = D.auditTable(Eng);
    audit::Report Out;
    Out.noteChecked(static_cast<uint64_t>(NS) * NC);
    for (size_t I = 0; I != Bad; ++I)
      Out.add(audit::ViolationKind::CompiledTableMismatch, Pattern.Id,
              "packed table entry disagrees with fresh δdnf row");
    audit::publish(Out, "compiled table");
  }
#endif
  return D;
}

void CompiledDfa::buildSideTables(const std::vector<uint32_t> &Targets) {
  const uint32_t NS = numStates();
  Skips.assign(NS, SkipInfo{});
  if (Prefilter) {
    // A state that self-loops on all but <= 2 ASCII bytes can skim: those
    // escape bytes are the only ASCII characters that change the state, so
    // a memchr-style race to the first occurrence is sound (skipped bytes
    // provably leave both the state and its accept bit untouched).
    for (uint32_t S = 0; S != NS; ++S) {
      SkipInfo K;
      K.NumEscapes = 0;
      bool Skimmable = true;
      for (uint32_t B = 0; B != 128; ++B) {
        uint32_t Tgt = Targets[static_cast<size_t>(S) * NumClasses +
                               Compressor.classOf(B)];
        if (Tgt == S)
          continue;
        if (K.NumEscapes == 2) {
          Skimmable = false;
          break;
        }
        K.Escape[K.NumEscapes++] = static_cast<uint8_t>(B);
      }
      if (!Skimmable)
        continue;
      if (K.NumEscapes == 0) // absorbs all ASCII: only non-ASCII stops it
        K.Escape[0] = K.Escape[1] = 0x80;
      else if (K.NumEscapes == 1)
        K.Escape[1] = K.Escape[0];
      Skips[S] = K;
    }
  }
  if (Sheng || ShengWide) {
    // One transition vector per ASCII byte: lane s holds the target id of
    // state s, so PSHUFB/TBL with the current id in lane 0 is one step.
    // Wide tables split each vector into a low half (states 0–15) and a
    // high half (16–31) shuffled separately and blended on id > 15.
    const size_t Row = Sheng ? 16 : 32;
    ShengTbl.assign(128 * Row, 0);
    for (uint32_t B = 0; B != 128; ++B) {
      uint16_t Cls = Compressor.classOf(B);
      for (uint32_t S = 0; S != NS; ++S)
        ShengTbl[static_cast<size_t>(B) * Row + S] = static_cast<uint8_t>(
            Targets[static_cast<size_t>(S) * NumClasses + Cls]);
    }
  }
}

//===----------------------------------------------------------------------===//
// Scanning kernels
//===----------------------------------------------------------------------===//

size_t CompiledDfa::skim(const std::string &In, size_t I,
                         const SkipInfo &K) const {
  const uint8_t E0 = K.Escape[0], E1 = K.Escape[1];
  const size_t N = In.size();
#if SBD_COMPILE_SIMD && defined(__SSE2__)
  const __m128i V0 = _mm_set1_epi8(static_cast<char>(E0));
  const __m128i V1 = _mm_set1_epi8(static_cast<char>(E1));
  while (I + 16 <= N) {
    __m128i Chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(In.data() + I));
    // Stop lanes: either escape byte, or any non-ASCII byte (high bit via
    // movemask on the chunk itself).
    unsigned Stop = static_cast<unsigned>(_mm_movemask_epi8(_mm_or_si128(
                        _mm_cmpeq_epi8(Chunk, V0),
                        _mm_cmpeq_epi8(Chunk, V1)))) |
                    static_cast<unsigned>(_mm_movemask_epi8(Chunk));
    if (Stop)
      return I + static_cast<size_t>(__builtin_ctz(Stop));
    I += 16;
  }
#elif SBD_COMPILE_SIMD && defined(__aarch64__)
  const uint8x16_t V0 = vdupq_n_u8(E0), V1 = vdupq_n_u8(E1);
  const uint8x16_t Ascii = vdupq_n_u8(0x7F);
  while (I + 16 <= N) {
    uint8x16_t Chunk =
        vld1q_u8(reinterpret_cast<const uint8_t *>(In.data() + I));
    uint8x16_t Stop = vorrq_u8(
        vorrq_u8(vceqq_u8(Chunk, V0), vceqq_u8(Chunk, V1)),
        vcgtq_u8(Chunk, Ascii));
    if (vmaxvq_u8(Stop))
      break; // scalar loop below pinpoints the byte within this chunk
    I += 16;
  }
#endif
  while (I < N) {
    uint8_t B = static_cast<uint8_t>(In[I]);
    if (B >= 0x80 || B == E0 || B == E1)
      break;
    ++I;
  }
  return I;
}

template <typename EntryT>
bool CompiledDfa::scanUtf8(const std::string &In) const {
  const EntryT *Tab;
  if constexpr (sizeof(EntryT) == sizeof(uint16_t))
    Tab = Tab16.data();
  else
    Tab = Tab32.data();
  const size_t N = In.size();
  uint32_t S = Start;
  size_t I = 0;
  uint64_t Skipped = 0;
  while (I < N) {
    if ((S >> StrideLog2) == 0)
      break; // dead sink: no suffix can revive the match
    if (Prefilter) {
      const SkipInfo &K = Skips[S >> StrideLog2];
      if (K.enabled()) {
        size_t J = skim(In, I, K);
        Skipped += J - I;
        I = J;
      }
    }
    const size_t End = std::min(N, I + BlockChars);
    while (I < End) {
      uint32_t Cp = static_cast<uint8_t>(In[I]);
      if (Cp < 0x80)
        ++I; // ASCII fast path: byte == code point
      else
        Cp = decodeUtf8At(In, I);
      // The entry *is* the next row's base offset (premultiplied), with
      // the target's accept flag riding in the free bit 0.
      S = Tab[(S & ~1u) + Compressor.classOf(Cp)];
    }
  }
  SBD_OBS_ADD(CompiledCharsScanned, I - Skipped);
  SBD_OBS_ADD(CompiledPrefilterSkips, Skipped);
  return (S & 1u) != 0;
}

template <typename EntryT>
bool CompiledDfa::scanWord(const std::vector<uint32_t> &Word) const {
  const EntryT *Tab;
  if constexpr (sizeof(EntryT) == sizeof(uint16_t))
    Tab = Tab16.data();
  else
    Tab = Tab32.data();
  uint32_t S = Start;
  size_t Fed = 0;
  for (uint32_t Cp : Word) {
    if ((S >> StrideLog2) == 0)
      break;
    S = Tab[(S & ~1u) + Compressor.classOf(Cp)];
    ++Fed;
  }
  SBD_OBS_ADD(CompiledCharsScanned, Fed);
  return (S & 1u) != 0;
}

#if SBD_COMPILE_SIMD && defined(__x86_64__)
/// Sheng kernel: for tables with <= 16 states the whole transition function
/// fits one shuffle vector per byte, so the state lives in an XMM lane and
/// each ASCII character costs a single PSHUFB (plus the byte load). Blocks
/// are pre-screened with an SSE2 movemask; any non-ASCII byte drops the
/// block to the scalar decode path.
__attribute__((target("ssse3"))) bool
CompiledDfa::scanSheng(const std::string &In) const {
  const uint8_t *Vecs = ShengTbl.data();
  const uint16_t *Tab = Tab16.data();
  const size_t N = In.size();
  uint32_t Id = Start >> StrideLog2;
  size_t I = 0;
  uint64_t Skipped = 0;
  while (I < N) {
    if (Id == 0)
      break;
    if (Prefilter) {
      const SkipInfo &K = Skips[Id];
      if (K.enabled()) {
        size_t J = skim(In, I, K);
        Skipped += J - I;
        I = J;
      }
    }
    const size_t End = std::min(N, I + BlockChars);
    __m128i Cur = _mm_cvtsi32_si128(static_cast<int>(Id));
    while (I + 16 <= End) {
      __m128i Chunk =
          _mm_loadu_si128(reinterpret_cast<const __m128i *>(In.data() + I));
      if (_mm_movemask_epi8(Chunk))
        break; // non-ASCII byte in this chunk: finish it on the scalar path
      const uint8_t *P = reinterpret_cast<const uint8_t *>(In.data()) + I;
      for (size_t J = 0; J != 16; ++J)
        Cur = _mm_shuffle_epi8(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                Vecs + static_cast<size_t>(P[J]) * 16)),
            Cur);
      I += 16;
    }
    Id = static_cast<uint32_t>(_mm_cvtsi128_si32(Cur)) & 0xFFu;
    while (I < End && Id != 0) { // block tail / non-ASCII: scalar steps
      uint32_t Cp = static_cast<uint8_t>(In[I]);
      if (Cp < 0x80)
        ++I;
      else
        Cp = decodeUtf8At(In, I);
      Id = static_cast<uint32_t>(
               Tab[(static_cast<size_t>(Id) << StrideLog2) +
                   Compressor.classOf(Cp)]) >>
           StrideLog2;
    }
  }
  SBD_OBS_ADD(CompiledCharsScanned, I - Skipped);
  SBD_OBS_ADD(CompiledPrefilterSkips, Skipped);
  return AcceptById[Id] != 0;
}

/// Wide Sheng kernel (17–32 states): each 32-lane transition vector is
/// split into a low and a high 16-lane half, both shuffled by a biased
/// copy of the current id. PSHUFB zeroes any lane whose control byte has
/// bit 7 set, so `id + 0x70` selects from the low half exactly when
/// id <= 15 (and zeroes otherwise) while `id - 16` selects from the high
/// half exactly when id >= 16 — OR-ing the two shuffles is the step. No
/// blend, so plain SSSE3 suffices and the serial dependency per byte is
/// add/sub + shuffle + or, still well under the scalar walk's L1-load
/// chain.
__attribute__((always_inline, target("ssse3"))) inline bool
CompiledDfa::sheng32Body(const std::string &In) const {
  const uint8_t *Vecs = ShengTbl.data();
  const uint16_t *Tab = Tab16.data();
  const size_t N = In.size();
  const __m128i LoBias = _mm_set1_epi8(0x70);
  const __m128i Sixteen = _mm_set1_epi8(16);
  uint32_t Id = Start >> StrideLog2;
  size_t I = 0;
  uint64_t Skipped = 0;
  while (I < N) {
    if (Id == 0)
      break;
    if (Prefilter) {
      const SkipInfo &K = Skips[Id];
      if (K.enabled()) {
        size_t J = skim(In, I, K);
        Skipped += J - I;
        I = J;
      }
    }
    const size_t End = std::min(N, I + BlockChars);
    __m128i Cur = _mm_cvtsi32_si128(static_cast<int>(Id));
    while (I + 16 <= End) {
      __m128i Chunk =
          _mm_loadu_si128(reinterpret_cast<const __m128i *>(In.data() + I));
      if (_mm_movemask_epi8(Chunk))
        break; // non-ASCII byte in this chunk: finish it on the scalar path
      const uint8_t *P = reinterpret_cast<const uint8_t *>(In.data()) + I;
      for (size_t J = 0; J != 16; ++J) {
        const __m128i *Row =
            reinterpret_cast<const __m128i *>(Vecs + size_t{P[J]} * 32);
        __m128i Lo = _mm_shuffle_epi8(_mm_loadu_si128(Row),
                                      _mm_add_epi8(Cur, LoBias));
        __m128i Hi = _mm_shuffle_epi8(_mm_loadu_si128(Row + 1),
                                      _mm_sub_epi8(Cur, Sixteen));
        Cur = _mm_or_si128(Lo, Hi);
      }
      I += 16;
    }
    Id = static_cast<uint32_t>(_mm_cvtsi128_si32(Cur)) & 0xFFu;
    while (I < End && Id != 0) { // block tail / non-ASCII: scalar steps
      uint32_t Cp = static_cast<uint8_t>(In[I]);
      if (Cp < 0x80)
        ++I;
      else
        Cp = decodeUtf8At(In, I);
      Id = static_cast<uint32_t>(
               Tab[(static_cast<size_t>(Id) << StrideLog2) +
                   Compressor.classOf(Cp)]) >>
           StrideLog2;
    }
  }
  SBD_OBS_ADD(CompiledCharsScanned, I - Skipped);
  SBD_OBS_ADD(CompiledPrefilterSkips, Skipped);
  return AcceptById[Id] != 0;
}

__attribute__((target("ssse3"))) bool
CompiledDfa::scanSheng32(const std::string &In) const {
  return sheng32Body(In);
}

__attribute__((target("avx2"))) bool
CompiledDfa::scanSheng32Avx(const std::string &In) const {
  return sheng32Body(In);
}
#endif

#if SBD_COMPILE_SIMD && defined(__aarch64__)
/// NEON twin of scanSheng: TBL instead of PSHUFB, vmaxvq instead of
/// movemask.
bool CompiledDfa::scanShengNeon(const std::string &In) const {
  const uint8_t *Vecs = ShengTbl.data();
  const uint16_t *Tab = Tab16.data();
  const size_t N = In.size();
  uint32_t Id = Start >> StrideLog2;
  size_t I = 0;
  uint64_t Skipped = 0;
  while (I < N) {
    if (Id == 0)
      break;
    if (Prefilter) {
      const SkipInfo &K = Skips[Id];
      if (K.enabled()) {
        size_t J = skim(In, I, K);
        Skipped += J - I;
        I = J;
      }
    }
    const size_t End = std::min(N, I + BlockChars);
    uint8x16_t Cur = vdupq_n_u8(static_cast<uint8_t>(Id));
    while (I + 16 <= End) {
      uint8x16_t Chunk =
          vld1q_u8(reinterpret_cast<const uint8_t *>(In.data() + I));
      if (vmaxvq_u8(Chunk) >= 0x80)
        break;
      const uint8_t *P = reinterpret_cast<const uint8_t *>(In.data()) + I;
      for (size_t J = 0; J != 16; ++J)
        Cur = vqtbl1q_u8(vld1q_u8(Vecs + static_cast<size_t>(P[J]) * 16),
                         Cur);
      I += 16;
    }
    Id = vgetq_lane_u8(Cur, 0);
    while (I < End && Id != 0) {
      uint32_t Cp = static_cast<uint8_t>(In[I]);
      if (Cp < 0x80)
        ++I;
      else
        Cp = decodeUtf8At(In, I);
      Id = static_cast<uint32_t>(
               Tab[(static_cast<size_t>(Id) << StrideLog2) +
                   Compressor.classOf(Cp)]) >>
           StrideLog2;
    }
  }
  SBD_OBS_ADD(CompiledCharsScanned, I - Skipped);
  SBD_OBS_ADD(CompiledPrefilterSkips, Skipped);
  return AcceptById[Id] != 0;
}

/// NEON twin of scanSheng32 — TBL2 consumes the whole 32-lane transition
/// vector in one instruction, no split/blend needed.
bool CompiledDfa::scanSheng32Neon(const std::string &In) const {
  const uint8_t *Vecs = ShengTbl.data();
  const uint16_t *Tab = Tab16.data();
  const size_t N = In.size();
  uint32_t Id = Start >> StrideLog2;
  size_t I = 0;
  uint64_t Skipped = 0;
  while (I < N) {
    if (Id == 0)
      break;
    if (Prefilter) {
      const SkipInfo &K = Skips[Id];
      if (K.enabled()) {
        size_t J = skim(In, I, K);
        Skipped += J - I;
        I = J;
      }
    }
    const size_t End = std::min(N, I + BlockChars);
    uint8x16_t Cur = vdupq_n_u8(static_cast<uint8_t>(Id));
    while (I + 16 <= End) {
      uint8x16_t Chunk =
          vld1q_u8(reinterpret_cast<const uint8_t *>(In.data() + I));
      if (vmaxvq_u8(Chunk) >= 0x80)
        break;
      const uint8_t *P = reinterpret_cast<const uint8_t *>(In.data()) + I;
      for (size_t J = 0; J != 16; ++J) {
        uint8x16x2_t Row = vld1q_u8_x2(Vecs + size_t{P[J]} * 32);
        Cur = vqtbl2q_u8(Row, Cur);
      }
      I += 16;
    }
    Id = vgetq_lane_u8(Cur, 0);
    while (I < End && Id != 0) {
      uint32_t Cp = static_cast<uint8_t>(In[I]);
      if (Cp < 0x80)
        ++I;
      else
        Cp = decodeUtf8At(In, I);
      Id = static_cast<uint32_t>(
               Tab[(static_cast<size_t>(Id) << StrideLog2) +
                   Compressor.classOf(Cp)]) >>
           StrideLog2;
    }
  }
  SBD_OBS_ADD(CompiledCharsScanned, I - Skipped);
  SBD_OBS_ADD(CompiledPrefilterSkips, Skipped);
  return AcceptById[Id] != 0;
}
#endif

bool CompiledDfa::matches(const std::string &Utf8) const {
#if SBD_COMPILE_SIMD && defined(__x86_64__)
  if (Sheng && haveSsse3())
    return scanSheng(Utf8);
  if (ShengWide) {
    if (haveAvx2()) // same body, VEX-encoded: no per-byte register copies
      return scanSheng32Avx(Utf8);
    if (haveSsse3())
      return scanSheng32(Utf8);
  }
#elif SBD_COMPILE_SIMD && defined(__aarch64__)
  if (Sheng)
    return scanShengNeon(Utf8);
  if (ShengWide)
    return scanSheng32Neon(Utf8);
#endif
  return Use16 ? scanUtf8<uint16_t>(Utf8) : scanUtf8<uint32_t>(Utf8);
}

bool CompiledDfa::matches(const std::vector<uint32_t> &Word) const {
  return Use16 ? scanWord<uint16_t>(Word) : scanWord<uint32_t>(Word);
}

//===----------------------------------------------------------------------===//
// Audit: packed entries vs fresh derivative rows
//===----------------------------------------------------------------------===//

size_t CompiledDfa::auditTable(DerivativeEngine &Eng) const {
  RegexManager &M = Eng.regexManager();
  TrManager &T = Eng.trManager();
  const uint32_t NS = numStates();
  size_t Bad = 0;

  // Language-level cross-check (mirrors CachedMatcher::auditRow, adapted
  // to the minimized table): packed states are Nerode classes, so a fresh
  // derivative need not be *identical* to the representative regex it
  // lands on — only language-equal. Pairing the independent δdnf closure
  // with a table walk and requiring the accept bits to agree on every
  // reachable (derivative, state) pair checks exactly that: a corrupted
  // entry reroutes some word to a state with a different residual
  // language, and the first differing suffix surfaces as an accept
  // mismatch. The pair space is finite (fresh closure × packed states).
  FlatMap64 SeenPairs;
  std::vector<std::pair<Re, uint32_t>> Work;
  auto Push = [&](Re R, uint32_t Id) {
    uint64_t Key = (static_cast<uint64_t>(R.Id) << 32) | Id;
    if (!SeenPairs.find(Key)) {
      SeenPairs.insert(Key, 1);
      Work.push_back({R, Id});
    }
  };
  Push(StateRe[Start >> StrideLog2], Start >> StrideLog2);
  while (!Work.empty()) {
    auto [R, S] = Work.back();
    Work.pop_back();
    if ((M.nullable(R) ? 1u : 0u) != AcceptById[S]) {
      ++Bad;
      continue; // languages already differ; don't chase the divergence
    }
    Tr Dnf = Eng.derivativeDnf(R);
    for (uint32_t Cls = 0; Cls != NumClasses; ++Cls) {
      Re Step =
          T.apply(Dnf, Compressor.representative(static_cast<uint16_t>(Cls)));
      uint32_t Tgt = targetOf(S, static_cast<uint16_t>(Cls));
      if (Tgt >= NS) {
        ++Bad;
        continue;
      }
      Push(Step, Tgt);
    }
  }

  // Packed-entry and side-table self-consistency (no engine involvement):
  // every accept bit must mirror AcceptById of its own target, and the
  // Sheng vectors / prefilter escapes must agree with the packed rows they
  // were derived from.
  for (uint32_t S = 0; S != NS; ++S) {
    for (uint32_t Cls = 0; Cls != NumClasses; ++Cls) {
      size_t Idx = (static_cast<size_t>(S) << StrideLog2) + Cls;
      uint32_t Entry = Use16 ? Tab16[Idx] : Tab32[Idx];
      uint32_t Tgt = Entry >> StrideLog2;
      if (Tgt >= NS || (Entry & 1u) != AcceptById[Tgt])
        ++Bad;
    }
    const SkipInfo &K = Skips[S];
    const size_t ShengRow = Sheng ? 16 : 32;
    for (uint32_t B = 0; B != 128; ++B) {
      uint32_t Tgt = targetOf(S, Compressor.classOf(B));
      if ((Sheng || ShengWide) &&
          ShengTbl[static_cast<size_t>(B) * ShengRow + S] != Tgt)
        ++Bad;
      if (K.enabled()) {
        // Prefilter soundness: a byte changes the state iff it is listed.
        bool Listed = K.NumEscapes != 0 &&
                      (B == K.Escape[0] || B == K.Escape[1]);
        if ((Tgt != S) != Listed)
          ++Bad;
      }
    }
  }
  return Bad;
}

void CompiledDfa::corruptEntryForTest(uint32_t State, uint16_t Cls,
                                      uint32_t RawTarget) {
  if (State >= numStates() || Cls >= NumClasses)
    return;
  uint32_t Entry = (RawTarget << StrideLog2) |
                   (RawTarget < numStates() ? AcceptById[RawTarget] : 0u);
  size_t Idx = (static_cast<size_t>(State) << StrideLog2) + Cls;
  if (Use16)
    Tab16[Idx] = static_cast<uint16_t>(Entry);
  else
    Tab32[Idx] = Entry;
}
