//===- policy/Policy.h - Cloud-policy front end (Fig. 1) ---------------------===//
///
/// \file
/// The paper's motivating application: cloud resource-policy languages
/// (Amazon AWS, Microsoft Azure) whose conditions are Boolean combinations
/// of lightweight pattern constraints on string fields. This module
/// reproduces the Fig. 1 pipeline end to end: a JSON policy document
///
///   {"if": {"allOf": [{"field": "date", "match": "####-???-##"},
///                     {"anyOf": [{"field": "date", "like": "2019*"},
///                                {"field": "date", "like": "2020*"}]}]},
///    "then": {"effect": "audit"}}
///
/// compiles into a Boolean combination of regex membership constraints
/// (`match` patterns: `#` = \d, `?` = [a-zA-Z], `*` = .*, everything else
/// literal; `like` patterns: `*` = .*, everything else literal; plus
/// `equals`, `contains`, `notMatch`, `notLike`, `notEquals`, and the
/// combinators allOf / anyOf / not), and the paper's "sanity check for
/// SMT" — can this rule ever fire? — is answered by the symbolic-Boolean-
/// derivative solver through the same implicant-enumeration used by the
/// SMT front end.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_POLICY_POLICY_H
#define SBD_POLICY_POLICY_H

#include "policy/Json.h"
#include "smt/SmtSolver.h"

#include <optional>
#include <string>
#include <vector>

namespace sbd {

/// Outcome of analyzing one policy document.
struct PolicyAnalysis {
  /// Overall verdict for "can the rule fire?".
  SolveStatus Status = SolveStatus::Unknown;
  /// The policy's "then.effect" value, when present.
  std::string Effect;
  /// A field assignment activating the policy (Sat only).
  std::vector<std::pair<std::string, std::string>> Activation;
  /// Diagnostics (parse errors, unsupported constructs).
  std::string Note;
};

/// Compiles and analyzes policies against the regex solver.
class PolicyChecker {
public:
  explicit PolicyChecker(RegexSolver &S) : Solver(S) {}

  /// Parses a JSON policy document and decides whether its "if" condition
  /// is satisfiable (the rule can fire), returning an activating witness.
  PolicyAnalysis analyze(const std::string &JsonText,
                         const SolveOptions &Opts = {});

  /// Decides whether policy A firing implies policy B firing (every field
  /// assignment activating A also activates B).
  SolveStatus implies(const std::string &JsonA, const std::string &JsonB,
                      const SolveOptions &Opts = {});

  /// Translates a `match` pattern (# = digit, ? = letter, * = any run,
  /// other characters literal) into a regex over \p M.
  static Re compileMatchPattern(RegexManager &M, const std::string &Pattern);

  /// Translates a `like` pattern (* = any run, others literal).
  static Re compileLikePattern(RegexManager &M, const std::string &Pattern);

private:
  RegexSolver &Solver;
};

} // namespace sbd

#endif // SBD_POLICY_POLICY_H
