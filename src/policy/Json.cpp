//===- policy/Json.cpp - Minimal JSON reader ----------------------------------===//

#include "policy/Json.h"

#include "support/Unicode.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

using namespace sbd;

JsonValue JsonValue::boolean(bool V) {
  JsonValue J;
  J.K = Kind::Bool;
  J.B = V;
  return J;
}

JsonValue JsonValue::number(double V) {
  JsonValue J;
  J.K = Kind::Number;
  J.Num = V;
  return J;
}

JsonValue JsonValue::string(std::string V) {
  JsonValue J;
  J.K = Kind::String;
  J.Str = std::move(V);
  return J;
}

JsonValue JsonValue::array(std::vector<JsonValue> V) {
  JsonValue J;
  J.K = Kind::Array;
  J.Arr = std::move(V);
  return J;
}

JsonValue JsonValue::object(std::map<std::string, JsonValue> V) {
  JsonValue J;
  J.K = Kind::Object;
  J.Obj = std::move(V);
  return J;
}

namespace {

class Parser {
public:
  explicit Parser(const std::string &Text) : In(Text) {}

  JsonParseResult run() {
    JsonParseResult R;
    R.Value = parseValue();
    skipWs();
    if (!Failed && Pos != In.size())
      fail("trailing characters after document");
    R.Ok = !Failed;
    R.Error = Err;
    R.ErrorPos = ErrPos;
    return R;
  }

private:
  const std::string &In;
  size_t Pos = 0;
  bool Failed = false;
  std::string Err;
  size_t ErrPos = 0;

  bool atEnd() const { return Pos >= In.size(); }
  char peek() const { return In[Pos]; }

  void fail(const std::string &Msg) {
    if (!Failed) {
      Failed = true;
      Err = Msg;
      ErrPos = Pos;
    }
  }

  void skipWs() {
    while (!atEnd() && std::isspace(static_cast<unsigned char>(peek())))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (atEnd() || peek() != C)
      return false;
    ++Pos;
    return true;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (In.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  JsonValue parseValue() {
    skipWs();
    if (atEnd()) {
      fail("unexpected end of document");
      return JsonValue::null();
    }
    char C = peek();
    switch (C) {
    case '{':
      return parseObject();
    case '[':
      return parseArray();
    case '"':
      return JsonValue::string(parseString());
    case 't':
      if (literal("true"))
        return JsonValue::boolean(true);
      fail("bad literal");
      return JsonValue::null();
    case 'f':
      if (literal("false"))
        return JsonValue::boolean(false);
      fail("bad literal");
      return JsonValue::null();
    case 'n':
      if (literal("null"))
        return JsonValue::null();
      fail("bad literal");
      return JsonValue::null();
    default:
      return parseNumber();
    }
  }

  JsonValue parseObject() {
    ++Pos; // '{'
    std::map<std::string, JsonValue> Members;
    skipWs();
    if (consume('}'))
      return JsonValue::object(std::move(Members));
    while (!Failed) {
      skipWs();
      if (atEnd() || peek() != '"') {
        fail("expected a member name");
        break;
      }
      std::string Key = parseString();
      if (!consume(':')) {
        fail("expected ':'");
        break;
      }
      Members.emplace(std::move(Key), parseValue());
      if (consume(','))
        continue;
      if (consume('}'))
        break;
      fail("expected ',' or '}'");
    }
    return JsonValue::object(std::move(Members));
  }

  JsonValue parseArray() {
    ++Pos; // '['
    std::vector<JsonValue> Items;
    skipWs();
    if (consume(']'))
      return JsonValue::array(std::move(Items));
    while (!Failed) {
      Items.push_back(parseValue());
      if (consume(','))
        continue;
      if (consume(']'))
        break;
      fail("expected ',' or ']'");
    }
    return JsonValue::array(std::move(Items));
  }

  std::string parseString() {
    ++Pos; // opening quote
    std::string Out;
    while (!atEnd()) {
      char C = In[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (atEnd())
        break;
      char E = In[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        if (Pos + 4 > In.size()) {
          fail("truncated \\u escape");
          return Out;
        }
        uint32_t V = 0;
        for (int I = 0; I != 4; ++I) {
          char H = In[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<uint32_t>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<uint32_t>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<uint32_t>(H - 'A' + 10);
          else {
            fail("bad \\u escape");
            return Out;
          }
        }
        appendUtf8(V, Out);
        break;
      }
      default:
        fail("unknown escape");
        return Out;
      }
    }
    fail("unterminated string");
    return Out;
  }

  JsonValue parseNumber() {
    size_t Start = Pos;
    if (!atEnd() && (peek() == '-' || peek() == '+'))
      ++Pos;
    bool SawDigit = false;
    while (!atEnd() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                        peek() == '.' || peek() == 'e' || peek() == 'E' ||
                        peek() == '-' || peek() == '+')) {
      if (std::isdigit(static_cast<unsigned char>(peek())))
        SawDigit = true;
      ++Pos;
    }
    if (!SawDigit) {
      fail("expected a value");
      return JsonValue::null();
    }
    return JsonValue::number(std::strtod(In.c_str() + Start, nullptr));
  }
};

} // namespace

JsonParseResult sbd::parseJson(const std::string &Text) {
  Parser P(Text);
  return P.run();
}
