//===- policy/Json.h - Minimal JSON reader -----------------------------------===//
///
/// \file
/// A small JSON parser sufficient for the cloud-policy documents of the
/// paper's Fig. 1 (objects, arrays, strings with standard escapes, numbers,
/// booleans, null). No external dependencies; parse errors carry an offset.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_POLICY_JSON_H
#define SBD_POLICY_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sbd {

/// One JSON value (tree ownership via value semantics).
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }
  const std::vector<JsonValue> &asArray() const { return Arr; }
  const std::map<std::string, JsonValue> &asObject() const { return Obj; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *get(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Obj.find(Key);
    return It == Obj.end() ? nullptr : &It->second;
  }

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool V);
  static JsonValue number(double V);
  static JsonValue string(std::string V);
  static JsonValue array(std::vector<JsonValue> V);
  static JsonValue object(std::map<std::string, JsonValue> V);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
};

/// Parse outcome.
struct JsonParseResult {
  bool Ok = false;
  JsonValue Value;
  std::string Error;
  size_t ErrorPos = 0;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
JsonParseResult parseJson(const std::string &Text);

} // namespace sbd

#endif // SBD_POLICY_JSON_H
