//===- policy/Policy.cpp - Cloud-policy front end ------------------------------===//

#include "policy/Policy.h"

#include "re/SmtPrinter.h"
#include "support/Unicode.h"

#include <set>

using namespace sbd;

Re PolicyChecker::compileMatchPattern(RegexManager &M,
                                      const std::string &Pattern) {
  std::vector<Re> Parts;
  for (uint32_t Cp : fromUtf8(Pattern)) {
    switch (Cp) {
    case '#':
      Parts.push_back(M.pred(CharSet::digit()));
      break;
    case '?':
      Parts.push_back(M.pred(CharSet::asciiLetter()));
      break;
    case '*':
      Parts.push_back(M.top());
      break;
    default:
      Parts.push_back(M.chr(Cp));
      break;
    }
  }
  return M.concatList(Parts);
}

Re PolicyChecker::compileLikePattern(RegexManager &M,
                                     const std::string &Pattern) {
  std::vector<Re> Parts;
  for (uint32_t Cp : fromUtf8(Pattern)) {
    if (Cp == '*')
      Parts.push_back(M.top());
    else
      Parts.push_back(M.chr(Cp));
  }
  return M.concatList(Parts);
}

namespace {

/// Compiles a policy condition into an SMT-LIB Boolean term over the
/// policy's field variables (quoted symbols), collecting the fields seen.
class ConditionCompiler {
public:
  ConditionCompiler(RegexManager &Mgr) : M(Mgr) {}

  std::optional<std::string> compile(const JsonValue &Cond) {
    if (!Cond.isObject()) {
      Error = "condition must be a JSON object";
      return std::nullopt;
    }
    // Combinators.
    if (const JsonValue *All = Cond.get("allOf"))
      return combine("and", *All);
    if (const JsonValue *Any = Cond.get("anyOf"))
      return combine("or", *Any);
    if (const JsonValue *Not = Cond.get("not")) {
      auto Inner = compile(*Not);
      if (!Inner)
        return std::nullopt;
      return "(not " + *Inner + ")";
    }
    // Leaf: a field with exactly one operator.
    const JsonValue *Field = Cond.get("field");
    if (!Field || !Field->isString()) {
      Error = "leaf condition needs a string \"field\"";
      return std::nullopt;
    }
    Fields.insert(Field->asString());
    std::string Var = "|" + Field->asString() + "|";

    auto leaf = [&](Re R, bool Positive) {
      std::string Term =
          "(str.in_re " + Var + " " + regexToSmtTerm(M, R) + ")";
      return Positive ? Term : "(not " + Term + ")";
    };
    if (const JsonValue *P = Cond.get("match"); P && P->isString())
      return leaf(PolicyChecker::compileMatchPattern(M, P->asString()), true);
    if (const JsonValue *P = Cond.get("notMatch"); P && P->isString())
      return leaf(PolicyChecker::compileMatchPattern(M, P->asString()),
                  false);
    if (const JsonValue *P = Cond.get("like"); P && P->isString())
      return leaf(PolicyChecker::compileLikePattern(M, P->asString()), true);
    if (const JsonValue *P = Cond.get("notLike"); P && P->isString())
      return leaf(PolicyChecker::compileLikePattern(M, P->asString()), false);
    if (const JsonValue *P = Cond.get("equals"); P && P->isString())
      return leaf(M.word(fromUtf8(P->asString())), true);
    if (const JsonValue *P = Cond.get("notEquals"); P && P->isString())
      return leaf(M.word(fromUtf8(P->asString())), false);
    if (const JsonValue *P = Cond.get("contains"); P && P->isString()) {
      Re Lit = M.word(fromUtf8(P->asString()));
      return leaf(M.concat(M.top(), M.concat(Lit, M.top())), true);
    }
    if (const JsonValue *P = Cond.get("in"); P && P->isArray())
      return membershipList(*P, Var, true);
    if (const JsonValue *P = Cond.get("notIn"); P && P->isArray())
      return membershipList(*P, Var, false);
    Error = "leaf condition for field '" + Field->asString() +
            "' has no supported operator";
    return std::nullopt;
  }

  const std::set<std::string> &fields() const { return Fields; }
  const std::string &error() const { return Error; }

private:
  std::optional<std::string> combine(const char *Op, const JsonValue &List) {
    if (!List.isArray()) {
      Error = std::string(Op) + " needs an array";
      return std::nullopt;
    }
    if (List.asArray().empty())
      return std::string(Op) == "and" ? "true" : "false";
    std::string Out = "(" + std::string(Op);
    for (const JsonValue &Item : List.asArray()) {
      auto Inner = compile(Item);
      if (!Inner)
        return std::nullopt;
      Out += " " + *Inner;
    }
    return Out + ")";
  }

  std::optional<std::string> membershipList(const JsonValue &List,
                                            const std::string &Var,
                                            bool Positive) {
    std::vector<Re> Alternatives;
    for (const JsonValue &Item : List.asArray()) {
      if (!Item.isString()) {
        Error = "in/notIn lists must contain strings";
        return std::nullopt;
      }
      Alternatives.push_back(M.word(fromUtf8(Item.asString())));
    }
    Re Union = M.unionList(std::move(Alternatives));
    std::string Term =
        "(str.in_re " + Var + " " + regexToSmtTerm(M, Union) + ")";
    return Positive ? Term : "(not " + Term + ")";
  }

  RegexManager &M;
  std::set<std::string> Fields;
  std::string Error;
};

/// Builds the full script for a compiled condition.
std::string buildScript(const std::set<std::string> &Fields,
                        const std::string &Assertion) {
  std::string Script = "(set-logic QF_S)\n";
  for (const std::string &F : Fields)
    Script += "(declare-const |" + F + "| String)\n";
  Script += "(assert " + Assertion + ")\n(check-sat)\n";
  return Script;
}

/// Extracts the condition object of a policy document: the "if" member of
/// a rule, or the document itself when it already is a bare condition.
const JsonValue *conditionOf(const JsonValue &Doc) {
  if (const JsonValue *If = Doc.get("if"))
    return If;
  return &Doc;
}

} // namespace

PolicyAnalysis PolicyChecker::analyze(const std::string &JsonText,
                                      const SolveOptions &Opts) {
  PolicyAnalysis Out;
  JsonParseResult Parsed = parseJson(JsonText);
  if (!Parsed.Ok) {
    Out.Status = SolveStatus::Unsupported;
    Out.Note = "JSON parse error: " + Parsed.Error;
    return Out;
  }
  if (const JsonValue *Then = Parsed.Value.get("then"))
    if (const JsonValue *Effect = Then->get("effect"))
      if (Effect->isString())
        Out.Effect = Effect->asString();

  ConditionCompiler Compiler(Solver.regexManager());
  auto Assertion = Compiler.compile(*conditionOf(Parsed.Value));
  if (!Assertion) {
    Out.Status = SolveStatus::Unsupported;
    Out.Note = Compiler.error();
    return Out;
  }

  SmtSolver Smt(Solver);
  SmtResult R =
      Smt.solveScript(buildScript(Compiler.fields(), *Assertion), Opts);
  Out.Status = R.Status;
  Out.Note = R.Note;
  Out.Activation = std::move(R.Model);
  return Out;
}

SolveStatus PolicyChecker::implies(const std::string &JsonA,
                                   const std::string &JsonB,
                                   const SolveOptions &Opts) {
  JsonParseResult A = parseJson(JsonA);
  JsonParseResult B = parseJson(JsonB);
  if (!A.Ok || !B.Ok)
    return SolveStatus::Unsupported;
  ConditionCompiler Compiler(Solver.regexManager());
  auto TermA = Compiler.compile(*conditionOf(A.Value));
  if (!TermA)
    return SolveStatus::Unsupported;
  auto TermB = Compiler.compile(*conditionOf(B.Value));
  if (!TermB)
    return SolveStatus::Unsupported;
  // A implies B  iff  A ∧ ¬B is unsatisfiable.
  std::string Assertion = "(and " + *TermA + " (not " + *TermB + "))";
  SmtSolver Smt(Solver);
  SmtResult R =
      Smt.solveScript(buildScript(Compiler.fields(), Assertion), Opts);
  // Unsat = implication holds; Sat = a separating assignment exists.
  return R.Status;
}
