//===- portfolio/Portfolio.cpp - Analyzer-driven engine selection -----------===//

#include "portfolio/Portfolio.h"

#include "support/Stopwatch.h"

using namespace sbd;
using namespace sbd::portfolio;

// Routing thresholds (DESIGN.md §14). Antimirov's partial-derivative BFS
// wins on small positive iteration-only patterns — at most ♯(R)+1 NFA
// states, no DNF transformation — but its per-query closure rebuild loses
// to the derivative engine's cross-query dense-row cache as patterns grow,
// so the gate is deliberately tight (tuned on bench_smt_corpus).
namespace {
constexpr uint32_t AntimirovMaxDag = 48;
constexpr uint32_t AntimirovMaxPreds = 16;
constexpr uint64_t AntimirovMaxBlowup = 16;
} // namespace

RouteDecision portfolio::planRoute(const analysis::RegexFeatures &F,
                                   const SolveOptions &Opts) {
  RouteDecision D;
  // Only the derivative engine implements the DFS strategy knob; honoring
  // the caller's search order outranks any routing win.
  if (Opts.Strategy == SearchStrategy::Dfs) {
    D.Engine = SolveEngine::DerivDfs;
    D.Reason = "dfs_strategy_pinned";
    return D;
  }
  if (F.Class == analysis::ReClass::Adversarial) {
    // Derivative engine under the admission cap: it degrades gracefully
    // (budgeted Unknown) where the eager constructions blow up first.
    D.Reason = "adversarial_capped";
    return D;
  }
  if (F.Class == analysis::ReClass::KleeneOnly && F.DagSize <= AntimirovMaxDag &&
      F.DistinctPreds <= AntimirovMaxPreds &&
      F.CounterBlowup <= AntimirovMaxBlowup) {
    D.Engine = SolveEngine::Antimirov;
    D.Reason = "small_positive_iteration";
    return D;
  }
  // Literal/Sparse queries are near-free on the derivative engine (and
  // benefit from its dense-row replay); Boolean/counter-heavy ones are
  // outside the baselines' efficient fragment. BrzMinterm and the eager
  // DFA constructions are dominated on every class (see DESIGN.md §14) and
  // are never auto-selected.
  return D;
}

SolveResult PortfolioSolver::checkSat(Re R, const SolveOptions &Opts) {
  Stopwatch AnalysisTimer;
  const analysis::RegexFeatures Feat = S.analyzer().analyze(R);
  const int64_t AnalysisUs = AnalysisTimer.elapsedUs();
  RouteDecision D = planRoute(Feat, Opts);

  if (D.Engine == SolveEngine::Antimirov) {
    SolveResult R1 = Anti.solve(R, Opts);
    if (R1.Status == SolveStatus::Sat || R1.Status == SolveStatus::Unsat) {
      R1.Stats.PredictedClass = analysis::reClassName(Feat.Class);
      R1.Stats.RiskScore = Feat.Risk;
      R1.Stats.PredictedStates = analysis::predictedStateBound(Feat);
      R1.Stats.AnalysisUs = AnalysisUs;
      return R1;
    }
    // Non-answer (budget, timeout, fragment): the derivative engine is the
    // completeness backstop, so routing can never lose a verdict.
  }
  return S.checkSat(R, Opts);
}

SolveResult
PortfolioSolver::checkMembership(const std::vector<MembershipLiteral> &Literals,
                                 const SolveOptions &Opts) {
  // in(s,r1) ∧ ¬in(s,r2) ∧ …  ⇒  in(s, r1 & ~r2 & …)   (Section 2)
  std::vector<Re> Parts;
  Parts.reserve(Literals.size());
  for (const MembershipLiteral &L : Literals)
    Parts.push_back(L.Positive ? L.Regex : M.complement(L.Regex));
  return checkSat(M.interList(std::move(Parts)), Opts);
}
