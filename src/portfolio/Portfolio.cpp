//===- portfolio/Portfolio.cpp - Analyzer-driven engine selection -----------===//

#include "portfolio/Portfolio.h"

#include "support/Stopwatch.h"

using namespace sbd;
using namespace sbd::portfolio;

// Routing thresholds (DESIGN.md §14). Antimirov's partial-derivative BFS
// wins on small positive iteration-only patterns — at most ♯(R)+1 NFA
// states, no DNF transformation — but its per-query closure rebuild loses
// to the derivative engine's cross-query dense-row cache as patterns grow,
// so the gate is deliberately tight (tuned on bench_smt_corpus).
namespace {
constexpr uint32_t AntimirovMaxDag = 48;
constexpr uint32_t AntimirovMaxPreds = 16;
constexpr uint64_t AntimirovMaxBlowup = 16;
} // namespace

RouteDecision portfolio::planRoute(const analysis::RegexFeatures &F,
                                   const SolveOptions &Opts) {
  RouteDecision D;
  // Only the derivative engine implements the DFS strategy knob; honoring
  // the caller's search order outranks any routing win.
  if (Opts.Strategy == SearchStrategy::Dfs) {
    D.Engine = SolveEngine::DerivDfs;
    D.Reason = "dfs_strategy_pinned";
    return D;
  }
  if (F.Class == analysis::ReClass::Adversarial) {
    // Derivative engine under the admission cap: it degrades gracefully
    // (budgeted Unknown) where the eager constructions blow up first.
    D.Reason = "adversarial_capped";
    return D;
  }
  if (F.Class == analysis::ReClass::KleeneOnly && F.DagSize <= AntimirovMaxDag &&
      F.DistinctPreds <= AntimirovMaxPreds &&
      F.CounterBlowup <= AntimirovMaxBlowup) {
    D.Engine = SolveEngine::Antimirov;
    D.Reason = "small_positive_iteration";
    return D;
  }
  // Literal/Sparse queries are near-free on the derivative engine (and
  // benefit from its dense-row replay); Boolean/counter-heavy ones are
  // outside the baselines' efficient fragment. BrzMinterm and the eager
  // DFA constructions are dominated on every class (see DESIGN.md §14) and
  // are never auto-selected.
  return D;
}

SolveResult PortfolioSolver::checkSat(Re R, const SolveOptions &Opts) {
  // Cross-query verdict cache (DESIGN.md §15). The probe runs before the
  // analyzer: a hit skips analysis, routing, and solving entirely. An
  // empty key means the canonical print exceeded the key cap — skip.
  std::string CacheKey;
  if (Cache) {
    Stopwatch HitTimer;
    CacheKey = cache::canonicalVerdictKey(M, R, Opts);
    if (std::optional<cache::CachedVerdict> Hit = Cache->lookup(CacheKey)) {
      SolveResult Out;
      Out.Stats.Engine = SolveEngine::VerdictCache;
      if (Hit->Sat) {
        // The cache is untrusted: replay the witness through the reference
        // matcher before serving. A rejection is a hard error — the entry
        // (or the matcher) is wrong, and re-solving would paper over it.
        if (!S.matchesWord(R, Hit->Witness)) {
          Cache->noteRevalidationFailure(CacheKey);
          Out.Status = SolveStatus::Unknown;
          Out.Stop = StopReason::CacheRevalidationFailed;
          Out.Note = "cached witness failed reference-matcher revalidation";
          Out.TimeUs = HitTimer.elapsedUs();
          Out.Stats.TotalUs = Out.TimeUs;
          return Out;
        }
        Out.Status = SolveStatus::Sat;
        Out.Witness = Hit->Witness;
      } else {
        Out.Status = SolveStatus::Unsat;
      }
      Out.TimeUs = HitTimer.elapsedUs();
      Out.Stats.TotalUs = Out.TimeUs;
      return Out;
    }
  }

  Stopwatch AnalysisTimer;
  const analysis::RegexFeatures Feat = S.analyzer().analyze(R);
  const int64_t AnalysisUs = AnalysisTimer.elapsedUs();
  RouteDecision D = planRoute(Feat, Opts);

  SolveResult Out;
  bool Solved = false;
  if (D.Engine == SolveEngine::Antimirov) {
    SolveResult R1 = Anti.solve(R, Opts);
    if (R1.Status == SolveStatus::Sat || R1.Status == SolveStatus::Unsat) {
      R1.Stats.PredictedClass = analysis::reClassName(Feat.Class);
      R1.Stats.RiskScore = Feat.Risk;
      R1.Stats.PredictedStates = analysis::predictedStateBound(Feat);
      R1.Stats.AnalysisUs = AnalysisUs;
      Out = std::move(R1);
      Solved = true;
    }
    // Non-answer (budget, timeout, fragment): the derivative engine is the
    // completeness backstop, so routing can never lose a verdict.
  }
  if (!Solved)
    Out = S.checkSat(R, Opts);

  // Memoize definite verdicts only: Unknown/Unsupported depend on budgets
  // and fragment coverage, not on the language, so they must never be
  // served cross-query.
  if (Cache && !CacheKey.empty() &&
      (Out.Status == SolveStatus::Sat || Out.Status == SolveStatus::Unsat)) {
    cache::CachedVerdict V;
    V.Sat = Out.isSat();
    V.Witness = Out.Witness;
    Cache->insert(CacheKey, std::move(V));
  }
  return Out;
}

SolveResult
PortfolioSolver::checkMembership(const std::vector<MembershipLiteral> &Literals,
                                 const SolveOptions &Opts) {
  // in(s,r1) ∧ ¬in(s,r2) ∧ …  ⇒  in(s, r1 & ~r2 & …)   (Section 2)
  std::vector<Re> Parts;
  Parts.reserve(Literals.size());
  for (const MembershipLiteral &L : Literals)
    Parts.push_back(L.Positive ? L.Regex : M.complement(L.Regex));
  return checkSat(M.interList(std::move(Parts)), Opts);
}
