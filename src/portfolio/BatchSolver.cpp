//===- portfolio/BatchSolver.cpp - Parallel batch solving front end ---------===//

#include "portfolio/BatchSolver.h"

#include "re/RegexParser.h"
#include "portfolio/SolverStack.h"
#include "support/Exposition.h"
#include "support/Stopwatch.h"
#include "support/Trace.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

using namespace sbd;
using portfolio::SolverStack;

BatchResult portfolio::solveOnStack(SolverStack &W, const BatchQuery &Q,
                                    bool LongLived) {
  BatchResult Out;
  obs::ScopedSpan Span("query", "batch");
  Span.arg("pattern", Q.Pattern);
  Stopwatch ParseTimer;
  RegexParseResult Parsed = parseRegex(W.M, Q.Pattern);
  int64_t ParseUs = ParseTimer.elapsedUs();
  SBD_OBS_ADD(ParseTimeUs, ParseUs);
  if (!Parsed.Ok) {
    Out.ParseError = Parsed.Error;
    Out.Result.Status = SolveStatus::Unsupported;
    Out.Result.Stop = StopReason::ParseError;
    Out.Result.Note = "parse error: " + Parsed.Error;
    Out.Result.Stats.ParseUs = ParseUs;
    Out.Result.Stats.TotalUs = ParseUs;
    return Out;
  }
  Out.ParseOk = true;
  SolveOptions Opts = Q.Opts;
  if (LongLived)
    Opts.EagerRowRecording = true;
  Out.Result = W.P.checkSat(Parsed.Value, Opts);
  // Sat witnesses are re-validated through the worker's matcher pool (the
  // compiled serving path once a regex is hot). This is a pure guard:
  // verdicts and witnesses are unchanged on the (only observed) passing
  // path, and a divergence is downgraded to Unknown rather than shipping
  // an invalid witness.
  if (Out.Result.isSat()) {
#if SBD_OBS
    const obs::MetricShard ScanBefore = obs::tlsShard();
#endif
    bool Valid = W.S.matchesWord(Parsed.Value, Out.Result.Witness);
#if SBD_OBS
    // Validation scans run after checkSat returned, so attribute them to
    // the query here (same thread-local-shard diff the solver uses).
    Out.Result.Stats.ScanUs += static_cast<int64_t>(
        obs::tlsShard().since(ScanBefore).get(obs::Counter::ScanTimeUs));
#endif
    if (!Valid) {
      Out.Result.Status = SolveStatus::Unknown;
      Out.Result.Note = "witness failed compiled-matcher validation";
    }
  }
  Out.Result.Stats.ParseUs = ParseUs;
  Out.Result.Stats.TotalUs += ParseUs;
  Out.Result.TimeUs += ParseUs;
  return Out;
}

namespace {

/// Buckets every result's SolveStats by the engine that produced it.
std::vector<EnginePhaseRow>
bucketByEngine(const std::vector<BatchResult> &Results) {
  constexpr size_t NumEngines = 6; // SolveEngine enumerator count
  EnginePhaseRow Rows[NumEngines];
  for (size_t I = 0; I != NumEngines; ++I)
    Rows[I].Engine = static_cast<SolveEngine>(I);
  for (const BatchResult &R : Results) {
    if (!R.ParseOk)
      continue;
    EnginePhaseRow &Row = Rows[static_cast<size_t>(R.Result.Stats.Engine)];
    ++Row.Queries;
    Row.Stats += R.Result.Stats;
  }
  std::vector<EnginePhaseRow> Out;
  for (size_t I = 0; I != NumEngines; ++I)
    if (Rows[I].Queries)
      Out.push_back(Rows[I]);
  return Out;
}

} // namespace

std::vector<BatchResult>
BatchSolver::solveAll(const std::vector<BatchQuery> &Queries) {
  std::vector<BatchResult> Results(Queries.size());
  Stats.reset();
  Phases.clear();

  // The work loop every worker runs: claim the next unprocessed query index
  // and solve it on this worker's stack. Results are written to disjoint
  // slots, so no synchronization beyond the claim counter is needed.
  std::atomic<size_t> Next{0};
  std::mutex StatsMutex;
  auto workLoop = [&] {
    auto W = std::make_unique<SolverStack>();
    CacheStats Local;
    bool Dirty = false;
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
         I < Queries.size();
         I = Next.fetch_add(1, std::memory_order_relaxed)) {
      bool Recycle =
          Dirty &&
          (!Opts.ReuseArenas ||
           (Opts.ArenaNodeBudget && W->M.numNodes() > Opts.ArenaNodeBudget));
      if (Recycle) {
        Local += W->stats();
        W = std::make_unique<SolverStack>();
      }
      Results[I] = solveOnStack(*W, Queries[I], Opts.ReuseArenas);
      Dirty = true;
      // Safe point for SIGUSR1-driven exposition dumps (one relaxed load
      // when no dump is pending).
      obs::pollExposition();
    }
    Local += W->stats();
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Stats += Local;
  };

  unsigned Threads = Opts.NumThreads;
  if (Threads <= 1 || Queries.size() <= 1) {
    workLoop();
    Phases = bucketByEngine(Results);
    return Results;
  }
  if (Threads > Queries.size())
    Threads = static_cast<unsigned>(Queries.size());

  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Pool.emplace_back(workLoop);
  for (std::thread &Th : Pool)
    Th.join();
  Phases = bucketByEngine(Results);
  return Results;
}
