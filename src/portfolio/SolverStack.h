//===- portfolio/SolverStack.h - One worker's full solver stack -------------===//
///
/// \file
/// The rebuildable per-worker solver stack shared by every batch front end:
/// `BatchSolver`'s thread workers, the `src/dist` worker processes, and
/// (shape-wise) `sbd-server`'s resident stack. Members are constructed in
/// declaration order, so the references wired through the constructors are
/// valid; the struct is non-movable and lives behind a unique_ptr — a
/// "recycle" is building a fresh one (hash-consing needs stable node ids,
/// so arenas only ever grow; see DESIGN.md §7).
///
/// `solveOnStack` is the one query execution path all of them share: parse
/// on the stack's arena, route through the analyzer-driven portfolio, and
/// revalidate Sat witnesses through the stack's matcher pool. Keeping it
/// single-sourced is what makes "1-process and N-process runs produce
/// byte-identical verdict streams" (DESIGN.md §16) a structural property
/// rather than a test-enforced accident.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_PORTFOLIO_SOLVERSTACK_H
#define SBD_PORTFOLIO_SOLVERSTACK_H

#include "portfolio/BatchSolver.h"
#include "portfolio/Portfolio.h"

namespace sbd {
namespace portfolio {

/// One worker's solver stack: arena, transition arena, derivative engine,
/// solver, and the portfolio front end sharing them.
struct SolverStack {
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver S{E};
  PortfolioSolver P{S};

  SolverStack() = default;
  SolverStack(const SolverStack &) = delete;
  SolverStack &operator=(const SolverStack &) = delete;

  /// Interning + memo counters accumulated in this stack so far.
  CacheStats stats() const {
    CacheStats Out;
    Out += M.stats();
    Out += T.stats();
    Out += E.stats();
    return Out;
  }
};

/// Solves one query on the given stack. \p LongLived marks stacks that
/// survive across queries (ReuseArenas), where eager dense-row recording
/// pays for itself on the very next shared vertex. Sat witnesses are
/// revalidated through the stack's matcher pool; a failed revalidation is
/// downgraded to Unknown rather than shipping an invalid witness.
BatchResult solveOnStack(SolverStack &W, const BatchQuery &Q, bool LongLived);

} // namespace portfolio
} // namespace sbd

#endif // SBD_PORTFOLIO_SOLVERSTACK_H
