//===- portfolio/Portfolio.h - Analyzer-driven engine selection -------------===//
///
/// \file
/// The solver-portfolio layer (DESIGN.md §14): every query is routed to the
/// engine the pre-solve static analysis predicts is cheapest, replacing the
/// ad-hoc "always the derivative engine" choice. The router is a pure
/// function of the `RegexFeatures` record, so routing is deterministic,
/// unit-testable, and auditable — the decision and its reason are recorded
/// on SolveStats next to the actual cost.
///
/// This library sits *above* `sbd_solver`, `sbd_baselines`, and
/// `sbd_automata` in the layering: the derivative solver cannot construct
/// the baseline engines itself (they link against it), so the portfolio is
/// the one place allowed to instantiate engines directly — enforced by
/// `scripts/lint_sbd.py` (engine-construction-outside-portfolio).
///
/// Routing is conservative by design: the alternative engine is tried only
/// when the features say it is clearly profitable, and any non-answer
/// (Unknown, Unsupported) falls back to the derivative engine, so the
/// portfolio's verdicts match-or-beat the derivative engine's by
/// construction.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_PORTFOLIO_PORTFOLIO_H
#define SBD_PORTFOLIO_PORTFOLIO_H

#include "analysis/RegexAnalyzer.h"
#include "baselines/AntimirovSolver.h"
#include "cache/VerdictCache.h"
#include "solver/RegexSolver.h"

namespace sbd {
namespace portfolio {

/// The router's verdict for one query.
struct RouteDecision {
  /// Engine to try first; non-answers fall back to the derivative engine.
  SolveEngine Engine = SolveEngine::DerivBfs;
  /// Stable snake_case tag explaining the choice (diagnostics, sbd-analyze).
  const char *Reason = "default_derivative";
};

/// Pure routing function: features → engine (DESIGN.md §14 routing table).
/// `Opts` participates because a DFS-strategy request pins the derivative
/// engine (only it implements the strategy knob).
RouteDecision planRoute(const analysis::RegexFeatures &F,
                        const SolveOptions &Opts);

/// Analyzer-routed front end over a RegexSolver plus lazily-used baseline
/// engines sharing its arena. Drop-in for RegexSolver::checkSat /
/// checkMembership; BatchSolver and SmtSolver route through this.
class PortfolioSolver {
public:
  explicit PortfolioSolver(RegexSolver &Sol)
      : S(Sol), M(Sol.regexManager()), Anti(M) {}

  /// Routed satisfiability check. Verdicts (and witness lengths — every
  /// engine used here searches breadth-first) are independent of routing.
  SolveResult checkSat(Re R, const SolveOptions &Opts = {});

  /// Conjunction of membership literals, folded to one ERE exactly like
  /// RegexSolver::checkMembership, then routed.
  SolveResult checkMembership(const std::vector<MembershipLiteral> &Literals,
                              const SolveOptions &Opts = {});

  /// The wrapped derivative solver (shared arena, matcher pool, analyzer).
  RegexSolver &solver() { return S; }

  /// Attaches (or detaches, with nullptr) a cross-query verdict cache.
  /// Not owned; the cache may outlive this solver and be shared across
  /// solver stacks — its keys are canonical prints, not arena pointers.
  /// When attached, checkSat probes it before routing and memoizes every
  /// definite verdict. Sat hits are revalidated through the reference
  /// matcher; a failed revalidation is a hard error
  /// (StopReason::CacheRevalidationFailed), never a silent re-solve.
  void setVerdictCache(cache::VerdictCache *C) { Cache = C; }

  /// The attached verdict cache, or nullptr.
  cache::VerdictCache *verdictCache() { return Cache; }

private:
  RegexSolver &S;
  RegexManager &M;
  AntimirovSolver Anti;
  cache::VerdictCache *Cache = nullptr;
};

} // namespace portfolio
} // namespace sbd

#endif // SBD_PORTFOLIO_PORTFOLIO_H
