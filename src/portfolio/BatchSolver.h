//===- portfolio/BatchSolver.h - Parallel batch solving front end -----------===//
///
/// \file
/// Serving-stack front end: takes N independent regex satisfiability
/// queries (surface-syntax patterns, so queries are self-contained and not
/// tied to any caller-side arena) and fans them out over a small worker
/// pool. Each worker owns a full thread-local solver stack — RegexManager,
/// TrManager, DerivativeEngine, RegexSolver — so the hot path runs with
/// zero locks and zero shared mutable state; handles never cross managers
/// (the "thread-local arena rule", DESIGN.md §7).
///
/// Queries carry their own `SolveOptions` (deadline, state budget,
/// strategy); results come back in input order regardless of scheduling.
/// Verdicts and BFS witness lengths are deterministic across thread counts:
/// by default every query solves on a freshly recycled arena, so no query
/// can observe interning state left behind by another.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_PORTFOLIO_BATCHSOLVER_H
#define SBD_PORTFOLIO_BATCHSOLVER_H

#include "solver/SolverResult.h"
#include "support/Metrics.h"

#include <cstddef>
#include <string>
#include <vector>

namespace sbd {

/// One independent satisfiability query.
struct BatchQuery {
  /// Extended regex in the surface syntax accepted by RegexParser.
  std::string Pattern;
  /// Per-query budget (deadline, state cap, search strategy).
  SolveOptions Opts;
};

/// Result for one query, at the query's input position.
struct BatchResult {
  /// False when the pattern failed to parse; `ParseError` explains why and
  /// `Result.Status` is Unsupported.
  bool ParseOk = false;
  std::string ParseError;
  SolveResult Result;
};

/// Pool configuration.
struct BatchOptions {
  /// Worker threads; 0 or 1 solves inline on the calling thread.
  unsigned NumThreads = 1;
  /// When true, workers keep their arenas (and the persistent derivative
  /// graph) warm across the queries they happen to process; dead-state
  /// facts are reused, but interned ids then depend on that worker's query
  /// history, so DFS exploration order (not verdicts) may vary. When false
  /// (default), the arena stack is recycled before every query —
  /// bitwise-deterministic and memory-bounded.
  bool ReuseArenas = false;
  /// With ReuseArenas: recycle a worker's stack once its regex arena
  /// exceeds this many interned nodes (0 = never). Bounds memory in
  /// long-running processes, as clearCaches() does for a single engine.
  size_t ArenaNodeBudget = 1 << 20;
};

/// Per-engine phase aggregation over one solveAll() call: every query's
/// SolveStats summed into the bucket of the engine that answered it.
struct EnginePhaseRow {
  SolveEngine Engine = SolveEngine::DerivBfs;
  uint64_t Queries = 0;
  SolveStats Stats;
};

/// Fans independent queries over thread-local solver stacks.
class BatchSolver {
public:
  explicit BatchSolver(BatchOptions Options = {}) : Opts(Options) {}

  /// Solves all queries; `result[i]` answers `Queries[i]`.
  std::vector<BatchResult> solveAll(const std::vector<BatchQuery> &Queries);

  /// Aggregated interning/memo counters across all workers of the last
  /// solveAll() call (regex arena + transition arena + engine memos).
  const CacheStats &stats() const { return Stats; }

  /// Per-engine phase table for the last solveAll() call, engines in enum
  /// order, engines with zero queries omitted. The bench harnesses print
  /// this as the per-engine phase breakdown.
  const std::vector<EnginePhaseRow> &enginePhases() const { return Phases; }

private:
  BatchOptions Opts;
  CacheStats Stats;
  std::vector<EnginePhaseRow> Phases;
};

} // namespace sbd

#endif // SBD_PORTFOLIO_BATCHSOLVER_H
