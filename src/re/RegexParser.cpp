//===- re/RegexParser.cpp - Textual regex syntax ----------------------------===//

#include "re/RegexParser.h"

#include "support/Debug.h"
#include "support/Unicode.h"

#include <cstdio>
#include <cstdlib>

using namespace sbd;

namespace {

/// Recursive-descent parser over decoded code points.
class Parser {
public:
  Parser(RegexManager &Mgr, const std::string &Pattern)
      : M(Mgr), In(fromUtf8(Pattern)) {}

  RegexParseResult run() {
    Re R = parseUnion();
    if (!Failed && Pos != In.size())
      fail("unexpected character");
    RegexParseResult Result;
    Result.Ok = !Failed;
    Result.Value = R;
    Result.Error = Err;
    Result.ErrorPos = ErrPos;
    return Result;
  }

private:
  RegexManager &M;
  std::vector<uint32_t> In;
  size_t Pos = 0;
  bool Failed = false;
  std::string Err;
  size_t ErrPos = 0;

  bool atEnd() const { return Pos >= In.size(); }
  uint32_t peek() const { return atEnd() ? 0 : In[Pos]; }
  uint32_t take() { return In[Pos++]; }
  bool consumeIf(uint32_t C) {
    if (atEnd() || In[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  Re fail(const std::string &Msg) {
    if (!Failed) {
      Failed = true;
      Err = Msg;
      ErrPos = Pos;
    }
    return M.empty();
  }

  Re parseUnion() {
    Re R = parseInter();
    while (!Failed && consumeIf('|'))
      R = M.union_(R, parseInter());
    return R;
  }

  Re parseInter() {
    Re R = parseConcat();
    while (!Failed && consumeIf('&'))
      R = M.inter(R, parseConcat());
    return R;
  }

  bool startsAtom() const {
    if (atEnd())
      return false;
    switch (peek()) {
    case '|':
    case '&':
    case ')':
    case '*':
    case '+':
    case '?':
    case '{':
    case '}':
    case ']':
      return false;
    default:
      return true;
    }
  }

  Re parseConcat() {
    if (!startsAtom())
      return fail("expected a regex term");
    Re R = parseUnary();
    std::vector<Re> Parts = {R};
    while (!Failed && startsAtom())
      Parts.push_back(parseUnary());
    return M.concatList(Parts);
  }

  Re parseUnary() {
    if (consumeIf('~'))
      return M.complement(parseUnary());
    return parsePostfix();
  }

  Re parsePostfix() {
    Re R = parseAtom();
    while (!Failed && !atEnd()) {
      if (consumeIf('*')) {
        R = M.star(R);
        continue;
      }
      if (consumeIf('+')) {
        R = M.plus(R);
        continue;
      }
      if (consumeIf('?')) {
        R = M.opt(R);
        continue;
      }
      if (peek() == '{') {
        ++Pos;
        R = parseLoopSuffix(R);
        continue;
      }
      break;
    }
    return R;
  }

  /// Parses the "m (',' n?)? '}'" part of a loop; '{' already consumed.
  Re parseLoopSuffix(Re R) {
    uint32_t Min = 0;
    if (!parseNumber(Min))
      return fail("expected a number in loop bound");
    uint32_t Max = Min;
    if (consumeIf(',')) {
      if (peek() == '}')
        Max = LoopInf;
      else if (!parseNumber(Max))
        return fail("expected a number in loop bound");
    }
    if (!consumeIf('}'))
      return fail("expected '}' to close loop");
    if (Max != LoopInf && Min > Max)
      return fail("loop bounds out of order");
    return M.loop(R, Min, Max);
  }

  bool parseNumber(uint32_t &Out) {
    if (atEnd() || peek() < '0' || peek() > '9')
      return false;
    uint64_t V = 0;
    while (!atEnd() && peek() >= '0' && peek() <= '9') {
      V = V * 10 + (take() - '0');
      if (V > 1000000) // guard absurd loop bounds
        return false;
    }
    Out = static_cast<uint32_t>(V);
    return true;
  }

  Re parseAtom() {
    if (atEnd())
      return fail("unexpected end of pattern");
    uint32_t C = take();
    switch (C) {
    case '(': {
      if (consumeIf(')'))
        return M.epsilon(); // '()' denotes ε
      Re R = parseUnion();
      if (!consumeIf(')'))
        return fail("expected ')'");
      return R;
    }
    case '[':
      return parseClass();
    case '.':
      return M.anyChar();
    case '\\': {
      CharSet S;
      if (!parseEscape(S))
        return fail("bad escape");
      return M.pred(S);
    }
    default:
      return M.chr(C);
    }
  }

  /// Parses an escape sequence after the backslash. Returns the denoted
  /// character set.
  bool parseEscape(CharSet &Out) {
    if (atEnd())
      return false;
    uint32_t C = take();
    switch (C) {
    case 'd':
      Out = CharSet::digit();
      return true;
    case 'D':
      Out = CharSet::digit().complement();
      return true;
    case 'w':
      Out = CharSet::word();
      return true;
    case 'W':
      Out = CharSet::word().complement();
      return true;
    case 's':
      Out = CharSet::space();
      return true;
    case 'S':
      Out = CharSet::space().complement();
      return true;
    case 't':
      Out = CharSet::singleton('\t');
      return true;
    case 'n':
      Out = CharSet::singleton('\n');
      return true;
    case 'r':
      Out = CharSet::singleton('\r');
      return true;
    case 'f':
      Out = CharSet::singleton('\f');
      return true;
    case 'v':
      Out = CharSet::singleton('\v');
      return true;
    case '0':
      Out = CharSet::singleton(0);
      return true;
    case 'x': {
      uint32_t V;
      if (!parseHex(2, V))
        return false;
      Out = CharSet::singleton(V);
      return true;
    }
    case 'u': {
      uint32_t V;
      if (!parseHex(4, V))
        return false;
      Out = CharSet::singleton(V);
      return true;
    }
    case 'U': {
      if (!consumeIf('{'))
        return false;
      uint32_t V = 0;
      int Digits = 0;
      while (!atEnd() && peek() != '}') {
        int D = hexDigit(take());
        if (D < 0)
          return false;
        V = V * 16 + static_cast<uint32_t>(D);
        if (++Digits > 6 || V > MaxCodePoint)
          return false;
      }
      if (Digits == 0 || !consumeIf('}'))
        return false;
      Out = CharSet::singleton(V);
      return true;
    }
    default:
      // Backslash before anything else denotes that literal character.
      Out = CharSet::singleton(C);
      return true;
    }
  }

  static int hexDigit(uint32_t C) {
    if (C >= '0' && C <= '9')
      return static_cast<int>(C - '0');
    if (C >= 'a' && C <= 'f')
      return static_cast<int>(C - 'a' + 10);
    if (C >= 'A' && C <= 'F')
      return static_cast<int>(C - 'A' + 10);
    return -1;
  }

  bool parseHex(int Digits, uint32_t &Out) {
    uint32_t V = 0;
    for (int I = 0; I != Digits; ++I) {
      if (atEnd())
        return false;
      int D = hexDigit(take());
      if (D < 0)
        return false;
      V = V * 16 + static_cast<uint32_t>(D);
    }
    Out = V;
    return true;
  }

  /// Parses a character class; '[' already consumed.
  Re parseClass() {
    bool Negate = consumeIf('^');
    CharSet Acc;
    // '[]' is the empty set; '[^]' is the full set.
    while (!atEnd() && peek() != ']') {
      CharSet First;
      if (!parseClassAtom(First))
        return fail("bad character class");
      // A range 'a-z' requires the lhs to be a single character.
      if (!atEnd() && peek() == '-' && Pos + 1 < In.size() &&
          In[Pos + 1] != ']') {
        ++Pos; // consume '-'
        CharSet Second;
        if (!parseClassAtom(Second))
          return fail("bad character class range");
        auto Lo = First.minElement();
        auto Hi = Second.minElement();
        if (!Lo || !Hi || First.count() != 1 || Second.count() != 1 ||
            *Lo > *Hi)
          return fail("bad character class range");
        Acc = Acc.unionWith(CharSet::range(*Lo, *Hi));
        continue;
      }
      Acc = Acc.unionWith(First);
    }
    if (!consumeIf(']'))
      return fail("expected ']'");
    if (Negate)
      Acc = Acc.complement();
    return M.pred(Acc);
  }

  bool parseClassAtom(CharSet &Out) {
    if (atEnd())
      return false;
    uint32_t C = take();
    if (C == '\\')
      return parseEscape(Out);
    Out = CharSet::singleton(C);
    return true;
  }
};

} // namespace

RegexParseResult sbd::parseRegex(RegexManager &Manager,
                                 const std::string &Pattern) {
  Parser P(Manager, Pattern);
  return P.run();
}

Re sbd::parseRegexOrDie(RegexManager &Manager, const std::string &Pattern) {
  RegexParseResult R = parseRegex(Manager, Pattern);
  if (!R.Ok) {
    std::fprintf(stderr, "regex parse error: %s at offset %zu in \"%s\"\n",
                 R.Error.c_str(), R.ErrorPos, Pattern.c_str());
    std::abort();
  }
  return R.Value;
}
