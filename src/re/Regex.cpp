//===- re/Regex.cpp - Symbolic extended regular expressions ----------------===//
// sbd-lint: hot-path

#include "re/Regex.h"

#include "analysis/AuditHooks.h"
#include "support/Debug.h"
#include "support/Hashing.h"

#include <algorithm>
#include <set>

using namespace sbd;

RegexManager::RegexManager() {
  // Intern the distinguished terms once, in a fixed order, so their ids are
  // stable across runs.
  RegexNode EmptyNode;
  EmptyNode.Kind = RegexKind::Empty;
  EmptyNode.Nullable = false;
  EmptyNode.Size = 1;
  EmptyNode.NumPreds = 0;
  EmptyNode.StarHeight = 0;
  EmptyRe = intern(std::move(EmptyNode));

  RegexNode EpsNode;
  EpsNode.Kind = RegexKind::Epsilon;
  EpsNode.Nullable = true;
  EpsNode.Size = 1;
  EpsNode.NumPreds = 0;
  EpsNode.StarHeight = 0;
  EpsilonRe = intern(std::move(EpsNode));

  AnyCharRe = pred(CharSet::full());
  TopRe = star(AnyCharRe);
}

uint32_t RegexManager::internSet(const CharSet &Set) {
  uint64_t H = Set.hash();
  return SetTable.findOrInsert(
      H, [&](uint32_t Idx) { return Sets[Idx] == Set; },
      [&] {
        uint32_t Idx = static_cast<uint32_t>(Sets.size());
        Sets.push_back(Set);
        return Idx;
      },
      Stats);
}

uint64_t RegexManager::hashNode(const RegexNode &Node) const {
  uint64_t H = hashMix(static_cast<uint64_t>(Node.Kind));
  H = hashCombine(H, Node.PredIdx);
  H = hashCombine(H, Node.LoopMin);
  H = hashCombine(H, Node.LoopMax);
  for (Re Kid : Node.Kids)
    H = hashCombine(H, Kid.Id);
  return H;
}

bool RegexManager::nodeEquals(const RegexNode &A, const RegexNode &B) const {
  return A.Kind == B.Kind && A.PredIdx == B.PredIdx &&
         A.LoopMin == B.LoopMin && A.LoopMax == B.LoopMax && A.Kids == B.Kids;
}

Re RegexManager::intern(RegexNode Node) {
  uint64_t H = hashNode(Node);
  Node.Hash = H;
#if SBD_AUDIT
  const size_t SizeBefore = Nodes.size();
#endif
  uint32_t Id = ConsTable.findOrInsert(
      H, [&](uint32_t Cand) { return nodeEquals(Nodes[Cand], Node); },
      [&] {
        uint32_t NewId = static_cast<uint32_t>(Nodes.size());
        Nodes.push_back(std::move(Node));
        return NewId;
      },
      Stats);
#if SBD_AUDIT
  if (Nodes.size() != SizeBefore)
    SBD_AUDIT_RE_NODE(*this, Re{Id});
#endif
  return Re{Id};
}

void RegexManager::reserve(size_t NumNodes) {
  Nodes.reserve(NumNodes);
  ConsTable.reserve(NumNodes);
}

const CharSet &RegexManager::predSet(Re R) const {
  const RegexNode &N = node(R);
  assert(N.Kind == RegexKind::Pred && "predSet on non-predicate node");
  return Sets[N.PredIdx];
}

Re RegexManager::pred(const CharSet &Set) {
  if (Set.isEmpty())
    return EmptyRe;
  RegexNode N;
  N.Kind = RegexKind::Pred;
  N.Nullable = false;
  N.PredIdx = internSet(Set);
  N.Size = 1;
  N.NumPreds = 1;
  N.StarHeight = 0;
  return intern(std::move(N));
}

Re RegexManager::word(const std::vector<uint32_t> &Cps) {
  Re Result = EpsilonRe;
  for (auto It = Cps.rbegin(); It != Cps.rend(); ++It)
    Result = concat(chr(*It), Result);
  return Result;
}

Re RegexManager::literal(const std::string &Ascii) {
  std::vector<uint32_t> Cps(Ascii.begin(), Ascii.end());
  return word(Cps);
}

Re RegexManager::concat(Re A, Re B) {
  if (A == EmptyRe || B == EmptyRe)
    return EmptyRe;
  if (A == EpsilonRe)
    return B;
  if (B == EpsilonRe)
    return A;
  // Right-associate: peel the left spine of A iteratively (A may be a long
  // chain; recursion would be O(|A|) deep).
  std::vector<Re> Spine;
  Re Cursor = A;
  while (kind(Cursor) == RegexKind::Concat) {
    Spine.push_back(node(Cursor).Kids[0]);
    Cursor = node(Cursor).Kids[1];
  }
  Spine.push_back(Cursor);
  Re Result = B;
  for (auto It = Spine.rbegin(); It != Spine.rend(); ++It) {
    Re Left = *It;
    assert(kind(Left) != RegexKind::Concat && "left spine not flat");
    RegexNode N;
    N.Kind = RegexKind::Concat;
    N.Kids = {Left, Result};
    N.Nullable = nullable(Left) && nullable(Result);
    N.Size = 1 + node(Left).Size + node(Result).Size;
    N.NumPreds = node(Left).NumPreds + node(Result).NumPreds;
    N.StarHeight = std::max(node(Left).StarHeight, node(Result).StarHeight);
    Result = intern(std::move(N));
  }
  return Result;
}

Re RegexManager::concatList(const std::vector<Re> &Rs) {
  Re Result = EpsilonRe;
  for (auto It = Rs.rbegin(); It != Rs.rend(); ++It)
    Result = concat(*It, Result);
  return Result;
}

Re RegexManager::star(Re R) {
  if (R == EpsilonRe || R == EmptyRe)
    return EpsilonRe;
  if (kind(R) == RegexKind::Star)
    return R; // (R*)* = R*
  // (R{m,n})* = R* when m <= 1: the generators include R itself.
  if (kind(R) == RegexKind::Loop && node(R).LoopMin <= 1)
    return star(node(R).Kids[0]);
  RegexNode N;
  N.Kind = RegexKind::Star;
  N.Kids = {R};
  N.Nullable = true;
  N.Size = 1 + node(R).Size;
  N.NumPreds = node(R).NumPreds;
  N.StarHeight = 1 + node(R).StarHeight;
  return intern(std::move(N));
}

Re RegexManager::loop(Re R, uint32_t Min, uint32_t Max) {
  assert(Min <= Max && "inverted loop bounds");
  // For nullable bodies the powers form an increasing chain, so
  // R{m,n} = R{0,n} (Section 3 semantics).
  if (nullable(R))
    Min = 0;
  if (Max == 0)
    return EpsilonRe;
  if (R == EpsilonRe)
    return EpsilonRe;
  if (R == EmptyRe)
    return Min == 0 ? EpsilonRe : EmptyRe;
  if (Min == 1 && Max == 1)
    return R;
  if (Min == 0 && Max == LoopInf)
    return star(R);
  // (S*){0,n} = S* — Min is already 0 here because Star is nullable.
  if (kind(R) == RegexKind::Star)
    return R;
  RegexNode N;
  N.Kind = RegexKind::Loop;
  N.Kids = {R};
  N.LoopMin = Min;
  N.LoopMax = Max;
  N.Nullable = Min == 0;
  N.Size = 1 + node(R).Size;
  N.NumPreds = node(R).NumPreds;
  N.StarHeight = node(R).StarHeight + (Max == LoopInf ? 1 : 0);
  return intern(std::move(N));
}

void RegexManager::flattenInto(RegexKind K, Re R, std::vector<Re> &Out) const {
  if (kind(R) != K) {
    Out.push_back(R);
    return;
  }
  for (Re Kid : node(R).Kids)
    Out.push_back(Kid); // children of an interned |/& node are already flat
}

Re RegexManager::makeBoolean(RegexKind K, std::vector<Re> Rs) {
  assert((K == RegexKind::Union || K == RegexKind::Inter) &&
         "makeBoolean is only for | and &");
  bool IsUnion = K == RegexKind::Union;
  Re Unit = IsUnion ? EmptyRe : TopRe;      // dropped
  Re Absorber = IsUnion ? TopRe : EmptyRe;  // dominates

  std::vector<Re> Flat;
  for (Re R : Rs)
    flattenInto(K, R, Flat);

  // Merge predicate leaves into the character algebra and filter units.
  CharSet MergedPred; // starts ⊥; for & we start ⊤ once we see a pred
  bool SawPred = false;
  std::vector<Re> Kids;
  for (Re R : Flat) {
    if (R == Absorber)
      return Absorber;
    if (R == Unit)
      continue;
    if (kind(R) == RegexKind::Pred) {
      const CharSet &S = predSet(R);
      if (!SawPred) {
        MergedPred = S;
        SawPred = true;
      } else {
        MergedPred =
            IsUnion ? MergedPred.unionWith(S) : MergedPred.intersectWith(S);
      }
      continue;
    }
    Kids.push_back(R);
  }
  if (SawPred) {
    Re Merged = pred(MergedPred); // ⊥ when the intersection is empty
    if (Merged == Absorber)
      return Absorber;
    if (Merged != Unit)
      Kids.push_back(Merged);
  }

  std::sort(Kids.begin(), Kids.end());
  Kids.erase(std::unique(Kids.begin(), Kids.end()), Kids.end());

  // ε & X = ε if ν(X) else ⊥; ε | X = X when ν(X).
  if (!IsUnion) {
    bool HasEps = std::binary_search(Kids.begin(), Kids.end(), EpsilonRe);
    if (HasEps) {
      for (Re R : Kids)
        if (!nullable(R))
          return EmptyRe;
      return EpsilonRe;
    }
  } else {
    bool HasEps = std::binary_search(Kids.begin(), Kids.end(), EpsilonRe);
    if (HasEps) {
      bool OtherNullable = false;
      for (Re R : Kids)
        if (R != EpsilonRe && nullable(R)) {
          OtherNullable = true;
          break;
        }
      if (OtherNullable)
        Kids.erase(std::find(Kids.begin(), Kids.end(), EpsilonRe));
    }
  }

  // X op ~X collapses to the absorber (R | ~R = .*; R & ~R = ⊥). When the
  // complemented operand has this same Boolean kind its children were
  // flattened into Kids, so check for them instead.
  for (Re R : Kids) {
    if (kind(R) != RegexKind::Compl)
      continue;
    Re Op = node(R).Kids[0];
    if (std::binary_search(Kids.begin(), Kids.end(), Op))
      return Absorber;
    if (kind(Op) == K) {
      bool AllPresent = true;
      for (Re OpKid : node(Op).Kids)
        if (!std::binary_search(Kids.begin(), Kids.end(), OpKid)) {
          AllPresent = false;
          break;
        }
      if (AllPresent)
        return Absorber;
    }
  }

  // Absorption/subsumption: in a union, X&Y&Z is subsumed by X&Y (and by
  // the plain kid X); dually in an intersection, X|Y|Z is subsumed by X|Y.
  // A dual-kind kid A is dropped when the member set of some other kid B is
  // a subset of A's member set (members of a non-dual kid are just {kid}).
  RegexKind Dual = IsUnion ? RegexKind::Inter : RegexKind::Union;
  auto members = [&](Re R) -> std::vector<Re> {
    if (kind(R) == Dual)
      return node(R).Kids; // sorted by construction
    return {R};
  };
  std::vector<bool> Drop(Kids.size(), false);
  bool AnyDropped = false;
  for (size_t I = 0; I != Kids.size(); ++I) {
    if (kind(Kids[I]) != Dual)
      continue;
    std::vector<Re> Mine = members(Kids[I]);
    for (size_t J = 0; J != Kids.size() && !Drop[I]; ++J) {
      if (I == J || Drop[J])
        continue;
      std::vector<Re> Other = members(Kids[J]);
      if (Other.size() < Mine.size() &&
          std::includes(Mine.begin(), Mine.end(), Other.begin(),
                        Other.end())) {
        Drop[I] = true;
        AnyDropped = true;
      }
    }
  }
  if (AnyDropped) {
    std::vector<Re> Kept;
    Kept.reserve(Kids.size());
    for (size_t I = 0; I != Kids.size(); ++I)
      if (!Drop[I])
        Kept.push_back(Kids[I]);
    Kids = std::move(Kept);
  }

  if (Kids.empty())
    return Unit;
  if (Kids.size() == 1)
    return Kids[0];

  RegexNode N;
  N.Kind = K;
  N.Kids = std::move(Kids);
  N.Size = 1;
  N.NumPreds = 0;
  N.StarHeight = 0;
  N.Nullable = !IsUnion;
  for (Re R : N.Kids) {
    N.Size += node(R).Size;
    N.NumPreds += node(R).NumPreds;
    N.StarHeight = std::max(N.StarHeight, node(R).StarHeight);
    if (IsUnion)
      N.Nullable = N.Nullable || nullable(R);
    else
      N.Nullable = N.Nullable && nullable(R);
  }
  return intern(std::move(N));
}

Re RegexManager::union_(Re A, Re B) {
  return makeBoolean(RegexKind::Union, {A, B});
}

Re RegexManager::unionList(std::vector<Re> Rs) {
  return makeBoolean(RegexKind::Union, std::move(Rs));
}

Re RegexManager::inter(Re A, Re B) {
  return makeBoolean(RegexKind::Inter, {A, B});
}

Re RegexManager::interList(std::vector<Re> Rs) {
  return makeBoolean(RegexKind::Inter, std::move(Rs));
}

Re RegexManager::complement(Re R) {
  if (kind(R) == RegexKind::Compl)
    return node(R).Kids[0]; // ~~R = R
  if (R == EmptyRe)
    return TopRe; // ~⊥ = .*
  if (R == TopRe)
    return EmptyRe; // ~.* = ⊥
  RegexNode N;
  N.Kind = RegexKind::Compl;
  N.Kids = {R};
  N.Nullable = !nullable(R);
  N.Size = 1 + node(R).Size;
  N.NumPreds = node(R).NumPreds;
  N.StarHeight = node(R).StarHeight;
  return intern(std::move(N));
}

bool RegexManager::isClean(Re R) const {
  if (R == EmptyRe)
    return false;
  for (Re Kid : node(R).Kids)
    if (!isClean(Kid))
      return false;
  return true;
}

bool RegexManager::isNormalized(Re R) const {
  const RegexNode &N = node(R);
  if (N.Kind == RegexKind::Concat &&
      kind(N.Kids[0]) == RegexKind::Concat)
    return false;
  for (Re Kid : N.Kids)
    if (!isNormalized(Kid))
      return false;
  return true;
}

bool RegexManager::isPlainRe(Re R) const {
  const RegexNode &N = node(R);
  if (N.Kind == RegexKind::Compl || N.Kind == RegexKind::Inter)
    return false;
  for (Re Kid : N.Kids)
    if (!isPlainRe(Kid))
      return false;
  return true;
}

bool RegexManager::isBooleanOverRe(Re R) const {
  const RegexNode &N = node(R);
  switch (N.Kind) {
  case RegexKind::Compl:
  case RegexKind::Union:
  case RegexKind::Inter: {
    for (Re Kid : N.Kids)
      if (!isBooleanOverRe(Kid))
        return false;
    return true;
  }
  default:
    return isPlainRe(R);
  }
}

bool RegexManager::isLoopFree(Re R) const {
  const RegexNode &N = node(R);
  if (N.Kind == RegexKind::Loop)
    return false;
  for (Re Kid : N.Kids)
    if (!isLoopFree(Kid))
      return false;
  return true;
}

std::vector<CharSet> RegexManager::collectPredicates(Re R) const {
  std::set<CharSet> Seen;
  std::vector<CharSet> Out;
  std::vector<Re> Stack = {R};
  std::set<uint32_t> Visited;
  while (!Stack.empty()) {
    Re Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur.Id).second)
      continue;
    const RegexNode &N = node(Cur);
    if (N.Kind == RegexKind::Pred && Seen.insert(Sets[N.PredIdx]).second)
      Out.push_back(Sets[N.PredIdx]);
    for (Re Kid : N.Kids)
      Stack.push_back(Kid);
  }
  return Out;
}

/// Printing precedence: Union(0) < Inter(1) < Concat(2) < Compl(3) <
/// Postfix(4) < Atom(5).
static int nodePrec(RegexKind K) {
  switch (K) {
  case RegexKind::Union:
    return 0;
  case RegexKind::Inter:
    return 1;
  case RegexKind::Concat:
    return 2;
  case RegexKind::Compl:
    return 3;
  case RegexKind::Star:
  case RegexKind::Loop:
    return 4;
  case RegexKind::Empty:
  case RegexKind::Epsilon:
  case RegexKind::Pred:
    return 5;
  }
  sbd_unreachable("covered switch");
}

void RegexManager::printPrec(Re R, int ParentPrec, std::string &Out) const {
  const RegexNode &N = node(R);
  int Prec = nodePrec(N.Kind);
  bool Paren = Prec < ParentPrec;
  if (Paren)
    Out += '(';
  switch (N.Kind) {
  case RegexKind::Empty:
    Out += "[]";
    break;
  case RegexKind::Epsilon:
    Out += "()";
    break;
  case RegexKind::Pred:
    Out += Sets[N.PredIdx].str();
    break;
  case RegexKind::Concat:
    printPrec(N.Kids[0], 3, Out);
    printPrec(N.Kids[1], 2, Out);
    break;
  case RegexKind::Star:
    printPrec(N.Kids[0], 5, Out);
    Out += '*';
    break;
  case RegexKind::Loop: {
    printPrec(N.Kids[0], 5, Out);
    Out += '{';
    Out += std::to_string(N.LoopMin);
    if (N.LoopMax == LoopInf) {
      Out += ",}";
    } else if (N.LoopMax != N.LoopMin) {
      Out += ',';
      Out += std::to_string(N.LoopMax);
      Out += '}';
    } else {
      Out += '}';
    }
    break;
  }
  case RegexKind::Union:
    for (size_t I = 0; I != N.Kids.size(); ++I) {
      if (I)
        Out += '|';
      printPrec(N.Kids[I], 1, Out);
    }
    break;
  case RegexKind::Inter:
    for (size_t I = 0; I != N.Kids.size(); ++I) {
      if (I)
        Out += '&';
      printPrec(N.Kids[I], 2, Out);
    }
    break;
  case RegexKind::Compl:
    Out += '~';
    printPrec(N.Kids[0], 4, Out);
    break;
  }
  if (Paren)
    Out += ')';
}

std::string RegexManager::toString(Re R) const {
  std::string Out;
  printPrec(R, 0, Out);
  return Out;
}
