//===- re/Regex.h - Symbolic extended regular expressions ------------------===//
///
/// \file
/// Symbolic extended regexes (ERE, Section 3 of the paper) over the CharSet
/// alphabet theory, plus the bounded loops `R{m,n}` used throughout the
/// paper's benchmarks. Terms are immutable DAG nodes interned in a
/// `RegexManager` arena: structurally equal terms (modulo the paper's
/// "similarity" laws) receive identical node ids.
///
/// The smart constructors quotient terms by exactly the laws Section 4 lists
/// as the algebra the implementation works modulo:
///   - `&`/`|` are idempotent, associative, commutative (flattened, sorted,
///     deduplicated child lists);
///   - `.*` is absorbing for `|` and the unit of `&`; `⊥` is the unit of `|`
///     and absorbing for `&` and `·`; `ε` is the unit of `·`;
///   - `~~R = R`, `~⊥ = .*`, `~.* = ⊥`;
///   - concatenation is right-associated ("normalized" in Theorem 7.3);
///   - predicate-level Boolean structure is pushed into the character
///     algebra: `φ | ψ = [φ∨ψ]`, `φ & ψ = [φ∧ψ]`, `[⊥] = ⊥`.
///
/// Working modulo these laws is what makes the set of derivatives finite
/// (Theorem 7.1) and keeps the solver's graph small.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_RE_REGEX_H
#define SBD_RE_REGEX_H

#include "charset/CharSet.h"
#include "support/Metrics.h"
#include "support/InternTable.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sbd {

/// The syntactic constructors of ERE (+ bounded loops).
enum class RegexKind : uint8_t {
  Empty,   ///< ⊥ — the empty language
  Epsilon, ///< ε — the singleton {ϵ}
  Pred,    ///< φ — one character satisfying a CharSet predicate
  Concat,  ///< R1 · R2 (binary, right-associated)
  Star,    ///< R*
  Loop,    ///< R{m,n}; n == LoopInf means unbounded
  Union,   ///< R1 | ... | Rk, k >= 2, flattened/sorted/deduped
  Inter,   ///< R1 & ... & Rk, k >= 2, flattened/sorted/deduped
  Compl,   ///< ~R
};

/// Sentinel for an unbounded loop upper bound.
inline constexpr uint32_t LoopInf = std::numeric_limits<uint32_t>::max();

/// An interned regex handle. Cheap to copy; valid only together with the
/// RegexManager that produced it. Equality is semantic equality modulo the
/// similarity laws above (same manager).
struct Re {
  uint32_t Id = 0;

  friend bool operator==(Re A, Re B) { return A.Id == B.Id; }
  friend bool operator!=(Re A, Re B) { return A.Id != B.Id; }
  friend bool operator<(Re A, Re B) { return A.Id < B.Id; }
};

/// Interned storage for one regex node. Exposed read-only via
/// RegexManager::node().
struct RegexNode {
  RegexKind Kind;
  bool Nullable;         ///< ν(R): ϵ ∈ L(R)
  uint32_t PredIdx = 0;  ///< Pred only: index into the manager's CharSet table
  uint32_t LoopMin = 0;  ///< Loop only
  uint32_t LoopMax = 0;  ///< Loop only (LoopInf = unbounded)
  std::vector<Re> Kids;  ///< children (binary for Concat, n-ary for |, &)
  uint32_t Size;         ///< syntax-tree node count (shared nodes recounted)
  uint32_t NumPreds;     ///< ♯(R): predicate leaves in the syntax tree
  uint32_t StarHeight;   ///< nesting depth of * / unbounded loops
  uint64_t Hash = 0;     ///< precomputed structural hash (interning key)
};

/// Arena + hash-consing table for regexes, and the home of the smart
/// constructors. All `Re` handles flowing through the library belong to one
/// manager; mixing managers is a programming error.
class RegexManager {
public:
  RegexManager();

  /// --- Leaf constructors ---------------------------------------------------

  /// ⊥ (empty language).
  Re empty() const { return EmptyRe; }
  /// ε.
  Re epsilon() const { return EpsilonRe; }
  /// `.` — any single character.
  Re anyChar() const { return AnyCharRe; }
  /// `.*` — the full language Σ*; absorbing for `|`, unit of `&`.
  Re top() const { return TopRe; }
  /// Predicate leaf [φ]; collapses to ⊥ when φ ≡ ⊥.
  Re pred(const CharSet &Set);
  /// Single concrete character.
  Re chr(uint32_t Cp) { return pred(CharSet::singleton(Cp)); }
  /// Concatenation of the characters of a code-point word (ε when empty).
  Re word(const std::vector<uint32_t> &Cps);
  /// Concatenation of the bytes of an ASCII string literal.
  Re literal(const std::string &Ascii);

  /// --- Composite constructors (normalizing) --------------------------------

  /// R1 · R2, right-associated; ⊥ absorbs, ε is the unit.
  Re concat(Re A, Re B);
  /// Folds a list into a right-associated concatenation.
  Re concatList(const std::vector<Re> &Rs);
  /// R*.
  Re star(Re R);
  /// R{Min,Max} (Max may be LoopInf). Requires Min <= Max and Max >= 1
  /// unless Min == Max == 0 (which is ε).
  Re loop(Re R, uint32_t Min, uint32_t Max);
  /// R{0,1}.
  Re opt(Re R) { return loop(R, 0, 1); }
  /// R{1,∞}.
  Re plus(Re R) { return loop(R, 1, LoopInf); }
  /// R1 | R2 (ACI-normalized).
  Re union_(Re A, Re B);
  /// OR(S) over a list (⊥ when empty).
  Re unionList(std::vector<Re> Rs);
  /// R1 & R2 (ACI-normalized).
  Re inter(Re A, Re B);
  /// AND(S) over a list (.* when empty).
  Re interList(std::vector<Re> Rs);
  /// ~R.
  Re complement(Re R);
  /// R1 & ~R2 — difference convenience.
  Re diff(Re A, Re B) { return inter(A, complement(B)); }

  /// --- Node access ---------------------------------------------------------

  const RegexNode &node(Re R) const { return Nodes[R.Id]; }
  RegexKind kind(Re R) const { return Nodes[R.Id].Kind; }
  /// ν(R): does R accept the empty string?
  bool nullable(Re R) const { return Nodes[R.Id].Nullable; }
  /// The CharSet of a Pred node.
  const CharSet &predSet(Re R) const;
  /// Number of interned nodes (diagnostics).
  size_t numNodes() const { return Nodes.size(); }

  /// Test-only backdoor for the audit negative tests (tests/AuditTest.cpp):
  /// mutable access to interned storage so a test can corrupt an invariant
  /// and prove sbd::audit detects it. Breaks the hash-consing contract —
  /// never call outside audit tests.
  RegexNode &mutableNodeForAudit(Re R) { return Nodes[R.Id]; }

  /// --- Capacity & instrumentation -----------------------------------------

  /// Pre-sizes the node arena and interning tables for roughly \p NumNodes
  /// interned terms (avoids rehash/reallocation churn on large workloads).
  void reserve(size_t NumNodes);
  /// Interning/probe counters (see support/CacheStats.h).
  const CacheStats &stats() const { return Stats; }
  void resetStats() { Stats.reset(); }

  /// --- Structural properties (Theorem 7.3 side conditions) ----------------

  /// True when R contains no ⊥ subterm (predicates are never unsat by
  /// construction). Every non-⊥ term built by this manager is clean.
  bool isClean(Re R) const;
  /// True when every concatenation is right-associated. Always true for
  /// terms built by this manager; exists to validate the invariant.
  bool isNormalized(Re R) const;
  /// R ∈ RE: no `~` or `&` anywhere.
  bool isPlainRe(Re R) const;
  /// R ∈ B(RE): Boolean combination (|, &, ~) of plain RE terms.
  bool isBooleanOverRe(Re R) const;
  /// True when R contains no bounded-loop node (the paper's RE grammar has
  /// no loops; Theorem 7.3's ♯(R)+3 bound presumes loop-free terms).
  bool isLoopFree(Re R) const;
  /// ΨR: the distinct predicates occurring in R.
  std::vector<CharSet> collectPredicates(Re R) const;

  /// Renders R using the textual regex syntax accepted by RegexParser.
  std::string toString(Re R) const;

private:
  Re intern(RegexNode Node);
  uint64_t hashNode(const RegexNode &Node) const;
  bool nodeEquals(const RegexNode &A, const RegexNode &B) const;
  uint32_t internSet(const CharSet &Set);

  /// Appends R's children if R has the given associative kind, else R
  /// itself. Used to flatten `|` / `&`.
  void flattenInto(RegexKind K, Re R, std::vector<Re> &Out) const;

  Re makeBoolean(RegexKind K, std::vector<Re> Rs);

  void printPrec(Re R, int ParentPrec, std::string &Out) const;

  std::vector<RegexNode> Nodes;
  InternTable ConsTable;
  std::vector<CharSet> Sets;
  InternTable SetTable;
  CacheStats Stats;

  Re EmptyRe, EpsilonRe, AnyCharRe, TopRe;
};

} // namespace sbd

#endif // SBD_RE_REGEX_H
