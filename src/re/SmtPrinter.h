//===- re/SmtPrinter.h - Regex → SMT-LIB term rendering --------------------===//
///
/// \file
/// Renders interned regexes back into SMT-LIB2 `re.*` terms and whole
/// benchmark instances into `.smt2` scripts. Together with the reader in
/// SmtSolver this closes the loop: our generated benchmark suites can be
/// exported as an SMT-LIB corpus (the form the paper's artifact ships its
/// benchmarks in) and re-consumed by this or any other SMT string solver.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_RE_SMTPRINTER_H
#define SBD_RE_SMTPRINTER_H

#include "re/Regex.h"

#include <optional>
#include <string>

namespace sbd {

/// Renders R as an SMT-LIB regular-expression term (`re.++`, `re.union`,
/// `re.inter`, `re.comp`, `re.*`, `(_ re.loop m n)`, `re.range`,
/// `str.to_re`, `re.none`, `re.all`, `re.allchar`).
std::string regexToSmtTerm(const RegexManager &M, Re R);

/// Renders a complete script asserting `(str.in_re s R)` for a fresh
/// string constant, with an optional `(set-info :status …)` label.
std::string regexToSmtScript(const RegexManager &M, Re R,
                             std::optional<bool> ExpectedSat,
                             const std::string &VarName = "s");

/// Escapes a code-point word as an SMT-LIB string literal (doubling
/// quotes; non-ASCII via \\u{...} escapes understood by SMT-LIB 2.6).
std::string smtStringLiteral(const std::vector<uint32_t> &Word);

/// Decodes the *contents* of an SMT-LIB string literal (quotes already
/// stripped, doubled quotes already collapsed by the reader): UTF-8 bytes
/// plus the SMT-LIB 2.6 escapes \\u{H+} and \\uHHHH.
std::vector<uint32_t> decodeSmtString(const std::string &Contents);

} // namespace sbd

#endif // SBD_RE_SMTPRINTER_H
