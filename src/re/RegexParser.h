//===- re/RegexParser.h - Textual regex syntax ------------------------------===//
///
/// \file
/// Parser for the extended regex surface syntax used by the paper's examples
/// and benchmarks. Grammar (loosest to tightest binding):
///
///   union   ::= inter ('|' inter)*
///   inter   ::= concat ('&' concat)*
///   concat  ::= unary+
///   unary   ::= '~' unary | postfix
///   postfix ::= atom ('*' | '+' | '?' | '{' n (',' n?)? '}')*
///   atom    ::= '(' union ')' | '()' | '.' | class | escape | literal
///   class   ::= '[' '^'? item* ']'           ('[]' is ⊥, '[^]' is '.')
///
/// Escapes: \d \D \w \W \s \S \t \n \r \f \v \0 \xHH \uHHHH \U{H+}, and
/// backslash before any metacharacter. Input is interpreted as UTF-8.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_RE_REGEXPARSER_H
#define SBD_RE_REGEXPARSER_H

#include "re/Regex.h"

#include <string>

namespace sbd {

/// Outcome of a parse; on failure `Error` describes the problem and
/// `ErrorPos` is the code-point offset where it was detected.
struct RegexParseResult {
  bool Ok = false;
  Re Value{};
  std::string Error;
  size_t ErrorPos = 0;
};

/// Parses \p Pattern into an interned regex of \p Manager.
RegexParseResult parseRegex(RegexManager &Manager, const std::string &Pattern);

/// Convenience for tests and examples: parses or aborts with a diagnostic.
Re parseRegexOrDie(RegexManager &Manager, const std::string &Pattern);

} // namespace sbd

#endif // SBD_RE_REGEXPARSER_H
