//===- re/SmtPrinter.cpp - Regex → SMT-LIB term rendering -------------------===//

#include "re/SmtPrinter.h"

#include "support/Debug.h"
#include "support/Unicode.h"

#include <cstdio>

using namespace sbd;

std::string sbd::smtStringLiteral(const std::vector<uint32_t> &Word) {
  std::string Out = "\"";
  for (uint32_t Cp : Word) {
    if (Cp == '"') {
      Out += "\"\""; // SMT-LIB doubles quotes
      continue;
    }
    if (Cp >= 0x20 && Cp <= 0x7E && Cp != '\\') {
      Out.push_back(static_cast<char>(Cp));
      continue;
    }
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "\\u{%X}", Cp);
    Out += Buf;
  }
  Out += '"';
  return Out;
}

std::vector<uint32_t> sbd::decodeSmtString(const std::string &Contents) {
  std::vector<uint32_t> Raw = fromUtf8(Contents);
  std::vector<uint32_t> Out;
  size_t I = 0;
  auto hexVal = [](uint32_t C) -> int {
    if (C >= '0' && C <= '9')
      return static_cast<int>(C - '0');
    if (C >= 'a' && C <= 'f')
      return static_cast<int>(C - 'a' + 10);
    if (C >= 'A' && C <= 'F')
      return static_cast<int>(C - 'A' + 10);
    return -1;
  };
  while (I < Raw.size()) {
    if (Raw[I] != '\\' || I + 1 >= Raw.size() || Raw[I + 1] != 'u') {
      Out.push_back(Raw[I++]);
      continue;
    }
    // \u{H+} or \uHHHH; anything malformed stays literal.
    size_t J = I + 2;
    uint32_t Value = 0;
    bool Ok = false;
    if (J < Raw.size() && Raw[J] == '{') {
      size_t K = J + 1;
      int Digits = 0;
      while (K < Raw.size() && Raw[K] != '}') {
        int D = hexVal(Raw[K]);
        if (D < 0 || ++Digits > 6)
          break;
        Value = Value * 16 + static_cast<uint32_t>(D);
        ++K;
      }
      if (K < Raw.size() && Raw[K] == '}' && Digits > 0 &&
          Value <= MaxCodePoint) {
        Ok = true;
        J = K + 1;
      }
    } else if (J + 3 < Raw.size()) {
      Value = 0;
      Ok = true;
      for (size_t K = J; K != J + 4; ++K) {
        int D = hexVal(Raw[K]);
        if (D < 0) {
          Ok = false;
          break;
        }
        Value = Value * 16 + static_cast<uint32_t>(D);
      }
      if (Ok)
        J = J + 4;
    }
    if (Ok) {
      Out.push_back(Value);
      I = J;
    } else {
      Out.push_back(Raw[I++]);
    }
  }
  return Out;
}

namespace {

/// A single code point as an SMT string literal.
std::string charLiteral(uint32_t Cp) { return smtStringLiteral({Cp}); }

std::string predToTerm(const CharSet &Set) {
  if (Set.isEmpty())
    return "re.none";
  if (Set.isFull())
    return "re.allchar";
  std::string Out;
  size_t Count = 0;
  for (const CharRange &R : Set.ranges()) {
    std::string Piece =
        R.Lo == R.Hi
            ? "(str.to_re " + charLiteral(R.Lo) + ")"
            : "(re.range " + charLiteral(R.Lo) + " " + charLiteral(R.Hi) +
                  ")";
    if (Count == 0)
      Out = Piece;
    else
      Out += " " + Piece;
    ++Count;
  }
  if (Count == 1)
    return Out;
  return "(re.union " + Out + ")";
}

std::string toTerm(const RegexManager &M, Re R);

/// Renders a concatenation spine, packing runs of singleton characters into
/// one str.to_re literal.
std::string concatToTerm(const RegexManager &M, Re R) {
  std::vector<std::string> Parts;
  std::vector<uint32_t> PendingLiteral;
  auto flush = [&]() {
    if (PendingLiteral.empty())
      return;
    Parts.push_back("(str.to_re " + smtStringLiteral(PendingLiteral) + ")");
    PendingLiteral.clear();
  };
  Re Cur = R;
  while (true) {
    Re Head = Cur;
    bool HasTail = M.kind(Cur) == RegexKind::Concat;
    if (HasTail)
      Head = M.node(Cur).Kids[0];
    if (M.kind(Head) == RegexKind::Pred && M.predSet(Head).count() == 1) {
      PendingLiteral.push_back(*M.predSet(Head).minElement());
    } else {
      flush();
      Parts.push_back(toTerm(M, Head));
    }
    if (!HasTail)
      break;
    Cur = M.node(Cur).Kids[1];
  }
  flush();
  if (Parts.size() == 1)
    return Parts[0];
  std::string Out = "(re.++";
  for (const std::string &P : Parts)
    Out += " " + P;
  return Out + ")";
}

std::string toTerm(const RegexManager &M, Re R) {
  const RegexNode &N = M.node(R);
  switch (N.Kind) {
  case RegexKind::Empty:
    return "re.none";
  case RegexKind::Epsilon:
    return "(str.to_re \"\")";
  case RegexKind::Pred:
    if (M.predSet(R).count() == 1)
      return "(str.to_re " + charLiteral(*M.predSet(R).minElement()) + ")";
    return predToTerm(M.predSet(R));
  case RegexKind::Concat:
    return concatToTerm(M, R);
  case RegexKind::Star: {
    Re Kid = N.Kids[0];
    if (M.kind(Kid) == RegexKind::Pred && M.predSet(Kid).isFull())
      return "re.all";
    return "(re.* " + toTerm(M, Kid) + ")";
  }
  case RegexKind::Loop: {
    std::string Body = toTerm(M, N.Kids[0]);
    if (N.LoopMax == LoopInf) {
      if (N.LoopMin == 1)
        return "(re.+ " + Body + ")";
      // r{m,∞} = r{m,m} · r*.
      return "(re.++ ((_ re.loop " + std::to_string(N.LoopMin) + " " +
             std::to_string(N.LoopMin) + ") " + Body + ") (re.* " + Body +
             "))";
    }
    if (N.LoopMin == 0 && N.LoopMax == 1)
      return "(re.opt " + Body + ")";
    return "((_ re.loop " + std::to_string(N.LoopMin) + " " +
           std::to_string(N.LoopMax) + ") " + Body + ")";
  }
  case RegexKind::Union:
  case RegexKind::Inter: {
    std::string Out =
        N.Kind == RegexKind::Union ? "(re.union" : "(re.inter";
    for (Re Kid : N.Kids)
      Out += " " + toTerm(M, Kid);
    return Out + ")";
  }
  case RegexKind::Compl:
    return "(re.comp " + toTerm(M, N.Kids[0]) + ")";
  }
  sbd_unreachable("covered switch");
}

} // namespace

std::string sbd::regexToSmtTerm(const RegexManager &M, Re R) {
  return toTerm(M, R);
}

std::string sbd::regexToSmtScript(const RegexManager &M, Re R,
                                  std::optional<bool> ExpectedSat,
                                  const std::string &VarName) {
  std::string Out = "(set-logic QF_S)\n";
  if (ExpectedSat.has_value())
    Out += std::string("(set-info :status ") +
           (*ExpectedSat ? "sat" : "unsat") + ")\n";
  Out += "(declare-const " + VarName + " String)\n";
  Out += "(assert (str.in_re " + VarName + " " + regexToSmtTerm(M, R) +
         "))\n";
  Out += "(check-sat)\n";
  return Out;
}
