//===- baselines/BrzozowskiMintermSolver.cpp - Global mintermization --------===//

#include "baselines/BrzozowskiMintermSolver.h"

#include "charset/AlphabetCompressor.h"
#include "support/Stopwatch.h"

#include <algorithm>

#include <deque>
#include <unordered_map>

using namespace sbd;

SolveResult BrzozowskiMintermSolver::solve(Re R, const SolveOptions &Opts) {
  Stopwatch Timer;
  RegexManager &M = Engine.regexManager();
  SolveResult Result;
  Result.Stats.Engine = SolveEngine::BrzMinterm;

  // Eager alphabet finitization: one representative per minterm of ΨR.
  // D_a(R') = D_b(R') for â = b̂ whenever R' is a derivative of R, so the
  // representatives cover all behaviours (Theorem 7.1's argument).
  AlphabetCompressor Compressor(M.collectPredicates(R));
  std::vector<uint32_t> Letters;
  Letters.reserve(Compressor.numClasses());
  for (uint32_t Cls = 0; Cls != Compressor.numClasses(); ++Cls)
    Letters.push_back(Compressor.representative(static_cast<uint16_t>(Cls)));

  struct Reached {
    Re Parent;
    uint32_t Ch;
    bool HasParent;
  };
  std::unordered_map<uint32_t, Reached> Visited;
  std::deque<Re> Queue;

  auto finishSat = [&](Re Final) {
    std::vector<uint32_t> Word;
    Re Cur = Final;
    while (Visited.at(Cur.Id).HasParent) {
      Word.push_back(Visited.at(Cur.Id).Ch);
      Cur = Visited.at(Cur.Id).Parent;
    }
    std::reverse(Word.begin(), Word.end());
    Result.Status = SolveStatus::Sat;
    Result.Witness = std::move(Word);
  };

  Visited.emplace(R.Id, Reached{R, 0, false});
  if (M.nullable(R)) {
    finishSat(R);
    Result.StatesExplored = 1;
    Result.TimeUs = Timer.elapsedUs();
    Result.Stats.TotalUs = Result.TimeUs;
    Result.Stats.SearchUs = Result.TimeUs;
    return Result;
  }
  Queue.push_back(R);

  size_t Steps = 0;
  while (!Queue.empty()) {
    if (Opts.MaxStates && Visited.size() > Opts.MaxStates) {
      Result.Status = SolveStatus::Unknown;
      Result.Stop = StopReason::StateBudget;
      Result.Note = "state budget exhausted";
      Result.StatesExplored = Visited.size();
      Result.TimeUs = Timer.elapsedUs();
      Result.Stats.TotalUs = Result.TimeUs;
      Result.Stats.SearchUs = Result.TimeUs;
      return Result;
    }
    if (Opts.TimeoutMs > 0 && (++Steps & 0x0F) == 0 &&
        Timer.elapsedMs() > Opts.TimeoutMs) {
      Result.Status = SolveStatus::Unknown;
      Result.Stop = StopReason::Timeout;
      Result.Note = "timeout";
      Result.StatesExplored = Visited.size();
      Result.TimeUs = Timer.elapsedUs();
      Result.Stats.TotalUs = Result.TimeUs;
      Result.Stats.SearchUs = Result.TimeUs;
      return Result;
    }
    Re Cur = Queue.front();
    Queue.pop_front();
    // Branch over every letter of the finitized alphabet.
    for (uint32_t Ch : Letters) {
      Re Next = Engine.brzozowski(Cur, Ch);
      if (Next == M.empty() || Visited.count(Next.Id))
        continue;
      Visited.emplace(Next.Id, Reached{Cur, Ch, true});
      if (M.nullable(Next)) {
        finishSat(Next);
        Result.StatesExplored = Visited.size();
        Result.TimeUs = Timer.elapsedUs();
        Result.Stats.TotalUs = Result.TimeUs;
        Result.Stats.SearchUs = Result.TimeUs;
        return Result;
      }
      Queue.push_back(Next);
    }
  }

  // Exhausted the (finite) derivative space without finding a nullable
  // regex: the language is empty.
  Result.Status = SolveStatus::Unsat;
  Result.StatesExplored = Visited.size();
  Result.TimeUs = Timer.elapsedUs();
  Result.Stats.TotalUs = Result.TimeUs;
  Result.Stats.SearchUs = Result.TimeUs;
  return Result;
}
