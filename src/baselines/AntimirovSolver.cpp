//===- baselines/AntimirovSolver.cpp - Partial-derivative baseline ----------===//

#include "baselines/AntimirovSolver.h"

#include "support/Debug.h"
#include "support/Stopwatch.h"

#include <algorithm>

#include <deque>
#include <unordered_map>

using namespace sbd;

bool sbd::linearForm(RegexManager &M, Re R, std::vector<LinearArc> &Out) {
  // Copy the node: recursive calls below may grow the arena.
  RegexNode N = M.node(R);
  switch (N.Kind) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
    return true;
  case RegexKind::Pred:
    Out.push_back({M.predSet(R), M.epsilon()});
    return true;
  case RegexKind::Concat: {
    Re A = N.Kids[0], B = N.Kids[1];
    std::vector<LinearArc> Left;
    if (!linearForm(M, A, Left))
      return false;
    for (LinearArc &Arc : Left)
      Out.push_back({std::move(Arc.Guard), M.concat(Arc.Target, B)});
    if (M.nullable(A) && !linearForm(M, B, Out))
      return false;
    return true;
  }
  case RegexKind::Star: {
    std::vector<LinearArc> Body;
    if (!linearForm(M, N.Kids[0], Body))
      return false;
    for (LinearArc &Arc : Body)
      Out.push_back({std::move(Arc.Guard), M.concat(Arc.Target, R)});
    return true;
  }
  case RegexKind::Loop: {
    Re BodyRe = N.Kids[0];
    uint32_t Min = N.LoopMin == 0 ? 0 : N.LoopMin - 1;
    uint32_t Max = N.LoopMax == LoopInf ? LoopInf : N.LoopMax - 1;
    Re Rest = M.loop(BodyRe, Min, Max);
    std::vector<LinearArc> Body;
    if (!linearForm(M, BodyRe, Body))
      return false;
    for (LinearArc &Arc : Body)
      Out.push_back({std::move(Arc.Guard), M.concat(Arc.Target, Rest)});
    return true;
  }
  case RegexKind::Union: {
    for (Re Kid : N.Kids)
      if (!linearForm(M, Kid, Out))
        return false;
    return true;
  }
  case RegexKind::Inter: {
    // Pairwise product of the children's linear forms ([17]).
    std::vector<LinearArc> Acc;
    bool First = true;
    for (Re Kid : N.Kids) {
      std::vector<LinearArc> KidArcs;
      if (!linearForm(M, Kid, KidArcs))
        return false;
      if (First) {
        Acc = std::move(KidArcs);
        First = false;
        continue;
      }
      std::vector<LinearArc> Next;
      for (const LinearArc &A : Acc)
        for (const LinearArc &B : KidArcs) {
          CharSet G = A.Guard.intersectWith(B.Guard);
          if (G.isEmpty())
            continue;
          Re Target = M.inter(A.Target, B.Target);
          if (Target == M.empty())
            continue;
          Next.push_back({std::move(G), Target});
        }
      Acc = std::move(Next);
    }
    Out.insert(Out.end(), Acc.begin(), Acc.end());
    return true;
  }
  case RegexKind::Compl:
    return false; // not in the positive fragment
  }
  sbd_unreachable("covered switch");
}

std::optional<Snfa> sbd::buildPartialDerivativeNfa(RegexManager &M, Re R,
                                                   size_t MaxStates) {
  Snfa A;
  std::unordered_map<uint32_t, uint32_t> Index; // Re.Id -> state
  std::deque<Re> Work;
  auto intern = [&](Re State) -> std::optional<uint32_t> {
    auto It = Index.find(State.Id);
    if (It != Index.end())
      return It->second;
    if (MaxStates && A.numStates() >= MaxStates)
      return std::nullopt;
    uint32_t Idx = static_cast<uint32_t>(A.numStates());
    A.Trans.emplace_back();
    A.Final.push_back(M.nullable(State));
    Index.emplace(State.Id, Idx);
    Work.push_back(State);
    return Idx;
  };
  auto Init = intern(R);
  if (!Init)
    return std::nullopt;
  A.Initial = {*Init};
  while (!Work.empty()) {
    Re Cur = Work.front();
    Work.pop_front();
    uint32_t From = Index.at(Cur.Id);
    std::vector<LinearArc> Arcs;
    if (!linearForm(M, Cur, Arcs))
      return std::nullopt; // complement is outside the fragment
    for (const LinearArc &Arc : Arcs) {
      if (Arc.Target == M.empty())
        continue;
      auto To = intern(Arc.Target);
      if (!To)
        return std::nullopt;
      A.Trans[From].push_back({Arc.Guard, *To});
    }
  }
  return A;
}

bool AntimirovSolver::supports(const RegexManager &Mgr, Re R) {
  // Fragment test = "does R mention `~` anywhere", answered from the
  // analyzer's per-node constructor counts.
  analysis::RegexAnalyzer A(Mgr);
  return A.analyze(R).NumCompl == 0;
}

SolveResult AntimirovSolver::solve(Re R, const SolveOptions &Opts) {
  Stopwatch Timer;
  SolveResult Result;
  Result.Stats.Engine = SolveEngine::Antimirov;

  if (!supports(R)) {
    Result.Status = SolveStatus::Unsupported;
    Result.Stop = StopReason::UnsupportedFragment;
    Result.Note = "complement is outside the partial-derivative fragment";
    return Result;
  }

  struct Reached {
    Re Parent;
    uint32_t Ch;
    bool HasParent;
  };
  std::unordered_map<uint32_t, Reached> Visited;
  std::deque<Re> Queue;

  auto finishSat = [&](Re Final) {
    std::vector<uint32_t> Word;
    Re Cur = Final;
    while (Visited.at(Cur.Id).HasParent) {
      Word.push_back(Visited.at(Cur.Id).Ch);
      Cur = Visited.at(Cur.Id).Parent;
    }
    std::reverse(Word.begin(), Word.end());
    Result.Status = SolveStatus::Sat;
    Result.Witness = std::move(Word);
  };

  Visited.emplace(R.Id, Reached{R, 0, false});
  if (M.nullable(R)) {
    finishSat(R);
    Result.StatesExplored = 1;
    Result.Stats.SolverSteps = 1;
    Result.TimeUs = Timer.elapsedUs();
    Result.Stats.TotalUs = Result.TimeUs;
    Result.Stats.SearchUs = Result.TimeUs;
    return Result;
  }
  Queue.push_back(R);

  size_t Steps = 0;
  while (!Queue.empty()) {
    if (Opts.MaxStates && Visited.size() > Opts.MaxStates) {
      Result.Status = SolveStatus::Unknown;
      Result.Stop = StopReason::StateBudget;
      Result.Note = "state budget exhausted";
      break;
    }
    if (Opts.TimeoutMs > 0 && (++Steps & 0x3F) == 0 &&
        Timer.elapsedMs() > Opts.TimeoutMs) {
      Result.Status = SolveStatus::Unknown;
      Result.Stop = StopReason::Timeout;
      Result.Note = "timeout";
      break;
    }
    Re Cur = Queue.front();
    Queue.pop_front();
    std::vector<LinearArc> Arcs;
    if (!linearForm(M, Cur, Arcs)) {
      Result.Status = SolveStatus::Unsupported;
      Result.Stop = StopReason::UnsupportedFragment;
      Result.Note = "complement is outside the partial-derivative fragment";
      Result.StatesExplored = Visited.size();
      Result.Stats.SolverSteps = Visited.size();
      Result.TimeUs = Timer.elapsedUs();
      Result.Stats.TotalUs = Result.TimeUs;
      Result.Stats.SearchUs = Result.TimeUs;
      return Result;
    }
    for (const LinearArc &Arc : Arcs) {
      Re Next = Arc.Target;
      if (Next == M.empty() || Visited.count(Next.Id))
        continue;
      auto Ch = Arc.Guard.sample();
      assert(Ch && "linear-form guards are satisfiable");
      Visited.emplace(Next.Id, Reached{Cur, *Ch, true});
      if (M.nullable(Next)) {
        finishSat(Next);
        Result.StatesExplored = Visited.size();
        Result.Stats.SolverSteps = Visited.size();
        Result.TimeUs = Timer.elapsedUs();
        Result.Stats.TotalUs = Result.TimeUs;
        Result.Stats.SearchUs = Result.TimeUs;
        return Result;
      }
      Queue.push_back(Next);
    }
  }

  if (Result.Status == SolveStatus::Unknown && !Result.Note.empty()) {
    Result.StatesExplored = Visited.size();
    Result.Stats.SolverSteps = Visited.size();
    Result.TimeUs = Timer.elapsedUs();
    Result.Stats.TotalUs = Result.TimeUs;
    Result.Stats.SearchUs = Result.TimeUs;
    return Result;
  }
  Result.Status = SolveStatus::Unsat;
  Result.StatesExplored = Visited.size();
  Result.Stats.SolverSteps = Visited.size();
  Result.TimeUs = Timer.elapsedUs();
  Result.Stats.TotalUs = Result.TimeUs;
  Result.Stats.SearchUs = Result.TimeUs;
  return Result;
}
