//===- baselines/AntimirovSolver.h - Partial-derivative baseline ------------===//
///
/// \file
/// Symbolic Antimirov (partial-derivative) solver for the positive fragment
/// of ERE — the approach of Liang et al. [43] that CVC4's regex engine is
/// based on, with intersection handled by pairwise products of partial
/// derivatives in the style of Caron–Champarnaud–Mignot [17]. Complement is
/// out of scope for this technique (as in the paper's evaluation, where the
/// corresponding solvers error on explicit `~`), so inputs containing `~`
/// return Unsupported.
///
/// The "linear form" lin(R) computed here is the symbolic counterpart of
/// Antimirov's ∂: a set of (guard, target) pairs such that
/// L(R) ∖ {ε} = ⋃ {a·L(t) : (φ,t) ∈ lin(R), a ∈ [[φ]]}.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_BASELINES_ANTIMIROVSOLVER_H
#define SBD_BASELINES_ANTIMIROVSOLVER_H

#include "analysis/RegexAnalyzer.h"
#include "automata/Sfa.h"
#include "re/Regex.h"
#include "solver/SolverResult.h"

#include <optional>
#include <vector>

namespace sbd {

/// One symbolic partial derivative: reading a character in [[Guard]] can
/// continue with Target.
struct LinearArc {
  CharSet Guard;
  Re Target;
};

/// Computes the symbolic linear form of R. Returns false (and leaves Out
/// untouched) when R contains complement.
bool linearForm(RegexManager &M, Re R, std::vector<LinearArc> &Out);

/// Builds the partial-derivative automaton of a positive regex: states are
/// the partial derivatives (the closure of linearForm targets), which for
/// plain RE is Antimirov's classical NFA with at most ♯(R)+1 states —
/// typically smaller than the position (Glushkov) automaton. Returns
/// nullopt when R contains complement or the closure exceeds \p MaxStates.
std::optional<Snfa> buildPartialDerivativeNfa(RegexManager &M, Re R,
                                              size_t MaxStates = 0);

/// Partial-derivative satisfiability solver (positive fragment).
class AntimirovSolver {
public:
  explicit AntimirovSolver(RegexManager &Mgr) : M(Mgr) {}

  /// Decides nonemptiness of L(R); Unsupported when R contains `~`.
  SolveResult solve(Re R, const SolveOptions &Opts = {});

  /// True when R is inside the positive fragment this solver handles (no
  /// `~` anywhere). O(1) after the solver's analyzer has folded R — the
  /// check is a RegexFeatures lookup, so it cannot drift from the
  /// analyzer's view of the term.
  bool supports(Re R) { return Analyzer.analyze(R).NumCompl == 0; }

  /// Stateless variant for callers without a solver instance (tests). Runs
  /// a throwaway analyzer: one memoized O(DAG) fold, unlike the old
  /// recursive tree walk that was exponential on shared sub-DAGs.
  static bool supports(const RegexManager &Mgr, Re R);

private:
  RegexManager &M;
  analysis::RegexAnalyzer Analyzer{M};
};

} // namespace sbd

#endif // SBD_BASELINES_ANTIMIROVSOLVER_H
