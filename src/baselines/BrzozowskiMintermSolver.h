//===- baselines/BrzozowskiMintermSolver.h - Global mintermization ----------===//
///
/// \file
/// Classical Brzozowski-derivative solver over an eagerly finitized
/// alphabet (Section 8.3's "mintermization" approach): compute the minterms
/// of *all* predicates ΨR of the input up front, treat each minterm as one
/// letter of a finite alphabet, and explore classical derivatives
/// per-letter. Handles all of ERE (Brzozowski derivatives extend to `&`/`~`
/// over a finite alphabet), but pays:
///
///  - up-front global mintermization (worst case 2^|ΨR| blocks), and
///  - branching factor |Minterms(ΨR)| at *every* state, even where only one
///    predicate is locally relevant — the cost transition regexes avoid by
///    keeping conditionals local and lazy.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_BASELINES_BRZOZOWSKIMINTERMSOLVER_H
#define SBD_BASELINES_BRZOZOWSKIMINTERMSOLVER_H

#include "core/Derivatives.h"
#include "solver/SolverResult.h"

namespace sbd {

/// Brzozowski + global minterms baseline.
class BrzozowskiMintermSolver {
public:
  explicit BrzozowskiMintermSolver(DerivativeEngine &Eng)
      : Engine(Eng) {}

  /// Decides nonemptiness of L(R) by exhaustive derivative exploration over
  /// the mintermized alphabet.
  SolveResult solve(Re R, const SolveOptions &Opts = {});

private:
  DerivativeEngine &Engine;
};

} // namespace sbd

#endif // SBD_BASELINES_BRZOZOWSKIMINTERMSOLVER_H
