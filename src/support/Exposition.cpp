//===- support/Exposition.cpp - Metrics exposition writer (sbd::obs) --------===//

#include "support/Exposition.h"

#include "support/Histogram.h"
#include "support/Metrics.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <mutex>

using namespace sbd;
using namespace sbd::obs;

namespace {

/// Prometheus metric names must be [a-zA-Z0-9_:]; the registry names are
/// already snake_case, so prefixing is enough.
void appendMetricName(std::string &Out, const char *Name) {
  Out += "sbd_";
  Out += Name;
}

std::atomic<bool> DumpRequested{false};

/// Guarded by ExpoMu: where an armed SIGUSR1 dump writes to.
std::mutex ExpoMu;
std::string ArmedPath;

extern "C" void sbdExpositionSignalHandler(int) {
  // Async-signal-safe: only flips the flag; pollExposition() does the I/O.
  DumpRequested.store(true, std::memory_order_relaxed);
}

} // namespace

std::string sbd::obs::prometheusText() {
  MetricShard Counters = MetricsRegistry::global().snapshot();
  HistShard Hists = HistogramRegistry::global().snapshot();
  std::string Out;
  Out.reserve(4096);
  for (size_t I = 0; I != NumCounters; ++I) {
    const char *Name = counterName(static_cast<Counter>(I));
    Out += "# TYPE ";
    appendMetricName(Out, Name);
    Out += " counter\n";
    appendMetricName(Out, Name);
    Out += ' ';
    Out += std::to_string(Counters.C[I]);
    Out += '\n';
  }
  for (size_t I = 0; I != NumHistograms; ++I) {
    const char *Name = histName(static_cast<Hist>(I));
    const HistShard::Data &D = Hists.H[I];
    Out += "# TYPE ";
    appendMetricName(Out, Name);
    Out += " histogram\n";
    // Cumulative le buckets over the sparse nonzero log2 buckets, then the
    // canonical +Inf / _sum / _count triple.
    uint64_t Cumulative = 0;
    for (uint32_t B = 0; B != NumHistBuckets; ++B) {
      if (!D.Buckets[B])
        continue;
      Cumulative += D.Buckets[B];
      appendMetricName(Out, Name);
      Out += "_bucket{le=\"";
      Out += std::to_string(histBucketUpperBound(B));
      Out += "\"} ";
      Out += std::to_string(Cumulative);
      Out += '\n';
    }
    appendMetricName(Out, Name);
    Out += "_bucket{le=\"+Inf\"} ";
    Out += std::to_string(D.Count);
    Out += '\n';
    appendMetricName(Out, Name);
    Out += "_sum ";
    Out += std::to_string(D.Sum);
    Out += '\n';
    appendMetricName(Out, Name);
    Out += "_count ";
    Out += std::to_string(D.Count);
    Out += '\n';
  }
  return Out;
}

std::string sbd::obs::snapshotJson() {
  std::string Out = "{\"counters\": ";
  Out += MetricsRegistry::global().snapshot().json();
  Out += ", \"histograms\": ";
  Out += HistogramRegistry::global().snapshot().json();
  Out += '}';
  return Out;
}

bool sbd::obs::writePrometheus(const std::string &Path) {
  std::string Doc = prometheusText();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Doc.data(), 1, Doc.size(), F);
  std::fclose(F);
  return Written == Doc.size();
}

bool sbd::obs::appendSnapshotJsonl(const std::string &Path) {
  std::string Line = snapshotJson();
  Line += '\n';
  std::FILE *F = std::fopen(Path.c_str(), "a");
  if (!F)
    return false;
  size_t Written = std::fwrite(Line.data(), 1, Line.size(), F);
  std::fclose(F);
  return Written == Line.size();
}

void sbd::obs::armSignalExposition(const std::string &PromPath) {
  {
    std::lock_guard<std::mutex> Lock(ExpoMu);
    ArmedPath = PromPath;
  }
  if (!PromPath.empty())
    std::signal(SIGUSR1, sbdExpositionSignalHandler);
}

void sbd::obs::requestExpositionDump() {
  DumpRequested.store(true, std::memory_order_relaxed);
}

bool sbd::obs::pollExposition() {
  if (!DumpRequested.load(std::memory_order_relaxed))
    return false;
  DumpRequested.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(ExpoMu);
  if (ArmedPath.empty())
    return false;
  return writePrometheus(ArmedPath);
}
