//===- support/Histogram.h - Log2-bucketed histogram registry (sbd::obs) ----===//
///
/// \file
/// The distribution half of the observability subsystem: fixed
/// log2-bucketed histograms for latencies and sizes, sharded per thread and
/// merged deterministically, mirroring the counter registry design in
/// support/Metrics.h exactly:
///
///  - Hot paths never touch shared mutable state. Every thread records into
///    its own `HistShard` (plain uint64 arrays, no atomics); the registry
///    mutex is taken only on thread register/exit and on snapshot/reset.
///  - Bucketing is pure integer arithmetic on the value's bit width, so the
///    same workload produces bit-identical bucket counts regardless of
///    thread count, scheduling, or platform: value 0 lands in bucket 0 and
///    value v > 0 lands in bucket bit_width(v), i.e. bucket b holds
///    [2^(b-1), 2^b). Percentiles are read deterministically as the upper
///    bound of the bucket containing the ceil(q*Count)-th sample.
///  - Compile with `-DSBD_OBS=0` to strip every `SBD_OBS_HIST` recording;
///    the registry API stays as a zero-cost shell (all-zero snapshots) so
///    exposition and statistics call sites need no `#if` guards.
///
/// See DESIGN.md §13.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SUPPORT_HISTOGRAM_H
#define SBD_SUPPORT_HISTOGRAM_H

#include "support/Metrics.h"

#include <cstdint>
#include <string>

namespace sbd {
namespace obs {

/// Every histogram the registry tracks. Hot code indexes the shard array
/// directly by these ids — adding a histogram is adding an enumerator plus
/// its name in histName().
enum class Hist : uint32_t {
  SolveLatencyUs,   ///< RegexSolver::checkSat wall-clock per query
  SolveArenaNodes,  ///< regex + TR nodes a query allocated
  DnfExpansionArcs, ///< arcs per δdnf expansion in the search loop
  LazyScanUs,       ///< CachedMatcher::matches on the lazy bounded path
  CompiledScanUs,   ///< CachedMatcher::matches served from a compiled table
  DistRpcUs,        ///< coordinator-side request→response round trip
  DistQueueDepth,   ///< a worker's queued backlog, sampled at dispatch

  NumHistograms ///< sentinel — keep last
};

constexpr size_t NumHistograms = static_cast<size_t>(Hist::NumHistograms);

/// Log2 buckets: bucket 0 holds value 0, bucket b >= 1 holds [2^(b-1), 2^b).
constexpr size_t NumHistBuckets = 64;

/// Stable snake_case name for JSON/statistics output.
const char *histName(Hist H);

/// Bucket index for a recorded value (see the bucketing rule above).
inline uint32_t histBucket(uint64_t V) {
  if (V == 0)
    return 0;
  uint32_t B = 64u - static_cast<uint32_t>(__builtin_clzll(V));
  return B < NumHistBuckets ? B : NumHistBuckets - 1;
}

/// Inclusive upper bound of a bucket (what percentile queries report).
inline uint64_t histBucketUpperBound(uint32_t B) {
  if (B == 0)
    return 0;
  if (B >= 63)
    return UINT64_MAX;
  return (uint64_t{1} << B) - 1;
}

/// One thread's (or one snapshot's) histogram values. Plain uint64s — never
/// shared while being written.
struct HistShard {
  /// One histogram's accumulated distribution.
  struct Data {
    uint64_t Buckets[NumHistBuckets] = {};
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Min = UINT64_MAX; ///< meaningful only when Count > 0
    uint64_t Max = 0;

    void record(uint64_t V) {
      Buckets[histBucket(V)] += 1;
      Count += 1;
      Sum += V;
      if (V < Min)
        Min = V;
      if (V > Max)
        Max = V;
    }

    Data &operator+=(const Data &O) {
      for (size_t I = 0; I != NumHistBuckets; ++I)
        Buckets[I] += O.Buckets[I];
      Count += O.Count;
      Sum += O.Sum;
      if (O.Min < Min)
        Min = O.Min;
      if (O.Max > Max)
        Max = O.Max;
      return *this;
    }
  };

  Data H[NumHistograms];

  void record(Hist Id, uint64_t V) { H[static_cast<size_t>(Id)].record(V); }
  const Data &data(Hist Id) const { return H[static_cast<size_t>(Id)]; }
  uint64_t count(Hist Id) const { return data(Id).Count; }

  HistShard &operator+=(const HistShard &O) {
    for (size_t I = 0; I != NumHistograms; ++I)
      H[I] += O.H[I];
    return *this;
  }

  void reset() { *this = HistShard(); }

  /// {"solve_latency_us": {"count": 3, "sum": 10, "min": 1, "max": 7,
  ///   "p50": 3, "p90": 7, "p99": 7, "buckets": [[1, 1], [3, 1], [7, 1]]},
  ///  ...} — buckets is the sparse [upper_bound, count] list.
  std::string json() const;
};

/// Deterministic percentile read: the inclusive upper bound of the bucket
/// containing the ceil(Pct/100 * Count)-th sample (1-indexed); 0 when the
/// histogram is empty. \p Pct in [1, 100].
uint64_t histPercentile(const HistShard::Data &D, unsigned Pct);

namespace detail {
/// The calling thread's histogram shard pointer; null until the thread's
/// first record registers one (same constinit contract as TlsShard).
extern constinit thread_local HistShard *TlsHistShard;
/// Slow path: registers a shard for this thread and returns it.
HistShard &registerThreadHistShard();
} // namespace detail

/// The calling thread's histogram shard — the only thing hot paths touch.
inline HistShard &tlsHistShard() {
  HistShard *P = detail::TlsHistShard;
  return P ? *P : detail::registerThreadHistShard();
}

/// Process-wide registry of per-thread histogram shards. Singleton,
/// intentionally leaked (same lifetime rules as MetricsRegistry).
class HistogramRegistry {
public:
  static HistogramRegistry &global();

  /// The calling thread's shard (see tlsHistShard()).
  HistShard &local() { return tlsHistShard(); }

  /// Merged view: retired shards of exited threads + all live shards.
  /// Exact only when no other thread is concurrently recording.
  HistShard snapshot();

  /// Zeroes every live shard and the retired sum. Call between benchmark
  /// runs (with workers joined).
  void reset();

private:
  HistogramRegistry() = default;
  HistogramRegistry(const HistogramRegistry &) = delete;

  struct Impl;
  static Impl &impl();

  friend HistShard &detail::registerThreadHistShard();
};

#if SBD_OBS
#define SBD_OBS_HIST(HistId, Value)                                            \
  (::sbd::obs::tlsHistShard().record(::sbd::obs::Hist::HistId,                 \
                                     static_cast<uint64_t>(Value)))
#else
#define SBD_OBS_HIST(HistId, Value) ((void)0)
#endif

} // namespace obs
} // namespace sbd

#endif // SBD_SUPPORT_HISTOGRAM_H
