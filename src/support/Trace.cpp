//===- support/Trace.cpp - Span/event tracer (sbd::obs) ---------------------===//

#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

using namespace sbd;
using namespace sbd::obs;

std::atomic<bool> Tracer::Enabled{false};

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Escapes a string for embedding in a JSON string literal.
void appendJsonEscaped(std::string &Out, const char *S) {
  for (; *S; ++S) {
    unsigned char Ch = static_cast<unsigned char>(*S);
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (Ch < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        Out += Buf;
      } else {
        Out += static_cast<char>(Ch);
      }
    }
  }
}

/// One thread's event buffer plus its trace-viewer thread id.
struct TraceBuffer {
  uint32_t Tid = 0;
  std::vector<TraceEvent> Events;
};

} // namespace

/// Tracer internals: per-thread event buffers (lock-free appends) plus the
/// buffers of exited threads, merged at export time.
struct Tracer::Impl {
  std::mutex Mu;
  std::vector<TraceBuffer *> Live;
  std::vector<TraceBuffer> RetiredBufs;
  uint32_t NextTid = 1;
  SteadyClock::time_point Epoch = SteadyClock::now();
  /// Per-thread buffer cap (drop-newest past this); relaxed atomic so the
  /// record() hot path reads it without taking Mu. 0 disables the bound.
  std::atomic<size_t> MaxEventsPerThread{size_t{1} << 18};

  /// Registers this thread's buffer on first traced event; moves it to the
  /// retired list on thread exit so late exports still see its events.
  struct Holder {
    TraceBuffer Buf;
    Impl *Owner;

    explicit Holder(Impl &I) : Owner(&I) {
      std::lock_guard<std::mutex> Lock(Owner->Mu);
      Buf.Tid = Owner->NextTid++;
      Owner->Live.push_back(&Buf);
    }

    ~Holder() {
      std::lock_guard<std::mutex> Lock(Owner->Mu);
      for (auto It = Owner->Live.begin(); It != Owner->Live.end(); ++It) {
        if (*It == &Buf) {
          Owner->Live.erase(It);
          break;
        }
      }
      if (!Buf.Events.empty())
        Owner->RetiredBufs.push_back(std::move(Buf));
    }
  };
};

Tracer::Impl &Tracer::impl() {
  // One leaked instance per process: thread-exit hooks may run after main()
  // returns, so the tracer state must never be destroyed.
  static Impl *I = new Impl();
  return *I;
}

Tracer &Tracer::global() {
  static Tracer *T = new Tracer();
  return *T;
}

void Tracer::start() {
  Impl &I = impl();
  clear();
  {
    std::lock_guard<std::mutex> Lock(I.Mu);
    I.Epoch = SteadyClock::now();
  }
  Enabled.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { Enabled.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  for (TraceBuffer *B : I.Live)
    B->Events.clear();
  I.RetiredBufs.clear();
}

int64_t Tracer::nowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             SteadyClock::now() - impl().Epoch)
      .count();
}

void Tracer::record(TraceEvent E) {
  if (!active())
    return;
  thread_local Impl::Holder Holder(impl());
  size_t Max = impl().MaxEventsPerThread.load(std::memory_order_relaxed);
  if (Max && Holder.Buf.Events.size() >= Max) {
    SBD_OBS_INC(TraceEventsDropped);
    return;
  }
  Holder.Buf.Events.push_back(std::move(E));
}

void Tracer::setMaxEventsPerThread(size_t Max) {
  impl().MaxEventsPerThread.store(Max, std::memory_order_relaxed);
}

size_t Tracer::maxEventsPerThread() const {
  return impl().MaxEventsPerThread.load(std::memory_order_relaxed);
}

std::string Tracer::chromeTraceJson() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  std::string Out = "{\"traceEvents\": [";
  bool First = true;
  auto emit = [&](const TraceBuffer &B) {
    for (const TraceEvent &E : B.Events) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\n  {\"name\": \"";
      appendJsonEscaped(Out, E.Name);
      Out += "\", \"cat\": \"";
      appendJsonEscaped(Out, E.Cat);
      Out += "\", \"ph\": \"X\", \"ts\": ";
      Out += std::to_string(E.TsUs);
      Out += ", \"dur\": ";
      Out += std::to_string(E.DurUs);
      Out += ", \"pid\": 1, \"tid\": ";
      Out += std::to_string(B.Tid);
      if (!E.Args.empty()) {
        Out += ", \"args\": {";
        Out += E.Args;
        Out += "}";
      }
      Out += "}";
    }
  };
  for (const TraceBuffer &B : I.RetiredBufs)
    emit(B);
  for (const TraceBuffer *B : I.Live)
    emit(*B);
  Out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

bool Tracer::writeChromeTrace(const std::string &Path) {
  std::string Json = chromeTraceJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  return Written == Json.size();
}

size_t Tracer::eventCount() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  size_t N = 0;
  for (const TraceBuffer &B : I.RetiredBufs)
    N += B.Events.size();
  for (const TraceBuffer *B : I.Live)
    N += B->Events.size();
  return N;
}

void ScopedSpan::arg(const char *Key, const std::string &Value) {
  if (!Live)
    return;
  if (!Args.empty())
    Args += ", ";
  Args += '"';
  Args += Key;
  Args += "\": \"";
  appendJsonEscaped(Args, Value.c_str());
  Args += '"';
}

void ScopedSpan::arg(const char *Key, uint64_t Value) {
  if (!Live)
    return;
  if (!Args.empty())
    Args += ", ";
  Args += '"';
  Args += Key;
  Args += "\": ";
  Args += std::to_string(Value);
}

void ScopedSpan::finish() {
  Tracer &T = Tracer::global();
  int64_t End = T.nowUs();
  T.record({Name, Cat, StartUs, End - StartUs, std::move(Args)});
}
