//===- support/Metrics.cpp - Unified counter registry (sbd::obs) ------------===//

#include "support/Metrics.h"

#include <mutex>
#include <vector>

using namespace sbd;
using namespace sbd::obs;

const char *sbd::obs::counterName(Counter C) {
  switch (C) {
  case Counter::DerivativeCalls:
    return "derivative_calls";
  case Counter::DnfCalls:
    return "dnf_calls";
  case Counter::BrzozowskiCalls:
    return "brzozowski_calls";
  case Counter::DnfBranchesExplored:
    return "dnf_branches_explored";
  case Counter::DnfBranchesPruned:
    return "dnf_branches_pruned";
  case Counter::ArcsEnumerated:
    return "arcs_enumerated";
  case Counter::MintermComputations:
    return "minterm_computations";
  case Counter::MintermsProduced:
    return "minterms_produced";
  case Counter::AlphabetMinterms:
    return "alphabet_minterms";
  case Counter::DfaStatesBuilt:
    return "dfa_states_built";
  case Counter::DfaEvictions:
    return "dfa_evictions";
  case Counter::DenseRowHits:
    return "dense_row_hits";
  case Counter::CompiledPromotions:
    return "compiled_promotions";
  case Counter::CompiledCharsScanned:
    return "compiled_chars_scanned";
  case Counter::CompiledPrefilterSkips:
    return "compiled_prefilter_skips";
  case Counter::CompiledFallbacks:
    return "compiled_fallbacks";
  case Counter::SolverSteps:
    return "solver_steps";
  case Counter::TimeoutChecks:
    return "timeout_checks";
  case Counter::QueriesSolved:
    return "queries_solved";
  case Counter::InternHits:
    return "intern_hits";
  case Counter::InternMisses:
    return "intern_misses";
  case Counter::MemoHits:
    return "memo_hits";
  case Counter::MemoMisses:
    return "memo_misses";
  case Counter::ProbeSteps:
    return "probe_steps";
  case Counter::Lookups:
    return "lookups";
  case Counter::AuditNodesChecked:
    return "audit_nodes_checked";
  case Counter::AuditViolations:
    return "audit_violations";
  case Counter::FuzzSamples:
    return "fuzz_samples";
  case Counter::FuzzChecks:
    return "fuzz_checks";
  case Counter::FuzzDiscrepancies:
    return "fuzz_discrepancies";
  case Counter::FuzzShrinkSteps:
    return "fuzz_shrink_steps";
  case Counter::TraceEventsDropped:
    return "trace_events_dropped";
  case Counter::SlowQueriesCaptured:
    return "slow_queries_captured";
  case Counter::SlowQueriesDropped:
    return "slow_queries_dropped";
  case Counter::AnalysisNodesVisited:
    return "analysis_nodes_visited";
  case Counter::AnalysisCacheHits:
    return "analysis_cache_hits";
  case Counter::AdmissionFlagged:
    return "admission_flagged";
  case Counter::VerdictCacheHits:
    return "verdict_cache_hits";
  case Counter::VerdictCacheMisses:
    return "verdict_cache_misses";
  case Counter::VerdictCacheInserts:
    return "verdict_cache_inserts";
  case Counter::VerdictCacheEvictions:
    return "verdict_cache_evictions";
  case Counter::VerdictCacheRevalidationFailures:
    return "verdict_cache_revalidation_failures";
  case Counter::SessionChecks:
    return "session_checks";
  case Counter::DistDispatched:
    return "dist_dispatched";
  case Counter::DistSteals:
    return "dist_steals";
  case Counter::DistRequeues:
    return "dist_requeues";
  case Counter::DistWorkerCrashes:
    return "dist_worker_crashes";
  case Counter::DistTimeouts:
    return "dist_timeouts";
  case Counter::ParseTimeUs:
    return "parse_time_us";
  case Counter::MintermTimeUs:
    return "minterm_time_us";
  case Counter::DeriveTimeUs:
    return "derive_time_us";
  case Counter::DnfTimeUs:
    return "dnf_time_us";
  case Counter::CacheProbeTimeUs:
    return "cache_probe_time_us";
  case Counter::ScanTimeUs:
    return "scan_time_us";
  case Counter::SearchTimeUs:
    return "search_time_us";
  case Counter::SolveTimeUs:
    return "solve_time_us";
  case Counter::NumCounters:
    break;
  }
  return "?";
}

std::string MetricShard::json() const {
  std::string Out = "{";
  for (size_t I = 0; I != NumCounters; ++I) {
    if (I)
      Out += ", ";
    Out += '"';
    Out += counterName(static_cast<Counter>(I));
    Out += "\": ";
    Out += std::to_string(C[I]);
  }
  Out += '}';
  return Out;
}

/// Registry internals: a mutex-guarded list of live per-thread shards plus
/// the folded counters of threads that have exited. The thread_local Holder
/// below unregisters itself on thread exit, so `Live` never dangles.
struct MetricsRegistry::Impl {
  std::mutex Mu;
  std::vector<MetricShard *> Live;
  MetricShard Retired;
};

MetricsRegistry::Impl &MetricsRegistry::impl() {
  // One leaked instance per process: thread-exit hooks may run after main()
  // returns, so the registry must never be destroyed.
  static Impl *I = new Impl();
  return *I;
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry *R = new MetricsRegistry();
  return *R;
}

constinit thread_local MetricShard *sbd::obs::detail::TlsShard = nullptr;

namespace {

/// Dumping ground for counter bumps that happen while (or after) a
/// thread's shard holder is torn down. Trivially destructible, so it
/// outlives every other thread_local; its contents are dropped.
thread_local MetricShard ExitSink;

/// Registers this thread's shard on first use; folds it into the retired
/// sum on thread exit.
struct ShardHolder {
  MetricShard Shard;
  std::mutex *Mu;
  std::vector<MetricShard *> *Live;
  MetricShard *Retired;

  ShardHolder(std::mutex &M, std::vector<MetricShard *> &L, MetricShard &R)
      : Mu(&M), Live(&L), Retired(&R) {
    std::lock_guard<std::mutex> Lock(*Mu);
    Live->push_back(&Shard);
  }

  ~ShardHolder() {
    detail::TlsShard = &ExitSink;
    std::lock_guard<std::mutex> Lock(*Mu);
    *Retired += Shard;
    for (auto It = Live->begin(); It != Live->end(); ++It) {
      if (*It == &Shard) {
        Live->erase(It);
        break;
      }
    }
  }
};

} // namespace

MetricShard &sbd::obs::detail::registerThreadShard() {
  MetricsRegistry::Impl &I = MetricsRegistry::impl();
  thread_local ShardHolder Holder(I.Mu, I.Live, I.Retired);
  TlsShard = &Holder.Shard;
  return Holder.Shard;
}

MetricShard MetricsRegistry::snapshot() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  MetricShard Out = I.Retired;
  for (const MetricShard *S : I.Live)
    Out += *S;
  return Out;
}

void MetricsRegistry::reset() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  I.Retired.reset();
  for (MetricShard *S : I.Live)
    S->reset();
}
