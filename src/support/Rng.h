//===- support/Rng.h - Deterministic random number generation --------------===//
///
/// \file
/// A small, fast, deterministic PRNG (splitmix64) used by the property tests
/// and the workload generators. Determinism matters: benchmark instances and
/// property-test cases must be reproducible across runs and machines.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SUPPORT_RNG_H
#define SBD_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace sbd {

/// SplitMix64 generator. Cheap to seed, statistically solid for test-case
/// generation (not cryptographic).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    // Rejection-free multiply-shift; bias is negligible for test usage.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a uniform value in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + below(Hi - Lo + 1);
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace sbd

#endif // SBD_SUPPORT_RNG_H
