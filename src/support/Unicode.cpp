//===- support/Unicode.cpp - Code point utilities ---------------------------===//

#include "support/Unicode.h"

#include <cassert>
#include <cstdio>

using namespace sbd;

void sbd::appendUtf8(uint32_t Cp, std::string &Out) {
  assert(Cp <= MaxCodePoint && "code point out of range");
  if (Cp < 0x80) {
    Out.push_back(static_cast<char>(Cp));
    return;
  }
  if (Cp < 0x800) {
    Out.push_back(static_cast<char>(0xC0 | (Cp >> 6)));
    Out.push_back(static_cast<char>(0x80 | (Cp & 0x3F)));
    return;
  }
  if (Cp < 0x10000) {
    Out.push_back(static_cast<char>(0xE0 | (Cp >> 12)));
    Out.push_back(static_cast<char>(0x80 | ((Cp >> 6) & 0x3F)));
    Out.push_back(static_cast<char>(0x80 | (Cp & 0x3F)));
    return;
  }
  Out.push_back(static_cast<char>(0xF0 | (Cp >> 18)));
  Out.push_back(static_cast<char>(0x80 | ((Cp >> 12) & 0x3F)));
  Out.push_back(static_cast<char>(0x80 | ((Cp >> 6) & 0x3F)));
  Out.push_back(static_cast<char>(0x80 | (Cp & 0x3F)));
}

std::string sbd::toUtf8(const std::vector<uint32_t> &Word) {
  std::string Out;
  Out.reserve(Word.size());
  for (uint32_t Cp : Word)
    appendUtf8(Cp, Out);
  return Out;
}

std::vector<uint32_t> sbd::fromUtf8(const std::string &Bytes) {
  std::vector<uint32_t> Out;
  size_t I = 0, N = Bytes.size();
  auto cont = [&](size_t K) {
    return I + K < N && (static_cast<uint8_t>(Bytes[I + K]) & 0xC0) == 0x80;
  };
  while (I < N) {
    uint8_t B0 = static_cast<uint8_t>(Bytes[I]);
    if (B0 < 0x80) {
      Out.push_back(B0);
      ++I;
      continue;
    }
    if ((B0 & 0xE0) == 0xC0 && cont(1)) {
      uint32_t Cp = (static_cast<uint32_t>(B0 & 0x1F) << 6) |
                    (static_cast<uint8_t>(Bytes[I + 1]) & 0x3F);
      Out.push_back(Cp);
      I += 2;
      continue;
    }
    if ((B0 & 0xF0) == 0xE0 && cont(1) && cont(2)) {
      uint32_t Cp = (static_cast<uint32_t>(B0 & 0x0F) << 12) |
                    ((static_cast<uint8_t>(Bytes[I + 1]) & 0x3F) << 6) |
                    (static_cast<uint8_t>(Bytes[I + 2]) & 0x3F);
      Out.push_back(Cp);
      I += 3;
      continue;
    }
    if ((B0 & 0xF8) == 0xF0 && cont(1) && cont(2) && cont(3)) {
      uint32_t Cp = (static_cast<uint32_t>(B0 & 0x07) << 18) |
                    ((static_cast<uint8_t>(Bytes[I + 1]) & 0x3F) << 12) |
                    ((static_cast<uint8_t>(Bytes[I + 2]) & 0x3F) << 6) |
                    (static_cast<uint8_t>(Bytes[I + 3]) & 0x3F);
      Out.push_back(Cp <= MaxCodePoint ? Cp : 0xFFFD);
      I += 4;
      continue;
    }
    Out.push_back(0xFFFD);
    ++I;
  }
  return Out;
}

std::string sbd::escapeCodePoint(uint32_t Cp) {
  if (Cp >= 0x20 && Cp < 0x7F) {
    char C = static_cast<char>(Cp);
    if (C == '\\')
      return "\\\\";
    return std::string(1, C);
  }
  char Buf[16];
  if (Cp <= 0xFFFF)
    std::snprintf(Buf, sizeof(Buf), "\\u%04X", Cp);
  else
    std::snprintf(Buf, sizeof(Buf), "\\U{%06X}", Cp);
  return std::string(Buf);
}

std::string sbd::escapeWord(const std::vector<uint32_t> &Word) {
  std::string Out;
  for (uint32_t Cp : Word)
    Out += escapeCodePoint(Cp);
  return Out;
}
