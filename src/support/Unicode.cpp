//===- support/Unicode.cpp - Code point utilities ---------------------------===//

#include "support/Unicode.h"

#include <cassert>
#include <cstdio>

using namespace sbd;

void sbd::appendUtf8(uint32_t Cp, std::string &Out) {
  assert(Cp <= MaxCodePoint && "code point out of range");
  if (Cp < 0x80) {
    Out.push_back(static_cast<char>(Cp));
    return;
  }
  if (Cp < 0x800) {
    Out.push_back(static_cast<char>(0xC0 | (Cp >> 6)));
    Out.push_back(static_cast<char>(0x80 | (Cp & 0x3F)));
    return;
  }
  if (Cp < 0x10000) {
    Out.push_back(static_cast<char>(0xE0 | (Cp >> 12)));
    Out.push_back(static_cast<char>(0x80 | ((Cp >> 6) & 0x3F)));
    Out.push_back(static_cast<char>(0x80 | (Cp & 0x3F)));
    return;
  }
  Out.push_back(static_cast<char>(0xF0 | (Cp >> 18)));
  Out.push_back(static_cast<char>(0x80 | ((Cp >> 12) & 0x3F)));
  Out.push_back(static_cast<char>(0x80 | ((Cp >> 6) & 0x3F)));
  Out.push_back(static_cast<char>(0x80 | (Cp & 0x3F)));
}

std::string sbd::toUtf8(const std::vector<uint32_t> &Word) {
  std::string Out;
  Out.reserve(Word.size());
  for (uint32_t Cp : Word)
    appendUtf8(Cp, Out);
  return Out;
}

std::vector<uint32_t> sbd::fromUtf8(const std::string &Bytes) {
  std::vector<uint32_t> Out;
  size_t I = 0;
  while (I < Bytes.size())
    Out.push_back(decodeUtf8At(Bytes, I));
  return Out;
}

std::string sbd::escapeCodePoint(uint32_t Cp) {
  if (Cp >= 0x20 && Cp < 0x7F) {
    char C = static_cast<char>(Cp);
    if (C == '\\')
      return "\\\\";
    return std::string(1, C);
  }
  char Buf[16];
  if (Cp <= 0xFFFF)
    std::snprintf(Buf, sizeof(Buf), "\\u%04X", Cp);
  else
    std::snprintf(Buf, sizeof(Buf), "\\U{%06X}", Cp);
  return std::string(Buf);
}

std::string sbd::escapeWord(const std::vector<uint32_t> &Word) {
  std::string Out;
  for (uint32_t Cp : Word)
    Out += escapeCodePoint(Cp);
  return Out;
}
