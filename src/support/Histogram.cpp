//===- support/Histogram.cpp - Log2-bucketed histogram registry (sbd::obs) --===//

#include "support/Histogram.h"

#include <mutex>
#include <vector>

using namespace sbd;
using namespace sbd::obs;

const char *sbd::obs::histName(Hist H) {
  switch (H) {
  case Hist::SolveLatencyUs:
    return "solve_latency_us";
  case Hist::SolveArenaNodes:
    return "solve_arena_nodes";
  case Hist::DnfExpansionArcs:
    return "dnf_expansion_arcs";
  case Hist::LazyScanUs:
    return "lazy_scan_us";
  case Hist::CompiledScanUs:
    return "compiled_scan_us";
  case Hist::DistRpcUs:
    return "dist_rpc_us";
  case Hist::DistQueueDepth:
    return "dist_queue_depth";
  case Hist::NumHistograms:
    break;
  }
  return "?";
}

uint64_t sbd::obs::histPercentile(const HistShard::Data &D, unsigned Pct) {
  if (D.Count == 0)
    return 0;
  // ceil(Pct/100 * Count), computed in integers so every reader agrees.
  uint64_t Target = (D.Count * Pct + 99) / 100;
  if (Target == 0)
    Target = 1;
  uint64_t Seen = 0;
  for (uint32_t B = 0; B != NumHistBuckets; ++B) {
    Seen += D.Buckets[B];
    if (Seen >= Target) {
      // Tighten the top bucket's bound to the observed maximum so p99 of a
      // narrow distribution never reads as a power-of-two overshoot.
      uint64_t Upper = histBucketUpperBound(B);
      return Upper < D.Max ? Upper : D.Max;
    }
  }
  return D.Max;
}

std::string HistShard::json() const {
  std::string Out = "{";
  for (size_t I = 0; I != NumHistograms; ++I) {
    const Data &D = H[I];
    if (I)
      Out += ", ";
    Out += '"';
    Out += histName(static_cast<Hist>(I));
    Out += "\": {\"count\": ";
    Out += std::to_string(D.Count);
    Out += ", \"sum\": ";
    Out += std::to_string(D.Sum);
    Out += ", \"min\": ";
    Out += std::to_string(D.Count ? D.Min : 0);
    Out += ", \"max\": ";
    Out += std::to_string(D.Max);
    Out += ", \"p50\": ";
    Out += std::to_string(histPercentile(D, 50));
    Out += ", \"p90\": ";
    Out += std::to_string(histPercentile(D, 90));
    Out += ", \"p99\": ";
    Out += std::to_string(histPercentile(D, 99));
    Out += ", \"buckets\": [";
    bool First = true;
    for (uint32_t B = 0; B != NumHistBuckets; ++B) {
      if (!D.Buckets[B])
        continue;
      if (!First)
        Out += ", ";
      First = false;
      Out += '[';
      Out += std::to_string(histBucketUpperBound(B));
      Out += ", ";
      Out += std::to_string(D.Buckets[B]);
      Out += ']';
    }
    Out += "]}";
  }
  Out += '}';
  return Out;
}

/// Registry internals: a mutex-guarded list of live per-thread shards plus
/// the folded distributions of threads that have exited — the exact shape
/// of MetricsRegistry::Impl (support/Metrics.cpp).
struct HistogramRegistry::Impl {
  std::mutex Mu;
  std::vector<HistShard *> Live;
  HistShard Retired;
};

HistogramRegistry::Impl &HistogramRegistry::impl() {
  // One leaked instance per process: thread-exit hooks may run after main()
  // returns, so the registry must never be destroyed.
  static Impl *I = new Impl();
  return *I;
}

HistogramRegistry &HistogramRegistry::global() {
  static HistogramRegistry *R = new HistogramRegistry();
  return *R;
}

constinit thread_local HistShard *sbd::obs::detail::TlsHistShard = nullptr;

namespace {

/// Dumping ground for records that happen while (or after) a thread's
/// shard holder is torn down; contents are dropped (see Metrics.cpp).
thread_local HistShard HistExitSink;

/// Registers this thread's shard on first use; folds it into the retired
/// sum on thread exit.
struct HistShardHolder {
  HistShard Shard;
  std::mutex *Mu;
  std::vector<HistShard *> *Live;
  HistShard *Retired;

  HistShardHolder(std::mutex &M, std::vector<HistShard *> &L, HistShard &R)
      : Mu(&M), Live(&L), Retired(&R) {
    std::lock_guard<std::mutex> Lock(*Mu);
    Live->push_back(&Shard);
  }

  ~HistShardHolder() {
    detail::TlsHistShard = &HistExitSink;
    std::lock_guard<std::mutex> Lock(*Mu);
    *Retired += Shard;
    for (auto It = Live->begin(); It != Live->end(); ++It) {
      if (*It == &Shard) {
        Live->erase(It);
        break;
      }
    }
  }
};

} // namespace

HistShard &sbd::obs::detail::registerThreadHistShard() {
  HistogramRegistry::Impl &I = HistogramRegistry::impl();
  thread_local HistShardHolder Holder(I.Mu, I.Live, I.Retired);
  TlsHistShard = &Holder.Shard;
  return Holder.Shard;
}

HistShard HistogramRegistry::snapshot() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  HistShard Out = I.Retired;
  for (const HistShard *S : I.Live)
    Out += *S;
  return Out;
}

void HistogramRegistry::reset() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  I.Retired.reset();
  for (HistShard *S : I.Live)
    S->reset();
}
