//===- support/Stopwatch.h - Wall-clock timing ------------------------------===//
///
/// \file
/// Monotonic wall-clock stopwatch used by the solver budgets and the
/// benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SUPPORT_STOPWATCH_H
#define SBD_SUPPORT_STOPWATCH_H

#include <chrono>
#include <cstdint>

namespace sbd {

/// Measures elapsed wall-clock time from construction (or the last reset).
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the measurement window.
  void reset() { Start = Clock::now(); }

  /// Elapsed time in microseconds.
  int64_t elapsedUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 Start)
        .count();
  }

  /// Elapsed time in milliseconds (truncating).
  int64_t elapsedMs() const { return elapsedUs() / 1000; }

  /// Elapsed time in seconds as a double.
  double elapsedSec() const {
    return static_cast<double>(elapsedUs()) / 1e6;
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace sbd

#endif // SBD_SUPPORT_STOPWATCH_H
