//===- support/Hashing.h - Hash combinators --------------------------------===//
///
/// \file
/// Hash combinators used by the hash-consing arenas. Structural node hashes
/// are built by folding the children's interned ids with `hashCombine`.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SUPPORT_HASHING_H
#define SBD_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>

namespace sbd {

/// Mixes a 64-bit value (splitmix64 finalizer); good avalanche behaviour.
inline uint64_t hashMix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Folds \p Value into the running hash \p Seed.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return hashMix(Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                         (Seed >> 2)));
}

/// Hashes a contiguous range of 32-bit values.
inline uint64_t hashRange32(const uint32_t *Data, size_t N, uint64_t Seed) {
  uint64_t H = Seed;
  for (size_t I = 0; I != N; ++I)
    H = hashCombine(H, Data[I]);
  return H;
}

} // namespace sbd

#endif // SBD_SUPPORT_HASHING_H
