//===- support/Metrics.h - Unified counter registry (sbd::obs) --------------===//
///
/// \file
/// The counting half of the observability subsystem: a process-wide
/// `MetricsRegistry` of named counters with *per-thread shards*, plus the
/// per-owner `CacheStats` struct the interning/memo layers bump (moved here
/// from the former support/CacheStats.h, which this header supersedes).
///
/// Design rules:
///
///  - Hot paths never touch shared mutable state. Every thread increments
///    its own `MetricShard` (a plain array of uint64, no atomics); the
///    registry only takes its mutex when a thread first appears, when a
///    thread exits (its shard is folded into a retired sum), and when a
///    reader asks for a merged snapshot. `BatchSolver` workers are
///    therefore lock-free while solving.
///  - Snapshots taken while worker threads are actively counting are
///    approximate (plain loads may tear); take them after joining workers
///    for exact values. All tests and benches do.
///  - Per-*query* attribution does not go through the registry at all: a
///    solver snapshots its thread's shard on entry and diffs on exit
///    (queries never migrate threads — the thread-local arena rule).
///  - Compile with `-DSBD_OBS=0` to strip every counter update and span;
///    the macros expand to nothing and the structs stay as zero-cost
///    shells so call sites need no `#if` guards. `SBD_STATS` (the
///    cache-counter switch predating this subsystem) defaults to
///    `SBD_OBS` so one flag disables the whole layer.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SUPPORT_METRICS_H
#define SBD_SUPPORT_METRICS_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#ifndef SBD_OBS
#define SBD_OBS 1
#endif

#ifndef SBD_STATS
#define SBD_STATS SBD_OBS
#endif

#if SBD_STATS
#define SBD_STATS_INC(Stats, Field) ((Stats).Field += 1)
#define SBD_STATS_ADD(Stats, Field, N) ((Stats).Field += (N))
#else
#define SBD_STATS_INC(Stats, Field) ((void)0)
#define SBD_STATS_ADD(Stats, Field, N) ((void)0)
#endif

namespace sbd {

namespace obs {

/// Every named counter the registry tracks. Hot code indexes the shard
/// array directly by these ids — adding a counter is adding an enumerator
/// plus its name in counterName().
enum class Counter : uint32_t {
  // Derivative engine.
  DerivativeCalls,     ///< δ(R) invocations (including recursive ones)
  DnfCalls,            ///< δdnf(R) requests (memo hits included)
  BrzozowskiCalls,     ///< classical D_a(R) invocations
  // Transition-regex DNF transformation.
  DnfBranchesExplored, ///< conditional branches recursed into during DNF
  DnfBranchesPruned,   ///< branches skipped because the path condition died
  ArcsEnumerated,      ///< (guard, target) arcs produced by TrManager::arcs
  // Character algebra.
  MintermComputations, ///< computeMinterms() calls
  MintermsProduced,    ///< total minterms returned by those calls
  // Alphabet compression + lazy-DFA layer (charset/AlphabetCompressor.h,
  // core/CachedMatcher.h, solver dense rows).
  AlphabetMinterms,    ///< minterm classes assigned by AlphabetCompressor
  DfaStatesBuilt,      ///< lazy-DFA states expanded (dense rows filled)
  DfaEvictions,        ///< lazy-DFA states evicted by the bounded cache
  DenseRowHits,        ///< vertex expansions served from a cached dense row
  // Compiled serving path (compile/CompiledDfa.h, CachedMatcher promotion).
  CompiledPromotions,     ///< hot matchers swapped onto a compiled table
  CompiledCharsScanned,   ///< characters scanned by the compiled kernel
  CompiledPrefilterSkips, ///< characters skipped by the self-loop prefilter
  CompiledFallbacks,      ///< promotion attempts that overflowed the budget
  // Solver search loop.
  SolverSteps,         ///< states dequeued by RegexSolver::checkSat
  TimeoutChecks,       ///< deadline clock reads in the search loop
  QueriesSolved,       ///< checkSat() calls completed
  // Interning / memoization (folded per query from the owner CacheStats).
  InternHits,
  InternMisses,
  MemoHits,
  MemoMisses,
  ProbeSteps,
  Lookups,
  // Invariant auditor (analysis/Audit.h; counts only under SBD_AUDIT builds).
  AuditNodesChecked,   ///< nodes/interval-lists visited by audit hooks
  AuditViolations,     ///< invariant violations the hooks detected
  // Differential fuzzing subsystem (fuzz/Fuzzer.h).
  FuzzSamples,         ///< (regex, word) samples pushed through the oracle
  FuzzChecks,          ///< individual cross-engine/metamorphic checks run
  FuzzDiscrepancies,   ///< disagreements the oracle detected
  FuzzShrinkSteps,     ///< accepted shrinker reductions
  // Profiling layer (support/Histogram.h, support/Trace.h drop policy,
  // solver/SlowQueryLog.h).
  TraceEventsDropped,  ///< span events dropped by the per-thread buffer cap
  SlowQueriesCaptured, ///< explain artifacts captured by the slow-query log
  SlowQueriesDropped,  ///< artifacts evicted from the bounded capture ring
  // Pre-solve static analysis + portfolio routing (analysis/RegexAnalyzer.h,
  // portfolio/Portfolio.h).
  AnalysisNodesVisited, ///< DAG nodes folded by RegexAnalyzer (memo misses)
  AnalysisCacheHits,    ///< analyze() requests answered from the node memo
  AdmissionFlagged,     ///< Adversarial-class queries capped by admission
  // Cross-query verdict cache (cache/VerdictCache.h, DESIGN.md §15).
  VerdictCacheHits,     ///< queries answered from a cached verdict
  VerdictCacheMisses,   ///< canonical keys probed and not found
  VerdictCacheInserts,  ///< definite verdicts memoized
  VerdictCacheEvictions,///< entries displaced by least-recently-hit eviction
  VerdictCacheRevalidationFailures, ///< cached witnesses the reference
                                    ///< matcher rejected on hit (hard error)
  SessionChecks,        ///< (check-sat) commands served by SmtSession
  // Multi-process batch solving (dist/Coordinator.h, DESIGN.md §16).
  DistDispatched,       ///< requests sent to worker processes
  DistSteals,           ///< requests moved off their home shard's queue
  DistRequeues,         ///< in-flight requests replayed after a worker loss
  DistWorkerCrashes,    ///< worker processes that died with work in flight
  DistTimeouts,         ///< in-flight requests that exceeded RpcTimeoutMs
  // Phase timings, microseconds (counters so they shard/merge like the rest).
  ParseTimeUs,
  MintermTimeUs,
  DeriveTimeUs,
  DnfTimeUs,
  CacheProbeTimeUs,
  ScanTimeUs,
  SearchTimeUs,
  SolveTimeUs,

  NumCounters ///< sentinel — keep last
};

constexpr size_t NumCounters = static_cast<size_t>(Counter::NumCounters);

/// Stable snake_case name for JSON/statistics output.
const char *counterName(Counter C);

/// One thread's (or one snapshot's) counter values. Plain uint64s — never
/// shared while being written.
struct MetricShard {
  uint64_t C[NumCounters] = {};

  uint64_t get(Counter Id) const { return C[static_cast<size_t>(Id)]; }
  void add(Counter Id, uint64_t N) { C[static_cast<size_t>(Id)] += N; }

  MetricShard &operator+=(const MetricShard &O) {
    for (size_t I = 0; I != NumCounters; ++I)
      C[I] += O.C[I];
    return *this;
  }

  /// Counter-wise `*this - Since` (Since must be an earlier snapshot of the
  /// same monotonically increasing shard).
  MetricShard since(const MetricShard &Earlier) const {
    MetricShard Out;
    for (size_t I = 0; I != NumCounters; ++I)
      Out.C[I] = C[I] - Earlier.C[I];
    return Out;
  }

  void reset() { *this = MetricShard(); }

  /// Flat JSON object: {"derivative_calls": 12, ...}.
  std::string json() const;
};

namespace detail {
/// The calling thread's shard pointer; null until the thread's first
/// counter bump registers a shard. `constinit` + trivially destructible so
/// the fast path is a bare TLS load (no init guard, no wrapper logic).
extern constinit thread_local MetricShard *TlsShard;
/// Slow path: registers a shard for this thread and returns it.
MetricShard &registerThreadShard();
} // namespace detail

/// The calling thread's shard — the only thing hot paths touch. First call
/// from a thread takes the registry mutex once; afterwards this is one TLS
/// load, a null test, and the increment.
inline MetricShard &tlsShard() {
  MetricShard *P = detail::TlsShard;
  return P ? *P : detail::registerThreadShard();
}

/// Process-wide registry of per-thread shards. Singleton (`global()`);
/// intentionally leaked so thread-exit hooks never race its destructor.
class MetricsRegistry {
public:
  static MetricsRegistry &global();

  /// The calling thread's shard (see tlsShard()).
  MetricShard &local() { return tlsShard(); }

  /// Merged view: retired shards of exited threads + all live shards.
  /// Exact only when no other thread is concurrently counting.
  MetricShard snapshot();

  /// Zeroes every live shard and the retired sum. Call between benchmark
  /// runs (with workers joined).
  void reset();

private:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;

  struct Impl;
  static Impl &impl();

  friend MetricShard &detail::registerThreadShard();
};

#if SBD_OBS
#define SBD_OBS_INC(CounterId)                                                 \
  (::sbd::obs::tlsShard().add(::sbd::obs::Counter::CounterId, 1))
#define SBD_OBS_ADD(CounterId, N)                                              \
  (::sbd::obs::tlsShard().add(::sbd::obs::Counter::CounterId,                  \
                              static_cast<uint64_t>(N)))
#else
#define SBD_OBS_INC(CounterId) ((void)0)
#define SBD_OBS_ADD(CounterId, N) ((void)0)
#endif

} // namespace obs

/// Hit/miss/probe counters for one interning table or memo cache owner.
/// All counters are plain (non-atomic) — each arena is single-threaded by
/// design (see DESIGN.md, "thread-local arena rule"); cross-thread
/// aggregation happens only after workers join.
struct CacheStats {
  /// Hash-consing: structurally-equal node re-interned (no allocation).
  uint64_t InternHits = 0;
  /// Hash-consing: fresh node appended to the arena.
  uint64_t InternMisses = 0;
  /// Memoized δ/δdnf/negate/Brzozowski result served from a memo slot.
  uint64_t MemoHits = 0;
  /// Memo slot was empty; the result was computed and recorded.
  uint64_t MemoMisses = 0;
  /// Total open-addressing probe steps across all table lookups.
  uint64_t ProbeSteps = 0;
  /// Number of table lookups (probe-length denominator).
  uint64_t Lookups = 0;

  void reset() { *this = CacheStats(); }

  CacheStats &operator+=(const CacheStats &O) {
    InternHits += O.InternHits;
    InternMisses += O.InternMisses;
    MemoHits += O.MemoHits;
    MemoMisses += O.MemoMisses;
    ProbeSteps += O.ProbeSteps;
    Lookups += O.Lookups;
    return *this;
  }

  /// Folds these counters into a registry shard under the unified names.
  void foldInto(obs::MetricShard &Shard) const {
    Shard.add(obs::Counter::InternHits, InternHits);
    Shard.add(obs::Counter::InternMisses, InternMisses);
    Shard.add(obs::Counter::MemoHits, MemoHits);
    Shard.add(obs::Counter::MemoMisses, MemoMisses);
    Shard.add(obs::Counter::ProbeSteps, ProbeSteps);
    Shard.add(obs::Counter::Lookups, Lookups);
  }

  double internHitRate() const {
    uint64_t Total = InternHits + InternMisses;
    return Total ? static_cast<double>(InternHits) /
                       static_cast<double>(Total)
                 : 0.0;
  }
  double memoHitRate() const {
    uint64_t Total = MemoHits + MemoMisses;
    return Total ? static_cast<double>(MemoHits) / static_cast<double>(Total)
                 : 0.0;
  }
  /// Mean probe steps per lookup (1.0 = every key found in its home slot).
  double avgProbeLength() const {
    return Lookups ? static_cast<double>(ProbeSteps) /
                         static_cast<double>(Lookups)
                   : 0.0;
  }

  /// One-line human-readable rendering for benchmark output.
  std::string summary() const {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "intern %llu/%llu (%.1f%% hit) memo %llu/%llu (%.1f%% hit) "
                  "avg-probe %.2f",
                  static_cast<unsigned long long>(InternHits),
                  static_cast<unsigned long long>(InternHits + InternMisses),
                  internHitRate() * 100.0,
                  static_cast<unsigned long long>(MemoHits),
                  static_cast<unsigned long long>(MemoHits + MemoMisses),
                  memoHitRate() * 100.0, avgProbeLength());
    return Buf;
  }
};

} // namespace sbd

#endif // SBD_SUPPORT_METRICS_H
