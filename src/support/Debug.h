//===- support/Debug.h - Internal-error helpers ---------------------------===//
///
/// \file
/// Small helpers for reporting violated invariants. `sbd_unreachable` is used
/// to mark control-flow points that are impossible when the program
/// invariants hold (e.g. a fully covered switch over a node kind).
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SUPPORT_DEBUG_H
#define SBD_SUPPORT_DEBUG_H

#include <cstdio>
#include <cstdlib>

namespace sbd {

/// Aborts with a message; marks code paths that must never execute.
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         int Line) {
  std::fprintf(stderr, "sbd fatal: %s at %s:%d\n", Msg, File, Line);
  std::abort();
}

} // namespace sbd

#define sbd_unreachable(MSG) ::sbd::unreachableImpl(MSG, __FILE__, __LINE__)

#endif // SBD_SUPPORT_DEBUG_H
