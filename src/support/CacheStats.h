//===- support/CacheStats.h - Hot-path cache instrumentation ----------------===//
///
/// \file
/// Counters for the interning/memoization layers the paper's complexity
/// argument leans on (Theorem 7.1: derivatives are cheap *because* terms are
/// hash-consed and δ/δdnf are memoized). Every arena and engine owns one
/// `CacheStats`; the benchmark harness aggregates and prints them so that
/// cache effectiveness is measured, not asserted.
///
/// Compile with `-DSBD_STATS=0` to strip every counter update; the
/// `SBD_STATS_*` macros then expand to nothing and the struct stays as a
/// zero-cost shell so call sites need no `#if` guards.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SUPPORT_CACHESTATS_H
#define SBD_SUPPORT_CACHESTATS_H

#include <cstdint>
#include <cstdio>
#include <string>

#ifndef SBD_STATS
#define SBD_STATS 1
#endif

#if SBD_STATS
#define SBD_STATS_INC(Stats, Field) ((Stats).Field += 1)
#define SBD_STATS_ADD(Stats, Field, N) ((Stats).Field += (N))
#else
#define SBD_STATS_INC(Stats, Field) ((void)0)
#define SBD_STATS_ADD(Stats, Field, N) ((void)0)
#endif

namespace sbd {

/// Hit/miss/probe counters for one interning table or memo cache owner.
/// All counters are plain (non-atomic) — each arena is single-threaded by
/// design (see DESIGN.md, "thread-local arena rule"); cross-thread
/// aggregation happens only after workers join.
struct CacheStats {
  /// Hash-consing: structurally-equal node re-interned (no allocation).
  uint64_t InternHits = 0;
  /// Hash-consing: fresh node appended to the arena.
  uint64_t InternMisses = 0;
  /// Memoized δ/δdnf/negate/Brzozowski result served from a memo slot.
  uint64_t MemoHits = 0;
  /// Memo slot was empty; the result was computed and recorded.
  uint64_t MemoMisses = 0;
  /// Total open-addressing probe steps across all table lookups.
  uint64_t ProbeSteps = 0;
  /// Number of table lookups (probe-length denominator).
  uint64_t Lookups = 0;

  void reset() { *this = CacheStats(); }

  CacheStats &operator+=(const CacheStats &O) {
    InternHits += O.InternHits;
    InternMisses += O.InternMisses;
    MemoHits += O.MemoHits;
    MemoMisses += O.MemoMisses;
    ProbeSteps += O.ProbeSteps;
    Lookups += O.Lookups;
    return *this;
  }

  double internHitRate() const {
    uint64_t Total = InternHits + InternMisses;
    return Total ? static_cast<double>(InternHits) / Total : 0.0;
  }
  double memoHitRate() const {
    uint64_t Total = MemoHits + MemoMisses;
    return Total ? static_cast<double>(MemoHits) / Total : 0.0;
  }
  /// Mean probe steps per lookup (1.0 = every key found in its home slot).
  double avgProbeLength() const {
    return Lookups ? static_cast<double>(ProbeSteps) / Lookups : 0.0;
  }

  /// One-line human-readable rendering for benchmark output.
  std::string summary() const {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "intern %llu/%llu (%.1f%% hit) memo %llu/%llu (%.1f%% hit) "
                  "avg-probe %.2f",
                  static_cast<unsigned long long>(InternHits),
                  static_cast<unsigned long long>(InternHits + InternMisses),
                  internHitRate() * 100.0,
                  static_cast<unsigned long long>(MemoHits),
                  static_cast<unsigned long long>(MemoHits + MemoMisses),
                  memoHitRate() * 100.0, avgProbeLength());
    return Buf;
  }
};

} // namespace sbd

#endif // SBD_SUPPORT_CACHESTATS_H
