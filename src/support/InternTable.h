//===- support/InternTable.h - Flat open-addressing hash tables -------------===//
// sbd-lint: hot-path
///
/// \file
/// The two flat hash containers the hot path runs on, replacing the earlier
/// `std::unordered_map<uint64_t, std::vector<uint32_t>>` bucket chains:
///
///   - `InternTable`: a find-or-insert index for hash-consing arenas. Slots
///     are (hash, id) pairs in one contiguous power-of-two array with linear
///     probing; the node payload itself lives in the arena's dense
///     `std::vector`, so the table never owns data and rehashing moves 12
///     bytes per entry with no recomputation. Entries are never erased
///     (arenas only grow), which keeps probing tombstone-free.
///
///   - `FlatMap64`: a uint64 -> uint32 open-addressing map for sparse memo
///     caches keyed by packed ids (e.g. the classical-derivative memo keyed
///     by (regex id, character)).
///
/// Both count probe lengths into a `CacheStats` when one is attached, and
/// both are single-threaded by design: concurrency is handled one level up
/// by giving each worker its own arena (DESIGN.md, "thread-local arena
/// rule").
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SUPPORT_INTERNTABLE_H
#define SBD_SUPPORT_INTERNTABLE_H

#include "support/Metrics.h"

#include <cstdint>
#include <vector>

namespace sbd {

/// Open-addressing find-or-insert index over ids assigned by the caller.
/// The caller supplies the equality check (against its arena) and the id
/// allocation, so one table type serves regex nodes, transition-regex nodes
/// and CharSet pools alike.
class InternTable {
  static constexpr uint32_t EmptyId = 0xFFFFFFFFu;

  struct Slot {
    uint64_t Hash;
    uint32_t Id = EmptyId;
  };

public:
  InternTable() { Slots.resize(InitialSlots); }

  size_t size() const { return Count; }

  /// Pre-sizes the table for \p N entries (rounds up to keep the load
  /// factor below ~0.7).
  void reserve(size_t N) {
    size_t Needed = nextPow2(N + N / 2 + 1);
    if (Needed > Slots.size())
      rehash(Needed);
  }

  /// Drops all entries but keeps the allocation.
  void clear() {
    for (Slot &S : Slots)
      S.Id = EmptyId;
    Count = 0;
  }

  /// Looks up \p Hash; \p Eq(id) must decide whether the candidate id is the
  /// sought entry (hash collisions are possible). When absent, \p Make() is
  /// invoked to append the node to the arena and its id is recorded.
  /// `Make` must not touch this table (arenas never re-enter interning of
  /// the same table from a node constructor).
  template <typename EqFn, typename MakeFn>
  uint32_t findOrInsert(uint64_t Hash, EqFn &&Eq, MakeFn &&Make,
                        CacheStats &Stats) {
    if ((Count + 1) * 10 >= Slots.size() * 7)
      rehash(Slots.size() * 2);
    size_t Mask = Slots.size() - 1;
    size_t Idx = static_cast<size_t>(Hash) & Mask;
    SBD_STATS_INC(Stats, Lookups);
    SBD_STATS_INC(Stats, ProbeSteps);
    while (Slots[Idx].Id != EmptyId) {
      if (Slots[Idx].Hash == Hash && Eq(Slots[Idx].Id)) {
        SBD_STATS_INC(Stats, InternHits);
        return Slots[Idx].Id;
      }
      Idx = (Idx + 1) & Mask;
      SBD_STATS_INC(Stats, ProbeSteps);
    }
    uint32_t Id = Make();
    Slots[Idx] = {Hash, Id};
    ++Count;
    SBD_STATS_INC(Stats, InternMisses);
    return Id;
  }

private:
  static constexpr size_t InitialSlots = 64;

  static size_t nextPow2(size_t N) {
    size_t P = InitialSlots;
    while (P < N)
      P <<= 1;
    return P;
  }

  void rehash(size_t NewSize) {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(NewSize, Slot{});
    size_t Mask = NewSize - 1;
    for (const Slot &S : Old) {
      if (S.Id == EmptyId)
        continue;
      size_t Idx = static_cast<size_t>(S.Hash) & Mask;
      while (Slots[Idx].Id != EmptyId)
        Idx = (Idx + 1) & Mask;
      Slots[Idx] = S;
    }
  }

  std::vector<Slot> Slots;
  size_t Count = 0;
};

/// Open-addressing uint64 -> uint32 map for sparse memo caches. Keys are
/// caller-packed (the all-ones key is reserved as the empty marker); values
/// are ids. No erase — memo caches are dropped wholesale via clear().
class FlatMap64 {
  static constexpr uint64_t EmptyKey = ~0ULL;

  struct Slot {
    uint64_t Key = EmptyKey;
    uint32_t Value = 0;
  };

public:
  FlatMap64() { Slots.resize(InitialSlots); }

  size_t size() const { return Count; }

  void clear() {
    for (Slot &S : Slots)
      S.Key = EmptyKey;
    Count = 0;
  }

  /// Returns a pointer to the stored value, or nullptr when absent.
  const uint32_t *find(uint64_t Key) const {
    size_t Mask = Slots.size() - 1;
    size_t Idx = static_cast<size_t>(hashMix64(Key)) & Mask;
    while (Slots[Idx].Key != EmptyKey) {
      if (Slots[Idx].Key == Key)
        return &Slots[Idx].Value;
      Idx = (Idx + 1) & Mask;
    }
    return nullptr;
  }

  /// Inserts or overwrites.
  void insert(uint64_t Key, uint32_t Value) {
    if ((Count + 1) * 10 >= Slots.size() * 7)
      rehash(Slots.size() * 2);
    size_t Mask = Slots.size() - 1;
    size_t Idx = static_cast<size_t>(hashMix64(Key)) & Mask;
    while (Slots[Idx].Key != EmptyKey) {
      if (Slots[Idx].Key == Key) {
        Slots[Idx].Value = Value;
        return;
      }
      Idx = (Idx + 1) & Mask;
    }
    Slots[Idx] = {Key, Value};
    ++Count;
  }

private:
  static constexpr size_t InitialSlots = 64;

  void rehash(size_t NewSize) {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(NewSize, Slot{});
    size_t Mask = NewSize - 1;
    for (const Slot &S : Old) {
      if (S.Key == EmptyKey)
        continue;
      size_t Idx = static_cast<size_t>(hashMix64(S.Key)) & Mask;
      while (Slots[Idx].Key != EmptyKey)
        Idx = (Idx + 1) & Mask;
      Slots[Idx] = S;
    }
  }

  static uint64_t hashMix64(uint64_t X) {
    X += 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    return X ^ (X >> 31);
  }

  std::vector<Slot> Slots;
  size_t Count = 0;
};

} // namespace sbd

#endif // SBD_SUPPORT_INTERNTABLE_H
