//===- support/Exposition.h - Metrics exposition writer (sbd::obs) ----------===//
///
/// \file
/// The scrape surface of the observability subsystem: renders the merged
/// counter registry (support/Metrics.h) and histogram registry
/// (support/Histogram.h) as
///
///  - Prometheus text exposition format (`sbd_<counter>` counters and
///    `sbd_<hist>_bucket{le="..."}` / `_sum` / `_count` histogram series),
///    the format a future resident solver service exposes on /metrics; and
///  - one-line JSONL snapshots (`{"counters": {...}, "histograms": {...}}`)
///    for appending periodic samples to a log.
///
/// Long-running front ends (BatchSolver, the bench harnesses via
/// BenchArgs) can arm a SIGUSR1-driven dump: the signal handler only sets
/// an atomic flag, and pollExposition() — called from safe points like the
/// batch work loop — performs the actual write. Safe in `-DSBD_OBS=0`
/// builds: the registries then hold only zeros. See DESIGN.md §13.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SUPPORT_EXPOSITION_H
#define SBD_SUPPORT_EXPOSITION_H

#include <string>

namespace sbd {
namespace obs {

/// Prometheus text exposition of both registries' merged snapshots.
std::string prometheusText();

/// One-line JSON snapshot of both registries (no trailing newline).
std::string snapshotJson();

/// Writes prometheusText() to \p Path (truncating); false on I/O error.
bool writePrometheus(const std::string &Path);

/// Appends snapshotJson() plus a newline to \p Path; false on I/O error.
bool appendSnapshotJsonl(const std::string &Path);

/// Arms dump-on-signal: installs a SIGUSR1 handler that sets a flag, and
/// remembers \p PromPath as the dump target. Pass an empty path to disarm
/// (the handler stays installed but polls become no-ops).
void armSignalExposition(const std::string &PromPath);

/// Safe-point hook: when a SIGUSR1 arrived since the last poll, writes the
/// armed exposition file and returns true. One relaxed atomic load when no
/// signal is pending, so work loops can call it per item.
bool pollExposition();

/// Requests a dump as if SIGUSR1 had been received (tests, and callers
/// that want an interval dump: request + poll).
void requestExpositionDump();

} // namespace obs
} // namespace sbd

#endif // SBD_SUPPORT_EXPOSITION_H
