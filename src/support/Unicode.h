//===- support/Unicode.h - Code point utilities -----------------------------===//
///
/// \file
/// Utilities for working with Unicode code points: UTF-8 encoding of witness
/// strings and printable escaping for diagnostics. The alphabet theory works
/// over raw code points (0..0x10FFFF); these helpers only matter at the
/// input/output boundary.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SUPPORT_UNICODE_H
#define SBD_SUPPORT_UNICODE_H

#include <cstdint>
#include <string>
#include <vector>

namespace sbd {

/// Maximum valid Unicode code point.
inline constexpr uint32_t MaxCodePoint = 0x10FFFF;

/// Appends the UTF-8 encoding of \p Cp to \p Out. \p Cp must be a valid code
/// point (<= MaxCodePoint); surrogates are encoded permissively (WTF-8 style)
/// since the solver's domain is raw code points.
void appendUtf8(uint32_t Cp, std::string &Out);

/// Encodes a whole code-point sequence as UTF-8.
std::string toUtf8(const std::vector<uint32_t> &Word);

/// Decodes UTF-8 into code points. Invalid bytes decode as U+FFFD and
/// consume one byte (lossy but total; used only by the front ends).
std::vector<uint32_t> fromUtf8(const std::string &Bytes);

/// Renders a code point for human consumption: printable ASCII as-is,
/// everything else as \\uXXXX / \\U{XXXXXX}.
std::string escapeCodePoint(uint32_t Cp);

/// Renders a code-point word for human consumption (each char escaped).
std::string escapeWord(const std::vector<uint32_t> &Word);

} // namespace sbd

#endif // SBD_SUPPORT_UNICODE_H
