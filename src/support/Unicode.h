//===- support/Unicode.h - Code point utilities -----------------------------===//
///
/// \file
/// Utilities for working with Unicode code points: UTF-8 encoding of witness
/// strings and printable escaping for diagnostics. The alphabet theory works
/// over raw code points (0..0x10FFFF); these helpers only matter at the
/// input/output boundary.
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SUPPORT_UNICODE_H
#define SBD_SUPPORT_UNICODE_H

#include <cstdint>
#include <string>
#include <vector>

namespace sbd {

/// Maximum valid Unicode code point.
inline constexpr uint32_t MaxCodePoint = 0x10FFFF;

/// Appends the UTF-8 encoding of \p Cp to \p Out. \p Cp must be a valid code
/// point (<= MaxCodePoint); surrogates are encoded permissively (WTF-8 style)
/// since the solver's domain is raw code points.
void appendUtf8(uint32_t Cp, std::string &Out);

/// Encodes a whole code-point sequence as UTF-8.
std::string toUtf8(const std::vector<uint32_t> &Word);

/// Decodes UTF-8 into code points. Invalid bytes decode as U+FFFD and
/// consume one byte (lossy but total; used only by the front ends).
std::vector<uint32_t> fromUtf8(const std::string &Bytes);

/// Decodes one code point of \p Bytes starting at offset \p I and advances
/// \p I past the consumed bytes (same lossy-but-total semantics as
/// fromUtf8, which is implemented on top of this). Callers that stream a
/// string character-by-character avoid materializing the code-point vector.
/// Precondition: I < Bytes.size().
inline uint32_t decodeUtf8At(const std::string &Bytes, size_t &I) {
  size_t N = Bytes.size();
  auto cont = [&](size_t K) {
    return I + K < N && (static_cast<uint8_t>(Bytes[I + K]) & 0xC0) == 0x80;
  };
  uint8_t B0 = static_cast<uint8_t>(Bytes[I]);
  if (B0 < 0x80) {
    ++I;
    return B0;
  }
  if ((B0 & 0xE0) == 0xC0 && cont(1)) {
    uint32_t Cp = (static_cast<uint32_t>(B0 & 0x1F) << 6) |
                  (static_cast<uint8_t>(Bytes[I + 1]) & 0x3F);
    I += 2;
    return Cp;
  }
  if ((B0 & 0xF0) == 0xE0 && cont(1) && cont(2)) {
    uint32_t Cp = (static_cast<uint32_t>(B0 & 0x0F) << 12) |
                  ((static_cast<uint32_t>(Bytes[I + 1]) & 0x3F) << 6) |
                  (static_cast<uint8_t>(Bytes[I + 2]) & 0x3F);
    I += 3;
    return Cp;
  }
  if ((B0 & 0xF8) == 0xF0 && cont(1) && cont(2) && cont(3)) {
    uint32_t Cp = (static_cast<uint32_t>(B0 & 0x07) << 18) |
                  ((static_cast<uint32_t>(Bytes[I + 1]) & 0x3F) << 12) |
                  ((static_cast<uint32_t>(Bytes[I + 2]) & 0x3F) << 6) |
                  (static_cast<uint8_t>(Bytes[I + 3]) & 0x3F);
    I += 4;
    return Cp <= MaxCodePoint ? Cp : 0xFFFD;
  }
  ++I;
  return 0xFFFD;
}

/// Renders a code point for human consumption: printable ASCII as-is,
/// everything else as \\uXXXX / \\U{XXXXXX}.
std::string escapeCodePoint(uint32_t Cp);

/// Renders a code-point word for human consumption (each char escaped).
std::string escapeWord(const std::vector<uint32_t> &Word);

} // namespace sbd

#endif // SBD_SUPPORT_UNICODE_H
