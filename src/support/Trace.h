//===- support/Trace.h - Span/event tracer (sbd::obs) -----------------------===//
///
/// \file
/// The timeline half of the observability subsystem: a lightweight span
/// tracer whose output loads directly into `chrome://tracing` / Perfetto
/// (Chrome `trace_event` JSON, "X" complete events).
///
/// Cost model:
///
///  - Disabled (the default): `ScopedSpan` construction is one relaxed
///    atomic load and a branch; no clock is read, nothing allocates. The
///    `SBD_SPAN` macro additionally compiles to nothing at `-DSBD_OBS=0`.
///  - Enabled: each span reads the monotonic clock twice and appends one
///    event to a *per-thread* buffer — no locks on the hot path; buffers
///    are merged under a mutex only at export time (or when a thread
///    exits). Span names/categories must be string literals (the tracer
///    stores the pointers).
///
/// Usage:
///
///   obs::Tracer::global().start();
///   ... run queries ...
///   obs::Tracer::global().stop();
///   obs::Tracer::global().writeChromeTrace("out.trace.json");
///
//===----------------------------------------------------------------------===//

#ifndef SBD_SUPPORT_TRACE_H
#define SBD_SUPPORT_TRACE_H

#include "support/Metrics.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace sbd {
namespace obs {

/// One completed span ("X" event). Timestamps are microseconds since the
/// tracer epoch (the last start() call).
struct TraceEvent {
  const char *Name; ///< static string (not copied)
  const char *Cat;  ///< static string (not copied)
  int64_t TsUs;
  int64_t DurUs;
  /// Pre-rendered JSON members for the "args" object (may be empty),
  /// e.g. "\"pattern\": \"a*b\"".
  std::string Args;
};

/// Process-wide tracer. Singleton, intentionally leaked (thread-exit hooks
/// must never race its destructor).
class Tracer {
public:
  static Tracer &global();

  /// Fast path for instrumentation sites: is any tracing active?
  static bool active() { return Enabled.load(std::memory_order_relaxed); }

  /// Clears previously collected events, resets the epoch, enables
  /// collection.
  void start();
  /// Stops collection (already-collected events are kept for export).
  void stop();
  /// Drops all collected events (start() also does this).
  void clear();

  /// Microseconds since the epoch.
  int64_t nowUs() const;

  /// Appends one event to the calling thread's buffer. No-op when not
  /// enabled. Once a thread's buffer holds maxEventsPerThread() events the
  /// newest events are dropped (the earliest window of a run is the one
  /// that explains it) and `trace_events_dropped` is bumped, so service
  /// style always-on tracing cannot grow memory without bound.
  void record(TraceEvent E);

  /// Per-thread event cap driving the drop policy; 0 means unbounded.
  /// Takes effect for events recorded after the call.
  void setMaxEventsPerThread(size_t Max);
  size_t maxEventsPerThread() const;

  /// Renders all collected events (retired + live threads) as a Chrome
  /// trace_event JSON document. Call with worker threads joined.
  std::string chromeTraceJson();

  /// Writes chromeTraceJson() to \p Path; returns false on I/O error.
  bool writeChromeTrace(const std::string &Path);

  /// Number of collected events (diagnostics/tests).
  size_t eventCount();

private:
  Tracer() = default;
  Tracer(const Tracer &) = delete;

  struct Impl;
  static Impl &impl();

  static std::atomic<bool> Enabled;
};

/// RAII span: measures construction→destruction and records it under the
/// tracer when active. When constructed with the tracer off it does
/// nothing — including if the tracer is switched on mid-lifetime.
class ScopedSpan {
public:
  ScopedSpan(const char *SpanName, const char *SpanCat = "sbd")
      : Name(SpanName), Cat(SpanCat), Live(Tracer::active()) {
    if (Live)
      StartUs = Tracer::global().nowUs();
  }

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  /// Attaches a string argument (shown in the trace viewer's args pane).
  /// Cheap no-op when the span is not live. \p Key must be a literal.
  void arg(const char *Key, const std::string &Value);
  /// Attaches a numeric argument.
  void arg(const char *Key, uint64_t Value);

  ~ScopedSpan() {
    if (Live)
      finish();
  }

private:
  void finish();

  const char *Name;
  const char *Cat;
  bool Live;
  int64_t StartUs = 0;
  std::string Args;
};

#if SBD_OBS
#define SBD_OBS_CONCAT2(A, B) A##B
#define SBD_OBS_CONCAT(A, B) SBD_OBS_CONCAT2(A, B)
/// Declares a block-scoped span with a unique name. Usage:
///   SBD_SPAN("checkSat", "solver");
#define SBD_SPAN(NameLit, CatLit)                                              \
  ::sbd::obs::ScopedSpan SBD_OBS_CONCAT(SbdSpan_, __LINE__)(NameLit, CatLit)
#else
#define SBD_SPAN(NameLit, CatLit) ((void)0)
#endif

} // namespace obs
} // namespace sbd

#endif // SBD_SUPPORT_TRACE_H
