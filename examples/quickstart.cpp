//===- examples/quickstart.cpp - Five-minute tour of the library ------------===//
///
/// \file
/// Parse extended regexes, take symbolic derivatives, and decide
/// satisfiability of Boolean combinations of membership constraints —
/// the core workflow of the paper in one page.
///
//===----------------------------------------------------------------------===//

#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Unicode.h"

#include <cstdio>

using namespace sbd;

int main() {
  // Every object lives in an arena trio: regexes, transition regexes, and
  // the derivative engine tying them together.
  RegexManager M;
  TrManager T(M);
  DerivativeEngine Engine(M, T);
  RegexSolver Solver(Engine);

  // 1. Parse extended regexes (full Unicode, intersection `&`,
  //    complement `~`, bounded loops `{m,n}`).
  Re HasDigit = parseRegexOrDie(M, ".*\\d.*");
  Re No01 = parseRegexOrDie(M, "~(.*01.*)");
  std::printf("parsed:  %s   and   %s\n", M.toString(HasDigit).c_str(),
              M.toString(No01).c_str());

  // 2. Take a symbolic derivative: a transition regex with conditionals.
  Tr Delta = Engine.derivativeDnf(M.inter(HasDigit, No01));
  std::printf("derivative: %s\n", T.toString(Delta).c_str());

  // 3. Decide satisfiability of the conjunction (the Section 2 password
  //    constraint): "contains a digit but not the subsequence 01".
  SolveResult R = Solver.checkMembership({{HasDigit, true},
                                          {parseRegexOrDie(M, ".*01.*"), false}});
  std::printf("password constraint: %s", statusName(R.Status));
  if (R.isSat())
    std::printf("   witness: \"%s\"", escapeWord(R.Witness).c_str());
  std::printf("\n");

  // 4. Prove an unsatisfiability that needs dead-state detection.
  Re Impossible = M.inter(parseRegexOrDie(M, "(ab)+"),
                          parseRegexOrDie(M, "(ba)+"));
  std::printf("(ab)+ & (ba)+ : %s\n",
              statusName(Solver.checkSat(Impossible).Status));

  // 5. Language reasoning: containment and equivalence reduce to emptiness
  //    through the Boolean operations.
  std::printf("a(ba)* == (ab)*a : %s\n",
              Solver.checkEquivalent(parseRegexOrDie(M, "a(ba)*"),
                                     parseRegexOrDie(M, "(ab)*a"))
                      .isUnsat()
                  ? "equivalent"
                  : "different");
  return 0;
}
