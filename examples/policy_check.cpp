//===- examples/policy_check.cpp - Audit a cloud policy (Fig. 1) -------------===//
///
/// \file
/// The full Fig. 1 pipeline as a command-line tool: reads an Azure-style
/// policy JSON (file argument, or the built-in Fig. 1 document) and reports
/// whether the rule can ever fire, with an activating field assignment —
/// the "sanity check for SMT" from the paper's introduction. Pass two files
/// to check whether the first policy's firing implies the second's.
///
//===----------------------------------------------------------------------===//

#include "policy/Policy.h"

#include "core/Derivatives.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace sbd;

static const char *Fig1Policy = R"({
  "if": {"allOf": [{"field": "date", "match": "####-???-##"},
                   {"anyOf": [{"field": "date", "like": "2019*"},
                              {"field": "date", "like": "2020*"}]}]},
  "then": {"effect": "audit"}
})";

static const char *Fig1BuggyPolicy = R"({
  "if": {"allOf": [{"field": "date", "match": "####-???-##"},
                   {"anyOf": [{"field": "date", "like": "*2019"},
                              {"field": "date", "like": "*2020"}]}]},
  "then": {"effect": "audit"}
})";

namespace {

std::string readFile(const char *Path) {
  std::ifstream File(Path);
  if (!File) {
    std::fprintf(stderr, "error: cannot open %s\n", Path);
    std::exit(2);
  }
  std::stringstream Ss;
  Ss << File.rdbuf();
  return Ss.str();
}

void report(const char *Label, const PolicyAnalysis &A) {
  std::printf("%s: ", Label);
  switch (A.Status) {
  case SolveStatus::Sat:
    std::printf("the rule CAN fire (effect: %s)\n",
                A.Effect.empty() ? "-" : A.Effect.c_str());
    for (const auto &[Field, Value] : A.Activation)
      std::printf("  e.g. %s = \"%s\"\n", Field.c_str(), Value.c_str());
    break;
  case SolveStatus::Unsat:
    std::printf("the rule can NEVER fire — it is dead policy text\n");
    break;
  default:
    std::printf("%s (%s)\n", statusName(A.Status), A.Note.c_str());
    break;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  RegexSolver Solver(E);
  PolicyChecker Checker(Solver);

  if (Argc >= 3) {
    SolveStatus S = Checker.implies(readFile(Argv[1]), readFile(Argv[2]));
    std::printf("policy %s fires ⇒ policy %s fires: %s\n", Argv[1], Argv[2],
                S == SolveStatus::Unsat  ? "yes"
                : S == SolveStatus::Sat  ? "no"
                                         : statusName(S));
    return S == SolveStatus::Unsat ? 0 : 1;
  }
  if (Argc == 2) {
    report(Argv[1], Checker.analyze(readFile(Argv[1])));
    return 0;
  }

  std::printf("no input file — checking the paper's Fig. 1 policies\n\n");
  std::printf("%s\n", Fig1Policy);
  report("Fig. 1 policy", Checker.analyze(Fig1Policy));
  std::printf("\nbuggy variant (.*2019/.*2020 as suffixes):\n");
  report("buggy policy", Checker.analyze(Fig1BuggyPolicy));
  return 0;
}
