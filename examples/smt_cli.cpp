//===- examples/smt_cli.cpp - Command-line SMT-LIB solver -------------------===//
///
/// \file
/// A miniature `z3`-style driver: reads an SMT-LIB script (file argument or
/// stdin) in the string/regex fragment and prints sat/unsat plus a model.
/// With no input it runs a built-in demonstration script — the Fig. 1 date
/// policy in SMT-LIB form.
///
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

using namespace sbd;

static const char *DemoScript = R"((set-info :status sat)
(declare-const date String)
(assert (str.in_re date
  (re.++ ((_ re.loop 4 4) (re.range "0" "9"))
         (str.to_re "-")
         ((_ re.loop 3 3) (re.union (re.range "a" "z") (re.range "A" "Z")))
         (str.to_re "-")
         ((_ re.loop 2 2) (re.range "0" "9")))))
(assert (or (str.in_re date (re.++ (str.to_re "2019") re.all))
            (str.in_re date (re.++ (str.to_re "2020") re.all))))
(check-sat)
)";

int main(int Argc, char **Argv) {
  std::string Input;
  if (Argc > 1) {
    std::ifstream File(Argv[1]);
    if (!File) {
      std::fprintf(stderr, "error: cannot open %s\n", Argv[1]);
      return 1;
    }
    std::stringstream Ss;
    Ss << File.rdbuf();
    Input = Ss.str();
  } else {
    std::printf("; no input file — running the built-in Fig. 1 demo\n%s\n",
                DemoScript);
    Input = DemoScript;
  }

  RegexManager M;
  TrManager T(M);
  DerivativeEngine Engine(M, T);
  RegexSolver Solver(Engine);
  SmtSolver Smt(Solver);

  SolveOptions Opts;
  Opts.TimeoutMs = 10000;
  SmtResult R = Smt.solveScript(Input, Opts);

  std::printf("%s\n", statusName(R.Status));
  if (R.Status == SolveStatus::Sat) {
    std::printf("(model\n");
    for (const auto &[Var, Value] : R.Model)
      std::printf("  (define-fun %s () String \"%s\")\n", Var.c_str(),
                  Value.c_str());
    std::printf(")\n");
  }
  if (R.Status != SolveStatus::Sat && R.Status != SolveStatus::Unsat &&
      R.Stop != StopReason::None)
    std::printf("; stop reason: %s\n", stopReasonName(R.Stop));
  if (!R.Note.empty())
    std::printf("; note: %s\n", R.Note.c_str());
  if (!R.Statistics.empty())
    std::printf("%s\n", R.Statistics.c_str());
  if (R.ExpectedSat.has_value()) {
    bool Agrees = (R.Status == SolveStatus::Sat && *R.ExpectedSat) ||
                  (R.Status == SolveStatus::Unsat && !*R.ExpectedSat);
    std::printf("; labeled status: %s — %s\n", *R.ExpectedSat ? "sat" : "unsat",
                Agrees ? "matched" : "NOT matched");
  }
  return 0;
}
