//===- examples/sbfa_demo.cpp - SBFA construction (Fig. 5, Thm 7.3) ---------===//
///
/// \file
/// Builds the Symbolic Boolean Finite Automaton of Example 7.4
/// (r = .*[a-z].* & .*\d.*), prints its states and transition regexes, and
/// demonstrates the Theorem 7.3 bound |Q| ≤ ♯(R)+3 and the SAFA conversion
/// by local mintermization (Section 8.3).
///
//===----------------------------------------------------------------------===//

#include "automata/Safa.h"
#include "re/RegexParser.h"
#include "support/Unicode.h"

#include <cstdio>

using namespace sbd;

namespace {

void demo(DerivativeEngine &E, const char *Pattern) {
  RegexManager &M = E.regexManager();
  TrManager &T = E.trManager();
  Re R = parseRegexOrDie(M, Pattern);

  auto A = Sbfa::build(E, R);
  if (!A) {
    std::printf("%s: state budget exceeded\n", Pattern);
    return;
  }
  std::printf("SBFA(%s):\n", Pattern);
  std::printf("  |Q| = %zu, #(R) = %u, bound #(R)+3 = %u%s\n",
              A->numStates(), M.node(R).NumPreds, M.node(R).NumPreds + 3,
              M.isBooleanOverRe(R) && M.isClean(R) && M.isLoopFree(R)
                  ? "  (Theorem 7.3 applies)"
                  : "  (loops/ERE: bound not claimed)");
  for (uint32_t Q = 0; Q != A->numStates(); ++Q)
    std::printf("  q%-2u %s %-28s  ∆ = %s\n", Q, A->isFinal(Q) ? "F" : " ",
                M.toString(A->states()[Q]).c_str(),
                T.toString(A->transition(Q)).c_str());

  // Alternating-run acceptance agrees with the derivative matcher.
  for (const char *W : {"a1", "1a", "a", "1", "xx9yy", ""}) {
    std::vector<uint32_t> Word = fromUtf8(W);
    std::printf("  accepts(\"%s\") = %s\n", W,
                A->accepts(Word) ? "true" : "false");
  }

  // SAFA via local mintermization.
  Safa S = Safa::fromSbfa(*A);
  std::printf("  SAFA: %zu states, %zu mintermized transitions\n\n",
              S.numStates(), S.numTransitions());
}

} // namespace

int main() {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);

  // Example 7.4 / Fig. 5.
  demo(E, "(.*[a-z].*)&(.*\\d.*)");
  // The running example.
  demo(E, "(.*\\d.*)&~(.*01.*)");
  // A classical determinization-blowup witness stays linear here.
  demo(E, "(.*a.{4})&(.*b.{4})");
  return 0;
}
