//===- examples/password_rules.cpp - Section 2 password constraints ---------===//
///
/// \file
/// The paper's second benchmark family: password validation policies as
/// large intersections of regex constraints (must contain a digit, an upper
/// and lower case letter, a special character, length bounds, banned
/// substrings). Shows how Boolean combinations stay succinct as extended
/// regexes and how the solver produces compliant sample passwords or
/// pinpoints contradictory rule sets.
///
//===----------------------------------------------------------------------===//

#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Unicode.h"

#include <cstdio>
#include <vector>

using namespace sbd;

int main() {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine Engine(M, T);
  RegexSolver Solver(Engine);

  // The classic stackoverflow-style policy, one conjunct per rule.
  struct Rule {
    const char *What;
    const char *Pattern;
    bool Positive;
  };
  std::vector<Rule> Rules = {
      {"at least one digit", ".*\\d.*", true},
      {"at least one lower-case letter", ".*[a-z].*", true},
      {"at least one upper-case letter", ".*[A-Z].*", true},
      {"at least one special character", ".*[!@#$%^&+=].*", true},
      {"length between 8 and 128", ".{8,128}", true},
      {"no whitespace", ".*\\s.*", false},
      {"no '01' subsequence (Section 2)", ".*01.*", false},
  };

  std::printf("password policy:\n");
  std::vector<MembershipLiteral> Literals;
  for (const Rule &R : Rules) {
    std::printf("  %c %s   (%s%s)\n", R.Positive ? '+' : '-', R.What,
                R.Positive ? "" : "not ", R.Pattern);
    Literals.push_back({parseRegexOrDie(M, R.Pattern), R.Positive});
  }

  SolveResult Res = Solver.checkMembership(Literals);
  std::printf("\nstatus: %s\n", statusName(Res.Status));
  if (Res.isSat())
    std::printf("sample compliant password: \"%s\" (length %zu)\n",
                escapeWord(Res.Witness).c_str(), Res.Witness.size());

  // Add a contradictory pair of rules: digits required but all characters
  // must be letters.
  Literals.push_back({parseRegexOrDie(M, "[a-zA-Z]*"), true});
  SolveResult Broken = Solver.checkMembership(Literals);
  std::printf("\nwith 'letters only' rule added: %s (policy is %s)\n",
              statusName(Broken.Status),
              Broken.isUnsat() ? "contradictory" : "fine");

  // Generation with side constraints: passwords that additionally start
  // with a letter (the s0-style split from the end of Section 2).
  Literals.pop_back();
  Re Policy = M.empty();
  {
    std::vector<Re> Parts;
    for (const MembershipLiteral &L : Literals)
      Parts.push_back(L.Positive ? L.Regex : M.complement(L.Regex));
    Policy = M.interList(std::move(Parts));
  }
  Re StartsLetter = Solver.positionConstraint({CharSet::asciiLetter()});
  SolveResult WithSide = Solver.checkSat(M.inter(Policy, StartsLetter));
  std::printf("starting with a letter: %s", statusName(WithSide.Status));
  if (WithSide.isSat())
    std::printf("  e.g. \"%s\"", escapeWord(WithSide.Witness).c_str());
  std::printf("\n");
  return 0;
}
