//===- examples/regex_lab.cpp - Command-line regex laboratory ---------------===//
///
/// \file
/// A small command-line tool exposing the library end to end:
///
///   regex_lab match  <regex> <string>     membership test
///   regex_lab sat    <regex>              satisfiability + witness
///   regex_lab equiv  <regex> <regex>      language equivalence
///   regex_lab subset <regex> <regex>      containment (+ counterexample)
///   regex_lab enum   <regex> [n]          first n words of the language
///   regex_lab deriv  <regex> [ch]         symbolic derivative / D_ch
///   regex_lab sbfa   <regex>              SBFA states + transitions
///
/// The regex syntax is the library's extended syntax: `&` intersection,
/// `~` complement, `{m,n}` loops, classes, escapes (see re/RegexParser.h).
///
//===----------------------------------------------------------------------===//

#include "automata/Dot.h"
#include "automata/Sbfa.h"
#include "core/LanguageOps.h"
#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Unicode.h"

#include <cstdio>
#include <cstring>

using namespace sbd;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s match|sat|equiv|subset|enum|deriv|sbfa <args>\n"
               "  match  <regex> <string>\n"
               "  sat    <regex>\n"
               "  equiv  <regex> <regex>\n"
               "  subset <regex> <regex>\n"
               "  enum   <regex> [n=10]\n"
               "  deriv  <regex> [char]\n"
               "  sbfa   <regex>\n"
               "  dot    <regex>            (GraphViz of the SBFA)\n",
               Prog);
  return 2;
}

Re parseOrExit(RegexManager &M, const char *Pattern) {
  RegexParseResult R = parseRegex(M, Pattern);
  if (!R.Ok) {
    std::fprintf(stderr, "error: %s at offset %zu in \"%s\"\n",
                 R.Error.c_str(), R.ErrorPos, Pattern);
    std::exit(2);
  }
  return R.Value;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage(Argv[0]);

  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  RegexSolver S(E);
  const char *Cmd = Argv[1];

  if (!std::strcmp(Cmd, "match") && Argc == 4) {
    Re R = parseOrExit(M, Argv[2]);
    bool Ok = E.matches(R, std::string(Argv[3]));
    std::printf("%s\n", Ok ? "match" : "no match");
    return Ok ? 0 : 1;
  }

  if (!std::strcmp(Cmd, "sat") && Argc == 3) {
    Re R = parseOrExit(M, Argv[2]);
    SolveResult Res = S.checkSat(R);
    std::printf("%s", statusName(Res.Status));
    if (Res.isSat())
      std::printf("  witness: \"%s\"", escapeWord(Res.Witness).c_str());
    std::printf("  (%zu states)\n", Res.StatesExplored);
    return Res.isSat() ? 0 : 1;
  }

  if (!std::strcmp(Cmd, "equiv") && Argc == 4) {
    Re A = parseOrExit(M, Argv[2]);
    Re B = parseOrExit(M, Argv[3]);
    SolveResult Res = S.checkEquivalent(A, B);
    if (Res.isUnsat()) {
      std::printf("equivalent\n");
      return 0;
    }
    if (Res.isSat()) {
      bool InA = E.matches(A, Res.Witness);
      std::printf("different: \"%s\" is in %s only\n",
                  escapeWord(Res.Witness).c_str(), InA ? Argv[2] : Argv[3]);
      return 1;
    }
    std::printf("unknown\n");
    return 3;
  }

  if (!std::strcmp(Cmd, "subset") && Argc == 4) {
    Re A = parseOrExit(M, Argv[2]);
    Re B = parseOrExit(M, Argv[3]);
    SolveResult Res = S.checkContains(A, B);
    if (Res.isUnsat()) {
      std::printf("subset holds\n");
      return 0;
    }
    if (Res.isSat()) {
      std::printf("not a subset: counterexample \"%s\"\n",
                  escapeWord(Res.Witness).c_str());
      return 1;
    }
    std::printf("unknown\n");
    return 3;
  }

  if (!std::strcmp(Cmd, "enum") && (Argc == 3 || Argc == 4)) {
    Re R = parseOrExit(M, Argv[2]);
    size_t N = Argc == 4 ? std::strtoull(Argv[3], nullptr, 10) : 10;
    auto Words = enumerateLanguage(E, R, N);
    for (const auto &W : Words)
      std::printf("\"%s\"\n", escapeWord(W).c_str());
    if (Words.empty())
      std::printf("(empty language)\n");
    return 0;
  }

  if (!std::strcmp(Cmd, "deriv") && (Argc == 3 || Argc == 4)) {
    Re R = parseOrExit(M, Argv[2]);
    std::printf("R        = %s\n", M.toString(R).c_str());
    std::printf("nullable = %s\n", M.nullable(R) ? "true" : "false");
    std::printf("δ(R)     = %s\n", T.toString(E.derivative(R)).c_str());
    std::printf("δdnf(R)  = %s\n", T.toString(E.derivativeDnf(R)).c_str());
    if (Argc == 4 && Argv[3][0]) {
      uint32_t Ch = fromUtf8(Argv[3])[0];
      std::printf("D_%s(R)   = %s\n", escapeCodePoint(Ch).c_str(),
                  M.toString(E.brzozowski(R, Ch)).c_str());
    }
    return 0;
  }

  if (!std::strcmp(Cmd, "dot") && Argc == 3) {
    Re R = parseOrExit(M, Argv[2]);
    auto A = Sbfa::build(E, R, /*MaxStates=*/2000);
    if (!A) {
      std::fprintf(stderr, "state budget exceeded\n");
      return 3;
    }
    std::printf("%s", sbfaToDot(*A).c_str());
    return 0;
  }

  if (!std::strcmp(Cmd, "sbfa") && Argc == 3) {
    Re R = parseOrExit(M, Argv[2]);
    auto A = Sbfa::build(E, R, /*MaxStates=*/10000);
    if (!A) {
      std::printf("state budget exceeded\n");
      return 3;
    }
    std::printf("|Q| = %zu, #(R) = %u\n", A->numStates(),
                M.node(R).NumPreds);
    for (uint32_t Q = 0; Q != A->numStates(); ++Q)
      std::printf("q%-3u %s %-30s ∆ = %s\n", Q, A->isFinal(Q) ? "F" : " ",
                  M.toString(A->states()[Q]).c_str(),
                  T.toString(A->transition(Q)).c_str());
    return 0;
  }

  return usage(Argv[0]);
}
