//===- examples/derivation_trace.cpp - The Section 2 / Fig. 2 derivation ----===//
///
/// \file
/// Prints the symbolic derivation the paper walks through in Section 2 and
/// Examples 4.5/5.1: derivatives of `.*01.*`, its complement, and the
/// password constraint `(.*\d.*) & ~(.*01.*)`, each as a transition regex
/// with conditionals — the paper's key data structure, visible end to end.
///
//===----------------------------------------------------------------------===//

#include "core/Derivatives.h"
#include "re/RegexParser.h"

#include <cstdio>

using namespace sbd;

namespace {

void show(RegexManager &M, TrManager &T, DerivativeEngine &E, Re R) {
  std::printf("R      = %s\n", M.toString(R).c_str());
  std::printf("  nullable(R) = %s\n", M.nullable(R) ? "true" : "false");
  std::printf("  δ(R)    = %s\n", T.toString(E.derivative(R)).c_str());
  std::printf("  δdnf(R) = %s\n", T.toString(E.derivativeDnf(R)).c_str());
  std::printf("  arcs:\n");
  for (const TrArc &A : T.arcs(E.derivativeDnf(R)))
    std::printf("    --[%s]--> %s\n", A.Guard.str().c_str(),
                M.toString(A.Target).c_str());
  std::printf("\n");
}

} // namespace

int main() {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);

  std::printf("== Example 4.5: derivatives of .*01.* (Fig. 2a/2b) ==\n\n");
  show(M, T, E, parseRegexOrDie(M, ".*01.*"));
  show(M, T, E, parseRegexOrDie(M, "1.*"));

  std::printf("== Example 5.1: the complement ~(.*01.*) (Fig. 2c/2d) ==\n\n");
  Re R = parseRegexOrDie(M, "~(.*01.*)");
  show(M, T, E, R);
  Re R3 = M.inter(R, M.complement(parseRegexOrDie(M, "1.*")));
  show(M, T, E, R3);

  std::printf("== Section 2: the password constraint ==\n\n");
  Re Password = M.inter(parseRegexOrDie(M, ".*\\d.*"), R);
  show(M, T, E, Password);

  std::printf("== Example 7.4 / Fig. 5: rl & rd ==\n\n");
  show(M, T, E, M.inter(parseRegexOrDie(M, ".*[a-z].*"),
                        parseRegexOrDie(M, ".*\\d.*")));
  return 0;
}
