//===- examples/export_benchmarks.cpp - Emit the corpus as SMT-LIB ----------===//
///
/// \file
/// Exports the generated benchmark suites (bench/workloads) as an SMT-LIB
/// corpus — one `.smt2` file per instance with a `(set-info :status …)`
/// label where known — the same artifact shape as the paper's benchmark
/// repository. The files can be consumed by this library's `smt_cli`, by
/// Z3, CVC5, or any solver supporting the Unicode strings theory.
///
///   export_benchmarks <output-dir> [scale] [seed]
///
//===----------------------------------------------------------------------===//

#include "../bench/workloads/Workloads.h"
#include "re/RegexParser.h"
#include "re/SmtPrinter.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

using namespace sbd;

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr, "usage: %s <output-dir> [scale=0.01] [seed=2021]\n",
                 Argv[0]);
    return 2;
  }
  std::filesystem::path OutDir = Argv[1];
  double Scale = Argc > 2 ? std::atof(Argv[2]) : 0.01;
  uint64_t Seed = Argc > 3 ? std::strtoull(Argv[3], nullptr, 10) : 2021;

  std::vector<BenchSuite> Suites;
  for (BenchSuite &S : nonBooleanSuites(Scale, Seed))
    Suites.push_back(std::move(S));
  for (BenchSuite &S : booleanSuites(Scale, Seed))
    Suites.push_back(std::move(S));
  for (BenchSuite &S : handwrittenSuites())
    Suites.push_back(std::move(S));

  RegexManager M;
  size_t Written = 0, Skipped = 0;
  for (const BenchSuite &Suite : Suites) {
    std::filesystem::path Dir = OutDir / Suite.Name;
    std::filesystem::create_directories(Dir);
    for (const BenchInstance &Inst : Suite.Instances) {
      RegexParseResult Parsed = parseRegex(M, Inst.Pattern);
      if (!Parsed.Ok) {
        ++Skipped;
        continue;
      }
      std::string Script =
          regexToSmtScript(M, Parsed.Value, Inst.ExpectedSat);
      std::ofstream File(Dir / (Inst.Name + ".smt2"));
      File << "; family: " << Inst.Family << "\n"
           << "; pattern: " << Inst.Pattern << "\n"
           << Script;
      ++Written;
    }
  }
  std::printf("wrote %zu .smt2 files to %s (%zu skipped)\n", Written,
              OutDir.c_str(), Skipped);
  return 0;
}
