//===- examples/date_policy.cpp - The Fig. 1 cloud-policy scenario ----------===//
///
/// \file
/// Reproduces the motivating example of the paper's introduction: an Azure
/// resource-policy-style audit rule whose semantics is a Boolean
/// combination of regex constraints on a date-shaped string,
///
///   date ∈ \d{4}-[a-zA-Z]{3}-\d{2} ∧ (date ∈ 2019.* ∨ date ∈ 2020.*),
///
/// and the "sanity check for SMT": confirming the policy is satisfiable —
/// and that the buggy variant with .*2019 / .*2020 is not, i.e. the audit
/// rule would never fire.
///
//===----------------------------------------------------------------------===//

#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Unicode.h"

#include <cstdio>

using namespace sbd;

namespace {

void report(const char *Label, const SolveResult &R) {
  std::printf("%-34s %-7s", Label, statusName(R.Status));
  if (R.isSat())
    std::printf("  e.g. \"%s\"", escapeWord(R.Witness).c_str());
  std::printf("   (%zu states, %lld us)\n", R.StatesExplored,
              static_cast<long long>(R.TimeUs));
}

} // namespace

int main() {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine Engine(M, T);
  RegexSolver Solver(Engine);

  // The policy's "match":"####-???-##" pattern.
  Re Shape = parseRegexOrDie(M, "\\d{4}-[a-zA-Z]{3}-\\d{2}");
  // The "anyOf" of the two "like" patterns.
  Re Year = M.union_(parseRegexOrDie(M, "2019.*"),
                     parseRegexOrDie(M, "2020.*"));

  std::printf("policy: date in %s  and  date in %s\n\n",
              M.toString(Shape).c_str(), M.toString(Year).c_str());

  // The policy as written: satisfiable (it can fire).
  report("policy (2019.*/2020.* prefixes):", Solver.checkSat(M.inter(Shape, Year)));

  // The buggy variant the paper warns about: suffix instead of prefix
  // conflicts with the year being at the start — never fires.
  Re BadYear = M.union_(parseRegexOrDie(M, ".*2019"),
                        parseRegexOrDie(M, ".*2020"));
  report("buggy policy (.*2019/.*2020):", Solver.checkSat(M.inter(Shape, BadYear)));

  // Month-specific refinement with complement: if the month is Feb, the day
  // must not be 30 or 31.
  Re Feb = parseRegexOrDie(M, "\\d{4}-Feb-\\d{2}");
  Re Day3x = parseRegexOrDie(M, "\\d{4}-[a-zA-Z]{3}-3[01]");
  Re FebPolicy = M.inter(M.inter(Shape, Feb), M.complement(Day3x));
  report("February, day != 30/31:", Solver.checkSat(FebPolicy));
  Re FebViolation = M.inter(M.inter(Shape, Feb), Day3x);
  report("February 30/31 (violation):", Solver.checkSat(FebViolation));

  // Implication between policies: every 2020 date satisfies the year rule.
  Re Strict = M.inter(Shape, parseRegexOrDie(M, "2020.*"));
  std::printf("\n2020-only policy implies year policy: %s\n",
              Solver.checkContains(Strict, M.inter(Shape, Year)).isUnsat()
                  ? "yes"
                  : "no");
  return 0;
}
