#!/usr/bin/env python3
"""Perf trajectory over the checked-in BENCH_*.json snapshots (stdlib only).

Every PR that touches performance refreshes a BENCH_PR<n>.json snapshot via
`scripts/check.sh --quick` (see perf_smoke.py). This tool lines the
snapshots up in PR order and prints how each tracked series moved across
the repo's history — the long-horizon complement to perf_smoke's
one-baseline regression guard:

  scripts/bench_trend.py                    markdown trend tables to stdout
  scripts/bench_trend.py --json trend.json  machine-readable trajectory too
  scripts/bench_trend.py --dir <root>       scan a different snapshot dir

Reported per snapshot: every micro series (ns), the per-group corpus times
(ms), the compiled-promotion payoff, the recorded counters, and — for
snapshots taken after the profiling layer landed — the corpus solve-latency
percentiles. The final column is latest/first, so a series that drifted
slowly enough to stay inside perf_smoke's per-PR tolerance still shows its
cumulative movement here.

Exit status is always 0 with >= 1 snapshot found; the tool reports, the
perf_smoke compare gate enforces.
"""

import argparse
import json
import re
import sys
from pathlib import Path

SNAPSHOT_RE = re.compile(r"^BENCH_PR(\d+)\.json$")


def discover(root):
    """[(pr_number, path)] for every BENCH_PR<n>.json, in PR order."""
    out = []
    for path in Path(root).glob("BENCH_PR*.json"):
        m = SNAPSHOT_RE.match(path.name)
        if m:
            out.append((int(m.group(1)), path))
    return sorted(out)


def load(path):
    with open(path) as f:
        return json.load(f)


def fmt(v):
    if v is None:
        return "-"
    if isinstance(v, float):
        if v >= 1000:
            return f"{v:,.0f}"
        return f"{v:.2f}" if v < 100 else f"{v:.1f}"
    return str(v)


def ratio(first, last):
    if first is None or last is None or not first:
        return "-"
    return f"{last / first:.2f}x"


def series_table(title, unit, labels, rows):
    """One markdown table: rows of (name, [value per snapshot])."""
    if not rows:
        return []
    head = [f"### {title} ({unit})", ""]
    head.append("| series | " + " | ".join(labels) + " | latest/first |")
    head.append("|---" * (len(labels) + 2) + "|")
    for name, values in rows:
        present = [v for v in values if v is not None]
        first = present[0] if present else None
        last = present[-1] if present else None
        cells = " | ".join(fmt(v) for v in values)
        head.append(f"| {name} | {cells} | {ratio(first, last)} |")
    head.append("")
    return head


def collect(key, snaps):
    """All series names under a dict-valued snapshot key, in sorted order,
    paired with their per-snapshot values (None where absent)."""
    names = sorted({n for _, doc in snaps for n in doc.get(key, {})})
    return [(n, [doc.get(key, {}).get(n) for _, doc in snaps]) for n in names]


def latency_rows(snaps):
    """Percentile rows from the corpus_latency section newer snapshots carry."""
    rows = []
    for stat in ("count", "p50", "p90", "p99"):
        values = [doc.get("corpus_latency", {}).get(stat) for _, doc in snaps]
        if any(v is not None for v in values):
            rows.append((f"solve_latency_{stat}", values))
    return rows


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Aggregate BENCH_*.json snapshots into a trend report.")
    ap.add_argument("--dir", default=str(Path(__file__).resolve().parent.parent),
                    help="directory holding the BENCH_PR<n>.json snapshots")
    ap.add_argument("--json", metavar="OUT",
                    help="also write the trajectory as machine-readable JSON")
    args = ap.parse_args(argv)

    found = discover(args.dir)
    if not found:
        print(f"bench-trend: no BENCH_PR*.json snapshots under {args.dir}")
        return 0
    snaps = [(pr, load(path)) for pr, path in found]
    labels = [f"PR{pr}" for pr, _ in snaps]

    lines = [f"## Perf trend across {len(snaps)} snapshots "
             f"({', '.join(labels)})", ""]
    payoff = [("compiled_payoff_1024",
               [doc.get("compiled_payoff_1024") for _, doc in snaps])]
    lines += series_table("Compiled promotion payoff", "x", labels, payoff)
    lines += series_table("Corpus groups, direct path", "ms", labels,
                          collect("corpus_direct_ms", snaps))
    lines += series_table("Corpus solve latency", "us / count", labels,
                          latency_rows(snaps))
    lines += series_table("Resident session (cold/warm replay)", "mixed",
                          labels, collect("session", snaps))
    lines += series_table("Micro benchmarks", "ns", labels,
                          collect("micro_ns", snaps))
    lines += series_table("Counters", "count", labels,
                          collect("corpus_counters", snaps))
    print("\n".join(lines))

    if args.json:
        doc = {
            "snapshots": labels,
            "compiled_payoff_1024": dict(zip(
                labels, [doc.get("compiled_payoff_1024")
                         for _, doc in snaps])),
            "corpus_direct_ms": {n: dict(zip(labels, vs))
                                 for n, vs in collect("corpus_direct_ms",
                                                      snaps)},
            "corpus_latency": {n: dict(zip(labels, vs))
                               for n, vs in latency_rows(snaps)},
            "micro_ns": {n: dict(zip(labels, vs))
                         for n, vs in collect("micro_ns", snaps)},
            "corpus_counters": {n: dict(zip(labels, vs))
                                for n, vs in collect("corpus_counters",
                                                     snaps)},
            "session": {n: dict(zip(labels, vs))
                        for n, vs in collect("session", snaps)},
        }
        with open(args.json, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench-trend: wrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
