#!/usr/bin/env bash
# One-shot verification. Every step is a shared script under scripts/ci/
# — the exact same files the GitHub Actions workflow runs — so local
# verification and CI cannot drift:
#
#   - ci/build_and_test.sh    configure + build + full test suite
#   - ci/lint.sh              lint_sbd.py + clang-tidy vs baseline
#   - ci/validate_workflow.py GitHub Actions workflow structure lint
#   - ci/bench_debug.sh       every bench harness at --quick + stats smoke
#   - ci/perf_smoke.sh        release --quick benches vs BENCH_PR10.json
#   - ci/fuzz_smoke.sh        differential fuzz campaign + oracle self-check
#   - ci/analyze_corpus.sh    corpus classification regression + overhead gate
#   - ci/session_cache.sh     sbd-server warm-vs-cold verdict-cache gate
#   - ci/dist_consistency.sh  sbd-dist 1-vs-N verdict equality + crash requeue
#   - ci/werror.sh            -Wall -Wextra -Wshadow -Wconversion -Werror
#   - ci/audit.sh             full suite with term-DAG invariant audits live
#   - ci/obs_off.sh           observability layer compiles out cleanly
#   - ci/obs_overhead.sh      obs ON-vs-OFF bench ratio + sbd-explain replay
#   - ci/compile_scalar.sh    compiled matcher with SIMD kernels pinned off
#   - ci/tsan.sh              parallel batch solver + obs registry tests
#   - ci/asan.sh              ASan+UBSan full suite (mandatory, not opt-in)
#
#   scripts/check.sh          # everything above
#   scripts/check.sh --quick  # release bench run only; refreshes the
#                             # checked-in BENCH_PR10.json perf baseline
set -euo pipefail
cd "$(dirname "$0")/.."
CI_DIR=scripts/ci

# --quick: rerun the shared release bench step and snapshot the result as
# the perf baseline the full run (and the CI perf-smoke job) guards
# against.
if [ "${1:-}" = "--quick" ]; then
  "$CI_DIR"/bench_quick.sh
  python3 scripts/perf_smoke.py snapshot /tmp/sbd-bench-micro.json \
    /tmp/sbd-bench-corpus.json BENCH_PR10.json
  exit 0
fi

"$CI_DIR"/build_and_test.sh build
"$CI_DIR"/lint.sh build
python3 "$CI_DIR"/validate_workflow.py
"$CI_DIR"/bench_debug.sh build
"$CI_DIR"/perf_smoke.sh
"$CI_DIR"/fuzz_smoke.sh build
"$CI_DIR"/analyze_corpus.sh build
"$CI_DIR"/session_cache.sh
"$CI_DIR"/dist_consistency.sh
"$CI_DIR"/werror.sh
"$CI_DIR"/audit.sh
"$CI_DIR"/obs_off.sh
"$CI_DIR"/obs_overhead.sh
"$CI_DIR"/compile_scalar.sh
"$CI_DIR"/tsan.sh
"$CI_DIR"/asan.sh

echo "all checks passed"
