#!/usr/bin/env bash
# One-shot verification: configure, build, run the full test suite, run the
# benchmark harness, a Release-mode bench smoke run, a ThreadSanitizer build
# of the parallel batch-solver tests, and (optionally) repeat the tests under
# ASan+UBSan.
#
#   scripts/check.sh            # build + test + bench + bench smoke + tsan
#   scripts/check.sh --asan     # additionally run the sanitizer suite
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done

# Release-mode bench smoke: catches perf-path regressions that only compile
# (or only crash) under optimization, and keeps the --quick flag working.
cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build-release --target bench_micro bench_batch
build-release/bench/bench_micro --quick
build-release/bench/bench_batch --threads 2 --scale 0.02

# ThreadSanitizer build of the parallel front end: the batch solver is the
# only component that spawns threads, so only its tests need the TSan run.
cmake -B build-tsan -G Ninja -DSBD_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan --target batch_solver_test
ctest --test-dir build-tsan -R BatchSolver --output-on-failure

if [ "${1:-}" = "--asan" ]; then
  cmake -B build-asan -G Ninja -DSBD_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

echo "all checks passed"
