#!/usr/bin/env bash
# One-shot verification: configure, build, run the full test suite, run the
# benchmark harness, and (optionally) repeat the tests under ASan+UBSan.
#
#   scripts/check.sh            # build + test + bench
#   scripts/check.sh --asan     # additionally run the sanitizer suite
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done

if [ "${1:-}" = "--asan" ]; then
  cmake -B build-asan -G Ninja -DSBD_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

echo "all checks passed"
