#!/usr/bin/env bash
# One-shot verification: configure, build, run the full test suite, the
# project lints, a --quick benchmark pass, a Release-mode bench smoke run,
# and the full static-analysis / sanitizer matrix:
#
#   - scripts/lint_sbd.py     project-structure lints (always)
#   - scripts/tidy.sh         clang-tidy vs baseline (when clang-tidy exists)
#   - SBD_WERROR=ON           -Wall -Wextra -Wshadow -Wconversion -Werror
#   - SBD_AUDIT=ON            full suite with term-DAG invariant audits live
#   - SBD_OBS=OFF             observability layer compiles out cleanly
#   - TSan                    parallel batch solver + obs registry tests
#   - ASan+UBSan              full suite (mandatory, not opt-in)
#
#   scripts/check.sh          # everything above
#   scripts/check.sh --quick  # release bench run only; refreshes the
#                             # checked-in BENCH_PR4.json perf baseline
set -euo pipefail
cd "$(dirname "$0")/.."

# --quick: rebuild the release benches, run them at --quick scale with
# machine-readable output, and snapshot the result as the perf baseline the
# full run guards against.
if [ "${1:-}" = "--quick" ]; then
  cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release --target bench_micro bench_smt_corpus
  build-release/bench/bench_micro --quick --json /tmp/sbd-bench-micro.json
  build-release/bench/bench_smt_corpus --quick --json /tmp/sbd-bench-corpus.json
  python3 scripts/perf_smoke.py snapshot /tmp/sbd-bench-micro.json \
    /tmp/sbd-bench-corpus.json BENCH_PR4.json
  exit 0
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Project-structure lints: smart-constructor discipline, hot-path container
# rules, obs macros compile out. Stdlib-only python, no toolchain deps.
python3 scripts/lint_sbd.py

# clang-tidy against the checked-in baseline; no-op (exit 0) when clang-tidy
# is not installed, so this line is safe on minimal containers.
scripts/tidy.sh build

# Debug-build bench pass at --quick scale: exercises every harness binary's
# full code path without turning the tier-1 gate into a benchmark run.
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b" --quick
done

# Release-mode bench smoke: catches perf-path regressions that only compile
# (or only crash) under optimization, and keeps the --quick flag working.
cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build-release --target bench_micro bench_batch bench_smt_corpus
build-release/bench/bench_micro --quick --json /tmp/sbd-bench-micro.json
build-release/bench/bench_batch --threads 2 --scale 0.02

# Stats smoke: the observability outputs must stay valid JSON with the
# documented keys (DESIGN.md §8).
build-release/bench/bench_smt_corpus --quick --trace /tmp/sbd-trace.json \
  --stats-json /tmp/sbd-stats.json --json /tmp/sbd-bench-corpus.json

# Perf-smoke guard: the fresh --quick numbers must stay within a generous
# tolerance of the checked-in BENCH_PR4.json baseline (skips cleanly when
# no baseline is checked in; refresh with `scripts/check.sh --quick`).
python3 scripts/perf_smoke.py compare BENCH_PR4.json \
  /tmp/sbd-bench-micro.json /tmp/sbd-bench-corpus.json
if command -v python3 > /dev/null; then
  python3 - <<'EOF'
import json
trace = json.load(open("/tmp/sbd-trace.json"))
assert trace["traceEvents"], "empty traceEvents"
assert all(k in trace["traceEvents"][0] for k in ("name", "ph", "ts", "dur"))
stats = json.load(open("/tmp/sbd-stats.json"))
for key in ("derivative_calls", "dnf_calls", "memo_hits", "solve_time_us"):
    assert key in stats["counters"], key
for key in ("parse_us", "derive_us", "dnf_us", "search_us", "total_us"):
    assert key in stats["aggregate"], key
print("stats smoke ok")
EOF
else
  grep -q '"traceEvents"' /tmp/sbd-trace.json
  grep -q '"derivative_calls"' /tmp/sbd-stats.json
  grep -q '"search_us"' /tmp/sbd-stats.json
fi

# Warning hardening: src/ must compile clean under
# -Wall -Wextra -Wshadow -Wconversion -Werror.
cmake -B build-werror -G Ninja -DSBD_WERROR=ON
cmake --build build-werror

# Invariant-audit build: every intern, δdnf result, and checkSat exit is
# re-verified against the similarity laws (DESIGN.md §9) while the whole
# suite runs. Any violation prints to stderr; the AuditHooksFeedObsRegistry
# test additionally asserts the registry stayed at zero violations.
cmake -B build-audit -G Ninja -DSBD_AUDIT=ON
cmake --build build-audit
ctest --test-dir build-audit --output-on-failure

# The observability layer must also compile out cleanly: tests must still
# pass with every counter bump and span stripped (-DSBD_OBS=OFF).
cmake -B build-obs0 -G Ninja -DSBD_OBS=OFF
cmake --build build-obs0 --target solver_test obs_test batch_solver_test \
  smt_test audit_test
ctest --test-dir build-obs0 -R 'Solver|Obs|Metrics|Tracer|Batch|Smt|Audit' \
  --output-on-failure

# ThreadSanitizer: the batch solver spawns the worker threads and the obs
# registry is the only shared-mutable-state structure they touch, so both
# test binaries run under TSan.
cmake -B build-tsan -G Ninja -DSBD_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan --target batch_solver_test obs_test
ctest --test-dir build-tsan -R 'BatchSolver|Obs|Metrics|Tracer' \
  --output-on-failure

# AddressSanitizer + UBSan over the full suite. Mandatory: memory bugs in
# the arena/interning layer are exactly the class the audits cannot see.
cmake -B build-asan -G Ninja -DSBD_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure

echo "all checks passed"
