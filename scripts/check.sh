#!/usr/bin/env bash
# One-shot verification: configure, build, run the full test suite, run the
# benchmark harness, a Release-mode bench smoke run, a ThreadSanitizer build
# of the parallel batch-solver tests, and (optionally) repeat the tests under
# ASan+UBSan.
#
#   scripts/check.sh            # build + test + bench + bench smoke + tsan
#   scripts/check.sh --asan     # additionally run the sanitizer suite
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done

# Release-mode bench smoke: catches perf-path regressions that only compile
# (or only crash) under optimization, and keeps the --quick flag working.
cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build-release --target bench_micro bench_batch bench_smt_corpus
build-release/bench/bench_micro --quick
build-release/bench/bench_batch --threads 2 --scale 0.02

# Stats smoke: the observability outputs must stay valid JSON with the
# documented keys (DESIGN.md §8).
build-release/bench/bench_smt_corpus --quick --trace /tmp/sbd-trace.json \
  --stats-json /tmp/sbd-stats.json
if command -v python3 > /dev/null; then
  python3 - <<'EOF'
import json
trace = json.load(open("/tmp/sbd-trace.json"))
assert trace["traceEvents"], "empty traceEvents"
assert all(k in trace["traceEvents"][0] for k in ("name", "ph", "ts", "dur"))
stats = json.load(open("/tmp/sbd-stats.json"))
for key in ("derivative_calls", "dnf_calls", "memo_hits", "solve_time_us"):
    assert key in stats["counters"], key
for key in ("parse_us", "derive_us", "dnf_us", "search_us", "total_us"):
    assert key in stats["aggregate"], key
print("stats smoke ok")
EOF
else
  grep -q '"traceEvents"' /tmp/sbd-trace.json
  grep -q '"derivative_calls"' /tmp/sbd-stats.json
  grep -q '"search_us"' /tmp/sbd-stats.json
fi

# The observability layer must also compile out cleanly: tests must still
# pass with every counter bump and span stripped (-DSBD_OBS=OFF).
cmake -B build-obs0 -G Ninja -DSBD_OBS=OFF
cmake --build build-obs0 --target solver_test obs_test batch_solver_test \
  smt_test
ctest --test-dir build-obs0 -R 'Solver|Obs|Metrics|Tracer|Batch|Smt' \
  --output-on-failure

# ThreadSanitizer build of the parallel front end: the batch solver is the
# only component that spawns threads, so only its tests need the TSan run.
cmake -B build-tsan -G Ninja -DSBD_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan --target batch_solver_test
ctest --test-dir build-tsan -R BatchSolver --output-on-failure

if [ "${1:-}" = "--asan" ]; then
  cmake -B build-asan -G Ninja -DSBD_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

echo "all checks passed"
