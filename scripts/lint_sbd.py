#!/usr/bin/env python3
"""Project-specific structural lints for the sbd tree (stdlib only).

Three rules, each encoding an invariant the type system cannot:

1. node-construction: `RegexNode{...}` / `TrNode{...}` aggregates (and
   `Nodes.push_back` / `Nodes.emplace_back` on the arenas) may appear only
   in the two intern sites — src/re/Regex.cpp and src/core/TransitionRegex.cpp.
   Everywhere else must go through the smart constructors, or hash-consing
   (and with it the similarity laws of paper section 3) silently breaks.

2. hot-path-containers: files carrying a `// sbd-lint: hot-path` marker must
   not use std::unordered_map / std::unordered_set. Hot paths use the
   open-addressing InternTable/FlatMap64 (DESIGN.md section 7); a stray
   node-based hash table is an easy way to lose the PR-1 speedups.

3. obs-compiled-out: outside the observability layer itself, counter bumps
   must use the SBD_OBS_INC/SBD_OBS_ADD/SBD_STATS_* macros (which compile
   out under -DSBD_OBS=0), never raw obs::tlsShard() / MetricShard::add
   calls that would survive in "observability off" builds.

4. engine-routing: the solver/SMT/policy layers must not instantiate the
   baseline engines (AntimirovSolver, BrzozowskiMintermSolver, EagerSolver)
   directly — engine selection belongs to the analyzer-driven portfolio
   (src/portfolio, DESIGN.md section 14). An ad-hoc engine pick bypasses
   the admission cap and the routing regression gates.

Exit status: 0 clean, 1 violations (printed as file:line: rule: message).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

# Rule 1: the only files allowed to construct arena nodes directly.
INTERN_SITES = {
    SRC / "re" / "Regex.cpp",
    SRC / "core" / "TransitionRegex.cpp",
}
# Other managers (BoolExprManager, BddManager) hash-cons their *own* node
# types; their `Nodes.push_back` is their intern site, not a bypass.
OWN_ARENA_SITES = INTERN_SITES | {
    SRC / "automata" / "BoolExpr.cpp",
    SRC / "charset" / "Bdd.cpp",
}
NODE_CTOR = re.compile(r"\b(?:RegexNode|TrNode)\s*\{")
TYPE_DECL = re.compile(r"^\s*(?:struct|class)\s+(?:RegexNode|TrNode)\b")
ARENA_PUSH = re.compile(r"\bNodes\.(?:push_back|emplace_back)\s*\(")

# Rule 2: marker and the banned containers.
HOT_PATH_MARKER = "sbd-lint: hot-path"
UNORDERED = re.compile(r"\bstd::unordered_(?:map|set)\b|#include\s*<unordered_(?:map|set)>")

# Rule 3: raw shard access outside the obs layer. The macros themselves and
# the registry/exposition implementation are the allowlist; Audit.h
# publishes through SBD_OBS_ADD so it needs no exemption. The histogram
# shard accessor and both registries' local() are covered the same way.
OBS_ALLOWLIST = {
    SRC / "support" / "Metrics.h",
    SRC / "support" / "Metrics.cpp",
    SRC / "support" / "Trace.h",
    SRC / "support" / "Trace.cpp",
    SRC / "support" / "Histogram.h",
    SRC / "support" / "Histogram.cpp",
    SRC / "support" / "Exposition.cpp",
    SRC / "solver" / "SlowQueryLog.cpp",
}
RAW_OBS = re.compile(
    r"\bobs::tlsShard\s*\(|\btlsShard\s*\(\s*\)\s*\.add\b"
    r"|\bobs::tlsHistShard\s*\(|\btlsHistShard\s*\(\s*\)\s*\.record\b"
    r"|\bMetricsRegistry::global\s*\(\s*\)\s*\.local\b"
    r"|\bHistogramRegistry::global\s*\(\s*\)\s*\.local\b")

# Rule 4: layers that must route through the portfolio rather than picking
# an engine ad hoc. Only declarations/constructions trip the rule (the type
# name followed by a variable or brace), not mentions in comments/includes.
ROUTED_LAYERS = (SRC / "solver", SRC / "smt", SRC / "policy")
ROUTING_SITES = {SRC / "portfolio" / "Portfolio.cpp",
                 SRC / "portfolio" / "Portfolio.h"}
ENGINE_CTOR = re.compile(
    r"\b(?:AntimirovSolver|BrzozowskiMintermSolver|EagerSolver)\s*[({\w]")

LINE_COMMENT = re.compile(r"//.*$")


def strip_comment(line: str) -> str:
    """Drop // comments so commented-out code never trips a rule. (Block
    comments are not tracked; none of the rules' patterns appear in them.)"""
    return LINE_COMMENT.sub("", line)


def lint_file(path: Path):
    violations = []
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    hot_path = HOT_PATH_MARKER in text
    is_intern_site = path in INTERN_SITES
    obs_allowed = path in OBS_ALLOWLIST

    # Track #if SBD_OBS nesting for rule 3: raw shard access is fine inside
    # an explicit observability-gated region.
    obs_guard_depth = 0
    if_stack = []
    for lineno, raw in enumerate(lines, 1):
        stripped = raw.strip()
        if stripped.startswith("#if"):
            gated = bool(re.match(r"#if\s+SBD_OBS\b|#ifdef\s+SBD_OBS\b", stripped))
            if_stack.append(gated)
            if gated:
                obs_guard_depth += 1
        elif stripped.startswith("#else") or stripped.startswith("#elif"):
            if if_stack and if_stack[-1]:
                obs_guard_depth -= 1
                if_stack[-1] = False
        elif stripped.startswith("#endif"):
            if if_stack and if_stack.pop():
                obs_guard_depth -= 1

        code = strip_comment(raw)

        bypasses_intern = (
            (NODE_CTOR.search(code) and not TYPE_DECL.match(code)
             and not is_intern_site)
            or (ARENA_PUSH.search(code) and path not in OWN_ARENA_SITES))
        if bypasses_intern:
            violations.append(
                (path, lineno, "node-construction",
                 "arena nodes may only be built in the intern sites "
                 "(re/Regex.cpp, core/TransitionRegex.cpp); use the smart "
                 "constructors"))

        if hot_path and UNORDERED.search(code):
            violations.append(
                (path, lineno, "hot-path-containers",
                 "file is marked '// sbd-lint: hot-path'; use "
                 "InternTable/FlatMap64 instead of std::unordered_*"))

        if (not obs_allowed and obs_guard_depth == 0
                and RAW_OBS.search(code)):
            violations.append(
                (path, lineno, "obs-compiled-out",
                 "raw shard access survives -DSBD_OBS=0 builds; use "
                 "SBD_OBS_INC/SBD_OBS_ADD or wrap in #if SBD_OBS"))

        if (any(layer in path.parents for layer in ROUTED_LAYERS)
                and path not in ROUTING_SITES and ENGINE_CTOR.search(code)):
            violations.append(
                (path, lineno, "engine-routing",
                 "solver/smt/policy layers must not instantiate baseline "
                 "engines directly; route through "
                 "portfolio::PortfolioSolver/planRoute"))

    return violations


def main() -> int:
    files = sorted(SRC.rglob("*.h")) + sorted(SRC.rglob("*.cpp"))
    all_violations = []
    for path in files:
        all_violations.extend(lint_file(path))

    for path, lineno, rule, msg in all_violations:
        rel = path.relative_to(ROOT)
        print(f"{rel}:{lineno}: {rule}: {msg}", file=sys.stderr)

    if all_violations:
        print(f"lint_sbd.py: {len(all_violations)} violation(s).",
              file=sys.stderr)
        return 1
    print(f"lint_sbd.py: clean ({len(files)} files checked).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
