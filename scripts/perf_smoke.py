#!/usr/bin/env python3
"""Perf-smoke guard over the --quick benchmark JSON outputs.

Two modes:

  perf_smoke.py snapshot <micro.json> <corpus.json> <out.json>
      Condense one --quick run of bench_micro (--json) and bench_smt_corpus
      (--json) into the checked-in baseline snapshot (BENCH_PR4.json).

  perf_smoke.py compare <baseline.json> <micro.json> <corpus.json>
      Compare a fresh --quick run against the snapshot. A benchmark that got
      more than TOLERANCE times slower than the baseline fails the check.
      The tolerance is deliberately generous: --quick timings are noisy and
      the guard is meant to catch order-of-magnitude perf-path regressions
      (an accidentally disabled cache, a quadratic loop), not 10% drift.
      Exits 0 with a message when the baseline is absent, so fresh clones
      and non-perf branches are not blocked.

The guard also asserts dense_row_hits > 0 on the corpus run: the solver's
dense-row replay path must actually fire, not just compile.
"""

import json
import sys

TOLERANCE = 2.5

# Micro benchmarks below this baseline time are dominated by harness noise
# at --quick scale; they are recorded but not compared.
MIN_COMPARE_NS = 200.0


def load_micro(path):
    """name -> real_time in ns from a google-benchmark JSON report."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        out[b["name"]] = float(b["real_time"]) * scale
    return out


def load_corpus(path):
    with open(path) as f:
        doc = json.load(f)
    groups = {g["name"]: float(g["direct_ms"]) for g in doc.get("groups", [])}
    counters = doc.get("counters", {})
    return groups, counters


def snapshot(micro_path, corpus_path, out_path):
    groups, counters = load_corpus(corpus_path)
    doc = {
        "tolerance": TOLERANCE,
        "micro_ns": load_micro(micro_path),
        "corpus_direct_ms": groups,
        "corpus_counters": {
            k: counters[k]
            for k in ("dense_row_hits", "dfa_states_built", "dfa_evictions",
                      "alphabet_minterms")
            if k in counters
        },
    }
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"perf-smoke: wrote snapshot {out_path}")


def compare(baseline_path, micro_path, corpus_path):
    try:
        with open(baseline_path) as f:
            base = json.load(f)
    except FileNotFoundError:
        print(f"perf-smoke: no baseline at {baseline_path}, skipping "
              "(run 'scripts/check.sh --quick' to create one)")
        return 0

    tol = float(base.get("tolerance", TOLERANCE))
    failures = []
    compared = 0

    cur_micro = load_micro(micro_path)
    for name, base_ns in sorted(base.get("micro_ns", {}).items()):
        cur_ns = cur_micro.get(name)
        if cur_ns is None or base_ns < MIN_COMPARE_NS:
            continue
        compared += 1
        if cur_ns > tol * base_ns:
            failures.append(
                f"  micro {name}: {cur_ns:.0f}ns vs baseline "
                f"{base_ns:.0f}ns ({cur_ns / base_ns:.2f}x > {tol}x)")

    cur_groups, cur_counters = load_corpus(corpus_path)
    for name, base_ms in sorted(base.get("corpus_direct_ms", {}).items()):
        cur_ms = cur_groups.get(name)
        if cur_ms is None or base_ms <= 0.5:  # sub-ms groups are noise
            continue
        compared += 1
        if cur_ms > tol * base_ms:
            failures.append(
                f"  corpus {name}: {cur_ms:.1f}ms vs baseline "
                f"{base_ms:.1f}ms ({cur_ms / base_ms:.2f}x > {tol}x)")

    hits = cur_counters.get("dense_row_hits", 0)
    if hits <= 0:
        failures.append(
            "  corpus dense_row_hits == 0: the dense-row replay path never "
            "fired")

    if failures:
        print("perf-smoke: REGRESSION vs " + baseline_path)
        print("\n".join(failures))
        print("If the slowdown is intended, refresh the baseline with "
              "'scripts/check.sh --quick'.")
        return 1
    print(f"perf-smoke: ok ({compared} series within {tol}x, "
          f"dense_row_hits={hits})")
    return 0


def main(argv):
    if len(argv) == 5 and argv[1] == "snapshot":
        snapshot(argv[2], argv[3], argv[4])
        return 0
    if len(argv) == 5 and argv[1] == "compare":
        return compare(argv[2], argv[3], argv[4])
    print(__doc__)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
