#!/usr/bin/env python3
"""Perf-smoke guard over the --quick benchmark JSON outputs.

Two modes:

  perf_smoke.py snapshot <micro.json> <corpus.json> <out.json>
      Condense one --quick run of bench_micro (--json) and bench_smt_corpus
      (--json) into the checked-in baseline snapshot (BENCH_PR6.json).
      Counters exported by the micro benchmarks (dfa_states_built,
      alphabet_minterms, compiled table shape) are recorded alongside the
      corpus counters so the snapshot reflects the measured run, and the
      snapshot is refused when the compiled-vs-cached promotion payoff is
      below the gate — a bad baseline would make the gate vacuous.

  perf_smoke.py compare <baseline.json> <micro.json> <corpus.json>
      Compare a fresh --quick run against the snapshot. A benchmark that got
      more than TOLERANCE times slower than the baseline fails the check.
      The tolerance is deliberately generous: --quick timings are noisy and
      the guard is meant to catch order-of-magnitude perf-path regressions
      (an accidentally disabled cache, a quadratic loop), not 10% drift.
      Exits 0 with a message when the baseline is absent, so fresh clones
      and non-perf branches are not blocked.

  perf_smoke.py dist <w1-stats.json> <wn-stats.json> <snapshot.json>
      Gate the multi-process scaling run (scripts/ci/dist_consistency.sh):
      both passes must have solved the full corpus with zero lost verdicts,
      and on multi-core hosts the N-worker wall must be <= DIST_GATE times
      the 1-worker wall. On a single-core host the speedup gate is loudly
      skipped (forked workers cannot beat one process on one core) while
      the correctness checks still apply. The measurement is merged into
      the snapshot's "dist" block so bench_trend.py can plot the scaling
      trajectory across PRs.

  perf_smoke.py --trend [bench_trend.py args...]
      Line up every checked-in BENCH_PR<n>.json and print the perf
      trajectory across PRs (delegates to scripts/bench_trend.py) — the
      long-horizon view the one-baseline compare cannot give.

Beyond the ratio checks, the guard asserts on every compare that
  - dense_row_hits > 0: the solver's dense-row replay path actually fired;
  - analysis_nodes_visited > 0 and analysis_cache_hits > 0: every query
    went through the pre-solve static analyzer, and the memo actually
    carried weight across the corpus (DESIGN.md section 14);
  - dfa_states_built > 0 and alphabet_minterms > 0: the lazy-DFA series
    really built states over a compressed alphabet (both were silently 0 in
    BENCH_PR4.json because only the corpus bench reported counters);
  - the solve_latency_us and dnf_expansion_arcs histograms carry samples:
    the profiling layer (DESIGN.md section 13) really observed the run —
    counts are asserted rather than microsecond sums, which can floor to 0
    at --quick scale;
  - the compiled serving path beats the lazy cached walk by >= GATE_RATIO
    on the 1KiB throughput series (the promotion payoff the compiled
    subsystem exists for);
  - the resident-session corpus replay (DESIGN.md section 15) served
    verdict-cache hits, its warm pass was no slower than the cold one, and
    every warm verdict matched its cold verdict (the wall-clock *speedup*
    gate lives in scripts/ci/session_cache.sh, which measures the server
    end-to-end).
"""

import json
import os
import sys

TOLERANCE = 2.5

# Micro benchmarks below this baseline time are dominated by harness noise
# at --quick scale; they are recorded but not compared.
MIN_COMPARE_NS = 200.0

# The promotion payoff gate: the frozen state-major table must beat the
# lazy cached walk by this factor on the same pattern and input.
GATE_RATIO = 3.0
CACHED_SERIES = "BM_CachedMatcherThroughput/1024"
COMPILED_SERIES = "BM_CompiledMatcherThroughput/1024"

# User counters lifted from the micro report into the snapshot, keyed by
# the benchmark that exports them.
MICRO_COUNTERS = {
    CACHED_SERIES: ("dfa_states_built", "alphabet_minterms"),
    COMPILED_SERIES: ("states", "table_bytes", "compiled_chars_scanned"),
}


def load_micro(path):
    """name -> (real_time ns, user counters) from a benchmark JSON report."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        counters = {
            k: float(v) for k, v in b.items()
            if isinstance(v, (int, float)) and k not in (
                "real_time", "cpu_time", "iterations", "repetition_index",
                "threads", "family_index", "per_family_instance_index")
        }
        out[b["name"]] = (float(b["real_time"]) * scale, counters)
    return out


def micro_counter_view(micro):
    """Flatten the interesting per-benchmark counters into one dict."""
    view = {}
    for series, keys in MICRO_COUNTERS.items():
        _, counters = micro.get(series, (None, {}))
        for k in keys:
            if k in counters:
                name = k if k.startswith(("dfa", "alphabet", "compiled")) \
                    else "compiled_" + k
                view[name] = counters[k]
    return view


def payoff_ratio(micro):
    """cached/compiled time ratio on the 1KiB series, or None if absent."""
    cached = micro.get(CACHED_SERIES)
    compiled = micro.get(COMPILED_SERIES)
    if cached is None or compiled is None or compiled[0] <= 0:
        return None
    return cached[0] / compiled[0]


# Histograms the corpus run must have populated (asserted by count, not by
# microsecond sums, which can floor to 0 at --quick scale).
REQUIRED_HISTOGRAMS = ("solve_latency_us", "dnf_expansion_arcs")


def load_corpus(path):
    with open(path) as f:
        doc = json.load(f)
    groups = {g["name"]: float(g["direct_ms"]) for g in doc.get("groups", [])}
    counters = doc.get("counters", {})
    histograms = doc.get("histograms", {})
    session = doc.get("session", {})
    return groups, counters, histograms, session


def snapshot(micro_path, corpus_path, out_path):
    micro = load_micro(micro_path)
    ratio = payoff_ratio(micro)
    if ratio is None or ratio < GATE_RATIO:
        shown = "absent" if ratio is None else f"{ratio:.2f}x"
        print(f"perf-smoke: refusing snapshot: compiled payoff {shown} "
              f"< {GATE_RATIO}x on {COMPILED_SERIES}")
        return 1
    groups, counters, histograms, session = load_corpus(corpus_path)
    if session.get("cache_hits", 0) <= 0:
        print("perf-smoke: refusing snapshot: the session replay recorded "
              "no verdict-cache hits — a baseline without a working cache "
              "would make the warm-pass gate vacuous")
        return 1
    latency = histograms.get("solve_latency_us", {})
    doc = {
        "tolerance": TOLERANCE,
        "micro_ns": {name: ns for name, (ns, _) in micro.items()},
        "micro_counters": micro_counter_view(micro),
        "compiled_payoff_1024": round(ratio, 2),
        "corpus_direct_ms": groups,
        "corpus_counters": {
            k: counters[k]
            for k in ("dense_row_hits", "dfa_states_built", "dfa_evictions",
                      "alphabet_minterms", "analysis_nodes_visited",
                      "analysis_cache_hits", "verdict_cache_hits",
                      "verdict_cache_misses", "verdict_cache_inserts",
                      "session_checks")
            if k in counters
        },
        # Cold/warm latency split of the resident-session corpus replay
        # (DESIGN.md section 15): the verdict cache's measured payoff.
        "session": {
            k: session[k]
            for k in ("instances", "mismatches", "cold_ms", "warm_ms",
                      "cold_p50_us", "cold_p90_us", "cold_p99_us",
                      "warm_p50_us", "warm_p90_us", "warm_p99_us",
                      "cache_hits", "cache_misses", "cache_inserts")
            if k in session
        },
        # Latency distribution of the corpus run (bench_trend.py plots the
        # percentile drift across PR snapshots).
        "corpus_latency": {
            k: latency[k]
            for k in ("count", "p50", "p90", "p99")
            if k in latency
        },
    }
    # A refreshed snapshot must not drop the dist-scaling block merged in
    # by 'perf_smoke.py dist' (the bench run doesn't measure it).
    try:
        with open(out_path) as f:
            prev = json.load(f)
        if "dist" in prev:
            doc["dist"] = prev["dist"]
    except (FileNotFoundError, json.JSONDecodeError):
        pass
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"perf-smoke: wrote snapshot {out_path} "
          f"(compiled payoff {ratio:.2f}x)")
    return 0


def compare(baseline_path, micro_path, corpus_path):
    try:
        with open(baseline_path) as f:
            base = json.load(f)
    except FileNotFoundError:
        print(f"perf-smoke: no baseline at {baseline_path}, skipping "
              "(run 'scripts/check.sh --quick' to create one)")
        return 0

    tol = float(base.get("tolerance", TOLERANCE))
    failures = []
    compared = 0

    cur_micro = load_micro(micro_path)
    for name, base_ns in sorted(base.get("micro_ns", {}).items()):
        entry = cur_micro.get(name)
        if entry is None or base_ns < MIN_COMPARE_NS:
            continue
        cur_ns = entry[0]
        compared += 1
        if cur_ns > tol * base_ns:
            failures.append(
                f"  micro {name}: {cur_ns:.0f}ns vs baseline "
                f"{base_ns:.0f}ns ({cur_ns / base_ns:.2f}x > {tol}x)")

    cur_groups, cur_counters, cur_hists, cur_session = load_corpus(corpus_path)
    for name, base_ms in sorted(base.get("corpus_direct_ms", {}).items()):
        cur_ms = cur_groups.get(name)
        if cur_ms is None or base_ms <= 0.5:  # sub-ms groups are noise
            continue
        compared += 1
        if cur_ms > tol * base_ms:
            failures.append(
                f"  corpus {name}: {cur_ms:.1f}ms vs baseline "
                f"{base_ms:.1f}ms ({cur_ms / base_ms:.2f}x > {tol}x)")

    hits = cur_counters.get("dense_row_hits", 0)
    if hits <= 0:
        failures.append(
            "  corpus dense_row_hits == 0: the dense-row replay path never "
            "fired")

    for key in ("analysis_nodes_visited", "analysis_cache_hits"):
        if cur_counters.get(key, 0) <= 0:
            failures.append(
                f"  corpus {key} == 0: the pre-solve analyzer never ran "
                "(portfolio routing bypassed?)")

    micro_counters = micro_counter_view(cur_micro)
    for key in ("dfa_states_built", "alphabet_minterms"):
        if micro_counters.get(key, 0) <= 0:
            failures.append(
                f"  micro {key} == 0: the throughput series did not exercise "
                "the measured path")

    for hist in REQUIRED_HISTOGRAMS:
        if cur_hists.get(hist, {}).get("count", 0) <= 0:
            failures.append(
                f"  corpus histogram {hist} is empty: the profiling layer "
                "recorded no samples (built with -DSBD_OBS=0, or the "
                "recording sites regressed)")

    # The resident-session replay (DESIGN.md section 15): the verdict cache
    # must actually serve hits, the warm pass must not cost more than the
    # cold one, and warm verdicts must be identical to cold verdicts.
    if cur_session.get("cache_hits", 0) <= 0:
        failures.append(
            "  session cache_hits == 0: the verdict cache never served a "
            "hit across the warm corpus replay")
    if cur_session.get("mismatches", 0) > 0:
        failures.append(
            f"  session mismatches == {cur_session['mismatches']}: a warm "
            "(cached) verdict differed from the cold solve")
    cold_ms = cur_session.get("cold_ms", 0)
    warm_ms = cur_session.get("warm_ms", 0)
    if cold_ms > 0 and warm_ms > cold_ms:
        failures.append(
            f"  session warm pass slower than cold ({warm_ms:.1f}ms > "
            f"{cold_ms:.1f}ms): cache hits are not paying for themselves")

    ratio = payoff_ratio(cur_micro)
    if ratio is None:
        failures.append(
            f"  {COMPILED_SERIES} missing: the compiled serving path was not "
            "measured")
    elif ratio < GATE_RATIO:
        failures.append(
            f"  compiled payoff {ratio:.2f}x < {GATE_RATIO}x: "
            f"{COMPILED_SERIES} must beat {CACHED_SERIES}")

    if failures:
        print("perf-smoke: REGRESSION vs " + baseline_path)
        print("\n".join(failures))
        print("If the slowdown is intended, refresh the baseline with "
              "'scripts/check.sh --quick'.")
        return 1
    lat = cur_hists.get("solve_latency_us", {})
    speedup = cold_ms / warm_ms if warm_ms > 0 else 0.0
    print(f"perf-smoke: ok ({compared} series within {tol}x, "
          f"dense_row_hits={hits}, compiled payoff {ratio:.2f}x, "
          f"latency p50/p99 {lat.get('p50', 0)}/{lat.get('p99', 0)}us "
          f"over {lat.get('count', 0)} queries, session warm speedup "
          f"{speedup:.1f}x on {cur_session.get('cache_hits', 0)} cache hits)")
    return 0


# Multi-process scaling gate (DESIGN.md section 16): with SBD_DIST_WORKERS
# workers (CI uses 4) the batch must finish in at most this fraction of the
# 1-worker wall. Only enforced on hosts with >= 2 cores: fork-based workers
# time-slice a single core, where the ratio is meaningless.
DIST_GATE = 0.60


def dist(w1_path, wn_path, snapshot_path):
    with open(w1_path) as f:
        w1 = json.load(f)
    with open(wn_path) as f:
        wn = json.load(f)

    failures = []
    for doc, label in ((w1, "1-worker"), (wn, f"{wn.get('workers')}-worker")):
        if doc.get("queries", 0) <= 0:
            failures.append(f"  {label} run solved no queries")
        if doc.get("lost", 0) != 0:
            failures.append(f"  {label} run lost {doc['lost']} verdicts")
    if w1.get("queries") != wn.get("queries"):
        failures.append(
            f"  query counts differ: {w1.get('queries')} vs "
            f"{wn.get('queries')} — the runs did not solve the same corpus")

    w1_us = w1.get("wall_us", 0)
    wn_us = wn.get("wall_us", 0)
    cores = os.cpu_count() or 1
    ratio = wn_us / w1_us if w1_us > 0 else None
    if ratio is None:
        failures.append("  1-worker run recorded no wall time")
    elif cores >= 2:
        if ratio > DIST_GATE:
            failures.append(
                f"  {wn.get('workers')}-worker wall {wn_us}us > "
                f"{DIST_GATE}x 1-worker wall {w1_us}us ({ratio:.2f}x): "
                "adding workers is not buying throughput (admission "
                "control stalled, or steals stopped firing?)")
    else:
        print(f"perf-smoke: dist speedup gate SKIPPED — host has {cores} "
              f"core(s); {wn.get('workers')} forked workers cannot beat one "
              "process on one core. Correctness checks still enforced.")

    if failures:
        print(f"perf-smoke: dist gate FAILED "
              f"({w1_path} vs {wn_path})")
        print("\n".join(failures))
        return 1

    # Merge the measurement into the snapshot so the scaling trajectory is
    # visible across PR baselines. The snapshot may not exist yet (fresh
    # clone before 'check.sh --quick'); record into a new doc then.
    try:
        with open(snapshot_path) as f:
            snap = json.load(f)
    except FileNotFoundError:
        snap = {}
    snap["dist"] = {
        "queries": wn.get("queries"),
        "workers": wn.get("workers"),
        "shards": wn.get("shards"),
        "w1_wall_us": w1_us,
        "wn_wall_us": wn_us,
        "scaling_ratio": round(ratio, 3),
        "gate": DIST_GATE,
        "gate_enforced": cores >= 2,
        "cores": cores,
        "steals": wn.get("steals", 0),
        "requeues": wn.get("requeues", 0),
    }
    with open(snapshot_path, "w") as f:
        json.dump(snap, f, indent=2, sort_keys=True)
        f.write("\n")
    enforced = "enforced" if cores >= 2 else "recorded only"
    print(f"perf-smoke: dist ok ({wn.get('queries')} queries, "
          f"{wn.get('workers')} workers {wn_us}us vs 1 worker {w1_us}us = "
          f"{ratio:.2f}x, gate {DIST_GATE}x {enforced} on {cores} cores, "
          f"steals={wn.get('steals', 0)}) -> {snapshot_path}")
    return 0


def main(argv):
    if len(argv) == 5 and argv[1] == "snapshot":
        return snapshot(argv[2], argv[3], argv[4])
    if len(argv) == 5 and argv[1] == "compare":
        return compare(argv[2], argv[3], argv[4])
    if len(argv) == 5 and argv[1] == "dist":
        return dist(argv[2], argv[3], argv[4])
    if len(argv) >= 2 and argv[1] in ("--trend", "trend"):
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        import bench_trend
        return bench_trend.main(argv[2:])
    print(__doc__)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
