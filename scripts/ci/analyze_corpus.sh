#!/usr/bin/env bash
# Static-analysis regression gate over the seed benchmark corpus:
#
#   1. sbd-analyze must classify the whole corpus without crashing or
#      parse errors.
#   2. The per-instance classifications must match the checked-in baseline
#      (scripts/ci/analyze_corpus_baseline.txt). A drifted classification
#      silently re-routes queries between engines — that is a reviewed
#      change, not an accident: regenerate the baseline with
#        build/tools/sbd-analyze --corpus --classes \
#          > scripts/ci/analyze_corpus_baseline.txt
#      and commit it alongside the analyzer change.
#   3. The analyzer must stay cheap: total analysis time over the corpus
#      must be under SBD_ANALYZE_OVERHEAD_PCT (default 5) percent of the
#      total solve time for the same patterns.
#
# Usage: analyze_corpus.sh [build-dir]
. "$(dirname "$0")/common.sh"

BUILD_DIR="${1:-build}"
BASELINE="scripts/ci/analyze_corpus_baseline.txt"
OVERHEAD_PCT="${SBD_ANALYZE_OVERHEAD_PCT:-5}"

sbd_configure "$BUILD_DIR"
sbd_build "$BUILD_DIR" sbd-analyze
ANALYZE_BIN="$BUILD_DIR/tools/sbd-analyze"
[ -x "$ANALYZE_BIN" ] || {
  echo "error: $ANALYZE_BIN was not built" >&2
  exit 1
}

echo "== analyze corpus: classification regression vs $BASELINE =="
CLASSES="$(mktemp /tmp/sbd-analyze-classes.XXXXXX)"
trap 'rm -f "$CLASSES"' EXIT
"$ANALYZE_BIN" --corpus --classes > "$CLASSES"

if [ ! -f "$BASELINE" ]; then
  echo "error: $BASELINE missing — generate it with:" >&2
  echo "  $ANALYZE_BIN --corpus --classes > $BASELINE" >&2
  exit 1
fi
if ! diff -u "$BASELINE" "$CLASSES"; then
  echo "error: corpus classifications drifted from the baseline (see diff" >&2
  echo "above). If intentional, regenerate and commit the baseline." >&2
  exit 1
fi
echo "classifications stable ($(wc -l < "$CLASSES") instances)"

echo "== analyze corpus: analyzer overhead gate (<${OVERHEAD_PCT}% of solve) =="
"$ANALYZE_BIN" --corpus --solve --json > /tmp/sbd-analyze-corpus.json
python3 - "$OVERHEAD_PCT" <<'EOF'
import json, sys
pct = float(sys.argv[1])
with open("/tmp/sbd-analyze-corpus.json") as f:
    rep = json.load(f)
analysis = rep["analysis_us_total"]
solve = rep["solve_us_total"]
assert rep["parse_errors"] == 0, f"corpus parse errors: {rep['parse_errors']}"
assert solve > 0, "corpus solve time is zero — harness broken?"
ratio = 100.0 * analysis / solve
print(f"analysis {analysis} us over solve {solve} us = {ratio:.2f}%")
assert ratio < pct, (
    f"analyzer overhead {ratio:.2f}% exceeds the {pct}% budget")
EOF
echo "analyze_corpus.sh: OK"
