#!/usr/bin/env bash
# Release-mode --quick bench run with machine-readable output. Shared by
# `check.sh --quick` (which then *snapshots* the numbers as the checked-in
# baseline) and perf_smoke.sh (which *compares* against that baseline) so
# the two always measure the same thing.
#
# Writes: /tmp/sbd-bench-micro.json, /tmp/sbd-bench-corpus.json
. "$(dirname "$0")/common.sh"

sbd_configure build-release -DCMAKE_BUILD_TYPE=Release
sbd_build build-release bench_micro bench_smt_corpus
build-release/bench/bench_micro --quick --json /tmp/sbd-bench-micro.json
build-release/bench/bench_smt_corpus --quick --json /tmp/sbd-bench-corpus.json
