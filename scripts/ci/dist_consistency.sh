#!/usr/bin/env bash
# Distributed-consistency gate (DESIGN.md §16): the corpus through the
# sbd-dist coordinator/worker layer must produce the same canonical
# verdict stream no matter how many worker processes solve it, and a
# worker crash mid-run must recover through requeue-once with zero lost or
# duplicated verdicts.
#
# Gates (all hard failures):
#   - 1-worker and N-worker verdict streams byte-identical;
#   - worker-kill run (worker 1 dies on its 3rd request): stream still
#     byte-identical, >= 1 crash observed, >= 1 requeue, 0 lost verdicts;
#   - every run emits exactly one verdict line per corpus pattern;
#   - perf: N-worker wall <= 0.6x 1-worker wall, enforced only on
#     multi-core hosts (the CI runners; a 1-core container cannot speed
#     up by adding processes) — scripts/perf_smoke.py dist decides and
#     merges the measurement into the BENCH_PR10.json snapshot.
#
# Environment:
#   SBD_DIST_SCALE     corpus scale (default 0.05)
#   SBD_DIST_SEED      corpus seed (default 2021)
#   SBD_DIST_WORKERS   N for the multi-process runs (default 4)
#
# Usage: dist_consistency.sh [build-dir]
. "$(dirname "$0")/common.sh"

require python3 "needed to evaluate the stats JSON"

BUILD_DIR="${1:-build-release}"
SCALE="${SBD_DIST_SCALE:-0.05}"
SEED="${SBD_DIST_SEED:-2021}"
WORKERS="${SBD_DIST_WORKERS:-4}"
sbd_workdir WORK dist-consistency # trap-managed: removed on any exit

# The gate times a worker-scaling ratio, so measure an optimized build.
sbd_configure "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
sbd_build "$BUILD_DIR" sbd-dist
DIST="$BUILD_DIR/tools/sbd-dist"
[ -x "$DIST" ] || {
  echo "error: sbd-dist was not built" >&2
  exit 1
}

echo "== dist-consistency: exporting corpus (scale=$SCALE seed=$SEED) =="
"$DIST" --gen --scale "$SCALE" --seed "$SEED" \
  --export-corpus "$WORK/corpus.txt"
PATTERNS=$(wc -l < "$WORK/corpus.txt")
[ "$PATTERNS" -gt 0 ] || {
  echo "error: exported corpus is empty" >&2
  exit 1
}
echo "corpus: $PATTERNS patterns"

run_dist() { # run_dist <label> <extra flags...>
  local label="$1"
  shift
  "$DIST" --corpus "$WORK/corpus.txt" --stats "$@" \
    > "$WORK/$label.out" 2> "$WORK/$label.json"
}

echo "== pass 1: 1 worker =="
run_dist w1 --workers 1
echo "== pass 2: $WORKERS workers =="
run_dist wn --workers "$WORKERS"
echo "== pass 3: $WORKERS workers, worker 1 killed on its 3rd request =="
run_dist kill --workers "$WORKERS" --test-crash-worker 1:3

for label in w1 wn kill; do
  LINES=$(wc -l < "$WORK/$label.out")
  [ "$LINES" -eq "$PATTERNS" ] || {
    echo "error: $label run emitted $LINES verdicts for $PATTERNS patterns" \
      >&2
    exit 1
  }
done

if ! cmp -s "$WORK/w1.out" "$WORK/wn.out"; then
  echo "error: 1-worker and $WORKERS-worker verdict streams differ" >&2
  diff "$WORK/w1.out" "$WORK/wn.out" | head -20 >&2
  exit 1
fi
echo "1-worker vs $WORKERS-worker: byte-identical ($PATTERNS verdicts)"

if ! cmp -s "$WORK/w1.out" "$WORK/kill.out"; then
  echo "error: worker-kill run diverged from the clean stream" >&2
  diff "$WORK/w1.out" "$WORK/kill.out" | head -20 >&2
  exit 1
fi

python3 - "$WORK/kill.json" << 'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    kill = json.load(f)

failures = []
if kill.get("worker_crashes", 0) < 1:
    failures.append("kill run observed no worker crash (test hook inert?)")
if kill.get("requeues", 0) < 1:
    failures.append("kill run recovered without requeuing (lost in-flight?)")
if kill.get("lost", 0) != 0:
    failures.append(f"kill run lost {kill['lost']} verdicts")
if failures:
    print("dist-consistency: FAILED")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print(f"worker-kill recovery: ok ({kill['worker_crashes']} crash, "
      f"{kill['requeues']} requeued, 0 lost)")
EOF

# Scaling measurement + conditional speedup gate, merged into the perf
# snapshot so the trend across PRs stays visible.
python3 scripts/perf_smoke.py dist "$WORK/w1.json" "$WORK/wn.json" \
  BENCH_PR10.json
