#!/usr/bin/env bash
# Invariant-audit build: every intern, δdnf result, and checkSat exit is
# re-verified against the similarity laws (DESIGN.md §9) while the whole
# suite runs.
. "$(dirname "$0")/common.sh"

require ctest "ships with CMake"
sbd_configure build-audit -DSBD_AUDIT=ON
sbd_build build-audit
ctest --test-dir build-audit --output-on-failure
