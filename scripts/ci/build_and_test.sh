#!/usr/bin/env bash
# Tier-1 gate: configure, build everything, run the full test suite.
#
# Usage: build_and_test.sh [build-dir] [extra cmake args...]
#   BUILD_TYPE=Release|Debug  optional CMAKE_BUILD_TYPE (default: unset)
. "$(dirname "$0")/common.sh"

BUILD_DIR="${1:-build}"
shift || true

EXTRA=()
if [ -n "${BUILD_TYPE:-}" ]; then
  EXTRA+=(-DCMAKE_BUILD_TYPE="$BUILD_TYPE")
fi

require ctest "ships with CMake"
sbd_configure "$BUILD_DIR" ${EXTRA[@]+"${EXTRA[@]}"} "$@"
sbd_build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure
