#!/usr/bin/env bash
# Debug-build bench pass at --quick scale: exercises every harness binary's
# full code path without turning the tier-1 gate into a benchmark run. Also
# runs the release-mode bench smoke and validates the observability JSON
# outputs (DESIGN.md §8).
#
# Usage: bench_debug.sh [debug-build-dir]
. "$(dirname "$0")/common.sh"

BUILD_DIR="${1:-build}"

# Every harness binary must exist and exit 0. The loop counts what it ran:
# a glob that matches nothing (e.g. after a build-layout change) must fail
# the step, not silently pass it.
ran=0
for b in "$BUILD_DIR"/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    "$b" --quick
    ran=$((ran + 1))
  fi
done
if [ "$ran" -eq 0 ]; then
  echo "error: no bench binaries found under $BUILD_DIR/bench — did the build run?" >&2
  exit 1
fi
echo "bench smoke: $ran harness binaries ran clean"

# Release-mode bench smoke: catches perf-path regressions that only compile
# (or only crash) under optimization, and keeps the --quick flag working.
sbd_configure build-release -DCMAKE_BUILD_TYPE=Release
sbd_build build-release bench_micro bench_batch bench_smt_corpus
build-release/bench/bench_micro --quick --json /tmp/sbd-bench-micro.json
build-release/bench/bench_batch --threads 2 --scale 0.02
build-release/bench/bench_smt_corpus --quick --trace /tmp/sbd-trace.json \
  --stats-json /tmp/sbd-stats.json --json /tmp/sbd-bench-corpus.json

# Stats smoke: the observability outputs must stay valid JSON with the
# documented keys.
require python3 "needed for the stats smoke assertions"
python3 - << 'EOF'
import json
trace = json.load(open("/tmp/sbd-trace.json"))
assert trace["traceEvents"], "empty traceEvents"
assert all(k in trace["traceEvents"][0] for k in ("name", "ph", "ts", "dur"))
stats = json.load(open("/tmp/sbd-stats.json"))
for key in ("derivative_calls", "dnf_calls", "memo_hits", "solve_time_us",
            "trace_events_dropped", "slow_queries_captured"):
    assert key in stats["counters"], key
for key in ("engine", "parse_us", "minterm_us", "derive_us", "dnf_us",
            "cache_probe_us", "scan_us", "search_us", "total_us"):
    assert key in stats["aggregate"], key
for hist in ("solve_latency_us", "dnf_expansion_arcs"):
    for key in ("count", "p50", "p90", "p99", "buckets"):
        assert key in stats["histograms"][hist], f"{hist}.{key}"
print("stats smoke ok")
EOF
