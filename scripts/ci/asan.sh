#!/usr/bin/env bash
# AddressSanitizer + UBSan over the full suite. Mandatory: memory bugs in
# the arena/interning layer are exactly the class the audits cannot see.
. "$(dirname "$0")/common.sh"

require ctest "ships with CMake"
sbd_configure build-asan -DSBD_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
sbd_build build-asan
ctest --test-dir build-asan --output-on-failure
