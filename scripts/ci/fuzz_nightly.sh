#!/usr/bin/env bash
# Nightly differential fuzz campaign: keep launching seeded sbd-fuzz runs
# (dist_consistency law included — every 8th arena batch re-solves through
# forked coordinator/worker processes) until the wall-clock budget is
# spent. Much deeper than the 3-seed PR smoke: fresh seeds every night,
# shrunken discrepancies collected as ready-to-paste regression tests.
#
# A failing run does NOT stop the campaign — the remaining budget keeps
# hunting for more counterexamples; the script exits 1 at the end if any
# run failed. Every report and repro lands in SBD_NIGHTLY_OUT, which the
# nightly workflow uploads as an artifact.
#
# Environment:
#   SBD_NIGHTLY_SECONDS    wall-clock budget (default 60)
#   SBD_NIGHTLY_SEED_BASE  first seed (default: day-stamp, so every night
#                          explores a fresh seed range; each report records
#                          its exact seed for reproduction)
#   SBD_NIGHTLY_ITERATIONS regexes per run (default 4000)
#   SBD_NIGHTLY_OUT        report/repro directory (default /tmp/sbd-nightly)
#
# Usage: fuzz_nightly.sh [build-dir]
. "$(dirname "$0")/common.sh"

require python3 "needed to extract shrunken repros from the reports"

BUILD_DIR="${1:-build}"
BUDGET="${SBD_NIGHTLY_SECONDS:-60}"
SEED_BASE="${SBD_NIGHTLY_SEED_BASE:-$(date +%Y%m%d)}"
ITERATIONS="${SBD_NIGHTLY_ITERATIONS:-4000}"
OUT="${SBD_NIGHTLY_OUT:-/tmp/sbd-nightly}"
mkdir -p "$OUT"

sbd_configure "$BUILD_DIR"
sbd_build "$BUILD_DIR" sbd-fuzz
FUZZ_BIN="$BUILD_DIR/tools/sbd-fuzz"
[ -x "$FUZZ_BIN" ] || {
  echo "error: $FUZZ_BIN was not built" >&2
  exit 1
}

echo "== fuzz nightly: budget=${BUDGET}s seed-base=$SEED_BASE" \
  "iterations/run=$ITERATIONS =="
ROUND=0
FAILED=0
SECONDS=0
while [ "$SECONDS" -lt "$BUDGET" ]; do
  SEED=$((SEED_BASE + ROUND))
  REPORT="$OUT/report-seed-$SEED.json"
  echo "-- round $ROUND: seed=$SEED (${SECONDS}s/${BUDGET}s elapsed) --"
  if ! "$FUZZ_BIN" --seed "$SEED" --iterations "$ITERATIONS" \
    --dist 8 --dist-workers 3 --json "$REPORT" \
    2> "$OUT/summary-seed-$SEED.log"; then
    FAILED=1
    echo "seed $SEED FAILED — extracting shrunken repros" >&2
    # The report carries the already-shrunk counterexamples; the summary
    # log carries the rendered regression tests. Condense both into one
    # repro file per seed for the artifact.
    python3 - "$REPORT" "$OUT/repro-seed-$SEED.txt" << 'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    rep = json.load(f)
with open(sys.argv[2], "w") as out:
    out.write(f"# sbd-fuzz nightly repro: seed={rep['seed']} "
              f"iterations={rep['iterations']}\n")
    out.write(f"# rerun: sbd-fuzz --seed {rep['seed']} "
              f"--iterations {rep['iterations']} --dist 8\n\n")
    for i, d in enumerate(rep.get("discrepancies", []), 1):
        out.write(f"## discrepancy {i}\n")
        out.write(f"law:     {d['law']}\n")
        out.write(f"engine:  {d['engine']}\n")
        out.write(f"pattern: {d['pattern']} ({d['regex_nodes']} nodes, "
                  "shrunk)\n")
        out.write(f"word:    {d['word']} (utf8 {d['word_utf8']!r})\n")
        out.write(f"detail:  {d['detail']}\n\n")
EOF
  fi
  ROUND=$((ROUND + 1))
done

echo "== fuzz nightly: $ROUND runs in ${SECONDS}s =="
if [ "$FAILED" -ne 0 ]; then
  echo "fuzz nightly: FAILED — see $OUT/repro-seed-*.txt" >&2
  exit 1
fi
echo "fuzz nightly: all $ROUND runs clean"
