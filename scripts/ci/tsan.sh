#!/usr/bin/env bash
# ThreadSanitizer: the batch solver spawns the worker threads and the obs
# registry is the only shared-mutable-state structure they touch, so both
# test binaries run under TSan.
. "$(dirname "$0")/common.sh"

require ctest "ships with CMake"
sbd_configure build-tsan -DSBD_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
sbd_build build-tsan batch_solver_test obs_test
ctest --test-dir build-tsan -R 'BatchSolver|Obs|Metrics|Tracer' \
  --output-on-failure
