#!/usr/bin/env bash
# Warning hardening: src/ must compile clean under
# -Wall -Wextra -Wshadow -Wconversion -Werror.
. "$(dirname "$0")/common.sh"

sbd_configure build-werror -DSBD_WERROR=ON
sbd_build build-werror
