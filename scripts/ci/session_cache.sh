#!/usr/bin/env bash
# Resident-session verdict-cache gate (DESIGN.md §15): exports the SMT
# corpus, concatenates it into one (reset)-separated replay stream, and
# runs it through sbd-server twice —
#
#   pass 1 (cold): empty cache, --cache-save snapshots the verdicts;
#   pass 2 (warm): --cache-load restores them, every check should hit.
#
# Gates (all hard failures):
#   - the two passes print identical sat/unsat/unknown sequences
#     (zero verdict differences cached-vs-direct);
#   - pass-2 hit rate >= 90% of its checks;
#   - pass-2 wall-clock <= 0.5x pass-1 (the >= 2x warm speedup the cache
#     exists for — measured end-to-end through the server, parse included);
#   - zero revalidation failures (a poisoned persisted entry would
#     surface here).
#
# Environment:
#   SBD_SESSION_SCALE   corpus scale (default 0.02)
#   SBD_SESSION_SEED    corpus seed (default 2021)
#
# Usage: session_cache.sh [build-dir]
. "$(dirname "$0")/common.sh"

require python3 "needed to evaluate the stats JSON"

BUILD_DIR="${1:-build-release}"
SCALE="${SBD_SESSION_SCALE:-0.02}"
SEED="${SBD_SESSION_SEED:-2021}"
sbd_workdir WORK session-cache # trap-managed: removed on any exit

# The gate times a warm-vs-cold ratio, so measure an optimized build.
sbd_configure "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
sbd_build "$BUILD_DIR" sbd-server export_benchmarks
SERVER="$BUILD_DIR/tools/sbd-server"
EXPORT="$BUILD_DIR/examples/export_benchmarks"
[ -x "$SERVER" ] && [ -x "$EXPORT" ] || {
  echo "error: sbd-server/export_benchmarks were not built" >&2
  exit 1
}

echo "== session-cache: exporting corpus (scale=$SCALE seed=$SEED) =="
"$EXPORT" "$WORK/corpus" "$SCALE" "$SEED"

# One replay stream: every instance script, separated by (reset) so the
# session's declarations don't collide. sort keeps the order stable across
# filesystems; the stream is identical for both passes.
STREAM="$WORK/replay.smt2"
find "$WORK/corpus" -name '*.smt2' | sort | while read -r f; do
  cat "$f"
  echo "(reset)"
done > "$STREAM"
CHECKS=$(grep -c "^(check-sat)" "$STREAM")
[ "$CHECKS" -gt 0 ] || {
  echo "error: exported corpus contains no check-sat commands" >&2
  exit 1
}
echo "replay stream: $CHECKS checks"

run_pass() { # run_pass <label> <extra flags...>
  local label="$1"
  shift
  "$SERVER" --stats-json "$WORK/$label.json" "$@" \
    < "$STREAM" > "$WORK/$label.out" 2> "$WORK/$label.err"
}

echo "== pass 1: cold (cache empty, saving snapshot) =="
run_pass cold --cache-save "$WORK/verdicts.jsonl"
echo "== pass 2: warm (snapshot preloaded) =="
run_pass warm --cache-load "$WORK/verdicts.jsonl"

# Verdict equality: the protocol output of the two passes must be
# byte-identical — same verdicts, same order.
if ! cmp -s "$WORK/cold.out" "$WORK/warm.out"; then
  echo "error: warm pass verdicts differ from cold pass" >&2
  diff "$WORK/cold.out" "$WORK/warm.out" | head -20 >&2
  exit 1
fi

python3 - "$WORK/cold.json" "$WORK/warm.json" << 'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    cold = json.load(f)
with open(sys.argv[2]) as f:
    warm = json.load(f)

failures = []
checks = warm.get("checks", 0)
cache = warm.get("cache", {})
hits = cache.get("hits", 0)
hit_rate = hits / checks if checks else 0.0
if checks <= 0:
    failures.append("warm pass ran no checks")
if hit_rate < 0.90:
    failures.append(
        f"warm hit rate {hit_rate:.1%} < 90% ({hits}/{checks})")
for doc, label in ((cold, "cold"), (warm, "warm")):
    rf = doc.get("cache", {}).get("revalidation_failures", 0)
    if rf:
        failures.append(f"{label} pass had {rf} revalidation failures")

cold_us = cold.get("wall_us", 0)
warm_us = warm.get("wall_us", 0)
if cold_us <= 0:
    failures.append("cold pass recorded no wall time")
elif warm_us > 0.5 * cold_us:
    failures.append(
        f"warm wall {warm_us}us > 0.5x cold {cold_us}us "
        f"({warm_us / cold_us:.2f}x)")

if failures:
    print("session-cache: FAILED")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print(f"session-cache: ok ({checks} checks, hit rate {hit_rate:.1%}, "
      f"warm {warm_us}us vs cold {cold_us}us = "
      f"{cold_us / warm_us:.1f}x speedup)")
EOF
