#!/usr/bin/env bash
# The observability layer must compile out cleanly: the affected suites
# must still pass with every counter bump and span stripped (-DSBD_OBS=OFF).
. "$(dirname "$0")/common.sh"

require ctest "ships with CMake"
sbd_configure build-obs0 -DSBD_OBS=OFF
sbd_build build-obs0 solver_test obs_test batch_solver_test smt_test \
  audit_test
ctest --test-dir build-obs0 -R 'Solver|Obs|Metrics|Tracer|Batch|Smt|Audit' \
  --output-on-failure
