#!/usr/bin/env python3
"""Structural validation for GitHub Actions workflows (actionlint-lite).

CI containers here don't ship actionlint, so this is the equivalent gate:
it parses every workflow under .github/workflows/ and checks the mistakes
that actually break workflows in practice:

  * top level: name / on / jobs present, jobs non-empty
  * every job has runs-on and a non-empty steps list
  * every job has timeout-minutes (a hung step must not burn the runner's
    6-hour default) and is covered by a cancel-in-progress concurrency
    group (workflow-level or per-job) unless the workflow only runs on
    schedule/workflow_dispatch, where superseded runs cannot pile up
  * every step has exactly one of `uses` / `run`
  * `uses` references look like owner/repo@ref (or ./local-action)
  * every `needs` points at a job that exists
  * every `${{ matrix.X }}` reference is declared in strategy.matrix
    (include-only keys count)
  * every repo script referenced by a `run` block exists and, for *.sh /
    *.py invoked directly, is executable

Stdlib + PyYAML only. Exit 0 when every workflow is clean.
"""

import os
import re
import stat
import sys

try:
    import yaml
except ImportError:
    print("error: PyYAML is required to validate workflows", file=sys.stderr)
    sys.exit(1)

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
)

USES_RE = re.compile(r"^(\./|[\w.-]+/[\w.-]+(/[\w./-]+)?@[\w./-]+$)")
MATRIX_REF_RE = re.compile(r"\$\{\{\s*matrix\.([A-Za-z_][\w-]*)")
SCRIPT_REF_RE = re.compile(r"(?:^|[\s;&|(])((?:\./)?scripts/[\w./-]+\.(?:sh|py))")


def fail(errors, path, where, msg):
    errors.append(f"{path}: {where}: {msg}")


def check_step(errors, path, job_id, idx, step, matrix_keys):
    where = f"jobs.{job_id}.steps[{idx}]"
    if not isinstance(step, dict):
        fail(errors, path, where, "step is not a mapping")
        return
    has_uses = "uses" in step
    has_run = "run" in step
    if has_uses == has_run:
        fail(errors, path, where, "step needs exactly one of uses/run")
        return
    if has_uses:
        uses = str(step["uses"])
        if not USES_RE.match(uses):
            fail(errors, path, where, f"malformed uses reference '{uses}'")
    if has_run:
        run = str(step["run"])
        for script in SCRIPT_REF_RE.findall(run):
            rel = script[2:] if script.startswith("./") else script
            full = os.path.join(REPO_ROOT, rel)
            if not os.path.isfile(full):
                fail(errors, path, where, f"references missing file {rel}")
            elif not os.stat(full).st_mode & stat.S_IXUSR:
                fail(errors, path, where, f"{rel} is not executable")
    # Matrix references anywhere in the step body.
    for ref in MATRIX_REF_RE.findall(yaml.safe_dump(step)):
        if ref not in matrix_keys:
            fail(errors, path, where,
                 f"references undeclared matrix key '{ref}'")


def matrix_keys_of(job):
    strategy = job.get("strategy") or {}
    matrix = strategy.get("matrix") or {}
    keys = set()
    if isinstance(matrix, dict):
        for k, v in matrix.items():
            if k in ("include", "exclude"):
                for combo in v or []:
                    if isinstance(combo, dict):
                        keys.update(combo.keys())
            else:
                keys.add(k)
    return keys


def has_cancel_in_progress(node):
    """True when a concurrency block with cancel-in-progress: true exists."""
    conc = (node or {}).get("concurrency")
    return isinstance(conc, dict) and conc.get("cancel-in-progress") is True


def triggered_only_manually(doc):
    """True when the workflow runs only on schedule/workflow_dispatch —
    such runs are never superseded by a newer push, so requiring a
    cancel-in-progress group would cancel nightly campaigns for nothing."""
    # PyYAML parses the bare `on:` key as boolean True.
    on = doc.get("on", doc.get(True))
    if isinstance(on, str):
        triggers = {on}
    elif isinstance(on, list):
        triggers = set(on)
    elif isinstance(on, dict):
        triggers = set(on.keys())
    else:
        return False
    return triggers and triggers <= {"schedule", "workflow_dispatch"}


def check_workflow(errors, path, doc):
    if not isinstance(doc, dict):
        fail(errors, path, "top", "workflow is not a mapping")
        return
    # PyYAML parses the bare `on:` key as boolean True.
    if "on" not in doc and True not in doc:
        fail(errors, path, "top", "missing 'on' trigger block")
    if "name" not in doc:
        fail(errors, path, "top", "missing workflow name")
    jobs = doc.get("jobs")
    if not isinstance(jobs, dict) or not jobs:
        fail(errors, path, "top", "missing or empty jobs block")
        return
    workflow_cancels = has_cancel_in_progress(doc)
    manual_only = triggered_only_manually(doc)
    for job_id, job in jobs.items():
        where = f"jobs.{job_id}"
        if not isinstance(job, dict):
            fail(errors, path, where, "job is not a mapping")
            continue
        if "runs-on" not in job:
            fail(errors, path, where, "missing runs-on")
        if "timeout-minutes" not in job:
            fail(errors, path, where,
                 "missing timeout-minutes (a hung step would hold the "
                 "runner for the 6-hour default)")
        if not (workflow_cancels or manual_only
                or has_cancel_in_progress(job)):
            fail(errors, path, where,
                 "not covered by a cancel-in-progress concurrency group "
                 "(superseded pushes would keep stale runs alive)")
        steps = job.get("steps")
        if not isinstance(steps, list) or not steps:
            fail(errors, path, where, "missing or empty steps list")
            continue
        needs = job.get("needs", [])
        if isinstance(needs, str):
            needs = [needs]
        for n in needs:
            if n not in jobs:
                fail(errors, path, where, f"needs unknown job '{n}'")
        keys = matrix_keys_of(job)
        for idx, step in enumerate(steps):
            check_step(errors, path, job_id, idx, step, keys)


def main():
    wf_dir = os.path.join(REPO_ROOT, ".github", "workflows")
    if len(sys.argv) > 1:
        paths = sys.argv[1:]
    else:
        if not os.path.isdir(wf_dir):
            print(f"error: {wf_dir} does not exist", file=sys.stderr)
            return 1
        paths = [
            os.path.join(wf_dir, f)
            for f in sorted(os.listdir(wf_dir))
            if f.endswith((".yml", ".yaml"))
        ]
    if not paths:
        print("error: no workflow files found", file=sys.stderr)
        return 1

    errors = []
    for path in paths:
        rel = os.path.relpath(path, REPO_ROOT)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = yaml.safe_load(fh)
        except yaml.YAMLError as exc:
            fail(errors, rel, "parse", str(exc).replace("\n", " "))
            continue
        check_workflow(errors, rel, doc)

    if errors:
        for e in errors:
            print(f"workflow lint: {e}", file=sys.stderr)
        print(f"workflow lint: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"workflow lint: {len(paths)} workflow(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
