#!/usr/bin/env bash
# The compiled matcher's SIMD kernels must be optional: with
# -DSBD_COMPILE_SIMD=OFF every scan goes through the portable scalar table
# walk, and the compiled-DFA, promotion, and differential-fuzz suites must
# still pass bit-for-bit. This is the scalar half of the kernel matrix
# (the default build exercises the SSE2/SSSE3/AVX2 or NEON paths on hosts
# that have them).
. "$(dirname "$0")/common.sh"

require ctest "ships with CMake"
sbd_configure build-scalar -DSBD_COMPILE_SIMD=OFF
sbd_build build-scalar compiled_dfa_test cached_matcher_test \
  fuzz_oracle_test solver_test
ctest --test-dir build-scalar -R 'Compiled|CachedMatcher|FuzzOracle|Solver' \
  --output-on-failure
