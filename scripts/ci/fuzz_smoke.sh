#!/usr/bin/env bash
# Differential fuzz smoke: a seeded sbd-fuzz campaign across every engine,
# failing on any discrepancy, plus the --corrupt self-check proving the
# oracle still *catches* an injected bug (a fuzzer that can never fail is
# worthless — this guards the guard).
#
# Environment:
#   SBD_FUZZ_SEED        campaign seed (default 1; the CI job runs a small
#                        seed matrix so regressions can't hide behind one
#                        lucky stream)
#   SBD_FUZZ_ITERATIONS  regex count (default 2000)
#   SBD_FUZZ_JSON        report path (default /tmp/sbd-fuzz-report.json;
#                        uploaded as a CI artifact)
#
# Usage: fuzz_smoke.sh [build-dir]
. "$(dirname "$0")/common.sh"

BUILD_DIR="${1:-build}"
SEED="${SBD_FUZZ_SEED:-1}"
ITERATIONS="${SBD_FUZZ_ITERATIONS:-2000}"
REPORT="${SBD_FUZZ_JSON:-/tmp/sbd-fuzz-report.json}"

sbd_configure "$BUILD_DIR"
sbd_build "$BUILD_DIR" sbd-fuzz
FUZZ_BIN="$BUILD_DIR/tools/sbd-fuzz"
[ -x "$FUZZ_BIN" ] || {
  echo "error: $FUZZ_BIN was not built" >&2
  exit 1
}

echo "== fuzz smoke: seed=$SEED iterations=$ITERATIONS =="
"$FUZZ_BIN" --seed "$SEED" --iterations "$ITERATIONS" --json "$REPORT"

echo "== oracle self-check: injected bug must be caught =="
"$FUZZ_BIN" --seed "$SEED" --iterations 500 --corrupt --quiet \
  --json "${REPORT%.json}-corrupt.json"
