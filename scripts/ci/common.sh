#!/usr/bin/env bash
# Shared helpers for the CI step scripts (scripts/ci/*.sh). Sourced, never
# executed. These scripts are the single source of truth for how each
# verification step runs: check.sh calls them locally and
# .github/workflows/ci.yml calls the same files, so the two cannot drift.
#
# Environment knobs (all optional):
#   SBD_CC / SBD_CXX   compiler pair for the build matrix (e.g. gcc/g++ or
#                      clang/clang++). Fails fast when the requested
#                      compiler is not installed — a CI matrix leg silently
#                      building with the wrong default compiler is worse
#                      than a red X.
#   SBD_NO_CCACHE=1    disable the automatic ccache launcher wiring.
set -euo pipefail

SBD_REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
cd "$SBD_REPO_ROOT"

# Fail fast with an actionable message instead of a bash "command not
# found" half-way through a multi-minute step.
require() {
  command -v "$1" > /dev/null 2>&1 || {
    echo "error: required tool '$1' not found in PATH${2:+ — $2}" >&2
    exit 1
  }
}

require cmake "install CMake 3.16+"

# Prefer Ninja, fall back to the default generator rather than failing:
# the build matrix must run on minimal containers too.
SBD_CMAKE_ARGS=()
if command -v ninja > /dev/null 2>&1; then
  SBD_CMAKE_ARGS+=(-G Ninja)
fi

# Compiler selection from the CI matrix.
if [ -n "${SBD_CC:-}" ] || [ -n "${SBD_CXX:-}" ]; then
  : "${SBD_CC:?SBD_CXX set without SBD_CC}"
  : "${SBD_CXX:?SBD_CC set without SBD_CXX}"
  require "$SBD_CC" "requested via SBD_CC"
  require "$SBD_CXX" "requested via SBD_CXX"
  SBD_CMAKE_ARGS+=(-DCMAKE_C_COMPILER="$SBD_CC"
                   -DCMAKE_CXX_COMPILER="$SBD_CXX")
fi

# ccache when available (the CI workflow restores its cache dir).
if [ -z "${SBD_NO_CCACHE:-}" ] && command -v ccache > /dev/null 2>&1; then
  SBD_CMAKE_ARGS+=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
                   -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

# Managed scratch directories: sbd_workdir VAR [slug] creates a temp dir,
# assigns its path to VAR, and arms one shared EXIT trap that removes every
# workdir created through this helper — on success, failure, and signals
# alike, so an aborted gate never leaves corpus/cache litter in /tmp.
# (Assignment via printf -v rather than command substitution: a subshell
# could not register the trap in the sourcing script.)
SBD_WORKDIRS=()
sbd_cleanup_workdirs() {
  local d
  for d in ${SBD_WORKDIRS[@]+"${SBD_WORKDIRS[@]}"}; do
    rm -rf "$d"
  done
}
sbd_workdir() { # sbd_workdir <var-name> [slug]
  local __var="$1" __slug="${2:-work}" __dir
  __dir="$(mktemp -d "/tmp/sbd-${__slug}.XXXXXX")"
  SBD_WORKDIRS+=("$__dir")
  trap sbd_cleanup_workdirs EXIT
  printf -v "$__var" '%s' "$__dir"
}

# sbd_configure <build-dir> [extra cmake args...]
sbd_configure() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . ${SBD_CMAKE_ARGS[@]+"${SBD_CMAKE_ARGS[@]}"} "$@"
}

# sbd_build <build-dir> [targets...]
sbd_build() {
  local dir="$1"
  shift
  if [ "$#" -gt 0 ]; then
    cmake --build "$dir" --target "$@"
  else
    cmake --build "$dir"
  fi
}
