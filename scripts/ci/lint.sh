#!/usr/bin/env bash
# Project-structure lints (stdlib-only python) plus clang-tidy vs the
# checked-in baseline. tidy.sh is a documented no-op when clang-tidy is not
# installed, so this step is safe on minimal containers; the CI lint job
# installs clang-tidy so the baseline comparison actually runs there.
#
# Usage: lint.sh [build-dir-for-compile-commands]
. "$(dirname "$0")/common.sh"

require python3 "needed for scripts/lint_sbd.py"
python3 scripts/lint_sbd.py
scripts/tidy.sh "${1:-build}"
