#!/usr/bin/env bash
# Observability overhead guard (DESIGN.md §13). Two promises, checked:
#
#  1. "Always-on profiling is cheap": the same Release bench_micro --quick
#     run with the obs layer compiled in (default) vs compiled out
#     (-DSBD_OBS=OFF) must not show any series >= 200ns slowing past
#     OVERHEAD_RATIO. Sub-200ns series are harness noise at --quick scale
#     and are skipped, exactly like perf_smoke.py's MIN_COMPARE_NS.
#
#  2. "Slow-query artifacts replay": a corpus run with capture armed at
#     threshold 0 must produce a JSONL artifact that sbd-explain can parse,
#     replay on a fresh stack, and report through its --json contract.
. "$(dirname "$0")/common.sh"

require python3 "needed for the ratio comparison"

OVERHEAD_RATIO="${SBD_OBS_OVERHEAD_RATIO:-1.8}"

sbd_configure build-release -DCMAKE_BUILD_TYPE=Release
sbd_build build-release bench_micro bench_smt_corpus sbd-explain
sbd_configure build-obs0-release -DCMAKE_BUILD_TYPE=Release -DSBD_OBS=OFF
sbd_build build-obs0-release bench_micro

build-release/bench/bench_micro --quick --json /tmp/sbd-obs-on.json
build-obs0-release/bench/bench_micro --quick --json /tmp/sbd-obs-off.json

python3 - /tmp/sbd-obs-on.json /tmp/sbd-obs-off.json "$OVERHEAD_RATIO" <<'EOF'
import json, sys

def series(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: float(b["real_time"])
            for b in doc.get("benchmarks", [])
            if b.get("run_type") != "aggregate"
            and b.get("time_unit", "ns") == "ns"}

on, off, ratio = series(sys.argv[1]), series(sys.argv[2]), float(sys.argv[3])
failures, compared = [], 0
for name in sorted(set(on) & set(off)):
    if off[name] < 200.0:
        continue
    compared += 1
    if on[name] > ratio * off[name]:
        failures.append(f"  {name}: obs-on {on[name]:.0f}ns vs obs-off "
                        f"{off[name]:.0f}ns ({on[name]/off[name]:.2f}x "
                        f"> {ratio}x)")
if not compared:
    failures.append("  no comparable series >= 200ns — bench output broken?")
if failures:
    print("obs-overhead: the profiling layer is no longer cheap:")
    print("\n".join(failures))
    sys.exit(1)
print(f"obs-overhead: ok ({compared} series within {ratio}x of the "
      "-DSBD_OBS=OFF build)")
EOF

# Slow-query capture → sbd-explain replay round trip.
SLOW_LOG=/tmp/sbd-obs-slow.jsonl
rm -f "$SLOW_LOG"
build-release/bench/bench_smt_corpus --quick --threads 1 \
  --slow-log "$SLOW_LOG" --slow-threshold-us 0 > /dev/null
test -s "$SLOW_LOG" || {
  echo "obs-overhead: $SLOW_LOG is empty — slow-query capture broke" >&2
  exit 1
}
build-release/tools/sbd-explain --json "$SLOW_LOG" > /tmp/sbd-obs-explain.json

python3 - /tmp/sbd-obs-explain.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("artifact_index", "artifact_count", "status", "stop_reason",
            "total_us", "states", "replayed", "replay_status",
            "replay_total_us", "replay_stats"):
    assert key in doc, f"sbd-explain --json lost key {key!r}"
assert doc["artifact_count"] > 0, "no artifacts parsed"
assert doc["replayed"] is True, "replay did not run"
assert doc["replay_status"] in ("sat", "unsat", "unknown"), doc["replay_status"]
assert "total_us" in doc["replay_stats"], "replay stats lost the phase keys"
print(f"obs-overhead: sbd-explain replayed artifact "
      f"{doc['artifact_index']} of {doc['artifact_count']} "
      f"(captured {doc['status']}, replay {doc['replay_status']})")
EOF
