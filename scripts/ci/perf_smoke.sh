#!/usr/bin/env bash
# Perf-smoke guard: rerun the --quick benches and compare against the
# checked-in BENCH_PR10.json baseline (generous 2.5x tolerance; see
# scripts/perf_smoke.py). Skips cleanly when no baseline is checked in.
# The CI job running this is continue-on-error: shared runners are noisy,
# so it warns rather than blocks.
. "$(dirname "$0")/common.sh"

require python3 "needed for scripts/perf_smoke.py"
"$(dirname "$0")/bench_quick.sh"
python3 scripts/perf_smoke.py compare BENCH_PR10.json \
  /tmp/sbd-bench-micro.json /tmp/sbd-bench-corpus.json
