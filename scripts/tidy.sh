#!/usr/bin/env bash
# Runs clang-tidy over src/ using the repo .clang-tidy config and compares
# the findings against scripts/tidy_baseline.txt: new findings fail the
# script, fixed findings just print a reminder to shrink the baseline.
#
# Usage:
#   scripts/tidy.sh [build-dir]          # default build dir: build/
#   scripts/tidy.sh --update [build-dir] # rewrite the baseline from HEAD
#
# Requires a build dir configured with CMAKE_EXPORT_COMPILE_COMMANDS (the
# top-level CMakeLists.txt always sets it). When clang-tidy is not
# installed this script is a no-op that exits 0, so check.sh can invoke it
# unconditionally.
set -u

cd "$(dirname "$0")/.."

UPDATE=0
if [ "${1:-}" = "--update" ]; then
  UPDATE=1
  shift
fi
BUILD_DIR="${1:-build}"
BASELINE=scripts/tidy_baseline.txt

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  echo "tidy.sh: clang-tidy not found on PATH; skipping (not an error)."
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "tidy.sh: $BUILD_DIR/compile_commands.json missing." >&2
  echo "tidy.sh: configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 1
fi

# Every first-party translation unit (generated/test/bench files are linted
# by their own compilers; the tidy budget goes to the library code).
mapfile -t SOURCES < <(find src -name '*.cpp' | sort)

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

"$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}" 2>/dev/null |
  grep -E '(warning|error):' |
  # Normalize absolute paths and drop column numbers so the baseline is
  # stable across checkouts and minor edits above a finding.
  sed -E "s#^$(pwd)/##; s#^([^:]+):([0-9]+):[0-9]+:#\1:\2:#" |
  sort -u > "$RAW"

if [ "$UPDATE" -eq 1 ]; then
  cp "$RAW" "$BASELINE"
  echo "tidy.sh: baseline rewritten ($(wc -l < "$BASELINE") findings)."
  exit 0
fi

touch "$BASELINE"
NEW="$(comm -23 "$RAW" <(sort -u "$BASELINE"))"
GONE="$(comm -13 "$RAW" <(sort -u "$BASELINE"))"

if [ -n "$GONE" ]; then
  echo "tidy.sh: $(echo "$GONE" | wc -l) baseline finding(s) no longer fire;"
  echo "tidy.sh: run 'scripts/tidy.sh --update' to shrink the baseline."
fi
if [ -n "$NEW" ]; then
  echo "tidy.sh: NEW findings (not in $BASELINE):" >&2
  echo "$NEW" >&2
  exit 1
fi
echo "tidy.sh: clean ($(wc -l < "$RAW") total findings, all baselined)."
