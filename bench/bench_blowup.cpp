//===- bench/bench_blowup.cpp - Determinization-blowup comparison -----------===//
///
/// \file
/// The paper's motivating contrast (Section 1 / handwritten family 4):
/// `(.*a.{k})&(.*b.{k})` has a tiny nondeterministic description but an
/// exponential deterministic one. This bench sweeps k and reports time and
/// state counts for all four solver configurations, on both the unsat form
/// above and the satisfiable variant `(.*a.{k}.*)&(.*b.{k}.*)`, plus the
/// pure-complement `~(.*a.{k})` that eager pipelines must determinize.
///
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"
#include "Runner.h"

#include <cstdio>
#include <string>

using namespace sbd;

namespace {

void sweep(BenchRunner &Runner, const char *Title,
           const std::vector<std::pair<std::string, uint32_t>> &Instances) {
  std::printf("%s\n", Title);
  std::printf("%4s", "k");
  for (SolverKind Kind : allSolvers())
    std::printf(" | %12s ms/states", solverName(Kind));
  std::printf("\n");
  for (const auto &[Pattern, K] : Instances) {
    std::printf("%4u", K);
    for (SolverKind Kind : allSolvers()) {
      BenchInstance Inst;
      Inst.Family = "blowup";
      Inst.Name = Pattern;
      Inst.Pattern = Pattern;
      RunRecord Rec = Runner.runOne(Kind, Inst);
      char StatusChar = Rec.Status == SolveStatus::Sat     ? 's'
                        : Rec.Status == SolveStatus::Unsat ? 'u'
                        : Rec.Status == SolveStatus::Unsupported ? '-'
                                                                 : '?';
      std::printf(" | %c %9.2f/%-8zu", StatusChar,
                  static_cast<double>(Rec.TimeUs) / 1000.0, Rec.States);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv);
  // This bench wants a somewhat larger budget than the throughput harness.
  if (Args.Opts.TimeoutMs < 1000)
    Args.Opts.TimeoutMs = 1000;
  BenchRunner Runner(Args.Opts);

  std::printf("== Determinization blowup sweep (status s/u/?/-; time ms; "
              "states) ==\n\n");

  std::vector<std::pair<std::string, uint32_t>> Unsat, Sat, Compl;
  for (uint32_t K : {2u, 4u, 6u, 8u, 10u, 12u, 14u}) {
    std::string Ks = std::to_string(K);
    Unsat.push_back({"(.*a.{" + Ks + "})&(.*b.{" + Ks + "})", K});
    Sat.push_back({"(.*a.{" + Ks + "}.*)&(.*b.{" + Ks + "}.*)", K});
    Compl.push_back({"~(.*a.{" + Ks + "})&.*b.{" + Ks + "}", K});
  }
  sweep(Runner, "[unsat] (.*a.{k})&(.*b.{k})", Unsat);
  sweep(Runner, "[sat]   (.*a.{k}.*)&(.*b.{k}.*)", Sat);
  sweep(Runner, "[sat]   ~(.*a.{k})&.*b.{k}", Compl);

  std::printf("expected shape (paper): the derivative solver answers sat\n"
              "instances lazily with small state counts at every k, while\n"
              "the eager DFA pipeline grows exponentially in k and starts\n"
              "hitting the budget; antimirov cannot handle the complement\n"
              "family at all.\n");
  return 0;
}
