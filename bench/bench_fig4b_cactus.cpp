//===- bench/bench_fig4b_cactus.cpp - Reproduces Fig. 4(b) ------------------===//
///
/// \file
/// Cumulative ("cactus") plot data: for each benchmark group and solver,
/// the number of instances solved within a time budget, as the budget grows
/// on a log scale. Fig. 4(b) plots exactly these series; this binary prints
/// them as CSV (group,solver,time_ms,solved) plus a coarse ASCII rendering.
///
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"
#include "Runner.h"

#include <cmath>
#include <cstdio>

using namespace sbd;

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv);
  BenchRunner Runner(Args.Opts);

  struct Group {
    const char *Name;
    std::vector<BenchSuite> Suites;
  };
  std::vector<Group> Groups;
  Groups.push_back({"NB", nonBooleanSuites(Args.Scale, Args.Seed)});
  Groups.push_back({"B", booleanSuites(Args.Scale, Args.Seed)});
  Groups.push_back({"H", handwrittenSuites()});

  std::printf("== Fig. 4(b): cumulative solved-vs-time series ==\n");
  std::printf("csv: group,solver,time_ms,solved\n");

  // Log-spaced sample points from 10us to the timeout.
  std::vector<double> SampleMs;
  double TimeoutMs = static_cast<double>(
      Args.Opts.TimeoutMs > 0 ? Args.Opts.TimeoutMs : 10000);
  for (double T = 0.01; T <= TimeoutMs * 1.0001; T *= 2.0)
    SampleMs.push_back(T);
  SampleMs.push_back(TimeoutMs);

  for (const Group &G : Groups) {
    size_t Total = 0;
    for (const BenchSuite &S : G.Suites)
      Total += S.Instances.size();
    struct Series {
      SolverKind Kind;
      Aggregate Agg;
    };
    std::vector<Series> AllSeries;
    for (SolverKind Kind : allSolvers())
      AllSeries.push_back({Kind, Runner.runSuites(Kind, G.Suites)});

    for (const Series &S : AllSeries)
      for (double T : SampleMs) {
        size_t Solved = 0;
        for (double Ms : S.Agg.SolvedTimesMs) {
          if (Ms > T)
            break;
          ++Solved;
        }
        std::printf("csv: %s,%s,%.3f,%zu\n", G.Name, solverName(S.Kind), T,
                    Solved);
      }

    // Coarse ASCII cactus: one row per solver, column per sample point,
    // showing the solved fraction 0-9.
    std::printf("\n[%s] solved-fraction by time (log scale, %zu instances)\n",
                G.Name, Total);
    std::printf("%-12s ", "time(ms):");
    for (double T : SampleMs)
      std::printf("%c", T < 1 ? '.' : (T < 100 ? '+' : '#'));
    std::printf("   (. <1ms, + <100ms, # >=100ms)\n");
    for (const Series &S : AllSeries) {
      std::printf("%-12s ", solverName(S.Kind));
      for (double T : SampleMs) {
        size_t Solved = 0;
        for (double Ms : S.Agg.SolvedTimesMs) {
          if (Ms > T)
            break;
          ++Solved;
        }
        int Digit = Total == 0
                        ? 0
                        : static_cast<int>(std::floor(
                              9.0 * static_cast<double>(Solved) /
                              static_cast<double>(Total)));
        std::printf("%d", Digit);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
