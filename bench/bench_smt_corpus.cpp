//===- bench/bench_smt_corpus.cpp - Full-stack SMT front-end benchmark -------===//
///
/// \file
/// Measures the complete dZ3-like stack the way an external user drives it:
/// every corpus instance is rendered to an SMT-LIB script and solved
/// through parse → theory compile → implicant enumeration → derivative
/// solver, and the per-group cost is compared against invoking the regex
/// solver directly. The difference is the front-end overhead — which the
/// paper's architecture claims is small because the regex theory does the
/// heavy lifting.
///
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"
#include "Workloads.h"

#include "re/RegexParser.h"
#include "smt/SmtPrinter.h"
#include "smt/SmtSolver.h"
#include "support/Stopwatch.h"

#include <cstdio>

using namespace sbd;

namespace {

struct GroupStats {
  size_t Total = 0;
  size_t Agree = 0;
  size_t Unknown = 0;
  double DirectMs = 0;
  double ViaSmtMs = 0;
};

GroupStats runGroup(const std::vector<BenchSuite> &Suites,
                    const SolveOptions &Opts) {
  GroupStats Stats;
  for (const BenchSuite &Suite : Suites) {
    for (const BenchInstance &Inst : Suite.Instances) {
      ++Stats.Total;
      // Fresh arenas per instance for both paths.
      RegexManager M;
      TrManager T(M);
      DerivativeEngine E(M, T);
      RegexSolver Solver(E);
      RegexParseResult Parsed = parseRegex(M, Inst.Pattern);
      if (!Parsed.Ok)
        continue;

      SolveOptions Dz3 = Opts;
      Dz3.Strategy = SearchStrategy::Dfs;
      Stopwatch DirectWatch;
      SolveResult Direct = Solver.checkSat(Parsed.Value, Dz3);
      Stats.DirectMs += DirectWatch.elapsedSec() * 1000.0;

      std::string Script =
          regexToSmtScript(M, Parsed.Value, Inst.ExpectedSat);
      RegexManager M2;
      TrManager T2(M2);
      DerivativeEngine E2(M2, T2);
      RegexSolver Solver2(E2);
      SmtSolver Smt(Solver2);
      Stopwatch SmtWatch;
      SmtResult Via = Smt.solveScript(Script, Dz3);
      Stats.ViaSmtMs += SmtWatch.elapsedSec() * 1000.0;

      bool DirectKnown = Direct.Status == SolveStatus::Sat ||
                         Direct.Status == SolveStatus::Unsat;
      bool ViaKnown = Via.Status == SolveStatus::Sat ||
                      Via.Status == SolveStatus::Unsat;
      if (!DirectKnown || !ViaKnown)
        ++Stats.Unknown;
      else if (Direct.Status == Via.Status)
        ++Stats.Agree;
    }
  }
  return Stats;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv);

  struct Group {
    const char *Name;
    std::vector<BenchSuite> Suites;
  };
  std::vector<Group> Groups;
  Groups.push_back({"NB", nonBooleanSuites(Args.Scale, Args.Seed)});
  Groups.push_back({"B", booleanSuites(Args.Scale, Args.Seed)});
  Groups.push_back({"H", handwrittenSuites()});

  std::printf("== Full-stack SMT front end vs direct solver ==\n");
  std::printf("scale=%.3f timeout=%lldms\n\n", Args.Scale,
              static_cast<long long>(Args.Opts.TimeoutMs));
  std::printf("%-4s %7s %8s %8s %12s %12s %10s\n", "grp", "total", "agree",
              "unknown", "direct(ms)", "via-smt(ms)", "overhead");
  for (const Group &G : Groups) {
    GroupStats S = runGroup(G.Suites, Args.Opts);
    double Overhead =
        S.DirectMs > 0 ? (S.ViaSmtMs - S.DirectMs) / S.DirectMs * 100.0 : 0;
    std::printf("%-4s %7zu %8zu %8zu %12.1f %12.1f %9.1f%%\n", G.Name,
                S.Total, S.Agree, S.Unknown, S.DirectMs, S.ViaSmtMs,
                Overhead);
  }
  std::printf("\nagree counts instances where the script path and the\n"
              "direct path return the same sat/unsat verdict (they must,\n"
              "modulo budget); overhead is the front end's relative cost.\n");
  return 0;
}
