//===- bench/bench_smt_corpus.cpp - Full-stack SMT front-end benchmark -------===//
///
/// \file
/// Measures the complete dZ3-like stack the way an external user drives it:
/// every corpus instance is rendered to an SMT-LIB script and solved
/// through parse → theory compile → implicant enumeration → derivative
/// solver, and the per-group cost is compared against invoking the regex
/// solver directly. The difference is the front-end overhead — which the
/// paper's architecture claims is small because the regex theory does the
/// heavy lifting.
///
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"
#include "Workloads.h"

#include "re/RegexParser.h"
#include "re/SmtPrinter.h"
#include "smt/SmtSolver.h"
#include "portfolio/BatchSolver.h"
#include "support/Stopwatch.h"

#include <cstdio>

using namespace sbd;

namespace {

struct GroupStats {
  size_t Total = 0;
  size_t Agree = 0;
  size_t Unknown = 0;
  double DirectMs = 0;
  double ViaSmtMs = 0;
  CacheStats Cache;
  SolveStats Work; ///< summed per-query stats of the direct path
};

GroupStats runGroup(const std::vector<BenchSuite> &Suites,
                    const SolveOptions &Opts, unsigned Threads) {
  GroupStats Stats;
  SolveOptions Dz3 = Opts;
  Dz3.Strategy = SearchStrategy::Dfs;

  // Direct path: every instance is an independent query, fanned out over
  // the batch front end (one thread-local arena stack per worker; with
  // --threads 1 this runs inline and matches the sequential path).
  std::vector<const BenchInstance *> Instances;
  std::vector<BatchQuery> Queries;
  for (const BenchSuite &Suite : Suites) {
    for (const BenchInstance &Inst : Suite.Instances) {
      Instances.push_back(&Inst);
      Queries.push_back({Inst.Pattern, Dz3});
    }
  }
  Stats.Total = Instances.size();

  BatchOptions BatchOpts;
  BatchOpts.NumThreads = Threads;
  // Keep arenas (and the persistent derivative graph) warm across the
  // group's queries: repeated vertices replay their recorded dense
  // successor rows (dense_row_hits) instead of re-expanding δdnf.
  BatchOpts.ReuseArenas = true;
  BatchSolver Batch(BatchOpts);
  std::vector<BatchResult> Direct = Batch.solveAll(Queries);
  Stats.Cache += Batch.stats();
  for (const BatchResult &R : Direct) {
    Stats.Work += R.Result.Stats;
    if (R.ParseOk)
      Stats.DirectMs += static_cast<double>(R.Result.TimeUs) / 1000.0;
  }

  // Via-SMT path: render each instance to an SMT-LIB script and solve it
  // through the full parse → compile → enumerate front end (sequential;
  // the comparison is front-end overhead, not parallel speedup).
  for (size_t I = 0; I != Instances.size(); ++I) {
    if (!Direct[I].ParseOk)
      continue;
    const BenchInstance &Inst = *Instances[I];
    RegexManager M;
    RegexParseResult Parsed = parseRegex(M, Inst.Pattern);
    if (!Parsed.Ok)
      continue;
    std::string Script = regexToSmtScript(M, Parsed.Value, Inst.ExpectedSat);
    RegexManager M2;
    TrManager T2(M2);
    DerivativeEngine E2(M2, T2);
    RegexSolver Solver2(E2);
    SmtSolver Smt(Solver2);
    Stopwatch SmtWatch;
    SmtResult Via = Smt.solveScript(Script, Dz3);
    Stats.ViaSmtMs += SmtWatch.elapsedSec() * 1000.0;

    SolveStatus DirectStatus = Direct[I].Result.Status;
    bool DirectKnown = DirectStatus == SolveStatus::Sat ||
                       DirectStatus == SolveStatus::Unsat;
    bool ViaKnown = Via.Status == SolveStatus::Sat ||
                    Via.Status == SolveStatus::Unsat;
    if (!DirectKnown || !ViaKnown)
      ++Stats.Unknown;
    else if (DirectStatus == Via.Status)
      ++Stats.Agree;
  }
  return Stats;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv);

  struct Group {
    const char *Name;
    std::vector<BenchSuite> Suites;
  };
  std::vector<Group> Groups;
  Groups.push_back({"NB", nonBooleanSuites(Args.Scale, Args.Seed)});
  Groups.push_back({"B", booleanSuites(Args.Scale, Args.Seed)});
  Groups.push_back({"H", handwrittenSuites()});

  Args.beginObservation();
  std::printf("== Full-stack SMT front end vs direct solver ==\n");
  std::printf("scale=%.3f timeout=%lldms threads=%u\n\n", Args.Scale,
              static_cast<long long>(Args.Opts.TimeoutMs), Args.Threads);
  std::printf("%-4s %7s %8s %8s %12s %12s %10s\n", "grp", "total", "agree",
              "unknown", "direct(ms)", "via-smt(ms)", "overhead");
  SolveStats Agg;
  std::vector<GroupStats> Results;
  for (const Group &G : Groups) {
    GroupStats S = runGroup(G.Suites, Args.Opts, Args.Threads);
    Agg += S.Work;
    Results.push_back(S);
    double Overhead =
        S.DirectMs > 0 ? (S.ViaSmtMs - S.DirectMs) / S.DirectMs * 100.0 : 0;
    std::printf("%-4s %7zu %8zu %8zu %12.1f %12.1f %9.1f%%\n", G.Name,
                S.Total, S.Agree, S.Unknown, S.DirectMs, S.ViaSmtMs,
                Overhead);
    std::printf("     cache: %s\n", S.Cache.summary().c_str());
  }
  std::printf("\n");
  printPhaseTable(Agg);
  std::printf("\nagree counts instances where the script path and the\n"
              "direct path return the same sat/unsat verdict (they must,\n"
              "modulo budget); overhead is the front end's relative cost.\n");

  bool Ok = Args.endObservation(Agg);
  if (!Args.JsonFile.empty()) {
    std::string Doc = "{\n  \"groups\": [";
    for (size_t I = 0; I != Groups.size(); ++I) {
      const GroupStats &S = Results[I];
      char Buf[256];
      std::snprintf(Buf, sizeof(Buf),
                    "%s\n    {\"name\": \"%s\", \"total\": %zu, "
                    "\"agree\": %zu, \"unknown\": %zu, "
                    "\"direct_ms\": %.3f, \"via_smt_ms\": %.3f}",
                    I ? "," : "", Groups[I].Name, S.Total, S.Agree,
                    S.Unknown, S.DirectMs, S.ViaSmtMs);
      Doc += Buf;
    }
    Doc += "\n  ],\n  \"counters\": ";
    Doc += obs::MetricsRegistry::global().snapshot().json();
    Doc += ",\n  \"histograms\": ";
    Doc += obs::HistogramRegistry::global().snapshot().json();
    Doc += ",\n  \"aggregate\": ";
    Doc += Agg.json();
    Doc += "\n}\n";
    std::FILE *F = std::fopen(Args.JsonFile.c_str(), "w");
    if (F) {
      std::fwrite(Doc.data(), 1, Doc.size(), F);
      std::fclose(F);
      std::printf("json: wrote %s\n", Args.JsonFile.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n",
                   Args.JsonFile.c_str());
      Ok = false;
    }
  }
  return Ok ? 0 : 1;
}
