//===- bench/bench_smt_corpus.cpp - Full-stack SMT front-end benchmark -------===//
///
/// \file
/// Measures the complete dZ3-like stack the way an external user drives it:
/// every corpus instance is rendered to an SMT-LIB script and solved
/// through parse → theory compile → implicant enumeration → derivative
/// solver, and the per-group cost is compared against invoking the regex
/// solver directly. The difference is the front-end overhead — which the
/// paper's architecture claims is small because the regex theory does the
/// heavy lifting.
///
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"
#include "Workloads.h"

#include "cache/VerdictCache.h"
#include "re/RegexParser.h"
#include "re/SmtPrinter.h"
#include "smt/SmtSolver.h"
#include "portfolio/BatchSolver.h"
#include "support/Stopwatch.h"

#include <algorithm>
#include <cstdio>

using namespace sbd;

namespace {

struct GroupStats {
  size_t Total = 0;
  size_t Agree = 0;
  size_t Unknown = 0;
  double DirectMs = 0;
  double ViaSmtMs = 0;
  CacheStats Cache;
  SolveStats Work; ///< summed per-query stats of the direct path
};

GroupStats runGroup(const std::vector<BenchSuite> &Suites,
                    const SolveOptions &Opts, unsigned Threads) {
  GroupStats Stats;
  SolveOptions Dz3 = Opts;
  Dz3.Strategy = SearchStrategy::Dfs;

  // Direct path: every instance is an independent query, fanned out over
  // the batch front end (one thread-local arena stack per worker; with
  // --threads 1 this runs inline and matches the sequential path).
  std::vector<const BenchInstance *> Instances;
  std::vector<BatchQuery> Queries;
  for (const BenchSuite &Suite : Suites) {
    for (const BenchInstance &Inst : Suite.Instances) {
      Instances.push_back(&Inst);
      Queries.push_back({Inst.Pattern, Dz3});
    }
  }
  Stats.Total = Instances.size();

  BatchOptions BatchOpts;
  BatchOpts.NumThreads = Threads;
  // Keep arenas (and the persistent derivative graph) warm across the
  // group's queries: repeated vertices replay their recorded dense
  // successor rows (dense_row_hits) instead of re-expanding δdnf.
  BatchOpts.ReuseArenas = true;
  BatchSolver Batch(BatchOpts);
  std::vector<BatchResult> Direct = Batch.solveAll(Queries);
  Stats.Cache += Batch.stats();
  for (const BatchResult &R : Direct) {
    Stats.Work += R.Result.Stats;
    if (R.ParseOk)
      Stats.DirectMs += static_cast<double>(R.Result.TimeUs) / 1000.0;
  }

  // Via-SMT path: render each instance to an SMT-LIB script and solve it
  // through the full parse → compile → enumerate front end (sequential;
  // the comparison is front-end overhead, not parallel speedup).
  for (size_t I = 0; I != Instances.size(); ++I) {
    if (!Direct[I].ParseOk)
      continue;
    const BenchInstance &Inst = *Instances[I];
    RegexManager M;
    RegexParseResult Parsed = parseRegex(M, Inst.Pattern);
    if (!Parsed.Ok)
      continue;
    std::string Script = regexToSmtScript(M, Parsed.Value, Inst.ExpectedSat);
    RegexManager M2;
    TrManager T2(M2);
    DerivativeEngine E2(M2, T2);
    RegexSolver Solver2(E2);
    SmtSolver Smt(Solver2);
    Stopwatch SmtWatch;
    SmtResult Via = Smt.solveScript(Script, Dz3);
    Stats.ViaSmtMs += SmtWatch.elapsedSec() * 1000.0;

    SolveStatus DirectStatus = Direct[I].Result.Status;
    bool DirectKnown = DirectStatus == SolveStatus::Sat ||
                       DirectStatus == SolveStatus::Unsat;
    bool ViaKnown = Via.Status == SolveStatus::Sat ||
                    Via.Status == SolveStatus::Unsat;
    if (!DirectKnown || !ViaKnown)
      ++Stats.Unknown;
    else if (DirectStatus == Via.Status)
      ++Stats.Agree;
  }
  return Stats;
}

/// Resident-session measurement (DESIGN.md §15): the whole corpus is
/// replayed twice through ONE persistent SmtSession with a verdict cache
/// attached, instances separated by (reset) — exactly the way the
/// sbd-server front end is driven. Pass 1 is cold (every check solves),
/// pass 2 is warm (every check should be a cache hit), so the cold/warm
/// latency split is the cache's measured payoff.
struct SessionStats {
  size_t Instances = 0;
  size_t Mismatches = 0; ///< warm verdict differed from cold (must be 0)
  double ColdMs = 0, WarmMs = 0;
  std::vector<int64_t> ColdUs, WarmUs; ///< per-instance check latencies
  cache::VerdictCacheCounters Cache;
};

int64_t percentileUs(std::vector<int64_t> V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t Idx = static_cast<size_t>(P * static_cast<double>(V.size() - 1));
  return V[Idx];
}

SessionStats runSessionPasses(const std::vector<std::string> &Scripts,
                              const SolveOptions &Opts) {
  SessionStats Stats;
  Stats.Instances = Scripts.size();

  cache::VerdictCache Cache;
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  RegexSolver Solver(E);
  SmtSession Session(Solver, Opts);
  Session.setVerdictCache(&Cache);

  std::vector<SolveStatus> ColdStatus(Scripts.size(), SolveStatus::Unknown);
  for (int Pass = 0; Pass != 2; ++Pass) {
    for (size_t I = 0; I != Scripts.size(); ++I) {
      Stopwatch W;
      Session.executeAll(Scripts[I]);
      int64_t Us = W.elapsedUs();
      SolveStatus Got = Session.lastResult().Status;
      Session.executeAll("(reset)"); // arena and cache stay warm
      if (Pass == 0) {
        Stats.ColdMs += static_cast<double>(Us) / 1000.0;
        Stats.ColdUs.push_back(Us);
        ColdStatus[I] = Got;
      } else {
        Stats.WarmMs += static_cast<double>(Us) / 1000.0;
        Stats.WarmUs.push_back(Us);
        if (Got != ColdStatus[I])
          ++Stats.Mismatches;
      }
    }
  }
  Stats.Cache = Cache.counters();
  return Stats;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv);

  struct Group {
    const char *Name;
    std::vector<BenchSuite> Suites;
  };
  std::vector<Group> Groups;
  Groups.push_back({"NB", nonBooleanSuites(Args.Scale, Args.Seed)});
  Groups.push_back({"B", booleanSuites(Args.Scale, Args.Seed)});
  Groups.push_back({"H", handwrittenSuites()});

  Args.beginObservation();
  std::printf("== Full-stack SMT front end vs direct solver ==\n");
  std::printf("scale=%.3f timeout=%lldms threads=%u\n\n", Args.Scale,
              static_cast<long long>(Args.Opts.TimeoutMs), Args.Threads);
  std::printf("%-4s %7s %8s %8s %12s %12s %10s\n", "grp", "total", "agree",
              "unknown", "direct(ms)", "via-smt(ms)", "overhead");
  SolveStats Agg;
  std::vector<GroupStats> Results;
  for (const Group &G : Groups) {
    GroupStats S = runGroup(G.Suites, Args.Opts, Args.Threads);
    Agg += S.Work;
    Results.push_back(S);
    double Overhead =
        S.DirectMs > 0 ? (S.ViaSmtMs - S.DirectMs) / S.DirectMs * 100.0 : 0;
    std::printf("%-4s %7zu %8zu %8zu %12.1f %12.1f %9.1f%%\n", G.Name,
                S.Total, S.Agree, S.Unknown, S.DirectMs, S.ViaSmtMs,
                Overhead);
    std::printf("     cache: %s\n", S.Cache.summary().c_str());
  }
  std::printf("\n");
  printPhaseTable(Agg);

  // Session cold/warm replay over the whole corpus.
  std::vector<std::string> Scripts;
  {
    RegexManager M;
    for (const Group &G : Groups)
      for (const BenchSuite &Suite : G.Suites)
        for (const BenchInstance &Inst : Suite.Instances) {
          RegexParseResult Parsed = parseRegex(M, Inst.Pattern);
          if (Parsed.Ok)
            Scripts.push_back(
                regexToSmtScript(M, Parsed.Value, Inst.ExpectedSat));
        }
  }
  SolveOptions SessionOpts = Args.Opts;
  SessionOpts.Strategy = SearchStrategy::Dfs;
  SessionStats Sess = runSessionPasses(Scripts, SessionOpts);
  std::printf("\n== Resident session: corpus replayed twice, one arena ==\n");
  std::printf("instances=%zu cold=%.1fms warm=%.1fms speedup=%.1fx "
              "mismatches=%zu\n",
              Sess.Instances, Sess.ColdMs, Sess.WarmMs,
              Sess.WarmMs > 0 ? Sess.ColdMs / Sess.WarmMs : 0.0,
              Sess.Mismatches);
  std::printf("cold p50/p90/p99 = %lld/%lld/%lld us, "
              "warm p50/p90/p99 = %lld/%lld/%lld us\n",
              static_cast<long long>(percentileUs(Sess.ColdUs, 0.50)),
              static_cast<long long>(percentileUs(Sess.ColdUs, 0.90)),
              static_cast<long long>(percentileUs(Sess.ColdUs, 0.99)),
              static_cast<long long>(percentileUs(Sess.WarmUs, 0.50)),
              static_cast<long long>(percentileUs(Sess.WarmUs, 0.90)),
              static_cast<long long>(percentileUs(Sess.WarmUs, 0.99)));
  std::printf("verdict cache: hits=%llu misses=%llu inserts=%llu "
              "evictions=%llu size=%zu hit-rate=%.1f%%\n",
              static_cast<unsigned long long>(Sess.Cache.Hits),
              static_cast<unsigned long long>(Sess.Cache.Misses),
              static_cast<unsigned long long>(Sess.Cache.Inserts),
              static_cast<unsigned long long>(Sess.Cache.Evictions),
              Sess.Cache.Size, Sess.Cache.hitRate() * 100.0);

  std::printf("\nagree counts instances where the script path and the\n"
              "direct path return the same sat/unsat verdict (they must,\n"
              "modulo budget); overhead is the front end's relative cost.\n");

  bool Ok = Args.endObservation(Agg);
  if (!Args.JsonFile.empty()) {
    std::string Doc = "{\n  \"groups\": [";
    for (size_t I = 0; I != Groups.size(); ++I) {
      const GroupStats &S = Results[I];
      char Buf[256];
      std::snprintf(Buf, sizeof(Buf),
                    "%s\n    {\"name\": \"%s\", \"total\": %zu, "
                    "\"agree\": %zu, \"unknown\": %zu, "
                    "\"direct_ms\": %.3f, \"via_smt_ms\": %.3f}",
                    I ? "," : "", Groups[I].Name, S.Total, S.Agree,
                    S.Unknown, S.DirectMs, S.ViaSmtMs);
      Doc += Buf;
    }
    Doc += "\n  ],\n  \"session\": ";
    {
      char Buf[512];
      std::snprintf(
          Buf, sizeof(Buf),
          "{\"instances\": %zu, \"mismatches\": %zu, "
          "\"cold_ms\": %.3f, \"warm_ms\": %.3f, "
          "\"cold_p50_us\": %lld, \"cold_p90_us\": %lld, "
          "\"cold_p99_us\": %lld, \"warm_p50_us\": %lld, "
          "\"warm_p90_us\": %lld, \"warm_p99_us\": %lld, "
          "\"cache_hits\": %llu, \"cache_misses\": %llu, "
          "\"cache_inserts\": %llu}",
          Sess.Instances, Sess.Mismatches, Sess.ColdMs, Sess.WarmMs,
          static_cast<long long>(percentileUs(Sess.ColdUs, 0.50)),
          static_cast<long long>(percentileUs(Sess.ColdUs, 0.90)),
          static_cast<long long>(percentileUs(Sess.ColdUs, 0.99)),
          static_cast<long long>(percentileUs(Sess.WarmUs, 0.50)),
          static_cast<long long>(percentileUs(Sess.WarmUs, 0.90)),
          static_cast<long long>(percentileUs(Sess.WarmUs, 0.99)),
          static_cast<unsigned long long>(Sess.Cache.Hits),
          static_cast<unsigned long long>(Sess.Cache.Misses),
          static_cast<unsigned long long>(Sess.Cache.Inserts));
      Doc += Buf;
    }
    Doc += ",\n  \"counters\": ";
    Doc += obs::MetricsRegistry::global().snapshot().json();
    Doc += ",\n  \"histograms\": ";
    Doc += obs::HistogramRegistry::global().snapshot().json();
    Doc += ",\n  \"aggregate\": ";
    Doc += Agg.json();
    Doc += "\n}\n";
    std::FILE *F = std::fopen(Args.JsonFile.c_str(), "w");
    if (F) {
      std::fwrite(Doc.data(), 1, Doc.size(), F);
      std::fclose(F);
      std::printf("json: wrote %s\n", Args.JsonFile.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n",
                   Args.JsonFile.c_str());
      Ok = false;
    }
  }
  return Ok ? 0 : 1;
}
