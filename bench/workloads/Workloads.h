//===- workloads/Workloads.h - Benchmark instance generators ----------------===//
///
/// \file
/// Generators for the benchmark families of the paper's evaluation
/// (Section 6, Fig. 4c). The original corpora (Kaluza, Slog, Norn, SyGuS,
/// RegExLib) are external artifacts; these generators reproduce their
/// *structural shape* — which constraint forms appear, how Boolean
/// combinations arise — deterministically from a seed (see DESIGN.md §3 for
/// the substitution argument). The handwritten families (Date, Password,
/// Boolean+Loops, Determinization Blowup) are implemented directly from the
/// paper's descriptions with the paper's instance counts (20/34/21/14).
///
/// Every instance is a single extended-regex satisfiability question in the
/// library's surface syntax; Boolean combinations of memberships have
/// already been folded into `&`/`~`/`|` exactly as the solver under test
/// would do (Section 2 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef SBD_WORKLOADS_WORKLOADS_H
#define SBD_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sbd {

/// One satisfiability benchmark instance.
struct BenchInstance {
  std::string Family;  ///< e.g. "Kaluza-like"
  std::string Name;    ///< unique within the family
  std::string Pattern; ///< extended regex (library surface syntax)
  std::optional<bool> ExpectedSat; ///< label when known by construction
  bool IsBoolean = false;      ///< combines ≥2 memberships on one string
  bool UsesComplement = false; ///< mentions explicit ~
};

/// A named collection of instances.
struct BenchSuite {
  std::string Name;
  std::vector<BenchInstance> Instances;
};

/// --- Existing-benchmark-shaped generators (scaled paper counts) -----------

/// Kaluza-like: easy, near-word-equation memberships (literals, prefixes,
/// suffixes, containment), occasionally against a conflicting length
/// window. Paper count: 5452.
BenchSuite makeKaluzaLike(size_t Count, uint64_t Seed);

/// Slog-like: single memberships in realistic character-class patterns
/// (emails, phone numbers, identifiers). Paper count: 1976.
BenchSuite makeSlogLike(size_t Count, uint64_t Seed);

/// Norn-like: star/union-heavy regexes with length side constraints (some
/// contradictory modulo arithmetic on lengths). Paper count: 813.
BenchSuite makeNornLike(size_t Count, uint64_t Seed);

/// Norn's Boolean slice: two or three memberships in star-heavy regexes on
/// the same string (the paper classifies these under B). Paper count: 147.
BenchSuite makeNornBooleanLike(size_t Count, uint64_t Seed);

/// SyGuS-qgen-like: two or three memberships on the same string (classified
/// Boolean by the paper's criterion). Paper count: 343.
BenchSuite makeSyGuSLike(size_t Count, uint64_t Seed);

/// RegExLib intersection questions: is L(A) ∩ L(B) nonempty for realistic
/// library patterns? Paper count: 55.
BenchSuite makeRegExLibIntersection(size_t Count, uint64_t Seed);

/// RegExLib subset questions: L(A) ⊆ L(B), encoded as emptiness of A & ~B.
/// Paper count: 100.
BenchSuite makeRegExLibSubset(size_t Count, uint64_t Seed);

/// --- Handwritten families (fixed, with labels; paper counts) --------------

/// Date-policy constraints in the style of Fig. 1 (20 instances).
BenchSuite makeDateFamily();

/// Password-rule intersections in the style of Section 2 (34 instances).
BenchSuite makePasswordFamily();

/// Boolean operations interacting with concatenation/iteration, designed to
/// produce nontrivial unsat instances (21 instances).
BenchSuite makeBooleanLoopsFamily();

/// Small-NFA / exponential-DFA families, e.g. (.*a.{k})&(.*b.{k})
/// (14 instances).
BenchSuite makeDeterminizationBlowupFamily();

/// --- Fig. 4 groupings -------------------------------------------------------

/// Scales a paper count: ceil(PaperCount * Scale), at least 1.
size_t scaledCount(size_t PaperCount, double Scale);

/// The Non-Boolean group (Kaluza/Slog/Norn-like) at the given scale.
std::vector<BenchSuite> nonBooleanSuites(double Scale, uint64_t Seed);

/// The Boolean group (Norn-Boolean/SyGuS/RegExLib-like) at the given scale.
std::vector<BenchSuite> booleanSuites(double Scale, uint64_t Seed);

/// The handwritten group (always full size; 89 instances total).
std::vector<BenchSuite> handwrittenSuites();

} // namespace sbd

#endif // SBD_WORKLOADS_WORKLOADS_H
