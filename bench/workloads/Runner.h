//===- workloads/Runner.h - Cross-solver benchmark harness ------------------===//
///
/// \file
/// Runs benchmark instances against the four solver configurations the
/// evaluation compares (see DESIGN.md §2 for the mapping to the paper's
/// solver roster), with per-instance timeout/state budgets, and aggregates
/// the statistics reported in Fig. 4: percent solved, average and median
/// time, with unsolved/incorrect runs charged the full timeout exactly as
/// the paper does ("errors, wrong answers, and crashes are treated as
/// timeouts").
///
//===----------------------------------------------------------------------===//

#ifndef SBD_WORKLOADS_RUNNER_H
#define SBD_WORKLOADS_RUNNER_H

#include "Workloads.h"

#include "solver/SolverResult.h"

#include <map>
#include <string>
#include <vector>

namespace sbd {

/// The solver configurations under comparison.
enum class SolverKind : uint8_t {
  SymbolicDerivative, ///< this library (the paper's dZ3)
  EagerAutomata,      ///< eager DFA pipeline (classic Z3-style)
  EagerMinimize,      ///< eager pipeline + minimization after each step
                      ///< (the "after the fact" mitigation of Section 1)
  BrzozowskiMinterm,  ///< global alphabet finitization (Ostrich-style cost)
  Antimirov,          ///< positive partial derivatives (CVC4-style)
};

/// Short display name, matching the roster in DESIGN.md.
const char *solverName(SolverKind Kind);

/// All four configurations, in display order.
std::vector<SolverKind> allSolvers();

/// Result of running one instance on one solver.
struct RunRecord {
  SolveStatus Status = SolveStatus::Unknown;
  int64_t TimeUs = 0;
  size_t States = 0;
  /// Status is sat/unsat and matches the instance label (label from the
  /// instance itself or, if unlabeled, from the reference solver).
  bool Solved = false;
};

/// Per-(suite, solver) aggregate in the shape of Fig. 4(a).
struct Aggregate {
  size_t Total = 0;
  size_t Solved = 0;
  size_t Wrong = 0;
  size_t Unsupported = 0;
  double AvgTimeMs = 0;    ///< unsolved charged the full timeout
  double MedianTimeMs = 0; ///< ditto
  std::vector<double> SolvedTimesMs; ///< for cactus plots (sorted)
};

/// Harness: owns the per-run budgets and the reference-labeling policy.
class BenchRunner {
public:
  explicit BenchRunner(const SolveOptions &Opts) : Opts(Opts) {}

  /// Runs one instance on one solver (fresh arenas per call, so no caching
  /// leaks between instances or solvers).
  RunRecord runOne(SolverKind Kind, const BenchInstance &Inst);

  /// Labels an instance: its own label if present, otherwise the reference
  /// (symbolic-derivative) solver's verdict with a generous budget;
  /// nullopt if even the reference cannot decide it.
  std::optional<bool> referenceLabel(const BenchInstance &Inst);

  /// Runs a whole suite group on one solver, aggregating per Fig. 4(a).
  Aggregate runSuites(SolverKind Kind,
                      const std::vector<BenchSuite> &Suites);

  const SolveOptions &options() const { return Opts; }

private:
  SolveOptions Opts;
  std::map<std::string, std::optional<bool>> LabelCache;
};

} // namespace sbd

#endif // SBD_WORKLOADS_RUNNER_H
