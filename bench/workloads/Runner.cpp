//===- workloads/Runner.cpp - Cross-solver benchmark harness -----------------===//

#include "Runner.h"

#include "automata/EagerSolver.h"
#include "baselines/AntimirovSolver.h"
#include "baselines/BrzozowskiMintermSolver.h"
#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Debug.h"

#include <algorithm>

using namespace sbd;

const char *sbd::solverName(SolverKind Kind) {
  switch (Kind) {
  case SolverKind::SymbolicDerivative:
    return "sbd(dZ3)";
  case SolverKind::EagerAutomata:
    return "eager-dfa";
  case SolverKind::EagerMinimize:
    return "eager-min";
  case SolverKind::BrzozowskiMinterm:
    return "brz-minterm";
  case SolverKind::Antimirov:
    return "antimirov";
  }
  return "?";
}

std::vector<SolverKind> sbd::allSolvers() {
  return {SolverKind::SymbolicDerivative, SolverKind::EagerAutomata,
          SolverKind::EagerMinimize, SolverKind::BrzozowskiMinterm,
          SolverKind::Antimirov};
}

RunRecord sbd::BenchRunner::runOne(SolverKind Kind,
                                   const BenchInstance &Inst) {
  // Fresh arenas per run: no derivative caches or dead-state knowledge
  // leaks across instances or solvers.
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);

  RunRecord Rec;
  RegexParseResult Parsed = parseRegex(M, Inst.Pattern);
  if (!Parsed.Ok) {
    Rec.Status = SolveStatus::Unsupported;
    return Rec;
  }
  Re R = Parsed.Value;

  SolveResult Res;
  switch (Kind) {
  case SolverKind::SymbolicDerivative: {
    RegexSolver S(E);
    // Depth-first matches the backtracking search of the SMT integration.
    SolveOptions Dz3Opts = Opts;
    Dz3Opts.Strategy = SearchStrategy::Dfs;
    Res = S.checkSat(R, Dz3Opts);
    break;
  }
  case SolverKind::EagerAutomata: {
    EagerSolver S(M);
    Res = S.solve(R, Opts);
    break;
  }
  case SolverKind::EagerMinimize: {
    EagerSolver S(M, EagerSolver::Policy::DeterminizeMinimize);
    Res = S.solve(R, Opts);
    break;
  }
  case SolverKind::BrzozowskiMinterm: {
    BrzozowskiMintermSolver S(E);
    Res = S.solve(R, Opts);
    break;
  }
  case SolverKind::Antimirov: {
    AntimirovSolver S(M);
    Res = S.solve(R, Opts);
    break;
  }
  }
  Rec.Status = Res.Status;
  Rec.TimeUs = Res.TimeUs;
  Rec.States = Res.StatesExplored;
  return Rec;
}

std::optional<bool> sbd::BenchRunner::referenceLabel(
    const BenchInstance &Inst) {
  if (Inst.ExpectedSat.has_value())
    return Inst.ExpectedSat;
  auto Cached = LabelCache.find(Inst.Name);
  if (Cached != LabelCache.end())
    return Cached->second;
  // Reference pass with a 10x budget, like the paper's use of a trained
  // baseline solver to label unlabeled benchmarks.
  SolveOptions RefOpts = Opts;
  if (RefOpts.TimeoutMs > 0)
    RefOpts.TimeoutMs *= 10;
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  RegexParseResult Parsed = parseRegex(M, Inst.Pattern);
  if (!Parsed.Ok)
    return std::nullopt;
  RegexSolver S(E);
  SolveResult Res = S.checkSat(Parsed.Value, RefOpts);
  std::optional<bool> Label;
  if (Res.Status == SolveStatus::Sat)
    Label = true;
  else if (Res.Status == SolveStatus::Unsat)
    Label = false;
  LabelCache.emplace(Inst.Name, Label);
  return Label;
}

Aggregate sbd::BenchRunner::runSuites(SolverKind Kind,
                                      const std::vector<BenchSuite> &Suites) {
  Aggregate Agg;
  std::vector<double> AllTimesMs;
  double TimeoutMs = Opts.TimeoutMs > 0
                         ? static_cast<double>(Opts.TimeoutMs)
                         : 10000.0;
  for (const BenchSuite &Suite : Suites) {
    for (const BenchInstance &Inst : Suite.Instances) {
      ++Agg.Total;
      RunRecord Rec = runOne(Kind, Inst);
      std::optional<bool> Label = referenceLabel(Inst);
      bool Answered = Rec.Status == SolveStatus::Sat ||
                      Rec.Status == SolveStatus::Unsat;
      bool Correct =
          Answered &&
          (!Label.has_value() || *Label == (Rec.Status == SolveStatus::Sat));
      if (Answered && !Correct)
        ++Agg.Wrong;
      if (Rec.Status == SolveStatus::Unsupported)
        ++Agg.Unsupported;
      if (Correct) {
        ++Agg.Solved;
        double Ms = static_cast<double>(Rec.TimeUs) / 1000.0;
        Agg.SolvedTimesMs.push_back(Ms);
        AllTimesMs.push_back(Ms);
      } else {
        // Errors, wrong answers and budget exhaustion are charged the full
        // timeout, as in the paper's methodology.
        AllTimesMs.push_back(TimeoutMs);
      }
    }
  }
  if (!AllTimesMs.empty()) {
    double Sum = 0;
    for (double Ms : AllTimesMs)
      Sum += Ms;
    Agg.AvgTimeMs = Sum / static_cast<double>(AllTimesMs.size());
    std::sort(AllTimesMs.begin(), AllTimesMs.end());
    Agg.MedianTimeMs = AllTimesMs[AllTimesMs.size() / 2];
  }
  std::sort(Agg.SolvedTimesMs.begin(), Agg.SolvedTimesMs.end());
  return Agg;
}
