//===- workloads/Workloads.cpp - Benchmark instance generators ---------------===//

#include "Workloads.h"

#include "support/Rng.h"

#include <cmath>

using namespace sbd;

namespace {

/// Random lowercase/digit literal of length [MinLen, MaxLen].
std::string randomLiteral(Rng &R, size_t MinLen, size_t MaxLen) {
  static const char Pool[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  size_t Len = R.range(MinLen, MaxLen);
  std::string Out;
  for (size_t I = 0; I != Len; ++I)
    Out.push_back(Pool[R.below(sizeof(Pool) - 1)]);
  return Out;
}

BenchInstance make(const std::string &Family, size_t Idx,
                   std::string Pattern, std::optional<bool> Sat,
                   bool IsBoolean, bool UsesComplement) {
  BenchInstance B;
  B.Family = Family;
  B.Name = Family + "-" + std::to_string(Idx);
  B.Pattern = std::move(Pattern);
  B.ExpectedSat = Sat;
  B.IsBoolean = IsBoolean;
  B.UsesComplement = UsesComplement;
  return B;
}

} // namespace

size_t sbd::scaledCount(size_t PaperCount, double Scale) {
  double Scaled = std::ceil(static_cast<double>(PaperCount) * Scale);
  return Scaled < 1.0 ? 1 : static_cast<size_t>(Scaled);
}

BenchSuite sbd::makeKaluzaLike(size_t Count, uint64_t Seed) {
  BenchSuite S;
  S.Name = "Kaluza-like";
  Rng R(Seed);
  for (size_t I = 0; I != Count; ++I) {
    std::string Lit = randomLiteral(R, 1, 8);
    std::string Pattern;
    std::optional<bool> Sat = true;
    switch (R.below(6)) {
    case 0: // s = "lit"
      Pattern = Lit;
      break;
    case 1: // prefix
      Pattern = Lit + ".*";
      break;
    case 2: // suffix
      Pattern = ".*" + Lit;
      break;
    case 3: // contains
      Pattern = ".*" + Lit + ".*";
      break;
    case 4: { // prefix + satisfiable length bound
      size_t Window = Lit.size() + R.below(6);
      Pattern = Lit + ".*&.{0," + std::to_string(Window) + "}";
      break;
    }
    default: { // prefix + contradictory length bound
      if (Lit.size() < 2) {
        Pattern = Lit + ".*";
        break;
      }
      size_t Window = R.below(Lit.size() - 1);
      Pattern = Lit + ".*&.{0," + std::to_string(Window) + "}";
      Sat = false;
      break;
    }
    }
    S.Instances.push_back(make(S.Name, I, Pattern, Sat, false, false));
  }
  return S;
}

BenchSuite sbd::makeSlogLike(size_t Count, uint64_t Seed) {
  BenchSuite S;
  S.Name = "Slog-like";
  Rng R(Seed);
  // (template, minimum accepted length) pairs.
  struct Tpl {
    const char *Pattern;
    size_t MinLen;
  };
  static const Tpl Templates[] = {
      {"\\w+@\\w+\\.\\w{2,3}", 6},
      {"\\d{3}-\\d{3}-\\d{4}", 12},
      {"[A-Z]{2}\\d{4,6}", 6},
      {"[0-9a-f]{8}", 8},
      {"(\\d{1,3}\\.){3}\\d{1,3}", 7},
      {"[A-Z][a-z]{1,10}( [A-Z][a-z]{1,10}){0,3}", 2},
      {"#[0-9a-fA-F]{6}", 7},
      {"[a-z]+(-[a-z]+)*", 1},
      {"\\$\\d{1,3}(,\\d{3})*", 2},
      {"\\d{4}-\\d{2}-\\d{2}", 10},
  };
  for (size_t I = 0; I != Count; ++I) {
    const Tpl &T = Templates[R.below(std::size(Templates))];
    std::string Pattern = T.Pattern;
    std::optional<bool> Sat = true;
    switch (R.below(4)) {
    case 0: // plain membership
      break;
    case 1: // generous window
      Pattern += "&.{0," + std::to_string(T.MinLen + 10) + "}";
      break;
    case 2: // window below the minimum: unsat
      if (T.MinLen == 0)
        break;
      Pattern += "&.{0," + std::to_string(T.MinLen - 1) + "}";
      Sat = false;
      break;
    default: // exact minimum: sat
      Pattern += "&.{" + std::to_string(T.MinLen) + ",}";
      break;
    }
    S.Instances.push_back(make(S.Name, I, Pattern, Sat, false, false));
  }
  return S;
}

BenchSuite sbd::makeNornLike(size_t Count, uint64_t Seed) {
  BenchSuite S;
  S.Name = "Norn-like";
  Rng R(Seed);
  for (size_t I = 0; I != Count; ++I) {
    uint64_t K = R.below(13);
    std::string Ks = std::to_string(K);
    std::string Pattern;
    std::optional<bool> Sat;
    switch (R.below(5)) {
    case 0: // even lengths only
      Pattern = "(ab|ba)*&.{" + Ks + "}";
      Sat = (K % 2 == 0);
      break;
    case 1: // lengths 2x+3y: everything except 1
      Pattern = "(aa|bbb)*&.{" + Ks + "}";
      Sat = (K != 1);
      break;
    case 2: // multiples of 3
      Pattern = "(abc)*&.{" + Ks + "}";
      Sat = (K % 3 == 0);
      break;
    case 3: // a-block then b-block, any length
      Pattern = "a*b*&.{" + Ks + "}&\\w*";
      Sat = true;
      break;
    default: // alternation with optional tail, any length
      Pattern = "(ab)*(a|())&.{" + Ks + "}";
      Sat = true;
      break;
    }
    S.Instances.push_back(make(S.Name, I, Pattern, Sat, false, false));
  }
  return S;
}

BenchSuite sbd::makeNornBooleanLike(size_t Count, uint64_t Seed) {
  BenchSuite S;
  S.Name = "Norn-Boolean";
  Rng R(Seed);
  for (size_t I = 0; I != Count; ++I) {
    uint64_t K = R.below(11);
    std::string Ks = std::to_string(K);
    std::string Pattern;
    std::optional<bool> Sat;
    switch (R.below(5)) {
    case 0: // alternating pairs ∧ contains "aa": needs "baab", length ≥ 4
      Pattern = "(ab|ba)*&.*aa.*&.{0," + Ks + "}";
      Sat = (K >= 4);
      break;
    case 1: // even-length a-words ∧ odd-length a-words
      Pattern = "(aa)*&a(aa)*&.{0," + Ks + "}";
      Sat = false;
      break;
    case 2: // two block shapes agree only on a*, then a length pin
      Pattern = "a*b*&b*a*&.{" + Ks + "}&.*a.*";
      Sat = (K >= 1); // a^K works; K = 0 fails .*a.*
      break;
    case 3: // prefix and suffix memberships: overlap "ab…ba"
      Pattern = "ab.*&.*ba&.{" + Ks + "}";
      // Shortest overlap: "aba" (3); K = 2 would need "ab"=="ba".
      Sat = (K >= 3);
      break;
    default: // membership plus its star closure: the smaller one wins
      Pattern = "(abc)*&(abcabc)*&.{0," + Ks + "}&.{1,}";
      // Multiples of 6 in [1, K].
      Sat = (K >= 6);
      break;
    }
    BenchInstance Inst = make(S.Name, I, Pattern, Sat, true, false);
    S.Instances.push_back(std::move(Inst));
  }
  return S;
}

BenchSuite sbd::makeSyGuSLike(size_t Count, uint64_t Seed) {
  BenchSuite S;
  S.Name = "SyGuS-like";
  Rng R(Seed);
  for (size_t I = 0; I != Count; ++I) {
    std::string Pattern;
    std::optional<bool> Sat;
    switch (R.below(5)) {
    case 0: { // two prefix constraints: sat iff one extends the other
      std::string A = randomLiteral(R, 1, 4);
      std::string B = R.chance(1, 2) ? A + randomLiteral(R, 1, 3)
                                     : randomLiteral(R, 1, 4);
      Pattern = A + ".*&" + B + ".*";
      bool Compatible = A.compare(0, std::min(A.size(), B.size()),
                                  B.substr(0, std::min(A.size(), B.size()))) ==
                        0;
      Sat = Compatible;
      break;
    }
    case 1: { // prefix + suffix: always compatible
      Pattern = randomLiteral(R, 1, 4) + ".*&.*" + randomLiteral(R, 1, 4);
      Sat = true;
      break;
    }
    case 2: { // digit prefix vs letter prefix: contradictory
      uint64_t K = 1 + R.below(3);
      Pattern = "\\d{" + std::to_string(K) + "}.*&[a-z]{" +
                std::to_string(K) + "}.*";
      Sat = false;
      break;
    }
    case 3: { // containment + length window
      std::string Lit = randomLiteral(R, 2, 6);
      uint64_t Window = R.below(9);
      Pattern =
          ".*" + Lit + ".*&.{0," + std::to_string(Window) + "}";
      Sat = Lit.size() <= Window;
      break;
    }
    default: { // triple combination
      std::string A = randomLiteral(R, 1, 3);
      std::string B = randomLiteral(R, 1, 3);
      uint64_t Window = R.range(1, 10);
      Pattern = A + ".*&.*" + B + "&.{0," + std::to_string(Window) + "}";
      if (A.size() + B.size() <= Window)
        Sat = true;
      else if (Window < A.size() || Window < B.size())
        Sat = false;
      // Otherwise the words may overlap; leave the label to the reference.
      break;
    }
    }
    S.Instances.push_back(make(S.Name, I, Pattern, Sat, true, false));
  }
  return S;
}

namespace {

/// Realistic patterns in the spirit of regexlib.com.
struct LibPattern {
  const char *Name;
  const char *Pattern;
};

const LibPattern RegExLibPool[] = {
    {"email", "\\w+(\\.\\w+)*@\\w+(\\.\\w+)+"},
    {"email-strict", "[a-z0-9]+@[a-z0-9]+\\.(com|org|net)"},
    {"date-iso", "\\d{4}-\\d{2}-\\d{2}"},
    {"date-us", "\\d{1,2}/\\d{1,2}/\\d{4}"},
    {"time24", "([01]\\d|2[0-3]):[0-5]\\d"},
    {"ip", "(\\d{1,3}\\.){3}\\d{1,3}"},
    {"zip", "\\d{5}(-\\d{4})?"},
    {"phone", "(\\(\\d{3}\\) |\\d{3}-)\\d{3}-\\d{4}"},
    {"hex-color", "#[0-9a-fA-F]{6}"},
    {"currency", "\\$\\d{1,3}(,\\d{3})*(\\.\\d{2})?"},
    {"url", "(http|https)://[a-z0-9]+(\\.[a-z0-9]+)+(/\\w*)*"},
    {"identifier", "[a-zA-Z_]\\w*"},
    {"integer", "-?\\d+"},
    {"float", "-?\\d+\\.\\d+"},
    {"ssn", "\\d{3}-\\d{2}-\\d{4}"},
    {"slug", "[a-z0-9]+(-[a-z0-9]+)*"},
    {"visa", "4\\d{12}(\\d{3})?"},
    {"word8", "\\w{8,}"},
    {"upper-name", "[A-Z][a-z]+( [A-Z][a-z]+)*"},
    {"hexhash", "[0-9a-f]{32}"},
};

} // namespace

BenchSuite sbd::makeRegExLibIntersection(size_t Count, uint64_t Seed) {
  BenchSuite S;
  S.Name = "RegExLib-Intersection";
  Rng R(Seed);
  const size_t N = std::size(RegExLibPool);
  for (size_t I = 0; I != Count; ++I) {
    size_t A = R.below(N), B = R.below(N);
    std::string Pattern = std::string("(") + RegExLibPool[A].Pattern +
                          ")&(" + RegExLibPool[B].Pattern + ")";
    // Self-intersections are satisfiable (each pattern is nonempty); other
    // labels are established by the reference solver.
    std::optional<bool> Sat;
    if (A == B)
      Sat = true;
    BenchInstance Inst = make(S.Name, I, Pattern, Sat, true, false);
    Inst.Name += std::string("-") + RegExLibPool[A].Name + "-vs-" +
                 RegExLibPool[B].Name;
    S.Instances.push_back(std::move(Inst));
  }
  return S;
}

BenchSuite sbd::makeRegExLibSubset(size_t Count, uint64_t Seed) {
  BenchSuite S;
  S.Name = "RegExLib-Subset";
  Rng R(Seed);
  // Containment L(A) ⊆ L(B) asked as emptiness of A & ~B. A handful of
  // known-true containments seeds the unsat side.
  struct Known {
    const char *A;
    const char *B;
    bool Subset;
  };
  static const Known KnownPairs[] = {
      {"email-strict", "email", true},
      {"ssn", "ssn", true},
      {"visa", "integer", true},
      {"date-iso", "slug", true}, // digit segments joined by single dashes
      {"zip", "integer", false},  // "12345-6789" is not an integer
      {"slug", "identifier", false}, // slugs may start with a digit
      {"hexhash", "word8", true},
      {"time24", "identifier", false}, // ':' is not a word character
  };
  auto find = [&](const char *Name) -> const LibPattern & {
    for (const LibPattern &P : RegExLibPool)
      if (std::string(P.Name) == Name)
        return P;
    return RegExLibPool[0];
  };
  const size_t N = std::size(RegExLibPool);
  for (size_t I = 0; I != Count; ++I) {
    std::string AName, BName, APat, BPat;
    std::optional<bool> Sat;
    if (I < std::size(KnownPairs)) {
      const Known &K = KnownPairs[I];
      AName = K.A;
      BName = K.B;
      APat = find(K.A).Pattern;
      BPat = find(K.B).Pattern;
      Sat = !K.Subset;
    } else {
      size_t A = R.below(N), B = R.below(N);
      AName = RegExLibPool[A].Name;
      BName = RegExLibPool[B].Name;
      APat = RegExLibPool[A].Pattern;
      BPat = RegExLibPool[B].Pattern;
      if (A == B)
        Sat = false; // A ⊆ A always holds
    }
    std::string Pattern = "(" + APat + ")&~(" + BPat + ")";
    BenchInstance Inst = make(S.Name, I, Pattern, Sat, true, true);
    Inst.Name += "-" + AName + "-sub-" + BName;
    S.Instances.push_back(std::move(Inst));
  }
  return S;
}

BenchSuite sbd::makeDateFamily() {
  BenchSuite S;
  S.Name = "Date";
  const char *Shape = "\\d{4}-[a-zA-Z]{3}-\\d{2}";
  std::string Sh = Shape;
  std::vector<std::pair<std::string, bool>> Items = {
      {Sh + "&(2019.*|2020.*)", true},                      // Fig. 1
      {Sh + "&(.*2019|.*2020)", false},                     // the buggy policy
      {Sh + "&2020.*&.*-Feb-.*", true},
      {Sh + "&\\d{4}-Feb-\\d{2}&~(\\d{4}-[a-zA-Z]{3}-3[01])", true},
      {Sh + "&\\d{4}-Feb-3[01]", true},                     // violation exists
      {"\\d{4}-Feb-\\d{2}&~(" + Sh + ")", false},           // Feb ⊆ shape
      {"(" + Sh + "&2020.*)&~(" + Sh + "&(2019.*|2020.*))", false},
      {Sh + "&~(\\d{4}-.*)", false},
      {Sh + "&.{11}", true},
      {Sh + "&.{12,}", false},
      {Sh + "&~(.{11})", false},
      {Sh + "&(.*Jan.*|.*Feb.*|.*Mar.*)", true},
      {Sh + "&~(.*[a-zA-Z].*)", false},
      {Sh + "&19.*", true},
      {Sh + "&~(19.*)&19\\d{2}-.*", false},
      {"\\d{4}/[a-zA-Z]{3}/\\d{2}&" + Sh, false},
      {"(" + Sh + "|\\d{2}-[a-zA-Z]{3}-\\d{4})&.{11}", true},
      {"(" + Sh + "|\\d{8})&~(.*-.*)", true},
      {Sh + "&.*-(Nov|Dec)-.*&2020.*", true},
      {Sh + "&~(.*\\d{2})", false},
  };
  for (size_t I = 0; I != Items.size(); ++I) {
    bool Compl = Items[I].first.find('~') != std::string::npos;
    S.Instances.push_back(
        make(S.Name, I, Items[I].first, Items[I].second, true, Compl));
  }
  return S;
}

BenchSuite sbd::makePasswordFamily() {
  BenchSuite S;
  S.Name = "Password";
  const std::string R1 = ".*\\d.*";            // a digit
  const std::string R2 = ".*[a-z].*";          // a lower-case letter
  const std::string R3 = ".*[A-Z].*";          // an upper-case letter
  const std::string R4 = ".*[!@#$%^&+=].*";    // a special character
  const std::string N1 = "~(.*\\s.*)";         // no whitespace
  const std::string N2 = "~(.*01.*)";          // no "01" (Section 2)
  std::vector<std::pair<std::string, bool>> Items = {
      {R1, true},
      {R1 + "&" + R2, true},
      {R1 + "&" + R2 + "&" + R3, true},
      {R1 + "&" + R2 + "&" + R3 + "&" + R4, true},
      {R1 + "&" + R2 + "&" + R3 + "&" + R4 + "&.{8,128}", true},
      {R1 + "&" + R2 + "&" + R3 + "&" + R4 + "&.{8,128}&" + N1, true},
      {R1 + "&" + R2 + "&" + R3 + "&" + R4 + "&.{8,128}&" + N1 + "&" + N2,
       true},
      {R1 + "&" + R2 + "&" + R3 + "&" + R4 + "&.{8,128}&~(.*aaa.*)", true},
      {R1 + "&" + R2 + "&" + R3 + "&" + R4 + "&.{4,4}", true},
      {R1 + "&" + R2 + "&" + R3 + "&" + R4 + "&.{0,3}", false},
      {R1 + "&[a-zA-Z]*", false},
      {R1 + "&" + R2 + "&\\d*", false},
      {R1 + "&.{0,0}", false},
      {R1 + "&" + N2, true},
      {R1 + "&~(" + R1 + ")", false},
      {".{8,128}&.{0,7}", false},
      {R1 + "&" + R2 + "&" + R3 + "&.{8,128}&~(.*00.*)", true},
      {".*\\d{3}.*&~(.*\\d\\d.*)", false},
      {".*\\d\\d.*&~(.*\\d{3}.*)", true},
      {"(\\w|[!@#%]){8,16}&" + R1 + "&" + R2 + "&" + R3, true},
      {"[!@#]{8,}&" + R1, false},
      {R1 + "&" + R2 + "&" + R3 + "&" + R4 + "&.{8,}&~(.*[a-z][a-z].*)",
       true},
      {"\\w{8,}&" + R4, false},
      {"(\\d[a-z])*&" + R3, false},
      {"(\\d[a-z])*&" + R1 + "&" + R2 + "&.{6,}", true},
      {"[a-zA-Z].*[a-zA-Z]&" + R1 + "&.{8,}", true},
      {"[a-zA-Z].*[a-zA-Z]&.{1}", false},
      {N2 + "&.*0.*&.*1.*", true},
      {N2 + "&0.*1&.{2}", false},
      {"~(\\w*)&\\w{8,}", false},
      {"~(\\w*)&.{8,}", true},
      {R1 + "&" + R2 + "&" + R3 + "&" + R4 + "&" + N1 + "&.{64,128}", true},
      {".{8,128}&~(.{0,127})", true},
      {".{8,128}&~(.{0,128})", false},
  };
  for (size_t I = 0; I != Items.size(); ++I) {
    bool Compl = Items[I].first.find('~') != std::string::npos;
    S.Instances.push_back(
        make(S.Name, I, Items[I].first, Items[I].second, true, Compl));
  }
  return S;
}

BenchSuite sbd::makeBooleanLoopsFamily() {
  BenchSuite S;
  S.Name = "Boolean+Loops";
  std::vector<std::pair<std::string, bool>> Items = {
      {"(a{3})*&a{7}", false},
      {"(a{3})*&a{9}", true},
      {"(aa)*&(aaa)*&.{1,5}&a*", false},
      {"(aa)*&(aaa)*&a{6}", true},
      {"~((ab)*)&(ab){4}", false},
      {"~((ab)*)&(ab){3}a", true},
      {"(ab)+&(ba)+", false},
      {"(ab)+&~(a.*)", false},
      {"a+b+&b+a+", false},
      {"a+b+&.{4}&~(a{2}b{2})&~(a{3}b)&~(ab{3})", false},
      {"a+b+&.{4}&~(.*ab.*)", false},
      {"~(.*ab.*)&a*b*", true},
      {"(a|b)*&~(.*aa.*)&~(.*bb.*)&.{5}", true},
      {"~(.*aa.*)&~(.*bb.*)&~(.*ab.*)&~(.*ba.*)&(a|b){2,}", false},
      {"((a|b){2})*&((a|b){3})*&(a|b){7}", false},
      {"a{10,20}&a{15,25}", true},
      {"a{10,20}&a{21,30}", false},
      {"(a{2,3})*&a{1}", false},
      {"(a{2,3})*&a{5}", true},
      {"~(a*)&(ab)*", true},
      {"~(a*b*)&a*b*a*", true},
  };
  for (size_t I = 0; I != Items.size(); ++I) {
    bool Compl = Items[I].first.find('~') != std::string::npos;
    S.Instances.push_back(
        make(S.Name, I, Items[I].first, Items[I].second, true, Compl));
  }
  return S;
}

BenchSuite sbd::makeDeterminizationBlowupFamily() {
  BenchSuite S;
  S.Name = "Determinization-Blowup";
  std::vector<std::pair<std::string, bool>> Items;
  for (int K : {4, 8, 12})
    Items.push_back({"(.*a.{" + std::to_string(K) + "})&(.*b.{" +
                         std::to_string(K) + "})",
                     false});
  for (int K : {4, 8, 12})
    Items.push_back({"(.*a.{" + std::to_string(K) + "}.*)&(.*b.{" +
                         std::to_string(K) + "}.*)",
                     true});
  for (int K : {8, 16})
    Items.push_back({"~(.*a.{" + std::to_string(K) + "})", true});
  for (int K : {8, 16})
    Items.push_back({"~(.*a.{" + std::to_string(K) + "})&.*a.{" +
                         std::to_string(K) + "}",
                     false});
  for (int K : {6, 10})
    Items.push_back({".*a.{" + std::to_string(K) + "}&.{" +
                         std::to_string(K) + "}",
                     false});
  Items.push_back({".*a.{10}&.{11}", true});
  Items.push_back({"(.*a.{12})|(.*b.{12})", true});
  for (size_t I = 0; I != Items.size(); ++I) {
    bool Compl = Items[I].first.find('~') != std::string::npos;
    S.Instances.push_back(
        make(S.Name, I, Items[I].first, Items[I].second, true, Compl));
  }
  return S;
}

std::vector<BenchSuite> sbd::nonBooleanSuites(double Scale, uint64_t Seed) {
  return {
      makeKaluzaLike(scaledCount(5452, Scale), Seed + 1),
      makeSlogLike(scaledCount(1976, Scale), Seed + 2),
      makeNornLike(scaledCount(813, Scale), Seed + 3),
  };
}

std::vector<BenchSuite> sbd::booleanSuites(double Scale, uint64_t Seed) {
  return {
      makeSyGuSLike(scaledCount(343, Scale), Seed + 4),
      makeNornBooleanLike(scaledCount(147, Scale), Seed + 5),
      makeRegExLibIntersection(scaledCount(55, Scale), Seed + 6),
      makeRegExLibSubset(scaledCount(100, Scale), Seed + 7),
  };
}

std::vector<BenchSuite> sbd::handwrittenSuites() {
  return {
      makeDateFamily(),
      makePasswordFamily(),
      makeBooleanLoopsFamily(),
      makeDeterminizationBlowupFamily(),
  };
}
