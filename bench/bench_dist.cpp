//===- bench/bench_dist.cpp - Multi-process batch solving throughput --------===//
///
/// \file
/// Serving-throughput benchmark for the `src/dist` coordinator/worker
/// layer: the full corpus workload is solved across N forked worker
/// processes and the wall clock is compared against what matters for the
/// scale-out story — the same corpus through 1 worker. Reports wall-clock
/// throughput, verdict counts, and the scheduling counters (dispatches,
/// steals, requeues).
///
///   bench_dist --threads 4 --scale 0.05 --max-states 20000
///
/// --threads is reused as the *worker process* count (the corpus and
/// verdicts are identical at any count; tests/DistSolverTest.cpp and the
/// dist_consistency CI gate pin that).
///
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"
#include "Workloads.h"

#include "dist/Coordinator.h"
#include "support/Stopwatch.h"

#include <cstdio>

using namespace sbd;

namespace {

std::vector<BatchQuery> collectQueries(const BenchArgs &Args) {
  std::vector<BatchQuery> Queries;
  std::vector<std::vector<BenchSuite>> Groups = {
      nonBooleanSuites(Args.Scale, Args.Seed),
      booleanSuites(Args.Scale, Args.Seed),
      handwrittenSuites(),
  };
  for (const auto &Group : Groups)
    for (const BenchSuite &Suite : Group)
      for (const BenchInstance &Inst : Suite.Instances)
        Queries.push_back({Inst.Pattern, Args.Opts});
  return Queries;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv);
  std::vector<BatchQuery> Queries = collectQueries(Args);

  dist::DistOptions Opts;
  Opts.NumWorkers = Args.Threads ? Args.Threads : 1;

  Args.beginObservation();
  Stopwatch Watch;
  dist::DistSolver Solver(Opts);
  std::vector<BatchResult> Results = Solver.solveAll(Queries);
  double WallSec = Watch.elapsedSec();

  size_t Sat = 0, Unsat = 0, Unknown = 0, ParseFail = 0;
  SolveStats Agg;
  for (const BatchResult &R : Results) {
    Agg += R.Result.Stats;
    if (!R.ParseOk) {
      ++ParseFail;
      continue;
    }
    switch (R.Result.Status) {
    case SolveStatus::Sat:
      ++Sat;
      break;
    case SolveStatus::Unsat:
      ++Unsat;
      break;
    default:
      ++Unknown;
      break;
    }
  }

  const dist::DistStats &S = Solver.stats();
  std::printf("== Multi-process batch throughput ==\n");
  std::printf("queries=%zu workers=%u scale=%.3f\n", Queries.size(),
              Opts.NumWorkers, Args.Scale);
  std::printf("sat=%zu unsat=%zu unknown=%zu parse-fail=%zu\n", Sat, Unsat,
              Unknown, ParseFail);
  std::printf("wall=%.3fs throughput=%.1f q/s\n", WallSec,
              WallSec > 0 ? Queries.size() / WallSec : 0.0);
  std::printf("dispatched=%llu steals=%llu requeues=%llu crashes=%llu "
              "timeouts=%llu lost=%llu\n",
              static_cast<unsigned long long>(S.Dispatched),
              static_cast<unsigned long long>(S.Steals),
              static_cast<unsigned long long>(S.Requeues),
              static_cast<unsigned long long>(S.WorkerCrashes),
              static_cast<unsigned long long>(S.Timeouts),
              static_cast<unsigned long long>(S.Lost));
  return Args.endObservation(Agg) ? 0 : 1;
}
