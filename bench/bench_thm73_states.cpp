//===- bench/bench_thm73_states.cpp - Theorem 7.3 state-space measurement ---===//
///
/// \file
/// Measures the SBFA state space against the Theorem 7.3 bound
/// |Q_SBFA(R)| ≤ ♯(R) + 3 on random clean, normalized, loop-free B(RE)
/// terms, and contrasts three quantities the paper discusses:
///
///  - |Q|: SBFA states at the atomic granularity (provably linear);
///  - SAFA transitions after local mintermization (Prop. 8.3 — can blow up);
///  - the Section 5 solver's graph vertices, whose states are conjunction
///    leaves of δdnf (worst-case exponential for B(RE)).
///
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"

#include "automata/Safa.h"
#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Rng.h"

#include <cstdio>

using namespace sbd;

namespace {

Re randomPlainRe(RegexManager &M, Rng &R, int Depth) {
  if (Depth <= 0) {
    switch (R.below(4)) {
    case 0:
      return M.chr(static_cast<uint32_t>('a' + R.below(4)));
    case 1:
      return M.pred(CharSet::digit());
    case 2:
      return M.pred(CharSet::range('a', 'm'));
    default:
      return M.anyChar();
    }
  }
  switch (R.below(6)) {
  case 0:
  case 1:
    return M.concat(randomPlainRe(M, R, Depth - 1),
                    randomPlainRe(M, R, Depth - 1));
  case 2:
    return M.union_(randomPlainRe(M, R, Depth - 1),
                    randomPlainRe(M, R, Depth - 1));
  case 3:
    return M.star(randomPlainRe(M, R, Depth - 1));
  default:
    return randomPlainRe(M, R, 0);
  }
}

Re randomBre(RegexManager &M, Rng &R, int BoolDepth, int ReDepth) {
  if (BoolDepth <= 0)
    return randomPlainRe(M, R, ReDepth);
  switch (R.below(4)) {
  case 0:
    return M.union_(randomBre(M, R, BoolDepth - 1, ReDepth),
                    randomBre(M, R, BoolDepth - 1, ReDepth));
  case 1:
    return M.inter(randomBre(M, R, BoolDepth - 1, ReDepth),
                   randomBre(M, R, BoolDepth - 1, ReDepth));
  case 2:
    return M.complement(randomBre(M, R, BoolDepth - 1, ReDepth));
  default:
    return randomPlainRe(M, R, ReDepth);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv);
  Rng Rand(Args.Seed);

  std::printf("== Theorem 7.3: SBFA state-space linearity ==\n\n");
  std::printf("%6s %6s %6s %9s %9s %10s %10s\n", "#(R)", "|Q|", "bound",
              "Q<=bound", "safa-tr", "solver-V", "pattern-len");

  size_t Violations = 0, Samples = 0;
  size_t MaxSolverOverSbfa = 0;
  for (int Round = 0; Round != 120; ++Round) {
    RegexManager M;
    TrManager T(M);
    DerivativeEngine E(M, T);
    int BoolDepth = 1 + static_cast<int>(Rand.below(3));
    int ReDepth = 2 + static_cast<int>(Rand.below(3));
    Re R = randomBre(M, Rand, BoolDepth, ReDepth);
    if (!M.isClean(R) || !M.isBooleanOverRe(R))
      continue;
    auto A = Sbfa::build(E, R, /*MaxStates=*/100000);
    if (!A)
      continue;
    ++Samples;
    size_t Bound = M.node(R).NumPreds + 3;
    if (A->numStates() > Bound)
      ++Violations;

    Safa S = Safa::fromSbfa(*A);

    // The solver's conjunction-granularity graph for comparison.
    RegexSolver Solver(E);
    SolveOptions Opts;
    Opts.MaxStates = 100000;
    (void)Solver.checkSat(R, Opts);
    size_t SolverV = Solver.graph().numVertices();
    size_t Ratio = A->numStates() ? SolverV / A->numStates() : 0;
    if (Ratio > MaxSolverOverSbfa)
      MaxSolverOverSbfa = Ratio;

    if (Round % 12 == 0)
      std::printf("%6u %6zu %6zu %9s %9zu %10zu %10zu\n",
                  M.node(R).NumPreds, A->numStates(), Bound,
                  A->numStates() <= Bound ? "yes" : "NO", S.numTransitions(),
                  SolverV, M.toString(R).size());
  }

  std::printf("\nsamples: %zu, bound violations: %zu (Theorem 7.3 predicts "
              "0)\n",
              Samples, Violations);
  std::printf("max solver-graph/SBFA state ratio observed: %zux\n",
              MaxSolverOverSbfa);

  // The paper's handwritten blowup family: SBFA linear in k even though the
  // DFA is exponential and the solver graph grows with k.
  std::printf("\n(.*a.{k})&(.*b.{k}) family:\n");
  std::printf("%4s %8s %8s %10s %12s\n", "k", "#(R)", "|Q|", "safa-tr",
              "solver-V");
  for (uint32_t K : {2u, 4u, 8u, 12u, 16u}) {
    RegexManager M;
    TrManager T(M);
    DerivativeEngine E(M, T);
    std::string P = "(.*a.{" + std::to_string(K) + "})&(.*b.{" +
                    std::to_string(K) + "})";
    Re R = parseRegexOrDie(M, P);
    auto A = Sbfa::build(E, R);
    Safa S = Safa::fromSbfa(*A);
    RegexSolver Solver(E);
    SolveOptions Opts;
    Opts.MaxStates = 1000000;
    (void)Solver.checkSat(R, Opts);
    std::printf("%4u %8u %8zu %10zu %12zu\n", K, M.node(R).NumPreds,
                A->numStates(), S.numTransitions(),
                Solver.graph().numVertices());
  }
  std::printf("\nSBFA states grow linearly in k; the solver's conjunction\n"
              "granularity grows super-linearly (quadratically on this\n"
              "family, exponentially in the worst case) and a DFA grows\n"
              "exponentially — the paper's Section 7 complexity discussion,\n"
              "measured.\n");
  return 0;
}
