//===- bench/bench_fig4a_summary.cpp - Reproduces Fig. 4(a) -----------------===//
///
/// \file
/// The headline table of the evaluation: percent of benchmarks solved,
/// average time, and median time per solver configuration on the
/// Non-Boolean (NB), Boolean (B), and Handcrafted (H) benchmark groups.
/// Wrong answers, unsupported inputs, and budget exhaustion are charged the
/// full timeout, matching the paper's methodology. See DESIGN.md §2 for the
/// solver-roster mapping and §3 for the benchmark substitution argument.
///
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"
#include "Runner.h"

#include <cstdio>

using namespace sbd;

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv);
  BenchRunner Runner(Args.Opts);

  struct Group {
    const char *Name;
    std::vector<BenchSuite> Suites;
  };
  std::vector<Group> Groups;
  Groups.push_back({"NB", nonBooleanSuites(Args.Scale, Args.Seed)});
  Groups.push_back({"B", booleanSuites(Args.Scale, Args.Seed)});
  Groups.push_back({"H", handwrittenSuites()});

  std::printf("== Fig. 4(a): summary of solver comparison ==\n");
  std::printf("scale=%.3f timeout=%lldms max-states=%zu seed=%llu\n\n",
              Args.Scale, static_cast<long long>(Args.Opts.TimeoutMs),
              Args.Opts.MaxStates,
              static_cast<unsigned long long>(Args.Seed));
  for (const Group &G : Groups) {
    size_t N = 0;
    for (const BenchSuite &S : G.Suites)
      N += S.Instances.size();
    std::printf("group %-2s: %zu instances\n", G.Name, N);
  }

  std::printf("\n%-12s %-3s %9s %9s %9s %7s %7s\n", "solver", "grp",
              "solved%", "avg(ms)", "med(ms)", "wrong", "unsupp");
  for (SolverKind Kind : allSolvers()) {
    for (const Group &G : Groups) {
      Aggregate Agg = Runner.runSuites(Kind, G.Suites);
      std::printf("%-12s %-3s %8.1f%% %9.2f %9.3f %7zu %7zu\n",
                  solverName(Kind), G.Name,
                  100.0 * static_cast<double>(Agg.Solved) /
                      static_cast<double>(Agg.Total ? Agg.Total : 1),
                  Agg.AvgTimeMs, Agg.MedianTimeMs, Agg.Wrong,
                  Agg.Unsupported);
    }
    std::printf("\n");
  }

  // Per-family breakdown (the shape of the paper's detailed tables): one
  // row per benchmark family, one solved% column per solver.
  std::printf("== per-family breakdown ==\n%-26s", "family");
  for (SolverKind Kind : allSolvers())
    std::printf(" %11s", solverName(Kind));
  std::printf("\n");
  for (const Group &G : Groups) {
    for (const BenchSuite &Suite : G.Suites) {
      std::printf("%-26s", (Suite.Name + " (" + G.Name + ")").c_str());
      for (SolverKind Kind : allSolvers()) {
        Aggregate Agg = Runner.runSuites(Kind, {Suite});
        std::printf(" %10.1f%%",
                    100.0 * static_cast<double>(Agg.Solved) /
                        static_cast<double>(Agg.Total ? Agg.Total : 1));
      }
      std::printf("\n");
    }
  }
  std::printf("\n");

  std::printf("paper shape check (Fig. 4a): dZ3 is best-or-near-best on NB\n"
              "and clearly ahead on B and H, where the Antimirov (CVC4-like)\n"
              "configuration loses complement instances and the eager DFA\n"
              "(classic-Z3-like) configuration hits the state blowup.\n");
  return 0;
}
