//===- bench/bench_fig4c_inventory.cpp - Reproduces Fig. 4(c) ---------------===//
///
/// \file
/// The benchmark inventory table: which families make up the Non-Boolean,
/// Boolean, and Handwritten groups and how many instances each contributes,
/// alongside the paper's corpus sizes (our generated suites reproduce the
/// corpus *shapes* at a configurable scale; see DESIGN.md §3).
///
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"
#include "Workloads.h"

#include <cstdio>

using namespace sbd;

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv);

  std::printf("== Fig. 4(c): benchmark inventory (scale=%.3f) ==\n\n",
              Args.Scale);
  std::printf("%-26s %-6s %10s %10s %8s\n", "family", "group", "paper#",
              "generated#", "labeled");

  struct Row {
    BenchSuite Suite;
    const char *Group;
    size_t PaperCount;
  };
  std::vector<Row> Rows;
  Rows.push_back({makeKaluzaLike(scaledCount(5452, Args.Scale), Args.Seed + 1),
                  "NB", 5452});
  Rows.push_back({makeSlogLike(scaledCount(1976, Args.Scale), Args.Seed + 2),
                  "NB", 1976});
  Rows.push_back({makeNornLike(scaledCount(813, Args.Scale), Args.Seed + 3),
                  "NB", 813});
  Rows.push_back({makeSyGuSLike(scaledCount(343, Args.Scale), Args.Seed + 4),
                  "B", 343});
  Rows.push_back(
      {makeNornBooleanLike(scaledCount(147, Args.Scale), Args.Seed + 5), "B",
       147});
  Rows.push_back({makeRegExLibIntersection(scaledCount(55, Args.Scale),
                                           Args.Seed + 6),
                  "B", 55});
  Rows.push_back({makeRegExLibSubset(scaledCount(100, Args.Scale),
                                     Args.Seed + 7),
                  "B", 100});
  Rows.push_back({makeDateFamily(), "H", 20});
  Rows.push_back({makePasswordFamily(), "H", 34});
  Rows.push_back({makeBooleanLoopsFamily(), "H", 21});
  Rows.push_back({makeDeterminizationBlowupFamily(), "H", 14});

  size_t TotalPaper = 0, TotalGen = 0;
  for (const Row &R : Rows) {
    size_t Labeled = 0;
    for (const BenchInstance &I : R.Suite.Instances)
      if (I.ExpectedSat.has_value())
        ++Labeled;
    std::printf("%-26s %-6s %10zu %10zu %7zu%%\n", R.Suite.Name.c_str(),
                R.Group, R.PaperCount, R.Suite.Instances.size(),
                100 * Labeled /
                    (R.Suite.Instances.empty() ? 1
                                               : R.Suite.Instances.size()));
    TotalPaper += R.PaperCount;
    TotalGen += R.Suite.Instances.size();
  }
  std::printf("%-26s %-6s %10zu %10zu\n", "total", "", TotalPaper, TotalGen);
  std::printf("\npaper totals: NB 8241, B 645, H 89 (handwritten families\n"
              "are reproduced at full size with the paper's exact counts).\n");
  return 0;
}
