//===- bench/bench_micro.cpp - Microbenchmarks (google-benchmark) -----------===//
///
/// \file
/// Microbenchmarks for the primitives whose cost the paper's design
/// arguments hinge on: character-algebra operations, derivative and DNF
/// computation, the matcher, SBFA construction, and end-to-end solver
/// queries on the running examples.
///
//===----------------------------------------------------------------------===//

#include "automata/Sbfa.h"
#include "charset/Bdd.h"
#include "compile/CompiledDfa.h"
#include "core/CachedMatcher.h"
#include "baselines/AntimirovSolver.h"
#include "baselines/BrzozowskiMintermSolver.h"
#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace sbd;

namespace {

const char *PasswordPattern =
    "(.*\\d.*)&(.*[a-z].*)&(.*[A-Z].*)&(.*[!@#$%^&+=].*)&.{8,128}"
    "&~(.*\\s.*)&~(.*01.*)";
const char *DatePattern =
    "\\d{4}-[a-zA-Z]{3}-\\d{2}&(2019.*|2020.*)";

void BM_CharSetIntersect(benchmark::State &State) {
  CharSet A = CharSet::word();
  CharSet B = CharSet::fromRanges({{'0', '9'}, {'A', 'F'}, {0x100, 0x2FF}});
  for (auto _ : State)
    benchmark::DoNotOptimize(A.intersectWith(B));
}
BENCHMARK(BM_CharSetIntersect);

void BM_CharSetMinterms(benchmark::State &State) {
  std::vector<CharSet> Sets;
  for (int I = 0; I != static_cast<int>(State.range(0)); ++I)
    Sets.push_back(CharSet::range(static_cast<uint32_t>('a' + I),
                                  static_cast<uint32_t>('a' + I + 10)));
  for (auto _ : State)
    benchmark::DoNotOptimize(computeMinterms(Sets));
}
BENCHMARK(BM_CharSetMinterms)->Arg(4)->Arg(8)->Arg(16);

void BM_ParsePassword(benchmark::State &State) {
  for (auto _ : State) {
    RegexManager M;
    benchmark::DoNotOptimize(parseRegexOrDie(M, PasswordPattern));
  }
}
BENCHMARK(BM_ParsePassword);

void BM_DerivativeDnf(benchmark::State &State) {
  for (auto _ : State) {
    // Fresh arenas: measures uncached derivative + DNF computation.
    RegexManager M;
    TrManager T(M);
    DerivativeEngine E(M, T);
    Re R = parseRegexOrDie(M, PasswordPattern);
    benchmark::DoNotOptimize(E.derivativeDnf(R));
  }
}
BENCHMARK(BM_DerivativeDnf);

void BM_DerivativeChain(benchmark::State &State) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Re R = parseRegexOrDie(M, PasswordPattern);
  std::vector<uint32_t> Word;
  for (int I = 0; I != 64; ++I)
    Word.push_back("aB3!x"[I % 5]);
  for (auto _ : State) {
    Re Cur = R;
    for (uint32_t Ch : Word)
      Cur = T.apply(E.derivativeDnf(Cur), Ch);
    benchmark::DoNotOptimize(Cur);
  }
  State.counters["intern_hit%"] = M.stats().internHitRate() * 100.0;
  State.counters["memo_hit%"] = E.stats().memoHitRate() * 100.0;
  State.counters["avg_probe"] = M.stats().avgProbeLength();
}
BENCHMARK(BM_DerivativeChain);

void BM_DerivativeChainSpans(benchmark::State &State) {
  // Same hot loop as BM_DerivativeChain, wrapped in one ScopedSpan per
  // chain with the tracer disabled — the span density the solver actually
  // ships (one span per query). The delta against BM_DerivativeChain is
  // the observability layer's disabled-path overhead at realistic density
  // (target: < 2%; measured value recorded in DESIGN.md §8).
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Re R = parseRegexOrDie(M, PasswordPattern);
  std::vector<uint32_t> Word;
  for (int I = 0; I != 64; ++I)
    Word.push_back("aB3!x"[I % 5]);
  obs::Tracer::global().stop();
  for (auto _ : State) {
    SBD_SPAN("chain", "bench");
    Re Cur = R;
    for (uint32_t Ch : Word)
      Cur = T.apply(E.derivativeDnf(Cur), Ch);
    benchmark::DoNotOptimize(Cur);
  }
}
BENCHMARK(BM_DerivativeChainSpans);

void BM_DerivativeChainSpansDense(benchmark::State &State) {
  // Worst-case density: a disabled span around every single derivative
  // step. Dividing the delta against BM_DerivativeChain by the 65 spans
  // per iteration gives the unit cost of one disabled ScopedSpan (one
  // relaxed atomic load + branch; ~1ns on 2026 x86) — the reason the
  // search loop itself carries no per-step span.
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Re R = parseRegexOrDie(M, PasswordPattern);
  std::vector<uint32_t> Word;
  for (int I = 0; I != 64; ++I)
    Word.push_back("aB3!x"[I % 5]);
  obs::Tracer::global().stop();
  for (auto _ : State) {
    SBD_SPAN("chain", "bench");
    Re Cur = R;
    for (uint32_t Ch : Word) {
      SBD_SPAN("step", "bench");
      Cur = T.apply(E.derivativeDnf(Cur), Ch);
    }
    benchmark::DoNotOptimize(Cur);
  }
}
BENCHMARK(BM_DerivativeChainSpansDense);

void BM_InternRebuild(benchmark::State &State) {
  // Hash-consing hot loop: re-interning an already-present tree is the
  // single most frequent operation in derivative computation. Builds a
  // family of distinct regexes once, then measures rebuilding them (all
  // hits, exercising the open-addressing probe path).
  RegexManager M;
  auto build = [&](uint32_t I) {
    Re Word = M.literal("k" + std::to_string(I));
    return M.union_(M.concat(Word, M.star(M.chr('a' + I % 26))),
                    M.loop(M.chr('0' + I % 10), 1, 3 + I % 5));
  };
  for (uint32_t I = 0; I != 512; ++I)
    benchmark::DoNotOptimize(build(I));
  for (auto _ : State) {
    for (uint32_t I = 0; I != 512; ++I)
      benchmark::DoNotOptimize(build(I));
  }
  State.counters["intern_hit%"] = M.stats().internHitRate() * 100.0;
  State.counters["avg_probe"] = M.stats().avgProbeLength();
  State.counters["nodes"] = static_cast<double>(M.numNodes());
}
BENCHMARK(BM_InternRebuild);

void BM_MatcherLongInput(benchmark::State &State) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Re R = parseRegexOrDie(M, ".*(ab|ba){2}.*\\d.*");
  std::string Input;
  for (int I = 0; I != static_cast<int>(State.range(0)); ++I)
    Input.push_back("abx7"[I % 4]);
  for (auto _ : State)
    benchmark::DoNotOptimize(E.matches(R, Input));
}
BENCHMARK(BM_MatcherLongInput)->Arg(64)->Arg(1024);

void BM_SolverPassword(benchmark::State &State) {
  for (auto _ : State) {
    RegexManager M;
    TrManager T(M);
    DerivativeEngine E(M, T);
    RegexSolver S(E);
    benchmark::DoNotOptimize(S.checkSat(parseRegexOrDie(M, PasswordPattern)));
  }
}
BENCHMARK(BM_SolverPassword);

void BM_SolverDate(benchmark::State &State) {
  for (auto _ : State) {
    RegexManager M;
    TrManager T(M);
    DerivativeEngine E(M, T);
    RegexSolver S(E);
    benchmark::DoNotOptimize(S.checkSat(parseRegexOrDie(M, DatePattern)));
  }
}
BENCHMARK(BM_SolverDate);

void BM_SolverBlowupUnsat(benchmark::State &State) {
  std::string P = "(.*a.{" + std::to_string(State.range(0)) + "})&(.*b.{" +
                  std::to_string(State.range(0)) + "})";
  for (auto _ : State) {
    RegexManager M;
    TrManager T(M);
    DerivativeEngine E(M, T);
    RegexSolver S(E);
    benchmark::DoNotOptimize(S.checkSat(parseRegexOrDie(M, P)));
  }
}
BENCHMARK(BM_SolverBlowupUnsat)->Arg(4)->Arg(8);

void BM_SbfaBuild(benchmark::State &State) {
  for (auto _ : State) {
    RegexManager M;
    TrManager T(M);
    DerivativeEngine E(M, T);
    benchmark::DoNotOptimize(
        Sbfa::build(E, parseRegexOrDie(M, PasswordPattern)));
  }
}
BENCHMARK(BM_SbfaBuild);

void BM_BaselineBrzMinterm(benchmark::State &State) {
  for (auto _ : State) {
    RegexManager M;
    TrManager T(M);
    DerivativeEngine E(M, T);
    BrzozowskiMintermSolver S(E);
    benchmark::DoNotOptimize(S.solve(parseRegexOrDie(M, PasswordPattern)));
  }
}
BENCHMARK(BM_BaselineBrzMinterm);

void BM_BddRoundTrip(benchmark::State &State) {
  // The alternative BDD algebra: encode + decode of a realistic class.
  CharSet S = CharSet::word().unionWith(CharSet::range(0x4E00, 0x9FFF));
  for (auto _ : State) {
    BddManager B;
    BddRef R = B.fromCharSet(S);
    benchmark::DoNotOptimize(B.toCharSet(R));
  }
}
BENCHMARK(BM_BddRoundTrip);

void BM_BddOpsVsIntervals(benchmark::State &State) {
  CharSet X = CharSet::word();
  CharSet Y = CharSet::fromRanges({{'0', '9'}, {0x100, 0x2FF}});
  BddManager B;
  BddRef Bx = B.fromCharSet(X), By = B.fromCharSet(Y);
  for (auto _ : State) {
    benchmark::DoNotOptimize(B.bddAnd(Bx, By));
    benchmark::DoNotOptimize(B.bddNot(Bx));
  }
}
BENCHMARK(BM_BddOpsVsIntervals);

void BM_CachedMatcherThroughput(benchmark::State &State) {
  // Repeated matching through the SRM-style cached transition table vs the
  // uncached derivative matcher (BM_MatcherLongInput). Promotion is pinned
  // off so this stays a measurement of the lazy per-character walk; the
  // compiled serving path is BM_CompiledMatcherThroughput.
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Re R = parseRegexOrDie(M, ".*(ab|ba){2}.*\\d.*");
  // Snapshot before construction: the compressor and the first DFA rows are
  // built inside the matcher constructor, and the exported counters must
  // cover them.
  obs::MetricShard Before = obs::MetricsRegistry::global().snapshot();
  CachedMatcher::Options MO;
  MO.PromoteAfterChars = 0;
  CachedMatcher Matcher(E, R, MO);
  std::string Input;
  for (int I = 0; I != static_cast<int>(State.range(0)); ++I)
    Input.push_back("abx7"[I % 4]);
  for (auto _ : State)
    benchmark::DoNotOptimize(Matcher.matches(Input));
  obs::MetricShard D = obs::MetricsRegistry::global().snapshot().since(Before);
  State.counters["states"] =
      static_cast<double>(Matcher.statesMaterialized());
  State.counters["memo_hit%"] = E.stats().memoHitRate() * 100.0;
  // Exported so the perf-smoke snapshot records that the run really built
  // DFA states and compressed the alphabet (BENCH_PR4.json had them as 0
  // because only the corpus bench, which never takes this path, reported).
  State.counters["dfa_states_built"] =
      static_cast<double>(D.get(obs::Counter::DfaStatesBuilt));
  State.counters["alphabet_minterms"] =
      static_cast<double>(D.get(obs::Counter::AlphabetMinterms));
}
BENCHMARK(BM_CachedMatcherThroughput)->Arg(64)->Arg(1024);

void BM_CompiledMatcherThroughput(benchmark::State &State) {
  // The frozen serving path: same pattern and input as
  // BM_CachedMatcherThroughput, scanned through the state-major packed
  // table (DESIGN.md §12). The ratio against the cached series is the
  // promotion payoff and is gated at >= 3x by scripts/perf_smoke.py.
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Re R = parseRegexOrDie(M, ".*(ab|ba){2}.*\\d.*");
  // Snapshot before compile() so alphabet_minterms covers the compressor
  // construction inside it.
  obs::MetricShard Before = obs::MetricsRegistry::global().snapshot();
  std::optional<CompiledDfa> D = CompiledDfa::compile(E, R);
  if (!D) {
    State.SkipWithError("compile declined");
    return;
  }
  std::string Input;
  for (int I = 0; I != static_cast<int>(State.range(0)); ++I)
    Input.push_back("abx7"[I % 4]);
  for (auto _ : State)
    benchmark::DoNotOptimize(D->matches(Input));
  obs::MetricShard Sh = obs::MetricsRegistry::global().snapshot().since(Before);
  State.counters["states"] = static_cast<double>(D->numStates());
  State.counters["classes"] = static_cast<double>(D->numClasses());
  State.counters["table_bytes"] = static_cast<double>(D->tableBytes());
  State.counters["alphabet_minterms"] =
      static_cast<double>(Sh.get(obs::Counter::AlphabetMinterms));
  State.counters["compiled_chars_scanned"] =
      static_cast<double>(Sh.get(obs::Counter::CompiledCharsScanned));
  State.counters["compiled_prefilter_skips"] =
      static_cast<double>(Sh.get(obs::Counter::CompiledPrefilterSkips));
}
BENCHMARK(BM_CompiledMatcherThroughput)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CompiledLiteralScan(benchmark::State &State) {
  // Literal-heavy long-input workload: the start state self-loops on
  // everything except 'f', so nearly the whole haystack is skimmed by the
  // memchr-style prefilter instead of walked state by state.
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  Re R = parseRegexOrDie(M, ".*fatal\\d.*");
  std::optional<CompiledDfa> D = CompiledDfa::compile(E, R);
  if (!D) {
    State.SkipWithError("compile declined");
    return;
  }
  const char *Line = "log: subsystem nominal; watchdog happy; ";
  std::string Input;
  while (Input.size() < static_cast<size_t>(State.range(0)))
    Input += Line;
  Input += "fatal7";
  for (auto _ : State)
    benchmark::DoNotOptimize(D->matches(Input));
  State.counters["bytes"] = static_cast<double>(Input.size());
}
BENCHMARK(BM_CompiledLiteralScan)->Arg(16384)->Arg(65536);

void BM_GraphDeadStateReuse(benchmark::State &State) {
  // Measures the payoff of the persistent graph: re-proving emptiness of a
  // regex whose dead component is already recorded.
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  RegexSolver S(E);
  Re Dead = parseRegexOrDie(M, "(ab)+&(ba)+");
  (void)S.checkSat(Dead); // populate
  for (auto _ : State)
    benchmark::DoNotOptimize(S.checkSat(Dead));
}
BENCHMARK(BM_GraphDeadStateReuse);

} // namespace

/// Custom main so the harness accepts `--quick` (a short smoke run used by
/// scripts/check.sh) and `--json <path>` (machine-readable results for the
/// perf-smoke guard) on top of the standard google-benchmark flags.
int main(int Argc, char **Argv) {
  std::vector<char *> Args(Argv, Argv + Argc);
  static char MinTime[] = "--benchmark_min_time=0.01";
  static char OutFormat[] = "--benchmark_out_format=json";
  static std::string OutFlag;
  bool Quick = false;
  for (auto It = Args.begin(); It != Args.end();) {
    if (!std::strcmp(*It, "--quick")) {
      Quick = true;
      It = Args.erase(It);
    } else if (!std::strcmp(*It, "--json")) {
      It = Args.erase(It);
      if (It == Args.end()) {
        std::fprintf(stderr, "error: --json needs a path\n");
        return 1;
      }
      OutFlag = std::string("--benchmark_out=") + *It;
      It = Args.erase(It);
    } else {
      ++It;
    }
  }
  if (!OutFlag.empty()) {
    Args.insert(Args.begin() + 1, OutFormat);
    Args.insert(Args.begin() + 1, OutFlag.data());
  }
  if (Quick)
    Args.insert(Args.begin() + 1, MinTime);
  int NewArgc = static_cast<int>(Args.size());
  benchmark::Initialize(&NewArgc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(NewArgc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
