//===- bench/bench_batch.cpp - Parallel batch solver throughput -------------===//
///
/// \file
/// Serving-throughput benchmark for the BatchSolver front end: the full
/// corpus workload (Non-Boolean + Boolean + handwritten suites) is solved
/// as one batch of independent queries over N worker threads, each worker
/// running on its own thread-local arena stack. Reports wall-clock
/// throughput, verdict counts, and the aggregated cache counters, so the
/// caching layer's effectiveness under batch load is measured directly.
///
///   bench_batch --threads 8 --scale 0.05 --timeout-ms 250
///
/// With --threads 1 the batch runs inline on the calling thread and the
/// verdicts (and BFS witness lengths) are identical to any other thread
/// count — determinism is covered by tests/BatchSolverTest.cpp.
///
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"
#include "Workloads.h"

#include "portfolio/BatchSolver.h"
#include "support/Stopwatch.h"

#include <cstdio>

using namespace sbd;

namespace {

/// Flattens every suite of the corpus into one query list.
std::vector<BatchQuery> collectQueries(const BenchArgs &Args) {
  std::vector<BatchQuery> Queries;
  std::vector<std::vector<BenchSuite>> Groups = {
      nonBooleanSuites(Args.Scale, Args.Seed),
      booleanSuites(Args.Scale, Args.Seed),
      handwrittenSuites(),
  };
  for (const auto &Group : Groups)
    for (const BenchSuite &Suite : Group)
      for (const BenchInstance &Inst : Suite.Instances)
        Queries.push_back({Inst.Pattern, Args.Opts});
  return Queries;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv);
  std::vector<BatchQuery> Queries = collectQueries(Args);

  BatchOptions Opts;
  Opts.NumThreads = Args.Threads;
  BatchSolver Solver(Opts);

  Args.beginObservation();
  Stopwatch Watch;
  std::vector<BatchResult> Results = Solver.solveAll(Queries);
  double WallSec = Watch.elapsedSec();

  size_t Sat = 0, Unsat = 0, Unknown = 0, ParseFail = 0;
  double SolveMs = 0;
  SolveStats Agg;
  for (const BatchResult &R : Results) {
    Agg += R.Result.Stats;
    if (!R.ParseOk) {
      ++ParseFail;
      continue;
    }
    SolveMs += static_cast<double>(R.Result.TimeUs) / 1000.0;
    switch (R.Result.Status) {
    case SolveStatus::Sat:
      ++Sat;
      break;
    case SolveStatus::Unsat:
      ++Unsat;
      break;
    default:
      ++Unknown;
      break;
    }
  }

  std::printf("== Batch solver throughput ==\n");
  std::printf("queries=%zu threads=%u scale=%.3f timeout=%lldms\n",
              Queries.size(), Args.Threads, Args.Scale,
              static_cast<long long>(Args.Opts.TimeoutMs));
  std::printf("sat=%zu unsat=%zu unknown=%zu parse-fail=%zu\n", Sat, Unsat,
              Unknown, ParseFail);
  std::printf("wall=%.3fs cpu-solve=%.1fms throughput=%.1f q/s\n", WallSec,
              SolveMs, WallSec > 0 ? Queries.size() / WallSec : 0.0);
  std::printf("cache: %s\n", Solver.stats().summary().c_str());
  printPhaseTable(Agg);
  printEnginePhaseTable(Solver.enginePhases());
  return Args.endObservation(Agg) ? 0 : 1;
}
