//===- bench/BenchArgs.h - Shared command-line handling for the harness -----===//
///
/// \file
/// Minimal flag parsing shared by the Fig. 4 reproduction binaries:
///   --scale <f>        fraction of the paper's per-suite instance counts
///                      used for the generated (non-handwritten) suites
///   --timeout-ms <n>   per-instance wall-clock budget
///   --max-states <n>   per-instance state budget (safety net)
///   --seed <n>         generator seed
///   --threads <n>      worker threads for the batch-capable harnesses
///                      (default 1, which keeps single-thread figure
///                      outputs identical to the sequential path)
///
//===----------------------------------------------------------------------===//

#ifndef SBD_BENCH_BENCHARGS_H
#define SBD_BENCH_BENCHARGS_H

#include "solver/SolverResult.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sbd {

struct BenchArgs {
  double Scale = 0.05;
  uint64_t Seed = 2021;
  unsigned Threads = 1;
  SolveOptions Opts;

  static BenchArgs parse(int Argc, char **Argv) {
    BenchArgs A;
    A.Opts.TimeoutMs = 250;
    A.Opts.MaxStates = 200000;
    for (int I = 1; I < Argc; ++I) {
      auto need = [&](const char *Flag) -> const char * {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "error: %s needs a value\n", Flag);
          std::exit(1);
        }
        return Argv[++I];
      };
      if (!std::strcmp(Argv[I], "--scale"))
        A.Scale = std::atof(need("--scale"));
      else if (!std::strcmp(Argv[I], "--timeout-ms"))
        A.Opts.TimeoutMs = std::atoll(need("--timeout-ms"));
      else if (!std::strcmp(Argv[I], "--max-states"))
        A.Opts.MaxStates = std::strtoull(need("--max-states"), nullptr, 10);
      else if (!std::strcmp(Argv[I], "--seed"))
        A.Seed = std::strtoull(need("--seed"), nullptr, 10);
      else if (!std::strcmp(Argv[I], "--threads"))
        A.Threads =
            static_cast<unsigned>(std::strtoul(need("--threads"), nullptr, 10));
      else {
        std::fprintf(stderr,
                     "usage: %s [--scale f] [--timeout-ms n] "
                     "[--max-states n] [--seed n] [--threads n]\n",
                     Argv[0]);
        std::exit(1);
      }
    }
    return A;
  }
};

} // namespace sbd

#endif // SBD_BENCH_BENCHARGS_H
