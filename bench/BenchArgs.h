//===- bench/BenchArgs.h - Shared command-line handling for the harness -----===//
///
/// \file
/// Minimal flag parsing shared by the Fig. 4 reproduction binaries:
///   --scale <f>        fraction of the paper's per-suite instance counts
///                      used for the generated (non-handwritten) suites
///   --timeout-ms <n>   per-instance wall-clock budget
///   --max-states <n>   per-instance state budget (safety net)
///   --seed <n>         generator seed
///   --threads <n>      worker threads for the batch-capable harnesses
///                      (default 1, which keeps single-thread figure
///                      outputs identical to the sequential path)
///   --quick            smoke-test preset: tiny scale and short timeouts,
///                      for CI and the stats-smoke step of check.sh
///   --trace <file>     record a span timeline of the run and write it as
///                      Chrome trace_event JSON (open in chrome://tracing
///                      or Perfetto)
///   --stats-json <file> write the merged counter registry, the histogram
///                      registry (p50/p90/p99), and the summed per-query
///                      SolveStats as a flat JSON document
///   --json <file>      write the harness's own result summary (per-group
///                      timings etc.) as JSON — the machine-readable twin
///                      of the human table, consumed by the perf-smoke
///                      guard in scripts/check.sh
///   --slow-log <file>  JSONL sink for slow-query explain artifacts
///                      (replay them with tools/sbd-explain)
///   --slow-threshold-us <n>   capture queries slower than n microseconds
///   --slow-node-threshold <n> capture queries allocating > n arena nodes
///   --expo <file>      write a Prometheus text exposition of the merged
///                      registries at the end of the run, and arm SIGUSR1
///                      for mid-run dumps to the same path
///
//===----------------------------------------------------------------------===//

#ifndef SBD_BENCH_BENCHARGS_H
#define SBD_BENCH_BENCHARGS_H

#include "portfolio/BatchSolver.h"
#include "solver/SlowQueryLog.h"
#include "solver/SolverResult.h"
#include "support/Exposition.h"
#include "support/Histogram.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace sbd {

struct BenchArgs {
  double Scale = 0.05;
  uint64_t Seed = 2021;
  unsigned Threads = 1;
  bool Quick = false;
  std::string TraceFile;
  std::string StatsJsonFile;
  std::string JsonFile;
  std::string SlowLogFile;
  int64_t SlowThresholdUs = -1;
  uint64_t SlowNodeThreshold = 0;
  std::string ExpoFile;
  SolveOptions Opts;

  static BenchArgs parse(int Argc, char **Argv) {
    BenchArgs A;
    A.Opts.TimeoutMs = 250;
    A.Opts.MaxStates = 200000;
    for (int I = 1; I < Argc; ++I) {
      auto need = [&](const char *Flag) -> const char * {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "error: %s needs a value\n", Flag);
          std::exit(1);
        }
        return Argv[++I];
      };
      if (!std::strcmp(Argv[I], "--scale"))
        A.Scale = std::atof(need("--scale"));
      else if (!std::strcmp(Argv[I], "--timeout-ms"))
        A.Opts.TimeoutMs = std::atoll(need("--timeout-ms"));
      else if (!std::strcmp(Argv[I], "--max-states"))
        A.Opts.MaxStates = std::strtoull(need("--max-states"), nullptr, 10);
      else if (!std::strcmp(Argv[I], "--seed"))
        A.Seed = std::strtoull(need("--seed"), nullptr, 10);
      else if (!std::strcmp(Argv[I], "--threads"))
        A.Threads =
            static_cast<unsigned>(std::strtoul(need("--threads"), nullptr, 10));
      else if (!std::strcmp(Argv[I], "--quick")) {
        A.Quick = true;
        A.Scale = 0.01;
        A.Opts.TimeoutMs = 100;
      } else if (!std::strcmp(Argv[I], "--trace"))
        A.TraceFile = need("--trace");
      else if (!std::strcmp(Argv[I], "--stats-json"))
        A.StatsJsonFile = need("--stats-json");
      else if (!std::strcmp(Argv[I], "--json"))
        A.JsonFile = need("--json");
      else if (!std::strcmp(Argv[I], "--slow-log"))
        A.SlowLogFile = need("--slow-log");
      else if (!std::strcmp(Argv[I], "--slow-threshold-us"))
        A.SlowThresholdUs = std::atoll(need("--slow-threshold-us"));
      else if (!std::strcmp(Argv[I], "--slow-node-threshold"))
        A.SlowNodeThreshold =
            std::strtoull(need("--slow-node-threshold"), nullptr, 10);
      else if (!std::strcmp(Argv[I], "--expo"))
        A.ExpoFile = need("--expo");
      else {
        std::fprintf(stderr,
                     "usage: %s [--scale f] [--timeout-ms n] "
                     "[--max-states n] [--seed n] [--threads n] [--quick] "
                     "[--trace file] [--stats-json file] [--json file] "
                     "[--slow-log file] [--slow-threshold-us n] "
                     "[--slow-node-threshold n] [--expo file]\n",
                     Argv[0]);
        std::exit(1);
      }
    }
    return A;
  }

  /// Call before the measured work: resets the counter and histogram
  /// registries so the stats dump covers exactly this run, arms the tracer
  /// when --trace was given, installs the slow-query capture policy, and
  /// arms SIGUSR1 exposition when --expo was given.
  void beginObservation() const {
    obs::MetricsRegistry::global().reset();
    obs::HistogramRegistry::global().reset();
    if (!TraceFile.empty())
      obs::Tracer::global().start();
    if (SlowThresholdUs >= 0 || SlowNodeThreshold > 0 ||
        !SlowLogFile.empty()) {
      obs::SlowQueryOptions SO;
      SO.LatencyThresholdUs = SlowThresholdUs;
      SO.NodeThreshold = SlowNodeThreshold;
      SO.Path = SlowLogFile;
      // --slow-log without a threshold means "capture everything slower
      // than 0µs", i.e. every query — handy for forcing a capture.
      if (SO.LatencyThresholdUs < 0 && SO.NodeThreshold == 0)
        SO.LatencyThresholdUs = 0;
      obs::SlowQueryLog::global().configure(SO);
    }
    if (!ExpoFile.empty())
      obs::armSignalExposition(ExpoFile);
  }

  /// Call after the measured work (worker threads joined): writes the
  /// Chrome trace, the stats JSON, and/or the Prometheus exposition when
  /// requested. \p Aggregate is the per-query SolveStats summed over the
  /// run. Returns false if any requested output could not be written.
  bool endObservation(const SolveStats &Aggregate) const {
    bool Ok = true;
    if (!TraceFile.empty()) {
      obs::Tracer::global().stop();
      if (obs::Tracer::global().writeChromeTrace(TraceFile)) {
        std::printf("trace: wrote %zu events to %s\n",
                    obs::Tracer::global().eventCount(), TraceFile.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write trace to %s\n",
                     TraceFile.c_str());
        Ok = false;
      }
    }
    if (!StatsJsonFile.empty()) {
      std::string Doc = "{\n  \"counters\": ";
      Doc += obs::MetricsRegistry::global().snapshot().json();
      Doc += ",\n  \"histograms\": ";
      Doc += obs::HistogramRegistry::global().snapshot().json();
      Doc += ",\n  \"aggregate\": ";
      Doc += Aggregate.json();
      Doc += "\n}\n";
      std::FILE *F = std::fopen(StatsJsonFile.c_str(), "w");
      if (F) {
        std::fwrite(Doc.data(), 1, Doc.size(), F);
        std::fclose(F);
        std::printf("stats: wrote %s\n", StatsJsonFile.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write stats to %s\n",
                     StatsJsonFile.c_str());
        Ok = false;
      }
    }
    if (!ExpoFile.empty()) {
      if (obs::writePrometheus(ExpoFile)) {
        std::printf("expo: wrote %s\n", ExpoFile.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write exposition to %s\n",
                     ExpoFile.c_str());
        Ok = false;
      }
    }
    return Ok;
  }
};

/// Prints the standard per-phase breakdown table for a run whose summed
/// per-query stats are \p Agg.
inline void printPhaseTable(const SolveStats &Agg) {
  auto Ms = [](int64_t Us) { return static_cast<double>(Us) / 1000.0; };
  std::printf("phase breakdown (summed over queries):\n");
  std::printf("  %-8s %10s\n", "phase", "time(ms)");
  std::printf("  %-8s %10.1f\n", "parse", Ms(Agg.ParseUs));
  std::printf("  %-8s %10.1f\n", "derive", Ms(Agg.DeriveUs));
  std::printf("  %-8s %10.1f\n", "dnf", Ms(Agg.DnfUs));
  std::printf("  %-8s %10.1f\n", "probe", Ms(Agg.CacheProbeUs));
  std::printf("  %-8s %10.1f\n", "scan", Ms(Agg.ScanUs));
  std::printf("  %-8s %10.1f\n", "search", Ms(Agg.SearchUs));
  std::printf("  %-8s %10.1f\n", "total", Ms(Agg.TotalUs));
  std::printf("  derivatives=%llu dnf-calls=%llu arcs=%llu minterms=%llu\n",
              static_cast<unsigned long long>(Agg.DerivativeCalls),
              static_cast<unsigned long long>(Agg.DnfCalls),
              static_cast<unsigned long long>(Agg.ArcsEnumerated),
              static_cast<unsigned long long>(Agg.MintermsProduced));
}

/// Prints the per-engine phase table BatchSolver aggregates, one row per
/// engine that answered at least one query.
inline void printEnginePhaseTable(const std::vector<EnginePhaseRow> &Rows) {
  if (Rows.empty())
    return;
  auto Ms = [](int64_t Us) { return static_cast<double>(Us) / 1000.0; };
  std::printf("per-engine phase breakdown:\n");
  std::printf("  %-12s %8s %10s %10s %10s %10s %10s\n", "engine", "queries",
              "derive(ms)", "dnf(ms)", "probe(ms)", "search(ms)", "total(ms)");
  for (const EnginePhaseRow &R : Rows)
    std::printf("  %-12s %8llu %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                solveEngineName(R.Engine),
                static_cast<unsigned long long>(R.Queries),
                Ms(R.Stats.DeriveUs), Ms(R.Stats.DnfUs),
                Ms(R.Stats.CacheProbeUs), Ms(R.Stats.SearchUs),
                Ms(R.Stats.TotalUs));
}

} // namespace sbd

#endif // SBD_BENCH_BENCHARGS_H
