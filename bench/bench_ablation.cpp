//===- bench/bench_ablation.cpp - Design-choice ablations --------------------===//
///
/// \file
/// Ablations for the implementation choices DESIGN.md calls out:
///
///  1. search order — BFS (shortest witness) vs DFS (SMT-backtracking
///     style) on satisfiable instances with deep models;
///  2. dead-state detection — incremental SCC condensation (the paper's
///     strategy) vs lazy reverse-reachability recomputation, measured on
///     unsat instances where the bot rule does all the work;
///  3. eager-pipeline minimization — determinize vs determinize+minimize
///     (the intro's "after the fact" remark), on the blowup family.
///
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"

#include "automata/EagerSolver.h"
#include "re/RegexParser.h"
#include "solver/RegexSolver.h"
#include "support/Stopwatch.h"

#include <cstdio>
#include <string>

using namespace sbd;

namespace {

SolveResult solveFresh(const std::string &Pattern, SearchStrategy Strategy,
                       DeadDetection Mode, const SolveOptions &Base) {
  RegexManager M;
  TrManager T(M);
  DerivativeEngine E(M, T);
  // RegexSolver owns its graph; rebuild it in the requested mode by
  // constructing the solver around a graph... the solver constructs the
  // graph internally, so we go through the options only for strategy and
  // emulate the mode with a local solver when needed.
  RegexSolver S(E, Mode);
  SolveOptions Opts = Base;
  Opts.Strategy = Strategy;
  return S.checkSat(parseRegexOrDie(M, Pattern), Opts);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv);
  if (Args.Opts.TimeoutMs < 1000)
    Args.Opts.TimeoutMs = 1000;

  std::printf("== Ablation 1: BFS vs DFS exploration (sat, deep models) ==\n");
  std::printf("%-34s %12s %12s\n", "instance", "bfs states", "dfs states");
  for (uint32_t K : {4u, 6u, 8u, 10u}) {
    std::string P =
        "~(.*a.{" + std::to_string(K) + "})&.*b.{" + std::to_string(K) + "}";
    SolveResult Bfs = solveFresh(P, SearchStrategy::Bfs,
                                 DeadDetection::IncrementalScc, Args.Opts);
    SolveResult Dfs = solveFresh(P, SearchStrategy::Dfs,
                                 DeadDetection::IncrementalScc, Args.Opts);
    std::printf("%-34s %12zu %12zu\n", P.c_str(), Bfs.StatesExplored,
                Dfs.StatesExplored);
  }

  std::printf("\n== Ablation 2: dead detection, incremental SCC vs lazy ==\n");
  std::printf("%-34s %12s %12s\n", "instance (unsat)", "scc ms", "lazy ms");
  for (uint32_t K : {6u, 8u, 10u, 12u}) {
    std::string P =
        "(.*a.{" + std::to_string(K) + "})&(.*b.{" + std::to_string(K) + "})";
    // Repeat to stabilize timing a little.
    int64_t SccUs = 0, LazyUs = 0;
    for (int Rep = 0; Rep != 3; ++Rep) {
      SccUs += solveFresh(P, SearchStrategy::Bfs,
                          DeadDetection::IncrementalScc, Args.Opts)
                   .TimeUs;
      LazyUs += solveFresh(P, SearchStrategy::Bfs,
                           DeadDetection::LazyReverse, Args.Opts)
                    .TimeUs;
    }
    std::printf("%-34s %12.2f %12.2f\n", P.c_str(),
                static_cast<double>(SccUs) / 3000.0,
                static_cast<double>(LazyUs) / 3000.0);
  }

  std::printf("\n== Ablation 3: eager pipeline, minimize after the fact ==\n");
  std::printf("%-34s %14s %14s\n", "instance", "plain states",
              "minimized states");
  for (uint32_t K : {4u, 6u, 8u}) {
    std::string P =
        "(.*a.{" + std::to_string(K) + "})&(.*b.{" + std::to_string(K) + "})";
    RegexManager M1;
    EagerSolver Plain(M1);
    SolveResult R1 = Plain.solve(parseRegexOrDie(M1, P), Args.Opts);
    RegexManager M2;
    EagerSolver Min(M2, EagerSolver::Policy::DeterminizeMinimize);
    SolveResult R2 = Min.solve(parseRegexOrDie(M2, P), Args.Opts);
    std::printf("%-34s %9zu/%4.0fms %9zu/%4.0fms\n", P.c_str(),
                Plain.lastStatesBuilt(),
                static_cast<double>(R1.TimeUs) / 1000.0,
                Min.lastStatesBuilt(),
                static_cast<double>(R2.TimeUs) / 1000.0);
  }

  std::printf("\n== Ablation 4: simpler-arc-first heuristic (DFS, sat) ==\n");
  std::printf("%-44s %10s %10s\n", "instance", "plain", "heuristic");
  {
    // Asymmetric alternatives: one branch is a long corridor, the other a
    // short exit — arc order decides how much corridor DFS walks.
    const char *Instances[] = {
        "a{40}b|c",
        "(a{60}|b)(c{60}|d)",
        "x(y{50}z|w)&.*w",
        "~(.*a.{8})&.*b.{8}",
    };
    for (const char *P : Instances) {
      RegexManager M;
      TrManager T(M);
      DerivativeEngine E(M, T);
      RegexSolver S(E);
      SolveOptions Plain = Args.Opts, Heur = Args.Opts;
      Plain.Strategy = Heur.Strategy = SearchStrategy::Dfs;
      Heur.PreferSimplerArcs = true;
      SolveResult A = S.checkSat(parseRegexOrDie(M, P), Plain);
      // Fresh solver so the second run does not reuse graph knowledge.
      RegexManager M2;
      TrManager T2(M2);
      DerivativeEngine E2(M2, T2);
      RegexSolver S2(E2);
      SolveResult B = S2.checkSat(parseRegexOrDie(M2, P), Heur);
      std::printf("%-44s %10zu %10zu\n", P, A.StatesExplored,
                  B.StatesExplored);
    }
  }

  std::printf("\ninterpretation: DFS removes the frontier blowup on deep sat\n"
              "instances; incremental SCC and lazy recomputation agree on\n"
              "results (tested) and are both cheap at this scale — the SCC\n"
              "version avoids the O(V+E) recomputation per bot-rule query;\n"
              "minimization shrinks the eager pipeline's *output* but not\n"
              "its peak, so it cannot rescue the blowup family; and the\n"
              "simpler-arc-first heuristic is essentially neutral here —\n"
              "visited-state dedup already bounds wrong-branch corridors,\n"
              "so arc order rarely matters (kept as an opt-in knob).\n");
  return 0;
}
