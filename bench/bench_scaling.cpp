//===- bench/bench_scaling.cpp - Boolean-combination scaling -----------------===//
///
/// \file
/// Section 2 motivates that real password/policy constraints "may involve
/// many more similar simultaneous constraints … encoded as large
/// intersections". This bench scales the number of conjuncts k and
/// measures each solver configuration:
///
///   sat side:    ⋂_{i<k} .*cᵢ.*          (must contain k distinct chars)
///   unsat side:  ⋂_{i<k} .*cᵢ.* & .{0,k−1}   (k chars cannot fit in k−1)
///   mixed side:  ⋂ pos ∧ ⋂ ¬(.*dᵢdᵢ.*)   (with complements, dZ3 territory)
///
/// The paper's claim: symbolic Boolean derivatives keep the cost roughly
/// linear in k because conjunctions stay *syntactic* until a derivative
/// forces a local case split, while eager products pay multiplicatively.
///
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"
#include "Runner.h"

#include <cstdio>
#include <string>

using namespace sbd;

namespace {

std::string containChar(char C) {
  return std::string(".*") + C + ".*";
}

void sweep(BenchRunner &Runner, const char *Title,
           const std::vector<std::pair<std::string, uint32_t>> &Instances) {
  std::printf("%s\n%4s", Title, "k");
  for (SolverKind Kind : allSolvers())
    std::printf(" | %16s", solverName(Kind));
  std::printf("\n");
  for (const auto &[Pattern, K] : Instances) {
    std::printf("%4u", K);
    for (SolverKind Kind : allSolvers()) {
      BenchInstance Inst;
      Inst.Family = "scaling";
      Inst.Name = Pattern;
      Inst.Pattern = Pattern;
      RunRecord Rec = Runner.runOne(Kind, Inst);
      char StatusChar = Rec.Status == SolveStatus::Sat     ? 's'
                        : Rec.Status == SolveStatus::Unsat ? 'u'
                        : Rec.Status == SolveStatus::Unsupported ? '-'
                                                                 : '?';
      std::printf(" | %c %8.2fms %4zu", StatusChar,
                  static_cast<double>(Rec.TimeUs) / 1000.0,
                  Rec.States > 9999 ? size_t(9999) : Rec.States);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = BenchArgs::parse(Argc, Argv);
  if (Args.Opts.TimeoutMs < 1000)
    Args.Opts.TimeoutMs = 1000;
  BenchRunner Runner(Args.Opts);

  std::printf("== Boolean-combination scaling in the number of conjuncts "
              "==\n(status s/u/?/-; time; states capped at 9999)\n\n");

  std::vector<std::pair<std::string, uint32_t>> Sat, Unsat, Mixed;
  for (uint32_t K : {2u, 4u, 6u, 8u, 10u, 12u}) {
    std::string Conj;
    for (uint32_t I = 0; I != K; ++I) {
      if (I)
        Conj += "&";
      Conj += "(" + containChar(static_cast<char>('a' + I)) + ")";
    }
    Sat.push_back({Conj, K});
    Unsat.push_back({Conj + "&.{0," + std::to_string(K - 1) + "}", K});
    std::string Neg = Conj;
    for (uint32_t I = 0; I != K; ++I) {
      char C = static_cast<char>('a' + I);
      Neg += std::string("&~(.*") + C + C + ".*)";
    }
    Mixed.push_back({Neg, K});
  }
  sweep(Runner, "[sat]   k-way 'contains cᵢ' intersection", Sat);
  sweep(Runner, "[unsat] + length window k−1", Unsat);
  sweep(Runner, "[sat]   + k complements ~(.*cᵢcᵢ.*)", Mixed);

  std::printf("expected shape: the derivative solver grows mildly with k\n"
              "on all three families; the eager pipelines pay a product\n"
              "per conjunct, and the Antimirov configuration drops out of\n"
              "the complement family entirely.\n");
  return 0;
}
