//===- tests/TutorialSnippetsTest.cpp - docs/TUTORIAL.md stays honest ---------===//
///
/// \file
/// Every concrete claim in docs/TUTORIAL.md, executed. If the tutorial
/// drifts from the implementation, this suite fails.
///
//===----------------------------------------------------------------------===//

#include "core/CachedMatcher.h"
#include "core/LanguageOps.h"
#include "re/RegexParser.h"
#include "smt/SmtSolver.h"
#include "solver/RegexSolver.h"
#include "support/Unicode.h"

#include <gtest/gtest.h>

using namespace sbd;

namespace {

class TutorialTest : public ::testing::Test {
protected:
  RegexManager M;
  TrManager T{M};
  DerivativeEngine E{M, T};
  RegexSolver S{E};
};

TEST_F(TutorialTest, Section2BuildingRegexes) {
  Re Password = parseRegexOrDie(M, "(.*\\d.*)&~(.*01.*)");
  Re HasDigit =
      M.concat(M.top(), M.concat(M.pred(CharSet::digit()), M.top()));
  Re No01 = M.complement(parseRegexOrDie(M, ".*01.*"));
  Re Password2 = M.inter(HasDigit, No01);
  EXPECT_EQ(Password, Password2); // "same interned node"

  // "Watch the constructors simplify".
  Re A = parseRegexOrDie(M, "ab*");
  EXPECT_EQ(M.union_(A, M.complement(A)), M.top());
  EXPECT_EQ(M.inter(M.pred(CharSet::digit()),
                    M.pred(CharSet::asciiLetter())),
            M.empty());

  // Round trip.
  EXPECT_EQ(parseRegexOrDie(M, M.toString(Password)), Password);
}

TEST_F(TutorialTest, Section3Matching) {
  Re Password = parseRegexOrDie(M, "(.*\\d.*)&~(.*01.*)");
  EXPECT_TRUE(E.matches(Password, std::string("pass9word")));
  EXPECT_FALSE(E.matches(Password, std::string("pass01word")));

  CachedMatcher Matcher(E, Password);
  EXPECT_TRUE(Matcher.matches(std::string("aB3!")));

  auto Span =
      findFirstMatch(E, parseRegexOrDie(M, "\\d+"), fromUtf8("ab12cd"));
  ASSERT_TRUE(Span.has_value());
  EXPECT_EQ(*Span, (std::pair<size_t, size_t>{2, 3}));
}

TEST_F(TutorialTest, Section4Solving) {
  Re Password = parseRegexOrDie(M, "(.*\\d.*)&~(.*01.*)");
  SolveResult R = S.checkSat(Password);
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  ASSERT_EQ(R.Witness.size(), 1u); // "a shortest member under BFS"
  EXPECT_TRUE(CharSet::digit().contains(R.Witness[0]));

  EXPECT_TRUE(S.checkSat(M.inter(parseRegexOrDie(M, "(ab)+"),
                                 parseRegexOrDie(M, "(ba)+")))
                  .isUnsat());

  // Persistence claim: dead regexes stay refuted.
  Re Dead = M.inter(parseRegexOrDie(M, "(ab)+"), parseRegexOrDie(M, "(ba)+"));
  EXPECT_TRUE(S.graph().isDead(Dead));
}

TEST_F(TutorialTest, Section7SmtExample) {
  SmtSolver Smt(S);
  SmtResult R = Smt.solveScript(R"(
    (declare-const s String)
    (assert (str.in_re s (re.+ (re.range "a" "z"))))
    (assert (<= (str.len s) 4))
    (check-sat))");
  ASSERT_EQ(R.Status, SolveStatus::Sat);
  ASSERT_EQ(R.Model.size(), 1u);
  EXPECT_EQ(R.Model[0].first, "s");
  EXPECT_EQ(R.Model[0].second, "a"); // the documented model
}

} // namespace
